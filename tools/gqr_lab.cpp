// Development harness for the GQR (Theorem 4.1) functional blocks.
// Derives the NAND block constants by Newton iteration on the block
// contract; the PASS block is verified from its closed form.
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "factor/givens.h"
#include "matrix/matrix.h"

using pfact::Matrix;
using pfact::factor::givens_steps;

namespace {

constexpr long double kS2 = 1.4142135623730950488L;  // sqrt(2)

// Builds the 6x6 NAND candidate for inputs (a, b) and parameter vector
//   p = [p0 p1 p2 q1 q2 rho1 rho2 z w q0]
// Layout: cols 0 a-slot, 1 companion/aux Y1, 2 b-slot, 3 companion/aux Y2,
// 4 out slot t, 5 next companion t+1.
Matrix<long double> nand_candidate(int a, int b,
                                   const std::vector<long double>& p) {
  Matrix<long double> m(6, 6);
  m(0, 0) = a;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 1;
  m(1, 3) = p[0];
  m(1, 4) = p[1];
  m(1, 5) = p[2];
  m(2, 2) = b;
  m(2, 3) = 1;
  m(3, 2) = 1;
  m(3, 3) = p[9];
  m(3, 4) = p[3];
  m(3, 5) = p[4];
  m(4, 1) = p[5];
  m(4, 3) = p[6];
  m(4, 4) = p[7];
  m(4, 5) = p[8];
  return m;
}

// Residual: carrier row (4) must equal (0,0,0,0, NAND(a,b), 1) after all
// rotations, for all four input combinations.
std::vector<long double> residual(const std::vector<long double>& p) {
  std::vector<long double> r;
  for (int a : {1, -1}) {
    for (int b : {1, -1}) {
      Matrix<long double> m = nand_candidate(a, b, p);
      givens_steps(m, 100);
      long double nand = (a == 1 && b == 1) ? -1.0L : 1.0L;
      r.push_back(m(4, 4) - nand);
      r.push_back(m(4, 5) - 1.0L);
    }
  }
  return r;
}

long double loss(const std::vector<long double>& p) {
  long double s = 0;
  for (long double v : residual(p)) s += v * v;
  return s;
}

}  // namespace

int main() {
  // --- PASS block: closed form -------------------------------------------
  // cols: 0 slot, 1 companion/aux, 2 out t, 3 next companion t+1.
  std::printf("=== GQR PASS ===\n");
  for (int a : {1, -1}) {
    Matrix<long double> m(4, 4);
    m(0, 0) = a;
    m(0, 1) = 1;
    m(1, 0) = 1;
    m(1, 1) = 1;
    m(1, 2) = -kS2;
    m(1, 3) = -kS2;
    m(2, 1) = kS2;
    m(2, 2) = kS2 - 1;
    m(2, 3) = -(1 + kS2);
    givens_steps(m, 100);
    std::printf("a=%+d  carrier: %.17Lg %.17Lg %.17Lg %.17Lg\n", a, m(2, 0),
                m(2, 1), m(2, 2), m(2, 3));
  }

  // --- NAND block: Newton solve -------------------------------------------
  std::printf("=== GQR NAND solve ===\n");
  for (long double q0 : {1.0L, -1.0L}) {
    for (unsigned seed = 0; seed < 40; ++seed) {
      // Deterministic pseudo-random start.
      std::vector<long double> p(10);
      unsigned s = seed * 2654435761u + 12345u;
      for (int i = 0; i < 9; ++i) {
        s = s * 1664525u + 1013904223u;
        p[i] = ((s >> 8) % 2000) / 500.0L - 2.0L;
        if (std::fabs((double)p[i]) < 0.1) p[i] += 0.5L;
      }
      p[9] = q0;
      // Gauss-Newton with numeric Jacobian on 9 free params.
      bool ok = false;
      for (int iter = 0; iter < 200; ++iter) {
        auto r = residual(p);
        long double l = 0;
        for (auto v : r) l += v * v;
        if (l < 1e-28L) {
          ok = true;
          break;
        }
        // Jacobian 8x9.
        const int m_eq = static_cast<int>(r.size());
        const int n_var = 9;
        std::vector<std::vector<long double>> J(
            m_eq, std::vector<long double>(n_var));
        for (int j = 0; j < n_var; ++j) {
          long double h = 1e-7L;
          auto pj = p;
          pj[j] += h;
          auto rj = residual(pj);
          for (int i = 0; i < m_eq; ++i) J[i][j] = (rj[i] - r[i]) / h;
        }
        // Solve (J^T J + lambda I) d = -J^T r.
        std::vector<std::vector<long double>> A(
            n_var, std::vector<long double>(n_var + 1, 0));
        for (int i = 0; i < n_var; ++i) {
          for (int j = 0; j < n_var; ++j)
            for (int k = 0; k < m_eq; ++k) A[i][j] += J[k][i] * J[k][j];
          A[i][i] += 1e-9L;
          for (int k = 0; k < m_eq; ++k) A[i][n_var] -= J[k][i] * r[k];
        }
        // Gaussian elimination.
        bool sing = false;
        for (int c = 0; c < n_var; ++c) {
          int piv = c;
          for (int i = c + 1; i < n_var; ++i)
            if (std::fabs((double)A[i][c]) > std::fabs((double)A[piv][c]))
              piv = i;
          if (std::fabs((double)A[piv][c]) < 1e-18) {
            sing = true;
            break;
          }
          std::swap(A[piv], A[c]);
          for (int i = 0; i < n_var; ++i) {
            if (i == c) continue;
            long double f = A[i][c] / A[c][c];
            for (int j = c; j <= n_var; ++j) A[i][j] -= f * A[c][j];
          }
        }
        if (sing) break;
        long double step = 1.0L;
        long double base = l;
        for (int back = 0; back < 30; ++back) {
          auto pn = p;
          for (int j = 0; j < n_var; ++j)
            pn[j] += step * A[j][n_var] / A[j][j];
          if (loss(pn) < base) {
            p = pn;
            break;
          }
          step /= 2;
          if (back == 29) iter = 200;
        }
      }
      if (ok) {
        std::printf("q0=%+.0Lf seed=%u SOLVED loss=%.3Lg\n  p =", q0, seed,
                    loss(p));
        for (int i = 0; i < 10; ++i) std::printf(" %.17Lg", p[i]);
        std::printf("\n");
        // Re-verify all four cases and print the final carrier rows.
        for (int a : {1, -1}) {
          for (int b : {1, -1}) {
            Matrix<long double> m = nand_candidate(a, b, p);
            givens_steps(m, 100);
            std::printf("  a=%+d b=%+d carrier:", a, b);
            for (int j = 0; j < 6; ++j)
              std::printf(" %.12Lg", m(4, j));
            std::printf("\n");
          }
        }
        return 0;
      }
    }
    std::printf("q0=%+.0Lf: no convergence in 40 restarts\n", q0);
  }
  return 1;
}
