// PL014 blocking-call-undeadlined: a raw blocking syscall in src/serve/ is
// only lawful inside an audited deadline-wrapper function. Everything else
// in the serving layer must go through read_frame/read_exact (poll-bounded)
// or run on an O_NONBLOCK fd inside the event loop — a bare ::read on a
// blocking fd is exactly the wedge the PR-8 soak found dynamically.
//
// The allowlist is (file, function, why). It is checked both ways:
//   * a raw syscall OUTSIDE an allowlisted function is a finding;
//   * an allowlisted function that exists but no longer contains any raw
//     syscall is a STALE WAIVER finding — waivers must die with the code
//     they excused. (Entries whose file or function is absent are skipped:
//     violation fixtures carry only the files their drift needs.)

#include <set>
#include <string>

#include "lint/rules.h"

namespace pfact_lint {

namespace {

const std::set<std::string> kSyscalls = {
    "read",   "write",    "recv",   "send",   "accept",  "accept4",
    "poll",   "ppoll",    "select", "pread",  "pwrite",  "recvfrom",
    "sendto", "recvmsg",  "sendmsg",
};

struct Waiver {
  const char* file;
  const char* func;
  const char* why;
};

const Waiver kWaivers[] = {
    {"src/serve/wire.cpp", "read_exact",
     "the deadline primitive itself: every read is poll-bounded by the "
     "caller's deadline"},
    {"src/serve/wire.cpp", "write_frame",
     "EINTR-retrying write of one complete frame to a pipe/socket the "
     "caller deadline-guards"},
    {"src/serve/client.cpp", "write_all",
     "client-side frame write; the conversation deadline is enforced by the "
     "read_frame that follows"},
    {"src/serve/client.cpp", "finish_connect",
     "EINTR-looped poll completing an interrupted connect(); hard-bounded "
     "by the 1s poll timeout, so a signal burst cannot wedge the dial"},
    {"src/serve/frontend.cpp", "pfact_frontend_sigterm",
     "async-signal-safe self-pipe wake; O_NONBLOCK pipe, never blocks"},
    {"src/serve/frontend.cpp", "drain_and_close",
     "drains an O_NONBLOCK socket before close; EAGAIN terminates the loop"},
    {"src/serve/frontend.cpp", "wake",
     "self-pipe wake; O_NONBLOCK pipe, EAGAIN means a wakeup is already "
     "queued"},
    {"src/serve/frontend.cpp", "event_loop",
     "the deadline enforcer: poll's timeout IS the nearest armed deadline; "
     "wake-pipe/peek reads are O_NONBLOCK"},
    {"src/serve/frontend.cpp", "accept_ready",
     "accept4(SOCK_NONBLOCK) on a non-blocking listener; EAGAIN returns to "
     "the loop"},
    {"src/serve/frontend.cpp", "conn_readable",
     "O_NONBLOCK socket read driven by POLLIN; the read deadline is armed "
     "on the first byte and enforced by check_deadlines"},
    {"src/serve/frontend.cpp", "finish_frame",
     "self-pipe wake from the job-done callback; O_NONBLOCK pipe"},
    {"src/serve/frontend.cpp", "conn_writable",
     "O_NONBLOCK send driven by POLLOUT under the armed write deadline"},
    {"src/serve/frontend.cpp", "conn_lingering",
     "O_NONBLOCK drain of a refused conversation, bounded by the write "
     "deadline"},
};

bool is_raw_syscall(const SourceFile& f, std::size_t i) {
  if (f.tokens[i].kind != TokKind::kIdent) return false;
  if (kSyscalls.count(f.tokens[i].text) == 0) return false;
  if (i + 1 >= f.tokens.size() || f.tokens[i + 1].kind != TokKind::kPunct ||
      f.tokens[i + 1].text != "(") {
    return false;
  }
  if (i > 0 && f.tokens[i - 1].kind == TokKind::kPunct &&
      (f.tokens[i - 1].text == "." || f.tokens[i - 1].text == "->")) {
    return false;  // member call (e.g. a stream's read()), not the syscall
  }
  return true;
}

}  // namespace

void check_blocking_io(Context& ctx) {
  for (const auto& [rel, file] : ctx.tree.files) {
    if (rel.rfind("src/serve/", 0) != 0) continue;
    for (std::size_t i = 0; i < file.tokens.size(); ++i) {
      if (!is_raw_syscall(file, i)) continue;
      const SourceFile::Func* fn = file.enclosing(i);
      bool waived = false;
      for (const Waiver& w : kWaivers) {
        if (rel == w.file && fn != nullptr && fn->name == w.func) {
          waived = true;
          break;
        }
      }
      if (!waived) {
        ctx.report_at(
            "PL014", "blocking-call-undeadlined", rel, file.tokens[i].line,
            "raw ::" + file.tokens[i].text + "() in " +
                (fn != nullptr ? fn->name + "()" : std::string("file scope")) +
                " is not an audited deadline wrapper — route it through "
                "read_exact/read_frame (poll-bounded) or add a justified "
                "waiver in rules_io.cpp");
      }
    }
  }

  // Stale waivers: the excuse must die with the code it excused.
  for (const Waiver& w : kWaivers) {
    const SourceFile* f = ctx.file(w.file);
    if (f == nullptr) continue;
    const SourceFile::Func* fn = f->find_func(w.func);
    if (fn == nullptr) continue;
    bool any = false;
    for (std::size_t i = fn->open_tok + 1; i < fn->close_tok; ++i) {
      if (is_raw_syscall(*f, i)) {
        any = true;
        break;
      }
    }
    if (!any) {
      ctx.report_at("PL014", "blocking-call-undeadlined", w.file, fn->line,
                    std::string("stale waiver: ") + w.func +
                        "() no longer contains a raw blocking syscall — "
                        "remove its entry from the PL014 allowlist");
    }
  }
}

}  // namespace pfact_lint
