#pragma once
// The pfact_lint engine: findings, the rule-run context, the rule catalogue,
// and the committed checkpoint manifest.
//
// A rule is a free function `void check_xxx(Context&)` living in one
// rules_*.cpp module per family (see rules.h). The driver loads a SourceTree
// once, runs every rule over the shared Context, and renders the findings
// (text or --json). Rule IDs are stable and documented in the catalogue
// below — the manifest records them so the fixture meta-test can insist on
// one violating fixture per rule.

#include <optional>
#include <string>
#include <vector>

#include "lint/source.h"

namespace pfact_lint {

struct Finding {
  std::string rule;     // "PL001"
  std::string slug;     // "counter-unnamed"
  std::string message;  // what and why
  std::string file;     // repo-relative location, empty for tree-wide rules
  int line = 0;         // 1-based; 0 when no precise anchor exists
};

struct Context {
  const SourceTree& tree;
  std::vector<Finding> findings;
  bool io_error = false;

  explicit Context(const SourceTree& t) : tree(t) {}

  void report(const std::string& rule, const std::string& slug,
              const std::string& message);
  void report_at(const std::string& rule, const std::string& slug,
                 const std::string& file, int line,
                 const std::string& message);

  // The scrubbed text of a tracked source file. A miss prints a cannot-read
  // diagnostic and sets io_error (exit 2), exactly like the pre-engine
  // linter's per-file reads — the taxonomy rules treat their anchor files
  // as required.
  const std::string& scrub(const std::string& relpath);

  // The tokenized file, or nullptr. No error on a miss: the structural
  // rules (PL013–PL017) scan whatever subset of the tree exists, so a
  // violation fixture only carries the files its seeded drift needs.
  const SourceFile* file(const std::string& relpath) const;
};

struct RuleInfo {
  const char* id;
  const char* slug;
  const char* summary;
};

// Every rule the engine can emit, in ID order.
const std::vector<RuleInfo>& rule_catalogue();

// --- checkpoint schema + manifest (PL006–PL008 state, and --update-manifest)

struct CheckpointSchema {
  std::vector<std::string> tags;  // as parsed, declaration order
  std::optional<long> version;
};

CheckpointSchema parse_checkpoint_schema(Context& ctx);

struct Manifest {
  std::optional<long> version;
  std::vector<std::string> tags;  // sorted
  bool present = false;
};

Manifest read_manifest(const std::string& path);

// Writes version + sorted tags + one `rule <id> <slug>` line per catalogue
// entry (the committed record that every rule is fixture-covered; unknown
// keys are ignored by read_manifest, so old manifests stay parsable).
bool write_manifest(const std::string& path, const CheckpointSchema& s);

// Runs every rule. `manifest_path` feeds PL007/PL008.
void run_all_rules(Context& ctx, const std::string& manifest_path);

// JSON string escaping for --json output.
std::string json_escape(const std::string& s);

}  // namespace pfact_lint
