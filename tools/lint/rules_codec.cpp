// PL013 codec-asymmetry: every PFCK/PFRM encode_X/decode_X pair must mirror
// field-for-field. The encoder's ordered ByteWriter::put_* sequence is
// compared against the decoder's ByteReader::get_*/take_* sequence; any
// width mismatch, order swap, or unpaired field is a finding.
//
// The extraction is structural, not textual: a small recursive descent over
// the token stream walks each codec body and linearizes it —
//   * an if/else whose two branches emit IDENTICAL op sequences collapses
//     to one copy (the encoder's data-dependent formatting of the SAME
//     field, e.g. the empty-circuit special case in encode_request);
//     branches that differ are concatenated, which surfaces as a mismatch
//     for its human to judge;
//   * loop bodies are emitted exactly once (a counted group: the count
//     field precedes it on both sides);
//   * calls inside conditions count in source order (decoders range-check
//     via `if (!to_enum(r.get_u32(), out))`).
// Widths come from the method suffix (put_u64 -> u64, take_u32 -> u32;
// take_* is normalized onto get_*). patch_*/reserve are not data-order ops.
//
// Deliberate skips, pinned by the clean fixture:
//   * functions with multiple same-name definitions in a file (the dense vs
//     sparse StorageCodec::encode_entries/decode_entries template pair) —
//     one-to-one body pairing would cross-match them;
//   * a FINAL put_bytes with no get counterpart: the house trailer idiom,
//     where the decoder consumes the remainder of the payload directly
//     (decode_checkpoint_frame's payload.substr(8)).

#include <regex>

#include "lint/rules.h"

namespace pfact_lint {

namespace {

// encode_checkpoint_parts is the hot-path spelling of the checkpoint
// encoder; its decoder kept the storage-generic name.
const struct {
  const char* encode;
  const char* decode;
} kPairAliases[] = {
    {"encode_checkpoint_parts", "decode_storage_checkpoint"},
};

bool is_punct(const SourceFile& f, std::size_t i, const char* p) {
  return i < f.tokens.size() && f.tokens[i].kind == TokKind::kPunct &&
         f.tokens[i].text == p;
}

bool is_ident(const SourceFile& f, std::size_t i, const char* name) {
  return i < f.tokens.size() && f.tokens[i].kind == TokKind::kIdent &&
         f.tokens[i].text == name;
}

// If token i is a data op of the requested side ("put" or "get"), returns
// its width suffix; take_* counts as get_*.
std::string op_width(const SourceFile& f, std::size_t i, bool put_side) {
  if (i + 1 >= f.tokens.size() || f.tokens[i].kind != TokKind::kIdent ||
      !is_punct(f, i + 1, "(")) {
    return std::string();
  }
  const std::string& name = f.tokens[i].text;
  const auto split = [&](const char* prefix) -> std::string {
    const std::size_t n = std::string(prefix).size();
    if (name.size() > n && name.compare(0, n, prefix) == 0) {
      return name.substr(n);
    }
    return std::string();
  };
  if (put_side) return split("put_");
  std::string w = split("get_");
  if (w.empty()) w = split("take_");
  return w;
}

std::size_t match_fwd(const SourceFile& f, std::size_t i, const char* open,
                      const char* close, std::size_t end) {
  int depth = 0;
  for (; i < end; ++i) {
    if (is_punct(f, i, open)) ++depth;
    if (is_punct(f, i, close) && --depth == 0) return i;
  }
  return end;
}

struct Walker {
  const SourceFile& f;
  bool put_side;

  // Ops in [i, end) with no structural interpretation (conditions, plain
  // statements).
  std::vector<std::string> flat(std::size_t i, std::size_t end) const {
    std::vector<std::string> ops;
    for (; i < end; ++i) {
      const std::string w = op_width(f, i, put_side);
      if (!w.empty()) ops.push_back(w);
    }
    return ops;
  }

  std::vector<std::string> block(std::size_t i, std::size_t end) const {
    std::vector<std::string> ops;
    while (i < end) {
      auto [o, next] = construct(i, end);
      ops.insert(ops.end(), o.begin(), o.end());
      i = next <= i ? i + 1 : next;
    }
    return ops;
  }

  // One statement or control construct starting at i; returns its ops and
  // the index just past it.
  std::pair<std::vector<std::string>, std::size_t> construct(
      std::size_t i, std::size_t end) const {
    std::vector<std::string> ops;
    if (i >= end) return {ops, end};

    if (is_ident(f, i, "if")) {
      std::size_t j = i + 1;
      if (is_ident(f, j, "constexpr")) ++j;
      if (!is_punct(f, j, "(")) return {ops, i + 1};
      const std::size_t close = match_fwd(f, j, "(", ")", end);
      ops = flat(j + 1, close);
      auto [then_ops, after_then] = construct(close + 1, end);
      if (is_ident(f, after_then, "else")) {
        auto [else_ops, after_else] = construct(after_then + 1, end);
        if (else_ops == then_ops) {
          ops.insert(ops.end(), then_ops.begin(), then_ops.end());
        } else {
          ops.insert(ops.end(), then_ops.begin(), then_ops.end());
          ops.insert(ops.end(), else_ops.begin(), else_ops.end());
        }
        return {ops, after_else};
      }
      ops.insert(ops.end(), then_ops.begin(), then_ops.end());
      return {ops, after_then};
    }

    if (is_ident(f, i, "for") || is_ident(f, i, "while")) {
      if (!is_punct(f, i + 1, "(")) return {ops, i + 1};
      const std::size_t close = match_fwd(f, i + 1, "(", ")", end);
      ops = flat(i + 2, close);
      auto [body_ops, after] = construct(close + 1, end);
      ops.insert(ops.end(), body_ops.begin(), body_ops.end());
      return {ops, after};
    }

    if (is_ident(f, i, "do")) {
      auto [body_ops, after] = construct(i + 1, end);
      ops = body_ops;
      if (is_ident(f, after, "while") && is_punct(f, after + 1, "(")) {
        const std::size_t close = match_fwd(f, after + 1, "(", ")", end);
        const std::vector<std::string> cond = flat(after + 2, close);
        ops.insert(ops.end(), cond.begin(), cond.end());
        after = close + 1;
        if (is_punct(f, after, ";")) ++after;
      }
      return {ops, after};
    }

    if (is_punct(f, i, "{")) {
      const std::size_t close = match_fwd(f, i, "{", "}", end);
      return {block(i + 1, close), close + 1};
    }

    // Plain statement: scan to the ';' at zero nesting, collecting flat.
    int depth = 0;
    std::size_t j = i;
    for (; j < end; ++j) {
      if (is_punct(f, j, "(") || is_punct(f, j, "{")) ++depth;
      if (is_punct(f, j, ")") || is_punct(f, j, "}")) --depth;
      if (depth == 0 && is_punct(f, j, ";")) break;
      const std::string w = op_width(f, j, put_side);
      if (!w.empty()) ops.push_back(w);
    }
    return {ops, j + 1};
  }
};

std::vector<std::string> codec_ops(const SourceFile& f,
                                   const SourceFile::Func& fn,
                                   bool put_side) {
  Walker w{f, put_side};
  return w.block(fn.open_tok + 1, fn.close_tok);
}

std::string join(const std::vector<std::string>& ops) {
  std::string out;
  for (const std::string& o : ops) {
    if (!out.empty()) out += ",";
    out += o;
  }
  return out.empty() ? "<none>" : out;
}

}  // namespace

void check_codec_symmetry(Context& ctx) {
  static const std::regex enc_name("^encode_(\\w+)$");
  for (const auto& [rel, file] : ctx.tree.files) {
    if (rel.rfind("src/robustness/", 0) != 0 &&
        rel.rfind("src/serve/", 0) != 0) {
      continue;
    }
    for (const SourceFile::Func& enc : file.funcs) {
      std::smatch m;
      if (!std::regex_match(enc.name, m, enc_name)) continue;
      if (file.func_count(enc.name) > 1) continue;  // template dense/sparse

      std::string dec_name = "decode_" + m[1].str();
      for (const auto& alias : kPairAliases) {
        if (enc.name == alias.encode) dec_name = alias.decode;
      }
      const SourceFile::Func* dec = file.find_func(dec_name);
      if (dec == nullptr || file.func_count(dec_name) > 1) continue;

      const std::vector<std::string> puts = codec_ops(file, enc, true);
      std::vector<std::string> gets = codec_ops(file, *dec, false);
      if (puts == gets) continue;

      // Trailer idiom: a final put_bytes the decoder consumes as "the rest
      // of the payload" without a ByteReader op.
      if (!puts.empty() && puts.back() == "bytes" &&
          std::vector<std::string>(puts.begin(), puts.end() - 1) == gets) {
        continue;
      }

      // Localize the first divergence for the message.
      std::size_t k = 0;
      while (k < puts.size() && k < gets.size() && puts[k] == gets[k]) ++k;
      std::string detail;
      if (k < puts.size() && k < gets.size()) {
        detail = "field " + std::to_string(k + 1) + ": encoder puts '" +
                 puts[k] + "' but decoder reads '" + gets[k] + "'";
      } else if (k < puts.size()) {
        detail = "encoder writes " + std::to_string(puts.size()) +
                 " field(s) but decoder reads only " +
                 std::to_string(gets.size()) + " — unpaired trailing '" +
                 puts[k] + "'";
      } else {
        detail = "decoder reads " + std::to_string(gets.size()) +
                 " field(s) but encoder writes only " +
                 std::to_string(puts.size()) + " — unpaired trailing '" +
                 gets[k] + "'";
      }
      ctx.report_at(
          "PL013", "codec-asymmetry", rel, dec->line,
          enc.name + "/" + dec_name + " disagree: " + detail +
              " (encoder: " + join(puts) + "; decoder: " + join(gets) +
              ") — a blob written by one side would misparse on the other");
    }
  }
}

}  // namespace pfact_lint
