#pragma once
// House-style source scrapers — the line/regex layer under rules PL001–PL012.
//
// These parse the repo's own house style (clang-format'd, one enumerator per
// line, switch cases of the form `case Enum::kX: ... return "...";`), not
// arbitrary C++. That trade is deliberate: the checked files are part of
// this repo, and the fixtures pin the accepted shapes. Each function takes
// SCRUBBED text (comments blanked to spaces — SourceFile::scrub), so a
// function or enum name mentioned in prose can never hijack an anchor.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pfact_lint {

// Enumerators of `enum class <name>`, in declaration order, excluding the
// kCount_ sentinel.
std::vector<std::string> parse_enum(const std::string& src,
                                    const std::string& name);

// The brace-matched body of the function named `name`: the text between the
// '{' that opens its definition and the matching '}'. A definition site is
// an occurrence of `name` that is a whole token, is followed by '(', and
// reaches a '{' before any ';' (which would make it a declaration or a
// call). Empty when no such body is found. String/char literals in the
// checked files never contain braces, so plain counting is sufficient (the
// fixtures pin this).
std::string function_body(const std::string& src, const std::string& name);

// `case <enum>::<id>:` sites, each mapped to the token that decides it: the
// first `return <something>;` at or after the case label. Fall-through case
// labels share their group's return, which is exactly the classifier's
// shape. Returns enumerator -> returned expression text (trimmed); a
// `break;` before the return records the empty string (the sentinel's
// escape).
std::map<std::string, std::string> parse_switch_returns(
    const std::string& src, const std::string& enum_name);

// The quoted string inside a returned expression, if it is one.
std::optional<std::string> quoted(const std::string& expr);

bool is_kebab_case(const std::string& s);

}  // namespace pfact_lint
