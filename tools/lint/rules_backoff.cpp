// PL018 adhoc-backoff: a sleep in src/serve/ is only lawful when the slept
// duration flows through RetryPolicy::backoff — i.e. the enclosing function
// also calls backoff() — or when the site carries an audited waiver. The
// serving layer's whole reproducibility story rests on ONE seeded backoff
// schedule (client retries, shard restarts); a hand-rolled
// sleep_for(100ms)-and-retry loop silently forks that story: it works in a
// demo, drifts in production, and is invisible to the soak's bit-equality
// checks because it never touches the RetryPolicy seed.
//
// The allowlist is (file, function, why), checked both ways exactly like
// PL014: an unwaived sleep with no backoff() in scope is a finding, and a
// waived function that no longer sleeps is a STALE WAIVER finding.

#include <set>
#include <string>

#include "lint/rules.h"

namespace pfact_lint {

namespace {

// The ways C++ in this repo can block a thread for a duration. Condition
// waits (wait_for/wait_until) are deliberately absent: they park on a
// predicate, not a schedule, so they are not retry pacing.
const std::set<std::string> kSleepCalls = {
    "sleep_for", "sleep_until", "usleep", "nanosleep", "sleep",
};

struct Waiver {
  const char* file;
  const char* func;
  const char* why;
};

const Waiver kWaivers[] = {
    {"src/serve/client.cpp", "run_attempt",
     "chaos-injection pacing: the dribble shape's per-byte delay and the "
     "slowloris stall are the FAULT being injected, not retry logic — their "
     "durations are part of the NetFault plan, already seeded upstream"},
};

bool is_sleep_call(const SourceFile& f, std::size_t i) {
  if (f.tokens[i].kind != TokKind::kIdent) return false;
  if (kSleepCalls.count(f.tokens[i].text) == 0) return false;
  if (i + 1 >= f.tokens.size() || f.tokens[i + 1].kind != TokKind::kPunct ||
      f.tokens[i + 1].text != "(") {
    return false;
  }
  return true;  // std::this_thread::sleep_for and ::usleep both qualify
}

// True when fn's body calls backoff(...) — the RetryPolicy seam. Matching
// the bare member name is deliberate: client retries spell it
// options_.retry.backoff, the router spells it options_.restart.backoff,
// and both are the same audited schedule.
bool calls_backoff(const SourceFile& f, const SourceFile::Func& fn) {
  for (std::size_t i = fn.open_tok + 1; i < fn.close_tok; ++i) {
    if (f.tokens[i].kind == TokKind::kIdent && f.tokens[i].text == "backoff" &&
        i + 1 < f.tokens.size() && f.tokens[i + 1].kind == TokKind::kPunct &&
        f.tokens[i + 1].text == "(") {
      return true;
    }
  }
  return false;
}

}  // namespace

void check_adhoc_backoff(Context& ctx) {
  for (const auto& [rel, file] : ctx.tree.files) {
    if (rel.rfind("src/serve/", 0) != 0) continue;
    for (std::size_t i = 0; i < file.tokens.size(); ++i) {
      if (!is_sleep_call(file, i)) continue;
      const SourceFile::Func* fn = file.enclosing(i);
      if (fn != nullptr && calls_backoff(file, *fn)) continue;
      bool waived = false;
      for (const Waiver& w : kWaivers) {
        if (rel == w.file && fn != nullptr && fn->name == w.func) {
          waived = true;
          break;
        }
      }
      if (!waived) {
        ctx.report_at(
            "PL018", "adhoc-backoff", rel, file.tokens[i].line,
            file.tokens[i].text + "() in " +
                (fn != nullptr ? fn->name + "()" : std::string("file scope")) +
                " sleeps a duration that never flowed through "
                "RetryPolicy::backoff — hand-rolled pacing forks the seeded "
                "retry schedule; route the delay through a RetryPolicy or "
                "add a justified waiver in rules_backoff.cpp");
      }
    }
  }

  // Stale waivers: the excuse must die with the code it excused.
  for (const Waiver& w : kWaivers) {
    const SourceFile* f = ctx.file(w.file);
    if (f == nullptr) continue;
    const SourceFile::Func* fn = f->find_func(w.func);
    if (fn == nullptr) continue;
    bool any = false;
    for (std::size_t i = fn->open_tok + 1; i < fn->close_tok; ++i) {
      if (is_sleep_call(*f, i)) {
        any = true;
        break;
      }
    }
    if (!any) {
      ctx.report_at("PL018", "adhoc-backoff", w.file, fn->line,
                    std::string("stale waiver: ") + w.func +
                        "() no longer contains a sleep call — remove its "
                        "entry from the PL018 allowlist");
    }
  }
}

}  // namespace pfact_lint
