#pragma once
// pfact_lint structural layer: a C++ tokenizer plus a per-file token-stream
// index over the repository tree.
//
// The tokenizer strips // and /* */ comments, understands string, char and
// raw-string literals (so a brace or a "case" inside a literal can never
// confuse a rule), and is preprocessor-aware: #include directives are
// extracted into a per-file include list, and other directive lines are
// tokenized like ordinary code so macro-based call sites (PFACT_COUNT and
// friends) remain visible to rules.
//
// Two views of every file are maintained:
//   * tokens  — the token stream, for structural rules (PL013–PL017)
//   * scrub   — the raw text with comments blanked to spaces (newlines and
//               string literals preserved), for the line-oriented scrapers
//               the PL001–PL012 port runs (see scrape.h)
//
// Nothing here links against the pfact library: the linter must keep
// working when the library itself fails to compile, which is exactly when a
// taxonomy drifted.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace pfact_lint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (pp-numbers, good enough for linting)
  kString,  // "..." or R"...(...)..." — text holds the full literal
  kChar,    // '...'
  kPunct,   // every operator / punctuator, one token each ("::" is one)
};

struct Token {
  TokKind kind;
  std::string text;
  std::size_t begin = 0;  // byte offsets into SourceFile::text
  std::size_t end = 0;
  int line = 1;
};

struct Include {
  std::string path;  // as written between the delimiters
  bool system = false;  // <...> vs "..."
  int line = 1;
};

struct SourceFile {
  std::string relpath;  // repo-relative, '/'-separated
  std::string text;     // raw bytes
  std::string scrub;    // comments blanked to spaces, all else verbatim
  std::vector<Token> tokens;
  std::vector<Include> includes;

  // A free- or member-function definition: `name` is the terminal
  // identifier (member functions drop their class qualifier into `qual`),
  // and [open_tok, close_tok] bracket the brace-matched body. Constructor
  // initializer lists are walked through, so a ctor body is attributed to
  // the constructor, not to its last initializer.
  struct Func {
    std::string name;
    std::string qual;  // "Frontend" for Frontend::event_loop, else empty
    std::size_t name_tok = 0;
    std::size_t open_tok = 0;   // index of '{'
    std::size_t close_tok = 0;  // index of matching '}'
    int line = 1;
  };
  std::vector<Func> funcs;

  // The innermost named function whose body contains token `tok`, or
  // nullptr when the token sits at namespace/class scope.
  const Func* enclosing(std::size_t tok) const;

  // First function with this terminal name, or nullptr.
  const Func* find_func(const std::string& name) const;
  // How many definitions share this terminal name (overloads, template
  // specializations). Rules that pair bodies one-to-one skip names with
  // multiple definitions.
  std::size_t func_count(const std::string& name) const;
};

// Tokenizes `text` into `out` (tokens, scrub, includes, funcs).
void tokenize(const std::string& text, SourceFile& out);

// The loaded repository slice the rules run over.
//
//   files      src/**/*.{h,cpp}, fully tokenized
//   aux_texts  tests/** and bench/** sources, raw text only (rules only
//              grep these for mentions, so tokenizing them is wasted work)
//
// Both maps are keyed by repo-relative path. Loading never fails on a
// missing subtree (a fixture tree holds only the files its violation
// needs); `io_error` is set only when the root itself is unreadable.
struct SourceTree {
  std::string root;
  bool io_error = false;
  std::map<std::string, SourceFile> files;
  std::map<std::string, std::string> aux_texts;

  static SourceTree load(const std::string& root);

  // The tokenized file at `rel`, or nullptr.
  const SourceFile* find(const std::string& rel) const;
};

}  // namespace pfact_lint
