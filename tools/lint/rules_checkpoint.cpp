// The PFCK schema ratchet (PL006, PL007, PL008, PL011): checkpoint field
// tags must be unique, the tag set may only change together with a
// kCheckpointVersion bump, the committed manifest must record the current
// state, and the sparse tag namespace is derived from the dense one.

#include <algorithm>
#include <map>
#include <regex>
#include <set>

#include "lint/rules.h"
#include "lint/scrape.h"

namespace pfact_lint {

// PL006: duplicate tags (checked before sorting loses multiplicity).
void check_tag_uniqueness(Context& ctx, const CheckpointSchema& schema) {
  std::set<std::string> seen;
  for (const std::string& t : schema.tags) {
    if (!seen.insert(t).second) {
      ctx.report("PL006", "checkpoint-tag-duplicate",
                 "field_tag \"" + t +
                     "\" is returned by more than one specialization in "
                     "src/robustness/checkpoint.h — resume could validate "
                     "a blob from the wrong field");
    }
  }
}

// PL011: the sparse tag namespace is derived, not free-form. Every
// sparse_field_tag<T>() specialization must (a) shadow an existing dense
// field_tag<T>() for the SAME scalar T — a sparse codec for a field the
// dense world cannot decode would strand blobs on backend escalation,
// (b) spell its tag as "sparse-" + the dense tag, so tag pairs stay
// mechanically relatable across the manifest ratchet, and (c) appear in the
// all_sparse_field_tags() sweep list, which the checkpoint corruption tests
// (tests/robustness/test_checkpoint_sparse.cpp) iterate — an unswept tag is
// a codec no rejection matrix ever exercises.
void check_sparse_tags(Context& ctx) {
  const std::string src = ctx.scrub("src/robustness/checkpoint.h");
  if (src.empty()) return;

  const auto normalize = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (!std::isspace(static_cast<unsigned char>(c))) out += c;
    }
    return out;
  };

  // Group 1 distinguishes the namespaces: "sparse_" for the sparse
  // specializations, empty for the dense ones (any other identifier prefix
  // would be a third tag family this rule does not govern).
  const std::regex spec(
      "(\\w*)field_tag<([^>]+)>\\(\\)\\s*\\{\\s*return\\s*\"([^\"]+)\"");
  std::map<std::string, std::string> dense_tags;   // scalar arg -> tag
  std::map<std::string, std::string> sparse_tags;  // scalar arg -> tag
  for (auto it = std::sregex_iterator(src.begin(), src.end(), spec);
       it != std::sregex_iterator(); ++it) {
    const std::string prefix = (*it)[1].str();
    const std::string arg = normalize((*it)[2].str());
    const std::string tag = (*it)[3].str();
    if (prefix == "sparse_") {
      sparse_tags[arg] = tag;
    } else if (prefix.empty()) {
      dense_tags[arg] = tag;
    }
  }

  std::set<std::string> swept;  // scalar args mentioned in the sweep list
  const std::string sweep_body = function_body(src, "all_sparse_field_tags");
  const std::regex mention("sparse_field_tag<([^>]+)>");
  for (auto it =
           std::sregex_iterator(sweep_body.begin(), sweep_body.end(), mention);
       it != std::sregex_iterator(); ++it) {
    swept.insert(normalize((*it)[1].str()));
  }

  for (const auto& [arg, tag] : sparse_tags) {
    const std::string spelled = "sparse_field_tag<" + arg + ">";
    const auto dense = dense_tags.find(arg);
    if (dense == dense_tags.end()) {
      ctx.report("PL011", "sparse-tag-unregistered",
                 spelled + " (\"" + tag +
                     "\") has no dense field_tag<" + arg +
                     "> counterpart in src/robustness/checkpoint.h — a "
                     "sparse blob of this field could never be cross-checked "
                     "or resumed densely");
    } else if (tag != "sparse-" + dense->second) {
      ctx.report("PL011", "sparse-tag-unregistered",
                 spelled + " returns \"" + tag + "\" but the naming law "
                     "requires \"sparse-" + dense->second +
                     "\" (the dense tag with the sparse- prefix)");
    }
    if (swept.count(arg) == 0) {
      ctx.report("PL011", "sparse-tag-unregistered",
                 spelled +
                     " is missing from the all_sparse_field_tags() sweep "
                     "list — the checkpoint corruption matrix would never "
                     "exercise its codec");
    }
  }
}

// PL007/PL008: the tag set may only change together with a version bump,
// and the manifest must record the current state.
void check_manifest(Context& ctx, const CheckpointSchema& schema,
                    const std::string& manifest_path) {
  const Manifest m = read_manifest(manifest_path);
  if (!m.present || !m.version.has_value()) {
    ctx.report("PL008", "checkpoint-manifest-outdated",
               "manifest " + manifest_path +
                   " is missing or unparsable — regenerate with "
                   "--update-manifest");
    return;
  }
  std::vector<std::string> tags = schema.tags;
  std::sort(tags.begin(), tags.end());
  const bool tags_changed = tags != m.tags;
  const bool version_changed = schema.version != m.version;
  if (tags_changed && !version_changed) {
    std::string delta;
    for (const std::string& t : tags) {
      if (!std::binary_search(m.tags.begin(), m.tags.end(), t)) {
        delta += " +" + t;
      }
    }
    for (const std::string& t : m.tags) {
      if (!std::binary_search(tags.begin(), tags.end(), t)) delta += " -" + t;
    }
    ctx.report("PL007", "checkpoint-version-stale",
               "the checkpoint field-tag set changed (" +
                   (delta.empty() ? std::string(" reordered") : delta) +
                   " ) but kCheckpointVersion is still " +
                   std::to_string(m.version.value()) +
                   " — old blobs would decode under the new schema; bump "
                   "the version, then --update-manifest");
  } else if (tags_changed || version_changed) {
    ctx.report("PL008", "checkpoint-manifest-outdated",
               "manifest records version " +
                   std::to_string(m.version.value()) + " with " +
                   std::to_string(m.tags.size()) +
                   " tag(s), but src/robustness/checkpoint.h now has "
                   "version " +
                   (schema.version ? std::to_string(*schema.version)
                                   : std::string("?")) +
                   " with " + std::to_string(schema.tags.size()) +
                   " tag(s) — regenerate with --update-manifest");
  }
}

}  // namespace pfact_lint
