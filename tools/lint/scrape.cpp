#include "lint/scrape.h"

#include <cctype>
#include <regex>

namespace pfact_lint {

std::vector<std::string> parse_enum(const std::string& src,
                                    const std::string& name) {
  std::vector<std::string> out;
  const std::regex head("enum\\s+class\\s+" + name + "\\b[^{]*\\{");
  std::smatch m;
  if (!std::regex_search(src, m, head)) return out;
  const std::size_t begin = static_cast<std::size_t>(m.position()) + m.length();
  const std::size_t end = src.find("};", begin);
  if (end == std::string::npos) return out;
  const std::string body = src.substr(begin, end - begin);
  const std::regex enumerator("(?:^|[\\n,{])\\s*(k[A-Za-z0-9_]+)\\s*[,=}]");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), enumerator);
       it != std::sregex_iterator(); ++it) {
    const std::string id = (*it)[1].str();
    if (id != "kCount_") out.push_back(id);
  }
  return out;
}

std::string function_body(const std::string& src, const std::string& name) {
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  for (std::size_t at = src.find(name); at != std::string::npos;
       at = src.find(name, at + 1)) {
    if (at > 0 && is_ident(src[at - 1])) continue;
    std::size_t after = at + name.size();
    while (after < src.size() &&
           std::isspace(static_cast<unsigned char>(src[after]))) {
      ++after;
    }
    if (after >= src.size() || src[after] != '(') continue;
    const std::size_t open = src.find('{', after);
    const std::size_t semi = src.find(';', after);
    if (open == std::string::npos || (semi != std::string::npos && semi < open))
      continue;
    int depth = 0;
    for (std::size_t i = open; i < src.size(); ++i) {
      if (src[i] == '{') ++depth;
      if (src[i] == '}' && --depth == 0) {
        return src.substr(open, i - open + 1);
      }
    }
    return std::string();
  }
  return std::string();
}

std::map<std::string, std::string> parse_switch_returns(
    const std::string& src, const std::string& enum_name) {
  std::map<std::string, std::string> out;
  const std::regex label("case\\s+" + enum_name + "::(k[A-Za-z0-9_]+)\\s*:");
  const std::regex ret("return\\s+([^;]+);");
  for (auto it = std::sregex_iterator(src.begin(), src.end(), label);
       it != std::sregex_iterator(); ++it) {
    const std::string id = (*it)[1].str();
    const std::size_t from =
        static_cast<std::size_t>(it->position()) + it->length();
    const std::size_t brk = src.find("break;", from);
    std::smatch r;
    const std::string rest = src.substr(from);
    if (std::regex_search(rest, r, ret)) {
      const std::size_t rpos = from + static_cast<std::size_t>(r.position());
      if (brk != std::string::npos && brk < rpos) {
        out[id] = "";
      } else {
        out[id] = r[1].str();
      }
    } else {
      out[id] = "";
    }
  }
  return out;
}

std::optional<std::string> quoted(const std::string& expr) {
  const std::regex q("^\\s*\"([^\"]*)\"\\s*$");
  std::smatch m;
  if (std::regex_match(expr, m, q)) return m[1].str();
  return std::nullopt;
}

bool is_kebab_case(const std::string& s) {
  if (s.empty() || s.front() == '-' || s.back() == '-') return false;
  for (char c : s) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '-')) {
      return false;
    }
  }
  return true;
}

}  // namespace pfact_lint
