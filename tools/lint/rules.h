#pragma once
// One declaration per rule family; one rules_*.cpp module per family.

#include "lint/engine.h"

namespace pfact_lint {

// rules_taxonomy.cpp — the closed-taxonomy consistency rules.
void check_obs_names(Context& ctx);          // PL001 PL002 PL003
void check_fault_classes(Context& ctx);      // PL004
void check_diagnostics(Context& ctx);        // PL005
void check_worker_exits(Context& ctx);       // PL009
void check_serve_rejections(Context& ctx);   // PL010
void check_frontend_statuses(Context& ctx);  // PL012
void check_shard_statuses(Context& ctx);     // PL019

// rules_checkpoint.cpp — the PFCK schema ratchet.
void check_tag_uniqueness(Context& ctx, const CheckpointSchema& s);  // PL006
void check_sparse_tags(Context& ctx);                                // PL011
void check_manifest(Context& ctx, const CheckpointSchema& s,
                    const std::string& manifest_path);  // PL007 PL008

// rules_codec.cpp — PL013 codec-asymmetry.
void check_codec_symmetry(Context& ctx);

// rules_io.cpp — PL014 blocking-call-undeadlined.
void check_blocking_io(Context& ctx);

// rules_signal.cpp — PL015 signal-unsafe-handler.
void check_signal_safety(Context& ctx);

// rules_layers.cpp — PL016 layering-violation.
void check_layering(Context& ctx);

// rules_obs.cpp — PL017 counter-dead.
void check_counter_liveness(Context& ctx);

// rules_backoff.cpp — PL018 adhoc-backoff.
void check_adhoc_backoff(Context& ctx);

}  // namespace pfact_lint
