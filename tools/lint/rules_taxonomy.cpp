// Closed-taxonomy consistency rules (PL001–PL005, PL009, PL010, PL012).
//
// The repo's dynamic layers hang off a handful of closed taxonomies:
// obs::Counter / obs::Histogram (every enumerator needs a stable JSON name),
// robustness::FaultClass (every fault must be sweepable and printable),
// robustness::Diagnostic (every diagnostic must classify to exactly one
// FailureKind), the serve-side WorkerExit / Admission / CacheProbe /
// FrontendStatus rejection taxonomies. Each taxonomy is DEFINED in one file
// and CONSUMED in another, so a forgotten enumerator compiles cleanly and
// only fails at runtime — if a test happens to reach it. These rules close
// that gap at lint time.

#include <map>
#include <regex>
#include <set>

#include "lint/rules.h"
#include "lint/scrape.h"

namespace pfact_lint {

// PL001/PL002/PL003: every Counter/Histogram enumerator carries a unique
// kebab-case name string in the name-switch.
void check_obs_names(Context& ctx) {
  const std::string header = ctx.scrub("src/obs/counters.h");
  const std::string impl = ctx.scrub("src/obs/counters.cpp");
  if (header.empty() || impl.empty()) return;

  std::map<std::string, std::string> seen;  // name -> "Enum::kId"
  const struct {
    const char* enum_name;
    const char* fn_name;
    const char* rule;
    const char* slug;
  } taxa[] = {{"Counter", "counter_name", "PL001", "counter-unnamed"},
              {"Histogram", "histogram_name", "PL003", "histogram-unnamed"}};
  for (const auto& taxon : taxa) {
    const std::vector<std::string> ids = parse_enum(header, taxon.enum_name);
    if (ids.empty()) {
      ctx.report(taxon.rule, taxon.slug,
                 std::string("enum class ") + taxon.enum_name +
                     " not found in src/obs/counters.h");
      continue;
    }
    const std::map<std::string, std::string> cases = parse_switch_returns(
        function_body(impl, taxon.fn_name), taxon.enum_name);
    for (const std::string& id : ids) {
      const auto it = cases.find(id);
      const std::optional<std::string> name =
          it == cases.end() ? std::nullopt : quoted(it->second);
      if (!name.has_value()) {
        ctx.report(taxon.rule, taxon.slug,
                   std::string(taxon.enum_name) + "::" + id +
                       " has no name-string case in src/obs/counters.cpp");
        continue;
      }
      const std::string qualified =
          std::string(taxon.enum_name) + "::" + id;
      if (!is_kebab_case(*name)) {
        ctx.report("PL002", "obs-name-collision",
                   qualified + " name \"" + *name + "\" is not kebab-case");
      }
      const auto [pos, inserted] = seen.emplace(*name, qualified);
      if (!inserted) {
        ctx.report("PL002", "obs-name-collision",
                   qualified + " reuses name \"" + *name + "\" already "
                   "taken by " + pos->second);
      }
    }
  }
}

// PL004: the fault taxonomy is printable and sweepable.
void check_fault_classes(Context& ctx) {
  const std::string src = ctx.scrub("src/robustness/fault_injector.h");
  if (src.empty()) return;
  const std::vector<std::string> ids = parse_enum(src, "FaultClass");
  if (ids.empty()) {
    ctx.report("PL004", "fault-class-unhandled",
               "enum class FaultClass not found in "
               "src/robustness/fault_injector.h");
    return;
  }
  const std::map<std::string, std::string> names = parse_switch_returns(
      function_body(src, "fault_class_name"), "FaultClass");

  // The all_fault_classes() sweep list: every FaultClass:: mention inside
  // the function body (the static vector's brace-initializer).
  std::set<std::string> swept;
  const std::string sweep_body = function_body(src, "all_fault_classes");
  const std::regex mention("FaultClass::(k[A-Za-z0-9_]+)");
  for (auto it =
           std::sregex_iterator(sweep_body.begin(), sweep_body.end(), mention);
       it != std::sregex_iterator(); ++it) {
    swept.insert((*it)[1].str());
  }
  for (const std::string& id : ids) {
    const auto it = names.find(id);
    if (it == names.end() || !quoted(it->second).has_value()) {
      ctx.report("PL004", "fault-class-unhandled",
                 "FaultClass::" + id +
                     " has no name case in fault_class_name()");
    }
    if (id != "kNone" && swept.count(id) == 0) {
      ctx.report("PL004", "fault-class-unhandled",
                 "FaultClass::" + id +
                     " is missing from the all_fault_classes() sweep list — "
                     "the robustness suite would never inject it");
    }
  }
}

// PL005: every Diagnostic both prints and classifies.
void check_diagnostics(Context& ctx) {
  const std::string header = ctx.scrub("src/robustness/diagnostics.h");
  const std::string classifier = ctx.scrub("src/robustness/retry.cpp");
  if (header.empty() || classifier.empty()) return;
  const std::vector<std::string> ids = parse_enum(header, "Diagnostic");
  if (ids.empty()) {
    ctx.report("PL005", "diagnostic-unclassified",
               "enum class Diagnostic not found in "
               "src/robustness/diagnostics.h");
    return;
  }
  const std::map<std::string, std::string> names = parse_switch_returns(
      function_body(header, "diagnostic_name"), "Diagnostic");
  const std::map<std::string, std::string> kinds = parse_switch_returns(
      function_body(classifier, "classify_diagnostic"), "Diagnostic");
  for (const std::string& id : ids) {
    const auto n = names.find(id);
    if (n == names.end() || !quoted(n->second).has_value()) {
      ctx.report("PL005", "diagnostic-unclassified",
                 "Diagnostic::" + id +
                     " has no name case in diagnostic_name()");
    }
    const auto k = kinds.find(id);
    if (k == kinds.end() || k->second.find("FailureKind::") ==
                                std::string::npos) {
      ctx.report("PL005", "diagnostic-unclassified",
                 "Diagnostic::" + id +
                     " is not mapped to a FailureKind in "
                     "classify_diagnostic() (src/robustness/retry.cpp)");
    }
  }
}

// PL009: the worker-death taxonomy is printable, diagnosable, and swept.
// WorkerExit is DEFINED in src/serve/worker_pool.h (with its name switch and
// the all_worker_exits() sweep the soak harness certifies coverage against)
// but DIAGNOSED in src/serve/supervisor.h — the classic cross-file gap this
// tool exists for: a new death class compiles everywhere and silently falls
// through to the kInternalError backstop at the first real crash.
void check_worker_exits(Context& ctx) {
  const std::string pool = ctx.scrub("src/serve/worker_pool.h");
  const std::string sup = ctx.scrub("src/serve/supervisor.h");
  if (pool.empty() || sup.empty()) return;
  const std::vector<std::string> ids = parse_enum(pool, "WorkerExit");
  if (ids.empty()) {
    ctx.report("PL009", "worker-exit-unmapped",
               "enum class WorkerExit not found in src/serve/worker_pool.h");
    return;
  }
  const std::map<std::string, std::string> names = parse_switch_returns(
      function_body(pool, "worker_exit_name"), "WorkerExit");
  const std::map<std::string, std::string> diags = parse_switch_returns(
      function_body(sup, "diagnose_worker_exit"), "WorkerExit");

  std::set<std::string> swept;
  const std::string sweep_body = function_body(pool, "all_worker_exits");
  const std::regex mention("WorkerExit::(k[A-Za-z0-9_]+)");
  for (auto it =
           std::sregex_iterator(sweep_body.begin(), sweep_body.end(), mention);
       it != std::sregex_iterator(); ++it) {
    swept.insert((*it)[1].str());
  }
  for (const std::string& id : ids) {
    const auto n = names.find(id);
    if (n == names.end() || !quoted(n->second).has_value()) {
      ctx.report("PL009", "worker-exit-unmapped",
                 "WorkerExit::" + id +
                     " has no name case in worker_exit_name()");
    }
    const auto d = diags.find(id);
    if (d == diags.end() ||
        d->second.find("Diagnostic::") == std::string::npos) {
      ctx.report("PL009", "worker-exit-unmapped",
                 "WorkerExit::" + id +
                     " is not mapped to a Diagnostic in "
                     "diagnose_worker_exit() (src/serve/supervisor.h) — a "
                     "worker dying this way would hit the kInternalError "
                     "backstop instead of the retry taxonomy");
    }
    if (swept.count(id) == 0) {
      ctx.report("PL009", "worker-exit-unmapped",
                 "WorkerExit::" + id +
                     " is missing from the all_worker_exits() sweep list — "
                     "the real-kill soak could never certify coverage of it");
    }
  }
}

// PL010: the serving layer's rejection taxonomies — queue Admission and
// cache CacheProbe — are printable, diagnosable, and swept. Each lives in a
// single header, but the silent-fallthrough failure PL009 guards against
// applies just the same: a new shed or probe class compiles cleanly, prints
// as "?", and falls through to the kInternalError backstop the first time
// real overload (or a corrupt cache entry) reaches it. The sweep lists are
// what the service tests and the --serve soak certify coverage against.
void check_serve_rejections(Context& ctx) {
  struct Taxonomy {
    const char* file;
    const char* enum_name;
    const char* name_fn;
    const char* sweep_fn;
    const char* diag_fn;
  };
  static const Taxonomy kTaxonomies[] = {
      {"src/serve/queue.h", "Admission", "admission_name", "all_admissions",
       "diagnose_admission"},
      {"src/serve/result_cache.h", "CacheProbe", "cache_probe_name",
       "all_cache_probes", "diagnose_cache_probe"},
  };
  for (const Taxonomy& t : kTaxonomies) {
    const std::string text = ctx.scrub(t.file);
    if (text.empty()) continue;
    const std::vector<std::string> ids = parse_enum(text, t.enum_name);
    if (ids.empty()) {
      ctx.report("PL010", "serve-rejection-unmapped",
                 std::string("enum class ") + t.enum_name + " not found in " +
                     t.file);
      continue;
    }
    const std::map<std::string, std::string> names =
        parse_switch_returns(function_body(text, t.name_fn), t.enum_name);
    const std::map<std::string, std::string> diags =
        parse_switch_returns(function_body(text, t.diag_fn), t.enum_name);

    std::set<std::string> swept;
    const std::string sweep_body = function_body(text, t.sweep_fn);
    const std::regex mention(std::string(t.enum_name) + "::(k[A-Za-z0-9_]+)");
    for (auto it = std::sregex_iterator(sweep_body.begin(), sweep_body.end(),
                                        mention);
         it != std::sregex_iterator(); ++it) {
      swept.insert((*it)[1].str());
    }
    for (const std::string& id : ids) {
      const std::string qualified = std::string(t.enum_name) + "::" + id;
      const auto n = names.find(id);
      if (n == names.end() || !quoted(n->second).has_value()) {
        ctx.report("PL010", "serve-rejection-unmapped",
                   qualified + " has no name case in " + t.name_fn + "()");
      }
      const auto d = diags.find(id);
      if (d == diags.end() ||
          d->second.find("Diagnostic::") == std::string::npos) {
        ctx.report("PL010", "serve-rejection-unmapped",
                   qualified + " is not mapped to a Diagnostic in " +
                       t.diag_fn + "() (" + t.file +
                       ") — this rejection would reach clients as the "
                       "kInternalError backstop instead of a classified, "
                       "retryable shed");
      }
      if (swept.count(id) == 0) {
        ctx.report("PL010", "serve-rejection-unmapped",
                   qualified + " is missing from the " + t.sweep_fn +
                       "() sweep list — the service tests and --serve soak "
                       "could never certify coverage of it");
      }
    }
  }
}

// PL012: the socket front end's conversation taxonomy is total FOUR ways —
// named (log lines), counted (obs counters), diagnosed (the client's retry
// table), and swept (the rejection-matrix test and the --net soak's
// full-coverage contract iterate all_frontend_statuses()). A FrontendStatus
// added without all four legs compiles cleanly and only shows up as an
// unexplained client hang-up under real network weather.
void check_frontend_statuses(Context& ctx) {
  const char* file = "src/serve/frontend.h";
  const std::string text = ctx.scrub(file);
  if (text.empty()) return;
  const std::vector<std::string> ids = parse_enum(text, "FrontendStatus");
  if (ids.empty()) {
    ctx.report("PL012", "frontend-status-unmapped",
               std::string("enum class FrontendStatus not found in ") + file);
    return;
  }
  const std::map<std::string, std::string> names = parse_switch_returns(
      function_body(text, "frontend_status_name"), "FrontendStatus");
  const std::map<std::string, std::string> diags = parse_switch_returns(
      function_body(text, "diagnose_frontend_status"), "FrontendStatus");
  const std::map<std::string, std::string> counters = parse_switch_returns(
      function_body(text, "frontend_status_counter"), "FrontendStatus");

  std::set<std::string> swept;
  const std::string sweep_body =
      function_body(text, "all_frontend_statuses");
  const std::regex mention("FrontendStatus::(k[A-Za-z0-9_]+)");
  for (auto it =
           std::sregex_iterator(sweep_body.begin(), sweep_body.end(), mention);
       it != std::sregex_iterator(); ++it) {
    swept.insert((*it)[1].str());
  }
  for (const std::string& id : ids) {
    const std::string qualified = "FrontendStatus::" + id;
    const auto n = names.find(id);
    if (n == names.end() || !quoted(n->second).has_value() ||
        !is_kebab_case(*quoted(n->second))) {
      ctx.report("PL012", "frontend-status-unmapped",
                 qualified +
                     " has no kebab-case name case in "
                     "frontend_status_name()");
    }
    const auto d = diags.find(id);
    if (d == diags.end() ||
        d->second.find("Diagnostic::") == std::string::npos) {
      ctx.report("PL012", "frontend-status-unmapped",
                 qualified + " is not mapped to a Diagnostic in "
                             "diagnose_frontend_status() — the client "
                             "library could not decide retry vs fail-fast "
                             "for it");
    }
    const auto c = counters.find(id);
    if (c == counters.end() ||
        c->second.find("Counter::") == std::string::npos) {
      ctx.report("PL012", "frontend-status-unmapped",
                 qualified + " has no obs counter in "
                             "frontend_status_counter() — conversations "
                             "ending this way would be invisible to "
                             "monitoring");
    }
    if (swept.count(id) == 0) {
      ctx.report("PL012", "frontend-status-unmapped",
                 qualified + " is missing from the all_frontend_statuses() "
                             "sweep list — the rejection-matrix test and "
                             "the --net soak could never certify coverage "
                             "of it");
    }
  }
}

// PL019: the sharded-serving taxonomies — the router's view of a shard's
// lifecycle (ShardStatus) and the four ways a routed submit can end
// (RouterStatus) — must each keep all four legs: kebab name, Diagnostic
// mapping, obs counter, sweep membership. The --shard soak's coverage
// contract iterates the sweep lists; an enumerator missing a leg compiles
// clean and only surfaces when a chaos campaign happens to produce it.
void check_shard_statuses(Context& ctx) {
  const struct {
    const char* file;
    const char* enum_name;
    const char* name_fn;
    const char* diag_fn;
    const char* counter_fn;
    const char* sweep_fn;
  } taxa[] = {
      {"src/serve/shard.h", "ShardStatus", "shard_status_name",
       "diagnose_shard_status", "shard_status_counter", "all_shard_statuses"},
      {"src/serve/router.h", "RouterStatus", "router_status_name",
       "diagnose_router_status", "router_status_counter",
       "all_router_statuses"},
  };
  for (const auto& taxon : taxa) {
    const std::string text = ctx.scrub(taxon.file);
    if (text.empty()) continue;
    const std::vector<std::string> ids = parse_enum(text, taxon.enum_name);
    if (ids.empty()) {
      ctx.report("PL019", "shard-status-unmapped",
                 std::string("enum class ") + taxon.enum_name +
                     " not found in " + taxon.file);
      continue;
    }
    const std::map<std::string, std::string> names = parse_switch_returns(
        function_body(text, taxon.name_fn), taxon.enum_name);
    const std::map<std::string, std::string> diags = parse_switch_returns(
        function_body(text, taxon.diag_fn), taxon.enum_name);
    const std::map<std::string, std::string> counters = parse_switch_returns(
        function_body(text, taxon.counter_fn), taxon.enum_name);

    std::set<std::string> swept;
    const std::string sweep_body = function_body(text, taxon.sweep_fn);
    const std::regex mention(std::string(taxon.enum_name) +
                             "::(k[A-Za-z0-9_]+)");
    for (auto it = std::sregex_iterator(sweep_body.begin(), sweep_body.end(),
                                        mention);
         it != std::sregex_iterator(); ++it) {
      swept.insert((*it)[1].str());
    }
    for (const std::string& id : ids) {
      const std::string qualified =
          std::string(taxon.enum_name) + "::" + id;
      const auto n = names.find(id);
      if (n == names.end() || !quoted(n->second).has_value() ||
          !is_kebab_case(*quoted(n->second))) {
        ctx.report("PL019", "shard-status-unmapped",
                   qualified + " has no kebab-case name case in " +
                       taxon.name_fn + "()");
      }
      const auto d = diags.find(id);
      if (d == diags.end() ||
          d->second.find("Diagnostic::") == std::string::npos) {
        ctx.report("PL019", "shard-status-unmapped",
                   qualified + " is not mapped to a Diagnostic in " +
                       taxon.diag_fn +
                       "() — the router could not classify retry vs "
                       "fail-fast for requests that meet it");
      }
      const auto c = counters.find(id);
      if (c == counters.end() ||
          c->second.find("Counter::") == std::string::npos) {
        ctx.report("PL019", "shard-status-unmapped",
                   qualified + " has no obs counter in " + taxon.counter_fn +
                       "() — restart storms and shed spikes ending in this "
                       "state would be invisible to monitoring");
      }
      if (swept.count(id) == 0) {
        ctx.report("PL019", "shard-status-unmapped",
                   qualified + " is missing from the " + taxon.sweep_fn +
                       "() sweep list — the --shard soak's coverage "
                       "contract could never certify it");
      }
    }
  }
}

}  // namespace pfact_lint
