// PL015 signal-unsafe-handler: every function reachable from a registered
// signal handler may only perform async-signal-safe operations. A handler
// that calls malloc, printf, or takes a lock deadlocks or corrupts state
// with probability proportional to exactly how unlucky the soak run is.
//
// Registration sites are scraped from the whole tree (`sa_handler = NAME`,
// `sa_sigaction = NAME`, `signal(SIG..., NAME)`; SIG_IGN/SIG_DFL are not
// handlers). From each handler the call graph is walked by name: a callee
// defined anywhere in src/ is recursed into; an undefined callee must be on
// the async-signal-safe allowlist (POSIX table plus lock-free atomics).

#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "lint/rules.h"

namespace pfact_lint {

namespace {

// POSIX async-signal-safe functions this codebase plausibly reaches, plus
// compiler intrinsics. Extend deliberately; the whole point is friction.
const std::set<std::string> kSafeFree = {
    "write", "read",  "close", "_exit",  "_Exit",        "abort",
    "raise", "kill",  "signal", "sigaction", "fsync",    "fdatasync",
    "dup",   "dup2",  "pipe",  "getpid", "gettid",       "time",
    "clock_gettime", "sem_post", "send", "recv",
};

// Methods safe on lock-free std::atomic<T> (and atomic_flag).
const std::set<std::string> kSafeMethods = {
    "load",        "store",
    "exchange",    "compare_exchange_strong",
    "compare_exchange_weak", "fetch_add",
    "fetch_sub",   "fetch_or",
    "fetch_and",   "fetch_xor",
    "test_and_set", "clear",
    "test",
};

const std::set<std::string> kNotCalls = {
    "if",     "for",     "while",  "switch", "catch",    "return",
    "sizeof", "alignof", "do",     "else",   "defined",  "noexcept",
};

struct Def {
  const SourceFile* file;
  const SourceFile::Func* func;
};

using DefIndex = std::map<std::string, std::vector<Def>>;

void walk(Context& ctx, const DefIndex& defs, const std::string& handler,
          const Def& d, std::set<std::string>& visited) {
  const std::string key = d.file->relpath + "#" + d.func->name;
  if (!visited.insert(key).second) return;

  const SourceFile& f = *d.file;
  for (std::size_t i = d.func->open_tok + 1; i < d.func->close_tok; ++i) {
    if (f.tokens[i].kind != TokKind::kIdent) continue;
    if (i + 1 >= f.tokens.size() || f.tokens[i + 1].kind != TokKind::kPunct ||
        f.tokens[i + 1].text != "(") {
      continue;
    }
    const std::string& name = f.tokens[i].text;
    if (kNotCalls.count(name) != 0) continue;

    const bool member = i > 0 && f.tokens[i - 1].kind == TokKind::kPunct &&
                        (f.tokens[i - 1].text == "." ||
                         f.tokens[i - 1].text == "->");
    if (member) {
      if (kSafeMethods.count(name) == 0) {
        ctx.report_at(
            "PL015", "signal-unsafe-handler", f.relpath, f.tokens[i].line,
            "signal handler " + handler + " reaches member call ." + name +
                "() in " + d.func->name +
                "() — only lock-free atomic operations are "
                "async-signal-safe here");
      }
      continue;
    }
    if (kSafeFree.count(name) != 0) continue;
    const auto it = defs.find(name);
    if (it != defs.end()) {
      for (const Def& callee : it->second) {
        walk(ctx, defs, handler, callee, visited);
      }
      continue;
    }
    ctx.report_at(
        "PL015", "signal-unsafe-handler", f.relpath, f.tokens[i].line,
        "signal handler " + handler + " reaches " + name + "() in " +
            d.func->name +
            "() — not on the async-signal-safe allowlist and not defined "
            "in src/ (so it cannot be audited)");
  }
}

}  // namespace

void check_signal_safety(Context& ctx) {
  // 1. Registered handler names.
  std::set<std::string> handlers;
  static const std::regex assign(
      R"(sa_(?:handler|sigaction)\s*=\s*([A-Za-z_]\w*))");
  static const std::regex via_signal(
      R"(\bsignal\s*\(\s*SIG[A-Z0-9]+\s*,\s*([A-Za-z_]\w*)\s*\))");
  for (const auto& [rel, file] : ctx.tree.files) {
    for (const std::regex* re : {&assign, &via_signal}) {
      for (auto it = std::sregex_iterator(file.scrub.begin(),
                                          file.scrub.end(), *re);
           it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (name != "SIG_IGN" && name != "SIG_DFL") handlers.insert(name);
      }
    }
  }
  if (handlers.empty()) return;

  // 2. Name -> definitions index over the whole tree.
  DefIndex defs;
  for (const auto& [rel, file] : ctx.tree.files) {
    for (const SourceFile::Func& fn : file.funcs) {
      defs[fn.name].push_back({&file, &fn});
    }
  }

  // 3. Walk reachability from each handler.
  for (const std::string& h : handlers) {
    const auto it = defs.find(h);
    if (it == defs.end()) continue;  // registered but defined out of tree
    std::set<std::string> visited;
    for (const Def& d : it->second) {
      walk(ctx, defs, h, d, visited);
    }
  }
}

}  // namespace pfact_lint
