#include "lint/engine.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>

#include "lint/rules.h"

namespace pfact_lint {

void Context::report(const std::string& rule, const std::string& slug,
                     const std::string& message) {
  findings.push_back({rule, slug, message, "", 0});
}

void Context::report_at(const std::string& rule, const std::string& slug,
                        const std::string& file, int line,
                        const std::string& message) {
  findings.push_back({rule, slug, message, file, line});
}

const std::string& Context::scrub(const std::string& relpath) {
  static const std::string kEmpty;
  const SourceFile* f = tree.find(relpath);
  if (f == nullptr) {
    std::cerr << "pfact_lint: cannot read " << tree.root << "/" << relpath
              << "\n";
    io_error = true;
    return kEmpty;
  }
  return f->scrub;
}

const SourceFile* Context::file(const std::string& relpath) const {
  return tree.find(relpath);
}

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kRules = {
      {"PL001", "counter-unnamed",
       "Counter enumerator with no counter_name() case returning a string"},
      {"PL002", "obs-name-collision",
       "two Counter/Histogram enumerators share a name, or a name is not "
       "kebab-case"},
      {"PL003", "histogram-unnamed",
       "Histogram enumerator with no histogram_name() case"},
      {"PL004", "fault-class-unhandled",
       "FaultClass enumerator missing from fault_class_name() or the "
       "all_fault_classes() sweep"},
      {"PL005", "diagnostic-unclassified",
       "Diagnostic enumerator missing from classify_diagnostic() or "
       "diagnostic_name()"},
      {"PL006", "checkpoint-tag-duplicate",
       "two field_tag<T>() specializations return the same tag string"},
      {"PL007", "checkpoint-version-stale",
       "the field-tag set changed but kCheckpointVersion was not bumped "
       "against the committed manifest"},
      {"PL008", "checkpoint-manifest-outdated",
       "the committed manifest does not match the current (version, tag "
       "set); regenerate with --update-manifest"},
      {"PL009", "worker-exit-unmapped",
       "WorkerExit enumerator not named, not diagnosed, or missing from the "
       "all_worker_exits() sweep"},
      {"PL010", "serve-rejection-unmapped",
       "Admission/CacheProbe enumerator not named, not diagnosed, or missing "
       "from its sweep list"},
      {"PL011", "sparse-tag-unregistered",
       "sparse_field_tag<T>() without a dense counterpart, off the sparse- "
       "naming law, or unswept"},
      {"PL012", "frontend-status-unmapped",
       "FrontendStatus enumerator missing a name, Diagnostic, obs counter, "
       "or sweep entry"},
      {"PL013", "codec-asymmetry",
       "an encode_X/decode_X pair's ByteWriter put_* and ByteReader "
       "get_*/take_* field sequences disagree in width or order"},
      {"PL014", "blocking-call-undeadlined",
       "raw read/write/recv/send/accept/poll in src/serve/ outside an "
       "audited deadline-wrapper function"},
      {"PL015", "signal-unsafe-handler",
       "a registered signal handler reaches a call outside the "
       "async-signal-safe allowlist"},
      {"PL016", "layering-violation",
       "an #include edge that points up (or sideways) in the module layer "
       "map — a back edge in the include DAG"},
      {"PL017", "counter-dead",
       "a registered Counter/Histogram enumerator that is never incremented "
       "in src/, or never observed by any test or bench source"},
      {"PL018", "adhoc-backoff",
       "a sleep in src/serve/ whose duration never flowed through "
       "RetryPolicy::backoff — hand-rolled pacing outside the seeded retry "
       "schedule"},
      {"PL019", "shard-status-unmapped",
       "a ShardStatus or RouterStatus enumerator missing a kebab name, "
       "Diagnostic mapping, obs counter, or sweep-list entry"},
  };
  return kRules;
}

CheckpointSchema parse_checkpoint_schema(Context& ctx) {
  CheckpointSchema schema;
  const std::string& src = ctx.scrub("src/robustness/checkpoint.h");
  if (src.empty()) return schema;
  const std::regex tag(
      "field_tag<[^>]+>\\(\\)\\s*\\{\\s*return\\s*\"([^\"]+)\"");
  for (auto it = std::sregex_iterator(src.begin(), src.end(), tag);
       it != std::sregex_iterator(); ++it) {
    schema.tags.push_back((*it)[1].str());
  }
  const std::regex ver("kCheckpointVersion\\s*=\\s*([0-9]+)");
  std::smatch m;
  if (std::regex_search(src, m, ver)) schema.version = std::stol(m[1].str());
  return schema;
}

Manifest read_manifest(const std::string& path) {
  Manifest m;
  std::ifstream in(path);
  if (!in) return m;
  m.present = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key, value;
    ls >> key >> value;
    if (key == "version") m.version = std::stol(value);
    if (key == "tag") m.tags.push_back(value);
  }
  std::sort(m.tags.begin(), m.tags.end());
  return m;
}

bool write_manifest(const std::string& path, const CheckpointSchema& s) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# pfact_lint checkpoint manifest — the committed record of the\n"
         "# \"PFCK\" blob schema. Regenerate ONLY together with a\n"
         "# kCheckpointVersion bump:  pfact_lint --root . --update-manifest\n";
  out << "version " << (s.version ? *s.version : 0) << "\n";
  std::vector<std::string> tags = s.tags;
  std::sort(tags.begin(), tags.end());
  for (const std::string& t : tags) out << "tag " << t << "\n";
  out << "# Rule registry: every ID below must keep >= 1 violating fixture\n"
         "# under tests/staticcheck/fixtures/ (pinned by the lint CLI\n"
         "# meta-test).\n";
  for (const RuleInfo& r : rule_catalogue()) {
    out << "rule " << r.id << " " << r.slug << "\n";
  }
  return static_cast<bool>(out);
}

void run_all_rules(Context& ctx, const std::string& manifest_path) {
  const CheckpointSchema schema = parse_checkpoint_schema(ctx);
  check_obs_names(ctx);
  check_fault_classes(ctx);
  check_diagnostics(ctx);
  check_worker_exits(ctx);
  check_serve_rejections(ctx);
  check_frontend_statuses(ctx);
  check_tag_uniqueness(ctx, schema);
  check_sparse_tags(ctx);
  check_manifest(ctx, schema, manifest_path);
  check_codec_symmetry(ctx);
  check_blocking_io(ctx);
  check_signal_safety(ctx);
  check_layering(ctx);
  check_counter_liveness(ctx);
  check_adhoc_backoff(ctx);
  check_shard_statuses(ctx);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace pfact_lint
