// PL017 counter-dead: the counter taxonomy must stay LIVE at both ends.
// Every registered Counter/Histogram enumerator must be (a) incremented
// somewhere in src/ or bench/ — a counter nothing bumps measures nothing —
// and (b) observed by at least one test or bench source (by enumerator or
// by its kebab name), because an unasserted counter silently rots: the
// instrumentation it summarizes can break and no lane goes red.
//
// The increment leg deliberately excludes src/obs/counters.{h,cpp}: the
// enum definition and the name switch mention every enumerator by
// construction and prove nothing about liveness.

#include <map>
#include <regex>
#include <set>
#include <string>

#include "lint/rules.h"
#include "lint/scrape.h"

namespace pfact_lint {

namespace {

int line_of_first(const std::string& text, const std::string& ident) {
  const std::regex word("\\b" + ident + "\\b");
  std::smatch m;
  if (!std::regex_search(text, m, word)) return 1;
  int line = 1;
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.position()); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

// Enumerators bumped in `text`: macro call sites and qualified mentions.
void collect_increments(const std::string& text, std::set<std::string>& out) {
  static const std::regex bump(
      R"((?:PFACT_COUNT|PFACT_COUNT_N|PFACT_HISTO)\s*\(\s*(k\w+)|(?:Counter|Histogram)::(k\w+))");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), bump);
       it != std::sregex_iterator(); ++it) {
    const std::string id = (*it)[1].matched ? (*it)[1].str() : (*it)[2].str();
    out.insert(id);
  }
}

}  // namespace

void check_counter_liveness(Context& ctx) {
  const SourceFile* counters = ctx.file("src/obs/counters.h");
  if (counters == nullptr) return;  // check_obs_names already flags this

  struct Taxon {
    const char* enum_name;
    const char* name_fn;
  };
  static const Taxon kTaxa[] = {{"Counter", "counter_name"},
                                {"Histogram", "histogram_name"}};

  // Kebab names from the name switches (for the observed leg).
  std::map<std::string, std::string> kebab;  // enumerator -> name
  const SourceFile* impl = ctx.file("src/obs/counters.cpp");
  if (impl != nullptr) {
    for (const Taxon& t : kTaxa) {
      for (const auto& [id, expr] : parse_switch_returns(
               function_body(impl->scrub, t.name_fn), t.enum_name)) {
        if (const auto q = quoted(expr)) kebab[id] = *q;
      }
    }
  }

  // Increment leg: src/ (minus the definition files) plus bench/ sources.
  std::set<std::string> incremented;
  for (const auto& [rel, file] : ctx.tree.files) {
    if (rel == "src/obs/counters.h" || rel == "src/obs/counters.cpp")
      continue;
    collect_increments(file.scrub, incremented);
  }
  for (const auto& [rel, text] : ctx.tree.aux_texts) {
    if (rel.rfind("bench/", 0) == 0) collect_increments(text, incremented);
  }

  // Observed leg: enumerator tokens and quoted strings across tests+bench.
  std::set<std::string> observed_ids;
  std::set<std::string> observed_names;
  static const std::regex enum_tok(R"(\bk[A-Z]\w*\b)");
  static const std::regex quoted_str("\"([a-z0-9-]+)\"");
  for (const auto& [rel, text] : ctx.tree.aux_texts) {
    for (auto it = std::sregex_iterator(text.begin(), text.end(), enum_tok);
         it != std::sregex_iterator(); ++it) {
      observed_ids.insert(it->str());
    }
    for (auto it = std::sregex_iterator(text.begin(), text.end(), quoted_str);
         it != std::sregex_iterator(); ++it) {
      observed_names.insert((*it)[1].str());
    }
  }

  for (const Taxon& t : kTaxa) {
    for (const std::string& id : parse_enum(counters->scrub, t.enum_name)) {
      const bool inc = incremented.count(id) != 0;
      const auto name = kebab.find(id);
      const bool obs =
          observed_ids.count(id) != 0 ||
          (name != kebab.end() && observed_names.count(name->second) != 0);
      if (inc && obs) continue;
      std::string what;
      if (!inc) {
        what = "is never incremented in src/ or bench/ — it measures "
               "nothing";
      }
      if (!obs) {
        if (!what.empty()) what += ", and ";
        what +=
            "is not asserted or recorded by any test or bench source — it "
            "can silently rot";
      }
      ctx.report_at("PL017", "counter-dead", "src/obs/counters.h",
                    line_of_first(counters->scrub, id),
                    std::string(t.enum_name) + "::" + id + " " + what);
    }
  }
}

}  // namespace pfact_lint
