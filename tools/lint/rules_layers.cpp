// PL016 layering-violation: the module include graph must stay the DAG the
// architecture promises, or the CAQR/CALU task-graph scheduler and the GF(p)
// substrate land on quicksand. The layer map is explicit — adding a module
// means deciding its rank here, in review, not by accident at #include time.
//
// Ranks (low = foundational; an #include may only point at a strictly lower
// rank, the same module, or a declared peer):
//
//   0  obs, parallel      (peers: the counter registry spans threads, the
//                          thread layer bumps counters — a deliberate,
//                          declared cycle at the very bottom)
//   1  numeric, circuit
//   2  matrix
//   3  factor
//   4  nc, core, analysis
//   5  robustness
//   6  serve
//
// Same-rank edges between DIFFERENT modules are violations too (rank ties
// express "no dependency either way", not "free-for-all").

#include <map>
#include <string>

#include "lint/rules.h"

namespace pfact_lint {

namespace {

const std::map<std::string, int>& layer_map() {
  static const std::map<std::string, int> kRanks = {
      {"obs", 0},    {"parallel", 0}, {"numeric", 1}, {"circuit", 1},
      {"matrix", 2}, {"factor", 3},   {"nc", 4},      {"core", 4},
      {"analysis", 4}, {"robustness", 5}, {"serve", 6},
  };
  return kRanks;
}

// Declared peer edges (both directions), module pairs at the same rank that
// ARE allowed to include each other.
const std::pair<const char*, const char*> kPeers[] = {
    {"obs", "parallel"},
};

// "src/obs/counters.h" -> "obs"; empty when the file sits directly in src/.
std::string module_of(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return std::string();
  const std::size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return std::string();
  return rel.substr(4, slash - 4);
}

bool is_peer(const std::string& a, const std::string& b) {
  for (const auto& [x, y] : kPeers) {
    if ((a == x && b == y) || (a == y && b == x)) return true;
  }
  return false;
}

}  // namespace

void check_layering(Context& ctx) {
  const auto& ranks = layer_map();
  for (const auto& [rel, file] : ctx.tree.files) {
    const std::string from = module_of(rel);
    if (from.empty()) continue;
    const auto from_rank = ranks.find(from);
    if (from_rank == ranks.end()) {
      ctx.report_at("PL016", "layering-violation", rel, 1,
                    "module src/" + from +
                        "/ is not in the layer map — assign it a rank in "
                        "rules_layers.cpp before it grows includes");
      continue;
    }
    for (const Include& inc : file.includes) {
      if (inc.system) continue;  // <...>: toolchain/system, not ours
      const std::size_t slash = inc.path.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string to = inc.path.substr(0, slash);
      const auto to_rank = ranks.find(to);
      if (to_rank == ranks.end()) continue;  // not one of our modules
      if (to == from) continue;
      if (to_rank->second < from_rank->second) continue;
      if (is_peer(from, to)) continue;
      ctx.report_at(
          "PL016", "layering-violation", rel, inc.line,
          "src/" + from + "/ (rank " + std::to_string(from_rank->second) +
              ") includes \"" + inc.path + "\" from src/" + to + "/ (rank " +
              std::to_string(to_rank->second) +
              ") — a back edge in the module DAG; depend downward only or "
              "declare an explicit peer pair in the layer map");
    }
  }
}

}  // namespace pfact_lint
