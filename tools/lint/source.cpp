#include "lint/source.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace pfact_lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest-match-first. Only the ones a rule
// could care to see as one token; everything else falls through to single
// characters.
const char* kPunct3[] = {"<<=", ">>=", "...", "->*"};
const char* kPunct2[] = {"::", "->", "<<", ">>", "<=", ">=", "==", "!=",
                         "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
                         "|=", "^=", "++", "--", "##"};

struct Cursor {
  const std::string& s;
  std::size_t i = 0;
  int line = 1;

  bool done() const { return i >= s.size(); }
  char at(std::size_t off = 0) const {
    return i + off < s.size() ? s[i + off] : '\0';
  }
  void advance() {
    if (s[i] == '\n') ++line;
    ++i;
  }
};

}  // namespace

void tokenize(const std::string& text, SourceFile& out) {
  out.text = text;
  out.scrub = text;
  out.tokens.clear();
  out.includes.clear();
  Cursor c{text};

  auto blank_scrub = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to; ++k) {
      if (out.scrub[k] != '\n') out.scrub[k] = ' ';
    }
  };
  auto push = [&](TokKind kind, std::size_t begin, std::size_t end,
                  int line) {
    out.tokens.push_back(
        {kind, text.substr(begin, end - begin), begin, end, line});
  };

  bool at_line_start = true;  // only whitespace seen since the last newline
  while (!c.done()) {
    const char ch = c.at();

    // Preprocessor directive: recognize #include and extract its path; the
    // directive's tokens are then emitted like ordinary code so macro call
    // sites inside #define bodies stay visible to the rules.
    if (ch == '#' && at_line_start) {
      std::size_t j = c.i + 1;
      while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
      std::size_t k = j;
      while (k < text.size() && is_ident_char(text[k])) ++k;
      const std::string directive = text.substr(j, k - j);
      if (directive == "include") {
        while (k < text.size() && (text[k] == ' ' || text[k] == '\t')) ++k;
        if (k < text.size() && (text[k] == '"' || text[k] == '<')) {
          const char close = text[k] == '"' ? '"' : '>';
          const std::size_t p0 = k + 1;
          std::size_t p1 = p0;
          while (p1 < text.size() && text[p1] != close && text[p1] != '\n')
            ++p1;
          out.includes.push_back(
              {text.substr(p0, p1 - p0), close == '>', c.line});
        }
      }
      // Fall through: the '#' itself becomes a punct token and the rest of
      // the line tokenizes normally.
    }
    at_line_start = at_line_start && (ch == ' ' || ch == '\t');
    if (ch == '\n') at_line_start = true;

    if (ch == '/' && c.at(1) == '/') {
      const std::size_t begin = c.i;
      while (!c.done() && c.at() != '\n') c.advance();
      blank_scrub(begin, c.i);
      continue;
    }
    if (ch == '/' && c.at(1) == '*') {
      const std::size_t begin = c.i;
      c.advance();
      c.advance();
      while (!c.done() && !(c.at() == '*' && c.at(1) == '/')) c.advance();
      if (!c.done()) {
        c.advance();
        c.advance();
      }
      blank_scrub(begin, c.i);
      continue;
    }

    // Raw string literal: R"delim( ... )delim". The scrub keeps it (string
    // contents are data some rules read), tokens carry the full literal.
    if (ch == 'R' && c.at(1) == '"' &&
        (out.tokens.empty() ||
         !(out.tokens.back().kind == TokKind::kIdent &&
           out.tokens.back().end == c.i))) {
      const std::size_t begin = c.i;
      const int line = c.line;
      std::size_t j = c.i + 2;
      std::string delim;
      while (j < text.size() && text[j] != '(') delim += text[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t close = text.find(closer, j);
      const std::size_t end =
          close == std::string::npos ? text.size() : close + closer.size();
      while (c.i < end && !c.done()) c.advance();
      push(TokKind::kString, begin, c.i, line);
      continue;
    }

    if (ch == '"' || ch == '\'') {
      const std::size_t begin = c.i;
      const int line = c.line;
      const char quote = ch;
      c.advance();
      while (!c.done() && c.at() != quote) {
        if (c.at() == '\\' && c.i + 1 < text.size()) c.advance();
        if (c.at() == '\n') break;  // unterminated: stop at the line end
        c.advance();
      }
      if (!c.done() && c.at() == quote) c.advance();
      push(quote == '"' ? TokKind::kString : TokKind::kChar, begin, c.i,
           line);
      continue;
    }

    if (is_ident_start(ch)) {
      const std::size_t begin = c.i;
      const int line = c.line;
      while (!c.done() && is_ident_char(c.at())) c.advance();
      push(TokKind::kIdent, begin, c.i, line);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(ch))) {
      const std::size_t begin = c.i;
      const int line = c.line;
      // pp-number: digits, idents, dots, and exponent signs.
      while (!c.done() &&
             (is_ident_char(c.at()) || c.at() == '.' ||
              ((c.at() == '+' || c.at() == '-') &&
               (text[c.i - 1] == 'e' || text[c.i - 1] == 'E' ||
                text[c.i - 1] == 'p' || text[c.i - 1] == 'P')))) {
        c.advance();
      }
      push(TokKind::kNumber, begin, c.i, line);
      continue;
    }

    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.advance();
      continue;
    }

    // Punctuator: longest match.
    {
      const std::size_t begin = c.i;
      const int line = c.line;
      std::size_t len = 1;
      for (const char* p : kPunct3) {
        if (text.compare(c.i, 3, p) == 0) {
          len = 3;
          break;
        }
      }
      if (len == 1) {
        for (const char* p : kPunct2) {
          if (text.compare(c.i, 2, p) == 0) {
            len = 2;
            break;
          }
        }
      }
      for (std::size_t k = 0; k < len; ++k) c.advance();
      push(TokKind::kPunct, begin, c.i, line);
    }
  }

  // --- function-definition scan over the token stream -----------------------
  const std::vector<Token>& t = out.tokens;
  auto is_punct = [&](std::size_t i, const char* p) {
    return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == p;
  };
  auto match_back = [&](std::size_t close) -> std::ptrdiff_t {
    // Index of the '(' matching the ')' at `close`, or -1.
    int depth = 0;
    for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(close); i >= 0; --i) {
      if (is_punct(static_cast<std::size_t>(i), ")")) ++depth;
      if (is_punct(static_cast<std::size_t>(i), "(") && --depth == 0)
        return i;
    }
    return -1;
  };
  auto match_fwd = [&](std::size_t open) -> std::ptrdiff_t {
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
      if (is_punct(i, "{")) ++depth;
      if (is_punct(i, "}") && --depth == 0)
        return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };
  static const char* kNotAFunction[] = {"if",     "for",   "while", "switch",
                                        "catch",  "do",    "else",  "return",
                                        "sizeof", "alignof"};

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_punct(i, "{")) continue;
    // Walk back over trailing qualifiers to the parameter list's ')'.
    std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) - 1;
    while (j >= 0 && t[j].kind == TokKind::kIdent &&
           (t[j].text == "const" || t[j].text == "noexcept" ||
            t[j].text == "override" || t[j].text == "final" ||
            t[j].text == "mutable")) {
      --j;
    }
    if (j < 0 || !is_punct(static_cast<std::size_t>(j), ")")) continue;

    // Hop left across constructor-initializer entries `, name(args)` /
    // `: name(args)` to the parameter list itself.
    std::ptrdiff_t open = match_back(static_cast<std::size_t>(j));
    for (int hops = 0; hops < 64 && open > 0; ++hops) {
      const std::ptrdiff_t name_at = open - 1;
      if (name_at <= 0 || t[name_at].kind != TokKind::kIdent) break;
      const std::ptrdiff_t before = name_at - 1;
      if (before < 0) break;
      const bool init_sep = is_punct(static_cast<std::size_t>(before), ",") ||
                            is_punct(static_cast<std::size_t>(before), ":");
      const bool colon_pair =
          before >= 1 && is_punct(static_cast<std::size_t>(before), ":") &&
          is_punct(static_cast<std::size_t>(before) - 1, "::");
      if (!init_sep || colon_pair) break;
      if (before < 1 || !is_punct(static_cast<std::size_t>(before) - 1, ")"))
        break;
      open = match_back(static_cast<std::size_t>(before) - 1);
    }
    if (open <= 0) continue;
    const std::ptrdiff_t name_at = open - 1;
    if (t[name_at].kind != TokKind::kIdent) continue;
    const std::string& name = t[name_at].text;
    bool skip = false;
    for (const char* kw : kNotAFunction) {
      if (name == kw) skip = true;
    }
    if (skip) continue;

    std::string qual;
    if (name_at >= 2 && is_punct(name_at - 1, "::") &&
        t[name_at - 2].kind == TokKind::kIdent) {
      qual = t[name_at - 2].text;
    }
    const std::ptrdiff_t close = match_fwd(i);
    if (close < 0) continue;
    out.funcs.push_back({name, qual, static_cast<std::size_t>(name_at), i,
                         static_cast<std::size_t>(close), t[name_at].line});
  }
}

const SourceFile::Func* SourceFile::enclosing(std::size_t tok) const {
  const Func* best = nullptr;
  for (const Func& f : funcs) {
    if (f.open_tok < tok && tok < f.close_tok) {
      if (best == nullptr ||
          f.close_tok - f.open_tok < best->close_tok - best->open_tok) {
        best = &f;
      }
    }
  }
  return best;
}

const SourceFile::Func* SourceFile::find_func(const std::string& name) const {
  for (const Func& f : funcs) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::size_t SourceFile::func_count(const std::string& name) const {
  std::size_t n = 0;
  for (const Func& f : funcs) {
    if (f.name == name) ++n;
  }
  return n;
}

namespace {

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

SourceTree SourceTree::load(const std::string& root) {
  namespace fs = std::filesystem;
  SourceTree tree;
  tree.root = root;
  std::error_code ec;
  if (!fs::is_directory(root, ec) || ec) {
    tree.io_error = true;
    return tree;
  }

  auto rel_of = [&](const fs::path& p) {
    return fs::path(p).lexically_relative(root).generic_string();
  };

  const fs::path src = fs::path(root) / "src";
  if (fs::is_directory(src, ec) && !ec) {
    for (auto it = fs::recursive_directory_iterator(src, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      SourceFile f;
      f.relpath = rel_of(it->path());
      tokenize(slurp(it->path()), f);
      tree.files.emplace(f.relpath, std::move(f));
    }
  }
  for (const char* dir : {"tests", "bench"}) {
    const fs::path d = fs::path(root) / dir;
    if (!fs::is_directory(d, ec) || ec) continue;
    for (auto it = fs::recursive_directory_iterator(d, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      tree.aux_texts.emplace(rel_of(it->path()), slurp(it->path()));
    }
  }
  return tree;
}

const SourceFile* SourceTree::find(const std::string& rel) const {
  const auto it = files.find(rel);
  return it == files.end() ? nullptr : &it->second;
}

}  // namespace pfact_lint
