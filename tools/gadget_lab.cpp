// Development harness for deriving the GEM/GEMS functional blocks.
#include <cstdio>
#include <vector>

#include "factor/gaussian.h"
#include "matrix/matrix.h"
#include "numeric/rational.h"

using pfact::Matrix;
using pfact::Permutation;
using pfact::factor::eliminate_steps;
using pfact::factor::PivotStrategy;
using R = pfact::numeric::Rational;

void run_candidate(const char* name, const Matrix<R>& tmpl,
                   const std::vector<std::pair<std::size_t, std::size_t>>&
                       value_slots,
                   std::size_t steps) {
  std::printf("==== %s ====\n", name);
  const std::size_t nvals = value_slots.size();
  for (unsigned m = 0; m < (1u << nvals); ++m) {
    for (auto strat :
         {PivotStrategy::kMinimalSwap, PivotStrategy::kMinimalShift}) {
      Matrix<R> a = tmpl;
      std::printf("-- %s  inputs:", strat == PivotStrategy::kMinimalSwap
                                        ? "GEM "
                                        : "GEMS");
      for (std::size_t v = 0; v < nvals; ++v) {
        int bit = (m >> v) & 1;
        a(value_slots[v].first, value_slots[v].second) = R(bit);
        std::printf(" %d", bit);
      }
      std::printf("\n");
      Permutation perm(a.rows());
      auto trace = eliminate_steps(a, strat, steps, &perm);
      std::printf("%s", a.to_string(3).c_str());
      std::printf("final perm:");
      for (std::size_t i = 0; i < perm.size(); ++i)
        std::printf(" %zu", perm[i]);
      std::printf("\n");
    }
  }
}

int main() {
  // PASS gadget: in-slot 0 (value a), aux rows/cols 1,2, out slot 3.
  // Contract: after eliminating cols 0..2, row 3 = (0,0,0,a), undisplaced.
  Matrix<R> pass{{0, 0, 0, 0},
                 {1, 1, 0, -1},
                 {0, 1, 0, 0},
                 {1, 2, 0, -1}};
  run_candidate("PASS", pass, {{0, 0}}, 3);

  // PASS with a foreign spacer row/col between aux and carrier (position 3
  // belongs to another gadget; carrier at 4). Spacer has support only in its
  // own column 3.
  Matrix<R> pass_spaced{{0, 0, 0, 0, 0},
                        {1, 1, 0, -1, 0},
                        {0, 1, 0, 0, 0},
                        {0, 0, 0, 5, 0},
                        {1, 2, 0, 0, -1}};
  run_candidate("PASS+spacer", pass_spaced, {{0, 0}}, 4);

  // NAND gadget: in-slots 0,1; compute row 2; shield row 3; carrier 5 with
  // a spacer at 4. Contract: row 5 -> (0,...,0, NAND(a,b)).
  Matrix<R> nand{{0, 0, 0, 0, 0, 0},
                 {0, 0, 0, 0, 0, 0},
                 {1, 1, -1, 0, 0, 0},
                 {0, 0, 1, 0, 0, -1},
                 {0, 0, 0, 0, 7, 0},
                 {1, 1, 0, 0, 0, 0}};
  run_candidate("NAND", nand, {{0, 0}, {1, 1}}, 5);

  // DUP v2: in-slot 0; aux rows 1..4 (compute1, shield1, compute2, shield2);
  // carriers B at 5 (target col 5) and A at 6 (target col 6).
  Matrix<R> dup{{0, 0, 0, 0, 0, 0, 0},
                {1, 1, 0, 1, 0, 0, -1},
                {0, 1, 0, 0, 0, 0, 0},
                {1, 0, 0, 1, 0, -1, 0},
                {0, 0, 0, 1, 0, 0, 0},
                {0, 0, 0, 1, 0, 0, 0},
                {0, 1, 0, 1, 0, 0, 0}};
  run_candidate("DUP v2", dup, {{0, 0}}, 5);

  // DUP v2 with spacers: foreign rows between shield2 and carrier B, and
  // between the carriers.
  Matrix<R> dup_sp{{0, 0, 0, 0, 0, 0, 0, 0, 0},
                   {1, 1, 0, 1, 0, 0, 0, 0, -1},
                   {0, 1, 0, 0, 0, 0, 0, 0, 0},
                   {1, 0, 0, 1, 0, 0, -1, 0, 0},
                   {0, 0, 0, 1, 0, 0, 0, 0, 0},
                   {0, 0, 0, 0, 0, 3, 0, 0, 0},
                   {0, 0, 0, 1, 0, 0, 0, 0, 0},
                   {0, 0, 0, 0, 0, 0, 0, 4, 0},
                   {0, 1, 0, 1, 0, 0, 0, 0, 0}};
  run_candidate("DUP v2 + spacers", dup_sp, {{0, 0}}, 7);

  // Composition smoke test: DUP(a) -> two slots -> NAND of the two copies
  // == NOT(a). Layout: 0 a; 1..4 dup aux; 5,6 dup targets; 7 nand compute;
  // 8 nand shield; 9 nand carrier (target col 9).
  Matrix<R> notviad{
      // 0  1  2  3  4  5  6  7  8  9
      {0, 0, 0, 0, 0, 0, 0, 0, 0, 0},    // 0: a
      {1, 1, 0, 1, 0, 0, -1, 0, 0, 0},   // 1: dup compute1 (target A = 6)
      {0, 1, 0, 0, 0, 0, 0, 0, 0, 0},    // 2: dup shield1
      {1, 0, 0, 1, 0, -1, 0, 0, 0, 0},   // 3: dup compute2 (target B = 5)
      {0, 0, 0, 1, 0, 0, 0, 0, 0, 0},    // 4: dup shield2
      {0, 0, 0, 1, 0, 0, 0, 0, 0, 0},    // 5: carrier B -> becomes nand in0
      {0, 1, 0, 1, 0, 0, 0, 0, 0, 0},    // 6: carrier A -> becomes nand in1
      {0, 0, 0, 0, 0, 1, 1, -1, 0, 0},   // 7: nand compute
      {0, 0, 0, 0, 0, 0, 0, 1, 0, -1},   // 8: nand shield
      {0, 0, 0, 0, 0, 1, 1, 0, 0, 0}};   // 9: nand carrier
  run_candidate("NOT via DUP+NAND", notviad, {{0, 0}}, 9);
  return 0;
}
