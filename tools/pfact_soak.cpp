// Supervised chaos soak for the resilient execution engine.
//
// Replays randomized-but-deterministic fault campaigns against the four
// reductions (GEM / GEMS / GEP / GQR, plus the bordered nonsingular GEM)
// through robustness::resilient_run and asserts the engine's one
// non-negotiable property: ZERO WRONG ANSWERS. Every campaign must end
// either certified-correct (the decoded boolean matches the direct circuit
// evaluation AND the task's ground truth) or as a classified terminal
// failure — a campaign that certifies the wrong boolean fails the whole
// soak immediately and dumps its evidence.
//
// Campaign shapes, selected per-campaign from the seed stream:
//   fault-sweep  — one FaultClass injected persistently on every attempt;
//                  the ladder must detect it on every rung it survives to.
//   flip-ladder  — kRoundingFlip against a ladder that STARTS on SoftFloat
//                  (where the flip is visible): transient retries exhaust,
//                  then escalation to exact rationals certifies the value.
//   preemption   — a step budget smaller than the factorization, with
//                  checkpointing: every attempt is killed mid-run and the
//                  next one resumes from the last snapshot, so the task
//                  finishes by accumulated progress across kills.
//   torn-write   — preemption plus kTornWrite: the first snapshot of an
//                  attempt is corrupted at save time; resume must reject it
//                  (CRC / truncation), drop it, and recover from an intact
//                  earlier snapshot or from scratch.
//   kill-resume  — explicit crash/resume equivalence: kill a checkpointing
//                  run at a boundary, hand the surviving store to a fresh
//                  engine call, and require the SAME decoded boolean and
//                  the SAME pivot trace, event for event, as an
//                  uninterrupted baseline.
//
// Usage: pfact_soak [--campaigns N] [--seed S] [--log FILE]
//                   [--fail-dir DIR] [--verbose]
//
// Exit code 0 iff every campaign held the contract. The log file (one line
// per campaign) and any failing checkpoint blobs (--fail-dir) are the CI
// artifacts.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "robustness/checkpoint.h"
#include "robustness/escalation.h"
#include "robustness/fault_injector.h"
#include "robustness/resilient_run.h"
#include "robustness/retry.h"

using namespace pfact;
using namespace pfact::robustness;

namespace {

struct Options {
  std::size_t campaigns = 200;
  std::uint64_t seed = 1;
  std::string log_path = "soak_log.txt";
  std::string fail_dir;
  bool verbose = false;
};

struct SoakStats {
  std::size_t certified = 0;
  std::size_t terminal = 0;
  std::size_t escalations = 0;
  std::size_t attempts = 0;
  std::size_t resumes = 0;
  std::size_t checkpoint_rejections = 0;
  std::size_t wrong_answers = 0;  // must stay 0
  std::size_t broken_contracts = 0;
};

// Deterministic per-campaign stream: mix64 of (seed, campaign, salt).
struct Stream {
  std::uint64_t seed;
  std::uint64_t campaign;
  std::uint64_t salt = 0;
  std::uint64_t next() { return mix64(seed + campaign * 0x1000003ull, ++salt); }
  std::uint64_t pick(std::uint64_t n) { return next() % n; }
};

std::vector<ReductionTask> build_task_pool() {
  std::vector<ReductionTask> pool;
  auto add_cvp = [&pool](Algorithm alg, circuit::Circuit c,
                         std::vector<bool> in) {
    ReductionTask t;
    t.algorithm = alg;
    t.instance = circuit::CvpInstance{std::move(c), std::move(in)};
    pool.push_back(std::move(t));
  };
  add_cvp(Algorithm::kGem, circuit::xor_circuit(), {true, false});
  add_cvp(Algorithm::kGem, circuit::majority3_circuit(), {true, false, true});
  add_cvp(Algorithm::kGems, circuit::xor_circuit(), {true, true});
  add_cvp(Algorithm::kGems, circuit::parity_circuit(3), {true, true, false});
  add_cvp(Algorithm::kGemNonsingular, circuit::xor_circuit(), {false, true});
  for (int u = 1; u <= 2; ++u) {
    for (int w = 1; w <= 2; ++w) {
      ReductionTask gep;
      gep.algorithm = Algorithm::kGep;
      gep.u = u;
      gep.w = w;
      gep.depth = 2;
      pool.push_back(gep);
    }
  }
  for (int a = -1; a <= 1; a += 2) {
    for (int b = -1; b <= 1; b += 2) {
      ReductionTask gqr;
      gqr.algorithm = Algorithm::kGqr;
      gqr.u = a;
      gqr.w = b;
      gqr.depth = 1;
      pool.push_back(gqr);
    }
  }
  return pool;
}

bool traces_equal(const factor::PivotTrace& a, const factor::PivotTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].column != b[i].column || a[i].pivot_pos != b[i].pivot_pos ||
        a[i].pivot_row != b[i].pivot_row || a[i].action != b[i].action) {
      return false;
    }
  }
  return true;
}

void tally(const ResilientReport& rep, SoakStats& stats) {
  stats.attempts += rep.attempts.size();
  stats.escalations += rep.escalations;
  for (const AttemptRecord& a : rep.attempts) {
    if (a.resumed) ++stats.resumes;
    if (a.diagnostic == Diagnostic::kCheckpointCorrupt) {
      ++stats.checkpoint_rejections;
    }
  }
}

// The one property the engine must never lose: a certified answer is the
// ground truth. Returns false (and dumps evidence) on violation.
bool check_verdict(const ReductionTask& task, const ResilientReport& rep,
                   const Options& opt, const CheckpointStore* store,
                   std::size_t campaign, std::ofstream& log,
                   SoakStats& stats) {
  if (rep.certified) {
    ++stats.certified;
    if (rep.value != task.expected()) {
      ++stats.wrong_answers;
      log << "campaign " << campaign << " WRONG ANSWER: " << task.describe()
          << " certified " << (rep.value ? "true" : "false") << " but truth is "
          << (task.expected() ? "true" : "false") << "\n"
          << rep.to_string() << "\n";
      if (!opt.fail_dir.empty() && store != nullptr) {
        std::size_t i = 0;
        for (const auto& [step, blob] : store->blobs()) {
          write_checkpoint_file(opt.fail_dir + "/campaign" +
                                    std::to_string(campaign) + "_step" +
                                    std::to_string(step) + ".ckpt",
                                blob);
          ++i;
        }
        (void)i;
      }
      return false;
    }
  } else {
    ++stats.terminal;
    // A terminal failure must be a *classified* one — the supervisor never
    // gives up with kOk or an unexplained success-kind.
    if (rep.outcome == FailureKind::kSuccess ||
        rep.final_report.diagnostic == Diagnostic::kOk) {
      ++stats.broken_contracts;
      log << "campaign " << campaign
          << " BROKEN CONTRACT: terminal report carries kOk\n"
          << rep.to_string() << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--campaigns") {
      opt.campaigns = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--log") {
      opt.log_path = value();
    } else if (arg == "--fail-dir") {
      opt.fail_dir = value();
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: pfact_soak [--campaigns N] [--seed S] [--log FILE] "
                   "[--fail-dir DIR] [--verbose]\n");
      return 2;
    }
  }

  std::ofstream log(opt.log_path, std::ios::trunc);
  if (!log) {
    std::fprintf(stderr, "cannot open log file %s\n", opt.log_path.c_str());
    return 2;
  }
  log << "pfact_soak seed=" << opt.seed << " campaigns=" << opt.campaigns
      << "\n";

  const std::vector<ReductionTask> pool = build_task_pool();
  const std::vector<FaultClass> faults = all_fault_classes();
  SoakStats stats;
  bool ok = true;

  for (std::size_t campaign = 0; campaign < opt.campaigns && ok; ++campaign) {
    Stream rng{opt.seed, campaign};
    const ReductionTask& task = pool[rng.pick(pool.size())];

    ResilientOptions ro;
    ro.retry.max_attempts = 3;
    ro.retry.base_delay = std::chrono::milliseconds{1};
    ro.retry.jitter_seed = rng.next();
    // No sleeper installed: backoffs are recorded, not slept — the campaign
    // stream is wall-clock independent.

    const std::uint64_t shape = rng.pick(5);
    const char* shape_name = "?";
    CheckpointStore store;

    switch (shape) {
      case 0: {  // fault-sweep: one persistent fault across all attempts
        shape_name = "fault-sweep";
        FaultPlan plan;
        plan.fault = faults[rng.pick(faults.size())];
        plan.seed = rng.next();
        ro.checkpoint_every = 2 + rng.pick(4);
        ro.store = &store;
        ro.fault_for_attempt = [plan](std::size_t) { return plan; };
        break;
      }
      case 1: {  // flip-ladder: rounding flip, ladder starts on SoftFloat
        shape_name = "flip-ladder";
        if (task.algorithm == Algorithm::kGqr) {
          // GQR has no exact rung to escalate into; give it the full ladder
          // from the bottom instead (the flip is harmless on long double).
          ro.ladder = {Substrate::kDouble, Substrate::kSoftFloat53};
        } else {
          ro.ladder = {Substrate::kSoftFloat53, Substrate::kRational};
        }
        FaultPlan plan;
        plan.fault = FaultClass::kRoundingFlip;
        plan.seed = rng.next();
        ro.fault_for_attempt = [plan](std::size_t) { return plan; };
        break;
      }
      case 2: {  // preemption storm: kill every attempt, finish by resume
        shape_name = "preemption";
        ro.checkpoint_every = 2;
        ro.store = &store;
        ro.limits.max_steps = 3 + rng.pick(3);
        // Progress per kill is ~checkpoint_every steps, so crossing the
        // largest pool task (order ~10^2) takes a few hundred kills.
        ro.retry.max_attempts = 1024;
        break;
      }
      case 3: {  // torn-write: preemption plus a blob corrupted at save
        shape_name = "torn-write";
        ro.checkpoint_every = 2;
        ro.store = &store;
        ro.limits.max_steps = 4;
        ro.retry.max_attempts = 1024;
        FaultPlan plan;
        plan.fault = FaultClass::kTornWrite;
        plan.seed = rng.next();
        ro.fault_for_attempt = [plan](std::size_t attempt) {
          // Tear only the first attempt's snapshot so the campaign also
          // proves recovery, not just rejection.
          return attempt == 1 ? plan : FaultPlan{};
        };
        break;
      }
      default: {  // kill-resume: explicit crash/resume equivalence
        shape_name = "kill-resume";
        // Uninterrupted baseline.
        ResilientOptions base;
        base.retry.max_attempts = 1;
        const ResilientReport baseline = resilient_run(task, base);
        if (!baseline.certified) {
          ++stats.broken_contracts;
          log << "campaign " << campaign << " BROKEN CONTRACT: clean run of "
              << task.describe() << " not certified\n"
              << baseline.to_string() << "\n";
          ok = false;
          break;
        }
        // Kill a checkpointing run at a step boundary...
        const std::size_t every = 2 + rng.pick(3);
        ResilientOptions crash;
        crash.retry.max_attempts = 1;
        crash.checkpoint_every = every;
        crash.store = &store;
        crash.limits.max_steps = every * (1 + rng.pick(3));
        resilient_run(task, crash);
        // ...and hand the surviving store to a fresh engine call.
        ResilientOptions resume;
        resume.retry.max_attempts = 2;
        resume.checkpoint_every = every;
        resume.store = &store;
        const ResilientReport resumed = resilient_run(task, resume);
        tally(resumed, stats);
        if (!resumed.certified || resumed.value != baseline.value ||
            !traces_equal(resumed.final_report.trace,
                          baseline.final_report.trace)) {
          ++stats.broken_contracts;
          log << "campaign " << campaign
              << " CRASH/RESUME DIVERGENCE: " << task.describe()
              << " baseline value=" << baseline.value
              << " trace=" << baseline.final_report.trace.size()
              << " events; resumed:\n"
              << resumed.to_string() << "\n";
          ok = false;
          break;
        }
        ++stats.certified;
        if (opt.verbose) {
          std::printf("campaign %zu %s %s: resumed identically (%zu events)\n",
                      campaign, shape_name, task.describe().c_str(),
                      resumed.final_report.trace.size());
        }
        log << "campaign " << campaign << " " << shape_name << " "
            << task.describe() << " ok\n";
        continue;
      }
    }
    if (!ok) break;

    const ResilientReport rep = resilient_run(task, ro);
    tally(rep, stats);
    ok = check_verdict(task, rep, opt, &store, campaign, log, stats);
    if (opt.verbose) {
      std::printf("campaign %zu %s %s: %s\n", campaign, shape_name,
                  task.describe().c_str(),
                  rep.certified ? "certified" : "terminal");
    }
    log << "campaign " << campaign << " " << shape_name << " "
        << task.describe() << " "
        << (rep.certified ? "certified" : "terminal") << " attempts="
        << rep.attempts.size() << " escalations=" << rep.escalations << "\n";
  }

  log << "summary certified=" << stats.certified
      << " terminal=" << stats.terminal << " attempts=" << stats.attempts
      << " escalations=" << stats.escalations << " resumes=" << stats.resumes
      << " checkpoint-rejections=" << stats.checkpoint_rejections
      << " wrong-answers=" << stats.wrong_answers
      << " broken-contracts=" << stats.broken_contracts << "\n";
  std::printf(
      "pfact_soak: %zu certified, %zu terminal, %zu attempts, "
      "%zu escalations, %zu resumes, %zu checkpoint rejections, "
      "%zu wrong answers, %zu broken contracts\n",
      stats.certified, stats.terminal, stats.attempts, stats.escalations,
      stats.resumes, stats.checkpoint_rejections, stats.wrong_answers,
      stats.broken_contracts);
  if (!ok || stats.wrong_answers != 0 || stats.broken_contracts != 0) {
    std::printf("pfact_soak: FAILED (see %s)\n", opt.log_path.c_str());
    return 1;
  }
  std::printf("pfact_soak: all campaigns held the contract\n");
  return 0;
}
