// Supervised chaos soak for the resilient execution engine.
//
// Replays randomized-but-deterministic fault campaigns against the four
// reductions (GEM / GEMS / GEP / GQR, plus the bordered nonsingular GEM)
// through robustness::resilient_run and asserts the engine's one
// non-negotiable property: ZERO WRONG ANSWERS. Every campaign must end
// either certified-correct (the decoded boolean matches the direct circuit
// evaluation AND the task's ground truth) or as a classified terminal
// failure — a campaign that certifies the wrong boolean fails the whole
// soak immediately and dumps its evidence.
//
// Campaign shapes, selected per-campaign from the seed stream:
//   fault-sweep  — one FaultClass injected persistently on every attempt;
//                  the ladder must detect it on every rung it survives to.
//   flip-ladder  — kRoundingFlip against a ladder that STARTS on SoftFloat
//                  (where the flip is visible): transient retries exhaust,
//                  then escalation to exact rationals certifies the value.
//   preemption   — a step budget smaller than the factorization, with
//                  checkpointing: every attempt is killed mid-run and the
//                  next one resumes from the last snapshot, so the task
//                  finishes by accumulated progress across kills.
//   torn-write   — preemption plus kTornWrite: the first snapshot of an
//                  attempt is corrupted at save time; resume must reject it
//                  (CRC / truncation), drop it, and recover from an intact
//                  earlier snapshot or from scratch.
//   kill-resume  — explicit crash/resume equivalence: kill a checkpointing
//                  run at a boundary, hand the surviving store to a fresh
//                  engine call, and require the SAME decoded boolean and
//                  the SAME pivot trace, event for event, as an
//                  uninterrupted baseline.
//
// With --kill-only the soak switches to REAL-kill campaigns through the
// serve/ process-isolation layer: every attempt runs in a forked,
// rlimit-sandboxed worker that is actually destroyed — SIGKILL, a genuine
// wild-store SIGSEGV, a nonzero _exit, the RLIMIT_CPU sandbox's SIGXCPU, or
// the supervisor's watchdog — and the campaign must still end certified
// with the ground-truth boolean (the successor worker is seeded from the
// checkpoints the victim streamed over the pipe before dying). The kill-only
// soak additionally certifies COVERAGE: every WorkerExit class except
// kProtocolError must be produced and survived at least once (protocol
// errors need a corrupted-but-exit-0 worker that no supported KillPlan
// produces; tests/serve covers that path with hand-built frames).
//
// Usage: pfact_soak [--campaigns N] [--seed S] [--log FILE]
//                   [--fail-dir DIR] [--kill-only] [--verbose]
//
// Exit code 0 iff every campaign held the contract. The log file (one line
// per campaign) and any failing checkpoint blobs (--fail-dir) are the CI
// artifacts.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "robustness/checkpoint.h"
#include "robustness/escalation.h"
#include "robustness/fault_injector.h"
#include "robustness/resilient_run.h"
#include "robustness/retry.h"
#include "serve/supervisor.h"
#include "serve/worker_pool.h"

using namespace pfact;
using namespace pfact::robustness;

namespace {

struct Options {
  std::size_t campaigns = 200;
  std::uint64_t seed = 1;
  std::string log_path = "soak_log.txt";
  std::string fail_dir;
  bool kill_only = false;
  bool verbose = false;
};

struct SoakStats {
  std::size_t certified = 0;
  std::size_t terminal = 0;
  std::size_t escalations = 0;
  std::size_t attempts = 0;
  std::size_t resumes = 0;
  std::size_t checkpoint_rejections = 0;
  std::size_t wrong_answers = 0;  // must stay 0
  std::size_t broken_contracts = 0;
};

// Deterministic per-campaign stream: mix64 of (seed, campaign, salt).
struct Stream {
  std::uint64_t seed;
  std::uint64_t campaign;
  std::uint64_t salt = 0;
  std::uint64_t next() { return mix64(seed + campaign * 0x1000003ull, ++salt); }
  std::uint64_t pick(std::uint64_t n) { return next() % n; }
};

std::vector<ReductionTask> build_task_pool() {
  std::vector<ReductionTask> pool;
  auto add_cvp = [&pool](Algorithm alg, circuit::Circuit c,
                         std::vector<bool> in) {
    ReductionTask t;
    t.algorithm = alg;
    t.instance = circuit::CvpInstance{std::move(c), std::move(in)};
    pool.push_back(std::move(t));
  };
  add_cvp(Algorithm::kGem, circuit::xor_circuit(), {true, false});
  add_cvp(Algorithm::kGem, circuit::majority3_circuit(), {true, false, true});
  add_cvp(Algorithm::kGems, circuit::xor_circuit(), {true, true});
  add_cvp(Algorithm::kGems, circuit::parity_circuit(3), {true, true, false});
  add_cvp(Algorithm::kGemNonsingular, circuit::xor_circuit(), {false, true});
  for (int u = 1; u <= 2; ++u) {
    for (int w = 1; w <= 2; ++w) {
      ReductionTask gep;
      gep.algorithm = Algorithm::kGep;
      gep.u = u;
      gep.w = w;
      gep.depth = 2;
      pool.push_back(gep);
    }
  }
  for (int a = -1; a <= 1; a += 2) {
    for (int b = -1; b <= 1; b += 2) {
      ReductionTask gqr;
      gqr.algorithm = Algorithm::kGqr;
      gqr.u = a;
      gqr.w = b;
      gqr.depth = 1;
      pool.push_back(gqr);
    }
  }
  return pool;
}

bool traces_equal(const factor::PivotTrace& a, const factor::PivotTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].column != b[i].column || a[i].pivot_pos != b[i].pivot_pos ||
        a[i].pivot_row != b[i].pivot_row || a[i].action != b[i].action) {
      return false;
    }
  }
  return true;
}

void tally(const ResilientReport& rep, SoakStats& stats) {
  stats.attempts += rep.attempts.size();
  stats.escalations += rep.escalations;
  for (const AttemptRecord& a : rep.attempts) {
    if (a.resumed) ++stats.resumes;
    if (a.diagnostic == Diagnostic::kCheckpointCorrupt) {
      ++stats.checkpoint_rejections;
    }
  }
}

// The one property the engine must never lose: a certified answer is the
// ground truth. Returns false (and dumps evidence) on violation.
bool check_verdict(const ReductionTask& task, const ResilientReport& rep,
                   const Options& opt, const CheckpointStore* store,
                   std::size_t campaign, std::ofstream& log,
                   SoakStats& stats) {
  if (rep.certified) {
    ++stats.certified;
    if (rep.value != task.expected()) {
      ++stats.wrong_answers;
      log << "campaign " << campaign << " WRONG ANSWER: " << task.describe()
          << " certified " << (rep.value ? "true" : "false") << " but truth is "
          << (task.expected() ? "true" : "false") << "\n"
          << rep.to_string() << "\n";
      if (!opt.fail_dir.empty() && store != nullptr) {
        std::size_t i = 0;
        for (const auto& [step, blob] : store->blobs()) {
          write_checkpoint_file(opt.fail_dir + "/campaign" +
                                    std::to_string(campaign) + "_step" +
                                    std::to_string(step) + ".ckpt",
                                blob);
          ++i;
        }
        (void)i;
      }
      return false;
    }
  } else {
    ++stats.terminal;
    // A terminal failure must be a *classified* one — the supervisor never
    // gives up with kOk or an unexplained success-kind.
    if (rep.outcome == FailureKind::kSuccess ||
        rep.final_report.diagnostic == Diagnostic::kOk) {
      ++stats.broken_contracts;
      log << "campaign " << campaign
          << " BROKEN CONTRACT: terminal report carries kOk\n"
          << rep.to_string() << "\n";
      return false;
    }
  }
  return true;
}

// --- real-kill campaigns through the serve/ layer ---------------------------

// One deliberate death per campaign, cycled so every class is exercised:
// the shape names the WorkerExit it must produce and the Diagnostic the
// supervisor must classify it as.
struct KillShape {
  const char* name;
  serve::KillPlan::Mode mode;
  bool watchdog;    // arm a 200ms supervisor deadline
  bool cpu_rlimit;  // 1-second RLIMIT_CPU sandbox
  serve::WorkerExit expect_exit;
  Diagnostic expect_diag;
};

constexpr KillShape kKillShapes[] = {
    {"worker-sigkill", serve::KillPlan::Mode::kSigkill, false, false,
     serve::WorkerExit::kSignalled, Diagnostic::kWorkerFailure},
    {"worker-sigsegv", serve::KillPlan::Mode::kSigsegv, false, false,
     serve::WorkerExit::kSignalled, Diagnostic::kWorkerFailure},
    {"worker-exit", serve::KillPlan::Mode::kExit, false, false,
     serve::WorkerExit::kNonzeroExit, Diagnostic::kWorkerFailure},
    {"worker-watchdog", serve::KillPlan::Mode::kSpin, true, false,
     serve::WorkerExit::kWatchdog, Diagnostic::kDeadlineExceeded},
    {"worker-rlimit", serve::KillPlan::Mode::kSpin, false, true,
     serve::WorkerExit::kCpuLimit, Diagnostic::kResourceExhausted},
};

int run_kill_campaigns(const Options& opt, std::ofstream& log) {
  const std::vector<ReductionTask> pool_tasks = build_task_pool();
  serve::WorkerPool pool;
  SoakStats stats;
  std::set<serve::WorkerExit> observed;
  std::size_t resume_handoffs = 0;
  bool ok = true;

  for (std::size_t campaign = 0; campaign < opt.campaigns && ok; ++campaign) {
    Stream rng{opt.seed, campaign};
    const ReductionTask& task = pool_tasks[rng.pick(pool_tasks.size())];
    // Cycle shapes deterministically so a short soak still covers them all.
    const KillShape& shape = kKillShapes[campaign % std::size(kKillShapes)];

    CheckpointStore store;
    serve::SupervisorOptions so;
    so.retry.max_attempts = 3;
    so.retry.base_delay = std::chrono::milliseconds{1};
    so.retry.jitter_seed = rng.next();
    so.checkpoint_every = 2;
    so.store = &store;
    if (shape.watchdog) so.watchdog = std::chrono::milliseconds{200};
    if (shape.cpu_rlimit) so.rlimits.cpu_seconds = 1;
    // 0 = die before any save, 1 = die right after the first save. Capped
    // at 1 because the smallest pool tasks may stream only one snapshot —
    // a trigger that never fires would let attempt 1 complete cleanly and
    // trip the misclassification check below.
    const std::uint64_t after_saves = rng.pick(2);
    so.kill_for_attempt = [&shape, after_saves](std::size_t attempt) {
      serve::KillPlan kill;
      if (attempt == 1) {
        kill.mode = shape.mode;
        kill.after_saves = after_saves;
      }
      return kill;
    };

    const serve::SupervisedReport rep = supervised_run(pool, task, so);
    stats.attempts += rep.attempts.size();
    stats.escalations += rep.escalations;
    resume_handoffs += rep.resume_handoffs;

    // Zero wrong answers, across a real process death.
    if (!rep.certified || rep.value != task.expected()) {
      if (rep.certified) ++stats.wrong_answers;
      ++stats.broken_contracts;
      log << "campaign " << campaign << " " << shape.name << " "
          << task.describe() << " FAILED: "
          << (rep.certified ? "WRONG ANSWER" : "not certified") << "\n"
          << rep.to_string() << "\n";
      if (!opt.fail_dir.empty()) {
        for (const auto& [step, blob] : store.blobs()) {
          write_checkpoint_file(opt.fail_dir + "/campaign" +
                                    std::to_string(campaign) + "_step" +
                                    std::to_string(step) + ".ckpt",
                                blob);
        }
      }
      ok = false;
      break;
    }
    ++stats.certified;
    // The victim's death was classified exactly as the taxonomy promises.
    if (rep.attempts.empty() ||
        rep.attempts.front().diagnostic != shape.expect_diag) {
      ++stats.broken_contracts;
      log << "campaign " << campaign << " " << shape.name
          << " MISCLASSIFIED: expected "
          << diagnostic_name(shape.expect_diag) << ", got "
          << (rep.attempts.empty()
                  ? "no attempts"
                  : diagnostic_name(rep.attempts.front().diagnostic))
          << "\n" << rep.to_string() << "\n";
      ok = false;
      break;
    }
    observed.insert(shape.expect_exit);
    observed.insert(rep.last_worker_exit);  // kCompleted on certification
    log << "campaign " << campaign << " " << shape.name << " "
        << task.describe() << " certified attempts=" << rep.attempts.size()
        << " resume-handoffs=" << rep.resume_handoffs << "\n";
    if (opt.verbose) {
      std::printf("campaign %zu %s %s: certified (%zu attempts)\n", campaign,
                  shape.name, task.describe().c_str(), rep.attempts.size());
    }
  }

  // Coverage: every death class the pool can report was really produced
  // and survived — except kProtocolError (no KillPlan yields exit-0 with a
  // corrupt result frame; tests/serve covers it with hand-built frames).
  if (ok && opt.campaigns >= std::size(kKillShapes)) {
    for (serve::WorkerExit e : serve::all_worker_exits()) {
      if (e == serve::WorkerExit::kProtocolError) continue;
      if (observed.count(e) == 0) {
        ++stats.broken_contracts;
        log << "COVERAGE GAP: WorkerExit " << serve::worker_exit_name(e)
            << " never observed\n";
        ok = false;
      }
    }
  }

  const serve::WorkerPool::Stats ps = pool.stats();
  log << "summary certified=" << stats.certified
      << " attempts=" << stats.attempts
      << " workers-spawned=" << ps.spawned << " workers-crashed="
      << ps.crashed << " watchdog-kills=" << ps.watchdog_kills
      << " resume-handoffs=" << resume_handoffs
      << " wrong-answers=" << stats.wrong_answers
      << " broken-contracts=" << stats.broken_contracts << "\n";
  std::printf(
      "pfact_soak --kill-only: %zu certified, %zu attempts, "
      "%llu workers spawned, %llu crashed, %llu watchdog kills, "
      "%zu resume handoffs, %zu wrong answers, %zu broken contracts\n",
      stats.certified, stats.attempts,
      static_cast<unsigned long long>(ps.spawned),
      static_cast<unsigned long long>(ps.crashed),
      static_cast<unsigned long long>(ps.watchdog_kills), resume_handoffs,
      stats.wrong_answers, stats.broken_contracts);
  if (!ok || stats.wrong_answers != 0 || stats.broken_contracts != 0) {
    std::printf("pfact_soak: FAILED (see %s)\n", opt.log_path.c_str());
    return 1;
  }
  std::printf("pfact_soak: all real-kill campaigns held the contract\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--campaigns") {
      opt.campaigns = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--log") {
      opt.log_path = value();
    } else if (arg == "--fail-dir") {
      opt.fail_dir = value();
    } else if (arg == "--kill-only") {
      opt.kill_only = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: pfact_soak [--campaigns N] [--seed S] [--log FILE] "
                   "[--fail-dir DIR] [--kill-only] [--verbose]\n");
      return 2;
    }
  }

  std::ofstream log(opt.log_path, std::ios::trunc);
  if (!log) {
    std::fprintf(stderr, "cannot open log file %s\n", opt.log_path.c_str());
    return 2;
  }
  log << "pfact_soak seed=" << opt.seed << " campaigns=" << opt.campaigns
      << (opt.kill_only ? " kill-only" : "") << "\n";

  if (opt.kill_only) return run_kill_campaigns(opt, log);

  const std::vector<ReductionTask> pool = build_task_pool();
  const std::vector<FaultClass> faults = all_fault_classes();
  SoakStats stats;
  bool ok = true;

  for (std::size_t campaign = 0; campaign < opt.campaigns && ok; ++campaign) {
    Stream rng{opt.seed, campaign};
    const ReductionTask& task = pool[rng.pick(pool.size())];

    ResilientOptions ro;
    ro.retry.max_attempts = 3;
    ro.retry.base_delay = std::chrono::milliseconds{1};
    ro.retry.jitter_seed = rng.next();
    // No sleeper installed: backoffs are recorded, not slept — the campaign
    // stream is wall-clock independent.

    const std::uint64_t shape = rng.pick(5);
    const char* shape_name = "?";
    CheckpointStore store;

    switch (shape) {
      case 0: {  // fault-sweep: one persistent fault across all attempts
        shape_name = "fault-sweep";
        FaultPlan plan;
        plan.fault = faults[rng.pick(faults.size())];
        plan.seed = rng.next();
        ro.checkpoint_every = 2 + rng.pick(4);
        ro.store = &store;
        ro.fault_for_attempt = [plan](std::size_t) { return plan; };
        break;
      }
      case 1: {  // flip-ladder: rounding flip, ladder starts on SoftFloat
        shape_name = "flip-ladder";
        if (task.algorithm == Algorithm::kGqr) {
          // GQR has no exact rung to escalate into; give it the full ladder
          // from the bottom instead (the flip is harmless on long double).
          ro.ladder = {Substrate::kDouble, Substrate::kSoftFloat53};
        } else {
          ro.ladder = {Substrate::kSoftFloat53, Substrate::kRational};
        }
        FaultPlan plan;
        plan.fault = FaultClass::kRoundingFlip;
        plan.seed = rng.next();
        ro.fault_for_attempt = [plan](std::size_t) { return plan; };
        break;
      }
      case 2: {  // preemption storm: kill every attempt, finish by resume
        shape_name = "preemption";
        ro.checkpoint_every = 2;
        ro.store = &store;
        ro.limits.max_steps = 3 + rng.pick(3);
        // Progress per kill is ~checkpoint_every steps, so crossing the
        // largest pool task (order ~10^2) takes a few hundred kills.
        ro.retry.max_attempts = 1024;
        break;
      }
      case 3: {  // torn-write: preemption plus a blob corrupted at save
        shape_name = "torn-write";
        ro.checkpoint_every = 2;
        ro.store = &store;
        ro.limits.max_steps = 4;
        ro.retry.max_attempts = 1024;
        FaultPlan plan;
        plan.fault = FaultClass::kTornWrite;
        plan.seed = rng.next();
        ro.fault_for_attempt = [plan](std::size_t attempt) {
          // Tear only the first attempt's snapshot so the campaign also
          // proves recovery, not just rejection.
          return attempt == 1 ? plan : FaultPlan{};
        };
        break;
      }
      default: {  // kill-resume: explicit crash/resume equivalence
        shape_name = "kill-resume";
        // Uninterrupted baseline.
        ResilientOptions base;
        base.retry.max_attempts = 1;
        const ResilientReport baseline = resilient_run(task, base);
        if (!baseline.certified) {
          ++stats.broken_contracts;
          log << "campaign " << campaign << " BROKEN CONTRACT: clean run of "
              << task.describe() << " not certified\n"
              << baseline.to_string() << "\n";
          ok = false;
          break;
        }
        // Kill a checkpointing run at a step boundary...
        const std::size_t every = 2 + rng.pick(3);
        ResilientOptions crash;
        crash.retry.max_attempts = 1;
        crash.checkpoint_every = every;
        crash.store = &store;
        crash.limits.max_steps = every * (1 + rng.pick(3));
        resilient_run(task, crash);
        // ...and hand the surviving store to a fresh engine call.
        ResilientOptions resume;
        resume.retry.max_attempts = 2;
        resume.checkpoint_every = every;
        resume.store = &store;
        const ResilientReport resumed = resilient_run(task, resume);
        tally(resumed, stats);
        if (!resumed.certified || resumed.value != baseline.value ||
            !traces_equal(resumed.final_report.trace,
                          baseline.final_report.trace)) {
          ++stats.broken_contracts;
          log << "campaign " << campaign
              << " CRASH/RESUME DIVERGENCE: " << task.describe()
              << " baseline value=" << baseline.value
              << " trace=" << baseline.final_report.trace.size()
              << " events; resumed:\n"
              << resumed.to_string() << "\n";
          ok = false;
          break;
        }
        ++stats.certified;
        if (opt.verbose) {
          std::printf("campaign %zu %s %s: resumed identically (%zu events)\n",
                      campaign, shape_name, task.describe().c_str(),
                      resumed.final_report.trace.size());
        }
        log << "campaign " << campaign << " " << shape_name << " "
            << task.describe() << " ok\n";
        continue;
      }
    }
    if (!ok) break;

    const ResilientReport rep = resilient_run(task, ro);
    tally(rep, stats);
    ok = check_verdict(task, rep, opt, &store, campaign, log, stats);
    if (opt.verbose) {
      std::printf("campaign %zu %s %s: %s\n", campaign, shape_name,
                  task.describe().c_str(),
                  rep.certified ? "certified" : "terminal");
    }
    log << "campaign " << campaign << " " << shape_name << " "
        << task.describe() << " "
        << (rep.certified ? "certified" : "terminal") << " attempts="
        << rep.attempts.size() << " escalations=" << rep.escalations << "\n";
  }

  log << "summary certified=" << stats.certified
      << " terminal=" << stats.terminal << " attempts=" << stats.attempts
      << " escalations=" << stats.escalations << " resumes=" << stats.resumes
      << " checkpoint-rejections=" << stats.checkpoint_rejections
      << " wrong-answers=" << stats.wrong_answers
      << " broken-contracts=" << stats.broken_contracts << "\n";
  std::printf(
      "pfact_soak: %zu certified, %zu terminal, %zu attempts, "
      "%zu escalations, %zu resumes, %zu checkpoint rejections, "
      "%zu wrong answers, %zu broken contracts\n",
      stats.certified, stats.terminal, stats.attempts, stats.escalations,
      stats.resumes, stats.checkpoint_rejections, stats.wrong_answers,
      stats.broken_contracts);
  if (!ok || stats.wrong_answers != 0 || stats.broken_contracts != 0) {
    std::printf("pfact_soak: FAILED (see %s)\n", opt.log_path.c_str());
    return 1;
  }
  std::printf("pfact_soak: all campaigns held the contract\n");
  return 0;
}
