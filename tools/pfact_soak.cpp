// Supervised chaos soak for the resilient execution engine.
//
// Replays randomized-but-deterministic fault campaigns against the four
// reductions (GEM / GEMS / GEP / GQR, plus the bordered nonsingular GEM)
// through robustness::resilient_run and asserts the engine's one
// non-negotiable property: ZERO WRONG ANSWERS. Every campaign must end
// either certified-correct (the decoded boolean matches the direct circuit
// evaluation AND the task's ground truth) or as a classified terminal
// failure — a campaign that certifies the wrong boolean fails the whole
// soak immediately and dumps its evidence.
//
// Campaign shapes, selected per-campaign from the seed stream:
//   fault-sweep  — one FaultClass injected persistently on every attempt;
//                  the ladder must detect it on every rung it survives to.
//   flip-ladder  — kRoundingFlip against a ladder that STARTS on SoftFloat
//                  (where the flip is visible): transient retries exhaust,
//                  then escalation to exact rationals certifies the value.
//   preemption   — a step budget smaller than the factorization, with
//                  checkpointing: every attempt is killed mid-run and the
//                  next one resumes from the last snapshot, so the task
//                  finishes by accumulated progress across kills.
//   torn-write   — preemption plus kTornWrite: the first snapshot of an
//                  attempt is corrupted at save time; resume must reject it
//                  (CRC / truncation), drop it, and recover from an intact
//                  earlier snapshot or from scratch.
//   kill-resume  — explicit crash/resume equivalence: kill a checkpointing
//                  run at a boundary, hand the surviving store to a fresh
//                  engine call, and require the SAME decoded boolean and
//                  the SAME pivot trace, event for event, as an
//                  uninterrupted baseline.
//
// With --kill-only the soak switches to REAL-kill campaigns through the
// serve/ process-isolation layer: every attempt runs in a forked,
// rlimit-sandboxed worker that is actually destroyed — SIGKILL, a genuine
// wild-store SIGSEGV, a nonzero _exit, the RLIMIT_CPU sandbox's SIGXCPU, or
// the supervisor's watchdog — and the campaign must still end certified
// with the ground-truth boolean (the successor worker is seeded from the
// checkpoints the victim streamed over the pipe before dying). The kill-only
// soak additionally certifies COVERAGE: every WorkerExit class except
// kProtocolError and kForkFailure must be produced and survived at least
// once (protocol errors need a corrupted-but-exit-0 worker that no
// supported KillPlan produces, and fork exhaustion cannot be staged on
// demand; tests/serve covers both with hand-built frames and the fork
// injection seam).
//
// With --serve the soak drives the full warm-worker ReductionService
// instead: concurrent clients push jobs through admission control onto the
// pre-forked pool, with real kill schedules riding on individual jobs,
// overload bursts that MUST shed classified kShedQueueFull refusals,
// deadline-expired jobs that MUST shed as kShedDeadline, and the verified
// result cache serving repeats. Contracts: zero wrong answers (cached or
// fresh), every shed classified (never a silent drop), every killed warm
// worker respawned (the pool ends at full strength), full WorkerExit
// coverage (same two exclusions as kill-only), and at least one genuine
// cache hit.
//
// With --net the soak attacks the socket FRONT END: a Frontend listening on
// a temp Unix socket fronts the warm-worker service, and client submissions
// are sabotaged with every NetFaultPlan shape — torn frames, mid-header
// closes, byte-dribbles, slowloris stalls, garbage preambles — plus
// connection-bound overloads and a final graceful drain. Contracts: zero
// wrong answers (every submission that survives its fault decodes the
// ground-truth boolean), every conversation ending classified as exactly
// one FrontendStatus, FULL FrontendStatus coverage across the campaign set,
// and the warm pool intact at the end.
//
// With --shard the soak attacks the sharded self-healing router: a
// ShardRouter over three forked shard processes (each a private
// ReductionService behind its own Unix socket) takes consistent-hash-routed
// traffic while campaigns SIGKILL and SIGSEGV home shards mid-stream, wedge
// shards with SIGSTOP until the probe deadline evicts them, stage brownout
// entry/exit (fresh keys shed as classified kOverloaded while warm keys
// keep answering), and kill the whole fleet at once to force the
// all-shards-down refusal and a restart storm. Contracts: zero wrong
// answers — every fresh certified answer matches an unsharded baseline
// service bit for bit, value AND pivot trace; every submit classified as
// exactly one RouterStatus (the ledger must sum); full ShardStatus AND
// RouterStatus coverage; the fleet back at full serving strength after
// every campaign; and a cache-locality floor (at least a quarter of
// answers come from the consistent-hash home shard despite the chaos).
//
// Usage: pfact_soak [--campaigns N] [--seed S] [--log FILE]
//                   [--fail-dir DIR] [--kill-only] [--serve] [--net]
//                   [--shard] [--inject-violation N] [--verbose]
//
// Exit code 0 iff every campaign held the contract; any violation exits
// nonzero and prints the campaign seed so the run can be replayed.
// --inject-violation N fabricates a violation at campaign N — the
// regression seam proving the violation exit path stays wired. The log file
// (one line per campaign) and any failing checkpoint blobs (--fail-dir)
// are the CI artifacts.

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "robustness/checkpoint.h"
#include "robustness/escalation.h"
#include "robustness/fault_injector.h"
#include "robustness/resilient_run.h"
#include "robustness/retry.h"
#include "serve/client.h"
#include "serve/frontend.h"
#include "serve/queue.h"
#include "serve/router.h"
#include "serve/shard.h"
#include "serve/supervisor.h"
#include "serve/worker_pool.h"

using namespace pfact;
using namespace pfact::robustness;

namespace {

struct Options {
  std::size_t campaigns = 200;
  std::uint64_t seed = 1;
  std::string log_path = "soak_log.txt";
  std::string fail_dir;
  bool kill_only = false;
  bool serve = false;
  bool net = false;
  bool shard = false;
  bool verbose = false;
  // Campaign index at which to fabricate a contract violation (SIZE_MAX =
  // never): the regression seam that keeps every violation path wired to a
  // nonzero exit and a printed seed.
  std::size_t inject_violation = SIZE_MAX;
};

// Every violation path funnels through here on its way out: the seed is the
// replay handle, so it must reach stdout even when only the tail of the
// output survives (CI truncation, a pipe buffer, a panicked operator).
int fail_exit(const Options& opt) {
  std::printf("pfact_soak: FAILED seed=%llu (see %s)\n",
              static_cast<unsigned long long>(opt.seed),
              opt.log_path.c_str());
  return 1;
}

struct SoakStats {
  std::size_t certified = 0;
  std::size_t terminal = 0;
  std::size_t escalations = 0;
  std::size_t attempts = 0;
  std::size_t resumes = 0;
  std::size_t checkpoint_rejections = 0;
  std::size_t wrong_answers = 0;  // must stay 0
  std::size_t broken_contracts = 0;
};

// True (and records the fabricated violation) when --inject-violation says
// this campaign must fail. Checked at the top of every campaign loop so the
// seam exercises each mode's abort path identically.
bool injected_violation(const Options& opt, std::size_t campaign,
                        std::ofstream& log, SoakStats& stats) {
  if (campaign != opt.inject_violation) return false;
  ++stats.broken_contracts;
  log << "campaign " << campaign
      << " INJECTED VIOLATION (--inject-violation)\n";
  return true;
}

// Deterministic per-campaign stream: mix64 of (seed, campaign, salt).
struct Stream {
  std::uint64_t seed;
  std::uint64_t campaign;
  std::uint64_t salt = 0;
  std::uint64_t next() { return mix64(seed + campaign * 0x1000003ull, ++salt); }
  std::uint64_t pick(std::uint64_t n) { return next() % n; }
};

std::vector<ReductionTask> build_task_pool() {
  std::vector<ReductionTask> pool;
  auto add_cvp = [&pool](Algorithm alg, circuit::Circuit c,
                         std::vector<bool> in) {
    ReductionTask t;
    t.algorithm = alg;
    t.instance = circuit::CvpInstance{std::move(c), std::move(in)};
    pool.push_back(std::move(t));
  };
  add_cvp(Algorithm::kGem, circuit::xor_circuit(), {true, false});
  add_cvp(Algorithm::kGem, circuit::majority3_circuit(), {true, false, true});
  add_cvp(Algorithm::kGems, circuit::xor_circuit(), {true, true});
  add_cvp(Algorithm::kGems, circuit::parity_circuit(3), {true, true, false});
  add_cvp(Algorithm::kGemNonsingular, circuit::xor_circuit(), {false, true});
  for (int u = 1; u <= 2; ++u) {
    for (int w = 1; w <= 2; ++w) {
      ReductionTask gep;
      gep.algorithm = Algorithm::kGep;
      gep.u = u;
      gep.w = w;
      gep.depth = 2;
      pool.push_back(gep);
    }
  }
  for (int a = -1; a <= 1; a += 2) {
    for (int b = -1; b <= 1; b += 2) {
      ReductionTask gqr;
      gqr.algorithm = Algorithm::kGqr;
      gqr.u = a;
      gqr.w = b;
      gqr.depth = 1;
      pool.push_back(gqr);
    }
  }
  return pool;
}

bool traces_equal(const factor::PivotTrace& a, const factor::PivotTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].column != b[i].column || a[i].pivot_pos != b[i].pivot_pos ||
        a[i].pivot_row != b[i].pivot_row || a[i].action != b[i].action) {
      return false;
    }
  }
  return true;
}

void tally(const ResilientReport& rep, SoakStats& stats) {
  stats.attempts += rep.attempts.size();
  stats.escalations += rep.escalations;
  for (const AttemptRecord& a : rep.attempts) {
    if (a.resumed) ++stats.resumes;
    if (a.diagnostic == Diagnostic::kCheckpointCorrupt) {
      ++stats.checkpoint_rejections;
    }
  }
}

// The one property the engine must never lose: a certified answer is the
// ground truth. Returns false (and dumps evidence) on violation.
bool check_verdict(const ReductionTask& task, const ResilientReport& rep,
                   const Options& opt, const CheckpointStore* store,
                   std::size_t campaign, std::ofstream& log,
                   SoakStats& stats) {
  if (rep.certified) {
    ++stats.certified;
    if (rep.value != task.expected()) {
      ++stats.wrong_answers;
      log << "campaign " << campaign << " WRONG ANSWER: " << task.describe()
          << " certified " << (rep.value ? "true" : "false") << " but truth is "
          << (task.expected() ? "true" : "false") << "\n"
          << rep.to_string() << "\n";
      if (!opt.fail_dir.empty() && store != nullptr) {
        std::size_t i = 0;
        for (const auto& [step, blob] : store->blobs()) {
          write_checkpoint_file(opt.fail_dir + "/campaign" +
                                    std::to_string(campaign) + "_step" +
                                    std::to_string(step) + ".ckpt",
                                blob);
          ++i;
        }
        (void)i;
      }
      return false;
    }
  } else {
    ++stats.terminal;
    // A terminal failure must be a *classified* one — the supervisor never
    // gives up with kOk or an unexplained success-kind.
    if (rep.outcome == FailureKind::kSuccess ||
        rep.final_report.diagnostic == Diagnostic::kOk) {
      ++stats.broken_contracts;
      log << "campaign " << campaign
          << " BROKEN CONTRACT: terminal report carries kOk\n"
          << rep.to_string() << "\n";
      return false;
    }
  }
  return true;
}

// --- real-kill campaigns through the serve/ layer ---------------------------

// One deliberate death per campaign, cycled so every class is exercised:
// the shape names the WorkerExit it must produce and the Diagnostic the
// supervisor must classify it as.
struct KillShape {
  const char* name;
  serve::KillPlan::Mode mode;
  bool watchdog;    // arm a 200ms supervisor deadline
  bool cpu_rlimit;  // 1-second RLIMIT_CPU sandbox
  serve::WorkerExit expect_exit;
  Diagnostic expect_diag;
};

constexpr KillShape kKillShapes[] = {
    {"worker-sigkill", serve::KillPlan::Mode::kSigkill, false, false,
     serve::WorkerExit::kSignalled, Diagnostic::kWorkerFailure},
    {"worker-sigsegv", serve::KillPlan::Mode::kSigsegv, false, false,
     serve::WorkerExit::kSignalled, Diagnostic::kWorkerFailure},
    {"worker-exit", serve::KillPlan::Mode::kExit, false, false,
     serve::WorkerExit::kNonzeroExit, Diagnostic::kWorkerFailure},
    {"worker-watchdog", serve::KillPlan::Mode::kSpin, true, false,
     serve::WorkerExit::kWatchdog, Diagnostic::kDeadlineExceeded},
    {"worker-rlimit", serve::KillPlan::Mode::kSpin, false, true,
     serve::WorkerExit::kCpuLimit, Diagnostic::kResourceExhausted},
};

int run_kill_campaigns(const Options& opt, std::ofstream& log) {
  const std::vector<ReductionTask> pool_tasks = build_task_pool();
  serve::WorkerPool pool;
  SoakStats stats;
  std::set<serve::WorkerExit> observed;
  std::size_t resume_handoffs = 0;
  bool ok = true;

  for (std::size_t campaign = 0; campaign < opt.campaigns && ok; ++campaign) {
    if (injected_violation(opt, campaign, log, stats)) {
      ok = false;
      break;
    }
    Stream rng{opt.seed, campaign};
    const ReductionTask& task = pool_tasks[rng.pick(pool_tasks.size())];
    // Cycle shapes deterministically so a short soak still covers them all.
    const KillShape& shape = kKillShapes[campaign % std::size(kKillShapes)];

    CheckpointStore store;
    serve::SupervisorOptions so;
    so.retry.max_attempts = 3;
    so.retry.base_delay = std::chrono::milliseconds{1};
    so.retry.jitter_seed = rng.next();
    so.checkpoint_every = 2;
    so.store = &store;
    if (shape.watchdog) so.watchdog = std::chrono::milliseconds{200};
    if (shape.cpu_rlimit) so.rlimits.cpu_seconds = 1;
    // 0 = die before any save, 1 = die right after the first save. Capped
    // at 1 because the smallest pool tasks may stream only one snapshot —
    // a trigger that never fires would let attempt 1 complete cleanly and
    // trip the misclassification check below.
    const std::uint64_t after_saves = rng.pick(2);
    so.kill_for_attempt = [&shape, after_saves](std::size_t attempt) {
      serve::KillPlan kill;
      if (attempt == 1) {
        kill.mode = shape.mode;
        kill.after_saves = after_saves;
      }
      return kill;
    };

    const serve::SupervisedReport rep = supervised_run(pool, task, so);
    stats.attempts += rep.attempts.size();
    stats.escalations += rep.escalations;
    resume_handoffs += rep.resume_handoffs;

    // Zero wrong answers, across a real process death.
    if (!rep.certified || rep.value != task.expected()) {
      if (rep.certified) ++stats.wrong_answers;
      ++stats.broken_contracts;
      log << "campaign " << campaign << " " << shape.name << " "
          << task.describe() << " FAILED: "
          << (rep.certified ? "WRONG ANSWER" : "not certified") << "\n"
          << rep.to_string() << "\n";
      if (!opt.fail_dir.empty()) {
        for (const auto& [step, blob] : store.blobs()) {
          write_checkpoint_file(opt.fail_dir + "/campaign" +
                                    std::to_string(campaign) + "_step" +
                                    std::to_string(step) + ".ckpt",
                                blob);
        }
      }
      ok = false;
      break;
    }
    ++stats.certified;
    // The victim's death was classified exactly as the taxonomy promises.
    if (rep.attempts.empty() ||
        rep.attempts.front().diagnostic != shape.expect_diag) {
      ++stats.broken_contracts;
      log << "campaign " << campaign << " " << shape.name
          << " MISCLASSIFIED: expected "
          << diagnostic_name(shape.expect_diag) << ", got "
          << (rep.attempts.empty()
                  ? "no attempts"
                  : diagnostic_name(rep.attempts.front().diagnostic))
          << "\n" << rep.to_string() << "\n";
      ok = false;
      break;
    }
    observed.insert(shape.expect_exit);
    observed.insert(rep.last_worker_exit);  // kCompleted on certification
    log << "campaign " << campaign << " " << shape.name << " "
        << task.describe() << " certified attempts=" << rep.attempts.size()
        << " resume-handoffs=" << rep.resume_handoffs << "\n";
    if (opt.verbose) {
      std::printf("campaign %zu %s %s: certified (%zu attempts)\n", campaign,
                  shape.name, task.describe().c_str(), rep.attempts.size());
    }
  }

  // Coverage: every death class the pool can report was really produced
  // and survived — except kProtocolError (no KillPlan yields exit-0 with a
  // corrupt result frame; tests/serve covers it with hand-built frames)
  // and kForkFailure (real fork exhaustion cannot be staged on demand;
  // tests/serve covers it through the pool's fork-injection seam).
  if (ok && opt.campaigns >= std::size(kKillShapes)) {
    for (serve::WorkerExit e : serve::all_worker_exits()) {
      if (e == serve::WorkerExit::kProtocolError ||
          e == serve::WorkerExit::kForkFailure) {
        continue;
      }
      if (observed.count(e) == 0) {
        ++stats.broken_contracts;
        log << "COVERAGE GAP: WorkerExit " << serve::worker_exit_name(e)
            << " never observed\n";
        ok = false;
      }
    }
  }

  const serve::WorkerPool::Stats ps = pool.stats();
  log << "summary certified=" << stats.certified
      << " attempts=" << stats.attempts
      << " workers-spawned=" << ps.spawned << " workers-crashed="
      << ps.crashed << " watchdog-kills=" << ps.watchdog_kills
      << " resume-handoffs=" << resume_handoffs
      << " wrong-answers=" << stats.wrong_answers
      << " broken-contracts=" << stats.broken_contracts << "\n";
  std::printf(
      "pfact_soak --kill-only: %zu certified, %zu attempts, "
      "%llu workers spawned, %llu crashed, %llu watchdog kills, "
      "%zu resume handoffs, %zu wrong answers, %zu broken contracts\n",
      stats.certified, stats.attempts,
      static_cast<unsigned long long>(ps.spawned),
      static_cast<unsigned long long>(ps.crashed),
      static_cast<unsigned long long>(ps.watchdog_kills), resume_handoffs,
      stats.wrong_answers, stats.broken_contracts);
  if (!ok || stats.wrong_answers != 0 || stats.broken_contracts != 0) {
    return fail_exit(opt);
  }
  std::printf("pfact_soak: all real-kill campaigns held the contract\n");
  return 0;
}

// --- concurrent serve campaigns through the warm-worker service -------------

// A not-currently-cached task, so the result cache cannot short-circuit a
// campaign that must reach a real worker: kill schedules and dispatcher
// wedges ride on these. Chain tasks (GEP/GQR) are the supply — (algorithm,
// u, w, depth) is the cache key — and two bounds keep them honest:
//
//   * depth is capped at 20, because checkpoint cost grows fast with depth
//     (a depth-36 chain streams ~265 snapshots per attempt, which cannot
//     certify inside a 200ms watchdog and stalls the soak);
//   * depths start ABOVE the repeat pool's (GEP 3.., GQR 2.. vs. the
//     pool's GEP depth 2 / GQR depth 1), so a unique task never aliases a
//     repeat task. That matters because overload bursts re-run the repeat
//     pool constantly, LRU-freshening its cache entries forever — a unique
//     task colliding with one would hit the cache and skip its kill;
//   * ids cycle with period 126 (7 combos x 18 depths). That is NOT
//     globally unique, but it does not have to be: a unique task's entry
//     is probed only by its own campaign, and the service cache holds 64
//     entries while the campaigns push ~9 fresh fills per 7-campaign
//     block, so the never-refreshed entry has been LRU-evicted long before
//     the id comes around again (~98 campaigns, ~2x the cache lifetime).
//
// GEP u=2,w=2 is deliberately absent from the combo set: that chain is
// decode-ambiguous (multiple live rows at the value column) from depth 13
// on — a genuinely invalid instance, not a robustness scenario.
ReductionTask unique_chain_task(std::uint64_t id) {
  ReductionTask t;
  const std::uint64_t slot = id % 126;
  const std::uint64_t combo = slot % 7;  // 3 GEP + 4 GQR shapes
  const std::size_t rung = static_cast<std::size_t>(slot / 7);  // 0..17
  if (combo < 3) {
    t.algorithm = Algorithm::kGep;
    t.u = 1 + static_cast<int>(combo & 1);          // GEP inputs: {1,2}
    t.w = 1 + static_cast<int>((combo >> 1) & 1);
    t.depth = 3 + rung;  // repeat pool uses GEP depth 2
  } else {
    t.algorithm = Algorithm::kGqr;
    t.u = (combo & 1) ? 1 : -1;                     // GQR inputs: {-1,+1}
    t.w = ((combo >> 1) & 1) ? 1 : -1;
    t.depth = 2 + rung;  // repeat pool uses GQR depth 1
  }
  return t;
}

int run_serve_campaigns(const Options& opt, std::ofstream& log) {
  const std::vector<ReductionTask> repeat_tasks = build_task_pool();

  serve::ServiceOptions so;
  so.dispatchers = 2;
  so.queue_depth = 4;  // small on purpose: overload bursts must shed
  so.cache_capacity = 64;
  so.pool.workers = 2;
  so.pool.recycle_after = 8;  // quota retirements happen during the soak
  so.supervisor.retry.max_attempts = 3;
  so.supervisor.retry.base_delay = std::chrono::milliseconds{1};
  so.supervisor.checkpoint_every = 2;
  serve::ReductionService service(so);

  SoakStats stats;
  std::set<serve::WorkerExit> observed;
  std::uint64_t unique_id = 0;
  bool ok = true;

  auto fail = [&](std::size_t campaign, const char* what,
                  const std::string& body) {
    ++stats.broken_contracts;
    log << "campaign " << campaign << " " << what << "\n" << body << "\n";
    if (!opt.fail_dir.empty()) {
      std::ofstream dump(opt.fail_dir + "/serve_campaign" +
                             std::to_string(campaign) + ".txt",
                         std::ios::trunc);
      dump << what << "\n" << body << "\n";
    }
    ok = false;
  };

  // Checks one admitted-and-dispatched response against the zero-wrong-
  // answer contract; returns false after recording the failure.
  auto check_served = [&](std::size_t campaign, const ReductionTask& task,
                          const serve::ServiceResponse& resp) {
    stats.attempts += resp.report.attempts.size();
    if (!resp.report.certified || resp.report.value != task.expected()) {
      if (resp.report.certified) ++stats.wrong_answers;
      fail(campaign,
           resp.report.certified ? "WRONG ANSWER" : "NOT CERTIFIED",
           resp.report.to_string());
      return false;
    }
    ++stats.certified;
    if (!resp.from_cache) observed.insert(resp.report.last_worker_exit);
    return true;
  };

  for (std::size_t campaign = 0; campaign < opt.campaigns && ok; ++campaign) {
    if (injected_violation(opt, campaign, log, stats)) {
      ok = false;
      break;
    }
    Stream rng{opt.seed, campaign};
    const std::size_t shape = campaign % 7;

    if (shape < std::size(kKillShapes)) {
      // Real-kill job through the full service path: admission -> bounded
      // queue -> warm worker -> supervised retry/resume. The task is unique
      // per campaign, so the kill always reaches a live worker.
      const KillShape& ks = kKillShapes[shape];
      const ReductionTask task = unique_chain_task(unique_id++);
      serve::JobOptions job;
      const std::uint64_t after_saves = rng.pick(2);
      job.kill_for_attempt = [&ks, after_saves](std::size_t attempt) {
        serve::KillPlan kill;
        if (attempt == 1) {
          kill.mode = ks.mode;
          kill.after_saves = after_saves;
        }
        return kill;
      };
      if (ks.watchdog) job.watchdog = std::chrono::milliseconds{200};
      if (ks.cpu_rlimit) job.rlimits.cpu_seconds = 1;
      const serve::ServiceResponse resp = service.run(task, job);
      if (resp.admission != serve::Admission::kAccepted) {
        fail(campaign, "LONE JOB SHED: an idle service must admit",
             resp.report.to_string());
        break;
      }
      if (!check_served(campaign, task, resp)) break;
      // The worker's death was classified exactly as the taxonomy promises.
      if (resp.report.attempts.empty() ||
          resp.report.attempts.front().diagnostic != ks.expect_diag) {
        fail(campaign, "KILL MISCLASSIFIED", resp.report.to_string());
        break;
      }
      observed.insert(ks.expect_exit);
      log << "campaign " << campaign << " serve-" << ks.name
          << " certified attempts=" << resp.report.attempts.size() << "\n";
      if (opt.verbose) {
        std::printf("campaign %zu serve-%s: certified (%zu attempts)\n",
                    campaign, ks.name, resp.report.attempts.size());
      }
    } else if (shape == std::size(kKillShapes)) {
      // Overload burst: pin both dispatchers on fresh (uncached) jobs, then
      // pour in more submissions than the queue bound can hold from
      // concurrent client threads while nothing drains. The overflow MUST
      // be refused as classified kShedQueueFull — never queued unboundedly,
      // never silently dropped — and every admitted job must still certify.
      const ReductionTask pin_a = unique_chain_task(unique_id++);
      const ReductionTask pin_b = unique_chain_task(unique_id++);
      auto pa = service.submit(pin_a);
      auto pb = service.submit(pin_b);

      constexpr std::size_t kBurst = 10;
      std::vector<ReductionTask> burst_tasks;
      for (std::size_t j = 0; j < kBurst; ++j) {
        // Cycled by campaign so later bursts repeat earlier bursts' tasks —
        // that repetition is what the cache-hit contract feeds on.
        burst_tasks.push_back(
            repeat_tasks[(campaign + j) % repeat_tasks.size()]);
      }
      std::vector<std::shared_ptr<serve::ReductionService::Pending>> burst(
          kBurst);
      {
        std::vector<std::thread> clients;
        for (std::size_t c = 0; c < 5; ++c) {
          clients.emplace_back([&, c] {
            for (std::size_t j = c * 2; j < c * 2 + 2; ++j) {
              burst[j] = service.submit(burst_tasks[j]);
            }
          });
        }
        for (std::thread& t : clients) t.join();
      }

      std::size_t shed_here = 0;
      for (std::size_t j = 0; j < kBurst && ok; ++j) {
        const serve::ServiceResponse& resp = burst[j]->wait();
        if (resp.admission == serve::Admission::kAccepted) {
          if (!check_served(campaign, burst_tasks[j], resp)) break;
        } else if (resp.admission == serve::Admission::kShedQueueFull) {
          ++shed_here;
          // A shed is only acceptable CLASSIFIED: the transient
          // kOverloaded diagnostic a client backoff loop can act on.
          if (resp.report.final_report.diagnostic !=
                  Diagnostic::kOverloaded ||
              classify_diagnostic(resp.report.final_report.diagnostic) !=
                  FailureKind::kTransient ||
              resp.report.certified) {
            fail(campaign, "UNCLASSIFIED SHED", resp.report.to_string());
            break;
          }
        } else {
          fail(campaign, "UNEXPECTED ADMISSION CLASS",
               std::string(serve::admission_name(resp.admission)));
          break;
        }
      }
      if (ok && !check_served(campaign, pin_a, pa->wait())) break;
      if (ok && !check_served(campaign, pin_b, pb->wait())) break;
      if (ok && shed_here == 0) {
        fail(campaign, "OVERLOAD NEVER SHED",
             "burst exceeded queue_depth with both dispatchers pinned, yet "
             "no submission was refused");
        break;
      }
      if (ok) {
        log << "campaign " << campaign << " serve-overload shed=" << shed_here
            << "/" << kBurst << "\n";
        if (opt.verbose) {
          std::printf("campaign %zu serve-overload: %zu/%zu shed\n", campaign,
                      shed_here, kBurst);
        }
      }
    } else {
      // Deadline expiry: wedge both dispatchers on watchdog-bounded spins,
      // then queue a job whose deadline is already hopeless. FIFO order
      // guarantees the wedges are picked up first, so by the time a
      // dispatcher frees up (>= 200ms later) the 1ms deadline has long
      // passed: the job must be shed as kShedDeadline without ever
      // touching a worker.
      serve::JobOptions wedge;
      wedge.kill_for_attempt = [](std::size_t attempt) {
        serve::KillPlan kill;
        if (attempt == 1) kill.mode = serve::KillPlan::Mode::kSpin;
        return kill;
      };
      wedge.watchdog = std::chrono::milliseconds{200};
      const ReductionTask wedge_a = unique_chain_task(unique_id++);
      const ReductionTask wedge_b = unique_chain_task(unique_id++);
      auto wa = service.submit(wedge_a, wedge);
      auto wb = service.submit(wedge_b, wedge);

      serve::JobOptions doomed;
      doomed.deadline = std::chrono::milliseconds{1};
      const ReductionTask late_task =
          repeat_tasks[rng.pick(repeat_tasks.size())];
      auto late = service.submit(late_task, doomed);

      const serve::ServiceResponse& lr = late->wait();
      if (lr.admission != serve::Admission::kShedDeadline ||
          lr.report.final_report.diagnostic !=
              Diagnostic::kDeadlineExceeded ||
          lr.report.certified) {
        fail(campaign, "DEADLINE NOT SHED",
             std::string("admission=") +
                 serve::admission_name(lr.admission) + "\n" +
                 lr.report.to_string());
        break;
      }
      // The wedges themselves recover: watchdog kills attempt 1, attempt 2
      // certifies — which also feeds kWatchdog into the coverage set.
      if (!check_served(campaign, wedge_a, wa->wait())) break;
      if (!check_served(campaign, wedge_b, wb->wait())) break;
      observed.insert(serve::WorkerExit::kWatchdog);
      log << "campaign " << campaign << " serve-deadline shed ok\n";
      if (opt.verbose) {
        std::printf("campaign %zu serve-deadline: shed as %s\n", campaign,
                    serve::admission_name(lr.admission));
      }
    }
  }

  // Coverage: every real worker-death class was produced and survived
  // through the service path — same two exclusions as the kill-only soak
  // (kProtocolError needs hand-built frames, kForkFailure needs the fork
  // injection seam; tests/serve covers both).
  if (ok && opt.campaigns >= 7) {
    for (serve::WorkerExit e : serve::all_worker_exits()) {
      if (e == serve::WorkerExit::kProtocolError ||
          e == serve::WorkerExit::kForkFailure) {
        continue;
      }
      if (observed.count(e) == 0) {
        ++stats.broken_contracts;
        log << "COVERAGE GAP: WorkerExit " << serve::worker_exit_name(e)
            << " never observed through the service\n";
        ok = false;
      }
    }
  }
  // Auto-respawn: every killed, recycled, or retired warm worker was
  // replaced — the pool ends the soak at full strength.
  if (ok && service.pool().live_workers() != so.pool.workers) {
    ++stats.broken_contracts;
    log << "RESPAWN GAP: " << service.pool().live_workers() << " of "
        << so.pool.workers << " warm workers alive at end of soak\n";
    ok = false;
  }
  const serve::ReductionService::Stats sstats = service.stats();
  if (ok && opt.campaigns >= 14 && sstats.served_from_cache == 0) {
    ++stats.broken_contracts;
    log << "CACHE NEVER HIT: repeated tasks were re-factored every time\n";
    ok = false;
  }

  const serve::WarmPool::Stats ps = service.pool().stats();
  log << "summary certified=" << stats.certified
      << " attempts=" << stats.attempts << " submitted=" << sstats.submitted
      << " accepted=" << sstats.accepted
      << " shed-queue-full=" << sstats.shed_queue_full
      << " shed-deadline=" << sstats.shed_deadline
      << " cache-hits=" << sstats.served_from_cache
      << " workers-spawned=" << ps.spawned << " workers-crashed="
      << ps.crashed << " recycles=" << ps.recycles
      << " watchdog-kills=" << ps.watchdog_kills
      << " wrong-answers=" << stats.wrong_answers
      << " broken-contracts=" << stats.broken_contracts << "\n";
  std::printf(
      "pfact_soak --serve: %zu certified, %zu attempts, "
      "%llu submitted, %llu shed (queue-full %llu, deadline %llu), "
      "%llu cache hits, %llu workers spawned, %llu crashed, "
      "%llu recycles, %zu wrong answers, %zu broken contracts\n",
      stats.certified, stats.attempts,
      static_cast<unsigned long long>(sstats.submitted),
      static_cast<unsigned long long>(sstats.shed_queue_full +
                                      sstats.shed_deadline +
                                      sstats.shed_shutdown),
      static_cast<unsigned long long>(sstats.shed_queue_full),
      static_cast<unsigned long long>(sstats.shed_deadline),
      static_cast<unsigned long long>(sstats.served_from_cache),
      static_cast<unsigned long long>(ps.spawned),
      static_cast<unsigned long long>(ps.crashed),
      static_cast<unsigned long long>(ps.recycles), stats.wrong_answers,
      stats.broken_contracts);
  if (!ok || stats.wrong_answers != 0 || stats.broken_contracts != 0) {
    return fail_exit(opt);
  }
  std::printf("pfact_soak: all serve campaigns held the contract\n");
  return 0;
}

// --- net mode: chaos against the socket front end --------------------------

// Raw-socket plumbing for the shapes the Client cannot stage itself: pinning
// idle connections against the bound, and completing a frame mid-drain.
int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

std::string raw_request_frame(const ReductionTask& task) {
  serve::TaskRequest req;
  req.task = task;
  const std::string payload = serve::encode_request(req);
  robustness::detail::ByteWriter w;
  w.put_u32(serve::kFrameMagic);
  w.put_u8(static_cast<std::uint8_t>(serve::FrameType::kRequest));
  w.put_u64(payload.size());
  w.put_u32(robustness::crc32(payload.data(), payload.size()));
  w.put_bytes(payload.data(), payload.size());
  return w.take();
}

bool wait_until(const std::function<bool()>& cond,
                std::chrono::milliseconds timeout =
                    std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

int run_net_campaigns(const Options& opt, std::ofstream& log) {
  const std::vector<ReductionTask> repeat_tasks = build_task_pool();

  serve::ServiceOptions so;
  so.dispatchers = 2;
  so.queue_depth = 8;
  so.cache_capacity = 64;
  so.pool.workers = 2;
  so.supervisor.retry.max_attempts = 3;
  so.supervisor.retry.base_delay = std::chrono::milliseconds{1};
  so.supervisor.checkpoint_every = 2;
  serve::ReductionService service(so);

  serve::FrontendOptions fo;
  fo.unix_path =
      "/tmp/pfact_soak_net_" + std::to_string(::getpid()) + ".sock";
  fo.max_connections = 4;  // small on purpose: overload shapes must shed
  // Short enough that a stalled-reader campaign settles fast, long enough
  // that a dribbled frame (~1ms per 64 bytes) still completes in time.
  fo.read_deadline = std::chrono::milliseconds{400};
  fo.write_deadline = std::chrono::milliseconds{2000};
  serve::Frontend frontend(service, fo);

  SoakStats stats;
  bool ok = true;
  std::uint64_t unique_id = 0;

  if (!frontend.running()) {
    ++stats.broken_contracts;
    log << "FRONTEND NEVER BOUND: " << fo.unix_path << "\n";
    return fail_exit(opt);
  }

  auto fail = [&](std::size_t campaign, const char* what,
                  const std::string& body) {
    ++stats.broken_contracts;
    log << "campaign " << campaign << " " << what << "\n" << body << "\n";
    if (!opt.fail_dir.empty()) {
      std::ofstream dump(opt.fail_dir + "/net_campaign" +
                             std::to_string(campaign) + ".txt",
                         std::ios::trunc);
      dump << what << "\n" << body << "\n";
    }
    ok = false;
  };

  auto describe = [](const serve::ClientResult& res) {
    return std::string("status=") +
           serve::frontend_status_name(res.status) + " diagnostic=" +
           robustness::diagnostic_name(res.diagnostic) + " attempts=" +
           std::to_string(res.attempts);
  };

  // The five sabotage shapes, cycled with overload (5) and clean/cached (6).
  static constexpr serve::NetFault kNetShapes[5] = {
      serve::NetFault::kTornFrame,     serve::NetFault::kMidFrameClose,
      serve::NetFault::kDribble,       serve::NetFault::kStalledReader,
      serve::NetFault::kGarbagePreamble};

  auto client_options = [&](Stream& rng) {
    serve::ClientOptions co;
    co.unix_path = frontend.unix_path();
    co.retry.max_attempts = 4;
    co.retry.base_delay = std::chrono::milliseconds{1};
    co.retry.jitter_seed = rng.next();
    return co;
  };

  for (std::size_t campaign = 0; campaign < opt.campaigns && ok; ++campaign) {
    if (injected_violation(opt, campaign, log, stats)) {
      ok = false;
      break;
    }
    Stream rng{opt.seed, campaign};
    const std::size_t shape = campaign % 7;

    if (shape < std::size(kNetShapes)) {
      // One sabotaged attempt, then the retry loop must carry the SAME
      // submission through to the ground-truth boolean. Unique tasks on
      // even campaigns keep fresh factorizations in the mix; repeat tasks
      // on odd ones keep the cache warm.
      serve::ClientOptions co = client_options(rng);
      co.fault.fault = kNetShapes[shape];
      co.fault.seed = rng.next();
      co.fault.on_attempt = 1;
      // Long enough to trip the server's read deadline, with margin.
      co.fault.stall = fo.read_deadline + std::chrono::milliseconds{500};
      const ReductionTask task =
          (campaign % 2 == 0) ? unique_chain_task(unique_id++)
                              : repeat_tasks[rng.pick(repeat_tasks.size())];
      serve::Client client(co);
      const serve::ClientResult res = client.submit(task);
      stats.attempts += res.attempts;
      if (!res.ok || !res.response.certified ||
          res.response.value != task.expected()) {
        if (res.ok && res.response.certified) ++stats.wrong_answers;
        fail(campaign,
             res.ok ? "WRONG ANSWER through the socket" : "SUBMISSION LOST",
             describe(res));
        break;
      }
      ++stats.certified;
      log << "campaign " << campaign << " net-"
          << serve::net_fault_name(co.fault.fault)
          << " certified attempts=" << res.attempts << "\n";
      if (opt.verbose) {
        std::printf("campaign %zu net-%s: certified (%zu attempts)\n",
                    campaign, serve::net_fault_name(co.fault.fault),
                    res.attempts);
      }
    } else if (shape == std::size(kNetShapes)) {
      // Connection-bound overload: pin every slot with idle raw
      // connections, then a submission MUST be refused as classified
      // kOverloaded — and succeed once the pins release.
      std::vector<int> pins;
      for (std::size_t p = 0; p < fo.max_connections; ++p) {
        const int fd = raw_connect(fo.unix_path);
        if (fd >= 0) pins.push_back(fd);
      }
      if (pins.size() != fo.max_connections) {
        for (int fd : pins) ::close(fd);
        fail(campaign, "PIN SETUP FAILED",
             std::to_string(pins.size()) + " of " +
                 std::to_string(fo.max_connections) + " pins connected");
        break;
      }
      serve::ClientOptions co = client_options(rng);
      co.retry.max_attempts = 2;  // both land on a full house
      serve::Client refused_client(co);
      const ReductionTask task = repeat_tasks[rng.pick(repeat_tasks.size())];
      const serve::ClientResult refused = refused_client.submit(task);
      const std::uint64_t closes_before = frontend.stats().clean_closes;
      for (int fd : pins) ::close(fd);
      if (refused.ok ||
          refused.status != serve::FrontendStatus::kOverloaded ||
          refused.diagnostic != Diagnostic::kOverloaded ||
          classify_diagnostic(refused.diagnostic) !=
              FailureKind::kTransient) {
        fail(campaign, "OVERLOAD NOT CLASSIFIED", describe(refused));
        break;
      }
      // The shed is transient and the pins are gone: the same task must
      // now go straight through.
      if (!wait_until([&] {
            return frontend.stats().clean_closes > closes_before;
          })) {
        fail(campaign, "PINS NEVER RELEASED",
             "clean_closes never advanced after closing the pinned "
             "connections");
        break;
      }
      serve::Client retry_client(client_options(rng));
      const serve::ClientResult res = retry_client.submit(task);
      stats.attempts += refused.attempts + res.attempts;
      if (!res.ok || !res.response.certified ||
          res.response.value != task.expected()) {
        if (res.ok && res.response.certified) ++stats.wrong_answers;
        fail(campaign, "POST-OVERLOAD SUBMISSION LOST", describe(res));
        break;
      }
      ++stats.certified;
      log << "campaign " << campaign << " net-overload shed then served\n";
      if (opt.verbose) {
        std::printf("campaign %zu net-overload: shed as %s, then served\n",
                    campaign, serve::frontend_status_name(refused.status));
      }
    } else {
      // Clean round-trip, twice: the first certifies fresh (or refreshes
      // the cache), the immediate repeat MUST be served from the verified
      // result cache — through the socket.
      const ReductionTask task = repeat_tasks[rng.pick(repeat_tasks.size())];
      serve::Client client(client_options(rng));
      const serve::ClientResult first = client.submit(task);
      const serve::ClientResult second = client.submit(task);
      stats.attempts += first.attempts + second.attempts;
      for (const serve::ClientResult* res : {&first, &second}) {
        if (!res->ok || !res->response.certified ||
            res->response.value != task.expected()) {
          if (res->ok && res->response.certified) ++stats.wrong_answers;
          fail(campaign, "CLEAN ROUND-TRIP LOST", describe(*res));
          break;
        }
        ++stats.certified;
      }
      if (!ok) break;
      if (!second.response.from_cache) {
        fail(campaign, "CACHE MISSED THROUGH THE SOCKET",
             "immediate repeat of an identical task re-factored");
        break;
      }
      log << "campaign " << campaign << " net-clean cached repeat ok\n";
      if (opt.verbose) {
        std::printf("campaign %zu net-clean: cached repeat ok\n", campaign);
      }
    }
  }

  // Graceful drain: complete a request AFTER begin_drain and require the
  // classified kDraining refusal — the last FrontendStatus the campaign
  // shapes cannot produce — then require the loop to actually exit.
  if (ok) {
    const int fd = raw_connect(fo.unix_path);
    if (fd < 0) {
      fail(opt.campaigns, "DRAIN CONN FAILED", "connect refused before drain");
    } else {
      const std::string frame = raw_request_frame(repeat_tasks[0]);
      const std::size_t half = frame.size() / 2;
      bool sent = write_all(fd, frame.data(), half);
      frontend.begin_drain();
      sent = sent && write_all(fd, frame.data() + half, frame.size() - half);
      serve::FrameType type = serve::FrameType::kResponse;
      std::string payload;
      serve::FrontendResponse resp;
      const serve::WireStatus ws =
          sent ? serve::read_frame(fd, type, payload,
                                   std::chrono::steady_clock::now() +
                                       std::chrono::seconds(5))
               : serve::WireStatus::kConnReset;
      if (ws != serve::WireStatus::kOk ||
          type != serve::FrameType::kResponse ||
          !serve::decode_response(payload, resp) ||
          resp.status != serve::FrontendStatus::kDraining) {
        fail(opt.campaigns, "DRAIN REFUSAL NOT CLASSIFIED",
             std::string("wire=") + serve::wire_status_name(ws) +
                 " status=" + serve::frontend_status_name(resp.status));
      }
      ::close(fd);
      if (ok && !wait_until([&] { return frontend.drained(); })) {
        fail(opt.campaigns, "DRAIN NEVER FINISHED",
             "event loop still live 5s after begin_drain");
      }
    }
  }

  // Coverage: a full-length soak must have ended conversations in EVERY
  // FrontendStatus class — accepted, malformed, deadline, conn-reset,
  // overloaded, draining. A class never hit means a chaos shape silently
  // stopped exercising its path.
  const serve::Frontend::Stats fs = frontend.stats();
  if (ok && opt.campaigns >= 7) {
    for (serve::FrontendStatus s : serve::all_frontend_statuses()) {
      if (fs.status(s) == 0) {
        ++stats.broken_contracts;
        log << "COVERAGE GAP: FrontendStatus "
            << serve::frontend_status_name(s)
            << " never observed through the socket\n";
        ok = false;
      }
    }
  }
  // The chaos stayed in the transport: the warm pool behind the service
  // ends the soak at full strength.
  if (ok && service.pool().live_workers() != so.pool.workers) {
    ++stats.broken_contracts;
    log << "RESPAWN GAP: " << service.pool().live_workers() << " of "
        << so.pool.workers << " warm workers alive at end of soak\n";
    ok = false;
  }

  log << "summary certified=" << stats.certified
      << " attempts=" << stats.attempts << " conns=" << fs.conns_accepted;
  for (serve::FrontendStatus s : serve::all_frontend_statuses()) {
    log << " " << serve::frontend_status_name(s) << "=" << fs.status(s);
  }
  log << " clean-closes=" << fs.clean_closes
      << " wrong-answers=" << stats.wrong_answers
      << " broken-contracts=" << stats.broken_contracts << "\n";
  std::printf(
      "pfact_soak --net: %zu certified, %zu attempts, %llu conns "
      "(accepted %llu, malformed %llu, deadline %llu, conn-reset %llu, "
      "overloaded %llu, draining %llu), %zu wrong answers, "
      "%zu broken contracts\n",
      stats.certified, stats.attempts,
      static_cast<unsigned long long>(fs.conns_accepted),
      static_cast<unsigned long long>(
          fs.status(serve::FrontendStatus::kAccepted)),
      static_cast<unsigned long long>(
          fs.status(serve::FrontendStatus::kMalformedFrame)),
      static_cast<unsigned long long>(
          fs.status(serve::FrontendStatus::kDeadline)),
      static_cast<unsigned long long>(
          fs.status(serve::FrontendStatus::kConnReset)),
      static_cast<unsigned long long>(
          fs.status(serve::FrontendStatus::kOverloaded)),
      static_cast<unsigned long long>(
          fs.status(serve::FrontendStatus::kDraining)),
      stats.wrong_answers, stats.broken_contracts);
  if (!ok || stats.wrong_answers != 0 || stats.broken_contracts != 0) {
    return fail_exit(opt);
  }
  std::printf("pfact_soak: all net campaigns held the contract\n");
  return 0;
}

// --- shard mode: chaos against the sharded self-healing router --------------

// The kernel's verdict on a pid: the single state letter from
// /proc/<pid>/stat ('R' running, 'T' stopped, 'Z' zombie, ...), or '?' if
// the pid is gone. The wedge campaign needs this to prove its SIGSTOP froze
// a live process rather than landing harmlessly on an unreaped corpse.
char proc_state(pid_t pid) {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/%d/stat", static_cast<int>(pid));
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return '?';
  char line[512] = {0};
  char state = '?';
  if (std::fgets(line, sizeof(line), f) != nullptr) {
    // Field 3 follows the parenthesized comm, which may itself contain
    // parens — scan from the LAST ')'.
    const char* paren = std::strrchr(line, ')');
    if (paren != nullptr && paren[1] != '\0' && paren[2] != '\0') {
      state = paren[2];
    }
  }
  std::fclose(f);
  return state;
}

int run_shard_campaigns(const Options& opt, std::ofstream& log) {
  const std::vector<ReductionTask> repeat_tasks = build_task_pool();

  serve::RouterOptions ro;
  ro.shards = 3;
  ro.service.dispatchers = 1;
  ro.service.queue_depth = 8;
  ro.service.cache_capacity = 32;
  ro.service.pool.workers = 1;
  ro.service.supervisor.retry.max_attempts = 3;
  ro.service.supervisor.retry.base_delay = std::chrono::milliseconds{1};
  ro.service.supervisor.checkpoint_every = 2;
  ro.probe_interval = std::chrono::milliseconds{25};
  ro.probe_deadline = std::chrono::milliseconds{300};
  ro.restart.base_delay = std::chrono::milliseconds{5};
  ro.restart.max_delay = std::chrono::milliseconds{50};
  ro.restart.jitter_seed = opt.seed;
  serve::ShardRouter router(ro);

  // The unsharded baseline: the SAME service template in one process. Every
  // fresh certified answer the router hands out must match it bit for bit —
  // value AND pivot trace — whatever chaos the campaign staged, because a
  // failover re-runs the whole deterministic reduction rather than resuming
  // a half-trusted one. Memoized per content-address key so the baseline is
  // computed fresh (with a full trace) exactly once per distinct task.
  serve::ReductionService baseline(ro.service);
  std::map<std::string, std::pair<bool, factor::PivotTrace>> expected_runs;

  SoakStats stats;
  bool ok = true;
  std::uint64_t unique_id = 0;
  std::size_t sheds_survived = 0;
  std::size_t downs_survived = 0;

  auto fail = [&](std::size_t campaign, const char* what,
                  const std::string& body) {
    ++stats.broken_contracts;
    log << "campaign " << campaign << " " << what << "\n" << body << "\n";
    if (!opt.fail_dir.empty()) {
      std::ofstream dump(opt.fail_dir + "/shard_campaign" +
                             std::to_string(campaign) + ".txt",
                         std::ios::trunc);
      dump << what << "\n" << body << "\n";
    }
    ok = false;
  };

  // One answered (routed or failed-over) result against ground truth and
  // the unsharded baseline.
  auto check_answer = [&](std::size_t campaign, const ReductionTask& task,
                          const serve::RouteResult& r) {
    if (!r.response.certified || r.response.value != task.expected()) {
      if (r.response.certified) ++stats.wrong_answers;
      fail(campaign,
           r.response.certified ? "WRONG ANSWER through the router"
                                : "ANSWER NOT CERTIFIED",
           std::string("status=") + serve::router_status_name(r.status) +
               " shard=" + std::to_string(r.shard) + " " + task.describe());
      return false;
    }
    const std::string key =
        serve::ResultCache::key_for(task, Substrate::kDouble);
    auto it = expected_runs.find(key);
    if (it == expected_runs.end()) {
      const serve::ServiceResponse base = baseline.run(task);
      if (!base.report.certified || base.report.value != task.expected()) {
        fail(campaign, "UNSHARDED BASELINE NOT CERTIFIED",
             base.report.to_string());
        return false;
      }
      it = expected_runs
               .emplace(key, std::make_pair(base.report.value,
                                            base.report.final_report.trace))
               .first;
    }
    if (r.response.value != it->second.first) {
      ++stats.wrong_answers;
      fail(campaign, "SHARDED VALUE DIVERGED FROM UNSHARDED BASELINE",
           task.describe());
      return false;
    }
    // Cache hits legitimately travel without a trace; every fresh answer
    // must replay the baseline's pivot decisions event for event.
    if (!r.response.from_cache &&
        !traces_equal(r.response.report.trace, it->second.second)) {
      ++stats.wrong_answers;
      fail(campaign, "SHARDED TRACE DIVERGED FROM UNSHARDED BASELINE",
           task.describe() + " baseline=" +
               std::to_string(it->second.second.size()) + " events, sharded=" +
               std::to_string(r.response.report.trace.size()) + " events");
      return false;
    }
    ++stats.certified;
    return true;
  };

  // Submits `task` until an answer arrives, however long the chaos takes.
  // Every non-answer along the way must be a CLASSIFIED transient refusal —
  // the availability half of the contract: a request is never lost, only
  // answered or refused with a diagnostic a backoff loop can act on.
  auto answer_through_chaos = [&](std::size_t campaign,
                                  const ReductionTask& task) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      const serve::RouteResult r = router.submit(task);
      ++stats.attempts;
      switch (r.status) {
        case serve::RouterStatus::kRouted:
        case serve::RouterStatus::kFailedOver:
          return check_answer(campaign, task, r);
        case serve::RouterStatus::kBrownoutShed:
          if (r.response.report.diagnostic != Diagnostic::kOverloaded ||
              r.response.certified) {
            fail(campaign, "BROWNOUT SHED NOT CLASSIFIED",
                 diagnostic_name(r.response.report.diagnostic));
            return false;
          }
          ++sheds_survived;
          break;
        case serve::RouterStatus::kAllShardsDown:
          if (classify_diagnostic(r.response.report.diagnostic) !=
                  FailureKind::kTransient ||
              r.response.certified) {
            fail(campaign, "FULL-OUTAGE REFUSAL NOT TRANSIENT",
                 diagnostic_name(r.response.report.diagnostic));
            return false;
          }
          ++downs_survived;
          break;
      }
      // A refusal is the router telling us to back off; oblige briefly so
      // the supervision loop gets cycles to heal the fleet.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    fail(campaign, "NEVER ANSWERED", task.describe());
    return false;
  };

  if (!router.wait_all_serving(std::chrono::seconds(30))) {
    fail(0, "FLEET NEVER CAME UP", "initial wait_all_serving timed out");
    return fail_exit(opt);
  }

  for (std::size_t campaign = 0; campaign < opt.campaigns && ok; ++campaign) {
    if (injected_violation(opt, campaign, log, stats)) {
      ok = false;
      break;
    }
    // The self-healing contract, asserted between EVERY pair of campaigns:
    // whatever the previous campaign destroyed, the fleet is back at full
    // serving strength before the next one starts.
    if (!router.wait_all_serving(std::chrono::seconds(30))) {
      fail(campaign, "FLEET NEVER HEALED",
           "wait_all_serving timed out between campaigns");
      break;
    }
    Stream rng{opt.seed, campaign};
    const std::size_t shape = campaign % 6;

    if (shape == 0) {
      // Clean cached round-trip: a healthy fleet routes a repeat task to
      // its home shard twice; both answers certify.
      const ReductionTask& task = repeat_tasks[rng.pick(repeat_tasks.size())];
      if (!answer_through_chaos(campaign, task)) break;
      if (!answer_through_chaos(campaign, task)) break;
      log << "campaign " << campaign << " shard-clean "
          << task.describe() << " ok\n";
      if (opt.verbose) {
        std::printf("campaign %zu shard-clean: ok\n", campaign);
      }
    } else if (shape == 1 || shape == 2) {
      // Kill the HOME shard mid-stream — SIGKILL on odd shapes, a genuine
      // SIGSEGV on even — and require the key to keep answering throughout
      // the outage (failover) and after the heal.
      const int sig = (shape == 1) ? SIGKILL : SIGSEGV;
      const ReductionTask& task = repeat_tasks[rng.pick(repeat_tasks.size())];
      if (!answer_through_chaos(campaign, task)) break;  // warm the key
      router.kill_shard_for_testing(router.home_shard(task), sig);
      if (!answer_through_chaos(campaign, task)) break;
      log << "campaign " << campaign << " shard-kill-"
          << (sig == SIGKILL ? "sigkill" : "sigsegv") << " "
          << task.describe() << " survived\n";
      if (opt.verbose) {
        std::printf("campaign %zu shard-kill-%s: survived\n", campaign,
                    sig == SIGKILL ? "sigkill" : "sigsegv");
      }
    } else if (shape == 3) {
      // Wedge: SIGSTOP freezes a shard's event loop while waitpid sees a
      // live child — only the probe deadline can catch it. The bulkhead
      // contract: the wedge costs that shard's capacity, never the
      // router's liveness, and the eviction SIGKILL leads to a heal.
      //
      // The inter-campaign wait_all_serving barrier is eventually
      // consistent: a status can lag the previous campaign's kill by one
      // supervision tick, so a first SIGSTOP may land on an unreaped corpse
      // (kill() succeeds on a zombie, freezes nothing). The wedge contract
      // is about LIVE shards, so confirm the stop actually froze a process
      // (/proc state T) and retry while the supervisor settles the fleet.
      const std::size_t victim = rng.pick(ro.shards);
      const ReductionTask& task = repeat_tasks[rng.pick(repeat_tasks.size())];
      if (!answer_through_chaos(campaign, task)) break;  // warm the key
      const serve::ShardRouter::Stats before = router.stats();
      bool wedged = false;
      const auto stop_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(15);
      while (!wedged && std::chrono::steady_clock::now() < stop_deadline) {
        const pid_t pid = router.shard_pid(victim);
        if (pid > 0 && router.kill_shard_for_testing(victim, SIGSTOP) &&
            router.shard_pid(victim) == pid && proc_state(pid) == 'T') {
          wedged = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!wedged) {
        fail(campaign, "WEDGE NEVER LANDED",
             "no live shard process entered /proc state T under SIGSTOP");
        break;
      }
      if (!answer_through_chaos(campaign, task)) break;  // serve through it
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(15);
      while (router.stats().evictions == before.evictions &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (router.stats().evictions == before.evictions) {
        const serve::ShardRouter::Stats after = router.stats();
        std::string detail =
            "probe deadline did not SIGKILL the SIGSTOPped shard: victim=" +
            std::to_string(victim) + " probes+" +
            std::to_string(after.probes - before.probes) +
            " probe-failures+" +
            std::to_string(after.probe_failures - before.probe_failures) +
            " restarts+" + std::to_string(after.restarts - before.restarts) +
            " statuses=";
        for (std::size_t i = 0; i < ro.shards; ++i) {
          detail += std::string(i ? "," : "") +
                    serve::shard_status_name(router.shard_status(i));
        }
        fail(campaign, "WEDGE NEVER EVICTED", detail);
        break;
      }
      log << "campaign " << campaign << " shard-wedge victim=" << victim
          << " evicted\n";
      if (opt.verbose) {
        std::printf("campaign %zu shard-wedge: evicted\n", campaign);
      }
    } else if (shape == 4) {
      // Brownout entry/exit: with one shard down the router must shed a
      // never-seen key as classified kOverloaded while a warm key keeps
      // answering; once the fleet heals, the same fresh key is admitted.
      const ReductionTask& warm = repeat_tasks[rng.pick(repeat_tasks.size())];
      if (!answer_through_chaos(campaign, warm)) break;
      router.kill_shard_for_testing(rng.pick(ro.shards), SIGKILL);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(15);
      while (!router.browned_out() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (!router.browned_out()) {
        fail(campaign, "BROWNOUT NEVER ENTERED",
             "shard killed but browned_out() stayed false");
        break;
      }
      const ReductionTask fresh = unique_chain_task(unique_id++);
      const serve::RouteResult shed = router.submit(fresh);
      if (shed.status == serve::RouterStatus::kBrownoutShed) {
        if (shed.response.report.diagnostic != Diagnostic::kOverloaded ||
            classify_diagnostic(shed.response.report.diagnostic) !=
                FailureKind::kTransient) {
          fail(campaign, "BROWNOUT SHED NOT CLASSIFIED",
               diagnostic_name(shed.response.report.diagnostic));
          break;
        }
        ++sheds_survived;
      }  // a heal racing the submit is legal: the shed is best-effort here
      if (!answer_through_chaos(campaign, warm)) break;  // warm keys survive
      if (!router.wait_all_serving(std::chrono::seconds(30))) {
        fail(campaign, "BROWNOUT NEVER EXITED",
             "fleet did not heal after the brownout campaign");
        break;
      }
      if (!answer_through_chaos(campaign, fresh)) break;  // admitted again
      log << "campaign " << campaign << " shard-brownout "
          << (shed.status == serve::RouterStatus::kBrownoutShed
                  ? "shed-then-admitted"
                  : "healed-before-shed")
          << "\n";
      if (opt.verbose) {
        std::printf("campaign %zu shard-brownout: ok\n", campaign);
      }
    } else {
      // Fleet kill / restart storm: SIGKILL every shard at once. The very
      // next submit must be the classified all-shards-down refusal (or a
      // lucky failover into an already-respawned shard — also legal), and
      // the supervision loop must restart the whole fleet.
      const std::uint64_t restarts_before = router.stats().restarts;
      for (std::size_t i = 0; i < ro.shards; ++i) {
        router.kill_shard_for_testing(i, SIGKILL);
      }
      const ReductionTask& task = repeat_tasks[rng.pick(repeat_tasks.size())];
      if (!answer_through_chaos(campaign, task)) break;
      if (!router.wait_all_serving(std::chrono::seconds(30))) {
        fail(campaign, "RESTART STORM NEVER HEALED",
             "fleet did not return to serving after a full kill");
        break;
      }
      if (router.stats().restarts < restarts_before + ro.shards) {
        fail(campaign, "RESTARTS NOT ACCOUNTED",
             "fewer respawns than shards killed");
        break;
      }
      log << "campaign " << campaign << " shard-fleet-kill survived\n";
      if (opt.verbose) {
        std::printf("campaign %zu shard-fleet-kill: survived\n", campaign);
      }
    }
  }

  const serve::ShardRouter::Stats rs = router.stats();
  // Every submit classified as exactly one RouterStatus: the ledger sums.
  std::uint64_t classified = 0;
  for (serve::RouterStatus s : serve::all_router_statuses()) {
    classified += rs.status(s);
  }
  if (ok && classified != rs.submits) {
    ++stats.broken_contracts;
    log << "LEDGER GAP: " << rs.submits << " submits but " << classified
        << " classified endings\n";
    ok = false;
  }
  if (ok && opt.campaigns >= 6) {
    // Full taxonomy coverage, both enums: a class never observed means a
    // chaos shape silently stopped exercising its path.
    for (serve::ShardStatus s : serve::all_shard_statuses()) {
      if (rs.shard_status_seen[static_cast<std::size_t>(s)] == 0) {
        ++stats.broken_contracts;
        log << "COVERAGE GAP: ShardStatus " << serve::shard_status_name(s)
            << " never observed\n";
        ok = false;
      }
    }
    for (serve::RouterStatus s : serve::all_router_statuses()) {
      if (rs.status(s) == 0) {
        ++stats.broken_contracts;
        log << "COVERAGE GAP: RouterStatus " << serve::router_status_name(s)
            << " never observed\n";
        ok = false;
      }
    }
    // Cache locality: consistent hashing must keep most answers on their
    // home shard even while campaigns keep killing it. The floor is
    // deliberately loose (a quarter) — failover storms legitimately move
    // traffic — but a broken ring (everything failing over) lands near 0.
    if (rs.answered_by_home * 4 < rs.answered) {
      ++stats.broken_contracts;
      log << "LOCALITY GAP: only " << rs.answered_by_home << " of "
          << rs.answered << " answers came from the home shard\n";
      ok = false;
    }
  }

  log << "summary certified=" << stats.certified
      << " submits=" << rs.submits << " routed="
      << rs.status(serve::RouterStatus::kRouted) << " failed-over="
      << rs.status(serve::RouterStatus::kFailedOver) << " brownout-shed="
      << rs.status(serve::RouterStatus::kBrownoutShed) << " all-shards-down="
      << rs.status(serve::RouterStatus::kAllShardsDown)
      << " failover-hops=" << rs.failover_hops << " restarts=" << rs.restarts
      << " evictions=" << rs.evictions << " probes=" << rs.probes
      << " probe-failures=" << rs.probe_failures
      << " answered=" << rs.answered
      << " answered-by-home=" << rs.answered_by_home
      << " wrong-answers=" << stats.wrong_answers
      << " broken-contracts=" << stats.broken_contracts << "\n";
  std::printf(
      "pfact_soak --shard: %zu certified, %llu submits "
      "(routed %llu, failed-over %llu, brownout-shed %llu, "
      "all-shards-down %llu), %llu restarts, %llu evictions, "
      "%llu/%llu answers by home shard, %zu sheds survived, "
      "%zu outages survived, %zu wrong answers, %zu broken contracts\n",
      stats.certified, static_cast<unsigned long long>(rs.submits),
      static_cast<unsigned long long>(rs.status(serve::RouterStatus::kRouted)),
      static_cast<unsigned long long>(
          rs.status(serve::RouterStatus::kFailedOver)),
      static_cast<unsigned long long>(
          rs.status(serve::RouterStatus::kBrownoutShed)),
      static_cast<unsigned long long>(
          rs.status(serve::RouterStatus::kAllShardsDown)),
      static_cast<unsigned long long>(rs.restarts),
      static_cast<unsigned long long>(rs.evictions),
      static_cast<unsigned long long>(rs.answered_by_home),
      static_cast<unsigned long long>(rs.answered), sheds_survived,
      downs_survived, stats.wrong_answers, stats.broken_contracts);
  if (!ok || stats.wrong_answers != 0 || stats.broken_contracts != 0) {
    return fail_exit(opt);
  }
  std::printf("pfact_soak: all shard campaigns held the contract\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--campaigns") {
      opt.campaigns = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--log") {
      opt.log_path = value();
    } else if (arg == "--fail-dir") {
      opt.fail_dir = value();
    } else if (arg == "--kill-only") {
      opt.kill_only = true;
    } else if (arg == "--serve") {
      opt.serve = true;
    } else if (arg == "--net") {
      opt.net = true;
    } else if (arg == "--shard") {
      opt.shard = true;
    } else if (arg == "--inject-violation") {
      opt.inject_violation =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: pfact_soak [--campaigns N] [--seed S] [--log FILE] "
                   "[--fail-dir DIR] [--kill-only] [--serve] [--net] "
                   "[--shard] [--inject-violation N] [--verbose]\n");
      return 2;
    }
  }

  std::ofstream log(opt.log_path, std::ios::trunc);
  if (!log) {
    std::fprintf(stderr, "cannot open log file %s\n", opt.log_path.c_str());
    return 2;
  }
  log << "pfact_soak seed=" << opt.seed << " campaigns=" << opt.campaigns
      << (opt.kill_only ? " kill-only" : "") << (opt.serve ? " serve" : "")
      << (opt.net ? " net" : "") << (opt.shard ? " shard" : "") << "\n";

  if (opt.shard) return run_shard_campaigns(opt, log);
  if (opt.net) return run_net_campaigns(opt, log);
  if (opt.serve) return run_serve_campaigns(opt, log);
  if (opt.kill_only) return run_kill_campaigns(opt, log);

  const std::vector<ReductionTask> pool = build_task_pool();
  const std::vector<FaultClass> faults = all_fault_classes();
  SoakStats stats;
  bool ok = true;

  for (std::size_t campaign = 0; campaign < opt.campaigns && ok; ++campaign) {
    if (injected_violation(opt, campaign, log, stats)) {
      ok = false;
      break;
    }
    Stream rng{opt.seed, campaign};
    const ReductionTask& task = pool[rng.pick(pool.size())];

    ResilientOptions ro;
    ro.retry.max_attempts = 3;
    ro.retry.base_delay = std::chrono::milliseconds{1};
    ro.retry.jitter_seed = rng.next();
    // No sleeper installed: backoffs are recorded, not slept — the campaign
    // stream is wall-clock independent.

    const std::uint64_t shape = rng.pick(5);
    const char* shape_name = "?";
    CheckpointStore store;

    switch (shape) {
      case 0: {  // fault-sweep: one persistent fault across all attempts
        shape_name = "fault-sweep";
        FaultPlan plan;
        plan.fault = faults[rng.pick(faults.size())];
        plan.seed = rng.next();
        ro.checkpoint_every = 2 + rng.pick(4);
        ro.store = &store;
        ro.fault_for_attempt = [plan](std::size_t) { return plan; };
        break;
      }
      case 1: {  // flip-ladder: rounding flip, ladder starts on SoftFloat
        shape_name = "flip-ladder";
        if (task.algorithm == Algorithm::kGqr) {
          // GQR has no exact rung to escalate into; give it the full ladder
          // from the bottom instead (the flip is harmless on long double).
          ro.ladder = {Substrate::kDouble, Substrate::kSoftFloat53};
        } else {
          ro.ladder = {Substrate::kSoftFloat53, Substrate::kRational};
        }
        FaultPlan plan;
        plan.fault = FaultClass::kRoundingFlip;
        plan.seed = rng.next();
        ro.fault_for_attempt = [plan](std::size_t) { return plan; };
        break;
      }
      case 2: {  // preemption storm: kill every attempt, finish by resume
        shape_name = "preemption";
        ro.checkpoint_every = 2;
        ro.store = &store;
        ro.limits.max_steps = 3 + rng.pick(3);
        // Progress per kill is ~checkpoint_every steps, so crossing the
        // largest pool task (order ~10^2) takes a few hundred kills.
        ro.retry.max_attempts = 1024;
        break;
      }
      case 3: {  // torn-write: preemption plus a blob corrupted at save
        shape_name = "torn-write";
        ro.checkpoint_every = 2;
        ro.store = &store;
        ro.limits.max_steps = 4;
        ro.retry.max_attempts = 1024;
        FaultPlan plan;
        plan.fault = FaultClass::kTornWrite;
        plan.seed = rng.next();
        ro.fault_for_attempt = [plan](std::size_t attempt) {
          // Tear only the first attempt's snapshot so the campaign also
          // proves recovery, not just rejection.
          return attempt == 1 ? plan : FaultPlan{};
        };
        break;
      }
      default: {  // kill-resume: explicit crash/resume equivalence
        shape_name = "kill-resume";
        // Uninterrupted baseline.
        ResilientOptions base;
        base.retry.max_attempts = 1;
        const ResilientReport baseline = resilient_run(task, base);
        if (!baseline.certified) {
          ++stats.broken_contracts;
          log << "campaign " << campaign << " BROKEN CONTRACT: clean run of "
              << task.describe() << " not certified\n"
              << baseline.to_string() << "\n";
          ok = false;
          break;
        }
        // Kill a checkpointing run at a step boundary...
        const std::size_t every = 2 + rng.pick(3);
        ResilientOptions crash;
        crash.retry.max_attempts = 1;
        crash.checkpoint_every = every;
        crash.store = &store;
        crash.limits.max_steps = every * (1 + rng.pick(3));
        const ResilientReport crashed = resilient_run(task, crash);
        tally(crashed, stats);
        // The killed run may legitimately finish early (the budget can
        // exceed the task), but a certificate it does hand out must be the
        // truth — a certified-wrong crash run is the worst possible answer.
        if (crashed.certified && crashed.value != baseline.value) {
          ++stats.wrong_answers;
          log << "campaign " << campaign
              << " WRONG ANSWER from interrupted run: " << task.describe()
              << " baseline value=" << baseline.value << "; crashed:\n"
              << crashed.to_string() << "\n";
          ok = false;
          break;
        }
        // ...and hand the surviving store to a fresh engine call.
        ResilientOptions resume;
        resume.retry.max_attempts = 2;
        resume.checkpoint_every = every;
        resume.store = &store;
        const ResilientReport resumed = resilient_run(task, resume);
        tally(resumed, stats);
        if (!resumed.certified || resumed.value != baseline.value ||
            !traces_equal(resumed.final_report.trace,
                          baseline.final_report.trace)) {
          ++stats.broken_contracts;
          log << "campaign " << campaign
              << " CRASH/RESUME DIVERGENCE: " << task.describe()
              << " baseline value=" << baseline.value
              << " trace=" << baseline.final_report.trace.size()
              << " events; resumed:\n"
              << resumed.to_string() << "\n";
          ok = false;
          break;
        }
        ++stats.certified;
        if (opt.verbose) {
          std::printf("campaign %zu %s %s: resumed identically (%zu events)\n",
                      campaign, shape_name, task.describe().c_str(),
                      resumed.final_report.trace.size());
        }
        log << "campaign " << campaign << " " << shape_name << " "
            << task.describe() << " ok\n";
        continue;
      }
    }
    if (!ok) break;

    const ResilientReport rep = resilient_run(task, ro);
    tally(rep, stats);
    ok = check_verdict(task, rep, opt, &store, campaign, log, stats);
    if (opt.verbose) {
      std::printf("campaign %zu %s %s: %s\n", campaign, shape_name,
                  task.describe().c_str(),
                  rep.certified ? "certified" : "terminal");
    }
    log << "campaign " << campaign << " " << shape_name << " "
        << task.describe() << " "
        << (rep.certified ? "certified" : "terminal") << " attempts="
        << rep.attempts.size() << " escalations=" << rep.escalations << "\n";
  }

  log << "summary certified=" << stats.certified
      << " terminal=" << stats.terminal << " attempts=" << stats.attempts
      << " escalations=" << stats.escalations << " resumes=" << stats.resumes
      << " checkpoint-rejections=" << stats.checkpoint_rejections
      << " wrong-answers=" << stats.wrong_answers
      << " broken-contracts=" << stats.broken_contracts << "\n";
  std::printf(
      "pfact_soak: %zu certified, %zu terminal, %zu attempts, "
      "%zu escalations, %zu resumes, %zu checkpoint rejections, "
      "%zu wrong answers, %zu broken contracts\n",
      stats.certified, stats.terminal, stats.attempts, stats.escalations,
      stats.resumes, stats.checkpoint_rejections, stats.wrong_answers,
      stats.broken_contracts);
  if (!ok || stats.wrong_answers != 0 || stats.broken_contracts != 0) {
    return fail_exit(opt);
  }
  std::printf("pfact_soak: all campaigns held the contract\n");
  return 0;
}
