// Development harness for the GEP (Theorem 3.4) functional blocks.
// Encodings: False = 1, True = 2 (magnitudes; GEP compares |entries|).
// In-contract: a value v arrives as a row (v at slot col, 1 at companion
// col), positioned below the slot's diagonal. The aux row carries 3/2 at the
// slot col so that the magnitude contest v vs 3/2 decides the pivot.
#include <cmath>
#include <cstdio>
#include <vector>

#include "factor/gaussian.h"
#include "matrix/matrix.h"

using pfact::Matrix;
using pfact::Permutation;
using pfact::factor::eliminate_steps;
using pfact::factor::PivotStrategy;

namespace {

// NAND candidate layout (7x7):
// cols: 0 = s0 (u), 1 = s1 (w), 2 = m1, 3 = m2, 4 = t, 5 = t' , 6 = spare
// rows: 0 filler diag s0, 1 filler diag s1, 2 = X1 (in u), 3 = Y1,
//       4 = X2 (in w), 5 = Y2, 6 = filler...
// Simpler: rows positioned so in/aux rows are below the slot diagonals.
// p = [a1 a2 a3 a4 b1 b2 b3 b4 d1 d2]
Matrix<double> nand_candidate(int u, int w, const std::vector<double>& p) {
  // Columns: 0=s0, 1=s1, 2=m1, 3=m2, 4=t, 5=t'; positions 6..8 spare.
  // Rows: 0,1 tiny diagonal fillers; 2=X1 (in u, companion at m1);
  //       3=Y1; 4=X2 (in w, companion at m2); 5=Y2;
  //       6=decoy for column m2 (absorbs the survivor's m2 entry);
  //       7,8 tiny fillers.
  Matrix<double> m(9, 9);
  for (int i = 0; i < 9; ++i) m(i, i) = 1e-3 * (i + 1);
  m(2, 2) = 0;
  m(6, 6) = 0;
  m(2, 0) = u;
  m(2, 2) = 1;  // X1 companion doubles as column-2 presence
  m(3, 0) = 1.5;
  m(3, 2) = p[0];
  m(3, 3) = p[1];
  m(3, 4) = p[2];
  m(3, 5) = p[3];
  m(4, 1) = w;
  m(4, 3) = 1;
  m(5, 1) = 1.5;
  m(5, 2) = p[4];
  m(5, 3) = p[5];
  m(5, 4) = p[6];
  m(5, 5) = p[7];
  m(6, 3) = 4.0;  // decoy: wins column m2; its payload entries are what the
  m(6, 4) = p[8];  // survivor's (informative) m2 entry mixes into t, t'
  m(6, 5) = p[9];
  return m;
}

// After eliminating columns 0..3, exactly one "active" row should remain
// with support {4, 5} = (enc(NAND), 1). Find it among rows at positions
// >= 4 and return its (t, t') entries.
bool decode(Matrix<double> m, double* t, double* tp) {
  eliminate_steps(m, PivotStrategy::kPartial, 4);
  int found = -1;
  for (std::size_t i = 4; i < 9; ++i) {
    if (std::fabs(m(i, 4)) > 0.2) {
      if (found >= 0) return false;  // two live rows: malformed
      found = static_cast<int>(i);
    }
  }
  if (found < 0) return false;
  *t = m(found, 4);
  *tp = m(found, 5);
  return true;
}

std::vector<double> residual(const std::vector<double>& p) {
  std::vector<double> r;
  for (int u : {2, 1}) {
    for (int w : {2, 1}) {
      double t = 0, tp = 0;
      if (!decode(nand_candidate(u, w, p), &t, &tp)) {
        r.push_back(50);
        r.push_back(50);
        continue;
      }
      double nand = (u == 2 && w == 2) ? 1.0 : 2.0;
      r.push_back(t - nand);  // signed target: chainable positive encoding
      r.push_back(tp - 1.0);
    }
  }
  return r;
}

double loss(const std::vector<double>& p) {
  double s = 0;
  for (double v : residual(p)) s += v * v;
  return s;
}

}  // namespace

int main() {
  for (unsigned seed = 0; seed < 200; ++seed) {
    std::vector<double> p(10);
    unsigned s = seed * 2654435761u + 777u;
    for (int i = 0; i < 10; ++i) {
      s = s * 1664525u + 1013904223u;
      p[i] = ((s >> 8) % 4000) / 1000.0 - 2.0;
    }
    bool ok = false;
    for (int iter = 0; iter < 300; ++iter) {
      auto r = residual(p);
      double l = 0;
      for (auto v : r) l += v * v;
      if (l < 1e-22) {
        ok = true;
        break;
      }
      if (l > 1e4) break;
      const int mq = static_cast<int>(r.size());
      const int nv = 10;
      std::vector<std::vector<double>> J(mq, std::vector<double>(nv));
      for (int j = 0; j < nv; ++j) {
        double h = 1e-7;
        auto pj = p;
        pj[j] += h;
        auto rj = residual(pj);
        for (int i = 0; i < mq; ++i) J[i][j] = (rj[i] - r[i]) / h;
      }
      std::vector<std::vector<double>> A(nv,
                                         std::vector<double>(nv + 1, 0));
      for (int i = 0; i < nv; ++i) {
        for (int j = 0; j < nv; ++j)
          for (int k = 0; k < mq; ++k) A[i][j] += J[k][i] * J[k][j];
        A[i][i] += 1e-8;
        for (int k = 0; k < mq; ++k) A[i][nv] -= J[k][i] * r[k];
      }
      bool sing = false;
      for (int c = 0; c < nv; ++c) {
        int piv = c;
        for (int i = c + 1; i < nv; ++i)
          if (std::fabs(A[i][c]) > std::fabs(A[piv][c])) piv = i;
        if (std::fabs(A[piv][c]) < 1e-14) {
          sing = true;
          break;
        }
        std::swap(A[piv], A[c]);
        for (int i = 0; i < nv; ++i) {
          if (i == c) continue;
          double f = A[i][c] / A[c][c];
          for (int j = c; j <= nv; ++j) A[i][j] -= f * A[c][j];
        }
      }
      if (sing) break;
      double step = 1.0;
      bool moved = false;
      for (int back = 0; back < 25; ++back) {
        auto pn = p;
        for (int j = 0; j < nv; ++j) pn[j] += step * A[j][nv] / A[j][j];
        if (loss(pn) < l) {
          p = pn;
          moved = true;
          break;
        }
        step /= 2;
      }
      if (!moved) break;
    }
    if (ok) {
      std::printf("seed=%u SOLVED loss=%.3g\n  p =", seed, loss(p));
      for (int i = 0; i < 10; ++i) std::printf(" %.17g", p[i]);
      std::printf("\n");
      for (int u : {2, 1}) {
        for (int w : {2, 1}) {
          double t = 0, tp = 0;
          decode(nand_candidate(u, w, p), &t, &tp);
          std::printf("  u=%d w=%d -> t=%.12g t'=%.12g (NAND enc %d)\n", u,
                      w, t, tp, (u == 2 && w == 2) ? 1 : 2);
        }
      }
      return 0;
    }
  }
  std::printf("no convergence\n");
  return 1;
}
