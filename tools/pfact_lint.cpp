// pfact_lint — domain-aware cross-file consistency checker.
//
// The repo's dynamic layers hang off a handful of closed taxonomies:
// obs::Counter / obs::Histogram (every enumerator needs a stable JSON name),
// robustness::FaultClass (every fault must be sweepable and printable),
// robustness::Diagnostic (every diagnostic must classify to exactly one
// FailureKind), and the checkpoint field tags + "PFCK" version constant
// (resume compatibility). Each taxonomy is DEFINED in one file and CONSUMED
// in another, so a forgotten enumerator compiles cleanly and only fails at
// runtime — if a test happens to reach it. This tool closes that gap at
// lint time with rules no generic linter can express.
//
// Rule catalogue (stable IDs; each finding prints exactly one):
//   PL001 counter-unnamed            Counter enumerator with no
//                                    counter_name() case returning a string
//   PL002 obs-name-collision         two Counter/Histogram enumerators map
//                                    to the same name, or a name is not
//                                    kebab-case
//   PL003 histogram-unnamed          Histogram enumerator with no
//                                    histogram_name() case
//   PL004 fault-class-unhandled      FaultClass enumerator missing from
//                                    fault_class_name() or (except kNone)
//                                    from the all_fault_classes() sweep list
//   PL005 diagnostic-unclassified    Diagnostic enumerator missing from
//                                    classify_diagnostic() or
//                                    diagnostic_name()
//   PL006 checkpoint-tag-duplicate   two field_tag<T>() specializations
//                                    return the same tag string
//   PL007 checkpoint-version-stale   the field-tag set changed but
//                                    kCheckpointVersion was not bumped
//                                    against the committed manifest
//   PL008 checkpoint-manifest-outdated  the committed manifest does not
//                                    match the current (version, tag set);
//                                    regenerate with --update-manifest
//   PL009 worker-exit-unmapped       WorkerExit enumerator with no
//                                    worker_exit_name() case, no
//                                    diagnose_worker_exit() mapping to a
//                                    Diagnostic, or missing from the
//                                    all_worker_exits() soak-coverage sweep
//   PL010 serve-rejection-unmapped   queue Admission or cache CacheProbe
//                                    enumerator with no name case, no
//                                    Diagnostic mapping, or missing from
//                                    its sweep list (all_admissions() /
//                                    all_cache_probes())
//   PL011 sparse-tag-unregistered    sparse_field_tag<T>() specialization
//                                    whose T has no dense field_tag<T>()
//                                    counterpart, whose tag is not
//                                    "sparse-" + the dense tag, or that is
//                                    missing from the all_sparse_field_tags()
//                                    sweep the codec corruption tests run over
//   PL012 frontend-status-unmapped   FrontendStatus enumerator with no
//                                    frontend_status_name() case, no
//                                    diagnose_frontend_status() Diagnostic
//                                    mapping, no frontend_status_counter()
//                                    obs counter, or missing from the
//                                    all_frontend_statuses() sweep the
//                                    rejection matrix and --net soak cover
//
// Usage:
//   pfact_lint --root <repo-root> [--manifest <file>] [--update-manifest]
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O failure.

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string rule;     // "PL001"
  std::string slug;     // "counter-unnamed"
  std::string message;  // what and where
};

// Blanks out // and /* */ comments (preserving newlines) so that a function
// or enum name mentioned in prose can never hijack a scraper's anchor. The
// checked files keep comment markers out of string literals (house style,
// pinned by the fixtures), so no string-awareness is needed.
std::string strip_comments(const std::string& src) {
  std::string out = src;
  std::size_t i = 0;
  while (i + 1 < out.size()) {
    if (out[i] == '/' && out[i + 1] == '/') {
      while (i < out.size() && out[i] != '\n') out[i++] = ' ';
    } else if (out[i] == '/' && out[i + 1] == '*') {
      out[i] = out[i + 1] = ' ';
      i += 2;
      while (i + 1 < out.size() && !(out[i] == '*' && out[i + 1] == '/')) {
        if (out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i + 1 < out.size()) {
        out[i] = out[i + 1] = ' ';
        i += 2;
      }
    } else {
      ++i;
    }
  }
  return out;
}

struct Lint {
  std::string root;
  std::vector<Finding> findings;
  bool io_error = false;

  void report(const std::string& rule, const std::string& slug,
              const std::string& message) {
    findings.push_back({rule, slug, message});
  }

  std::string read(const std::string& relpath) {
    std::ifstream in(root + "/" + relpath, std::ios::binary);
    if (!in) {
      std::cerr << "pfact_lint: cannot read " << root << "/" << relpath
                << "\n";
      io_error = true;
      return std::string();
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return strip_comments(ss.str());
  }
};

// --- tiny source scrapers ---------------------------------------------------
// These parse the repo's own house style (clang-format'd, one enumerator per
// line, switch cases of the form `case Enum::kX: ... return "...";`), not
// arbitrary C++. That trade is deliberate: the checked files are part of
// this repo, and the fixtures pin the accepted shapes.

// Enumerators of `enum class <name>`, in declaration order, excluding the
// kCount_ sentinel.
std::vector<std::string> parse_enum(const std::string& src,
                                    const std::string& name) {
  std::vector<std::string> out;
  const std::regex head("enum\\s+class\\s+" + name + "\\b[^{]*\\{");
  std::smatch m;
  if (!std::regex_search(src, m, head)) return out;
  const std::size_t begin = static_cast<std::size_t>(m.position()) + m.length();
  const std::size_t end = src.find("};", begin);
  if (end == std::string::npos) return out;
  const std::string body = src.substr(begin, end - begin);
  const std::regex enumerator("(?:^|[\\n,{])\\s*(k[A-Za-z0-9_]+)\\s*[,=}]");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), enumerator);
       it != std::sregex_iterator(); ++it) {
    const std::string id = (*it)[1].str();
    if (id != "kCount_") out.push_back(id);
  }
  return out;
}

// The brace-matched body of the function named `name`: the text between the
// '{' that opens its definition and the matching '}'. A definition site is
// an occurrence of `name` that is a whole token, is followed by '(', and
// reaches a '{' before any ';' (which would make it a declaration or a
// call) — so mentions in comments or call sites don't hijack the anchor.
// Empty when no such body is found. String/char literals in the checked
// files never contain braces, so plain counting is sufficient (the fixtures
// pin this).
std::string function_body(const std::string& src, const std::string& name) {
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  for (std::size_t at = src.find(name); at != std::string::npos;
       at = src.find(name, at + 1)) {
    if (at > 0 && is_ident(src[at - 1])) continue;
    std::size_t after = at + name.size();
    while (after < src.size() &&
           std::isspace(static_cast<unsigned char>(src[after]))) {
      ++after;
    }
    if (after >= src.size() || src[after] != '(') continue;
    const std::size_t open = src.find('{', after);
    const std::size_t semi = src.find(';', after);
    if (open == std::string::npos || (semi != std::string::npos && semi < open))
      continue;
    int depth = 0;
    for (std::size_t i = open; i < src.size(); ++i) {
      if (src[i] == '{') ++depth;
      if (src[i] == '}' && --depth == 0) {
        return src.substr(open, i - open + 1);
      }
    }
    return std::string();
  }
  return std::string();
}

// `case <enum>::<id>:` sites, each mapped to the token that decides it: the
// first `return <something>;` at or after the case label. Fall-through case
// labels share their group's return, which is exactly the classifier's
// shape. Returns enumerator -> returned expression text (trimmed).
std::map<std::string, std::string> parse_switch_returns(
    const std::string& src, const std::string& enum_name) {
  std::map<std::string, std::string> out;
  const std::regex label("case\\s+" + enum_name + "::(k[A-Za-z0-9_]+)\\s*:");
  const std::regex ret("return\\s+([^;]+);");
  for (auto it = std::sregex_iterator(src.begin(), src.end(), label);
       it != std::sregex_iterator(); ++it) {
    const std::string id = (*it)[1].str();
    const std::size_t from =
        static_cast<std::size_t>(it->position()) + it->length();
    // `break;` before the next return means the case deliberately returns
    // nothing (the sentinel's escape) — record it as empty.
    const std::size_t brk = src.find("break;", from);
    std::smatch r;
    const std::string rest = src.substr(from);
    if (std::regex_search(rest, r, ret)) {
      const std::size_t rpos = from + static_cast<std::size_t>(r.position());
      if (brk != std::string::npos && brk < rpos) {
        out[id] = "";
      } else {
        out[id] = r[1].str();
      }
    } else {
      out[id] = "";
    }
  }
  return out;
}

// The quoted string inside a returned expression, if it is one.
std::optional<std::string> quoted(const std::string& expr) {
  const std::regex q("^\\s*\"([^\"]*)\"\\s*$");
  std::smatch m;
  if (std::regex_match(expr, m, q)) return m[1].str();
  return std::nullopt;
}

bool is_kebab_case(const std::string& s) {
  if (s.empty() || s.front() == '-' || s.back() == '-') return false;
  for (char c : s) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '-')) {
      return false;
    }
  }
  return true;
}

// --- per-taxonomy rules -----------------------------------------------------

// PL001/PL002/PL003: every Counter/Histogram enumerator carries a unique
// kebab-case name string in the name-switch.
void check_obs_names(Lint& lint) {
  const std::string header = lint.read("src/obs/counters.h");
  const std::string impl = lint.read("src/obs/counters.cpp");
  if (header.empty() || impl.empty()) return;

  std::map<std::string, std::string> seen;  // name -> "Enum::kId"
  const struct {
    const char* enum_name;
    const char* fn_name;
    const char* rule;
    const char* slug;
  } taxa[] = {{"Counter", "counter_name", "PL001", "counter-unnamed"},
              {"Histogram", "histogram_name", "PL003", "histogram-unnamed"}};
  for (const auto& taxon : taxa) {
    const std::vector<std::string> ids = parse_enum(header, taxon.enum_name);
    if (ids.empty()) {
      lint.report(taxon.rule, taxon.slug,
                  std::string("enum class ") + taxon.enum_name +
                      " not found in src/obs/counters.h");
      continue;
    }
    const std::map<std::string, std::string> cases = parse_switch_returns(
        function_body(impl, taxon.fn_name), taxon.enum_name);
    for (const std::string& id : ids) {
      const auto it = cases.find(id);
      const std::optional<std::string> name =
          it == cases.end() ? std::nullopt : quoted(it->second);
      if (!name.has_value()) {
        lint.report(taxon.rule, taxon.slug,
                    std::string(taxon.enum_name) + "::" + id +
                        " has no name-string case in src/obs/counters.cpp");
        continue;
      }
      const std::string qualified =
          std::string(taxon.enum_name) + "::" + id;
      if (!is_kebab_case(*name)) {
        lint.report("PL002", "obs-name-collision",
                    qualified + " name \"" + *name + "\" is not kebab-case");
      }
      const auto [pos, inserted] = seen.emplace(*name, qualified);
      if (!inserted) {
        lint.report("PL002", "obs-name-collision",
                    qualified + " reuses name \"" + *name + "\" already "
                    "taken by " + pos->second);
      }
    }
  }
}

// PL004: the fault taxonomy is printable and sweepable.
void check_fault_classes(Lint& lint) {
  const std::string src = lint.read("src/robustness/fault_injector.h");
  if (src.empty()) return;
  const std::vector<std::string> ids = parse_enum(src, "FaultClass");
  if (ids.empty()) {
    lint.report("PL004", "fault-class-unhandled",
                "enum class FaultClass not found in "
                "src/robustness/fault_injector.h");
    return;
  }
  const std::map<std::string, std::string> names = parse_switch_returns(
      function_body(src, "fault_class_name"), "FaultClass");

  // The all_fault_classes() sweep list: every FaultClass:: mention inside
  // the function body (the static vector's brace-initializer).
  std::set<std::string> swept;
  const std::string sweep_body = function_body(src, "all_fault_classes");
  const std::regex mention("FaultClass::(k[A-Za-z0-9_]+)");
  for (auto it =
           std::sregex_iterator(sweep_body.begin(), sweep_body.end(), mention);
       it != std::sregex_iterator(); ++it) {
    swept.insert((*it)[1].str());
  }
  for (const std::string& id : ids) {
    const auto it = names.find(id);
    if (it == names.end() || !quoted(it->second).has_value()) {
      lint.report("PL004", "fault-class-unhandled",
                  "FaultClass::" + id +
                      " has no name case in fault_class_name()");
    }
    if (id != "kNone" && swept.count(id) == 0) {
      lint.report("PL004", "fault-class-unhandled",
                  "FaultClass::" + id +
                      " is missing from the all_fault_classes() sweep list — "
                      "the robustness suite would never inject it");
    }
  }
}

// PL005: every Diagnostic both prints and classifies.
void check_diagnostics(Lint& lint) {
  const std::string header = lint.read("src/robustness/diagnostics.h");
  const std::string classifier = lint.read("src/robustness/retry.cpp");
  if (header.empty() || classifier.empty()) return;
  const std::vector<std::string> ids = parse_enum(header, "Diagnostic");
  if (ids.empty()) {
    lint.report("PL005", "diagnostic-unclassified",
                "enum class Diagnostic not found in "
                "src/robustness/diagnostics.h");
    return;
  }
  const std::map<std::string, std::string> names = parse_switch_returns(
      function_body(header, "diagnostic_name"), "Diagnostic");
  const std::map<std::string, std::string> kinds = parse_switch_returns(
      function_body(classifier, "classify_diagnostic"), "Diagnostic");
  for (const std::string& id : ids) {
    const auto n = names.find(id);
    if (n == names.end() || !quoted(n->second).has_value()) {
      lint.report("PL005", "diagnostic-unclassified",
                  "Diagnostic::" + id +
                      " has no name case in diagnostic_name()");
    }
    const auto k = kinds.find(id);
    if (k == kinds.end() || k->second.find("FailureKind::") ==
                                std::string::npos) {
      lint.report("PL005", "diagnostic-unclassified",
                  "Diagnostic::" + id +
                      " is not mapped to a FailureKind in "
                      "classify_diagnostic() (src/robustness/retry.cpp)");
    }
  }
}

// PL009: the worker-death taxonomy is printable, diagnosable, and swept.
// WorkerExit is DEFINED in src/serve/worker_pool.h (with its name switch and
// the all_worker_exits() sweep the soak harness certifies coverage against)
// but DIAGNOSED in src/serve/supervisor.h — the classic cross-file gap this
// tool exists for: a new death class compiles everywhere and silently falls
// through to the kInternalError backstop at the first real crash.
void check_worker_exits(Lint& lint) {
  const std::string pool = lint.read("src/serve/worker_pool.h");
  const std::string sup = lint.read("src/serve/supervisor.h");
  if (pool.empty() || sup.empty()) return;
  const std::vector<std::string> ids = parse_enum(pool, "WorkerExit");
  if (ids.empty()) {
    lint.report("PL009", "worker-exit-unmapped",
                "enum class WorkerExit not found in src/serve/worker_pool.h");
    return;
  }
  const std::map<std::string, std::string> names = parse_switch_returns(
      function_body(pool, "worker_exit_name"), "WorkerExit");
  const std::map<std::string, std::string> diags = parse_switch_returns(
      function_body(sup, "diagnose_worker_exit"), "WorkerExit");

  std::set<std::string> swept;
  const std::string sweep_body = function_body(pool, "all_worker_exits");
  const std::regex mention("WorkerExit::(k[A-Za-z0-9_]+)");
  for (auto it =
           std::sregex_iterator(sweep_body.begin(), sweep_body.end(), mention);
       it != std::sregex_iterator(); ++it) {
    swept.insert((*it)[1].str());
  }
  for (const std::string& id : ids) {
    const auto n = names.find(id);
    if (n == names.end() || !quoted(n->second).has_value()) {
      lint.report("PL009", "worker-exit-unmapped",
                  "WorkerExit::" + id +
                      " has no name case in worker_exit_name()");
    }
    const auto d = diags.find(id);
    if (d == diags.end() ||
        d->second.find("Diagnostic::") == std::string::npos) {
      lint.report("PL009", "worker-exit-unmapped",
                  "WorkerExit::" + id +
                      " is not mapped to a Diagnostic in "
                      "diagnose_worker_exit() (src/serve/supervisor.h) — a "
                      "worker dying this way would hit the kInternalError "
                      "backstop instead of the retry taxonomy");
    }
    if (swept.count(id) == 0) {
      lint.report("PL009", "worker-exit-unmapped",
                  "WorkerExit::" + id +
                      " is missing from the all_worker_exits() sweep list — "
                      "the real-kill soak could never certify coverage of it");
    }
  }
}

// PL010: the serving layer's rejection taxonomies — queue Admission and
// cache CacheProbe — are printable, diagnosable, and swept. Each lives in a
// single header, but the silent-fallthrough failure PL009 guards against
// applies just the same: a new shed or probe class compiles cleanly, prints
// as "?", and falls through to the kInternalError backstop the first time
// real overload (or a corrupt cache entry) reaches it. The sweep lists are
// what the service tests and the --serve soak certify coverage against.
void check_serve_rejections(Lint& lint) {
  struct Taxonomy {
    const char* file;
    const char* enum_name;
    const char* name_fn;
    const char* sweep_fn;
    const char* diag_fn;
  };
  static const Taxonomy kTaxonomies[] = {
      {"src/serve/queue.h", "Admission", "admission_name", "all_admissions",
       "diagnose_admission"},
      {"src/serve/result_cache.h", "CacheProbe", "cache_probe_name",
       "all_cache_probes", "diagnose_cache_probe"},
  };
  for (const Taxonomy& t : kTaxonomies) {
    const std::string text = lint.read(t.file);
    if (text.empty()) continue;
    const std::vector<std::string> ids = parse_enum(text, t.enum_name);
    if (ids.empty()) {
      lint.report("PL010", "serve-rejection-unmapped",
                  std::string("enum class ") + t.enum_name + " not found in " +
                      t.file);
      continue;
    }
    const std::map<std::string, std::string> names =
        parse_switch_returns(function_body(text, t.name_fn), t.enum_name);
    const std::map<std::string, std::string> diags =
        parse_switch_returns(function_body(text, t.diag_fn), t.enum_name);

    std::set<std::string> swept;
    const std::string sweep_body = function_body(text, t.sweep_fn);
    const std::regex mention(std::string(t.enum_name) + "::(k[A-Za-z0-9_]+)");
    for (auto it = std::sregex_iterator(sweep_body.begin(), sweep_body.end(),
                                        mention);
         it != std::sregex_iterator(); ++it) {
      swept.insert((*it)[1].str());
    }
    for (const std::string& id : ids) {
      const std::string qualified = std::string(t.enum_name) + "::" + id;
      const auto n = names.find(id);
      if (n == names.end() || !quoted(n->second).has_value()) {
        lint.report("PL010", "serve-rejection-unmapped",
                    qualified + " has no name case in " + t.name_fn + "()");
      }
      const auto d = diags.find(id);
      if (d == diags.end() ||
          d->second.find("Diagnostic::") == std::string::npos) {
        lint.report("PL010", "serve-rejection-unmapped",
                    qualified + " is not mapped to a Diagnostic in " +
                        t.diag_fn + "() (" + t.file +
                        ") — this rejection would reach clients as the "
                        "kInternalError backstop instead of a classified, "
                        "retryable shed");
      }
      if (swept.count(id) == 0) {
        lint.report("PL010", "serve-rejection-unmapped",
                    qualified + " is missing from the " + t.sweep_fn +
                        "() sweep list — the service tests and --serve soak "
                        "could never certify coverage of it");
      }
    }
  }
}

// PL012: the socket front end's conversation taxonomy is total FOUR ways —
// named (log lines), counted (obs counters), diagnosed (the client's retry
// table), and swept (the rejection-matrix test and the --net soak's
// full-coverage contract iterate all_frontend_statuses()). A FrontendStatus
// added without all four legs compiles cleanly and only shows up as an
// unexplained client hang-up under real network weather.
void check_frontend_statuses(Lint& lint) {
  const char* file = "src/serve/frontend.h";
  const std::string text = lint.read(file);
  if (text.empty()) return;
  const std::vector<std::string> ids = parse_enum(text, "FrontendStatus");
  if (ids.empty()) {
    lint.report("PL012", "frontend-status-unmapped",
                std::string("enum class FrontendStatus not found in ") + file);
    return;
  }
  const std::map<std::string, std::string> names = parse_switch_returns(
      function_body(text, "frontend_status_name"), "FrontendStatus");
  const std::map<std::string, std::string> diags = parse_switch_returns(
      function_body(text, "diagnose_frontend_status"), "FrontendStatus");
  const std::map<std::string, std::string> counters = parse_switch_returns(
      function_body(text, "frontend_status_counter"), "FrontendStatus");

  std::set<std::string> swept;
  const std::string sweep_body =
      function_body(text, "all_frontend_statuses");
  const std::regex mention("FrontendStatus::(k[A-Za-z0-9_]+)");
  for (auto it =
           std::sregex_iterator(sweep_body.begin(), sweep_body.end(), mention);
       it != std::sregex_iterator(); ++it) {
    swept.insert((*it)[1].str());
  }
  for (const std::string& id : ids) {
    const std::string qualified = "FrontendStatus::" + id;
    const auto n = names.find(id);
    if (n == names.end() || !quoted(n->second).has_value() ||
        !is_kebab_case(*quoted(n->second))) {
      lint.report("PL012", "frontend-status-unmapped",
                  qualified +
                      " has no kebab-case name case in "
                      "frontend_status_name()");
    }
    const auto d = diags.find(id);
    if (d == diags.end() ||
        d->second.find("Diagnostic::") == std::string::npos) {
      lint.report("PL012", "frontend-status-unmapped",
                  qualified + " is not mapped to a Diagnostic in "
                              "diagnose_frontend_status() — the client "
                              "library could not decide retry vs fail-fast "
                              "for it");
    }
    const auto c = counters.find(id);
    if (c == counters.end() ||
        c->second.find("Counter::") == std::string::npos) {
      lint.report("PL012", "frontend-status-unmapped",
                  qualified + " has no obs counter in "
                              "frontend_status_counter() — conversations "
                              "ending this way would be invisible to "
                              "monitoring");
    }
    if (swept.count(id) == 0) {
      lint.report("PL012", "frontend-status-unmapped",
                  qualified + " is missing from the all_frontend_statuses() "
                              "sweep list — the rejection-matrix test and "
                              "the --net soak could never certify coverage "
                              "of it");
    }
  }
}

// --- checkpoint schema: tags, version, manifest -----------------------------

struct CheckpointSchema {
  std::vector<std::string> tags;  // sorted, as parsed
  std::optional<long> version;
};

CheckpointSchema parse_checkpoint_schema(Lint& lint) {
  CheckpointSchema schema;
  const std::string src = lint.read("src/robustness/checkpoint.h");
  if (src.empty()) return schema;
  const std::regex tag(
      "field_tag<[^>]+>\\(\\)\\s*\\{\\s*return\\s*\"([^\"]+)\"");
  for (auto it = std::sregex_iterator(src.begin(), src.end(), tag);
       it != std::sregex_iterator(); ++it) {
    schema.tags.push_back((*it)[1].str());
  }
  const std::regex ver("kCheckpointVersion\\s*=\\s*([0-9]+)");
  std::smatch m;
  if (std::regex_search(src, m, ver)) schema.version = std::stol(m[1].str());
  return schema;
}

// PL006: duplicate tags (checked before sorting loses multiplicity).
void check_tag_uniqueness(Lint& lint, const CheckpointSchema& schema) {
  std::set<std::string> seen;
  for (const std::string& t : schema.tags) {
    if (!seen.insert(t).second) {
      lint.report("PL006", "checkpoint-tag-duplicate",
                  "field_tag \"" + t +
                      "\" is returned by more than one specialization in "
                      "src/robustness/checkpoint.h — resume could validate "
                      "a blob from the wrong field");
    }
  }
}

// PL011: the sparse tag namespace is derived, not free-form. Every
// sparse_field_tag<T>() specialization must (a) shadow an existing dense
// field_tag<T>() for the SAME scalar T — a sparse codec for a field the
// dense world cannot decode would strand blobs on backend escalation,
// (b) spell its tag as "sparse-" + the dense tag, so tag pairs stay
// mechanically relatable across the manifest ratchet, and (c) appear in the
// all_sparse_field_tags() sweep list, which the checkpoint corruption tests
// (tests/robustness/test_checkpoint_sparse.cpp) iterate — an unswept tag is
// a codec no rejection matrix ever exercises.
void check_sparse_tags(Lint& lint) {
  const std::string src = lint.read("src/robustness/checkpoint.h");
  if (src.empty()) return;

  const auto normalize = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (!std::isspace(static_cast<unsigned char>(c))) out += c;
    }
    return out;
  };

  // Group 1 distinguishes the namespaces: "sparse_" for the sparse
  // specializations, empty for the dense ones (any other identifier prefix
  // would be a third tag family this rule does not govern).
  const std::regex spec(
      "(\\w*)field_tag<([^>]+)>\\(\\)\\s*\\{\\s*return\\s*\"([^\"]+)\"");
  std::map<std::string, std::string> dense_tags;   // scalar arg -> tag
  std::map<std::string, std::string> sparse_tags;  // scalar arg -> tag
  for (auto it = std::sregex_iterator(src.begin(), src.end(), spec);
       it != std::sregex_iterator(); ++it) {
    const std::string prefix = (*it)[1].str();
    const std::string arg = normalize((*it)[2].str());
    const std::string tag = (*it)[3].str();
    if (prefix == "sparse_") {
      sparse_tags[arg] = tag;
    } else if (prefix.empty()) {
      dense_tags[arg] = tag;
    }
  }

  std::set<std::string> swept;  // scalar args mentioned in the sweep list
  const std::string sweep_body = function_body(src, "all_sparse_field_tags");
  const std::regex mention("sparse_field_tag<([^>]+)>");
  for (auto it =
           std::sregex_iterator(sweep_body.begin(), sweep_body.end(), mention);
       it != std::sregex_iterator(); ++it) {
    swept.insert(normalize((*it)[1].str()));
  }

  for (const auto& [arg, tag] : sparse_tags) {
    const std::string spelled = "sparse_field_tag<" + arg + ">";
    const auto dense = dense_tags.find(arg);
    if (dense == dense_tags.end()) {
      lint.report("PL011", "sparse-tag-unregistered",
                  spelled + " (\"" + tag +
                      "\") has no dense field_tag<" + arg +
                      "> counterpart in src/robustness/checkpoint.h — a "
                      "sparse blob of this field could never be cross-checked "
                      "or resumed densely");
    } else if (tag != "sparse-" + dense->second) {
      lint.report("PL011", "sparse-tag-unregistered",
                  spelled + " returns \"" + tag + "\" but the naming law "
                      "requires \"sparse-" + dense->second +
                      "\" (the dense tag with the sparse- prefix)");
    }
    if (swept.count(arg) == 0) {
      lint.report("PL011", "sparse-tag-unregistered",
                  spelled +
                      " is missing from the all_sparse_field_tags() sweep "
                      "list — the checkpoint corruption matrix would never "
                      "exercise its codec");
    }
  }
}

struct Manifest {
  std::optional<long> version;
  std::vector<std::string> tags;  // sorted
  bool present = false;
};

Manifest read_manifest(const std::string& path) {
  Manifest m;
  std::ifstream in(path);
  if (!in) return m;
  m.present = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key, value;
    ls >> key >> value;
    if (key == "version") m.version = std::stol(value);
    if (key == "tag") m.tags.push_back(value);
  }
  std::sort(m.tags.begin(), m.tags.end());
  return m;
}

bool write_manifest(const std::string& path, const CheckpointSchema& s) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# pfact_lint checkpoint manifest — the committed record of the\n"
         "# \"PFCK\" blob schema. Regenerate ONLY together with a\n"
         "# kCheckpointVersion bump:  pfact_lint --root . --update-manifest\n";
  out << "version " << (s.version ? *s.version : 0) << "\n";
  std::vector<std::string> tags = s.tags;
  std::sort(tags.begin(), tags.end());
  for (const std::string& t : tags) out << "tag " << t << "\n";
  return static_cast<bool>(out);
}

// PL007/PL008: the tag set may only change together with a version bump,
// and the manifest must record the current state.
void check_manifest(Lint& lint, const CheckpointSchema& schema,
                    const std::string& manifest_path) {
  const Manifest m = read_manifest(manifest_path);
  if (!m.present || !m.version.has_value()) {
    lint.report("PL008", "checkpoint-manifest-outdated",
                "manifest " + manifest_path +
                    " is missing or unparsable — regenerate with "
                    "--update-manifest");
    return;
  }
  std::vector<std::string> tags = schema.tags;
  std::sort(tags.begin(), tags.end());
  const bool tags_changed = tags != m.tags;
  const bool version_changed = schema.version != m.version;
  if (tags_changed && !version_changed) {
    std::string delta;
    for (const std::string& t : tags) {
      if (!std::binary_search(m.tags.begin(), m.tags.end(), t)) {
        delta += " +" + t;
      }
    }
    for (const std::string& t : m.tags) {
      if (!std::binary_search(tags.begin(), tags.end(), t)) delta += " -" + t;
    }
    lint.report("PL007", "checkpoint-version-stale",
                "the checkpoint field-tag set changed (" +
                    (delta.empty() ? std::string(" reordered") : delta) +
                    " ) but kCheckpointVersion is still " +
                    std::to_string(m.version.value()) +
                    " — old blobs would decode under the new schema; bump "
                    "the version, then --update-manifest");
  } else if (tags_changed || version_changed) {
    lint.report("PL008", "checkpoint-manifest-outdated",
                "manifest records version " +
                    std::to_string(m.version.value()) + " with " +
                    std::to_string(m.tags.size()) +
                    " tag(s), but src/robustness/checkpoint.h now has "
                    "version " +
                    (schema.version ? std::to_string(*schema.version)
                                    : std::string("?")) +
                    " with " + std::to_string(schema.tags.size()) +
                    " tag(s) — regenerate with --update-manifest");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string manifest_path;
  bool update_manifest = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (arg == "--update-manifest") {
      update_manifest = true;
    } else {
      std::cerr << "usage: pfact_lint --root <repo-root> "
                   "[--manifest <file>] [--update-manifest]\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "pfact_lint: --root is required\n";
    return 2;
  }
  if (manifest_path.empty()) {
    manifest_path = root + "/tools/pfact_lint_manifest.txt";
  }

  Lint lint;
  lint.root = root;

  const CheckpointSchema schema = parse_checkpoint_schema(lint);
  if (update_manifest) {
    if (schema.tags.empty() || !schema.version.has_value()) {
      std::cerr << "pfact_lint: cannot regenerate manifest — no checkpoint "
                   "schema parsed from src/robustness/checkpoint.h\n";
      return 2;
    }
    if (!write_manifest(manifest_path, schema)) {
      std::cerr << "pfact_lint: cannot write " << manifest_path << "\n";
      return 2;
    }
    std::cout << "pfact_lint: wrote " << manifest_path << "\n";
    return 0;
  }

  check_obs_names(lint);
  check_fault_classes(lint);
  check_diagnostics(lint);
  check_worker_exits(lint);
  check_serve_rejections(lint);
  check_frontend_statuses(lint);
  check_tag_uniqueness(lint, schema);
  check_sparse_tags(lint);
  check_manifest(lint, schema, manifest_path);

  if (lint.io_error) return 2;
  for (const Finding& f : lint.findings) {
    std::cout << "pfact_lint: " << f.rule << " " << f.slug << ": "
              << f.message << "\n";
  }
  if (lint.findings.empty()) {
    std::cout << "pfact_lint: clean (" << root << ")\n";
    return 0;
  }
  std::cout << "pfact_lint: " << lint.findings.size() << " finding(s)\n";
  return 1;
}
