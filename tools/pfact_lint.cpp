// pfact_lint — structural consistency linter for the pfact tree.
//
// This is the thin CLI driver; the engine lives in tools/lint/ (tokenizer,
// source tree, one rules_*.cpp module per rule family). It deliberately
// does NOT link against pfact: it reads the tree as text, so it keeps
// working even when the tree under inspection does not compile — which is
// exactly when a structural linter earns its keep.
//
//   pfact_lint --root <repo-root> [--manifest <file>] [--json]
//   pfact_lint --root <repo-root> --update-manifest
//   pfact_lint --list-rules
//
// Exit codes (aligned with pfact_soak): 0 clean, 1 findings, 2 usage or
// I/O error. Text findings print one per line:
//
//   pfact_lint: PL004 fault-class-unhandled: <message>            (tree-wide)
//   pfact_lint: src/a/b.cpp:17: PL014 blocking-call-undeadlined: <message>
//
// The located form matches the GitHub problem matcher committed under
// .github/, so findings annotate PR diffs in place. --json emits the same
// findings as a machine-readable document on stdout (CI uploads it as an
// artifact).

#include <iostream>
#include <string>

#include "lint/engine.h"

namespace {

int usage() {
  std::cerr << "usage: pfact_lint --root <repo-root> [--manifest <file>] "
               "[--json] [--update-manifest] | --list-rules\n";
  return 2;
}

void print_text(const pfact_lint::Context& ctx, const std::string& root) {
  for (const pfact_lint::Finding& f : ctx.findings) {
    std::cout << "pfact_lint: ";
    if (!f.file.empty()) std::cout << f.file << ":" << f.line << ": ";
    std::cout << f.rule << " " << f.slug << ": " << f.message << "\n";
  }
  if (ctx.findings.empty()) {
    std::cout << "pfact_lint: clean (" << root << ")\n";
  } else {
    std::cout << "pfact_lint: " << ctx.findings.size() << " finding(s)\n";
  }
}

void print_json(const pfact_lint::Context& ctx, const std::string& root) {
  using pfact_lint::json_escape;
  std::cout << "{\n  \"root\": \"" << json_escape(root) << "\",\n"
            << "  \"count\": " << ctx.findings.size() << ",\n"
            << "  \"findings\": [";
  bool first = true;
  for (const pfact_lint::Finding& f : ctx.findings) {
    std::cout << (first ? "\n" : ",\n");
    first = false;
    std::cout << "    {\"rule\": \"" << json_escape(f.rule)
              << "\", \"slug\": \"" << json_escape(f.slug)
              << "\", \"file\": \"" << json_escape(f.file)
              << "\", \"line\": " << f.line << ", \"message\": \""
              << json_escape(f.message) << "\"}";
  }
  std::cout << (ctx.findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string manifest_path;
  bool update_manifest = false;
  bool json = false;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (arg == "--update-manifest") {
      update_manifest = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else {
      return usage();
    }
  }

  if (list_rules) {
    for (const pfact_lint::RuleInfo& r : pfact_lint::rule_catalogue()) {
      std::cout << r.id << " " << r.slug << "  " << r.summary << "\n";
    }
    return 0;
  }
  if (root.empty()) {
    std::cerr << "pfact_lint: --root is required\n";
    return 2;
  }
  if (manifest_path.empty()) {
    manifest_path = root + "/tools/pfact_lint_manifest.txt";
  }

  const pfact_lint::SourceTree tree = pfact_lint::SourceTree::load(root);
  pfact_lint::Context ctx(tree);

  if (update_manifest) {
    const pfact_lint::CheckpointSchema schema =
        pfact_lint::parse_checkpoint_schema(ctx);
    if (schema.tags.empty() || !schema.version.has_value()) {
      std::cerr << "pfact_lint: cannot regenerate manifest — no checkpoint "
                   "schema parsed from src/robustness/checkpoint.h\n";
      return 2;
    }
    if (!pfact_lint::write_manifest(manifest_path, schema)) {
      std::cerr << "pfact_lint: cannot write " << manifest_path << "\n";
      return 2;
    }
    std::cout << "pfact_lint: wrote " << manifest_path << "\n";
    return 0;
  }

  pfact_lint::run_all_rules(ctx, manifest_path);
  if (tree.io_error || ctx.io_error) return 2;

  if (json) {
    print_json(ctx, root);
  } else {
    print_text(ctx, root);
  }
  return ctx.findings.empty() ? 0 : 1;
}
