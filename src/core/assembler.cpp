#include "core/assembler.h"

#include <deque>
#include <stdexcept>

namespace pfact::core {

namespace {

std::size_t aux_rows(BlockType t) {
  switch (t) {
    case BlockType::kInput: return 0;
    case BlockType::kPass: return kPassAuxRows;
    case BlockType::kDup: return kDupAuxRows;
    case BlockType::kNand: return kNandAuxRows;
  }
  return 0;
}

}  // namespace

AssemblyPlan plan_assembly(const circuit::Circuit& c) {
  AssemblyPlan plan;
  const std::size_t n_in = c.num_inputs();
  // uses[v] counts gate-input wires plus the external output wire.
  std::vector<std::size_t> uses = c.fanouts();
  uses[c.num_nodes() - 1] += 1;
  for (std::size_t v = 0; v < c.num_nodes(); ++v) {
    if (uses[v] > 2) {
      throw std::invalid_argument(
          "plan_assembly: node exceeds fanout 2 (normalize first)");
    }
  }

  std::size_t next_slot = 0;
  // Available value copies per node, and the set of live slots in layer
  // order (the PASS blocks must preserve a deterministic tape order).
  std::vector<std::deque<std::size_t>> avail(c.num_nodes());
  std::vector<std::pair<std::size_t, std::size_t>> live;  // (slot, node)

  auto make_slot = [&](std::size_t node) {
    std::size_t s = next_slot++;
    avail[node].push_back(s);
    live.emplace_back(s, node);
    return s;
  };

  // Layer 0: one INPUT block per circuit input.
  for (std::size_t i = 0; i < n_in; ++i) {
    BlockInstance b;
    b.type = BlockType::kInput;
    b.layer = 0;
    b.out_slots.push_back(make_slot(i));
    plan.blocks.push_back(std::move(b));
  }
  std::size_t layer = 1;

  auto retire_if_dead = [&](std::size_t node) {
    // Drops a freshly produced slot if nobody will ever consume it.
    if (uses[node] == 0) {
      std::size_t s = avail[node].back();
      avail[node].pop_back();
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].first == s) {
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      plan.dead_slots.push_back(s);
    }
  };
  for (std::size_t i = 0; i < n_in; ++i) retire_if_dead(i);

  // Emits one layer whose first block is `active` (consuming the slots in
  // active.in_slots); every other live slot is carried by a PASS block.
  auto emit_layer = [&](BlockInstance active) {
    active.layer = layer;
    std::vector<std::pair<std::size_t, std::size_t>> new_live;
    std::vector<BlockInstance> layer_blocks;
    layer_blocks.push_back(std::move(active));
    for (auto& [slot, node] : live) {
      bool consumed = false;
      for (std::size_t s : layer_blocks[0].in_slots) {
        if (s == slot) consumed = true;
      }
      if (consumed) continue;
      BlockInstance pass;
      pass.type = BlockType::kPass;
      pass.layer = layer;
      pass.in_slots.push_back(slot);
      std::size_t ns = next_slot++;
      pass.out_slots.push_back(ns);
      // Replace the node's old slot id with the passed-forward one.
      for (auto& q : avail[node]) {
        if (q == slot) q = ns;
      }
      new_live.emplace_back(ns, node);
      layer_blocks.push_back(std::move(pass));
    }
    live = std::move(new_live);
    for (auto& b : layer_blocks) plan.blocks.push_back(std::move(b));
    ++layer;
  };

  auto ensure_two_copies = [&](std::size_t node) {
    // A node consumed twice gets a DUP layer splitting its single slot.
    if (uses[node] < 2 || avail[node].size() >= 2) return;
    if (avail[node].empty())
      throw std::logic_error("plan_assembly: no copy available to duplicate");
    BlockInstance dup;
    dup.type = BlockType::kDup;
    std::size_t s = avail[node].front();
    avail[node].pop_front();
    // Remove from live before emit so no PASS duplicates it.
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i].first == s) {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    dup.in_slots.push_back(s);
    std::size_t o0 = next_slot++;
    std::size_t o1 = next_slot++;
    dup.out_slots = {o0, o1};
    avail[node].push_back(o0);
    avail[node].push_back(o1);
    emit_layer(std::move(dup));
    // emit_layer rebuilt `live` from the surviving slots; add the new ones.
    live.emplace_back(o0, node);
    live.emplace_back(o1, node);
  };

  for (std::size_t g = 0; g < c.num_gates(); ++g) {
    std::size_t u0 = c.gate(g).in0;
    std::size_t u1 = c.gate(g).in1;
    ensure_two_copies(u0);
    ensure_two_copies(u1);
    BlockInstance nand;
    nand.type = BlockType::kNand;
    std::size_t s0 = avail[u0].front();
    avail[u0].pop_front();
    --uses[u0];
    std::size_t s1 = avail[u1].front();
    avail[u1].pop_front();
    --uses[u1];
    for (std::size_t in : {s0, s1}) {
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].first == in) {
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    nand.in_slots = {s0, s1};
    std::size_t node = c.gate_node(g);
    std::size_t out = next_slot++;
    nand.out_slots.push_back(out);
    avail[node].push_back(out);
    emit_layer(std::move(nand));
    live.emplace_back(out, node);
    retire_if_dead(node);
  }

  // The external use of the output node: exactly one live slot must remain.
  std::size_t out_node = c.num_nodes() - 1;
  if (avail[out_node].empty())
    throw std::logic_error("plan_assembly: output slot missing");
  plan.output_slot = avail[out_node].front();
  // Everything still live except the output is unreachable garbage.
  for (auto& [slot, node] : live) {
    if (slot != plan.output_slot) plan.dead_slots.push_back(slot);
  }
  plan.num_layers = layer;
  plan.num_slots = next_slot;
  return plan;
}

namespace {

// Normalizes fanout, counting the output node's external use.
circuit::CvpInstance normalize_fanout(const circuit::CvpInstance& inst) {
  auto uses = inst.circuit.fanouts();
  uses[inst.circuit.num_nodes() - 1] += 1;
  for (std::size_t u : uses) {
    if (u > 2) return circuit::with_fanout_two(inst);
  }
  return inst;
}

struct Positions {
  std::vector<std::size_t> slot_pos;
  std::vector<std::vector<std::size_t>> aux_pos;  // per block
  std::size_t nu = 0;                             // order of A_C
};

// Position assignment, walking blocks in layer order: each block's in-slot
// rows come first (this is where the previous layer's carriers land), then
// its aux rows. Dead slots and finally the output slot take the trailing
// positions, so the circuit output ends at A_C(nu, nu) as in the paper's
// Section 2.
Positions assign_positions(const AssemblyPlan& plan) {
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  Positions pos;
  pos.slot_pos.assign(plan.num_slots, kUnset);
  pos.aux_pos.resize(plan.blocks.size());
  std::size_t next = 0;
  for (std::size_t b = 0; b < plan.blocks.size(); ++b) {
    const BlockInstance& blk = plan.blocks[b];
    for (std::size_t s : blk.in_slots) {
      pos.slot_pos[s] = next++;
    }
    for (std::size_t i = 0; i < aux_rows(blk.type); ++i) {
      pos.aux_pos[b].push_back(next++);
    }
  }
  for (std::size_t s : plan.dead_slots) {
    if (pos.slot_pos[s] == kUnset) pos.slot_pos[s] = next++;
  }
  pos.slot_pos[plan.output_slot] = next++;
  pos.nu = next;
  return pos;
}

// Entry planting behind a sink: emit(row, col, value) is called once per
// gadget entry, in plan order, with duplicates at shared positions left for
// the sink to accumulate. The dense builder sums them in place; the sparse
// builder's TripletBuilder coalesces in the same (emission) order, so the
// two matrices agree bit for bit.
template <class Emit>
void plant_entries(const AssemblyPlan& plan, const circuit::CvpInstance& norm,
                   const Positions& pos, Emit&& emit) {
  auto plant = [&](std::size_t b, const GadgetEntry* entries,
                   std::size_t count, const std::vector<std::size_t>& local) {
    (void)b;
    for (std::size_t i = 0; i < count; ++i) {
      const GadgetEntry& e = entries[i];
      emit(local[e.row], local[e.col], e.value);
    }
  };
  for (std::size_t b = 0; b < plan.blocks.size(); ++b) {
    const BlockInstance& blk = plan.blocks[b];
    switch (blk.type) {
      case BlockType::kInput: {
        std::size_t p = pos.slot_pos[blk.out_slots[0]];
        // Layer-0 blocks are in input order, so index b == input b. A fresh
        // position, so emitting (possibly a zero the sink may drop) equals
        // the historical direct assignment.
        emit(p, p, norm.inputs[b] ? 1.0 : 0.0);
        break;
      }
      case BlockType::kPass: {
        std::vector<std::size_t> local = {
            pos.slot_pos[blk.in_slots[0]], pos.aux_pos[b][0],
            pos.aux_pos[b][1], pos.slot_pos[blk.out_slots[0]]};
        plant(b, kPassEntries, std::size(kPassEntries), local);
        break;
      }
      case BlockType::kDup: {
        std::vector<std::size_t> local = {
            pos.slot_pos[blk.in_slots[0]], pos.aux_pos[b][0],
            pos.aux_pos[b][1],             pos.aux_pos[b][2],
            pos.aux_pos[b][3],
            pos.slot_pos[blk.out_slots[0]],
            pos.slot_pos[blk.out_slots[1]]};
        plant(b, kDupEntries, std::size(kDupEntries), local);
        break;
      }
      case BlockType::kNand: {
        std::vector<std::size_t> local = {
            pos.slot_pos[blk.in_slots[0]], pos.slot_pos[blk.in_slots[1]],
            pos.aux_pos[b][0], pos.aux_pos[b][1],
            pos.slot_pos[blk.out_slots[0]]};
        plant(b, kNandEntries, std::size(kNandEntries), local);
        break;
      }
    }
  }
}

}  // namespace

GemReduction build_gem_reduction(const circuit::CvpInstance& inst) {
  circuit::CvpInstance norm = normalize_fanout(inst);
  GemReduction red;
  red.plan = plan_assembly(norm.circuit);
  Positions pos = assign_positions(red.plan);
  red.output_pos = pos.nu - 1;

  Matrix<double> a(pos.nu, pos.nu);
  plant_entries(red.plan, norm, pos,
                [&](std::size_t r, std::size_t c, double v) { a(r, c) += v; });
  red.matrix = std::move(a);
  red.slot_pos = std::move(pos.slot_pos);
  return red;
}

SparseGemReduction build_gem_reduction_sparse(
    const circuit::CvpInstance& inst) {
  circuit::CvpInstance norm = normalize_fanout(inst);
  SparseGemReduction red;
  red.plan = plan_assembly(norm.circuit);
  Positions pos = assign_positions(red.plan);
  red.output_pos = pos.nu - 1;

  sparse::TripletBuilder<double> b(pos.nu, pos.nu);
  plant_entries(red.plan, norm, pos,
                [&](std::size_t r, std::size_t c, double v) { b.add(r, c, v); });
  red.matrix = b.build();
  red.slot_pos = std::move(pos.slot_pos);
  return red;
}

}  // namespace pfact::core
