#pragma once
// Functional blocks (gadgets) for the GEM/GEMS reductions of Theorem 3.1.
//
// Boolean encoding: False = 0, True = 1 (as in the paper's Section 3).
//
// The blocks below were re-derived from scratch against the Section-2
// contracts (the printed Figures 2-3 are OCR-corrupted in our source text;
// see DESIGN.md).  Derivation notes — the invariants every block obeys:
//
//  * A "slot" is a diagonal position holding a live boolean value: when
//    column s comes up for elimination, the row at position s (the "in-row",
//    produced by the upstream block) is  (0,...,0, a, 0,...,0)  with a at
//    the diagonal.
//  * A block occupies its in-slot positions, then a CONTIGUOUS run of aux
//    positions immediately below, plus one "carrier" row per output at the
//    (distant) position of each output slot. Pivot selection for every block
//    column lands inside the contiguous [in,aux] region in every input case,
//    so minimal-pivoting row movements (swap for GEM, circular shift for
//    GEMS) never displace rows of other blocks — this is what makes the
//    blocks composable, and is why the same blocks serve both algorithms.
//  * After the block's columns are eliminated, each carrier row is exactly
//    (0,...,0, v, 0,...,0) with its output value v at its own diagonal, and
//    every other leftover row has junk only ABOVE the diagonal (inert).
//
// Block semantics ("after k steps of the algorithm" = after eliminating the
// block's columns):
//   PASS  (wire, the paper's W): out = in.                1 in, 1 out, 2 aux
//   DUP   (duplicator, paper's D): out0 = out1 = in.      1 in, 2 out, 4 aux
//   NAND  (paper's N): out = NAND(in0, in1).              2 in, 1 out, 2 aux
//
// The entries below are planted by the assembler; this header documents the
// shape and exposes block-local templates for the unit tests.

#include <cstddef>

#include "matrix/matrix.h"
#include "numeric/rational.h"

namespace pfact::core {

// Number of aux rows/columns each block inserts between its in-slots and
// the next block region.
inline constexpr std::size_t kPassAuxRows = 2;
inline constexpr std::size_t kDupAuxRows = 4;
inline constexpr std::size_t kNandAuxRows = 2;

// Entry plans: lists of (row, col, value) triples in *local* coordinates.
// The assembler maps local indices to global positions:
//   PASS: 0 = in, 1..2 = aux, 3 = out.
//   DUP : 0 = in, 1..4 = aux, 5 = out0, 6 = out1   (out0 position < out1).
//   NAND: 0,1 = in, 2..3 = aux, 4 = out.
// In-rows are planted by the upstream block (only the value on the
// diagonal); entries listed here never touch the in-rows.
struct GadgetEntry {
  std::size_t row;
  std::size_t col;
  int value;
};

// PASS block:
//   aux row 1 ("compute"): reads the in column; when in == 0 it becomes the
//     pivot there (supplying the required nonzero); carries the transfer
//     constant -1 into the out column.
//   aux row 2 ("shield"): clean pivot for the aux column when in == 0.
//   carrier (row 3) reads the aux column once; the case distinction between
//     which row is the aux-column pivot (compute carries -1 at out, shield
//     carries nothing) plants exactly `in` at the carrier diagonal.
inline constexpr GadgetEntry kPassEntries[] = {
    {1, 0, 1}, {1, 1, 1}, {1, 3, -1},  // compute
    {2, 1, 1},                         // shield
    {3, 1, 1},                         // carrier
};

// DUP block: two independent transfer chains (aux cols 1 and 3). The
// compute rows both read the in column; kappa == theta makes the second
// chain's pivot entry cancel when in == 0, and the +1 at local col 3 on the
// carrier A row pre-compensates the pollution it picks up from chain 1's
// pivot when in == 1.
inline constexpr GadgetEntry kDupEntries[] = {
    {1, 0, 1}, {1, 1, 1}, {1, 3, 1}, {1, 6, -1},  // compute 1 (targets out1)
    {2, 1, 1},                                    // shield 1
    {3, 0, 1}, {3, 3, 1}, {3, 5, -1},             // compute 2 (targets out0)
    {4, 3, 1},                                    // shield 2
    {5, 3, 1},                                    // carrier out0
    {6, 1, 1}, {6, 3, 1},                         // carrier out1
};

// NAND block: the compute row reads both in columns (becoming the pivot for
// whichever input is 0); the carrier reads both in columns and accumulates
// 1 - a*b at the aux column; the shield then transfers it to the out column.
inline constexpr GadgetEntry kNandEntries[] = {
    {2, 0, 1}, {2, 1, 1}, {2, 2, -1},  // compute
    {3, 2, 1}, {3, 4, -1},             // shield
    {4, 0, 1}, {4, 1, 1},              // carrier
};

// Block-local template matrices (in-slot values filled by the caller), for
// unit-testing each block against its contract in isolation.
Matrix<numeric::Rational> pass_block_template();
Matrix<numeric::Rational> dup_block_template();
Matrix<numeric::Rational> nand_block_template();

}  // namespace pfact::core
