#include "core/gep_gadgets.h"

#include <cmath>

#include "factor/gaussian.h"

namespace pfact::core {

namespace {

// Constants solved by tools/gep_lab.cpp (Gauss-Newton on the contracts).
// PASS: p = [a1 a3 a4 d1 d2]
constexpr double kPassA1 = 0.57181269199578666;
constexpr double kPassA3 = 2.8315407706863276;
constexpr double kPassA4 = 1.59395769334738;
constexpr double kPassD1 = -18.666666666666636;  // == -56/3
constexpr double kPassD2 = -13.333333333333329;  // == -40/3
// NAND: p = [a1 a2 a3 a4 b1 b2 b3 b4 d1 d2]
constexpr double kNandA1 = 1.5;
constexpr double kNandA2 = -0.10804184957699207;
constexpr double kNandA3 = -2.7128081811199602;
constexpr double kNandA4 = -1.4999999999999996;
constexpr double kNandB1 = 1.4980238347976564;
constexpr double kNandB2 = 0.80340693503638883;
constexpr double kNandB3 = -8.1276742826954287;
constexpr double kNandB4 = -4.9934127826588535;
constexpr double kNandD1 = -10.632613936338899;
constexpr double kNandD2 = 0.0;

}  // namespace

Matrix<double> gep_pass_template() {
  Matrix<double> m(6, 6);
  for (int i = 0; i < 6; ++i) m(i, i) = 1e-3 * (i + 1);
  m(1, 1) = 0;
  m(3, 3) = 0;
  m(1, 0) = 1;  // slot value; caller overwrites with the encoding (1 or 2)
  m(1, 1) = 1;  // companion
  m(2, 0) = 1.5;
  m(2, 1) = kPassA1;
  m(2, 2) = kPassA3;
  m(2, 3) = kPassA4;
  m(3, 1) = 4.0;  // decoy
  m(3, 2) = kPassD1;
  m(3, 3) = kPassD2;
  return m;
}

Matrix<double> gep_nand_template() {
  Matrix<double> m(9, 9);
  for (int i = 0; i < 9; ++i) m(i, i) = 1e-3 * (i + 1);
  m(2, 2) = 0;
  m(6, 6) = 0;
  m(2, 0) = 1;  // u; caller overwrites
  m(2, 2) = 1;  // u's companion at m1
  m(3, 0) = 1.5;
  m(3, 2) = kNandA1;
  m(3, 3) = kNandA2;
  m(3, 4) = kNandA3;
  m(3, 5) = kNandA4;
  m(4, 1) = 1;  // w; caller overwrites
  m(4, 3) = 1;  // w's companion at m2
  m(5, 1) = 1.5;
  m(5, 2) = kNandB1;
  m(5, 3) = kNandB2;
  m(5, 4) = kNandB3;
  m(5, 5) = kNandB4;
  m(6, 3) = 4.0;  // decoy
  m(6, 4) = kNandD1;
  m(6, 5) = kNandD2;
  return m;
}

namespace {

// Embeds `block` at the given local->global index map.
void plant(Matrix<double>& a, const Matrix<double>& block,
           const std::vector<std::size_t>& pos) {
  for (std::size_t i = 0; i < block.rows(); ++i)
    for (std::size_t j = 0; j < block.cols(); ++j)
      if (block(i, j) != 0.0) a(pos[i], pos[j]) += block(i, j);
}

}  // namespace

GepChain build_gep_pass_chain(int v, std::size_t depth) {
  // Block k occupies local cols {0,1} = pair k and {2,3} = pair k+1 plus
  // two private spare positions for swap-landing. Global layout: pair k at
  // columns (4k, 4k+1), spares of block k at (4k+2, 4k+3).
  // (A sparser packing is possible; clarity wins here.)
  GepChain chain;
  const std::size_t n = 4 * depth + 2;
  chain.matrix = Matrix<double>(n, n);
  // Global diagonal fillers keep untouched columns pivotable.
  for (std::size_t i = 0; i < n; ++i) chain.matrix(i, i) = 1e-4;
  for (std::size_t k = 0; k < depth; ++k) {
    Matrix<double> block = gep_pass_template();
    if (k == 0) {
      block(1, 0) = v;
    } else {
      // Interior pair: the value arrives dynamically on the survivor row,
      // and the pair's diagonal structure was planted by the predecessor.
      block(0, 0) = 0;
      block(1, 0) = 0;
      block(1, 1) = 0;
    }
    std::size_t s = 4 * k;
    // pos: local 0 -> slot diag, 1 -> companion diag (in-row), 2 -> out t,
    // 3 -> out t', 4,5 -> spares. Out pair of block k = pair k+1 columns
    // (== n-2, n-1 for the last block).
    std::vector<std::size_t> pos = {s, s + 1, s + 4, s + 5, s + 2, s + 3};
    plant(chain.matrix, block, pos);
    // Remove the double-planted global filler under block diagonals.
    for (std::size_t li = 0; li < 6; ++li) {
      if (block(li, li) != 0.0)
        chain.matrix(pos[li], pos[li]) -= 1e-4;
    }
  }
  chain.value_col = n - 2;
  chain.companion_col = n - 1;
  return chain;
}

GepChain build_gep_nand_chain(int u, int w, std::size_t depth) {
  // NAND block first, then PASS blocks, each occupying 4 fresh positions.
  // One extra "kicker" row at the very bottom handles the survivor-
  // stranding case: when the NAND's decoy bounce leaves the surviving row
  // at the decoy's origin position (9) — which lies above the first PASS's
  // out column — the kicker (the unique large entry of column 9) wins that
  // column's contest and swaps the survivor to the bottom, where it can
  // contest every later column. GEP rows move only by winning a contest or
  // by being the displaced diagonal row, so without the kicker the value
  // would be stuck above the diagonal.
  GepChain chain;
  const std::size_t n = depth == 0 ? 9 : 11 + 4 * depth;
  chain.matrix = Matrix<double>(n, n);
  for (std::size_t i = 0; i < n; ++i) chain.matrix(i, i) = 1e-4;
  Matrix<double> nand = gep_nand_template();
  nand(2, 0) = u;
  nand(4, 1) = w;
  // The NAND's out pair must be the first PASS's in pair (or the final pair
  // when depth == 0). The decoy's origin position (local 6) must sit BELOW
  // the out pair so a survivor bounced there by the decoy swap can still
  // contest the out column; spare fillers (local 7,8) go to the leftover
  // positions.
  std::size_t out_t = depth == 0 ? 4 : 7;
  std::size_t out_tp = depth == 0 ? 5 : 8;
  std::vector<std::size_t> npos = {0, 1, 2, 3, out_t, out_tp, 9, 5, 6};
  if (depth == 0) {
    npos = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  }
  plant(chain.matrix, nand, npos);
  for (std::size_t li = 0; li < 9; ++li) {
    if (nand(li, li) != 0.0) chain.matrix(npos[li], npos[li]) -= 1e-4;
  }
  std::size_t in_t = out_t;
  std::size_t in_tp = out_tp;
  for (std::size_t k = 0; k < depth; ++k) {
    Matrix<double> block = gep_pass_template();
    block(0, 0) = 0;  // in-pair diagonals come from the predecessor block
    block(1, 0) = 0;  // value arrives on the survivor row
    block(1, 1) = 0;
    std::size_t base = 10 + 4 * k;
    std::size_t t = base + 2;
    std::size_t tp = base + 3;
    std::vector<std::size_t> pos = {in_t, in_tp, t, tp, base, base + 1};
    plant(chain.matrix, block, pos);
    for (std::size_t li = 0; li < 6; ++li) {
      if (block(li, li) != 0.0) chain.matrix(pos[li], pos[li]) -= 1e-4;
    }
    in_t = t;
    in_tp = tp;
  }
  if (depth > 0) {
    chain.matrix(n - 1, 9) = 1.0;  // the kicker
    chain.value_col = in_t;
    chain.companion_col = in_tp;
  } else {
    chain.value_col = 4;
    chain.companion_col = 5;
  }
  return chain;
}

double run_gep_chain(const GepChain& chain, factor::PivotTrace* trace_out) {
  return run_gep_chain_t<double>(chain, trace_out);
}

}  // namespace pfact::core
