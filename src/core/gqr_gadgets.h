#pragma once
// Functional blocks for the GQR reduction (Theorem 4.1).
//
// Boolean encoding: False = -1, True = +1 (paper, Section 4).
//
// Key structural facts (re-derived; the paper's Figures 6-8 are corrupted in
// our source text, but Figure 6's visible first rows "(a, 1, ...)" confirm
// the interface):
//
//  * A value is handed between blocks as a PAIR: the encoding a = +/-1 at a
//    diagonal slot AND a constant companion 1 in the next column of the same
//    row. The companion is what lets rotations form a - 1 / a + 1 style
//    cancellations; without it every GQR result entry would provably be a
//    pure sign-monomial (rotations map sign-homogeneous rows to
//    sign-homogeneous rows), and NAND is not a monomial.
//  * A rotation against the slot column consumes the value: the rotated
//    diagonal becomes sqrt(a^2 + h^2) > 0 (data-independent magnitude since
//    a^2 = 1), and the sign information moves into the other row.
//  * The conditional mechanism: the aux row's post-rotation diagonal is
//    (a -/+ 1)/sqrt(2) — EXACTLY ZERO for one input value — so the following
//    rotation either degenerates into a signed row swap or mixes rows; the
//    two branches plant different constants into the carrier.
//
// Block contracts ("after k steps" = after the block's rotations):
//   PASS: carrier row ends (0,...,0, a at t, 1 at t+1).        1 aux row
//   NAND: carrier row ends (0,...,0, NAND(a,b) at t, 1 at t+1). 2 aux rows
//
// PASS constants are closed-form (sqrt(2) family). The NAND constants were
// obtained by Gauss-Newton solution of the 8 contract equations over the 9
// free entries (tools/gqr_lab.cpp) and verified to ~1e-17 in long double;
// they are algebraic numbers on a 1-parameter solution family.

#include <cstddef>

#include "matrix/matrix.h"

namespace pfact::core {

// --- block templates (long double master copies) ---------------------------

// 4x4 PASS: cols {0: slot, 1: companion/aux, 2: out t, 3: out companion}.
// Caller sets (0,0) = a (+/-1); (0,1) is the companion 1 (pre-set).
Matrix<long double> gqr_pass_template();

// 6x6 NAND: cols {0: a-slot, 1: companion/aux1, 2: b-slot, 3: companion/aux2,
// 4: out t, 5: out companion}. Caller sets (0,0) = a and (2,2) = b.
Matrix<long double> gqr_nand_template();

// Number of rotations GQR performs on each template (every case).
inline constexpr std::size_t kGqrPassRotations = 2;
inline constexpr std::size_t kGqrNandRotations = 4;

// --- chain builder ----------------------------------------------------------
// Builds a matrix that evaluates NAND(a, b) and then pushes the result
// through `depth` PASS blocks — the depth-scaling workload for the floating
// point error experiments (Section 4's "error will in general amplify").
// The final value lands on the last diagonal entry but one pair:
// (order-2, order-2), companion at (order-2, order-1).
struct GqrChain {
  Matrix<long double> matrix;
  std::size_t value_pos = 0;  // diagonal position of the final value
};

GqrChain build_gqr_nand_chain(int a, int b, std::size_t depth);

// A pure PASS chain carrying one value through `depth` blocks.
GqrChain build_gqr_pass_chain(int a, std::size_t depth);

}  // namespace pfact::core
