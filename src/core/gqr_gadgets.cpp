#include "core/gqr_gadgets.h"

namespace pfact::core {

namespace {

constexpr long double kS2 = 1.4142135623730950488L;  // sqrt(2)

// NAND block constants from tools/gqr_lab.cpp (Gauss-Newton on the block
// contract; residual < 1e-17 in long double across all four input cases).
constexpr long double kP0 = -1.0983690012895321L;   // Y1 at col 3
constexpr long double kP1 = 0.83678159436274618L;   // Y1 at col 4 (t)
constexpr long double kP2 = -2.390109932476594L;    // Y1 at col 5 (t+1)
constexpr long double kQ0 = -1.0L;                  // Y2 companion at col 3
constexpr long double kQ1 = -kS2;                   // Y2 at col 4
constexpr long double kQ2 = -kS2;                   // Y2 at col 5
constexpr long double kR1 = -0.68654877941666289L;  // carrier at col 1
constexpr long double kR2 = 1.0022423053610348L;    // carrier at col 3
constexpr long double kZ = 1.3511288041845773L;     // carrier at col 4
constexpr long double kW = 2.4588380237153377L;     // carrier at col 5

}  // namespace

Matrix<long double> gqr_pass_template() {
  Matrix<long double> m(4, 4);
  m(0, 0) = 1;  // slot value; caller overwrites with +/-1
  m(0, 1) = 1;  // companion
  m(1, 0) = 1;
  m(1, 1) = 1;
  m(1, 2) = -kS2;
  m(1, 3) = -kS2;
  m(2, 1) = kS2;
  m(2, 2) = kS2 - 1;
  m(2, 3) = -(1 + kS2);
  return m;
}

Matrix<long double> gqr_nand_template() {
  Matrix<long double> m(6, 6);
  m(0, 0) = 1;  // a
  m(0, 1) = 1;  // a's companion
  m(1, 0) = 1;
  m(1, 1) = 1;
  m(1, 3) = kP0;
  m(1, 4) = kP1;
  m(1, 5) = kP2;
  m(2, 2) = 1;  // b
  m(2, 3) = 1;  // b's companion
  m(3, 2) = 1;
  m(3, 3) = kQ0;
  m(3, 4) = kQ1;
  m(3, 5) = kQ2;
  m(4, 1) = kR1;
  m(4, 3) = kR2;
  m(4, 4) = kZ;
  m(4, 5) = kW;
  return m;
}

namespace {

// Copies a block template into the global matrix at the given local->global
// position map (blocks are principal minors on possibly non-contiguous
// index sets, exactly as in the paper's Section 2).
void plant(Matrix<long double>& a, const Matrix<long double>& block,
           const std::vector<std::size_t>& pos) {
  for (std::size_t i = 0; i < block.rows(); ++i)
    for (std::size_t j = 0; j < block.cols(); ++j)
      if (block(i, j) != 0.0L) a(pos[i], pos[j]) += block(i, j);
}

}  // namespace

GqrChain build_gqr_nand_chain(int a, int b, std::size_t depth) {
  // Layout: NAND occupies positions 0..5 (out at 4, companion col 5);
  // each PASS k re-uses the previous out pair as its slot/companion and
  // appends two positions. Total order = 6 + 2*depth.
  const std::size_t n = 6 + 2 * depth;
  GqrChain chain;
  chain.matrix = Matrix<long double>(n, n);
  Matrix<long double> nand = gqr_nand_template();
  nand(0, 0) = a;
  nand(2, 2) = b;
  plant(chain.matrix, nand, {0, 1, 2, 3, 4, 5});
  std::size_t slot = 4;  // current value position (companion at slot+1)
  for (std::size_t k = 0; k < depth; ++k) {
    Matrix<long double> pass = gqr_pass_template();
    pass(0, 0) = 0;  // the value arrives via the chain, nothing planted
    pass(0, 1) = 0;  // companion likewise
    plant(chain.matrix, pass, {slot, slot + 1, slot + 2, slot + 3});
    slot += 2;
  }
  chain.value_pos = slot;
  return chain;
}

GqrChain build_gqr_pass_chain(int a, std::size_t depth) {
  const std::size_t n = 2 + 2 * depth;
  GqrChain chain;
  chain.matrix = Matrix<long double>(n, n);
  chain.matrix(0, 0) = a;
  chain.matrix(0, 1) = 1;
  std::size_t slot = 0;
  for (std::size_t k = 0; k < depth; ++k) {
    Matrix<long double> pass = gqr_pass_template();
    pass(0, 0) = 0;
    pass(0, 1) = 0;
    plant(chain.matrix, pass, {slot, slot + 1, slot + 2, slot + 3});
    slot += 2;
  }
  chain.value_pos = slot;
  return chain;
}

}  // namespace pfact::core
