#pragma once
// Block assembly (Section 2 of the paper): builds the matrix A_C whose
// elimination by GEM/GEMS simulates a given NANDCVP instance.
//
// Layout note (documented deviation, cf. DESIGN.md): the paper chains blocks
// with partially overlapped W blocks and gives a closed-form position p_j
// for the j-th N block.  We use an equivalent "pipeline" layout: the live
// wire values at each stage occupy diagonal slots, and every stage applies
// one active block (NAND or DUP) while PASS blocks carry the remaining live
// values forward.  Positions are simple prefix sums over block sizes — the
// analogue of the paper's p_j formula, and equally log-space computable
// (each block's position depends only on counts of preceding block types).
// The resulting order is O(n * w) for n gates and live width w <= n, i.e.
// polynomial, as required for a many-one reduction.
//
// Like the paper's matrices, A_C is singular (it contains identically zero
// columns); Corollary 3.2's bordering (core/bordering.h) upgrades the GEM
// reduction to nonsingular inputs.

#include <cstddef>
#include <vector>

#include "circuit/circuit.h"
#include "core/gem_gadgets.h"
#include "matrix/matrix.h"
#include "matrix/sparse.h"

namespace pfact::core {

enum class BlockType { kInput, kPass, kDup, kNand };

struct BlockInstance {
  BlockType type;
  std::size_t layer = 0;
  std::vector<std::size_t> in_slots;
  std::vector<std::size_t> out_slots;
};

// The symbolic plan: blocks grouped in layers, plus the wiring of slots
// (each slot is one live wire segment between two consecutive layers).
struct AssemblyPlan {
  std::vector<BlockInstance> blocks;  // in layer order
  std::size_t num_layers = 0;
  std::size_t num_slots = 0;
  std::size_t output_slot = 0;
  // Slots that are produced but never consumed (dead gates); they receive
  // trailing positions.
  std::vector<std::size_t> dead_slots;
};

// Plans the block structure for a fanout<=2 instance. Throws if a node of
// the circuit (counting the external output use) exceeds fanout 2 — callers
// normalize with circuit::with_fanout_two first (see build_gem_reduction).
AssemblyPlan plan_assembly(const circuit::Circuit& c);

// A fully planted reduction matrix. Entries are small integers (|e| <= 1),
// so double arithmetic on them is exact; tests additionally verify over
// exact rationals.
struct GemReduction {
  Matrix<double> matrix;
  std::size_t output_pos = 0;  // always matrix.rows() - 1
  AssemblyPlan plan;
  std::vector<std::size_t> slot_pos;  // position of each slot's diagonal
};

// Builds A_C for the instance. Applies the fanout-2 normalization
// automatically when needed (including the output node's external use).
GemReduction build_gem_reduction(const circuit::CvpInstance& inst);

// The same reduction with the matrix in CSR form. A_C is block-banded with
// O(1) entries per row, so this is the only way large circuits fit: the
// builder plants gadget entries straight into a TripletBuilder (no dense
// intermediate is ever allocated) and the planting order is shared with the
// dense builder, so coalescing sums duplicates in the identical order and
// `matrix.to_dense() == build_gem_reduction(inst).matrix` bit for bit.
struct SparseGemReduction {
  sparse::CsrMatrix<double> matrix;
  std::size_t output_pos = 0;  // always matrix.rows() - 1
  AssemblyPlan plan;
  std::vector<std::size_t> slot_pos;  // position of each slot's diagonal
};

SparseGemReduction build_gem_reduction_sparse(const circuit::CvpInstance& inst);

}  // namespace pfact::core
