#pragma once
// Corollary 3.2's nonsingular embedding:
//
//     A' = ( A  E )
//          ( E  O )
//
// where E is the order-nu antidiagonal identity. det(A') = +/-1 for ANY A
// (expansion along the zero block), so A' is always nonsingular, and the
// first nu elimination steps of GEM behave on the embedded A exactly as on
// A alone: whenever a column of A is zero at/below the diagonal, the pivot
// is borrowed from the antidiagonal row of the bottom half — a single row
// exchange (GEM!) whose row has that lone nonzero, so the elimination step
// leaves A untouched.  (GEMS cannot use this trick: its circular shift would
// displace every row in between — which is exactly why Table 1 puts GEMS on
// nonsingular matrices in NC while GEM stays inherently sequential.)

#include <cstddef>
#include <utility>
#include <vector>

#include "matrix/matrix.h"
#include "matrix/sparse.h"

namespace pfact::core {

template <class T>
Matrix<T> border_nonsingular(const Matrix<T>& a) {
  const std::size_t n = a.rows();
  Matrix<T> out(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) out(i, j) = a(i, j);
    out(i, n + (n - 1 - i)) = T(1);      // top-right E
    out(n + i, n - 1 - i) = T(1);        // bottom-left E
  }
  return out;
}

// CSR overload: same embedding without a dense intermediate. Row i of the
// top half is row i of A plus the lone antidiagonal 1 at column 2n-1-i
// (always to the right of A's columns, so it appends in sorted order); row
// n+i of the bottom half has the single entry at column n-1-i.
template <class T>
sparse::CsrMatrix<T> border_nonsingular(const sparse::CsrMatrix<T>& a) {
  const std::size_t n = a.rows();
  std::vector<std::size_t> row_ptr(2 * n + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<T> values;
  col_idx.reserve(a.nnz() + 2 * n);
  values.reserve(a.nnz() + 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
      col_idx.push_back(a.col_idx()[p]);
      values.push_back(a.values()[p]);
    }
    col_idx.push_back(n + (n - 1 - i));  // top-right E
    values.push_back(T(1));
    row_ptr[i + 1] = col_idx.size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    col_idx.push_back(n - 1 - i);        // bottom-left E
    values.push_back(T(1));
    row_ptr[n + i + 1] = col_idx.size();
  }
  return sparse::CsrMatrix<T>::from_parts(2 * n, 2 * n, std::move(row_ptr),
                                          std::move(col_idx),
                                          std::move(values));
}

}  // namespace pfact::core
