#pragma once
// Corollary 3.2's nonsingular embedding:
//
//     A' = ( A  E )
//          ( E  O )
//
// where E is the order-nu antidiagonal identity. det(A') = +/-1 for ANY A
// (expansion along the zero block), so A' is always nonsingular, and the
// first nu elimination steps of GEM behave on the embedded A exactly as on
// A alone: whenever a column of A is zero at/below the diagonal, the pivot
// is borrowed from the antidiagonal row of the bottom half — a single row
// exchange (GEM!) whose row has that lone nonzero, so the elimination step
// leaves A untouched.  (GEMS cannot use this trick: its circular shift would
// displace every row in between — which is exactly why Table 1 puts GEMS on
// nonsingular matrices in NC while GEM stays inherently sequential.)

#include <cstddef>

#include "matrix/matrix.h"

namespace pfact::core {

template <class T>
Matrix<T> border_nonsingular(const Matrix<T>& a) {
  const std::size_t n = a.rows();
  Matrix<T> out(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) out(i, j) = a(i, j);
    out(i, n + (n - 1 - i)) = T(1);      // top-right E
    out(n + i, n - 1 - i) = T(1);        // bottom-left E
  }
  return out;
}

}  // namespace pfact::core
