#include "core/gem_gadgets.h"

namespace pfact::core {

namespace {

template <std::size_t N>
Matrix<numeric::Rational> build(std::size_t order,
                                const GadgetEntry (&entries)[N]) {
  Matrix<numeric::Rational> m(order, order);
  for (const auto& e : entries) m(e.row, e.col) = e.value;
  return m;
}

}  // namespace

Matrix<numeric::Rational> pass_block_template() {
  return build(4, kPassEntries);
}

Matrix<numeric::Rational> dup_block_template() {
  return build(7, kDupEntries);
}

Matrix<numeric::Rational> nand_block_template() {
  return build(5, kNandEntries);
}

}  // namespace pfact::core
