#pragma once
// Functional blocks for the GEP reduction (Theorem 3.4, extending
// Vavasis' [17] GEP P-completeness; the paper's Figures 4-5).
//
// Boolean encoding: False = 1, True = 2 (POSITIVE magnitudes; GEP's pivot
// rule compares |entries|, and our blocks emit positively-signed outputs so
// they chain).
//
// Mechanism (re-derived; see DESIGN.md):
//  * Under partial pivoting the Schur complement after eliminating a set of
//    columns does not depend on the pivot choices, so — unlike GEM/GEMS —
//    values cannot be encoded through skipped columns. What IS
//    case-dependent is WHICH ROW wins each magnitude contest, i.e. the
//    pivot trace: precisely the language L of Theorem 3.4.
//  * A value v in {1,2} arrives as a row (v at its slot column, 1 at a
//    companion column), positioned below the slot's diagonal (GEP swaps
//    rows over arbitrary distances, so gadget rows may live anywhere below
//    — no contiguity constraints, in contrast to GEMS).
//  * The aux row carries 3/2 at the slot column: the contest 3/2 vs v
//    decides the pivot; the loser row continues, carrying a case-dependent
//    mixture. The companion entry is essential — without it the loser would
//    be proportional across cases and no information could flow.
//  * A "decoy" row (entry 4 at the mix column plus payload at the output
//    pair) wins the mix-column contest, both freeing the surviving row to
//    travel further down and injecting the survivor's informative mix entry
//    into the output pair.
//  * Tiny diagonal fillers (1e-3 scale) keep every column — hence every
//    leading principal minor — nonsingular: the reduction matrices are
//    strongly nonsingular, the strengthening Theorem 3.4 adds to [17]
//    (verified exactly in the tests over rationals).
//
// The block constants were derived with Gauss-Newton on the block contracts
// (tools/gep_lab.cpp) and verified across all input cases.

#include <cmath>
#include <cstddef>
#include <type_traits>

#include "factor/gaussian.h"
#include "factor/pivot_trace.h"
#include "matrix/matrix.h"
#include "numeric/rational.h"

namespace pfact::core {

// 6x6 PASS: cols {0: slot, 1: companion/mix, 2: out t, 3: out companion}.
// Rows: 0 filler, 1 in-row (caller sets (1,0) = v), 2 aux, 3 decoy,
// 4..5 fillers. Contract: after eliminating cols 0..1, exactly one row at
// position >= 2 is live with (v at col 2, 1 at col 3).
Matrix<double> gep_pass_template();

// 9x9 NAND: cols {0: u-slot, 1: w-slot, 2: mix m1 (u companion),
// 3: mix m2 (w companion), 4: out t, 5: out companion}. Caller sets
// (2,0) = u and (4,1) = w. Contract: after eliminating cols 0..3, exactly
// one live row remains with (NAND(u,w) at col 4, 1 at col 5), where
// enc(NAND) = 1 if u=w=2 else 2.
Matrix<double> gep_nand_template();

// Chain: NAND(u, w) followed by `depth` PASS blocks; the final value is
// decoded from the unique live row of the eliminated matrix.
struct GepChain {
  Matrix<double> matrix;
  std::size_t value_col = 0;      // column of the final encoding
  std::size_t companion_col = 0;  // column of its companion 1
};

GepChain build_gep_nand_chain(int u, int w, std::size_t depth);
GepChain build_gep_pass_chain(int v, std::size_t depth);

// Runs GEP on the chain and decodes the boolean: returns the encoding found
// on the unique live row at (>= value_col, value_col); 0.0 if malformed.
// If `trace_out` is non-null the pivot trace is stored there (Theorem 3.4's
// language L is a predicate on this trace).
double run_gep_chain(const GepChain& chain,
                     factor::PivotTrace* trace_out = nullptr);

// Field-generic form of run_gep_chain, for the differential suite: lifts the
// chain into T (exactly — the gadget constants are dyadic, and Rational gets
// the lossless from_double lift), runs GEP there, and decodes the same way.
// The encodings {1, 2} are exact in every field, so all substrates must
// agree bit-for-bit on the decoded value.
template <class T>
double run_gep_chain_t(const GepChain& chain,
                       factor::PivotTrace* trace_out = nullptr) {
  Matrix<T> m(chain.matrix.rows(), chain.matrix.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if constexpr (std::is_same_v<T, numeric::Rational>) {
        m(i, j) = numeric::Rational::from_double(chain.matrix(i, j));
      } else {
        m(i, j) = T(chain.matrix(i, j));
      }
    }
  }
  Permutation perm(m.rows());
  factor::PivotTrace trace = factor::eliminate_steps(
      m, factor::PivotStrategy::kPartial, chain.value_col, &perm);
  if (trace_out != nullptr) *trace_out = trace;
  int found = -1;
  for (std::size_t i = chain.value_col; i < m.rows(); ++i) {
    if (std::fabs(to_double(m(i, chain.value_col))) > 0.2) {
      if (found >= 0) return 0.0;
      found = static_cast<int>(i);
    }
  }
  if (found < 0) return 0.0;
  return to_double(m(static_cast<std::size_t>(found), chain.value_col));
}

}  // namespace pfact::core
