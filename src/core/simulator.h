#pragma once
// End-to-end drivers: circuit -> A_C -> run the factorization -> decode the
// simulated output from the matrix. These are the executable forms of the
// paper's Theorem 3.1 (GEM/GEMS on general matrices) and Corollary 3.2
// (GEM on nonsingular matrices).
//
// These drivers report a bare ok/value pair; robustness/guarded_run.h wraps
// the same constructions with budgets, fault classification, and a
// cross-check certificate, returning a structured RunReport. Both accept an
// optional factor::EliminationChecks so callers can impose step/deadline
// budgets and the reduction-mode pivot invariant on the elimination.

#include <cstddef>

#include "circuit/circuit.h"
#include "core/assembler.h"
#include "core/bordering.h"
#include "factor/gaussian.h"
#include "matrix/sparse.h"
#include "matrix/storage.h"

namespace pfact::core {

namespace detail {

// Builds the reduction in the requested storage backend. The sparse
// specialization never materializes a dense matrix — that is the entire
// point of the backend (ISSUE: 10-100x more gates at equal memory).
template <class T, class Storage>
struct ReductionOps;

template <class T>
struct ReductionOps<T, Matrix<T>> {
  static Matrix<T> build(const circuit::CvpInstance& inst,
                         std::size_t* output_pos, std::size_t* nu) {
    GemReduction red = build_gem_reduction(inst);
    *output_pos = red.output_pos;
    *nu = red.matrix.rows();
    return red.matrix.template cast<T>();
  }
  static Matrix<T> build_bordered(const circuit::CvpInstance& inst,
                                  std::size_t* output_pos, std::size_t* nu) {
    GemReduction red = build_gem_reduction(inst);
    *output_pos = red.output_pos;
    *nu = red.matrix.rows();
    return border_nonsingular(red.matrix.template cast<T>());
  }
};

template <class T>
struct ReductionOps<T, sparse::SparseMatrix<T>> {
  static sparse::SparseMatrix<T> build(const circuit::CvpInstance& inst,
                                       std::size_t* output_pos,
                                       std::size_t* nu) {
    SparseGemReduction red = build_gem_reduction_sparse(inst);
    *output_pos = red.output_pos;
    *nu = red.matrix.rows();
    return sparse::SparseMatrix<T>(red.matrix.template cast<T>());
  }
  static sparse::SparseMatrix<T> build_bordered(
      const circuit::CvpInstance& inst, std::size_t* output_pos,
      std::size_t* nu) {
    SparseGemReduction red = build_gem_reduction_sparse(inst);
    *output_pos = red.output_pos;
    *nu = red.matrix.rows();
    return sparse::SparseMatrix<T>(
        border_nonsingular(red.matrix.template cast<T>()));
  }
};

}  // namespace detail

struct SimulationResult {
  bool value = false;   // decoded circuit output
  bool ok = false;      // decode was structurally clean (diagonal was an
                        // exact 0/1 and, for bordered runs, the pivot side
                        // was consistent)
  std::size_t order = 0;  // nu — order of the simulated matrix
  double decoded_entry = 0.0;
};

// Theorem 3.1: runs GEM (kMinimalSwap) or GEMS (kMinimalShift) on A_C and
// reads the encoding of C(x) off the bottom-right entry. The scalar field T
// must represent small integers exactly (double, Rational, SoftFloat<P>=24+).
template <class T, class Storage = Matrix<T>>
SimulationResult simulate_gem(const circuit::CvpInstance& inst,
                              factor::PivotStrategy strategy,
                              const factor::EliminationChecks& checks = {}) {
  std::size_t output_pos = 0;
  std::size_t nu = 0;
  Storage a = detail::ReductionOps<T, Storage>::build(inst, &output_pos, &nu);
  factor::eliminate_steps(a, strategy, a.rows(), nullptr, checks);
  SimulationResult res;
  res.order = a.rows();
  const T& out = a.get(output_pos, output_pos);
  res.decoded_entry = to_double(out);
  if (out == T(1)) {
    res.value = true;
    res.ok = true;
  } else if (is_zero(out)) {
    res.value = false;
    res.ok = true;
  }
  return res;
}

// Corollary 3.2: nonsingular variant. Builds A'_C = [[A_C, E], [E, 0]]
// (det = +/-1) and runs GEM. The simulated output still appears at position
// (nu, nu) of the embedded A_C; when the circuit output is False the pivot
// for that column comes from the bordering half (the column is zero within
// A_C), which the decode recognizes via the pivot trace.
template <class T, class Storage = Matrix<T>>
SimulationResult simulate_gem_nonsingular(
    const circuit::CvpInstance& inst,
    const factor::EliminationChecks& checks = {}) {
  std::size_t output_pos = 0;
  std::size_t nu = 0;
  Storage a =
      detail::ReductionOps<T, Storage>::build_bordered(inst, &output_pos, &nu);
  Permutation perm(a.rows());
  factor::PivotTrace trace = factor::eliminate_steps(
      a, factor::PivotStrategy::kMinimalSwap, a.rows(), &perm, checks);
  SimulationResult res;
  res.order = a.rows();
  const T& out = a.get(output_pos, output_pos);
  res.decoded_entry = to_double(out);
  // Find the pivot event for the output column.
  for (const auto& e : trace.events()) {
    if (e.column != output_pos) continue;
    if (e.action == factor::PivotAction::kSkip) break;  // cannot happen in
                                                        // a nonsingular run
    if (e.pivot_row >= nu) {
      res.value = false;  // borrowed pivot <=> A_C column was zero
      res.ok = true;
    } else if (out == T(1)) {
      res.value = true;
      res.ok = true;
    }
    break;
  }
  return res;
}

}  // namespace pfact::core
