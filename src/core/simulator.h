#pragma once
// End-to-end drivers: circuit -> A_C -> run the factorization -> decode the
// simulated output from the matrix. These are the executable forms of the
// paper's Theorem 3.1 (GEM/GEMS on general matrices) and Corollary 3.2
// (GEM on nonsingular matrices).
//
// These drivers report a bare ok/value pair; robustness/guarded_run.h wraps
// the same constructions with budgets, fault classification, and a
// cross-check certificate, returning a structured RunReport. Both accept an
// optional factor::EliminationChecks so callers can impose step/deadline
// budgets and the reduction-mode pivot invariant on the elimination.

#include <cstddef>

#include "circuit/circuit.h"
#include "core/assembler.h"
#include "core/bordering.h"
#include "factor/gaussian.h"

namespace pfact::core {

struct SimulationResult {
  bool value = false;   // decoded circuit output
  bool ok = false;      // decode was structurally clean (diagonal was an
                        // exact 0/1 and, for bordered runs, the pivot side
                        // was consistent)
  std::size_t order = 0;  // nu — order of the simulated matrix
  double decoded_entry = 0.0;
};

// Theorem 3.1: runs GEM (kMinimalSwap) or GEMS (kMinimalShift) on A_C and
// reads the encoding of C(x) off the bottom-right entry. The scalar field T
// must represent small integers exactly (double, Rational, SoftFloat<P>=24+).
template <class T>
SimulationResult simulate_gem(const circuit::CvpInstance& inst,
                              factor::PivotStrategy strategy,
                              const factor::EliminationChecks& checks = {}) {
  GemReduction red = build_gem_reduction(inst);
  Matrix<T> a = red.matrix.template cast<T>();
  factor::eliminate_steps(a, strategy, a.rows(), nullptr, checks);
  SimulationResult res;
  res.order = a.rows();
  const T& out = a(red.output_pos, red.output_pos);
  res.decoded_entry = to_double(out);
  if (out == T(1)) {
    res.value = true;
    res.ok = true;
  } else if (is_zero(out)) {
    res.value = false;
    res.ok = true;
  }
  return res;
}

// Corollary 3.2: nonsingular variant. Builds A'_C = [[A_C, E], [E, 0]]
// (det = +/-1) and runs GEM. The simulated output still appears at position
// (nu, nu) of the embedded A_C; when the circuit output is False the pivot
// for that column comes from the bordering half (the column is zero within
// A_C), which the decode recognizes via the pivot trace.
template <class T>
SimulationResult simulate_gem_nonsingular(
    const circuit::CvpInstance& inst,
    const factor::EliminationChecks& checks = {}) {
  GemReduction red = build_gem_reduction(inst);
  Matrix<T> a = border_nonsingular(red.matrix.template cast<T>());
  Permutation perm(a.rows());
  factor::PivotTrace trace = factor::eliminate_steps(
      a, factor::PivotStrategy::kMinimalSwap, a.rows(), &perm, checks);
  SimulationResult res;
  res.order = a.rows();
  const std::size_t nu = red.matrix.rows();
  const T& out = a(red.output_pos, red.output_pos);
  res.decoded_entry = to_double(out);
  // Find the pivot event for the output column.
  for (const auto& e : trace.events()) {
    if (e.column != red.output_pos) continue;
    if (e.action == factor::PivotAction::kSkip) break;  // cannot happen in
                                                        // a nonsingular run
    if (e.pivot_row >= nu) {
      res.value = false;  // borrowed pivot <=> A_C column was zero
      res.ok = true;
    } else if (out == T(1)) {
      res.value = true;
      res.ok = true;
    }
    break;
  }
  return res;
}

}  // namespace pfact::core
