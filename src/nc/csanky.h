#pragma once
// Csanky-style fast parallel linear algebra [3]: determinant, characteristic
// polynomial and inverse through the Faddeev–Le Verrier recurrence
//
//     B_1 = A,  c_1 = -tr(B_1)
//     B_{k+1} = A (B_k + c_k I),  c_{k+1} = -tr(B_{k+1}) / (k+1)
//     det A = (-1)^n c_n,   A^{-1} = -(B_{n-1} + c_{n-1} I) / c_n.
//
// This is the archetypal "arithmetic NC" solver the paper's introduction
// contrasts with the stable sequential algorithms: over exact arithmetic it
// is a correct NC-style algorithm; over floating point it is *spectacularly
// unstable* (divisions by k! -scaled quantities), which is exactly the
// accuracy/parallelism tradeoff of [4] that the benchmarks quantify.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "matrix/matrix.h"
#include "numeric/field.h"

namespace pfact::nc {

template <class T>
struct CsankyResult {
  T det = T(0);
  std::vector<T> charpoly;  // c_1..c_n (coefficients of the recurrence)
  Matrix<T> inverse;        // valid iff invertible
  bool invertible = false;
};

template <class T>
CsankyResult<T> csanky(const Matrix<T>& a) {
  if (!a.square()) throw std::invalid_argument("csanky: non-square");
  const std::size_t n = a.rows();
  CsankyResult<T> res;
  if (n == 0) {
    res.det = T(1);
    res.invertible = true;
    res.inverse = a;
    return res;
  }
  auto trace = [&](const Matrix<T>& m) {
    T t = T(0);
    for (std::size_t i = 0; i < n; ++i) t += m(i, i);
    return t;
  };
  // Invariant: at the top of iteration k, shifted == B_{k-1} + c_{k-1} I
  // (with B_0 + c_0 I == I by convention).
  Matrix<T> shifted = Matrix<T>::identity(n);
  Matrix<T> b(n, n);
  std::vector<T> c(n);
  for (std::size_t k = 1; k <= n; ++k) {
    b = a * shifted;  // B_k
    c[k - 1] = -trace(b) / T(static_cast<long long>(k));
    if (k < n) {
      shifted = b;
      for (std::size_t i = 0; i < n; ++i) shifted(i, i) += c[k - 1];
    }
  }
  res.charpoly = c;
  T cn = c[n - 1];
  res.det = (n % 2 == 0) ? cn : -cn;
  if (!is_zero(cn)) {
    res.invertible = true;
    // A^{-1} = -(B_{n-1} + c_{n-1} I) / c_n, and `shifted` holds exactly
    // B_{n-1} + c_{n-1} I after the loop.
    res.inverse = (T(-1) / cn) * shifted;
  }
  return res;
}

// Solve A x = b through the Csanky inverse — the "fast parallel solver, not
// based on factorizations" the paper contrasts with GE/QR.
template <class T>
std::vector<T> csanky_solve(const Matrix<T>& a, const std::vector<T>& rhs) {
  CsankyResult<T> r = csanky(a);
  if (!r.invertible) throw std::domain_error("csanky_solve: singular");
  std::vector<T> x(a.rows(), T(0));
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      x[i] += r.inverse(i, j) * rhs[j];
  return x;
}

}  // namespace pfact::nc
