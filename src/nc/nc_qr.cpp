#include "nc/nc_qr.h"

#include "nc/lfmis.h"

namespace pfact::nc {

QrPiResult qr_pi_permutation(const Matrix<numeric::Rational>& a) {
  QrPiResult res;
  // LFMIS of the columns == LFMIS of the rows of A^T.
  std::vector<std::size_t> sel = lfmis_rows(a.transposed());
  res.rank = sel.size();
  std::vector<char> chosen(a.cols(), 0);
  for (std::size_t c : sel) chosen[c] = 1;
  res.column_order = sel;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    if (!chosen[c]) res.column_order.push_back(c);
  }
  return res;
}

}  // namespace pfact::nc
