#include "nc/lfmis.h"

#include "nc/bareiss.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace pfact::nc {

std::vector<std::size_t> prefix_row_ranks(
    const Matrix<numeric::Rational>& a) {
  std::vector<std::size_t> ranks(a.rows());
  par::parallel_for(0, a.rows(), [&](std::size_t i) {
    PFACT_SPAN("lfmis.rank");
    PFACT_COUNT(kRankQueries);
    ranks[i] = rank_exact(a.submatrix(0, 0, i + 1, a.cols()));
  });
  return ranks;
}

std::vector<std::size_t> lfmis_rows(const Matrix<numeric::Rational>& a) {
  std::vector<std::size_t> ranks = prefix_row_ranks(a);
  std::vector<std::size_t> out;
  std::size_t prev = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    if (ranks[i] > prev) out.push_back(i);
    prev = ranks[i];
  }
  return out;
}

}  // namespace pfact::nc
