#pragma once
// Lexicographically First Maximal Independent Subset of rows (LFMIS) —
// the combinatorial core of the NC upper bounds in Theorem 3.3 and of
// Eberly's NC PLU algorithm [5], via the rank-based characterization of
// Borodin / von zur Gathen / Hopcroft [2]:
//
//     row i is in the LFMIS  <=>  rank(rows 0..i) > rank(rows 0..i-1).
//
// All prefix ranks are independent rank computations, evaluated here over a
// thread pool (each rank is itself NC by [2]; the prefix scan gives the NC^2
// bound the paper cites).

#include <cstddef>
#include <vector>

#include "matrix/matrix.h"
#include "numeric/rational.h"

namespace pfact::nc {

// Indices (increasing) of the LFMIS of the rows of `a`.
std::vector<std::size_t> lfmis_rows(const Matrix<numeric::Rational>& a);

// Prefix ranks: result[i] = rank of rows 0..i (all computed concurrently).
std::vector<std::size_t> prefix_row_ranks(const Matrix<numeric::Rational>& a);

}  // namespace pfact::nc
