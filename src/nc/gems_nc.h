#pragma once
// Theorem 3.3: computing the PLU factorization returned by GEMS on a
// NONSINGULAR matrix is in arithmetic NC^2.
//
// Following the paper's proof: let A_i be the first i columns of A and S_i
// the index set of the LFMIS of the rows of A_i. All S_i are computable in
// NC^2; |S_i| = i, S_i grows by exactly one index j_{i} per step, and
// P = (e_{j_1} | ... | e_{j_n}) is exactly the row permutation GEMS selects
// (minimal pivoting takes the lowest-indexed usable row — the
// lexicographically-first matroid choice). Once P is known, P^T A is
// strongly nonsingular along the GEMS pivot order and its unique LU
// factorization is computable by known NC algorithms ([13], [15]); here we
// evaluate it with plain (pivot-free) elimination over exact arithmetic.

#include <cstddef>
#include <vector>

#include "factor/gaussian.h"
#include "matrix/matrix.h"
#include "numeric/rational.h"

namespace pfact::nc {

struct GemsNcResult {
  Permutation row_perm;          // position i <- original row j_{i+1}
  Matrix<numeric::Rational> l;   // unit lower triangular
  Matrix<numeric::Rational> u;   // upper triangular
  bool ok = false;               // false iff input was singular
  // Instrumentation: how many independent rank computations were issued
  // (the parallel work of the permutation phase).
  std::size_t rank_queries = 0;
};

// Computes the GEMS permutation via prefix LFMIS (the NC route) and the LU
// factors of P^T A via pivot-free elimination. Input must be square and
// nonsingular (else ok = false).
GemsNcResult gems_nc_factor(const Matrix<numeric::Rational>& a);

// Just the permutation phase (the interesting NC part): j_1 .. j_n.
std::vector<std::size_t> gems_nc_permutation(
    const Matrix<numeric::Rational>& a);

}  // namespace pfact::nc
