#pragma once
// The paper's introduction, NC upper bounds 2 and 4:
//
//  * "QR decomposition is in arithmetic NC for matrices with full column
//    rank, since it easily reduces to LU decomposition of strongly
//    nonsingular matrices [13]":  G = A^T A is symmetric positive definite
//    (strongly nonsingular), G = L D L^T is NC-computable, and
//    R = D^{1/2} L^T,  Q = A R^{-1}  gives A = QR. Implemented here with
//    the same exact/floating field-generic elimination.
//
//  * "QRPi factorization of an arbitrary matrix A is in arithmetic NC [5]:
//    a permutation Pi such that the leftmost n x r submatrix of A Pi has
//    full column rank, r = rank(A), can be found by computing LFMIS of sets
//    of (column) vectors": implemented via exact prefix-rank LFMIS on the
//    columns.
//
// Both are *fast parallel but numerically fragile* routes (the Gram product
// squares the condition number) — they belong to the "positive known
// results" the paper contrasts with the stable P-complete algorithms.

#include <cstddef>
#include <vector>

#include "matrix/matrix.h"
#include "numeric/rational.h"

namespace pfact::nc {

template <class T>
struct NcQrResult {
  Matrix<T> q;
  Matrix<T> r;
  bool ok = false;  // false iff A did not have full column rank
};

// QR via the Gram-matrix route (needs sqrt: double/SoftFloat fields).
// A: m x n with full column rank; returns A = Q R with R upper triangular
// with positive diagonal and Q^T Q = I.
template <class T>
NcQrResult<T> qr_via_gram(const Matrix<T>& a) {
  NcQrResult<T> res;
  const std::size_t n = a.cols();
  Matrix<T> g = a.transposed() * a;  // SPD iff full column rank
  // Cholesky-like LDL^T by plain (pivot-free) elimination: G strongly
  // nonsingular => never fails; each step is a rank-1 update (NC-friendly:
  // the paper's references evaluate it by fast inversion instead; the
  // factor itself is what matters here).
  Matrix<T> u = g;
  for (std::size_t k = 0; k < n; ++k) {
    if (!(to_double(u(k, k)) > 0.0)) return res;  // rank deficient
    for (std::size_t i = k + 1; i < n; ++i) {
      T f = u(i, k) / u(k, k);
      for (std::size_t j = k; j < n; ++j) u(i, j) -= f * u(k, j);
    }
  }
  // R = D^{1/2} L^T: scale row k of the remaining upper triangle by
  // 1/sqrt(d_k) — u currently holds D L^T in its upper part.
  Matrix<T> r(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    T s = field_sqrt(u(k, k));
    for (std::size_t j = k; j < n; ++j) r(k, j) = u(k, j) / s;
  }
  // Q = A R^{-1} by back-substitution on columns.
  Matrix<T> q(a.rows(), n);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      T acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= q(i, k) * r(k, j);
      q(i, j) = acc / r(j, j);
    }
  }
  res.q = std::move(q);
  res.r = std::move(r);
  res.ok = true;
  return res;
}

// Column permutation Pi such that the leftmost rank(A) columns of A Pi are
// independent — the lexicographically first such set (Eberly's route to
// QRPi). Returns the column order (selected independent columns first, in
// index order, then the rest) and the rank.
struct QrPiResult {
  std::vector<std::size_t> column_order;
  std::size_t rank = 0;
};

QrPiResult qr_pi_permutation(const Matrix<numeric::Rational>& a);

}  // namespace pfact::nc
