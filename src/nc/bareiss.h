#pragma once
// Bareiss fraction-free elimination: exact determinant and rank for integer
// matrices with polynomially bounded entry growth (entries stay minors of
// the input). This is the classic tool behind the "arithmetic NC" upper
// bounds the paper quotes ([2], [13]): determinants/ranks are NC-computable,
// and our LFMIS and GEMS-NC implementations are built on exact ranks.

#include <cstddef>
#include <vector>

#include "matrix/matrix.h"
#include "numeric/bigint.h"
#include "numeric/rational.h"

namespace pfact::nc {

struct BareissResult {
  numeric::BigInt det;   // determinant (0 when rank-deficient or non-square)
  std::size_t rank = 0;
  bool row_swaps_odd = false;
};

// Runs fraction-free elimination on an integer matrix. Column-deficient
// columns are skipped (rank deficiency); the division step is exact by the
// Bareiss identity (every intermediate entry is a minor of the input).
inline BareissResult bareiss_eliminate(Matrix<numeric::BigInt> a) {
  using numeric::BigInt;
  BareissResult res;
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();
  BigInt prev(1);
  std::size_t r = 0;  // current elimination row
  bool sign_flip = false;
  for (std::size_t c = 0; c < m && r < n; ++c) {
    // Find a pivot in column c at or below row r.
    std::size_t piv = r;
    while (piv < n && a(piv, c).is_zero()) ++piv;
    if (piv == n) continue;  // zero column: rank deficiency
    if (piv != r) {
      a.swap_rows(piv, r);
      sign_flip = !sign_flip;
    }
    for (std::size_t i = r + 1; i < n; ++i) {
      for (std::size_t j = c + 1; j < m; ++j) {
        a(i, j) = (a(r, c) * a(i, j) - a(i, c) * a(r, j)) / prev;
      }
      a(i, c) = BigInt(0);
    }
    prev = a(r, c);
    ++r;
  }
  res.rank = r;
  res.row_swaps_odd = sign_flip;
  if (a.square() && r == n) {
    res.det = sign_flip ? -prev : prev;
  }
  return res;
}

// Exact determinant of an integer matrix via Bareiss.
inline numeric::BigInt bareiss_det(const Matrix<numeric::BigInt>& a) {
  return bareiss_eliminate(a).det;
}

// Exact rank of a rational matrix: clear denominators per row (rank is
// invariant under row scaling), then Bareiss.
inline std::size_t rank_exact(const Matrix<numeric::Rational>& a) {
  using numeric::BigInt;
  Matrix<BigInt> m(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    BigInt lcm(1);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const BigInt& d = a(i, j).den();
      lcm = lcm / BigInt::gcd(lcm, d) * d;
    }
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m(i, j) = a(i, j).num() * (lcm / a(i, j).den());
    }
  }
  return bareiss_eliminate(std::move(m)).rank;
}

}  // namespace pfact::nc
