#include "nc/gems_nc.h"

#include <stdexcept>

#include "nc/lfmis.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace pfact::nc {

std::vector<std::size_t> gems_nc_permutation(
    const Matrix<numeric::Rational>& a) {
  const std::size_t n = a.rows();
  // S_i = LFMIS of the rows of A_i (first i columns); all n instances run
  // concurrently. membership[i][r] = r in S_{i+1}.
  std::vector<std::vector<std::size_t>> sets(n);
  {
    PFACT_SPAN("gems_nc.lfmis_sweep");
    par::parallel_for(0, n, [&](std::size_t i) {
      sets[i] = lfmis_rows(a.submatrix(0, 0, n, i + 1));
    });
  }
  // j_{i+1} = the unique element of S_{i+1} \ S_i.
  std::vector<std::size_t> j(n);
  std::vector<char> in_prev(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (sets[i].size() != i + 1) {
      throw std::domain_error(
          "gems_nc_permutation: input matrix is singular");
    }
    bool found = false;
    for (std::size_t r : sets[i]) {
      if (!in_prev[r]) {
        j[i] = r;
        found = true;
      }
    }
    if (!found) throw std::logic_error("gems_nc: S_i did not grow");
    std::fill(in_prev.begin(), in_prev.end(), 0);
    for (std::size_t r : sets[i]) in_prev[r] = 1;
  }
  return j;
}

GemsNcResult gems_nc_factor(const Matrix<numeric::Rational>& a) {
  GemsNcResult res;
  if (!a.square()) throw std::invalid_argument("gems_nc_factor: non-square");
  std::vector<std::size_t> j;
  try {
    j = gems_nc_permutation(a);
  } catch (const std::domain_error&) {
    return res;  // singular input: ok stays false
  }
  res.rank_queries = a.rows() * a.rows();
  res.row_perm = Permutation(j);
  Matrix<numeric::Rational> pa = res.row_perm.apply_rows(a);
  auto f = factor::ge(pa);  // plain GE: guaranteed not to fail by Thm 3.3
  if (!f.ok) throw std::logic_error("gems_nc_factor: pivot-free GE failed");
  res.l = std::move(f.l);
  res.u = std::move(f.u);
  res.ok = true;
  return res;
}

}  // namespace pfact::nc
