#pragma once
// A software model of fixed-size binary floating point arithmetic.
//
// Section 4 of the paper proves GQR P-complete "under a fixed size floating
// point model of arithmetic" and its construction leans on two properties:
//
//   1. fl(a + b) = a   whenever |b| < eps * |a|   (sufficiently small addends
//      are absorbed by round-to-nearest),
//   2. |x| < omega  =>  x is a machine zero        (underflow flushes),
//
// where eps is the roundoff unit and omega the smallest representable
// magnitude.  SoftFloat<P, Emin, Emax> realizes exactly this model with a
// P-bit significand, round-to-nearest-even, flush-to-zero below 2^Emin and
// saturation-to-error above 2^Emax.  P=53 reproduces IEEE double (modulo
// denormals, which the paper's model does not have); small P lets tests and
// benches sweep the precision axis cheaply.
//
// Representation: magnitude = mant * 2^(exp - (P-1)) with mant in
// [2^(P-1), 2^P) for nonzero values, i.e. `exp` is the exponent of the MSB.

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/counters.h"

namespace pfact::numeric {

// Rounding mode applied by every SoftFloat operation on the current thread.
// kNearestEven is the model the paper's Section 4 analysis assumes; the
// other modes exist so the robustness layer can *inject* a rounding-mode
// slip (a classic silent-corruption scenario in real FP stacks) and verify
// it is detected downstream. Thread-local so concurrent guarded runs do not
// perturb each other.
enum class SoftFloatRounding {
  kNearestEven,   // IEEE round-to-nearest, ties to even (default)
  kTowardZero,    // truncate all dropped bits
  kAwayFromZero,  // round up whenever any dropped bit is set
};

inline SoftFloatRounding& softfloat_rounding() {
  thread_local SoftFloatRounding mode = SoftFloatRounding::kNearestEven;
  return mode;
}

// RAII scope for a rounding-mode override; restores the prior mode even if
// the guarded run exits by exception.
class ScopedSoftFloatRounding {
 public:
  explicit ScopedSoftFloatRounding(SoftFloatRounding mode)
      : prev_(softfloat_rounding()) {
    softfloat_rounding() = mode;
  }
  ~ScopedSoftFloatRounding() { softfloat_rounding() = prev_; }
  ScopedSoftFloatRounding(const ScopedSoftFloatRounding&) = delete;
  ScopedSoftFloatRounding& operator=(const ScopedSoftFloatRounding&) = delete;

 private:
  SoftFloatRounding prev_;
};

template <int P, int Emin = -1022, int Emax = 1023>
class SoftFloat {
  static_assert(P >= 2 && P <= 56, "significand width out of range");
  static_assert(Emin < 0 && Emax > 0 && Emin < Emax);

 public:
  constexpr SoftFloat() = default;
  SoftFloat(double d) { *this = from_double(d); }  // NOLINT: implicit for
                                                   // numeric-literal init.

  static constexpr int precision() { return P; }
  // Roundoff unit: half ulp of 1.0 under round-to-nearest.
  static double eps() { return std::ldexp(1.0, -P); }
  // Smallest representable magnitude (the paper's omega).
  static double omega() { return std::ldexp(1.0, Emin); }

  static SoftFloat from_double(double d) {
    if (d != d) throw std::domain_error("SoftFloat: NaN");
    if (std::isinf(d)) throw std::overflow_error("SoftFloat: infinite");
    if (d == 0.0) return SoftFloat{};
    int e = 0;
    double m = std::frexp(std::fabs(d), &e);  // |d| = m * 2^e, m in [0.5,1)
    auto mant = static_cast<std::uint64_t>(std::ldexp(m, 53));
    return make(d < 0 ? -1 : 1, mant, e - 53, false);
  }

  double to_double() const {
    if (is_zero()) return 0.0;
    return sign_ * std::ldexp(static_cast<double>(mant_), exp_ - (P - 1));
  }

  bool is_zero() const { return mant_ == 0; }
  int signum() const { return mant_ == 0 ? 0 : sign_; }

  SoftFloat operator-() const {
    SoftFloat out = *this;
    out.sign_ = -out.sign_;
    return out;
  }

  SoftFloat abs() const {
    SoftFloat out = *this;
    out.sign_ = 1;
    return out;
  }

  friend SoftFloat operator+(const SoftFloat& a, const SoftFloat& b) {
    PFACT_COUNT(kSoftFloatAdds);
    if (a.is_zero()) return b;
    if (b.is_zero()) return a;
    const SoftFloat& big = a.cmp_mag(b) >= 0 ? a : b;
    const SoftFloat& sml = a.cmp_mag(b) >= 0 ? b : a;
    int gap = big.exp_ - sml.exp_;
    if (gap > P + 3) return big;  // property 1: the small addend is absorbed
    // Align both significands to the small operand's LSB scale.
    auto wide_big = static_cast<__int128>(big.mant_) << gap;
    auto wide_sml = static_cast<__int128>(sml.mant_);
    __int128 sum = big.sign_ * wide_big + sml.sign_ * wide_sml;
    if (sum == 0) return SoftFloat{};
    int sign = sum < 0 ? -1 : 1;
    unsigned __int128 mag = sign < 0 ? static_cast<unsigned __int128>(-sum)
                                     : static_cast<unsigned __int128>(sum);
    return make(sign, mag, sml.exp_ - (P - 1), false);
  }

  friend SoftFloat operator-(const SoftFloat& a, const SoftFloat& b) {
    return a + (-b);
  }

  friend SoftFloat operator*(const SoftFloat& a, const SoftFloat& b) {
    PFACT_COUNT(kSoftFloatMuls);
    if (a.is_zero() || b.is_zero()) return SoftFloat{};
    unsigned __int128 prod =
        static_cast<unsigned __int128>(a.mant_) * b.mant_;
    return make(a.sign_ * b.sign_, prod,
                (a.exp_ - (P - 1)) + (b.exp_ - (P - 1)), false);
  }

  friend SoftFloat operator/(const SoftFloat& a, const SoftFloat& b) {
    PFACT_COUNT(kSoftFloatDivs);
    if (b.is_zero()) throw std::domain_error("SoftFloat: division by zero");
    if (a.is_zero()) return SoftFloat{};
    unsigned __int128 num = static_cast<unsigned __int128>(a.mant_)
                            << (P + 3);
    unsigned __int128 q = num / b.mant_;
    bool sticky = (num % b.mant_) != 0;
    int exp_lsb = (a.exp_ - (P - 1)) - (P + 3) - (b.exp_ - (P - 1));
    return make(a.sign_ * b.sign_, q, exp_lsb, sticky);
  }

  SoftFloat& operator+=(const SoftFloat& b) { return *this = *this + b; }
  SoftFloat& operator-=(const SoftFloat& b) { return *this = *this - b; }
  SoftFloat& operator*=(const SoftFloat& b) { return *this = *this * b; }
  SoftFloat& operator/=(const SoftFloat& b) { return *this = *this / b; }

  friend SoftFloat sqrt(const SoftFloat& a) {
    PFACT_COUNT(kSoftFloatSqrts);
    if (a.is_zero()) return SoftFloat{};
    if (a.sign_ < 0) throw std::domain_error("SoftFloat: sqrt of negative");
    // Shift so the wide value has even LSB exponent, then integer sqrt.
    int exp_lsb = a.exp_ - (P - 1);
    int t = P + 3;
    if ((exp_lsb - t) % 2 != 0) ++t;
    unsigned __int128 wide = static_cast<unsigned __int128>(a.mant_) << t;
    unsigned __int128 s = isqrt(wide);
    bool sticky = s * s != wide;
    return make(1, s, (exp_lsb - t) / 2, sticky);
  }

  friend bool operator==(const SoftFloat& a, const SoftFloat& b) {
    if (a.is_zero() && b.is_zero()) return true;
    return a.sign_ == b.sign_ && a.exp_ == b.exp_ && a.mant_ == b.mant_;
  }

  friend std::strong_ordering operator<=>(const SoftFloat& a,
                                          const SoftFloat& b) {
    int sa = a.signum();
    int sb = b.signum();
    if (sa != sb) return sa <=> sb;
    if (sa == 0) return std::strong_ordering::equal;
    int c = a.cmp_mag(b) * sa;
    if (c < 0) return std::strong_ordering::less;
    if (c > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  std::string to_string() const { return std::to_string(to_double()); }

 private:
  // Builds a rounded, normalized value sign * mant * 2^exp_lsb.
  static SoftFloat make(int sign, unsigned __int128 mant, int exp_lsb,
                        bool sticky) {
    if (mant == 0) return SoftFloat{};
    int len = bit_length(mant);
    std::uint64_t m = 0;
    if (len > P) {
      int drop = len - P;
      unsigned __int128 dropped = mant & ((static_cast<unsigned __int128>(1)
                                           << drop) -
                                          1);
      m = static_cast<std::uint64_t>(mant >> drop);
      unsigned __int128 round_bit = static_cast<unsigned __int128>(1)
                                    << (drop - 1);
      bool round = (dropped & round_bit) != 0;
      bool low_sticky = sticky || (dropped & (round_bit - 1)) != 0;
      exp_lsb += drop;
      bool increment = false;
      switch (softfloat_rounding()) {
        case SoftFloatRounding::kNearestEven:
          PFACT_COUNT(kSoftFloatRoundNearestEven);
          increment = round && (low_sticky || (m & 1u));
          break;
        case SoftFloatRounding::kTowardZero:
          PFACT_COUNT(kSoftFloatRoundTowardZero);
          increment = false;
          break;
        case SoftFloatRounding::kAwayFromZero:
          PFACT_COUNT(kSoftFloatRoundAwayFromZero);
          increment = round || low_sticky;
          break;
      }
      if (increment) {
        ++m;
        if (m == (1ull << P)) {  // carry out of the significand
          m >>= 1;
          ++exp_lsb;
        }
      }
    } else {
      m = static_cast<std::uint64_t>(mant) << (P - len);
      exp_lsb -= (P - len);
    }
    int exp_msb = exp_lsb + (P - 1);
    if (exp_msb < Emin) return SoftFloat{};  // property 2: flush to zero
    if (exp_msb > Emax) throw std::overflow_error("SoftFloat: overflow");
    SoftFloat out;
    out.sign_ = static_cast<std::int8_t>(sign);
    out.exp_ = exp_msb;
    out.mant_ = m;
    return out;
  }

  int cmp_mag(const SoftFloat& b) const {
    if (is_zero() || b.is_zero()) return (mant_ != 0) - (b.mant_ != 0);
    if (exp_ != b.exp_) return exp_ < b.exp_ ? -1 : 1;
    if (mant_ != b.mant_) return mant_ < b.mant_ ? -1 : 1;
    return 0;
  }

  static int bit_length(unsigned __int128 v) {
    int n = 0;
    while (v != 0) {
      ++n;
      v >>= 1;
    }
    return n;
  }

  static unsigned __int128 isqrt(unsigned __int128 v) {
    if (v == 0) return 0;
    // Newton iteration seeded from a slight over-estimate built out of a
    // double sqrt of the high bits; from above, Newton decreases monotonely.
    int len = bit_length(v);
    unsigned __int128 x;
    if (len <= 52) {
      x = static_cast<unsigned __int128>(
              std::sqrt(static_cast<double>(static_cast<std::uint64_t>(v)))) +
          2;
    } else {
      int shift = len - 52;
      if (shift % 2 != 0) ++shift;
      double est = std::sqrt(
          static_cast<double>(static_cast<std::uint64_t>(v >> shift)));
      x = (static_cast<unsigned __int128>(est) + 2) << (shift / 2);
    }
    for (int i = 0; i < 64; ++i) {
      unsigned __int128 nx = (x + v / x) >> 1;
      if (nx >= x) break;
      x = nx;
    }
    while (x * x > v) --x;
    while ((x + 1) * (x + 1) <= v) ++x;
    return x;
  }

  std::int8_t sign_ = 1;
  std::int32_t exp_ = 0;
  std::uint64_t mant_ = 0;
};

template <int P, int Emin, int Emax>
SoftFloat<P, Emin, Emax> abs(const SoftFloat<P, Emin, Emax>& a) {
  return a.abs();
}

// The model instances used throughout the experiments.
using Float24 = SoftFloat<24, -126, 127>;   // IEEE single (no denormals)
using Float53 = SoftFloat<53, -1022, 1023>; // IEEE double (no denormals)

}  // namespace pfact::numeric
