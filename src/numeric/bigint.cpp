#include "numeric/bigint.h"

#include <algorithm>
#include <cmath>
#include <compare>
#include <limits>
#include <stdexcept>

#include "obs/counters.h"

namespace pfact::numeric {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}

BigInt::BigInt(long long v) {
  if (v == 0) return;
  sign_ = v > 0 ? 1 : -1;
  // Avoid UB on LLONG_MIN by working in unsigned space.
  std::uint64_t u =
      v > 0 ? static_cast<std::uint64_t>(v)
            : ~static_cast<std::uint64_t>(v) + 1;
  while (u != 0) {
    mag_.push_back(static_cast<std::uint32_t>(u & 0xffffffffu));
    u >>= 32;
  }
}

namespace {
thread_local std::size_t g_bit_limit = 0;  // 0 = unlimited
}  // namespace

std::size_t BigInt::bit_limit() { return g_bit_limit; }
void BigInt::set_bit_limit(std::size_t bits) { g_bit_limit = bits; }

void BigInt::trim() {
  while (!mag_.empty() && mag_.back() == 0) mag_.pop_back();
  if (mag_.empty()) sign_ = 0;
  // trim() normalizes every freshly produced magnitude, so it is the one
  // place that sees each allocation exactly once.
  if (!mag_.empty()) {
    PFACT_COUNT(kBigIntAllocs);
    PFACT_COUNT_N(kBigIntLimbsAllocated, mag_.size());
    PFACT_HISTO(kBigIntLimbs, mag_.size());
  }
  if (g_bit_limit != 0 && !mag_.empty()) {
    // Cheap upper bound first (limb count), exact bit length only near the
    // boundary — trim() runs after every arithmetic operation.
    if (mag_.size() * 32 > g_bit_limit && bit_length() > g_bit_limit) {
      throw std::overflow_error("BigInt: magnitude exceeds the installed " +
                                std::to_string(g_bit_limit) + "-bit limit");
    }
  }
}

int BigInt::compare_mag(const std::vector<std::uint32_t>& a,
                        const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::add_mag(
    const std::vector<std::uint32_t>& a,
    const std::vector<std::uint32_t>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> out(big.size() + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    std::uint64_t s = carry + big[i] + (i < small.size() ? small[i] : 0);
    out[i] = static_cast<std::uint32_t>(s & 0xffffffffu);
    carry = s >> 32;
  }
  out[big.size()] = static_cast<std::uint32_t>(carry);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<std::uint32_t> BigInt::sub_mag(
    const std::vector<std::uint32_t>& a,
    const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out(a.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a[i]) - borrow -
                     (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (d < 0) {
      d += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<std::uint32_t>(d);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<std::uint32_t> BigInt::mul_mag(
    const std::vector<std::uint32_t>& a,
    const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = out[i + j] +
                          static_cast<std::uint64_t>(a[i]) * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.sign_ == 0) return b;
  if (b.sign_ == 0) return a;
  BigInt out;
  if (a.sign_ == b.sign_) {
    out.sign_ = a.sign_;
    out.mag_ = BigInt::add_mag(a.mag_, b.mag_);
  } else {
    int c = BigInt::compare_mag(a.mag_, b.mag_);
    if (c == 0) return BigInt{};
    const BigInt& big = c > 0 ? a : b;
    const BigInt& small = c > 0 ? b : a;
    out.sign_ = big.sign_;
    out.mag_ = BigInt::sub_mag(big.mag_, small.mag_);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  out.sign_ = -out.sign_;
  return out;
}

BigInt BigInt::abs() const {
  BigInt out = *this;
  if (out.sign_ < 0) out.sign_ = 1;
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt operator*(const BigInt& a, const BigInt& b) {
  PFACT_COUNT(kBigIntMuls);
  BigInt out;
  out.sign_ = a.sign_ * b.sign_;
  if (out.sign_ != 0) out.mag_ = BigInt::mul_mag(a.mag_, b.mag_);
  out.trim();
  return out;
}

std::size_t BigInt::bit_length() const {
  if (mag_.empty()) return 0;
  std::uint32_t top = mag_.back();
  std::size_t bits = (mag_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / 32;
  if (limb >= mag_.size()) return false;
  return (mag_[limb] >> (i % 32)) & 1u;
}

bool BigInt::is_odd() const { return !mag_.empty() && (mag_[0] & 1u); }

BigInt BigInt::operator<<(std::size_t bits) const {
  if (sign_ == 0 || bits == 0) return *this;
  std::size_t limbs = bits / 32;
  std::size_t rem = bits % 32;
  BigInt out;
  out.sign_ = sign_;
  out.mag_.assign(mag_.size() + limbs + 1, 0);
  for (std::size_t i = 0; i < mag_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(mag_[i]) << rem;
    out.mag_[i + limbs] |= static_cast<std::uint32_t>(v & 0xffffffffu);
    out.mag_[i + limbs + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  if (sign_ == 0 || bits == 0) return *this;
  std::size_t limbs = bits / 32;
  std::size_t rem = bits % 32;
  if (limbs >= mag_.size()) return BigInt{};
  BigInt out;
  out.sign_ = sign_;
  out.mag_.assign(mag_.size() - limbs, 0);
  for (std::size_t i = 0; i < out.mag_.size(); ++i) {
    std::uint64_t v = mag_[i + limbs] >> rem;
    if (rem != 0 && i + limbs + 1 < mag_.size()) {
      v |= static_cast<std::uint64_t>(mag_[i + limbs + 1]) << (32 - rem);
    }
    out.mag_[i] = static_cast<std::uint32_t>(v & 0xffffffffu);
  }
  out.trim();
  return out;
}

bool operator==(const BigInt& a, const BigInt& b) {
  return a.sign_ == b.sign_ && a.mag_ == b.mag_;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.sign_ != b.sign_)
    return a.sign_ < b.sign_ ? std::strong_ordering::less
                             : std::strong_ordering::greater;
  int c = BigInt::compare_mag(a.mag_, b.mag_) * (a.sign_ == 0 ? 0 : a.sign_);
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

void BigInt::divmod(const BigInt& a, const BigInt& b, BigInt& quot,
                    BigInt& rem) {
  if (b.sign_ == 0) throw std::domain_error("BigInt: division by zero");
  PFACT_COUNT(kBigIntDivs);
  if (compare_mag(a.mag_, b.mag_) < 0) {
    quot = BigInt{};
    rem = a;
    return;
  }
  // Binary long division on magnitudes. O(n * bits) limb work: adequate for
  // the entry sizes arising in exact elimination of gadget matrices.
  BigInt r;
  BigInt q;
  std::size_t n = a.bit_length();
  q.mag_.assign((n + 31) / 32, 0);
  for (std::size_t i = n; i-- > 0;) {
    r = r << 1;
    if (a.bit(i)) {
      if (r.mag_.empty()) {
        r.mag_.push_back(1);
        r.sign_ = 1;
      } else {
        r.mag_[0] |= 1u;
      }
    }
    if (r.sign_ != 0 && compare_mag(r.mag_, b.mag_) >= 0) {
      r.mag_ = sub_mag(r.mag_, b.mag_);
      r.trim();
      q.mag_[i / 32] |= (1u << (i % 32));
    }
  }
  q.sign_ = 1;
  q.trim();
  quot = q;
  rem = r;
  // Fix signs: truncated division, remainder takes dividend's sign.
  quot.sign_ = quot.mag_.empty() ? 0 : a.sign_ * b.sign_;
  rem.sign_ = rem.mag_.empty() ? 0 : a.sign_;
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  return r;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.sign_ = a.mag_.empty() ? 0 : 1;
  b.sign_ = b.mag_.empty() ? 0 : 1;
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  // Binary GCD: only shifts and subtractions.
  std::size_t shift = 0;
  while (!a.is_odd() && !b.is_odd()) {
    a = a >> 1;
    b = b >> 1;
    ++shift;
  }
  while (!a.is_odd()) a = a >> 1;
  while (!b.is_zero()) {
    while (!b.is_odd()) b = b >> 1;
    if (a > b) std::swap(a, b);
    b = b - a;
  }
  return a << shift;
}

BigInt BigInt::pow(const BigInt& base, unsigned exp) {
  BigInt result = 1;
  BigInt acc = base;
  while (exp != 0) {
    if (exp & 1u) result = result * acc;
    acc = acc * acc;
    exp >>= 1;
  }
  return result;
}

BigInt BigInt::from_string(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BigInt: empty string");
  int sign = 1;
  std::size_t i = 0;
  if (s[0] == '+' || s[0] == '-') {
    sign = s[0] == '-' ? -1 : 1;
    i = 1;
  }
  if (i == s.size()) throw std::invalid_argument("BigInt: no digits");
  BigInt out;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9')
      throw std::invalid_argument("BigInt: bad digit");
    out = out * BigInt(10) + BigInt(s[i] - '0');
  }
  if (sign < 0) out = -out;
  return out;
}

std::string BigInt::to_string() const {
  if (sign_ == 0) return "0";
  std::vector<std::uint32_t> m = mag_;
  std::string digits;
  while (!m.empty()) {
    // Divide the magnitude by 10^9, collecting the remainder.
    std::uint64_t rem = 0;
    for (std::size_t i = m.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | m[i];
      m[i] = static_cast<std::uint32_t>(cur / 1000000000ull);
      rem = cur % 1000000000ull;
    }
    while (!m.empty() && m.back() == 0) m.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (sign_ < 0) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigInt::to_double() const {
  if (sign_ == 0) return 0.0;
  std::size_t n = bit_length();
  if (n <= 63) {
    std::uint64_t v = 0;
    for (std::size_t i = mag_.size(); i-- > 0;) v = (v << 32) | mag_[i];
    return sign_ * static_cast<double>(v);
  }
  // Take the top 64 bits and scale.
  BigInt top = *this >> (n - 64);
  std::uint64_t v = 0;
  for (std::size_t i = top.mag_.size(); i-- > 0;) v = (v << 32) | top.mag_[i];
  double d = std::ldexp(static_cast<double>(v),
                        static_cast<int>(n) - 64);
  return sign_ * d;
}

bool BigInt::fits_int64() const {
  if (bit_length() <= 63) return true;
  // A 64-bit magnitude fits only as -2^63.
  return sign_ < 0 && mag_.size() == 2 && mag_[0] == 0 &&
         mag_[1] == 0x80000000u;
}

std::int64_t BigInt::to_int64() const {
  if (sign_ == 0) return 0;
  if (!fits_int64()) throw std::overflow_error("BigInt: too large");
  if (bit_length() == 64) return std::numeric_limits<std::int64_t>::min();
  std::uint64_t v = 0;
  for (std::size_t i = mag_.size(); i-- > 0;) v = (v << 32) | mag_[i];
  return sign_ * static_cast<std::int64_t>(v);
}

}  // namespace pfact::numeric
