#pragma once
// Arbitrary-precision signed integer.
//
// This is the exact-arithmetic substrate used to verify the paper's gadget
// identities (Theorems 3.1-3.4 are statements about exact elimination), for
// fraction-free Bareiss elimination, and as the numerator/denominator type of
// pfact::numeric::Rational.
//
// Representation: sign-magnitude with little-endian base-2^32 limbs.
// The magnitude never has trailing zero limbs; zero has sign 0 and no limbs.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pfact::numeric {

class BigInt {
 public:
  // --- growth guard ---------------------------------------------------------
  // Exact-arithmetic eliminations (Bareiss, Csanky-over-rationals, gadget
  // verification) have bounded coefficient growth on well-formed inputs;
  // corrupted inputs can blow entries up exponentially and turn a run into a
  // memory bomb long before any wall-clock deadline fires. When a nonzero
  // thread-local bit limit is installed, any arithmetic result whose
  // magnitude exceeds the limit throws std::overflow_error at normalization
  // time — the robustness layer classifies this as kNumericOverflow.
  static std::size_t bit_limit();               // 0 = unlimited (default)
  static void set_bit_limit(std::size_t bits);  // thread-local

  // RAII scope for a temporary bit limit (exception-safe restore).
  class BitLimitScope {
   public:
    explicit BitLimitScope(std::size_t bits) : prev_(bit_limit()) {
      set_bit_limit(bits);
    }
    ~BitLimitScope() { set_bit_limit(prev_); }
    BitLimitScope(const BitLimitScope&) = delete;
    BitLimitScope& operator=(const BitLimitScope&) = delete;

   private:
    std::size_t prev_;
  };

 public:
  BigInt() = default;
  BigInt(long long v);  // NOLINT(google-explicit-constructor): int literals
                        // must convert implicitly for Matrix<BigInt> init.

  // Parses an optionally signed decimal string. Throws std::invalid_argument
  // on malformed input.
  static BigInt from_string(std::string_view s);

  std::string to_string() const;

  bool is_zero() const { return sign_ == 0; }
  bool is_negative() const { return sign_ < 0; }
  int signum() const { return sign_; }

  // Number of bits in the magnitude (0 for zero).
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;
  bool is_odd() const;

  BigInt operator-() const;
  BigInt abs() const;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  // Truncated division (C++ semantics: quotient rounds toward zero).
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);

  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }
  BigInt& operator/=(const BigInt& b) { return *this = *this / b; }
  BigInt& operator%=(const BigInt& b) { return *this = *this % b; }

  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  friend bool operator==(const BigInt& a, const BigInt& b);
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  // Quotient and remainder in one pass; rem has the sign of the dividend.
  // Throws std::domain_error on division by zero.
  static void divmod(const BigInt& a, const BigInt& b, BigInt& quot,
                     BigInt& rem);

  static BigInt gcd(BigInt a, BigInt b);
  static BigInt pow(const BigInt& base, unsigned exp);

  // Nearest double; loses precision beyond 53 bits, saturates to +/-inf.
  double to_double() const;

  // True iff the value fits in a signed 64-bit integer.
  bool fits_int64() const;
  std::int64_t to_int64() const;  // Throws std::overflow_error if too large.

 private:
  static int compare_mag(const std::vector<std::uint32_t>& a,
                         const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  void trim();

  int sign_ = 0;
  std::vector<std::uint32_t> mag_;
};

inline BigInt abs(const BigInt& a) { return a.abs(); }
inline BigInt gcd(const BigInt& a, const BigInt& b) {
  return BigInt::gcd(a, b);
}

}  // namespace pfact::numeric
