#include "numeric/rational.h"

#include <cmath>
#include <stdexcept>

namespace pfact::numeric {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = 1;
    return;
  }
  BigInt g = BigInt::gcd(num_.abs(), den_);
  if (g > BigInt(1)) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Rational Rational::from_double(double d) {
  if (!std::isfinite(d)) throw std::domain_error("Rational: non-finite");
  if (d == 0.0) return Rational();
  int exp = 0;
  double m = std::frexp(d, &exp);  // d = m * 2^exp, |m| in [0.5, 1)
  // Scale the mantissa to an exact 53-bit integer.
  auto mant = static_cast<long long>(std::ldexp(m, 53));
  exp -= 53;
  BigInt num(mant);
  BigInt den(1);
  if (exp >= 0) {
    num = num << static_cast<std::size_t>(exp);
  } else {
    den = den << static_cast<std::size_t>(-exp);
  }
  return Rational(std::move(num), std::move(den));
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::reciprocal() const {
  if (is_zero()) throw std::domain_error("Rational: reciprocal of zero");
  return Rational(den_, num_);
}

Rational Rational::abs() const {
  Rational out = *this;
  out.num_ = out.num_.abs();
  return out;
}

Rational operator+(const Rational& a, const Rational& b) {
  return Rational(a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_);
}

Rational operator-(const Rational& a, const Rational& b) {
  return Rational(a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_);
}

Rational operator*(const Rational& a, const Rational& b) {
  return Rational(a.num_ * b.num_, a.den_ * b.den_);
}

Rational operator/(const Rational& a, const Rational& b) {
  if (b.is_zero()) throw std::domain_error("Rational: division by zero");
  return Rational(a.num_ * b.den_, a.den_ * b.num_);
}

bool operator==(const Rational& a, const Rational& b) {
  return a.num_ == b.num_ && a.den_ == b.den_;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  return (a.num_ * b.den_) <=> (b.num_ * a.den_);
}

double Rational::to_double() const {
  if (num_.is_zero()) return 0.0;
  // Scale so the quotient of doubles stays in range.
  auto nb = static_cast<long>(num_.bit_length());
  auto db = static_cast<long>(den_.bit_length());
  long shift = nb - db;  // result magnitude ~ 2^shift
  // Bring both operands near 2^60 before converting.
  BigInt n = num_;
  BigInt d = den_;
  if (nb > 512) n = n >> static_cast<std::size_t>(nb - 512);
  if (db > 512) d = d >> static_cast<std::size_t>(db - 512);
  double q = n.to_double() / d.to_double();
  long applied = (nb > 512 ? nb - 512 : 0) - (db > 512 ? db - 512 : 0);
  (void)shift;
  return std::ldexp(q, static_cast<int>(applied));
}

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

}  // namespace pfact::numeric
