#pragma once
// Exact rational arithmetic over BigInt.
//
// The P-completeness gadgets of Theorems 3.1-3.4 are verified in this field:
// Gaussian elimination over Rational is the "exact arithmetic model" the
// paper's correctness arguments live in (cf. the rational-model argument for
// Householder QR in [11] cited by the paper).
//
// Invariants: denominator > 0, gcd(|num|, den) == 1, zero is 0/1.

#include <string>

#include "numeric/bigint.h"

namespace pfact::numeric {

class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(long long v) : num_(v), den_(1) {}  // NOLINT: implicit by design
  Rational(BigInt num, BigInt den);

  // Exact conversion: every finite double is a dyadic rational.
  static Rational from_double(double d);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_integer() const { return den_ == BigInt(1); }
  int signum() const { return num_.signum(); }

  Rational operator-() const;
  Rational reciprocal() const;  // Throws std::domain_error on zero.
  Rational abs() const;

  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);

  Rational& operator+=(const Rational& b) { return *this = *this + b; }
  Rational& operator-=(const Rational& b) { return *this = *this - b; }
  Rational& operator*=(const Rational& b) { return *this = *this * b; }
  Rational& operator/=(const Rational& b) { return *this = *this / b; }

  friend bool operator==(const Rational& a, const Rational& b);
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b);

  double to_double() const;
  std::string to_string() const;  // "p/q", or "p" when integral.

 private:
  void normalize();

  BigInt num_;
  BigInt den_;
};

inline Rational abs(const Rational& a) { return a.abs(); }

}  // namespace pfact::numeric
