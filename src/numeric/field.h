#pragma once
// Uniform field interface for the scalar types the factorization algorithms
// are instantiated over: double, long double, Rational, SoftFloat<...>.
//
// The paper's results are statements about the *same* algorithm run over
// different arithmetic models (exact vs fixed-size floating point); keeping
// the algorithms field-generic and switching the scalar is how this repo
// expresses that.

#include <cmath>
#include <string>
#include <type_traits>

#include "numeric/rational.h"
#include "numeric/softfloat.h"

namespace pfact {

// --- is_zero ---------------------------------------------------------------
inline bool is_zero(double x) { return x == 0.0; }
inline bool is_zero(float x) { return x == 0.0f; }
inline bool is_zero(long double x) { return x == 0.0L; }
inline bool is_zero(const numeric::BigInt& x) { return x.is_zero(); }
inline bool is_zero(const numeric::Rational& x) { return x.is_zero(); }
template <int P, int Emin, int Emax>
bool is_zero(const numeric::SoftFloat<P, Emin, Emax>& x) {
  return x.is_zero();
}

// --- field_abs -------------------------------------------------------------
inline double field_abs(double x) { return std::fabs(x); }
inline float field_abs(float x) { return std::fabs(x); }
inline long double field_abs(long double x) { return std::fabs(x); }
inline numeric::BigInt field_abs(const numeric::BigInt& x) { return x.abs(); }
inline numeric::Rational field_abs(const numeric::Rational& x) {
  return x.abs();
}
template <int P, int Emin, int Emax>
numeric::SoftFloat<P, Emin, Emax> field_abs(
    const numeric::SoftFloat<P, Emin, Emax>& x) {
  return x.abs();
}

// --- field_sqrt (only for float-like fields; Givens requires it) -----------
inline double field_sqrt(double x) { return std::sqrt(x); }
inline float field_sqrt(float x) { return std::sqrt(x); }
inline long double field_sqrt(long double x) { return std::sqrt(x); }
template <int P, int Emin, int Emax>
numeric::SoftFloat<P, Emin, Emax> field_sqrt(
    const numeric::SoftFloat<P, Emin, Emax>& x) {
  return sqrt(x);
}

// --- field_finite (NaN/inf detection; exact fields are always finite) ------
inline bool field_finite(double x) { return std::isfinite(x); }
inline bool field_finite(float x) { return std::isfinite(x); }
inline bool field_finite(long double x) { return std::isfinite(x); }
inline bool field_finite(const numeric::BigInt&) { return true; }
inline bool field_finite(const numeric::Rational&) { return true; }
template <int P, int Emin, int Emax>
bool field_finite(const numeric::SoftFloat<P, Emin, Emax>&) {
  return true;  // SoftFloat has no NaN/inf states: it throws at creation
}

// --- to_double (for reporting / decoding boolean encodings) ----------------
inline double to_double(double x) { return x; }
inline double to_double(float x) { return x; }
inline double to_double(long double x) { return static_cast<double>(x); }
inline double to_double(const numeric::BigInt& x) { return x.to_double(); }
inline double to_double(const numeric::Rational& x) { return x.to_double(); }
template <int P, int Emin, int Emax>
double to_double(const numeric::SoftFloat<P, Emin, Emax>& x) {
  return x.to_double();
}

// --- scalar_to_string -------------------------------------------------------
inline std::string scalar_to_string(double x) { return std::to_string(x); }
inline std::string scalar_to_string(float x) { return std::to_string(x); }
inline std::string scalar_to_string(long double x) {
  return std::to_string(x);
}
inline std::string scalar_to_string(const numeric::BigInt& x) {
  return x.to_string();
}
inline std::string scalar_to_string(const numeric::Rational& x) {
  return x.to_string();
}
template <int P, int Emin, int Emax>
std::string scalar_to_string(const numeric::SoftFloat<P, Emin, Emax>& x) {
  return x.to_string();
}

// A field has an exact sqrt usable by Givens rotations?
template <class T>
inline constexpr bool has_sqrt_v =
    !std::is_same_v<T, numeric::Rational> &&
    !std::is_same_v<T, numeric::BigInt>;

// Exact fields admit equality-based verification; float-like fields need
// tolerances.
template <class T>
inline constexpr bool is_exact_field_v =
    std::is_same_v<T, numeric::Rational> ||
    std::is_same_v<T, numeric::BigInt>;

}  // namespace pfact
