#include "analysis/error_analysis.h"

#include <cmath>
#include <limits>

#include "factor/triangular.h"

namespace pfact::analysis {

double inf_norm(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double inf_norm(const Matrix<double>& a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += std::fabs(a(i, j));
    m = std::max(m, s);
  }
  return m;
}

double growth_factor(const Matrix<double>& a, factor::PivotStrategy s) {
  auto f = factor::ge_factor(a, s);
  if (!f.ok) return std::numeric_limits<double>::infinity();
  double amax = a.max_abs();
  if (amax == 0.0) return 0.0;
  return f.u.max_abs() / amax;
}

double relative_residual(const Matrix<double>& a,
                         const std::vector<double>& x,
                         const std::vector<double>& b) {
  auto ax = factor::matvec(a, x);
  double num = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    num = std::max(num, std::fabs(ax[i] - b[i]));
  double den = inf_norm(a) * inf_norm(x) + inf_norm(b);
  return den == 0.0 ? 0.0 : num / den;
}

double solve_backward_error(const Matrix<double>& a,
                            const std::vector<double>& b,
                            factor::PivotStrategy s) {
  auto x = factor::solve_plu(a, b, s);
  return relative_residual(a, x, b);
}

double orthogonality_loss(const Matrix<double>& q) {
  Matrix<double> qtq = q.transposed() * q;
  return max_abs_diff(qtq, Matrix<double>::identity(q.rows()));
}

}  // namespace pfact::analysis
