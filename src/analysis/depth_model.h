#pragma once
// Work/depth accounting for the parallel-complexity claims of Table 1.
//
// The paper's "NC" and "inherently sequential" labels are statements about
// parallel DEPTH: the length of the longest chain of dependent arithmetic
// operations. These helpers compute the structural depth of each algorithm
// family on an n x n input (formulas match the references: [13], [15], [16],
// [3], [5]); measured stage counts (e.g. Givens orderings) come from the
// factorizations themselves.

#include <cstddef>

#include "obs/counters.h"

namespace pfact::analysis {

struct WorkDepth {
  std::size_t work = 0;   // total scalar operations (order of magnitude)
  std::size_t depth = 0;  // critical path length (stages)
};

// Sequential GE/GEP/GEM/GEMS: n-1 dependent elimination stages, each a
// rank-1 update (the pivot decision for stage k depends on stage k-1's
// output — this dependence is exactly what the P-completeness results say
// cannot be shortcut for GEP/GEM/GEMS/GQR).
WorkDepth ge_sequential(std::size_t n);

// Natural-order Givens: n(n-1)/2 dependent rotations.
WorkDepth givens_natural(std::size_t n);

// Sameh-Kuck parallel Givens [16]: 2n-3 stages of disjoint rotations.
WorkDepth givens_sameh_kuck(std::size_t n);

// Csanky / Faddeev-Le Verrier [3]: O(log^2 n) matrix-product depth
// (n matrix products, parallelizable to log n levels of log n -depth
// multiplications via prefix products).
WorkDepth csanky_nc(std::size_t n);

// Eberly-style NC PLU / GEMS-NC (Theorem 3.3): O(n^2) independent rank
// computations, each NC^2; depth O(log^2 n), work O(n^2 * M(n)).
WorkDepth gems_nc(std::size_t n);

// --- Measured counterparts (observability-derived) -------------------------
// The structural formulas above PREDICT; these read what a run actually DID
// from its op-counter delta, so the tests can compare claim against
// measurement. All-zero deltas (PFACT_OBS=OFF builds) yield {0, 0}.

// Elimination engines: work = scalar multiply-subtract operations performed
// (kRowUpdateElems), depth = pivot-decision chain length (kElimSteps —
// the chain Theorems 3.1-3.4 prove incompressible).
WorkDepth elimination_from_counters(const obs::CounterDelta& d);

// Givens engines: work ~ 6 flops per rotated pair entry, approximated by the
// rotation count; depth = parallel stage count when the run was staged
// (Sameh-Kuck), otherwise the sequential rotation count (natural order).
WorkDepth givens_from_counters(const obs::CounterDelta& d);

// Longest chain of non-overlapping spans currently in the trace buffers —
// the measured critical path of the last traced region, in spans. Requires
// tracing to have been enabled (obs::ScopedTracing); 0 otherwise.
std::size_t measured_critical_path();

inline double log2_size(std::size_t n) {
  double l = 0;
  while ((1u << static_cast<unsigned>(l)) < n) ++l;
  return l == 0 ? 1 : l;
}

}  // namespace pfact::analysis
