#include "analysis/depth_model.h"

#include <cmath>

#include "obs/trace.h"

namespace pfact::analysis {

namespace {
std::size_t log2ceil(std::size_t n) {
  std::size_t l = 0;
  std::size_t p = 1;
  while (p < n) {
    p *= 2;
    ++l;
  }
  return l == 0 ? 1 : l;
}
}  // namespace

WorkDepth ge_sequential(std::size_t n) {
  WorkDepth wd;
  wd.work = 2 * n * n * n / 3;
  wd.depth = n == 0 ? 0 : n - 1;
  return wd;
}

WorkDepth givens_natural(std::size_t n) {
  WorkDepth wd;
  wd.work = 3 * n * n * n;  // ~6 flops per rotated pair entry
  wd.depth = n * (n - 1) / 2;
  return wd;
}

WorkDepth givens_sameh_kuck(std::size_t n) {
  WorkDepth wd;
  wd.work = 3 * n * n * n;
  wd.depth = n < 2 ? 0 : 2 * n - 3;
  return wd;
}

WorkDepth csanky_nc(std::size_t n) {
  WorkDepth wd;
  wd.work = n * n * n * n;  // n matrix products
  std::size_t l = log2ceil(n);
  wd.depth = l * l;  // prefix-product tree of log-depth multiplications
  return wd;
}

WorkDepth gems_nc(std::size_t n) {
  WorkDepth wd;
  wd.work = n * n * (n * n * n);  // n^2 rank computations, ~n^3 each
  std::size_t l = log2ceil(n);
  wd.depth = l * l;
  return wd;
}

WorkDepth elimination_from_counters(const obs::CounterDelta& d) {
  WorkDepth wd;
  wd.work = d[obs::Counter::kRowUpdateElems];
  wd.depth = d[obs::Counter::kElimSteps];
  return wd;
}

WorkDepth givens_from_counters(const obs::CounterDelta& d) {
  WorkDepth wd;
  const std::uint64_t rotations = d[obs::Counter::kGivensRotations];
  const std::uint64_t stages = d[obs::Counter::kGivensStages];
  wd.work = static_cast<std::size_t>(6 * rotations);
  wd.depth = static_cast<std::size_t>(stages != 0 ? stages : rotations);
  return wd;
}

std::size_t measured_critical_path() {
  return obs::critical_path_depth(obs::dump_spans());
}

}  // namespace pfact::analysis
