#pragma once
// Numerical-accuracy metrics for the parallelism/accuracy tradeoff
// experiments ([4], and the paper's Section 1/5 framing): growth factors,
// residuals, backward error, and orthogonality loss.

#include <cstddef>
#include <vector>

#include "factor/gaussian.h"
#include "matrix/matrix.h"

namespace pfact::analysis {

// Infinity norm of a vector / matrix row-sum norm.
double inf_norm(const std::vector<double>& v);
double inf_norm(const Matrix<double>& a);

// Element growth factor of an elimination: max |u_ij| / max |a_ij| over the
// course of the factorization (computed from the final U; the classical
// stability proxy for GE variants — GEP bounds it by 2^{n-1}, plain GE and
// minimal pivoting do not bound it at all).
double growth_factor(const Matrix<double>& a, factor::PivotStrategy s);

// Relative residual ||Ax - b||_inf / (||A||_inf ||x||_inf + ||b||_inf) of a
// computed solution: the normwise backward error (Rigal-Gaches).
double relative_residual(const Matrix<double>& a,
                         const std::vector<double>& x,
                         const std::vector<double>& b);

// Solves Ax=b with the given strategy and reports the backward error.
double solve_backward_error(const Matrix<double>& a,
                            const std::vector<double>& b,
                            factor::PivotStrategy s);

// ||Q^T Q - I||_max for an allegedly orthogonal Q.
double orthogonality_loss(const Matrix<double>& q);

}  // namespace pfact::analysis
