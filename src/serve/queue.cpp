#include "serve/queue.h"

#include <utility>

#include "obs/counters.h"
#include "obs/trace.h"
#include "robustness/retry.h"

namespace pfact::serve {

using robustness::CheckpointStore;
using robustness::Diagnostic;
using robustness::FailureKind;
using robustness::ReductionTask;
using robustness::Substrate;

const ServiceResponse& ReductionService::Pending::wait() {
  par::MutexLock lock(mu_);
  while (!done_) lock.wait(done_cv_);
  return response_;
}

const ServiceResponse* ReductionService::Pending::poll_response() {
  par::MutexLock lock(mu_);
  return done_ ? &response_ : nullptr;
}

void ReductionService::Pending::notify_on_done(std::function<void()> fn) {
  bool fire = false;
  {
    par::MutexLock lock(mu_);
    if (done_) {
      fire = true;  // resolved before registration: fire on this thread
    } else {
      notifier_ = std::move(fn);
    }
  }
  if (fire) fn();
}

ReductionService::ReductionService(ServiceOptions options)
    : options_(std::move(options)),
      pool_(options_.pool),
      cache_(options_.cache_capacity) {
  if (options_.dispatchers == 0) options_.dispatchers = 1;
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  dispatchers_.reserve(options_.dispatchers);
  for (std::size_t i = 0; i < options_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatch_loop(); });
  }
}

ReductionService::~ReductionService() {
  {
    par::MutexLock lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
}

void ReductionService::resolve(Pending& pending, ServiceResponse response) {
  std::function<void()> notifier;
  {
    par::MutexLock lock(pending.mu_);
    pending.response_ = std::move(response);
    pending.done_ = true;
    pending.done_cv_.notify_all();
    notifier = std::move(pending.notifier_);
  }
  // Fired outside the lock: the callback may call poll_response().
  if (notifier) notifier();
}

ServiceResponse ReductionService::shed_response(Admission admission,
                                                const char* detail) {
  ServiceResponse resp;
  resp.admission = admission;
  const Diagnostic diag = diagnose_admission(admission);
  resp.report.certified = false;
  resp.report.outcome = robustness::classify_diagnostic(diag);
  resp.report.final_report.diagnostic = diag;
  resp.report.final_report.detail = detail;
  return resp;
}

std::shared_ptr<ReductionService::Pending> ReductionService::submit(
    const ReductionTask& task, const JobOptions& job) {
  auto pending = std::make_shared<Pending>();
  PFACT_COUNT(kServeJobsSubmitted);

  Job queued;
  queued.task = task;
  queued.options = job;
  const auto deadline =
      job.deadline.count() > 0 ? job.deadline : options_.default_deadline;
  if (deadline.count() > 0) {
    queued.deadline = std::chrono::steady_clock::now() + deadline;
  }
  queued.pending = pending;

  {
    par::MutexLock lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      ++stats_.shed_shutdown;
      PFACT_COUNT(kServeJobsShed);
      resolve(*pending, shed_response(Admission::kShedShutdown,
                                      "service is shutting down"));
      return pending;
    }
    if (queue_.size() >= options_.queue_depth) {
      // The load-shedding moment: refuse NOW, classified, rather than grow
      // an unbounded backlog whose answers arrive after anyone cares.
      ++stats_.shed_queue_full;
      PFACT_COUNT(kServeJobsShed);
      resolve(*pending,
              shed_response(Admission::kShedQueueFull,
                            "admission control: queue depth bound reached"));
      return pending;
    }
    queue_.push_back(std::move(queued));
    ++stats_.accepted;
    if (queue_.size() > stats_.peak_queue_depth) {
      stats_.peak_queue_depth = queue_.size();
    }
    PFACT_HISTO(kQueueDepth, queue_.size());
  }
  queue_cv_.notify_one();
  return pending;
}

ServiceResponse ReductionService::run(const ReductionTask& task,
                                      const JobOptions& job) {
  return submit(task, job)->wait();
}

void ReductionService::dispatch_loop() {
  for (;;) {
    Job job;
    bool shed_shutdown = false;
    {
      par::MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) lock.wait(queue_cv_);
      if (queue_.empty()) return;  // stopping_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      // Graceful shutdown: still-queued jobs are resolved, not executed —
      // bounded teardown, and every waiter gets a classified answer.
      if (stopping_) {
        shed_shutdown = true;
        ++stats_.shed_shutdown;
      }
    }
    if (shed_shutdown) {
      PFACT_COUNT(kServeJobsShed);
      resolve(*job.pending, shed_response(Admission::kShedShutdown,
                                          "service is shutting down"));
      continue;
    }
    if (job.deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() >= job.deadline) {
      {
        par::MutexLock lock(mu_);
        ++stats_.shed_deadline;
      }
      PFACT_COUNT(kServeJobsShed);
      resolve(*job.pending,
              shed_response(Admission::kShedDeadline,
                            "deadline expired while queued"));
      continue;
    }
    PFACT_SPAN("serve.queue");
    ServiceResponse resp = execute(job);
    if (resp.from_cache) {
      par::MutexLock lock(mu_);
      ++stats_.served_from_cache;
    }
    resolve(*job.pending, std::move(resp));
  }
}

ServiceResponse ReductionService::execute(const Job& job) {
  ServiceResponse resp;
  resp.admission = Admission::kAccepted;

  const std::vector<Substrate> ladder =
      options_.supervisor.ladder.empty()
          ? robustness::default_ladder(job.task.algorithm)
          : options_.supervisor.ladder;

  // Cache probe, one key per ladder rung: escalation may have certified a
  // previous identical task on a higher rung than the first.
  {
    PFACT_SPAN("serve.cache");
    for (Substrate sub : ladder) {
      if (!robustness::substrate_supported(job.task.algorithm, sub)) continue;
      CacheEntry entry;
      if (cache_.lookup(ResultCache::key_for(job.task, sub), entry) !=
          CacheProbe::kHit) {
        continue;
      }
      // The zero-wrong-answer contract is absolute, so the hit path keeps
      // its own cross-check: the direct evaluation is linear-time, and a
      // cached value that contradicts it is treated as poison (fall
      // through to re-factor; the eventual verified fill overwrites it).
      if (entry.value != job.task.expected()) continue;
      resp.from_cache = true;
      resp.report.certified = true;
      resp.report.value = entry.value;
      resp.report.certified_by = entry.substrate;
      resp.report.outcome = FailureKind::kSuccess;
      resp.report.final_report.diagnostic = Diagnostic::kOk;
      resp.report.final_report.value = entry.value;
      resp.report.final_report.detail = "served from verified result cache";
      return resp;
    }
  }

  // Miss: factor on the warm pool through the supervised retry/escalation
  // loop, with a private checkpoint store so the final verified blob can
  // ride into the cache entry.
  SupervisorOptions so = options_.supervisor;
  CheckpointStore store;
  so.store = &store;
  if (job.options.kill_for_attempt) {
    so.kill_for_attempt = job.options.kill_for_attempt;
  }
  if (job.options.rlimits.address_space_bytes != 0 ||
      job.options.rlimits.cpu_seconds != 0) {
    so.rlimits = job.options.rlimits;
  }
  if (job.options.watchdog.count() > 0) so.watchdog = job.options.watchdog;
  resp.report = supervised_run(pool_, job.task, so);

  if (resp.report.certified) {
    // Fill only after certification (worker cross-check + supervisor
    // re-check): the cache preserves truth, it never creates it.
    CacheEntry entry;
    entry.value = resp.report.value;
    entry.substrate = resp.report.certified_by;
    if (!store.empty()) entry.final_checkpoint = *store.latest();
    PFACT_SPAN("serve.cache");
    cache_.insert(ResultCache::key_for(job.task, resp.report.certified_by),
                  entry);
  }
  return resp;
}

ReductionService::Stats ReductionService::stats() const {
  par::MutexLock lock(mu_);
  return stats_;
}

}  // namespace pfact::serve
