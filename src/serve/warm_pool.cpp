#include "serve/warm_pool.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <utility>

#include "obs/counters.h"
#include "obs/trace.h"
#include "serve/worker.h"

namespace pfact::serve {

namespace {

// Reaps the child, blocking until it is gone. Callers guarantee the child
// is already dead or on an unconditional path to death (EOF on its request
// pipe, or SIGKILL), so this cannot hang.
int reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

// Process-wide registry of every live WarmPool's parent-side pipe fds.
// With two pools in one process (a service pool next to a bench pool), a
// child forked by pool B inherits duplicates of pool A's request-pipe
// write ends; when A later closes them to retire a worker, that worker
// never sees EOF and A's reap blocks forever. Every forked child therefore
// closes ALL registered parent-side fds, not just its own pool's. The
// mutex is held across pipe-creation + fork so a concurrent spawn in
// another pool cannot slip unregistered fds into the child.
par::Mutex g_pool_fds_mu;
std::vector<int>& pool_fds() {
  static std::vector<int> fds;
  return fds;
}

// Caller holds g_pool_fds_mu (spawn_slot keeps it across the fork).
void register_pool_fd(int fd) {
  if (fd >= 0) pool_fds().push_back(fd);
}

void unregister_pool_fd(int fd) {
  par::MutexLock lock(g_pool_fds_mu);
  std::vector<int>& fds = pool_fds();
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i] == fd) {
      fds[i] = fds.back();
      fds.pop_back();
      return;
    }
  }
}

}  // namespace

WarmPool::WarmPool(WarmPoolOptions options) : options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  // Same rationale as WorkerPool: a worker dying mid-conversation turns the
  // request pipe into a broken pipe, and EPIPE — not SIGPIPE — is the
  // classifiable outcome.
  ::signal(SIGPIPE, SIG_IGN);
  par::MutexLock lock(mu_);
  slots_.resize(options_.workers);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    spawn_slot(i);  // best-effort: a failed slot is respawned at first lease
  }
}

WarmPool::~WarmPool() {
  par::MutexLock lock(mu_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive) retire_slot(i);
  }
}

bool WarmPool::spawn_slot(std::size_t idx) {
  Slot& slot = slots_[idx];
  // Held across pipe-creation AND fork: the registry snapshot the child
  // closes must cover every parent-side fd of every pool in the process.
  par::MutexLock fd_lock(g_pool_fds_mu);
  int to[2];    // parent writes requests
  int from[2];  // child writes checkpoints + results
  if (::pipe(to) != 0) {
    PFACT_COUNT(kServeForkFailures);
    return false;
  }
  if (::pipe(from) != 0) {
    ::close(to[0]);
    ::close(to[1]);
    PFACT_COUNT(kServeForkFailures);
    return false;
  }
  set_cloexec(to[0]);
  set_cloexec(to[1]);
  set_cloexec(from[0]);
  set_cloexec(from[1]);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to[0]);
    ::close(to[1]);
    ::close(from[0]);
    ::close(from[1]);
    PFACT_COUNT(kServeForkFailures);
    return false;
  }
  if (pid == 0) {
    // Child. Close every registered parent-side pipe fd first — sibling
    // slots of this pool AND every other live WarmPool in the process: an
    // inherited duplicate of a request-pipe write end would keep that
    // pipe's worker from ever seeing its retirement EOF. Then close our
    // own parent-side ends and enter the job loop.
    for (int fd : pool_fds()) ::close(fd);
    ::close(to[1]);
    ::close(from[0]);
    ::_exit(worker_loop_main(to[0], from[1]));
  }

  // Parent.
  ::close(to[0]);
  ::close(from[1]);
  register_pool_fd(to[1]);
  register_pool_fd(from[0]);
  slot.pid = pid;
  slot.to_wr = to[1];
  slot.from_rd = from[0];
  slot.jobs_done = 0;
  slot.alive = true;
  ++stats_.spawned;
  PFACT_COUNT(kWorkerSpawns);
  return true;
}

void WarmPool::retire_slot(std::size_t idx) {
  Slot& slot = slots_[idx];
  if (!slot.alive) return;
  // Closing the request pipe is the retirement signal: worker_loop_main
  // reads EOF at the next job boundary and exits 0. A child that is instead
  // already dead (death path: the caller SIGKILLed it) reaps just the same.
  if (slot.to_wr >= 0) {
    unregister_pool_fd(slot.to_wr);
    ::close(slot.to_wr);
  }
  if (slot.from_rd >= 0) {
    unregister_pool_fd(slot.from_rd);
    ::close(slot.from_rd);
  }
  slot.to_wr = -1;
  slot.from_rd = -1;
  reap(slot.pid);
  slot.pid = -1;
  slot.alive = false;
}

WarmPool::Stats WarmPool::stats() const {
  par::MutexLock lock(mu_);
  return stats_;
}

std::size_t WarmPool::live_workers() const {
  par::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.alive) ++n;
  }
  return n;
}

WorkerRun WarmPool::run_task(const TaskRequest& request,
                             robustness::CheckpointStore* store,
                             std::chrono::milliseconds watchdog) {
  PFACT_SPAN("serve.warm-worker");
  WorkerRun run;

  // Lease a slot: prefer a free live one, resurrect a dead one otherwise,
  // block until a peer releases one if neither exists.
  std::size_t idx = 0;
  pid_t pid = -1;
  int to_wr = -1;
  int from_rd = -1;
  {
    par::MutexLock lock(mu_);
    for (;;) {
      bool found = false;
      for (std::size_t i = 0; i < slots_.size() && !found; ++i) {
        if (slots_[i].alive && !slots_[i].busy) {
          idx = i;
          found = true;
        }
      }
      for (std::size_t i = 0; i < slots_.size() && !found; ++i) {
        if (!slots_[i].alive && !slots_[i].busy && spawn_slot(i)) {
          idx = i;
          found = true;
        }
      }
      if (found) break;
      bool any_pending = false;
      for (const Slot& s : slots_) any_pending |= s.busy;
      if (!any_pending) {
        // Every slot is dead and none could be respawned: the machine is
        // out of processes. Same classified outcome as a cold fork failure.
        run.exit = WorkerExit::kForkFailure;
        run.detail = "warm pool: no slot could be (re)spawned";
        return run;
      }
      lock.wait(slot_free_);
    }
    Slot& slot = slots_[idx];
    slot.busy = true;
    pid = slot.pid;
    to_wr = slot.to_wr;
    from_rd = slot.from_rd;
    ++stats_.jobs;
  }
  PFACT_COUNT(kServeWarmJobs);

  // Ship the request. The child is already blocked in read_frame, so there
  // is no pre-fork deadlock window here; a child that died between jobs
  // turns this write into EPIPE (SIGPIPE is ignored) and the pump below
  // sees EOF — waitpid then tells the truth about the death.
  const WireStatus sent =
      write_frame(to_wr, FrameType::kRequest, encode_request(request));
  if (sent != WireStatus::kOk) {
    run.detail =
        std::string("request write failed: ") + wire_status_name(sent);
  }

  auto deadline = watchdog.count() > 0
                      ? std::chrono::steady_clock::now() + watchdog
                      : std::chrono::steady_clock::time_point{};
  bool watchdog_fired = false;
  bool stream_broke = sent != WireStatus::kOk;

  // The pump. Identical to the cold pool's except for the terminator: a
  // decoded result frame ends the JOB, not the worker — the child loops
  // back to read the next request and the slot stays warm.
  while (!run.has_result && !stream_broke) {
    FrameType type = FrameType::kResult;
    std::string payload;
    const WireStatus st = read_frame(from_rd, type, payload, deadline);
    if (st == WireStatus::kTimeout) {
      watchdog_fired = true;
      ::kill(pid, SIGKILL);
      PFACT_COUNT(kWorkerWatchdogKills);
      deadline = std::chrono::steady_clock::time_point{};
      continue;  // drain frames already in flight, then hit EOF below
    }
    if (st == WireStatus::kEof) {
      stream_broke = true;  // the worker died (it never closes its end)
      break;
    }
    if (st != WireStatus::kOk) {
      if (run.detail.empty()) {
        run.detail =
            std::string("response stream broke: ") + wire_status_name(st);
      }
      stream_broke = true;  // desynchronized: this worker cannot be reused
      break;
    }
    if (type == FrameType::kCheckpoint) {
      std::uint64_t step = 0;
      std::string blob;
      if (decode_checkpoint_frame(payload, step, blob) &&
          robustness::validate_checkpoint_envelope(blob) ==
              robustness::CheckpointStatus::kOk) {
        ++run.checkpoints_received;
        if (store != nullptr) store->put(step, std::move(blob));
      } else {
        ++run.checkpoints_rejected;
        PFACT_COUNT(kCheckpointRejects);
      }
    } else if (type == FrameType::kResult) {
      if (decode_result(payload, run.result)) {
        run.has_result = true;
      } else {
        if (run.detail.empty()) run.detail = "result frame did not decode";
        stream_broke = true;
      }
    } else {
      if (run.detail.empty()) run.detail = "unexpected frame type from worker";
      stream_broke = true;
    }
  }

  const bool job_completed = run.has_result && !watchdog_fired && !stream_broke;

  par::MutexLock lock(mu_);
  Slot& slot = slots_[idx];
  if (job_completed) {
    run.exit = WorkerExit::kCompleted;
    run.exit_code = 0;
    ++slot.jobs_done;
    ++stats_.completed;
    // Planned retirement: the job quota, or a job whose request made the
    // process unsafe to reuse — rlimit sandboxes are cumulative (RLIMIT_CPU
    // cannot be raised back), and a survived kill plan is an armed trigger
    // this pool cannot prove disarmed.
    const bool tainted = request.rlimits.address_space_bytes != 0 ||
                         request.rlimits.cpu_seconds != 0 ||
                         request.kill.mode != KillPlan::Mode::kNone;
    const bool quota_reached = options_.recycle_after != 0 &&
                               slot.jobs_done >= options_.recycle_after;
    if (tainted || quota_reached) {
      retire_slot(idx);
      ++stats_.recycles;
      PFACT_COUNT(kServeWorkerRecycles);
      spawn_slot(idx);  // best-effort: a failure leaves the slot dead and
                        // the next lease tries again
    }
  } else {
    // Death path. SIGKILL first: a desynchronized-but-alive worker (CRC
    // mismatch on its stream) would otherwise never exit and reap would
    // hang; for a worker that is already dead the kill is a no-op on the
    // zombie. Then reap, classify with the shared table, respawn.
    ::kill(pid, SIGKILL);
    if (slot.to_wr >= 0) {
      unregister_pool_fd(slot.to_wr);
      ::close(slot.to_wr);
    }
    if (slot.from_rd >= 0) {
      unregister_pool_fd(slot.from_rd);
      ::close(slot.from_rd);
    }
    slot.to_wr = -1;
    slot.from_rd = -1;
    const int status = reap(pid);
    slot.pid = -1;
    slot.alive = false;
    classify_wait_status(status, watchdog_fired, watchdog, run);
    ++stats_.crashed;
    if (run.exit == WorkerExit::kWatchdog) ++stats_.watchdog_kills;
    PFACT_COUNT(kWorkerCrashes);
    spawn_slot(idx);  // the auto-respawn contract; best-effort as above
  }
  slot.busy = false;
  slot_free_.notify_one();
  return run;
}

}  // namespace pfact::serve
