#pragma once
// Shard process: one self-contained reduction service behind its own Unix
// socket — the unit the shard router (router.h) forks, probes, kills, and
// respawns.
//
// A shard child owns a private ReductionService (its own WarmPool, admission
// queue, and ResultCache) fronted by the existing poll()-driven Frontend, so
// every byte it speaks is the PFRM framing and every refusal is a classified
// FrontendStatus — sharding adds a routing layer, not a second protocol. The
// parent keeps only a ShardSpec (how to respawn it) and a pid; everything
// else about a shard is observable strictly through its socket, which is
// what makes the bulkhead honest: a wedged shard cannot corrupt router state
// it never shares.
//
// ShardStatus is the router's view of one shard's lifecycle, and it is a
// closed taxonomy in the FrontendStatus mold — named, diagnosed, counted,
// and swept (pfact_lint rule PL019 keeps the four legs total). A status the
// router could observe but not classify would be exactly the silent
// fallthrough this repo's taxonomies exist to prevent.

#include <chrono>
#include <string>
#include <sys/types.h>
#include <vector>

#include "obs/counters.h"
#include "robustness/diagnostics.h"
#include "serve/queue.h"

namespace pfact::serve {

// The router's view of one shard's lifecycle. Total: at any instant a shard
// is in exactly one state, and every state transition is counted.
enum class ShardStatus {
  kStarting,      // forked; socket not yet probed healthy
  kServing,       // last heartbeat probe acked within its deadline
  kUnresponsive,  // probe deadline expired: evicted with SIGKILL (bulkhead)
  kDead,          // reaped by waitpid; death classified via WorkerExit
  kRestarting,    // waiting out the seeded restart backoff before respawn
};

inline const char* shard_status_name(ShardStatus s) {
  switch (s) {
    case ShardStatus::kStarting: return "starting";
    case ShardStatus::kServing: return "serving";
    case ShardStatus::kUnresponsive: return "unresponsive";
    case ShardStatus::kDead: return "dead";
    case ShardStatus::kRestarting: return "restarting";
  }
  return "?";
}

// The sweepable taxonomy, for the --shard soak's full-coverage contract:
// every state a shard can be in must actually be produced and survived by a
// real campaign (kills, wedges, restart storms).
inline const std::vector<ShardStatus>& all_shard_statuses() {
  static const std::vector<ShardStatus> statuses = {
      ShardStatus::kStarting, ShardStatus::kServing,
      ShardStatus::kUnresponsive, ShardStatus::kDead,
      ShardStatus::kRestarting};
  return statuses;
}

// What a request that needs this shard should think happened. Every
// non-serving state is a transient property of the moment — a booting,
// wedged, dead, or backing-off shard recovers (or its traffic fails over) —
// so each maps to a retryable diagnostic, never a fatal one.
inline robustness::Diagnostic diagnose_shard_status(ShardStatus s) {
  switch (s) {
    case ShardStatus::kStarting: return robustness::Diagnostic::kConnReset;
    case ShardStatus::kServing: return robustness::Diagnostic::kOk;
    case ShardStatus::kUnresponsive:
      return robustness::Diagnostic::kDeadlineExceeded;
    case ShardStatus::kDead: return robustness::Diagnostic::kWorkerFailure;
    case ShardStatus::kRestarting:
      return robustness::Diagnostic::kConnReset;
  }
  return robustness::Diagnostic::kInternalError;
}

// Monitoring leg: each state transition bumps its own counter, so a restart
// storm or a flapping shard is visible in the counter snapshot, not just in
// the router's logs.
inline obs::Counter shard_status_counter(ShardStatus s) {
  switch (s) {
    case ShardStatus::kStarting: return obs::Counter::kShardStarting;
    case ShardStatus::kServing: return obs::Counter::kShardServing;
    case ShardStatus::kUnresponsive:
      return obs::Counter::kShardUnresponsive;
    case ShardStatus::kDead: return obs::Counter::kShardDead;
    case ShardStatus::kRestarting: return obs::Counter::kShardRestarting;
  }
  return obs::Counter::kShardDead;
}

// Everything needed to fork (and re-fork, bit-identically) one shard.
struct ShardSpec {
  std::size_t index = 0;    // stable identity: ring position + log label
  std::string unix_path;    // the shard's own listener socket
  ServiceOptions service;   // private pool/queue/cache configuration
};

// Forks a shard child. The child builds a ReductionService + Frontend on
// spec.unix_path and serves until SIGTERM (graceful drain) or a harder
// death; it never returns. The parent gets the pid, or -1 if fork failed.
pid_t spawn_shard(const ShardSpec& spec);

// One blocking heartbeat: connect to `unix_path`, send an empty kProbe
// frame, and wait for the echo within `deadline`. True only on a verified
// echo — a shard whose event loop cannot answer this is wedged or dead,
// whatever its pid says.
bool probe_shard(const std::string& unix_path,
                 std::chrono::milliseconds deadline);

}  // namespace pfact::serve
