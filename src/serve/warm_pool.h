#pragma once
// WarmPool: a persistent, pre-forked worker pool — the serving layer's
// answer to the fork+pipe tax the cold WorkerPool pays on every attempt.
//
// Each slot is a long-lived sandboxed child running worker_loop_main: the
// same PFRM conversation as a cold worker, repeated — one request frame in,
// checkpoint frames plus one result frame out, then the child blocks on the
// next request. Leasing a warm slot therefore costs two frame writes, not a
// fork; the ~65 µs/lifetime process bill (EXPERIMENTS.md, PR 5) is paid
// once per recycle instead of once per attempt.
//
// The containment contract is unchanged from WorkerPool — and it has to be,
// because a warm worker accumulates state a one-shot worker cannot:
//
//   * recycling: a slot is retired (request pipe closed -> child sees a
//     clean EOF -> exit 0 -> reap -> respawn) after `recycle_after` jobs,
//     and unconditionally after any job that carried an rlimit sandbox or a
//     kill plan. RLIMIT_CPU is cumulative per process and hard limits can
//     never be raised, so a sandboxed job would otherwise poison the budget
//     of every job after it.
//   * death: any WorkerExit other than clean completion reaps the slot,
//     classifies it with the same classify_wait_status table as the cold
//     pool, and respawns a fresh child — the auto-respawn the soak
//     harness's kill campaigns assert.
//   * isolation between slots: a freshly forked child closes every OTHER
//     slot's parent-side pipe ends before entering its loop. Without this,
//     a sibling holding a duplicate write end would keep a retired slot's
//     request pipe open and its child would never see the retirement EOF.
//
// Thread-safety: run_task may be called from many supervisor/dispatcher
// threads; slot acquisition blocks on a condition variable until a slot is
// free (the service's admission queue, not this pool, is where load is
// shed). Slot bookkeeping is guarded by an annotated mutex; pipe I/O on a
// leased slot happens outside the lock, with the busy flag as the exclusion
// mechanism.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <sys/types.h>
#include <vector>

#include "parallel/annotations.h"
#include "robustness/checkpoint.h"
#include "serve/worker_pool.h"

namespace pfact::serve {

struct WarmPoolOptions {
  std::size_t workers = 2;        // pre-forked slots
  std::size_t recycle_after = 32; // planned retirement after N jobs; 0 = never
};

class WarmPool : public JobRunner {
 public:
  explicit WarmPool(WarmPoolOptions options = {});
  ~WarmPool() override;  // retires every slot (EOF) and reaps the children

  WarmPool(const WarmPool&) = delete;
  WarmPool& operator=(const WarmPool&) = delete;

  // Leases a warm slot (blocking until one is free), ships `request`, pumps
  // checkpoint/result frames exactly like WorkerPool::run_task, and returns
  // the slot to the pool — recycled or respawned per the rules above. A
  // slot that cannot be (re)spawned reports WorkerExit::kForkFailure.
  WorkerRun run_task(const TaskRequest& request,
                     robustness::CheckpointStore* store,
                     std::chrono::milliseconds watchdog =
                         std::chrono::milliseconds{0}) override;

  struct Stats {
    std::uint64_t spawned = 0;    // children forked over the pool's lifetime
    std::uint64_t completed = 0;  // jobs that delivered a result frame
    std::uint64_t crashed = 0;    // jobs ending in any non-kCompleted class
    std::uint64_t watchdog_kills = 0;
    std::uint64_t recycles = 0;   // planned retirements (quota / sandbox)
    std::uint64_t jobs = 0;       // total jobs dispatched to warm slots
  };
  Stats stats() const;

  // Number of currently live (forked, unreaped) warm children.
  std::size_t live_workers() const;

 private:
  struct Slot {
    pid_t pid = -1;
    int to_wr = -1;    // parent's write end of the slot's request pipe
    int from_rd = -1;  // parent's read end of the slot's response pipe
    std::size_t jobs_done = 0;
    bool busy = false;
    bool alive = false;
  };

  bool spawn_slot(std::size_t idx) PFACT_REQUIRES(mu_);
  void retire_slot(std::size_t idx) PFACT_REQUIRES(mu_);  // EOF + reap

  WarmPoolOptions options_;
  mutable par::Mutex mu_;
  std::condition_variable slot_free_;
  std::vector<Slot> slots_ PFACT_GUARDED_BY(mu_);
  Stats stats_ PFACT_GUARDED_BY(mu_);
};

}  // namespace pfact::serve
