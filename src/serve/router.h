#pragma once
// ShardRouter: the self-healing parent over N shard processes (shard.h).
//
// One router owns N forked shards, each a private ReductionService behind
// its own Unix socket. Requests are routed by consistent hashing of the
// ResultCache content address — the same key the shard's own cache files
// the answer under — so a task's repeats land on the same shard and hit its
// cache, and the mapping survives shard-count changes with only ~1/N of
// keys moving (virtual-node hash ring, not modulo).
//
// The robustness contract, in the order the failure hits it:
//
//   * bulkhead isolation — the router talks to shards only through bounded
//     socket I/O (client deadlines, probe deadlines). A SIGKILLed or wedged
//     shard can cost its own capacity, never the router's poll loop: a
//     probe that misses its deadline evicts the shard with SIGKILL.
//   * failover — a submit that dies transiently (conn reset, deadline,
//     shard-side shed) walks the ring to the next surviving shard. The
//     resubmitted task is re-verified from scratch by that shard's
//     supervisor (worker cross-check + envelope re-check), so at-most-once
//     delivery of a *wrong* answer is structurally impossible — a failover
//     can repeat work, never repeat trust.
//   * self-healing — deaths are reaped with waitpid and classified through
//     the PR 5 WorkerExit machinery; restarts wait out a seeded RetryPolicy
//     backoff (bit-reproducible: same seed, same restart schedule), armed
//     as a not-before deadline so the supervision loop never sleeps in a
//     way PL018 would have to waiver.
//   * brownout degradation — with any shard down (or aggregate in-flight
//     work over the high-water mark) the router sheds FRESH keys as
//     kOverloaded but keeps routing keys it has served before, which are
//     exactly the ones a surviving shard can answer from cache. Partial
//     failure degrades capacity, not availability of what is already warm.
//
// RouterStatus classifies every submit outcome (PL019 keeps the four legs
// total, like FrontendStatus under PL012): routed, failed-over, shed, or
// refused with every shard down. Zero unclassified endings is the --shard
// soak's availability contract.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "obs/counters.h"
#include "parallel/annotations.h"
#include "robustness/diagnostics.h"
#include "robustness/retry.h"
#include "serve/client.h"
#include "serve/frontend.h"
#include "serve/shard.h"
#include "serve/worker_pool.h"

namespace pfact::serve {

// Every way one routed submit can end. Total: a request either reaches its
// home shard, fails over to a survivor, is shed by brownout admission, or
// is refused because nothing is alive — there is no fifth ending.
enum class RouterStatus {
  kRouted,        // answered by the consistent-hash home shard
  kFailedOver,    // answered by a survivor after the home shard failed
  kBrownoutShed,  // fresh work refused while degraded (classified, retryable)
  kAllShardsDown, // no shard could take it: the full-outage refusal
};

inline const char* router_status_name(RouterStatus s) {
  switch (s) {
    case RouterStatus::kRouted: return "routed";
    case RouterStatus::kFailedOver: return "failed-over";
    case RouterStatus::kBrownoutShed: return "brownout-shed";
    case RouterStatus::kAllShardsDown: return "all-shards-down";
  }
  return "?";
}

// The sweepable taxonomy, for the --shard soak's coverage contract.
inline const std::vector<RouterStatus>& all_router_statuses() {
  static const std::vector<RouterStatus> statuses = {
      RouterStatus::kRouted, RouterStatus::kFailedOver,
      RouterStatus::kBrownoutShed, RouterStatus::kAllShardsDown};
  return statuses;
}

// What the caller's retry table should think happened. Both shed shapes are
// transient — brownouts clear when the dead shard restarts, and a full
// outage clears when any restart lands — so a client retrying with backoff
// eventually gets through; neither is ever fatal.
inline robustness::Diagnostic diagnose_router_status(RouterStatus s) {
  switch (s) {
    case RouterStatus::kRouted: return robustness::Diagnostic::kOk;
    case RouterStatus::kFailedOver: return robustness::Diagnostic::kOk;
    case RouterStatus::kBrownoutShed:
      return robustness::Diagnostic::kOverloaded;
    case RouterStatus::kAllShardsDown:
      return robustness::Diagnostic::kConnReset;
  }
  return robustness::Diagnostic::kInternalError;
}

// Monitoring leg: one counter per ending, so shed rate and failover rate
// are readable straight off the counter snapshot.
inline obs::Counter router_status_counter(RouterStatus s) {
  switch (s) {
    case RouterStatus::kRouted: return obs::Counter::kRouterRoutes;
    case RouterStatus::kFailedOver: return obs::Counter::kRouterFailovers;
    case RouterStatus::kBrownoutShed:
      return obs::Counter::kRouterBrownoutSheds;
    case RouterStatus::kAllShardsDown:
      return obs::Counter::kRouterAllShardsDown;
  }
  return obs::Counter::kRouterAllShardsDown;
}

struct RouterOptions {
  std::size_t shards = 3;
  // Virtual ring nodes per shard: more nodes, smoother key spread and less
  // movement when the shard count changes.
  std::size_t replicas = 16;
  // Per-shard service template (pool size, queue depth, cache capacity).
  ServiceOptions service;
  // Directory the shard sockets are created in.
  std::string socket_dir = "/tmp";
  // Heartbeat cadence and the per-probe answer deadline (the bulkhead: a
  // serving shard that misses it is evicted with SIGKILL).
  std::chrono::milliseconds probe_interval{50};
  std::chrono::milliseconds probe_deadline{250};
  // Grace for a freshly forked shard to bind its socket before the prober
  // may treat silence as a wedge.
  std::chrono::milliseconds startup_grace{5000};
  // Seeded restart backoff, bit-reproducible like every RetryPolicy.
  robustness::RetryPolicy restart;
  // Brownout high-water mark: aggregate in-flight submits above this shed
  // fresh keys even with every shard healthy.
  std::size_t brownout_high_water = 64;
  // Per-attempt transport knobs for shard submits (response deadline). The
  // router does its own failover, so the client itself never retries.
  std::chrono::milliseconds response_deadline{10'000};
};

// One submit's classified outcome. `response` always carries a decodable
// verdict: the shard's own FrontendResponse when one answered, or a
// router-synthesized classified refusal (kOverloaded / kConnReset) so that
// every request ends explained even mid-restart-storm.
struct RouteResult {
  RouterStatus status = RouterStatus::kAllShardsDown;
  std::size_t shard = 0;      // shard that answered (valid unless shed/down)
  std::size_t home = 0;       // the consistent-hash home shard
  std::size_t failovers = 0;  // shards tried and lost before the answer
  FrontendResponse response;
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterOptions options);
  ~ShardRouter();  // SIGTERM + reap every shard, join the supervisor

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Routes one task: consistent-hash home pick, brownout admission, bounded
  // submit, ring-walk failover. Blocking; safe from multiple threads.
  RouteResult submit(const robustness::ReductionTask& task);

  // The ring's home shard for this task (exposed so tests and the soak can
  // assert cache locality without re-deriving the hash).
  std::size_t home_shard(const robustness::ReductionTask& task) const;

  // Blocks until every shard probes healthy or the timeout expires.
  bool wait_all_serving(std::chrono::milliseconds timeout);

  // True while the router is degraded (any shard not serving, or in-flight
  // work over the high-water mark): fresh keys are being shed.
  bool browned_out() const;

  // The seeded restart schedule (delay before restart number `attempt`,
  // 1-based) — bit-reproducible, so soak campaigns replay exactly.
  std::chrono::milliseconds restart_delay(std::size_t attempt) const {
    return options_.restart.backoff(attempt);
  }

  std::size_t shard_count() const { return shards_.size(); }
  ShardStatus shard_status(std::size_t index) const;
  pid_t shard_pid(std::size_t index) const;

  // Test/soak seam: deliver `sig` to a shard process (SIGKILL, SIGSEGV,
  // SIGSTOP...) — the supervision loop must classify and heal the result.
  bool kill_shard_for_testing(std::size_t index, int sig);

  struct Stats {
    std::uint64_t submits = 0;
    std::uint64_t by_status[4] = {0, 0, 0, 0};  // indexed by RouterStatus
    std::uint64_t failover_hops = 0;   // total extra shards walked
    std::uint64_t restarts = 0;        // shard respawns
    std::uint64_t evictions = 0;       // SIGKILLs for missed probes
    std::uint64_t probes = 0;          // heartbeats sent
    std::uint64_t probe_failures = 0;  // heartbeats unanswered
    // ShardStatus states ever observed (indexed by ShardStatus) — the
    // --shard soak's taxonomy-coverage sweep reads this.
    std::uint64_t shard_status_seen[5] = {0, 0, 0, 0, 0};
    // Cache-locality numerator/denominator: answered-by-home vs answered.
    std::uint64_t answered = 0;
    std::uint64_t answered_by_home = 0;
    std::uint64_t status(RouterStatus s) const {
      return by_status[static_cast<std::size_t>(s)];
    }
  };
  Stats stats() const;

 private:
  struct Shard {
    ShardSpec spec;
    pid_t pid = -1;
    ShardStatus status = ShardStatus::kStarting;
    WorkerExit last_exit = WorkerExit::kCompleted;  // of the last death
    std::size_t restart_attempt = 0;   // consecutive deaths (backoff input)
    std::chrono::steady_clock::time_point restart_not_before{};
    std::chrono::steady_clock::time_point started_at{};
  };

  void supervise();
  void set_status(Shard& s, ShardStatus status) PFACT_REQUIRES(mu_);
  void reap_and_heal(std::chrono::steady_clock::time_point now);
  void probe_round(std::chrono::steady_clock::time_point now);
  std::size_t ring_successor(std::uint64_t hash) const;

  RouterOptions options_;
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;  // sorted points

  mutable par::Mutex mu_;
  std::vector<Shard> shards_ PFACT_GUARDED_BY(mu_);
  Stats stats_ PFACT_GUARDED_BY(mu_);
  std::unordered_set<std::string> served_keys_ PFACT_GUARDED_BY(mu_);
  bool stopping_ PFACT_GUARDED_BY(mu_) = false;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> not_serving_{0};  // shards currently != kServing
  std::condition_variable wake_;  // supervision tick / shutdown wakeup
  std::thread supervisor_;
};

}  // namespace pfact::serve
