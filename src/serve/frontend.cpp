#include "serve/frontend.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "robustness/checkpoint.h"

namespace pfact::serve {

namespace {

using robustness::detail::ByteReader;
using robustness::detail::ByteWriter;

// SIGTERM drain registry. The handler may only touch async-signal-safe
// state: a lock-free flag plus a fixed array of lock-free atomics holding
// each live Frontend's wake-pipe write end. Slots are claimed by CAS in the
// constructor and released in the destructor.
constexpr std::size_t kMaxFrontends = 16;
std::atomic<bool> g_sigterm_drain{false};
std::atomic<int> g_wake_slots[kMaxFrontends] = {};
std::atomic<bool> g_slots_initialized{false};

void init_slots_once() {
  bool expected = false;
  if (g_slots_initialized.compare_exchange_strong(expected, true)) {
    for (std::atomic<int>& slot : g_wake_slots) slot.store(-1);
  }
}

extern "C" void pfact_frontend_sigterm(int) {
  g_sigterm_drain.store(true, std::memory_order_relaxed);
  for (std::atomic<int>& slot : g_wake_slots) {
    const int fd = slot.load(std::memory_order_relaxed);
    if (fd >= 0) {
      const ssize_t ignored = ::write(fd, "t", 1);
      (void)ignored;  // a full wake pipe still wakes
    }
  }
}

bool would_block(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

// Closing a socket that still holds unread input turns the close into a
// reset (Linux sets the peer's sk_err to ECONNRESET), which would destroy a
// response the peer has not read yet — an overload shed, for example, closes
// before ever reading the request it refused. Drain whatever already arrived
// (the fd is non-blocking, so this never waits) so the refusal frame
// survives to be read.
void drain_and_close(int fd) {
  char buf[4096];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
  ::close(fd);
}

}  // namespace

// --- response codec ---------------------------------------------------------

std::string encode_response(const FrontendResponse& resp) {
  ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(resp.status));
  w.put_u32(static_cast<std::uint32_t>(resp.admission));
  w.put_u8(resp.from_cache ? 1 : 0);
  w.put_u8(resp.certified ? 1 : 0);
  w.put_u8(resp.value ? 1 : 0);
  w.put_u32(static_cast<std::uint32_t>(resp.certified_by));
  w.put_string(encode_result(resp.report));
  return w.take();
}

bool decode_response(std::string_view payload, FrontendResponse& out) {
  ByteReader r(payload);
  FrontendResponse resp;
  const std::uint32_t status = r.get_u32();
  // Bounds track the LAST enumerator of each taxonomy (append-only).
  if (status > static_cast<std::uint32_t>(FrontendStatus::kDraining))
    return false;
  resp.status = static_cast<FrontendStatus>(status);
  const std::uint32_t admission = r.get_u32();
  if (admission > static_cast<std::uint32_t>(Admission::kShedShutdown))
    return false;
  resp.admission = static_cast<Admission>(admission);
  resp.from_cache = r.get_u8() != 0;
  resp.certified = r.get_u8() != 0;
  resp.value = r.get_u8() != 0;
  const std::uint32_t substrate = r.get_u32();
  if (substrate > static_cast<std::uint32_t>(robustness::Substrate::kRational))
    return false;
  resp.certified_by = static_cast<robustness::Substrate>(substrate);
  const std::string report = r.get_string();
  if (!r.ok() || !r.exhausted()) return false;
  if (!decode_result(report, resp.report)) return false;
  out = std::move(resp);
  return true;
}

// --- per-connection state machine -------------------------------------------

struct Frontend::Conn {
  enum class Phase {
    kHeader,   // reassembling the 17-byte frame header
    kPayload,  // reassembling the declared payload
    kService,  // request admitted; waiting on the dispatcher
    kWrite,    // draining a queued response frame
    kLinger,   // refusal delivered; discarding input until the peer closes
               // (closing with unread input would reset the peer and destroy
               // the very response we just wrote)
  };

  int fd = -1;
  Phase phase = Phase::kHeader;
  std::string inbuf;            // header bytes, then payload bytes
  std::uint8_t frame_type = 0;
  std::uint64_t frame_len = 0;
  std::uint32_t frame_crc = 0;
  std::string outbuf;           // one fully framed response
  std::size_t out_off = 0;
  bool close_after_write = false;
  // Active read- or write-deadline; time_point{} = none armed. Read
  // deadlines arm at the FIRST byte of a frame (an idle connection may wait
  // forever; a started frame may not), write deadlines when a response is
  // queued.
  std::chrono::steady_clock::time_point deadline{};
  std::shared_ptr<ReductionService::Pending> pending;
};

// --- construction / teardown ------------------------------------------------

Frontend::Frontend(ReductionService& service, FrontendOptions options)
    : service_(service), options_(std::move(options)) {
  init_slots_once();

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() < sizeof(addr.sun_path)) {
      std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                  options_.unix_path.size() + 1);
      const int fd =
          ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (fd >= 0) {
        ::unlink(options_.unix_path.c_str());  // stale predecessor socket
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) == 0 &&
            ::listen(fd, 128) == 0) {
          unix_fd_ = fd;
        } else {
          ::close(fd);
        }
      }
    }
  }

  if (options_.tcp) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
      addr.sin_port = htons(options_.tcp_port);
      sockaddr_in bound{};
      socklen_t bound_len = sizeof(bound);
      if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) == 0 &&
          ::listen(fd, 128) == 0 &&
          ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                        &bound_len) == 0) {
        tcp_fd_ = fd;
        tcp_port_ = ntohs(bound.sin_port);
      } else {
        ::close(fd);
      }
    }
  }

  if (unix_fd_ < 0 && tcp_fd_ < 0) {
    par::MutexLock lock(mu_);
    drained_ = true;  // nothing bound; nothing will ever run
    return;
  }

  if (::pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
    wake_fds_[0] = wake_fds_[1] = -1;
  }
  // Claim a SIGTERM wake slot so install_sigterm_drain can reach the loop.
  if (wake_fds_[1] >= 0) {
    for (std::atomic<int>& slot : g_wake_slots) {
      int expected = -1;
      if (slot.compare_exchange_strong(expected, wake_fds_[1])) break;
    }
  }

  loop_ = std::thread([this] { event_loop(); });
}

Frontend::~Frontend() {
  begin_drain();
  if (loop_.joinable()) loop_.join();
  if (wake_fds_[1] >= 0) {
    for (std::atomic<int>& slot : g_wake_slots) {
      int expected = wake_fds_[1];
      if (slot.compare_exchange_strong(expected, -1)) break;
    }
  }
  for (int fd : {unix_fd_, tcp_fd_, wake_fds_[0], wake_fds_[1]}) {
    if (fd >= 0) ::close(fd);
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

bool Frontend::running() const { return unix_fd_ >= 0 || tcp_fd_ >= 0; }

void Frontend::begin_drain() {
  {
    par::MutexLock lock(mu_);
    if (draining_) return;
    draining_ = true;
  }
  wake();
}

bool Frontend::drained() const {
  par::MutexLock lock(mu_);
  return drained_;
}

void Frontend::reset_sigterm_for_testing() {
  g_sigterm_drain.store(false, std::memory_order_relaxed);
}

void Frontend::install_sigterm_drain() {
  init_slots_once();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = pfact_frontend_sigterm;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
}

Frontend::Stats Frontend::stats() const {
  par::MutexLock lock(mu_);
  return stats_;
}

void Frontend::wake() {
  if (wake_fds_[1] >= 0) {
    const ssize_t ignored = ::write(wake_fds_[1], "w", 1);
    (void)ignored;  // EAGAIN = pipe already holds a wakeup
  }
}

void Frontend::record_end(FrontendStatus status) {
  obs::bump(frontend_status_counter(status));
  par::MutexLock lock(mu_);
  ++stats_.by_status[static_cast<std::size_t>(status)];
}

// --- the event loop ---------------------------------------------------------

void Frontend::event_loop() {
  bool listeners_open = true;
  for (;;) {
    bool draining;
    {
      par::MutexLock lock(mu_);
      draining = draining_;
    }
    if (g_sigterm_drain.load(std::memory_order_relaxed) && !draining) {
      begin_drain();
      draining = true;
    }
    if (draining && listeners_open) {
      // Stop accepting: close the doors, keep serving who is inside.
      if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
      if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
      listeners_open = false;
      // Idle connections (no frame started) have nothing in flight: close.
      // "Idle" must consult the kernel buffer, not just inbuf — a client
      // that wrote the start of a frame just before the drain began has a
      // request in flight even though the loop has not read a byte of it
      // yet, and it is owed a kDraining answer, not a silent close.
      for (auto it = conns_.begin(); it != conns_.end();) {
        Conn& c = **it;
        char probe = 0;
        const bool pending_bytes =
            ::recv(c.fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT) > 0;
        if (c.phase == Conn::Phase::kHeader && c.inbuf.empty() &&
            !pending_bytes) {
          drain_and_close(c.fd);
          {
            par::MutexLock lock(mu_);
            ++stats_.clean_closes;
          }
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (draining && conns_.empty()) break;

    std::vector<pollfd> fds;
    fds.reserve(conns_.size() + 3);
    const std::size_t wake_idx = fds.size();
    if (wake_fds_[0] >= 0) fds.push_back({wake_fds_[0], POLLIN, 0});
    std::size_t unix_idx = SIZE_MAX, tcp_idx = SIZE_MAX;
    if (listeners_open && unix_fd_ >= 0) {
      unix_idx = fds.size();
      fds.push_back({unix_fd_, POLLIN, 0});
    }
    if (listeners_open && tcp_fd_ >= 0) {
      tcp_idx = fds.size();
      fds.push_back({tcp_fd_, POLLIN, 0});
    }
    const std::size_t conn_base = fds.size();
    for (const auto& c : conns_) {
      short events = 0;
      switch (c->phase) {
        case Conn::Phase::kHeader:
        case Conn::Phase::kPayload:
        case Conn::Phase::kLinger: events = POLLIN; break;
        case Conn::Phase::kService: events = 0; break;  // POLLHUP still shows
        case Conn::Phase::kWrite: events = POLLOUT; break;
      }
      fds.push_back({c->fd, events, 0});
    }

    // Timeout: the nearest armed per-connection deadline.
    int timeout_ms = -1;
    const auto now = std::chrono::steady_clock::now();
    for (const auto& c : conns_) {
      if (c->deadline == std::chrono::steady_clock::time_point{}) continue;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            c->deadline - now)
                            .count() +
                        1;
      const int ms = left < 1 ? 1 : (left > 60'000 ? 60'000
                                                   : static_cast<int>(left));
      if (timeout_ms < 0 || ms < timeout_ms) timeout_ms = ms;
    }

    const int pr = ::poll(fds.data(), fds.size(), timeout_ms);
    if (pr < 0 && errno != EINTR) break;  // poll itself failing is terminal

    if (wake_fds_[0] >= 0 && (fds[wake_idx].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (unix_idx != SIZE_MAX && (fds[unix_idx].revents & POLLIN) != 0) {
      accept_ready(unix_fd_);
    }
    if (tcp_idx != SIZE_MAX && (fds[tcp_idx].revents & POLLIN) != 0) {
      accept_ready(tcp_fd_);
    }

    const auto after_poll = std::chrono::steady_clock::now();
    // `src` walks the pollfd snapshot in the order conns_ had at poll time;
    // erasing from conns_ shifts ITS indices but must not shift which
    // revents a surviving connection is matched with.
    std::size_t src = conn_base;
    for (std::size_t i = 0; i < conns_.size(); ++src) {
      Conn& c = *conns_[i];
      const short rev = src < fds.size() ? fds[src].revents : 0;
      bool alive = true;
      if (c.phase == Conn::Phase::kLinger &&
          (rev & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0) {
        // Discard input until the peer hangs up; the conversation's status
        // was recorded when its refusal was queued.
        alive = conn_lingering(c);
      } else if ((rev & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                 c.phase == Conn::Phase::kService) {
        // The peer vanished while its job was in flight: nobody is left to
        // read the answer. (Read/write phases route hangups through their
        // own paths below — a POLLHUP may still carry final readable bytes,
        // which must be consumed before EOF can be classified.)
        record_end(FrontendStatus::kConnReset);
        alive = false;
      } else if ((rev & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                 (c.phase == Conn::Phase::kHeader ||
                  c.phase == Conn::Phase::kPayload)) {
        alive = conn_readable(c);
      } else if ((rev & (POLLOUT | POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                 c.phase == Conn::Phase::kWrite) {
        alive = conn_writable(c);
      }
      if (alive && c.phase == Conn::Phase::kService) harvest_resolved(c);
      if (alive) alive = check_deadlines(c, after_poll);
      if (!alive) {
        drain_and_close(c.fd);
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  par::MutexLock lock(mu_);
  drained_ = true;
}

void Frontend::accept_ready(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or the listener is shutting down
    }
    PFACT_COUNT(kFrontendConnsAccepted);
    {
      par::MutexLock lock(mu_);
      ++stats_.conns_accepted;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    if (conns_.size() >= options_.max_connections) {
      // The connection-bound shed: accepted just long enough to say no,
      // classified, instead of languishing unanswered in the SYN backlog.
      queue_response(*conn, FrontendStatus::kOverloaded, nullptr,
                     "connection bound reached");
    }
    conns_.push_back(std::move(conn));
  }
}

bool Frontend::conn_readable(Conn& c) {
  for (;;) {
    const std::size_t need =
        (c.phase == Conn::Phase::kHeader ? kFrameHeaderBytes
                                         : static_cast<std::size_t>(
                                               c.frame_len)) -
        c.inbuf.size();
    if (need == 0) break;
    char buf[4096];
    const std::size_t want = need < sizeof(buf) ? need : sizeof(buf);
    const ssize_t n = ::read(c.fd, buf, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (would_block(errno)) return true;  // resume on the next POLLIN
      record_end(FrontendStatus::kConnReset);
      return false;
    }
    if (n == 0) {
      if (c.phase == Conn::Phase::kHeader && c.inbuf.empty()) {
        par::MutexLock lock(mu_);
        ++stats_.clean_closes;  // EOF at a frame boundary: a polite goodbye
      } else {
        record_end(FrontendStatus::kConnReset);  // died mid-frame
      }
      return false;
    }
    PFACT_COUNT_N(kFrontendBytesRead, n);
    if (c.inbuf.empty() && c.phase == Conn::Phase::kHeader) {
      // First byte of a new frame arms the read deadline: from here the
      // whole frame must land within read_deadline.
      c.deadline = std::chrono::steady_clock::now() + options_.read_deadline;
    }
    c.inbuf.append(buf, static_cast<std::size_t>(n));

    if (c.phase == Conn::Phase::kHeader &&
        c.inbuf.size() == kFrameHeaderBytes) {
      ByteReader r(c.inbuf);
      const std::uint32_t magic = r.get_u32();
      c.frame_type = r.get_u8();
      c.frame_len = r.get_u64();
      c.frame_crc = r.get_u32();
      if (magic == kFrameMagic &&
          c.frame_type == static_cast<std::uint8_t>(FrameType::kProbe) &&
          c.frame_len == 0 && c.frame_crc == robustness::crc32("", 0)) {
        // Router heartbeat: echo an empty kProbe frame straight from the
        // event loop, never touching the admission queue — liveness of this
        // poll loop is exactly what the prober wants to measure, and a
        // saturated queue must not make a healthy shard look dead. The
        // connection stays open for the next probe.
        ByteWriter w;
        w.reserve(kFrameHeaderBytes);
        w.put_u32(kFrameMagic);
        w.put_u8(static_cast<std::uint8_t>(FrameType::kProbe));
        w.put_u64(0);
        w.put_u32(robustness::crc32("", 0));
        c.outbuf = w.take();
        c.out_off = 0;
        c.inbuf.clear();
        c.phase = Conn::Phase::kWrite;
        c.deadline = std::chrono::steady_clock::now() +
                     options_.write_deadline;
        c.close_after_write = false;
        PFACT_COUNT(kFrontendProbes);
        return true;
      }
      if (magic != kFrameMagic ||
          c.frame_type != static_cast<std::uint8_t>(FrameType::kRequest) ||
          c.frame_len > kMaxFramePayload) {
        // Garbage preamble, a non-request frame type (known or unknown),
        // or an absurd length: one classified refusal, then close — the
        // stream is not trustworthy past a bad header.
        queue_response(c, FrontendStatus::kMalformedFrame, nullptr,
                       magic != kFrameMagic ? "bad frame magic"
                                            : "unexpected frame type/length");
        return true;
      }
      c.inbuf.clear();
      c.phase = Conn::Phase::kPayload;
      if (c.frame_len == 0) {
        finish_frame(c);
        return true;
      }
      continue;
    }
    if (c.phase == Conn::Phase::kPayload && c.inbuf.size() == c.frame_len) {
      finish_frame(c);
      return true;
    }
  }
  return true;
}

void Frontend::finish_frame(Conn& c) {
  PFACT_SPAN("serve.frontend");
  if (robustness::crc32(c.inbuf.data(), c.inbuf.size()) != c.frame_crc) {
    queue_response(c, FrontendStatus::kMalformedFrame, nullptr,
                   "payload CRC mismatch");
    return;
  }
  TaskRequest req;
  if (!decode_request(c.inbuf, req)) {
    queue_response(c, FrontendStatus::kMalformedFrame, nullptr,
                   "request payload does not parse");
    return;
  }
  c.inbuf.clear();
  bool draining;
  {
    par::MutexLock lock(mu_);
    draining = draining_;
  }
  if (draining) {
    queue_response(c, FrontendStatus::kDraining, nullptr,
                   "frontend is draining");
    return;
  }
  // Admission happens on the SAME bounded queue as in-process callers; the
  // socket buys no priority. Only the task crosses the trust boundary —
  // substrate ladder, deadlines, sandboxes and chaos schedules are service
  // policy, not client input.
  c.pending = service_.submit(req.task, options_.job);
  c.phase = Conn::Phase::kService;
  c.deadline = std::chrono::steady_clock::time_point{};
  const int wfd = wake_fds_[1];
  c.pending->notify_on_done([wfd] {
    if (wfd >= 0) {
      const ssize_t ignored = ::write(wfd, "j", 1);
      (void)ignored;
    }
  });
  harvest_resolved(c);  // sheds resolve synchronously inside submit
}

void Frontend::harvest_resolved(Conn& c) {
  if (!c.pending) return;
  const ServiceResponse* resp = c.pending->poll_response();
  if (resp == nullptr) return;
  FrontendStatus status = FrontendStatus::kAccepted;
  switch (resp->admission) {
    case Admission::kAccepted: status = FrontendStatus::kAccepted; break;
    case Admission::kShedQueueFull:
      status = FrontendStatus::kOverloaded;
      break;
    case Admission::kShedDeadline: status = FrontendStatus::kDeadline; break;
    case Admission::kShedShutdown: status = FrontendStatus::kDraining; break;
  }
  queue_response(c, status, resp, nullptr);
  c.pending.reset();
}

void Frontend::queue_response(Conn& c, FrontendStatus status,
                              const ServiceResponse* service_resp,
                              const char* detail) {
  FrontendResponse fr;
  fr.status = status;
  if (service_resp != nullptr) {
    fr.admission = service_resp->admission;
    fr.from_cache = service_resp->from_cache;
    fr.certified = service_resp->report.certified;
    fr.value = service_resp->report.value;
    fr.certified_by = service_resp->report.certified_by;
    fr.report = service_resp->report.final_report;
  } else {
    fr.report.diagnostic = diagnose_frontend_status(status);
    fr.report.detail = detail == nullptr ? "" : detail;
  }
  const std::string payload = encode_response(fr);
  ByteWriter w;
  w.reserve(kFrameHeaderBytes + payload.size());
  w.put_u32(kFrameMagic);
  w.put_u8(static_cast<std::uint8_t>(FrameType::kResponse));
  w.put_u64(payload.size());
  w.put_u32(robustness::crc32(payload.data(), payload.size()));
  w.put_bytes(payload.data(), payload.size());
  c.outbuf = w.take();
  c.out_off = 0;
  c.inbuf.clear();
  c.phase = Conn::Phase::kWrite;
  c.deadline = std::chrono::steady_clock::now() + options_.write_deadline;
  // One classified refusal per broken conversation, then hang up: past a
  // malformed header or an eviction the stream cannot be resynchronized.
  c.close_after_write = status != FrontendStatus::kAccepted;
  record_end(status);
}

bool Frontend::conn_writable(Conn& c) {
  while (c.out_off < c.outbuf.size()) {
    // MSG_NOSIGNAL: a vanished reader must surface as EPIPE, never SIGPIPE.
    const ssize_t n =
        ::send(c.fd, c.outbuf.data() + c.out_off, c.outbuf.size() - c.out_off,
               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (would_block(errno)) return true;  // resume on the next POLLOUT
      // The response's own status was recorded when it was queued; a peer
      // that vanished before reading it is a second, distinct ending.
      record_end(FrontendStatus::kConnReset);
      return false;
    }
    PFACT_COUNT_N(kFrontendBytesWritten, n);
    c.out_off += static_cast<std::size_t>(n);
  }
  if (c.close_after_write) {
    // Classified refusal delivered. Half-close and linger until the peer
    // hangs up: closing outright while the refused request's bytes are
    // still unread would reset the peer and destroy the refusal frame it
    // has not read yet. The already-armed write deadline bounds the linger.
    ::shutdown(c.fd, SHUT_WR);
    c.outbuf.clear();
    c.out_off = 0;
    c.phase = Conn::Phase::kLinger;
    return true;
  }
  // Response delivered; the connection is reusable for the next request.
  c.outbuf.clear();
  c.out_off = 0;
  c.phase = Conn::Phase::kHeader;
  c.deadline = std::chrono::steady_clock::time_point{};
  return true;
}

bool Frontend::conn_lingering(Conn& c) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(c.fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (would_block(errno)) return true;  // peer still reading the refusal
      return false;
    }
    if (n == 0) return false;  // the peer read its refusal and hung up
  }
}

bool Frontend::check_deadlines(Conn& c,
                               std::chrono::steady_clock::time_point now) {
  if (c.deadline == std::chrono::steady_clock::time_point{} ||
      now < c.deadline) {
    return true;
  }
  if (c.phase == Conn::Phase::kHeader || c.phase == Conn::Phase::kPayload) {
    // Slowloris eviction: the frame did not complete in time. Queue a
    // best-effort kDeadline response — the stall may be on the client's
    // WRITE side only — bounded by the write deadline below.
    queue_response(c, FrontendStatus::kDeadline, nullptr,
                   "read deadline: frame incomplete");
    return true;
  }
  if (c.phase == Conn::Phase::kWrite) {
    // The response would not drain either: a fully stalled peer. Hard
    // close; the eviction was already recorded when this response was a
    // kDeadline, and a stalled kAccepted reader is its own eviction.
    record_end(FrontendStatus::kDeadline);
    return false;
  }
  if (c.phase == Conn::Phase::kLinger) {
    // The peer never hung up after its refusal: stop waiting. The
    // conversation's status was already recorded when the refusal was
    // queued, so the expiry itself is not a second ending.
    return false;
  }
  return true;  // kService: job timing belongs to the service, not the conn
}

}  // namespace pfact::serve
