#include "serve/shard.h"

#include <errno.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/un.h>
#include <unistd.h>

#include <memory>

#include "serve/frontend.h"
#include "serve/wire.h"

namespace pfact::serve {

namespace {

// The shard child's whole life: build the private service stack, then park
// until SIGTERM. The signal is consumed with sigwait — not a handler — so
// shutdown needs no async-signal-safe gymnastics: the main thread simply
// returns into the destructors, which drain the frontend and retire the
// warm workers before _exit.
// Drop every descriptor inherited from the router process. A shard forked
// mid-campaign inherits whatever the parent had open at that moment —
// crucially the pipe ends of OTHER services' warm workers. A duplicate
// write end held here would keep those workers from ever seeing EOF at
// their own pool's shutdown, turning an unrelated teardown into a hang.
// The shard needs nothing from the parent but stdio: it builds its own
// sockets, pipes, and workers from scratch.
void close_inherited_fds() {
#if defined(__linux__) && defined(SYS_close_range)
  if (::syscall(SYS_close_range, 3u, ~0u, 0u) == 0) return;
#endif
  const long max_fd = ::sysconf(_SC_OPEN_MAX);
  for (int fd = 3; fd < (max_fd > 0 ? max_fd : 1024); ++fd) ::close(fd);
}

[[noreturn]] void shard_child_main(const ShardSpec& spec) {
  close_inherited_fds();
  // Block SIGTERM before the service threads start so every thread inherits
  // the mask and only the sigwait below can consume it.
  sigset_t term;
  sigemptyset(&term);
  sigaddset(&term, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &term, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  {
    ReductionService service(spec.service);
    FrontendOptions fo;
    fo.unix_path = spec.unix_path;
    Frontend frontend(service, fo);
    if (!frontend.running()) _exit(1);
    int sig = 0;
    while (sigwait(&term, &sig) != 0 || sig != SIGTERM) {
    }
    frontend.begin_drain();
  }
  _exit(0);
}

}  // namespace

pid_t spawn_shard(const ShardSpec& spec) {
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) shard_child_main(spec);  // never returns
  return pid;
}

bool probe_shard(const std::string& unix_path,
                 std::chrono::milliseconds deadline) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (unix_path.empty() || unix_path.size() >= sizeof(addr.sun_path))
    return false;
  ::memcpy(addr.sun_path, unix_path.c_str(), unix_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  bool acked = false;
  if (write_frame(fd, FrameType::kProbe, {}) == WireStatus::kOk) {
    FrameType type = FrameType::kRequest;
    std::string payload;
    const WireStatus st = read_frame(
        fd, type, payload, std::chrono::steady_clock::now() + deadline);
    acked = st == WireStatus::kOk && type == FrameType::kProbe &&
            payload.empty();
  }
  ::close(fd);
  return acked;
}

}  // namespace pfact::serve
