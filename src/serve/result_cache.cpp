#include "serve/result_cache.h"

#include <utility>

#include "circuit/io.h"
#include "obs/counters.h"
#include "robustness/checkpoint.h"

namespace pfact::serve {

namespace {

using robustness::detail::ByteReader;
using robustness::detail::ByteWriter;

std::string serialize_entry(const CacheEntry& entry) {
  ByteWriter w;
  w.put_u8(entry.value ? 1 : 0);
  w.put_u32(static_cast<std::uint32_t>(entry.substrate));
  w.put_string(entry.final_checkpoint);
  return w.take();
}

bool deserialize_entry(const std::string& bytes, CacheEntry& out) {
  ByteReader r(bytes);
  CacheEntry entry;
  entry.value = r.get_u8() != 0;
  const std::uint32_t substrate = r.get_u32();
  if (substrate > static_cast<std::uint32_t>(robustness::Substrate::kRational))
    return false;
  entry.substrate = static_cast<robustness::Substrate>(substrate);
  entry.final_checkpoint = r.get_string();
  if (!r.ok() || !r.exhausted()) return false;
  out = std::move(entry);
  return true;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::string ResultCache::key_for(const robustness::ReductionTask& task,
                                 robustness::Substrate substrate) {
  // The circuit travels by the same canonical rule the wire codec uses
  // (wire.cpp encode_request): the empty instance — GEP/GQR chain tasks —
  // is the empty string, anything else is the canonical circuit text with
  // its input assignment. The canonical text IS the content address.
  std::string circuit_text;
  if (task.instance.circuit.num_inputs() != 0 ||
      task.instance.circuit.num_gates() != 0) {
    const std::vector<bool>* inputs =
        task.instance.inputs.empty() ? nullptr : &task.instance.inputs;
    circuit_text = circuit::circuit_to_text(task.instance.circuit, inputs);
  }
  std::string key = robustness::algorithm_name(task.algorithm);
  key += '\n';
  key += robustness::substrate_name(substrate);
  key += '\n';
  // The backend is part of the identity even though answers are
  // backend-invariant: a cached entry carries the run's final checkpoint
  // blob, whose entry section is backend-specific (dense vs sparse-* field
  // tags), so a dense hit must never be replayed into a sparse resume.
  key += robustness::backend_name(task.backend);
  key += '\n';
  key += std::to_string(task.u) + ' ' + std::to_string(task.w) + ' ' +
         std::to_string(task.depth);
  key += '\n';
  key += circuit_text;
  return key;
}

void ResultCache::drop(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru);
  entries_.erase(it);
}

CacheProbe ResultCache::lookup(const std::string& key, CacheEntry& out) {
  par::MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    PFACT_COUNT(kServeCacheMisses);
    return CacheProbe::kMiss;
  }
  Stored& stored = it->second;
  if (robustness::crc32(stored.bytes.data(), stored.bytes.size()) !=
      stored.crc) {
    drop(key);
    ++stats_.corrupt;
    PFACT_COUNT(kServeCacheCorrupt);
    return CacheProbe::kCorruptEntry;
  }
  CacheEntry entry;
  if (!deserialize_entry(stored.bytes, entry)) {
    // Bytes hash but do not parse: same corruption family, same exit.
    drop(key);
    ++stats_.corrupt;
    PFACT_COUNT(kServeCacheCorrupt);
    return CacheProbe::kCorruptEntry;
  }
  if (!entry.final_checkpoint.empty() &&
      robustness::validate_checkpoint_envelope(entry.final_checkpoint) !=
          robustness::CheckpointStatus::kOk) {
    drop(key);
    ++stats_.corrupt;
    PFACT_COUNT(kServeCacheCorrupt);
    return CacheProbe::kEnvelopeRejected;
  }
  // Freshen: a hit entry moves to the MRU end of the eviction order.
  lru_.erase(stored.lru);
  lru_.push_front(key);
  stored.lru = lru_.begin();
  ++stats_.hits;
  PFACT_COUNT(kServeCacheHits);
  out = std::move(entry);
  return CacheProbe::kHit;
}

void ResultCache::insert(const std::string& key, const CacheEntry& entry) {
  if (capacity_ == 0) return;
  par::MutexLock lock(mu_);
  drop(key);  // replace, never duplicate
  while (entries_.size() >= capacity_) {
    drop(lru_.back());
    ++stats_.evictions;
    PFACT_COUNT(kServeCacheEvictions);
  }
  Stored stored;
  stored.bytes = serialize_entry(entry);
  stored.crc = robustness::crc32(stored.bytes.data(), stored.bytes.size());
  lru_.push_front(key);
  stored.lru = lru_.begin();
  entries_.emplace(key, std::move(stored));
  ++stats_.fills;
  PFACT_COUNT(kServeCacheFills);
}

std::size_t ResultCache::size() const {
  par::MutexLock lock(mu_);
  return entries_.size();
}

ResultCache::Stats ResultCache::stats() const {
  par::MutexLock lock(mu_);
  return stats_;
}

bool ResultCache::corrupt_entry_for_testing(const std::string& key) {
  par::MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  // Flip a byte in the middle of the protected bytes — the CRC recorded at
  // fill time must now refuse the entry.
  std::string& bytes = it->second.bytes;
  if (bytes.empty()) return false;
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  return true;
}

}  // namespace pfact::serve
