#include "serve/router.h"

#include <errno.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "serve/result_cache.h"

namespace pfact::serve {

namespace {

// FNV-1a 64 over the content-address key: the stable, process-independent
// half of the routing hash. The ring points themselves come from mix64, so
// both halves are deterministic — two routers with the same configuration
// agree on every key's home shard.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Supervision cadence: the loop must tick at least this often even when the
// probe interval is long, so shutdown and restart deadlines stay prompt.
constexpr std::chrono::milliseconds kMaxTick{25};

}  // namespace

ShardRouter::ShardRouter(RouterOptions options) : options_(std::move(options)) {
  // A shard that dies while the router writes to it must surface as a
  // classified EPIPE in the client machinery, never a SIGPIPE death.
  ::signal(SIGPIPE, SIG_IGN);
  if (options_.shards == 0) options_.shards = 1;
  if (options_.replicas == 0) options_.replicas = 1;

  // Virtual-node hash ring: `replicas` deterministic points per shard,
  // sorted once. Changing the shard count re-homes only the keys whose ring
  // successor changed (~1/N of them) — the consistent-hashing property that
  // keeps caches warm across resizes.
  ring_.reserve(options_.shards * options_.replicas);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    for (std::size_t r = 0; r < options_.replicas; ++r) {
      ring_.emplace_back(
          robustness::mix64(0x9E3779B97F4A7C15ull ^ i, r + 1), i);
    }
  }
  std::sort(ring_.begin(), ring_.end());

  static std::atomic<std::uint64_t> router_serial{0};
  const std::uint64_t serial = ++router_serial;
  const auto now = std::chrono::steady_clock::now();
  {
    par::MutexLock lock(mu_);
    shards_.resize(options_.shards);
    for (std::size_t i = 0; i < options_.shards; ++i) {
      Shard& s = shards_[i];
      s.spec.index = i;
      s.spec.unix_path = options_.socket_dir + "/pfact_shard_" +
                         std::to_string(::getpid()) + "_" +
                         std::to_string(serial) + "_" + std::to_string(i) +
                         ".sock";
      s.spec.service = options_.service;
      ::unlink(s.spec.unix_path.c_str());
      s.pid = spawn_shard(s.spec);
      s.started_at = now;
      if (s.pid < 0) {
        // fork() itself failed: enter the ordinary heal path — the
        // supervisor will arm a seeded-backoff respawn like any death.
        s.last_exit = WorkerExit::kForkFailure;
        s.restart_attempt = 1;
        s.restart_not_before = now + options_.restart.backoff(1);
        set_status(s, ShardStatus::kRestarting);
      } else {
        set_status(s, ShardStatus::kStarting);
      }
    }
  }
  supervisor_ = std::thread(&ShardRouter::supervise, this);
}

ShardRouter::~ShardRouter() {
  {
    par::MutexLock lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();

  // Graceful first: SIGTERM lets each shard drain its frontend and retire
  // its warm workers. A shard that cannot comply within the grace window
  // (wedged, SIGSTOPped) is SIGKILLed — which reaps unconditionally, so the
  // destructor never hangs on a misbehaving child.
  std::vector<std::pair<pid_t, std::string>> live;
  {
    par::MutexLock lock(mu_);
    for (Shard& s : shards_) {
      if (s.pid > 0) {
        ::kill(s.pid, SIGTERM);
        live.emplace_back(s.pid, s.spec.unix_path);
      } else {
        ::unlink(s.spec.unix_path.c_str());
      }
      s.pid = -1;
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1000);
  while (!live.empty() && std::chrono::steady_clock::now() < deadline) {
    for (auto it = live.begin(); it != live.end();) {
      int st = 0;
      if (::waitpid(it->first, &st, WNOHANG) == it->first) {
        ::unlink(it->second.c_str());
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    if (live.empty()) break;
    par::MutexLock lock(mu_);
    lock.wait_for(wake_, std::chrono::milliseconds(10));
  }
  for (auto& [pid, path] : live) {
    ::kill(pid, SIGKILL);
    int st = 0;
    ::waitpid(pid, &st, 0);
    ::unlink(path.c_str());
  }
}

void ShardRouter::set_status(Shard& s, ShardStatus status) {
  s.status = status;
  obs::bump(shard_status_counter(status));
  ++stats_.shard_status_seen[static_cast<std::size_t>(status)];
  std::size_t down = 0;
  for (const Shard& sh : shards_) {
    if (sh.status != ShardStatus::kServing) ++down;
  }
  not_serving_.store(down, std::memory_order_relaxed);
  wake_.notify_all();
}

std::size_t ShardRouter::ring_successor(std::uint64_t hash) const {
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(hash, std::size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::size_t ShardRouter::home_shard(
    const robustness::ReductionTask& task) const {
  return ring_successor(
      fnv1a(ResultCache::key_for(task, robustness::Substrate::kDouble)));
}

bool ShardRouter::browned_out() const {
  return not_serving_.load(std::memory_order_relaxed) > 0 ||
         in_flight_.load(std::memory_order_relaxed) >
             options_.brownout_high_water;
}

ShardStatus ShardRouter::shard_status(std::size_t index) const {
  par::MutexLock lock(mu_);
  return shards_[index].status;
}

pid_t ShardRouter::shard_pid(std::size_t index) const {
  par::MutexLock lock(mu_);
  return shards_[index].pid;
}

bool ShardRouter::kill_shard_for_testing(std::size_t index, int sig) {
  par::MutexLock lock(mu_);
  if (index >= shards_.size() || shards_[index].pid <= 0) return false;
  return ::kill(shards_[index].pid, sig) == 0;
}

bool ShardRouter::wait_all_serving(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  par::MutexLock lock(mu_);
  for (;;) {
    bool all = true;
    for (const Shard& s : shards_) {
      all = all && s.status == ShardStatus::kServing;
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    lock.wait_for(wake_, kMaxTick);
  }
}

ShardRouter::Stats ShardRouter::stats() const {
  par::MutexLock lock(mu_);
  return stats_;
}

RouteResult ShardRouter::submit(const robustness::ReductionTask& task) {
  PFACT_SPAN("serve.router");
  const std::string key =
      ResultCache::key_for(task, robustness::Substrate::kDouble);
  const std::uint64_t hash = fnv1a(key);

  RouteResult rr;
  rr.home = ring_successor(hash);

  in_flight_.fetch_add(1, std::memory_order_relaxed);
  bool fresh;
  {
    par::MutexLock lock(mu_);
    ++stats_.submits;
    fresh = served_keys_.count(key) == 0;
  }

  auto finalize = [&](RouteResult& out) -> RouteResult& {
    obs::bump(router_status_counter(out.status));
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    par::MutexLock lock(mu_);
    ++stats_.by_status[static_cast<std::size_t>(out.status)];
    stats_.failover_hops += out.failovers;
    return out;
  };

  // Brownout admission: degraded capacity sheds FRESH keys (classified,
  // retryable) but keeps routing keys served before — those are the ones a
  // surviving shard answers from its cache, so the warm working set stays
  // available through the failure.
  if (browned_out() && fresh) {
    rr.status = RouterStatus::kBrownoutShed;
    rr.response.status = FrontendStatus::kOverloaded;
    rr.response.report.diagnostic = robustness::Diagnostic::kOverloaded;
    rr.response.report.detail =
        "router brownout: fresh work shed while degraded";
    return finalize(rr);
  }

  // Walk the ring from the home point, trying each distinct shard at most
  // once. Known-dead shards are skipped without burning a connection; a
  // live-looking shard that fails transiently costs one bounded attempt.
  std::vector<std::size_t> order;
  order.reserve(options_.shards);
  {
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), std::make_pair(hash, std::size_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t step = 0; step < ring_.size(); ++step) {
      if (it == ring_.end()) it = ring_.begin();
      if (std::find(order.begin(), order.end(), it->second) == order.end()) {
        order.push_back(it->second);
      }
      ++it;
    }
  }

  bool have_decoded_refusal = false;
  FrontendResponse last_refusal;
  for (const std::size_t idx : order) {
    ShardStatus st;
    std::string path;
    {
      par::MutexLock lock(mu_);
      st = shards_[idx].status;
      path = shards_[idx].spec.unix_path;
    }
    if (st != ShardStatus::kServing && st != ShardStatus::kStarting) {
      ++rr.failovers;  // known-bad: skip, this hop is the failover
      continue;
    }
    ClientOptions co;
    co.unix_path = path;
    co.retry.max_attempts = 1;  // the router IS the retry layer
    co.response_deadline = options_.response_deadline;
    Client client(co);
    const ClientResult res = client.submit(task);
    const bool decoded = res.wire == WireStatus::kOk;
    if (res.ok) {
      rr.shard = idx;
      rr.status = (idx == rr.home && rr.failovers == 0)
                      ? RouterStatus::kRouted
                      : RouterStatus::kFailedOver;
      rr.response = res.response;
      {
        par::MutexLock lock(mu_);
        served_keys_.insert(key);
        ++stats_.answered;
        if (idx == rr.home) ++stats_.answered_by_home;
      }
      return finalize(rr);
    }
    if (decoded && res.outcome != robustness::FailureKind::kTransient) {
      // The shard delivered a definitive classified verdict (bad input,
      // deterministic failure): failing over would just recompute the same
      // answer. Deliver it.
      rr.shard = idx;
      rr.status = (idx == rr.home && rr.failovers == 0)
                      ? RouterStatus::kRouted
                      : RouterStatus::kFailedOver;
      rr.response = res.response;
      return finalize(rr);
    }
    if (decoded) {
      have_decoded_refusal = true;
      last_refusal = res.response;
    }
    ++rr.failovers;  // transient death or shed: walk on
  }

  // Every shard skipped, shed, or died on us. Still a classified ending:
  // the last decoded refusal (e.g. kOverloaded from a saturated survivor)
  // when one exists, else the synthesized full-outage refusal.
  rr.status = RouterStatus::kAllShardsDown;
  if (have_decoded_refusal) {
    rr.response = last_refusal;
  } else {
    rr.response.status = FrontendStatus::kConnReset;
    rr.response.report.diagnostic = robustness::Diagnostic::kConnReset;
    rr.response.report.detail = "no shard alive to take the request";
  }
  return finalize(rr);
}

void ShardRouter::supervise() {
  const auto tick = std::max(std::chrono::milliseconds(1),
                             std::min(kMaxTick, options_.probe_interval));
  auto next_probe = std::chrono::steady_clock::now();
  for (;;) {
    {
      par::MutexLock lock(mu_);
      if (stopping_) return;
      lock.wait_for(wake_, tick);
      if (stopping_) return;
    }
    const auto now = std::chrono::steady_clock::now();
    reap_and_heal(now);
    if (now >= next_probe) {
      probe_round(now);
      next_probe = now + options_.probe_interval;
    }
  }
}

void ShardRouter::reap_and_heal(std::chrono::steady_clock::time_point now) {
  par::MutexLock lock(mu_);
  for (Shard& s : shards_) {
    if (s.pid > 0) {
      int status = 0;
      const pid_t reaped = ::waitpid(s.pid, &status, WNOHANG);
      if (reaped == s.pid) {
        WorkerRun run;
        classify_wait_status(status, /*watchdog_fired=*/false,
                             std::chrono::milliseconds{0}, run);
        s.last_exit = run.exit;
        s.pid = -1;
        set_status(s, ShardStatus::kDead);
        // Arm the seeded-backoff respawn: a not-before deadline, never a
        // sleep — the loop keeps ticking for every other shard meanwhile.
        ++s.restart_attempt;
        s.restart_not_before =
            now + options_.restart.backoff(s.restart_attempt);
        set_status(s, ShardStatus::kRestarting);
      }
    }
    if (s.status == ShardStatus::kRestarting && s.pid <= 0 &&
        now >= s.restart_not_before) {
      ::unlink(s.spec.unix_path.c_str());
      s.pid = spawn_shard(s.spec);
      if (s.pid < 0) {
        s.last_exit = WorkerExit::kForkFailure;
        ++s.restart_attempt;
        s.restart_not_before =
            now + options_.restart.backoff(s.restart_attempt);
      } else {
        s.started_at = now;
        ++stats_.restarts;
        PFACT_COUNT(kRouterRestarts);
        set_status(s, ShardStatus::kStarting);
      }
    }
  }
}

void ShardRouter::probe_round(std::chrono::steady_clock::time_point now) {
  PFACT_SPAN("serve.router.probe");
  struct Target {
    std::size_t index;
    pid_t pid;
    std::string path;
    ShardStatus status;
    std::chrono::steady_clock::time_point started_at;
  };
  std::vector<Target> targets;
  {
    par::MutexLock lock(mu_);
    for (const Shard& s : shards_) {
      if (s.status == ShardStatus::kServing ||
          s.status == ShardStatus::kStarting) {
        targets.push_back(
            {s.spec.index, s.pid, s.spec.unix_path, s.status, s.started_at});
      }
    }
  }
  for (const Target& t : targets) {
    PFACT_COUNT(kRouterProbes);
    const bool acked = probe_shard(t.path, options_.probe_deadline);
    par::MutexLock lock(mu_);
    ++stats_.probes;
    Shard& s = shards_[t.index];
    // A shard that died or respawned since the snapshot is the reaper's
    // business, not this probe's.
    if (s.pid != t.pid || s.status != t.status) continue;
    if (acked) {
      if (s.status != ShardStatus::kServing) {
        s.restart_attempt = 0;  // healthy again: clean backoff slate
        set_status(s, ShardStatus::kServing);
      }
      continue;
    }
    ++stats_.probe_failures;
    if (s.status == ShardStatus::kStarting &&
        now - s.started_at < options_.startup_grace) {
      continue;  // still booting: silence is not yet a verdict
    }
    // Bulkhead eviction: a serving shard (or one past its startup grace)
    // that cannot echo a probe is wedged — SIGKILL it so the reaper can
    // classify the death and the ring can route around it. The router's
    // own loop never blocked for more than one bounded probe.
    ++stats_.evictions;
    set_status(s, ShardStatus::kUnresponsive);
    if (s.pid > 0) ::kill(s.pid, SIGKILL);
  }
}

}  // namespace pfact::serve
