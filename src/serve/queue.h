#pragma once
// Admission-controlled job queue + the ReductionService that fronts the
// warm pool — the serving layer's graceful-degradation boundary.
//
// The service accepts ReductionTasks from many client threads, holds them
// in a BOUNDED queue, and dispatches them onto the warm worker pool through
// the supervised retry/escalation loop, consulting the verified result
// cache first. Overload is a first-class, classified outcome, never an
// unbounded buffer:
//
//   * bounded depth: a submit that would exceed `queue_depth` is refused
//     immediately with Admission::kShedQueueFull, which maps to the
//     Diagnostic::kOverloaded retry class — transient, so a client's own
//     backoff loop is the correct response;
//   * per-job deadlines: a job whose deadline has passed by the time a
//     dispatcher picks it up is shed as kShedDeadline (kDeadlineExceeded)
//     instead of burning a worker on an answer nobody is waiting for;
//   * graceful shutdown: destruction stops admission, resolves every
//     still-queued job as kShedShutdown (kCancelled), lets in-flight jobs
//     finish, and joins the dispatchers — every waiter always gets a
//     classified response.
//
// Every admission outcome is an enumerator below, named and mapped into the
// robustness taxonomy (pfact_lint rule PL010 keeps the three total), and
// backpressure is observable: serve-jobs-submitted / serve-jobs-shed
// counters plus the queue-depth histogram recorded at every admission.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "parallel/annotations.h"
#include "robustness/escalation.h"
#include "serve/result_cache.h"
#include "serve/supervisor.h"
#include "serve/warm_pool.h"

namespace pfact::serve {

// Every way an offered job can be admitted or refused. Total: a submission
// lands in exactly one class (PL010 checks each has a printable name, a
// Diagnostic mapping, and a sweep entry).
enum class Admission {
  kAccepted,       // queued within bounds; a report will follow
  kShedQueueFull,  // bounded depth reached: load shed at the front door
  kShedDeadline,   // the job's deadline expired before dispatch
  kShedShutdown,   // the service is draining or stopped
};

inline const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kShedQueueFull: return "shed-queue-full";
    case Admission::kShedDeadline: return "shed-deadline";
    case Admission::kShedShutdown: return "shed-shutdown";
  }
  return "?";
}

// The sweepable taxonomy, for the service test suite and the --serve soak
// campaign's shed-classification assertions.
inline const std::vector<Admission>& all_admissions() {
  static const std::vector<Admission> admissions = {
      Admission::kAccepted, Admission::kShedQueueFull,
      Admission::kShedDeadline, Admission::kShedShutdown};
  return admissions;
}

// Maps admission outcomes into the retry taxonomy: every shed class is
// TRANSIENT under classify_diagnostic — the work was refused, never
// refuted, so resubmitting later is always sound.
//   kAccepted      -> kOk
//   kShedQueueFull -> kOverloaded        (back off and resubmit)
//   kShedDeadline  -> kDeadlineExceeded
//   kShedShutdown  -> kCancelled
inline robustness::Diagnostic diagnose_admission(Admission a) {
  switch (a) {
    case Admission::kAccepted: return robustness::Diagnostic::kOk;
    case Admission::kShedQueueFull:
      return robustness::Diagnostic::kOverloaded;
    case Admission::kShedDeadline:
      return robustness::Diagnostic::kDeadlineExceeded;
    case Admission::kShedShutdown:
      return robustness::Diagnostic::kCancelled;
  }
  return robustness::Diagnostic::kInternalError;
}

// Per-job knobs riding on top of the service-wide SupervisorOptions. The
// chaos fields exist for the soak harness: kills and sandboxes are per-job
// schedules there, not service policy.
struct JobOptions {
  std::chrono::milliseconds deadline{0};  // 0 = the service default
  std::chrono::milliseconds watchdog{0};  // 0 = the service default
  std::function<KillPlan(std::size_t attempt)> kill_for_attempt;
  WorkerLimits rlimits;
};

struct ServiceResponse {
  Admission admission = Admission::kAccepted;
  bool from_cache = false;
  // Meaningful when admission == kAccepted and the job was dispatched; for
  // a shed job it carries the classified diagnostic instead.
  SupervisedReport report;
};

struct ServiceOptions {
  std::size_t dispatchers = 2;    // threads draining the queue
  std::size_t queue_depth = 16;   // admission bound (jobs waiting, not running)
  std::size_t cache_capacity = 128;
  std::chrono::milliseconds default_deadline{0};  // 0 = none
  WarmPoolOptions pool;
  SupervisorOptions supervisor;   // retry/ladder/checkpoint policy per job
};

class ReductionService {
 public:
  // Shared state of one submitted job; wait() blocks until the dispatcher
  // (or admission control) resolves it.
  class Pending {
   public:
    const ServiceResponse& wait();

    // Non-blocking probe: nullptr until resolved, then the response. The
    // pointer stays valid for the Pending's lifetime.
    const ServiceResponse* poll_response();

    // Registers a callback fired exactly once when the job resolves —
    // immediately (on the calling thread) if it already has. The callback
    // runs outside the Pending's lock on whichever thread resolves the job;
    // it must be cheap and non-blocking (the socket frontend uses it to
    // write one byte into its poll() wakeup pipe). At most one callback.
    void notify_on_done(std::function<void()> fn);

   private:
    friend class ReductionService;
    par::Mutex mu_;
    std::condition_variable done_cv_;
    bool done_ PFACT_GUARDED_BY(mu_) = false;
    ServiceResponse response_ PFACT_GUARDED_BY(mu_);
    std::function<void()> notifier_ PFACT_GUARDED_BY(mu_);
  };

  explicit ReductionService(ServiceOptions options = {});
  ~ReductionService();

  ReductionService(const ReductionService&) = delete;
  ReductionService& operator=(const ReductionService&) = delete;

  // Offers a job. Never blocks on queue capacity: an over-bound submit is
  // resolved immediately as kShedQueueFull. Thread-safe.
  std::shared_ptr<Pending> submit(const robustness::ReductionTask& task,
                                  const JobOptions& job = {});

  // submit + wait, for clients that want the blocking call.
  ServiceResponse run(const robustness::ReductionTask& task,
                      const JobOptions& job = {});

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t shed_shutdown = 0;
    std::uint64_t served_from_cache = 0;
    std::uint64_t peak_queue_depth = 0;
  };
  Stats stats() const;

  const WarmPool& pool() const { return pool_; }
  ResultCache& cache() { return cache_; }

 private:
  struct Job {
    robustness::ReductionTask task;
    JobOptions options;
    // time_point{} = no deadline.
    std::chrono::steady_clock::time_point deadline{};
    std::shared_ptr<Pending> pending;
  };

  static void resolve(Pending& pending, ServiceResponse response);
  static ServiceResponse shed_response(Admission admission,
                                       const char* detail);
  void dispatch_loop();
  ServiceResponse execute(const Job& job);

  ServiceOptions options_;
  WarmPool pool_;
  ResultCache cache_;
  mutable par::Mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_ PFACT_GUARDED_BY(mu_);
  bool stopping_ PFACT_GUARDED_BY(mu_) = false;
  Stats stats_ PFACT_GUARDED_BY(mu_);
  std::vector<std::thread> dispatchers_;
};

}  // namespace pfact::serve
