#pragma once
// The worker side of the process-isolation protocol.
//
// worker_main runs inside a freshly forked child: it reads ONE TaskRequest
// frame, applies its rlimit sandbox, runs the guarded reduction on the
// requested substrate — streaming every save-every-k checkpoint blob back
// over the response pipe as it is produced — and ships the RunReport as a
// result frame before _exit(0). All of pfact's actual failure handling
// lives OUTSIDE this process: a worker that dies (SIGSEGV, OOM under
// RLIMIT_AS, SIGXCPU, a supervisor watchdog SIGKILL) takes nothing with it
// but its own address space, and the checkpoints already on the wire let
// the supervisor respawn a successor that resumes where it stopped.
//
// Fork-safety: the guarded drivers are single-threaded by construction, so
// the child never touches ThreadPool::global() — a forked child inherits
// only the forking thread, and any wait on pool threads that do not exist
// would deadlock. This function must stay free of thread-pool use.

namespace pfact::serve {

// Protocol-failure exit codes, distinct from kKillPlanExitCode (wire.h) so
// the supervisor's nonzero-exit diagnostics name the real cause.
inline constexpr int kWorkerExitBadRequestFrame = 10;  // unreadable request
inline constexpr int kWorkerExitBadRequestBody = 11;   // undecodable payload
inline constexpr int kWorkerExitResultWriteFailed = 12;

// Runs the whole worker conversation on the given pipe fds; returns the
// process exit code (0 = result frame delivered). The caller — the forked
// child in WorkerPool — must pass the return value straight to _exit().
int worker_main(int request_fd, int response_fd);

// The warm-pool variant: loops over request frames on the same pipe pair,
// one job per frame, each answered by checkpoint frames plus one result
// frame. A clean EOF on the request pipe — the pool retiring the slot —
// returns 0; any protocol failure returns the same exit codes worker_main
// uses. rlimit sandboxes still apply per job, which is why the pool retires
// a slot after any rlimited job: RLIMIT_CPU is cumulative per process and a
// hard limit can never be raised back.
int worker_loop_main(int request_fd, int response_fd);

}  // namespace pfact::serve
