#pragma once
// The supervisor: resilient_run's retry/escalation loop, lifted across the
// process boundary.
//
// supervised_run drives ReductionTasks through forked workers (WorkerPool)
// instead of in-process guarded calls, which upgrades PR 3's *simulated*
// crash recovery to the real thing: a worker that SIGSEGVs, overruns its
// rlimit sandbox, or is SIGKILLed by the watchdog dies alone, and the
// checkpoints it already streamed over the pipe seed its successor. The
// decision table is unchanged — classify_diagnostic over the same
// Diagnostic taxonomy — because every way a worker can die is first mapped
// into that taxonomy by diagnose_worker_exit below. The zero-wrong-answer
// contract survives the boundary twice over: the worker's own cross-check
// certificate rides in the result frame, and the supervisor re-checks the
// returned value against the task's direct evaluation before certifying
// (a corrupted worker may die; it may not lie).

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "robustness/checkpoint.h"
#include "robustness/diagnostics.h"
#include "robustness/escalation.h"
#include "robustness/fault_injector.h"
#include "robustness/guarded_run.h"
#include "robustness/resilient_run.h"
#include "robustness/retry.h"
#include "serve/wire.h"
#include "serve/worker_pool.h"

namespace pfact::serve {

// Maps HOW a worker process ended into WHAT the retry loop should think
// happened. Total over WorkerExit (enforced by -Wswitch-enum on this TU and
// by pfact_lint rule PL009); every death class lands on a *transient*
// diagnostic — a fresh worker on the same substrate is always worth one
// more try, and the retry budget bounds the attempts.
//
//   kCompleted     -> kOk        (the result frame's own diagnostic governs)
//   kNonzeroExit   -> kWorkerFailure
//   kSignalled     -> kWorkerFailure
//   kProtocolError -> kWorkerFailure
//   kCpuLimit      -> kResourceExhausted (the rlimit sandbox fired)
//   kWatchdog      -> kDeadlineExceeded  (the supervisor's own deadline)
//   kForkFailure   -> kResourceExhausted (out of pids/memory; retry later)
inline robustness::Diagnostic diagnose_worker_exit(WorkerExit e) {
  switch (e) {
    case WorkerExit::kCompleted: return robustness::Diagnostic::kOk;
    case WorkerExit::kNonzeroExit:
      return robustness::Diagnostic::kWorkerFailure;
    case WorkerExit::kSignalled:
      return robustness::Diagnostic::kWorkerFailure;
    case WorkerExit::kCpuLimit:
      return robustness::Diagnostic::kResourceExhausted;
    case WorkerExit::kWatchdog:
      return robustness::Diagnostic::kDeadlineExceeded;
    case WorkerExit::kProtocolError:
      return robustness::Diagnostic::kWorkerFailure;
    case WorkerExit::kForkFailure:
      return robustness::Diagnostic::kResourceExhausted;
  }
  return robustness::Diagnostic::kInternalError;
}

struct SupervisorOptions {
  robustness::RetryPolicy retry;
  robustness::GuardLimits limits;
  // Ladder override; empty means default_ladder(task.algorithm).
  std::vector<robustness::Substrate> ladder;
  // Checkpoint cadence inside the worker (guard steps between snapshots);
  // 0 disables checkpoint streaming — a dead worker then restarts from
  // scratch instead of resuming.
  std::size_t checkpoint_every = 0;
  // External store for the streamed blobs; nullptr uses a private one.
  robustness::CheckpointStore* store = nullptr;
  // Wall-clock watchdog per worker; 0 disables it.
  std::chrono::milliseconds watchdog{0};
  // rlimit sandbox applied inside every worker.
  WorkerLimits rlimits;
  // Chaos schedules, keyed by global attempt number (1-based): how attempt
  // k's worker kills itself, and what fault is injected into its run.
  std::function<KillPlan(std::size_t attempt)> kill_for_attempt;
  std::function<robustness::FaultPlan(std::size_t attempt)> fault_for_attempt;
  // Sleeps backoff delays when installed; null records without sleeping.
  std::function<void(std::chrono::milliseconds)> sleeper;
};

// ResilientReport plus the worker-lifecycle view of the same attempts.
struct SupervisedReport {
  bool certified = false;
  bool value = false;
  robustness::Substrate certified_by = robustness::Substrate::kDouble;

  robustness::FailureKind outcome = robustness::FailureKind::kFatal;
  robustness::RunReport final_report;  // the deciding attempt's report
  std::vector<robustness::AttemptRecord> attempts;
  std::size_t escalations = 0;

  // Worker lifecycle across the whole supervised run.
  std::size_t workers_spawned = 0;
  std::size_t workers_crashed = 0;      // any non-kCompleted ending
  std::size_t watchdog_kills = 0;
  std::size_t resume_handoffs = 0;      // workers seeded with a blob
  std::size_t checkpoints_received = 0; // envelope-verified frames filed
  WorkerExit last_worker_exit = WorkerExit::kCompleted;

  std::string to_string() const;
};

// Runs `task` to a certified answer or a classified terminal failure, every
// attempt in its own sandboxed worker — cold-forked (WorkerPool) or leased
// from a warm pool (WarmPool), whichever JobRunner is passed. Blocking.
SupervisedReport supervised_run(JobRunner& pool,
                                const robustness::ReductionTask& task,
                                const SupervisorOptions& options = {});

}  // namespace pfact::serve
