#include "serve/worker.h"

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "robustness/checkpoint.h"
#include "robustness/escalation.h"
#include "robustness/guarded_run.h"
#include "serve/wire.h"

namespace pfact::serve {

namespace {

// Opaque nonzero near-null address: a store through it is a *genuine* wild
// write (SIGSEGV from the MMU, not a cooperative abort), which is exactly
// what the soak harness wants to contain. Volatile + global keeps the
// optimizer from proving the store away or turning it into __builtin_trap.
volatile std::uintptr_t g_wild_address = 16;

[[noreturn]] void execute_kill(KillPlan::Mode mode) {
  switch (mode) {
    case KillPlan::Mode::kSigkill:
      ::raise(SIGKILL);
      break;
    case KillPlan::Mode::kSigsegv:
      *reinterpret_cast<volatile int*>(g_wild_address) = 42;
      break;
    case KillPlan::Mode::kExit:
      ::_exit(kKillPlanExitCode);
    case KillPlan::Mode::kSpin:
      for (volatile std::uint64_t burn = 0;; ++burn) {
      }
    case KillPlan::Mode::kNone:
      break;
  }
  // SIGKILL/SIGSEGV cannot return; if the kernel somehow delivered neither,
  // die loudly rather than continue as a half-killed worker.
  ::_exit(kKillPlanExitCode);
}

void apply_rlimits(const WorkerLimits& limits) {
  if (limits.address_space_bytes != 0) {
    struct rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(limits.address_space_bytes);
    rl.rlim_max = static_cast<rlim_t>(limits.address_space_bytes);
    ::setrlimit(RLIMIT_AS, &rl);  // best-effort: a refused limit just means
                                  // the sandbox is wider, never wrong results
  }
  if (limits.cpu_seconds != 0) {
    struct rlimit rl;
    // Soft limit delivers SIGXCPU (default action: terminate, so the
    // supervisor sees WTERMSIG == SIGXCPU and classifies kCpuLimit); the
    // hard limit two seconds later is the kernel's SIGKILL backstop in case
    // a future worker ever catches SIGXCPU.
    rl.rlim_cur = static_cast<rlim_t>(limits.cpu_seconds);
    rl.rlim_max = static_cast<rlim_t>(limits.cpu_seconds + 2);
    ::setrlimit(RLIMIT_CPU, &rl);
  }
}

// One guarded job: sandbox, (maybe) die on schedule, run, ship the result.
// Shared by the one-shot worker_main and the warm worker_loop_main; returns
// the process exit code contribution (0 = result frame delivered).
int run_one_request(TaskRequest req, int response_fd) {
  apply_rlimits(req.rlimits);

  // A kill scheduled "after 0 saves" fires before the reduction starts —
  // the degenerate boundary of the kill-at-every-checkpoint sweep.
  if (req.kill.mode != KillPlan::Mode::kNone && req.kill.after_saves == 0) {
    execute_kill(req.kill.mode);
  }

  // The worker's private store: seeded with the supervisor's verified blob
  // (cross-process resume handoff), then refilled by this run's own saves.
  // Validation of the seed blob happens inside the guarded driver's
  // restore path — a blob that fails CRC/field/shape checks surfaces as
  // kCheckpointCorrupt in the result, never as a silent fresh start.
  robustness::CheckpointStore store;
  if (!req.resume_blob.empty()) {
    store.put(req.resume_step, std::move(req.resume_blob));
  }

  std::uint64_t saves_shipped = 0;
  robustness::CheckpointConfig ckpt;
  ckpt.every = req.checkpoint_every;
  ckpt.store = &store;
  ckpt.resume = true;
  ckpt.on_save = [&](std::uint64_t step, std::string_view blob) {
    // Stream the frame FIRST, then (maybe) die: a kill "after save j"
    // guarantees the supervisor holds save j, which is what makes the
    // kill-at-every-boundary equivalence suite deterministic.
    write_frame(response_fd, FrameType::kCheckpoint,
                encode_checkpoint_frame(step, blob));
    ++saves_shipped;
    if (req.kill.mode != KillPlan::Mode::kNone &&
        saves_shipped >= req.kill.after_saves) {
      execute_kill(req.kill.mode);
    }
  };

  const robustness::RunReport rep = robustness::run_on_substrate(
      req.task, req.substrate, req.limits, req.fault, ckpt);

  if (write_frame(response_fd, FrameType::kResult, encode_result(rep)) !=
      WireStatus::kOk) {
    return kWorkerExitResultWriteFailed;
  }
  return 0;
}

}  // namespace

int worker_main(int request_fd, int response_fd) {
  // The supervisor may die first; a SIGPIPE on the response pipe must
  // surface as a write error, not kill the worker with an unclassifiable
  // signal.
  ::signal(SIGPIPE, SIG_IGN);

  FrameType type = FrameType::kRequest;
  std::string payload;
  if (read_frame(request_fd, type, payload) != WireStatus::kOk ||
      type != FrameType::kRequest) {
    return kWorkerExitBadRequestFrame;
  }
  TaskRequest req;
  if (!decode_request(payload, req)) return kWorkerExitBadRequestBody;
  return run_one_request(std::move(req), response_fd);
}

int worker_loop_main(int request_fd, int response_fd) {
  ::signal(SIGPIPE, SIG_IGN);

  for (;;) {
    FrameType type = FrameType::kRequest;
    std::string payload;
    const WireStatus st = read_frame(request_fd, type, payload);
    // A clean EOF between jobs is the pool closing the request pipe to
    // retire this slot: the planned, classifiable way a warm worker ends.
    if (st == WireStatus::kEof) return 0;
    if (st != WireStatus::kOk || type != FrameType::kRequest) {
      return kWorkerExitBadRequestFrame;
    }
    TaskRequest req;
    if (!decode_request(payload, req)) return kWorkerExitBadRequestBody;
    const int rc = run_one_request(std::move(req), response_fd);
    if (rc != 0) return rc;
  }
}

}  // namespace pfact::serve
