#pragma once
// Framed pipe protocol between the supervisor and its worker subprocesses.
//
// A worker conversation is one request frame down the request pipe, then a
// stream of checkpoint frames followed by (at most) one result frame up the
// response pipe. Workers die — that is the point of process isolation — so
// the protocol is designed to make every death *detectable*, never silently
// corrupting:
//
//   * every frame is CRC32-protected (same polynomial and codec helpers as
//     the "PFCK" checkpoint blobs), so a frame torn by a mid-write SIGKILL
//     is rejected, not half-parsed;
//   * checkpoint frames carry full PFCK blobs, which the supervisor vets
//     again with validate_checkpoint_envelope before filing them for
//     resume — a crash can only ever hand back verified state;
//   * reads are poll()-based with a deadline, so a wedged worker surfaces
//     as kTimeout (the watchdog's trigger), not a hung supervisor.
//
// Frame layout (all integers little-endian):
//
//   magic   u32   "PFRM" (0x4D524650)
//   type    u8    FrameType
//   length  u64   payload byte count
//   crc     u32   CRC32 (poly 0xEDB88320) of the payload bytes
//   payload ...
//
// The request/result payloads reuse the ByteWriter/ByteReader codecs from
// robustness/checkpoint.h; the circuit itself travels as the canonical
// circuit text (circuit/io.h), so the wire format has no second, divergent
// circuit serialization to keep in sync.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "robustness/diagnostics.h"
#include "robustness/escalation.h"
#include "robustness/fault_injector.h"
#include "robustness/guarded_run.h"

namespace pfact::serve {

inline constexpr std::uint32_t kFrameMagic = 0x4D524650;  // "PFRM"
inline constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 8 + 4;
// Sanity cap on a declared payload length: a corrupted header must not make
// the reader allocate an absurd buffer before the CRC can reject it.
inline constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 30;

enum class FrameType : std::uint8_t {
  kRequest = 1,     // supervisor -> worker: one serialized TaskRequest
  kCheckpoint = 2,  // worker -> supervisor: step u64 + one PFCK blob
  kResult = 3,      // worker -> supervisor: one serialized RunReport
  kResponse = 4,    // frontend -> client: one serialized FrontendResponse
  kProbe = 5,       // router <-> shard: empty-payload health heartbeat; the
                    // frontend echoes it straight from its poll loop, so an
                    // ack proves event-loop liveness, not queue capacity
};

enum class WireStatus {
  kOk,
  kEof,          // clean end of stream before any header byte
  kTruncated,    // stream ended inside a frame (torn write / worker death)
  kBadMagic,     // stream desynchronized or not a frame at all
  kBadType,      // unknown FrameType
  kCrcMismatch,  // payload bytes do not hash to the stored CRC
  kMalformed,    // frame verified but the payload does not parse
  kIoError,      // read/write failed (EBADF, ...)
  kTimeout,      // deadline expired mid-read (the watchdog's signal)
  kConnReset,    // the peer vanished (EPIPE / ECONNRESET): a socket-era
                 // death, distinct from kIoError so clients can classify
                 // it transient and resubmit (Diagnostic::kConnReset)
};

const char* wire_status_name(WireStatus s);

// How (and whether) a worker kills itself mid-run — the soak harness's
// real-crash instrument. The trigger fires once `after_saves` checkpoint
// frames have been shipped (0 = before the reduction starts), so kills land
// at exact checkpoint boundaries and resume equivalence is assertable.
struct KillPlan {
  enum class Mode : std::uint8_t {
    kNone = 0,
    kSigkill = 1,  // raise(SIGKILL): instant death, no cleanup
    kSigsegv = 2,  // a genuine wild store: dies by SIGSEGV
    kExit = 3,     // _exit(kKillPlanExitCode): orderly-but-wrong termination
    kSpin = 4,     // burn CPU forever: watchdog / RLIMIT_CPU fodder
  };
  Mode mode = Mode::kNone;
  std::uint64_t after_saves = 0;
};

// Exit code used by KillPlan::Mode::kExit, distinct from the worker's own
// protocol-failure exit codes (worker.h).
inline constexpr int kKillPlanExitCode = 3;

// rlimit sandbox applied inside the worker before the reduction runs.
// Zero means "leave that limit alone".
struct WorkerLimits {
  std::uint64_t address_space_bytes = 0;  // RLIMIT_AS
  std::uint64_t cpu_seconds = 0;          // RLIMIT_CPU (soft; hard = soft+2)
};

// Everything a worker needs to (re-)run one guarded attempt, including the
// verified blob it should resume from (empty = start from scratch).
struct TaskRequest {
  robustness::ReductionTask task;
  robustness::Substrate substrate = robustness::Substrate::kDouble;
  robustness::GuardLimits limits;
  std::size_t checkpoint_every = 0;
  std::uint64_t resume_step = 0;
  std::string resume_blob;
  robustness::FaultPlan fault;
  KillPlan kill;
  WorkerLimits rlimits;
};

// --- payload codecs --------------------------------------------------------

std::string encode_request(const TaskRequest& req);
bool decode_request(std::string_view payload, TaskRequest& out);

// Serializes the report fields that cross the process boundary: the
// diagnostic verdict, decode data, detail strings, and the FULL pivot trace
// (so cross-process resume equivalence is assertable event-for-event).
// Metrics do not travel: op counters are per-process by design, and the
// supervisor's own counters cover the worker lifecycle.
std::string encode_result(const robustness::RunReport& rep);
bool decode_result(std::string_view payload, robustness::RunReport& out);

std::string encode_checkpoint_frame(std::uint64_t step, std::string_view blob);
bool decode_checkpoint_frame(std::string_view payload, std::uint64_t& step,
                             std::string& blob);

// --- frame I/O -------------------------------------------------------------

// Writes one complete frame; retries short writes and EINTR. kConnReset on
// EPIPE/ECONNRESET (the reader died) — callers must have SIGPIPE ignored.
WireStatus write_frame(int fd, FrameType type, std::string_view payload);

// Reads one complete frame, polling against `deadline` (zero-duration
// deadline = block indefinitely). Returns kEof only on a clean boundary;
// a stream that dies mid-frame is kTruncated.
WireStatus read_frame(int fd, FrameType& type, std::string& payload,
                      std::chrono::steady_clock::time_point deadline =
                          std::chrono::steady_clock::time_point{});

}  // namespace pfact::serve
