#include "serve/wire.h"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <cstring>

#include "circuit/io.h"
#include "robustness/checkpoint.h"

namespace pfact::serve {

namespace {

using robustness::detail::ByteReader;
using robustness::detail::ByteWriter;

// Casting helpers: the wire carries enum ordinals; a decoder must range-check
// them (a corrupted-but-CRC-valid payload cannot exist, but a version-skewed
// peer can send ordinals this build does not know).
bool to_algorithm(std::uint32_t v, robustness::Algorithm& out) {
  if (v > static_cast<std::uint32_t>(robustness::Algorithm::kGqr)) return false;
  out = static_cast<robustness::Algorithm>(v);
  return true;
}

bool to_substrate(std::uint32_t v, robustness::Substrate& out) {
  if (v > static_cast<std::uint32_t>(robustness::Substrate::kRational))
    return false;
  out = static_cast<robustness::Substrate>(v);
  return true;
}

bool to_backend(std::uint32_t v, robustness::Backend& out) {
  if (v > static_cast<std::uint32_t>(robustness::Backend::kSparse))
    return false;
  out = static_cast<robustness::Backend>(v);
  return true;
}

bool to_fault(std::uint32_t v, robustness::FaultClass& out) {
  if (v > static_cast<std::uint32_t>(robustness::FaultClass::kTornWrite))
    return false;
  out = static_cast<robustness::FaultClass>(v);
  return true;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

const char* wire_status_name(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kEof: return "eof";
    case WireStatus::kTruncated: return "truncated";
    case WireStatus::kBadMagic: return "bad-magic";
    case WireStatus::kBadType: return "bad-type";
    case WireStatus::kCrcMismatch: return "crc-mismatch";
    case WireStatus::kMalformed: return "malformed";
    case WireStatus::kIoError: return "io-error";
    case WireStatus::kTimeout: return "timeout";
    case WireStatus::kConnReset: return "conn-reset";
  }
  return "?";
}

std::string encode_request(const TaskRequest& req) {
  ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(req.task.algorithm));
  // The circuit travels as canonical text; the assignment line is emitted
  // only when inputs exist. The GEP/GQR chain tasks carry the empty
  // instance, which the text format cannot express ("inputs 0" is refused
  // by the parser) — it travels as the empty string instead.
  if (req.task.instance.circuit.num_inputs() == 0 &&
      req.task.instance.circuit.num_gates() == 0) {
    w.put_string("");
  } else {
    const std::vector<bool>* inputs =
        req.task.instance.inputs.empty() ? nullptr : &req.task.instance.inputs;
    w.put_string(circuit::circuit_to_text(req.task.instance.circuit, inputs));
  }
  w.put_i32(req.task.u);
  w.put_i32(req.task.w);
  w.put_u64(req.task.depth);
  w.put_u32(static_cast<std::uint32_t>(req.task.backend));
  w.put_u32(static_cast<std::uint32_t>(req.substrate));
  w.put_u64(req.limits.max_steps);
  w.put_u64(static_cast<std::uint64_t>(req.limits.timeout.count()));
  w.put_u64(req.limits.max_order);
  w.put_u64(double_bits(req.limits.decode_tolerance));
  w.put_u64(req.checkpoint_every);
  w.put_u64(req.resume_step);
  w.put_string(req.resume_blob);
  w.put_u32(static_cast<std::uint32_t>(req.fault.fault));
  w.put_u64(req.fault.seed);
  w.put_u8(static_cast<std::uint8_t>(req.fault.rounding));
  w.put_u8(static_cast<std::uint8_t>(req.kill.mode));
  w.put_u64(req.kill.after_saves);
  w.put_u64(req.rlimits.address_space_bytes);
  w.put_u64(req.rlimits.cpu_seconds);
  return w.take();
}

bool decode_request(std::string_view payload, TaskRequest& out) {
  ByteReader r(payload);
  TaskRequest req;
  if (!to_algorithm(r.get_u32(), req.task.algorithm)) return false;
  const std::string circuit_text = r.get_string();
  if (!r.ok()) return false;
  if (!circuit_text.empty()) {
    try {
      circuit::ParsedInstance parsed =
          circuit::parse_circuit_text(circuit_text);
      req.task.instance.circuit = std::move(parsed.circuit);
      req.task.instance.inputs =
          parsed.inputs.has_value() ? *parsed.inputs : std::vector<bool>{};
    } catch (const std::exception&) {
      return false;
    }
  }  // empty text = the empty instance ReductionTask defaults to
  req.task.u = r.get_i32();
  req.task.w = r.get_i32();
  req.task.depth = static_cast<std::size_t>(r.get_u64());
  if (!to_backend(r.get_u32(), req.task.backend)) return false;
  if (!to_substrate(r.get_u32(), req.substrate)) return false;
  req.limits.max_steps = static_cast<std::size_t>(r.get_u64());
  req.limits.timeout = std::chrono::milliseconds(
      static_cast<std::int64_t>(r.get_u64()));
  req.limits.max_order = static_cast<std::size_t>(r.get_u64());
  req.limits.decode_tolerance = bits_double(r.get_u64());
  req.checkpoint_every = static_cast<std::size_t>(r.get_u64());
  req.resume_step = r.get_u64();
  req.resume_blob = r.get_string();
  if (!to_fault(r.get_u32(), req.fault.fault)) return false;
  req.fault.seed = r.get_u64();
  const std::uint8_t rounding = r.get_u8();
  if (rounding >
      static_cast<std::uint8_t>(numeric::SoftFloatRounding::kAwayFromZero))
    return false;
  req.fault.rounding = static_cast<numeric::SoftFloatRounding>(rounding);
  const std::uint8_t kill_mode = r.get_u8();
  if (kill_mode > static_cast<std::uint8_t>(KillPlan::Mode::kSpin))
    return false;
  req.kill.mode = static_cast<KillPlan::Mode>(kill_mode);
  req.kill.after_saves = r.get_u64();
  req.rlimits.address_space_bytes = r.get_u64();
  req.rlimits.cpu_seconds = r.get_u64();
  if (!r.ok() || !r.exhausted()) return false;
  out = std::move(req);
  return true;
}

std::string encode_result(const robustness::RunReport& rep) {
  ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(rep.diagnostic));
  w.put_u8(rep.value ? 1 : 0);
  w.put_string(rep.algorithm);
  w.put_u64(rep.order);
  w.put_u64(double_bits(rep.decoded_entry));
  w.put_u64(rep.steps_used);
  w.put_u64(rep.offending_row);
  w.put_u64(rep.offending_col);
  w.put_string(rep.detail);
  w.put_string(rep.pivot_excerpt);
  w.put_string(rep.injection);
  w.put_u64(rep.trace.size());
  for (const factor::PivotEvent& e : rep.trace.events()) {
    w.put_u64(e.column);
    w.put_u64(e.pivot_pos);
    w.put_u64(e.pivot_row);
    w.put_u32(static_cast<std::uint32_t>(e.action));
  }
  return w.take();
}

bool decode_result(std::string_view payload, robustness::RunReport& out) {
  ByteReader r(payload);
  robustness::RunReport rep;
  const std::uint32_t diag = r.get_u32();
  // Bound tracks the LAST Diagnostic enumerator (append-only taxonomy).
  if (diag > static_cast<std::uint32_t>(robustness::Diagnostic::kConnReset))
    return false;
  rep.diagnostic = static_cast<robustness::Diagnostic>(diag);
  rep.value = r.get_u8() != 0;
  rep.algorithm = r.get_string();
  rep.order = static_cast<std::size_t>(r.get_u64());
  rep.decoded_entry = bits_double(r.get_u64());
  rep.steps_used = static_cast<std::size_t>(r.get_u64());
  rep.offending_row = static_cast<std::size_t>(r.get_u64());
  rep.offending_col = static_cast<std::size_t>(r.get_u64());
  rep.detail = r.get_string();
  rep.pivot_excerpt = r.get_string();
  rep.injection = r.get_string();
  const std::uint64_t events = r.get_u64();
  if (!r.ok() || events > payload.size()) return false;  // >= 28 bytes/event
  for (std::uint64_t i = 0; i < events; ++i) {
    factor::PivotEvent e;
    e.column = static_cast<std::size_t>(r.get_u64());
    e.pivot_pos = static_cast<std::size_t>(r.get_u64());
    e.pivot_row = static_cast<std::size_t>(r.get_u64());
    const std::uint32_t action = r.get_u32();
    if (action > static_cast<std::uint32_t>(factor::PivotAction::kFail))
      return false;
    e.action = static_cast<factor::PivotAction>(action);
    rep.trace.record(e);
  }
  if (!r.ok() || !r.exhausted()) return false;
  out = std::move(rep);
  return true;
}

std::string encode_checkpoint_frame(std::uint64_t step,
                                    std::string_view blob) {
  ByteWriter w;
  w.reserve(8 + blob.size());
  w.put_u64(step);
  w.put_bytes(blob.data(), blob.size());
  return w.take();
}

bool decode_checkpoint_frame(std::string_view payload, std::uint64_t& step,
                             std::string& blob) {
  if (payload.size() < 8) return false;
  ByteReader r(payload.substr(0, 8));
  step = r.get_u64();
  blob.assign(payload.substr(8));
  return true;
}

WireStatus write_frame(int fd, FrameType type, std::string_view payload) {
  ByteWriter w;
  w.reserve(kFrameHeaderBytes + payload.size());
  w.put_u32(kFrameMagic);
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_u64(payload.size());
  w.put_u32(robustness::crc32(payload.data(), payload.size()));
  w.put_bytes(payload.data(), payload.size());
  const std::string& frame = w.bytes();
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      // The reader is gone: EPIPE when the kernel knows at write time,
      // ECONNRESET when a socket peer closed with data in flight. Both are
      // the transient "resubmit elsewhere" class, not a local I/O fault.
      if (errno == EPIPE || errno == ECONNRESET) return WireStatus::kConnReset;
      return WireStatus::kIoError;
    }
    off += static_cast<std::size_t>(n);
  }
  return WireStatus::kOk;
}

namespace {

// Reads exactly n bytes into dst, honoring the deadline. `any_read` reports
// whether at least one byte arrived (EOF after some bytes = torn frame).
WireStatus read_exact(int fd, char* dst, std::size_t n,
                      std::chrono::steady_clock::time_point deadline,
                      bool* any_read) {
  std::size_t off = 0;
  while (off < n) {
    if (deadline != std::chrono::steady_clock::time_point{}) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return WireStatus::kTimeout;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      // Clamp the poll timeout: a deadline far in the future must not
      // overflow poll's int argument into a negative (= infinite) wait. The
      // loop re-derives the remaining budget each pass, so clamping only
      // bounds one poll, never the total wait.
      const long long left_ms = static_cast<long long>(left.count()) + 1;
      constexpr long long kMaxPollMs = 60'000;
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int pr =
          ::poll(&pfd, 1,
                 static_cast<int>(left_ms < kMaxPollMs ? left_ms : kMaxPollMs));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return WireStatus::kIoError;
      }
      if (pr == 0) return WireStatus::kTimeout;
    }
    const ssize_t r = ::read(fd, dst + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return WireStatus::kConnReset;
      return WireStatus::kIoError;
    }
    if (r == 0) {
      return (off == 0 && !*any_read) ? WireStatus::kEof
                                      : WireStatus::kTruncated;
    }
    *any_read = true;
    off += static_cast<std::size_t>(r);
  }
  return WireStatus::kOk;
}

}  // namespace

WireStatus read_frame(int fd, FrameType& type, std::string& payload,
                      std::chrono::steady_clock::time_point deadline) {
  char header[kFrameHeaderBytes];
  bool any_read = false;
  WireStatus st = read_exact(fd, header, sizeof(header), deadline, &any_read);
  if (st != WireStatus::kOk) return st;
  ByteReader r(std::string_view(header, sizeof(header)));
  const std::uint32_t magic = r.get_u32();
  const std::uint8_t raw_type = r.get_u8();
  const std::uint64_t length = r.get_u64();
  const std::uint32_t crc = r.get_u32();
  if (magic != kFrameMagic) return WireStatus::kBadMagic;
  if (raw_type < static_cast<std::uint8_t>(FrameType::kRequest) ||
      raw_type > static_cast<std::uint8_t>(FrameType::kProbe)) {
    return WireStatus::kBadType;
  }
  if (length > kMaxFramePayload) return WireStatus::kMalformed;
  payload.resize(length);
  if (length != 0) {
    st = read_exact(fd, payload.data(), length, deadline, &any_read);
    if (st == WireStatus::kEof) return WireStatus::kTruncated;
    if (st != WireStatus::kOk) return st;
  }
  if (robustness::crc32(payload.data(), payload.size()) != crc)
    return WireStatus::kCrcMismatch;
  type = static_cast<FrameType>(raw_type);
  return WireStatus::kOk;
}

}  // namespace pfact::serve
