#include "serve/supervisor.h"

#include <utility>

#include "obs/counters.h"
#include "obs/trace.h"

namespace pfact::serve {

using robustness::AttemptRecord;
using robustness::CheckpointStore;
using robustness::Diagnostic;
using robustness::FailureKind;
using robustness::FaultPlan;
using robustness::ReductionTask;
using robustness::RunReport;
using robustness::Substrate;

std::string SupervisedReport::to_string() const {
  std::string s =
      certified ? std::string("certified value=") + (value ? "true" : "false") +
                      " by " + robustness::substrate_name(certified_by)
                : std::string("terminal ") +
                      robustness::failure_kind_name(outcome) + ": " +
                      robustness::diagnostic_name(final_report.diagnostic);
  s += " after " + std::to_string(attempts.size()) + " attempt(s), " +
       std::to_string(escalations) + " escalation(s); workers: " +
       std::to_string(workers_spawned) + " spawned, " +
       std::to_string(workers_crashed) + " crashed, " +
       std::to_string(watchdog_kills) + " watchdog-killed, " +
       std::to_string(resume_handoffs) + " resume handoff(s), " +
       std::to_string(checkpoints_received) + " checkpoint(s) received";
  for (const AttemptRecord& a : attempts) s += "\n  " + a.to_string();
  return s;
}

SupervisedReport supervised_run(JobRunner& pool, const ReductionTask& task,
                                const SupervisorOptions& options) {
  PFACT_SPAN("serve.supervised-run");
  SupervisedReport out;
  CheckpointStore local_store;
  CheckpointStore* store =
      options.store != nullptr ? options.store : &local_store;
  const std::vector<Substrate> ladder =
      options.ladder.empty() ? robustness::default_ladder(task.algorithm)
                             : options.ladder;
  const std::size_t attempts_per_rung =
      options.retry.max_attempts == 0 ? 1 : options.retry.max_attempts;

  std::size_t global_attempt = 0;
  bool first_rung = true;
  for (std::size_t rung = 0; rung < ladder.size(); ++rung) {
    const Substrate sub = ladder[rung];
    if (!robustness::substrate_supported(task.algorithm, sub)) continue;
    // Checkpoints are field-tagged: blobs streamed by another rung's worker
    // are useless here. The FIRST rung keeps whatever the caller
    // pre-populated (crash/resume harnesses hand work back through
    // options.store).
    if (!first_rung) store->clear();
    first_rung = false;

    for (std::size_t attempt = 1; attempt <= attempts_per_rung; ++attempt) {
      ++global_attempt;
      PFACT_COUNT(kRetryAttempts);

      AttemptRecord rec;
      rec.substrate = sub;
      rec.attempt = attempt;
      if (attempt > 1) {
        rec.backoff = options.retry.backoff(attempt - 1);
        if (options.sleeper && rec.backoff.count() > 0) {
          options.sleeper(rec.backoff);
        }
      }

      TaskRequest req;
      req.task = task;
      req.substrate = sub;
      req.limits = options.limits;
      req.checkpoint_every = options.checkpoint_every;
      if (options.kill_for_attempt) {
        req.kill = options.kill_for_attempt(global_attempt);
      }
      if (options.fault_for_attempt) {
        req.fault = options.fault_for_attempt(global_attempt);
      }
      req.rlimits = options.rlimits;

      // Cross-process resume handoff: seed the fresh worker with the
      // newest verified blob a predecessor streamed before dying. The
      // worker re-validates it in full (field tag, shape, CRC) before
      // resuming — the handoff can delay a run, never corrupt one.
      const bool had_checkpoint = !store->empty();
      if (had_checkpoint) {
        req.resume_step = store->latest_step();
        req.resume_blob = *store->latest();
        PFACT_COUNT(kWorkerResumeHandoffs);
        ++out.resume_handoffs;
      }

      WorkerRun run = pool.run_task(req, store, options.watchdog);
      ++out.workers_spawned;
      out.checkpoints_received += run.checkpoints_received;
      out.last_worker_exit = run.exit;
      if (run.exit != WorkerExit::kCompleted) ++out.workers_crashed;
      if (run.exit == WorkerExit::kWatchdog) ++out.watchdog_kills;

      RunReport rep;
      if (run.exit == WorkerExit::kCompleted) {
        rep = std::move(run.result);
        // Defense in depth: the worker's certificate crossed a process
        // boundary, so re-certify against the direct evaluation here. A
        // worker whose memory was corrupted enough to ship kOk with the
        // wrong boolean becomes a classified mismatch, not an answer.
        if (rep.diagnostic == Diagnostic::kOk &&
            rep.value != task.expected()) {
          rep.diagnostic = Diagnostic::kCrossCheckMismatch;
          rep.detail =
              "supervisor re-check: worker-certified value contradicts "
              "direct evaluation";
        }
      } else {
        rep.diagnostic = diagnose_worker_exit(run.exit);
        rep.algorithm = robustness::algorithm_name(task.algorithm);
        rep.detail = run.detail;
      }

      rec.diagnostic = rep.diagnostic;
      rec.kind = robustness::classify_diagnostic(rep.diagnostic);
      rec.resumed = had_checkpoint &&
                    rep.diagnostic != Diagnostic::kCheckpointCorrupt;
      rec.detail = rep.detail;
      out.attempts.push_back(rec);
      out.final_report = std::move(rep);

      if (rec.kind == FailureKind::kSuccess) {
        out.certified = true;
        out.value = out.final_report.value;
        out.certified_by = sub;
        out.outcome = FailureKind::kSuccess;
        return out;
      }
      if (rec.kind == FailureKind::kFatal) {
        out.outcome = FailureKind::kFatal;
        return out;
      }
      if (rec.kind == FailureKind::kDeterministic) {
        break;  // this substrate will reproduce these bits; climb
      }
      // Transient. A worker that REJECTED its seed blob (kCheckpointCorrupt)
      // must not be handed the same blob again — drop it so the next worker
      // falls back to the previous intact snapshot (or a fresh start).
      if (out.final_report.diagnostic == Diagnostic::kCheckpointCorrupt) {
        store->drop_latest();
      }
    }

    bool has_next = false;
    for (std::size_t r = rung + 1; r < ladder.size(); ++r) {
      if (robustness::substrate_supported(task.algorithm, ladder[r]))
        has_next = true;
    }
    if (has_next) {
      PFACT_COUNT(kEscalations);
      ++out.escalations;
    }
  }

  out.outcome = robustness::classify_diagnostic(out.final_report.diagnostic);
  return out;
}

}  // namespace pfact::serve
