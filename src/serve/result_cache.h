#pragma once
// ResultCache: content-addressed, verified answers for the serving layer.
//
// Repeated and overlapping traffic is the north-star workload (ROADMAP item
// 2), and a reduction is pure: the same circuit bytes + algorithm +
// substrate always decode to the same boolean. The cache exploits exactly
// that purity — its key is the canonical circuit text plus the task shape
// and substrate, so two requests collide only when they would provably
// compute the same answer.
//
// Trust rules (DESIGN.md section 12), because a cache is a second way to be
// wrong at scale:
//
//   * fill only with VERIFIED answers: the service inserts an entry only
//     after supervised_run certified it (worker cross-check + supervisor
//     re-check against the direct evaluation);
//   * validate on read: every stored entry carries its own CRC32, and the
//     final checkpoint blob riding with it must still pass the PFCK
//     envelope check — a flipped bit yields a classified kCorruptEntry /
//     kEnvelopeRejected probe (and the entry is dropped), never a served
//     answer;
//   * bounded: capacity-limited with least-recently-used eviction, so the
//     cache degrades to recomputation, not to unbounded memory.
//
// Every probe outcome is an enumerator of CacheProbe, named and mapped into
// the robustness Diagnostic taxonomy below (pfact_lint rule PL010 keeps the
// three total).

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "parallel/annotations.h"
#include "robustness/diagnostics.h"
#include "robustness/escalation.h"

namespace pfact::serve {

// Every way a cache read can end. Total: a lookup lands in exactly one
// class (PL010 checks each has a printable name, a Diagnostic mapping, and
// a sweep entry).
enum class CacheProbe {
  kHit,               // entry present, CRC and envelope verified
  kMiss,              // no entry under this key
  kCorruptEntry,      // stored bytes no longer hash to the entry CRC
  kEnvelopeRejected,  // entry CRC fine but its PFCK blob fails the envelope
};

inline const char* cache_probe_name(CacheProbe p) {
  switch (p) {
    case CacheProbe::kHit: return "hit";
    case CacheProbe::kMiss: return "miss";
    case CacheProbe::kCorruptEntry: return "corrupt-entry";
    case CacheProbe::kEnvelopeRejected: return "envelope-rejected";
  }
  return "?";
}

// The sweepable taxonomy, for the cache test suite's coverage assertion.
inline const std::vector<CacheProbe>& all_cache_probes() {
  static const std::vector<CacheProbe> probes = {
      CacheProbe::kHit, CacheProbe::kMiss, CacheProbe::kCorruptEntry,
      CacheProbe::kEnvelopeRejected};
  return probes;
}

// Maps probe outcomes into the retry taxonomy. Hits and misses are not
// failures (kOk: the service either serves or recomputes); both corruption
// classes are kCheckpointCorrupt — transient, because dropping the entry
// and re-factoring always recovers.
inline robustness::Diagnostic diagnose_cache_probe(CacheProbe p) {
  switch (p) {
    case CacheProbe::kHit: return robustness::Diagnostic::kOk;
    case CacheProbe::kMiss: return robustness::Diagnostic::kOk;
    case CacheProbe::kCorruptEntry:
      return robustness::Diagnostic::kCheckpointCorrupt;
    case CacheProbe::kEnvelopeRejected:
      return robustness::Diagnostic::kCheckpointCorrupt;
  }
  return robustness::Diagnostic::kInternalError;
}

// What a hit returns: the certified boolean, the substrate that certified
// it, and the run's final checkpoint blob (empty when checkpointing was
// off) so a future resume-style consumer can pick up the terminal state.
struct CacheEntry {
  bool value = false;
  robustness::Substrate substrate = robustness::Substrate::kDouble;
  std::string final_checkpoint;
};

class ResultCache {
 public:
  // capacity = maximum resident entries; 0 disables the cache entirely
  // (every lookup misses, every insert is dropped).
  explicit ResultCache(std::size_t capacity = 128);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // The content address: algorithm + task shape (u, w, depth) + canonical
  // circuit text + substrate. Everything that determines the answer, and
  // nothing that does not.
  static std::string key_for(const robustness::ReductionTask& task,
                             robustness::Substrate substrate);

  // Probes the cache. On kHit, `out` holds the verified entry and the key
  // is freshened in LRU order. On either corruption class the entry is
  // dropped before returning — a poisoned entry is never probed twice.
  CacheProbe lookup(const std::string& key, CacheEntry& out);

  // Files a VERIFIED entry under `key`, evicting the least recently used
  // entry if at capacity. Callers must only pass certified answers; the
  // cache cannot re-derive truth, only preserve it.
  void insert(const std::string& key, const CacheEntry& entry);

  std::size_t size() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
    std::uint64_t corrupt = 0;  // both corruption classes
  };
  Stats stats() const;

  // Test seam: flips one byte inside the stored (CRC-protected) bytes of
  // `key`, returning false if the key is absent. The next lookup must
  // classify the damage, not serve it.
  bool corrupt_entry_for_testing(const std::string& key);

 private:
  struct Stored {
    std::string bytes;       // serialized CacheEntry
    std::uint32_t crc = 0;   // crc32 of `bytes` at fill time
    std::list<std::string>::iterator lru;  // position in lru_ (front = MRU)
  };

  void drop(const std::string& key) PFACT_REQUIRES(mu_);

  const std::size_t capacity_;
  mutable par::Mutex mu_;
  std::unordered_map<std::string, Stored> entries_ PFACT_GUARDED_BY(mu_);
  std::list<std::string> lru_ PFACT_GUARDED_BY(mu_);
  Stats stats_ PFACT_GUARDED_BY(mu_);
};

}  // namespace pfact::serve
