#include "serve/worker_pool.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/counters.h"
#include "obs/trace.h"
#include "serve/worker.h"

namespace pfact::serve {

namespace {

struct Pipe {
  int rd = -1;
  int wr = -1;

  bool open() {
    int fds[2];
    if (::pipe(fds) != 0) return false;
    rd = fds[0];
    wr = fds[1];
    // Close-on-exec is hygiene, not correctness (workers fork, never exec),
    // but it keeps pipe fds from leaking into anything a test might spawn.
    ::fcntl(rd, F_SETFD, FD_CLOEXEC);
    ::fcntl(wr, F_SETFD, FD_CLOEXEC);
    return true;
  }
  void close_rd() {
    if (rd >= 0) ::close(rd);
    rd = -1;
  }
  void close_wr() {
    if (wr >= 0) ::close(wr);
    wr = -1;
  }
  ~Pipe() {
    close_rd();
    close_wr();
  }
};

// Reaps the child, blocking until it is gone. The worker is either already
// dead (EOF seen) or SIGKILLed (watchdog), so this cannot hang.
int reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

}  // namespace

void classify_wait_status(int status, bool watchdog_fired,
                          std::chrono::milliseconds watchdog, WorkerRun& run) {
  if (watchdog_fired) {
    run.exit = WorkerExit::kWatchdog;
    run.term_signal = SIGKILL;
    run.detail = "watchdog deadline (" + std::to_string(watchdog.count()) +
                 "ms) expired; worker SIGKILLed";
  } else if (WIFEXITED(status)) {
    run.exit_code = WEXITSTATUS(status);
    if (run.exit_code == 0) {
      run.exit = run.has_result ? WorkerExit::kCompleted
                                : WorkerExit::kProtocolError;
      if (!run.has_result && run.detail.empty()) {
        run.detail = "worker exited 0 without a result frame";
      }
    } else {
      run.exit = WorkerExit::kNonzeroExit;
      run.detail = "worker exited with status " +
                   std::to_string(run.exit_code);
    }
  } else if (WIFSIGNALED(status)) {
    run.term_signal = WTERMSIG(status);
    if (run.term_signal == SIGXCPU) {
      run.exit = WorkerExit::kCpuLimit;
      run.detail = "worker hit RLIMIT_CPU (SIGXCPU)";
    } else {
      run.exit = WorkerExit::kSignalled;
      run.detail = "worker killed by signal " +
                   std::to_string(run.term_signal) + " (" +
                   ::strsignal(run.term_signal) + ")";
    }
  } else {
    run.exit = WorkerExit::kProtocolError;
    run.detail = "unrecognized waitpid status " + std::to_string(status);
  }
}

WorkerPool::WorkerPool() {
  // A worker killed between our write() calls turns the request pipe into a
  // broken pipe; the supervisor must see EPIPE, not die of SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
}

void WorkerPool::register_worker(pid_t pid) {
  par::MutexLock lock(mu_);
  live_.push_back(pid);
  ++stats_.spawned;
}

void WorkerPool::finish_worker(pid_t pid, WorkerExit exit) {
  par::MutexLock lock(mu_);
  live_.erase(std::remove(live_.begin(), live_.end(), pid), live_.end());
  if (exit == WorkerExit::kCompleted) {
    ++stats_.completed;
  } else {
    ++stats_.crashed;
  }
  if (exit == WorkerExit::kWatchdog) ++stats_.watchdog_kills;
}

WorkerPool::Stats WorkerPool::stats() const {
  par::MutexLock lock(mu_);
  return stats_;
}

std::size_t WorkerPool::live_workers() const {
  par::MutexLock lock(mu_);
  return live_.size();
}

void WorkerPool::set_fork_for_testing(std::function<pid_t()> fork_fn) {
  fork_fn_ = std::move(fork_fn);
}

WorkerRun WorkerPool::run_task(const TaskRequest& request,
                               robustness::CheckpointStore* store,
                               std::chrono::milliseconds watchdog) {
  PFACT_SPAN("serve.worker");
  WorkerRun run;

  Pipe to_worker;    // supervisor writes requests
  Pipe from_worker;  // worker writes checkpoints + result
  if (!to_worker.open() || !from_worker.open()) {
    // Same resource family as a failed fork: fd exhaustion, and just as
    // transient — classify, count, let the retry table back off.
    run.exit = WorkerExit::kForkFailure;
    run.detail = "pipe() failed: cannot launch a worker";
    PFACT_COUNT(kServeForkFailures);
    return run;
  }

  const pid_t pid = fork_fn_ ? fork_fn_() : ::fork();
  if (pid < 0) {
    // EAGAIN/ENOMEM: the machine is out of processes or memory RIGHT NOW.
    // kForkFailure maps to kResourceExhausted — transient, retried with
    // backoff — because no worker ever ran, so nothing was refuted.
    run.exit = WorkerExit::kForkFailure;
    run.detail = "fork() failed: cannot launch a worker";
    PFACT_COUNT(kServeForkFailures);
    return run;
  }
  if (pid == 0) {
    // Child. Only async-signal-safe-ish setup here, then worker_main; the
    // guarded drivers are single-threaded, so the child never waits on
    // pool threads it did not inherit.
    to_worker.close_wr();
    from_worker.close_rd();
    ::_exit(worker_main(to_worker.rd, from_worker.wr));
  }

  // Parent.
  register_worker(pid);
  PFACT_COUNT(kWorkerSpawns);
  to_worker.close_rd();
  from_worker.close_wr();

  // Ship the request AFTER the fork: large requests (dense resume blobs)
  // exceed the 64KB pipe buffer, and a pre-fork write would deadlock
  // against a reader that does not exist yet. The child reads immediately;
  // if it dies first, SIG_IGN'd SIGPIPE turns the stall into EPIPE.
  const WireStatus sent = write_frame(to_worker.wr, FrameType::kRequest,
                                     encode_request(request));
  if (sent != WireStatus::kOk) {
    run.detail = std::string("request write failed: ") +
                 wire_status_name(sent);
    // Fall through: the read loop below sees EOF and waitpid classifies
    // whatever the worker did in the meantime.
  }
  to_worker.close_wr();  // the worker's request stream is complete

  auto deadline = watchdog.count() > 0
                      ? std::chrono::steady_clock::now() + watchdog
                      : std::chrono::steady_clock::time_point{};
  bool watchdog_fired = false;

  for (;;) {
    FrameType type = FrameType::kResult;
    std::string payload;
    const WireStatus st = read_frame(from_worker.rd, type, payload, deadline);
    if (st == WireStatus::kTimeout) {
      // The watchdog: the worker overran its wall-clock budget. SIGKILL is
      // deliberate — a wedged worker may not honor anything gentler — and
      // the loop keeps draining so frames already in flight are not lost.
      watchdog_fired = true;
      ::kill(pid, SIGKILL);
      PFACT_COUNT(kWorkerWatchdogKills);
      // Drop the (now expired) deadline: the worker is dead, so the drain
      // below terminates at EOF — re-polling against the past would spin.
      deadline = std::chrono::steady_clock::time_point{};
      continue;
    }
    if (st == WireStatus::kEof) break;  // worker closed its end (or died)
    if (st != WireStatus::kOk) {
      // Torn/corrupt frame: the worker died mid-write or the stream
      // desynchronized. Nothing after this point can be trusted.
      if (run.detail.empty()) {
        run.detail = std::string("response stream broke: ") +
                     wire_status_name(st);
      }
      break;
    }
    if (type == FrameType::kCheckpoint) {
      std::uint64_t step = 0;
      std::string blob;
      if (decode_checkpoint_frame(payload, step, blob) &&
          robustness::validate_checkpoint_envelope(blob) ==
              robustness::CheckpointStatus::kOk) {
        ++run.checkpoints_received;
        if (store != nullptr) store->put(step, std::move(blob));
      } else {
        // A blob that does not hash is never filed — the fault injector's
        // torn writes (and real torn pipe writes) stop here.
        ++run.checkpoints_rejected;
        PFACT_COUNT(kCheckpointRejects);
      }
    } else if (type == FrameType::kResult) {
      if (decode_result(payload, run.result)) {
        run.has_result = true;
      } else if (run.detail.empty()) {
        run.detail = "result frame did not decode";
      }
      // The result is the conversation's last frame; drain to EOF anyway so
      // the child's write end closes before we reap.
    } else if (run.detail.empty()) {
      run.detail = "unexpected frame type from worker";
    }
  }
  from_worker.close_rd();

  const int status = reap(pid);
  classify_wait_status(status, watchdog_fired, watchdog, run);

  if (run.exit != WorkerExit::kCompleted) PFACT_COUNT(kWorkerCrashes);
  finish_worker(pid, run.exit);
  return run;
}

}  // namespace pfact::serve
