#pragma once
// Socket front end for the reduction service — the door "millions of users"
// traffic walks through, built to stay correct while the network misbehaves.
//
// The Frontend is a single poll()-driven event loop listening on a localhost
// Unix socket and/or a 127.0.0.1 TCP port. A client conversation reuses the
// PFRM framing from wire.h verbatim: one kRequest frame carrying a
// TaskRequest down the socket, one kResponse frame carrying a
// FrontendResponse back. Nothing about the frame format is network-specific,
// so a frame captured off the socket replays byte-for-byte against the pipe
// codecs — and the CRC/length/type checks that reject a torn pipe write
// reject a torn TCP segment the same way.
//
// Robustness is the design center, not a wrapper (DESIGN.md section 14):
//
//   * every connection outcome is one FrontendStatus enumerator — named,
//     counted, diagnosable, sweepable (pfact_lint rule PL012 keeps the four
//     total). A client is never dropped without a classification; the only
//     unclassified exit is a clean close at a frame boundary.
//   * per-connection deadlines: a frame must COMPLETE within read_deadline
//     of its first byte, and a response must drain within write_deadline —
//     the slowloris client that dribbles a header forever is evicted with a
//     best-effort kDeadline response, never allowed to pin a connection slot.
//   * partial-read/partial-write resumption: the event loop never blocks on
//     a socket. Frames are reassembled across however many POLLIN rounds
//     the bytes take; responses drain across POLLOUT rounds.
//   * bounded connections: at max_connections the listener still accepts —
//     and immediately answers kOverloaded and closes, a classified shed
//     mirroring the admission queue's kShedQueueFull.
//   * graceful drain: begin_drain() (or SIGTERM via install_sigterm_drain)
//     stops accepting, answers kDraining to new requests on open
//     connections, lets every in-flight job finish and its verified result
//     flush into the cache, then exits the loop.
//
// The service boundary is ReductionService::submit + Pending::notify_on_done:
// a decoded request is admitted through the same bounded queue as in-process
// callers, and the resolving dispatcher wakes the loop through a self-pipe.
// The loop therefore holds NO lock while polling and never waits on a job.

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/counters.h"
#include "parallel/annotations.h"
#include "robustness/diagnostics.h"
#include "serve/queue.h"
#include "serve/wire.h"

namespace pfact::serve {

// Every way a client conversation can end, from the LISTENER's point of
// view. Total: each request (or failed attempt at one) lands in exactly one
// class. PL012 checks each has a printable name, an obs counter, a
// Diagnostic mapping, and a sweep entry.
enum class FrontendStatus {
  kAccepted,        // decoded, admitted, supervised result frame delivered
  kMalformedFrame,  // bad magic/type/length/CRC or an undecodable payload
  kDeadline,        // read or write deadline expired (slow client evicted)
  kConnReset,       // peer vanished mid-frame or mid-response
  kOverloaded,      // connection bound or admission queue shed the load
  kDraining,        // drain in progress: request refused, finish elsewhere
};

inline const char* frontend_status_name(FrontendStatus s) {
  switch (s) {
    case FrontendStatus::kAccepted: return "accepted";
    case FrontendStatus::kMalformedFrame: return "malformed-frame";
    case FrontendStatus::kDeadline: return "deadline";
    case FrontendStatus::kConnReset: return "conn-reset";
    case FrontendStatus::kOverloaded: return "overloaded";
    case FrontendStatus::kDraining: return "draining";
  }
  return "?";
}

// The sweepable taxonomy, for the rejection-matrix test and the --net soak
// campaign's full-coverage contract.
inline const std::vector<FrontendStatus>& all_frontend_statuses() {
  static const std::vector<FrontendStatus> statuses = {
      FrontendStatus::kAccepted,   FrontendStatus::kMalformedFrame,
      FrontendStatus::kDeadline,   FrontendStatus::kConnReset,
      FrontendStatus::kOverloaded, FrontendStatus::kDraining};
  return statuses;
}

// Maps listener outcomes into the retry taxonomy the client library (and
// any caller's own backoff loop) classifies with. Malformed frames are the
// one DETERMINISTIC class — resending the same bytes reproduces the same
// refusal; every other refusal is transient.
//   kAccepted       -> kOk
//   kMalformedFrame -> kBadInput          (fatal: fix the frame, not retry)
//   kDeadline       -> kDeadlineExceeded  (transient)
//   kConnReset      -> kConnReset         (transient)
//   kOverloaded     -> kOverloaded        (transient: back off, resubmit)
//   kDraining       -> kCancelled         (transient)
inline robustness::Diagnostic diagnose_frontend_status(FrontendStatus s) {
  switch (s) {
    case FrontendStatus::kAccepted: return robustness::Diagnostic::kOk;
    case FrontendStatus::kMalformedFrame:
      return robustness::Diagnostic::kBadInput;
    case FrontendStatus::kDeadline:
      return robustness::Diagnostic::kDeadlineExceeded;
    case FrontendStatus::kConnReset:
      return robustness::Diagnostic::kConnReset;
    case FrontendStatus::kOverloaded:
      return robustness::Diagnostic::kOverloaded;
    case FrontendStatus::kDraining:
      return robustness::Diagnostic::kCancelled;
  }
  return robustness::Diagnostic::kInternalError;
}

// The obs counter bumped when a conversation ends in each class — the
// "counted" leg of the taxonomy (PL012).
inline obs::Counter frontend_status_counter(FrontendStatus s) {
  switch (s) {
    case FrontendStatus::kAccepted: return obs::Counter::kFrontendAccepted;
    case FrontendStatus::kMalformedFrame:
      return obs::Counter::kFrontendMalformed;
    case FrontendStatus::kDeadline:
      return obs::Counter::kFrontendDeadlineEvictions;
    case FrontendStatus::kConnReset:
      return obs::Counter::kFrontendConnResets;
    case FrontendStatus::kOverloaded:
      return obs::Counter::kFrontendOverloadSheds;
    case FrontendStatus::kDraining:
      return obs::Counter::kFrontendDrainRefusals;
  }
  return obs::Counter::kFrontendMalformed;
}

// --- network fault injection ------------------------------------------------

// The chaos instrument for the socket layer: each shape is one way real
// client traffic goes wrong, applied by the CLIENT side of a connection
// (Client honors it in submit; raw sockets in tests apply it by hand).
enum class NetFault : std::uint8_t {
  kNone = 0,
  kTornFrame = 1,       // write a strict prefix of the frame, then close
  kMidFrameClose = 2,   // close inside the 17-byte header
  kDribble = 3,         // write the full frame one byte at a time (must
                        // still be ACCEPTED: partial-read resumption proof)
  kStalledReader = 4,   // send a partial frame then go silent, holding the
                        // connection open (slowloris; expects kDeadline)
  kGarbagePreamble = 5, // send random junk where a frame should start
};

inline const char* net_fault_name(NetFault f) {
  switch (f) {
    case NetFault::kNone: return "none";
    case NetFault::kTornFrame: return "torn-frame";
    case NetFault::kMidFrameClose: return "mid-frame-close";
    case NetFault::kDribble: return "dribble";
    case NetFault::kStalledReader: return "stalled-reader";
    case NetFault::kGarbagePreamble: return "garbage-preamble";
  }
  return "?";
}

inline const std::vector<NetFault>& all_net_faults() {
  static const std::vector<NetFault> faults = {
      NetFault::kNone,          NetFault::kTornFrame,
      NetFault::kMidFrameClose, NetFault::kDribble,
      NetFault::kStalledReader, NetFault::kGarbagePreamble};
  return faults;
}

struct NetFaultPlan {
  NetFault fault = NetFault::kNone;
  std::uint64_t seed = 0;       // where the tear lands / what the junk is
  std::size_t on_attempt = 1;   // which client attempt to sabotage; 0 = never
  // How long kStalledReader holds its silence. Must exceed the server's
  // read_deadline for the eviction to fire.
  std::chrono::milliseconds stall{500};
};

// --- response payload -------------------------------------------------------

// What rides back in a kResponse frame: the listener's classification plus
// the service's full answer. For non-kAccepted statuses the report carries
// the classified diagnostic (diagnose_frontend_status) and a human detail.
struct FrontendResponse {
  FrontendStatus status = FrontendStatus::kConnReset;
  Admission admission = Admission::kAccepted;
  bool from_cache = false;
  bool certified = false;
  bool value = false;
  robustness::Substrate certified_by = robustness::Substrate::kDouble;
  robustness::RunReport report;  // the deciding attempt's full report
};

std::string encode_response(const FrontendResponse& resp);
bool decode_response(std::string_view payload, FrontendResponse& out);

// --- the listener -----------------------------------------------------------

struct FrontendOptions {
  // Unix-domain listener path; empty disables it. An existing socket file
  // at the path is unlinked first (stale from a kill -9'd predecessor).
  std::string unix_path;
  // 127.0.0.1 TCP listener; port 0 picks an ephemeral port (tcp_port()).
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  // Connection slots. At the bound the listener still accepts and answers
  // kOverloaded — a classified shed, not a silent SYN-queue stall.
  std::size_t max_connections = 32;
  // A frame must complete within this of its first byte (slowloris guard).
  std::chrono::milliseconds read_deadline{2000};
  // A queued response must fully drain within this of being queued.
  std::chrono::milliseconds write_deadline{2000};
  // Job knobs applied to every socket submission (deadline, watchdog, ...).
  JobOptions job;
};

class Frontend {
 public:
  // Binds, listens, and starts the event-loop thread. `service` must
  // outlive the Frontend. running() reports whether any listener bound.
  Frontend(ReductionService& service, FrontendOptions options);
  ~Frontend();  // begin_drain() + join

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  bool running() const;
  // The bound TCP port (resolves an ephemeral request); 0 when TCP is off.
  std::uint16_t tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  // Stop accepting, refuse new requests as kDraining, finish in-flight
  // jobs (their verified results flush into the service cache), then exit
  // the loop. Idempotent; returns immediately (join happens in ~Frontend).
  void begin_drain();
  // True once the event loop has fully exited (drain complete).
  bool drained() const;

  // Installs a process-wide SIGTERM handler that asks every live Frontend
  // to begin_drain() — the graceful-shutdown hook for a served deployment.
  // The handler only writes to a self-pipe; it is async-signal-safe.
  static void install_sigterm_drain();
  // Clears the latched SIGTERM-drain flag so frontends created after a
  // handled SIGTERM (tests only — a real deployment exits) start live.
  static void reset_sigterm_for_testing();

  struct Stats {
    std::uint64_t conns_accepted = 0;
    // Conversations ended in each FrontendStatus, indexable by enumerator.
    std::array<std::uint64_t, 6> by_status{};
    std::uint64_t clean_closes = 0;  // EOF at a frame boundary (no status)

    std::uint64_t status(FrontendStatus s) const {
      return by_status[static_cast<std::size_t>(s)];
    }
  };
  Stats stats() const;

 private:
  struct Conn;

  void event_loop();
  void accept_ready(int listen_fd);
  bool conn_readable(Conn& c);   // false = close the connection
  bool conn_writable(Conn& c);
  bool conn_lingering(Conn& c);  // discarding input after a refusal
  bool check_deadlines(Conn& c, std::chrono::steady_clock::time_point now);
  void finish_frame(Conn& c);    // a complete verified frame arrived
  void queue_response(Conn& c, FrontendStatus status,
                      const ServiceResponse* service_resp, const char* detail);
  void harvest_resolved(Conn& c);
  void record_end(FrontendStatus status);
  void wake();

  ReductionService& service_;
  FrontendOptions options_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  std::uint16_t tcp_port_ = 0;
  int wake_fds_[2] = {-1, -1};  // self-pipe: job resolution -> poll()
  std::thread loop_;

  mutable par::Mutex mu_;
  bool draining_ PFACT_GUARDED_BY(mu_) = false;
  bool drained_ PFACT_GUARDED_BY(mu_) = false;
  Stats stats_ PFACT_GUARDED_BY(mu_);

  // Owned exclusively by the event-loop thread; never touched elsewhere.
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace pfact::serve
