#pragma once
// Client library for the socket front end — the other half of the
// fault-tolerance story. The frontend classifies every way a conversation
// can end; the client maps each classification into the robustness
// taxonomy's retry table and acts on it, so a caller sees exactly the same
// decision surface as an in-process resilient_run: transient failures are
// retried with seeded exponential backoff (the SAME RetryPolicy::backoff
// arithmetic as the supervisor — bit-identical delay sequences for a given
// seed), deterministic refusals fail fast.
//
// One submit() is a sequence of attempts. Each attempt opens a fresh
// connection (a failed conversation leaves a stream in an unknowable state;
// reconnecting is the only sound resync), writes one kRequest frame, and
// reads one kResponse frame under a deadline. The outcome is classified
// from whichever layer refused first:
//
//   * transport never answered (connect refused, reset, torn response,
//     deadline)                    -> Diagnostic::kConnReset / kDeadline...
//   * the frontend refused        -> diagnose_frontend_status(status)
//   * the service answered        -> the supervised report rides through
//
// The chaos harness plugs in here: ClientOptions::fault lets one attempt
// sabotage ITSELF (torn frame, dribble, stall, garbage — NetFaultPlan),
// which is how the --net soak proves the retry loop carries a submission
// through any single network fault to a bit-equal certified answer. A
// fault-sabotaged attempt is always retried as transient, whatever the
// server answered: the injector corrupted the transport, so a clean retry
// is sound — while in production a kMalformedFrame refusal is FATAL (the
// client's own framing is broken; resending identical bytes cannot help).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "robustness/diagnostics.h"
#include "robustness/escalation.h"
#include "robustness/retry.h"
#include "serve/frontend.h"
#include "serve/wire.h"

namespace pfact::serve {

struct ClientOptions {
  // Where to connect: a Unix socket path, or TCP to 127.0.0.1:tcp_port.
  std::string unix_path;
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  // Retry policy: attempts per submit and the seeded backoff between them,
  // mirroring the supervisor's arithmetic exactly.
  robustness::RetryPolicy retry;
  // Deadline for reading the response frame of one attempt.
  std::chrono::milliseconds response_deadline{10'000};
  // Sleeps backoff delays when set; null sleeps for real. Tests install a
  // recorder to assert the delay sequence without waiting it out.
  std::function<void(std::chrono::milliseconds)> sleeper;
  // Network chaos: sabotage attempt `fault.on_attempt` with this shape.
  NetFaultPlan fault;
};

struct ClientResult {
  // True iff a kAccepted response arrived and decoded.
  bool ok = false;
  // The frontend's classification of the LAST attempt's conversation (for
  // transport-level deaths where no response arrived, the client's own
  // inference: kConnReset or kDeadline).
  FrontendStatus status = FrontendStatus::kConnReset;
  // The same, mapped into the retry taxonomy (what drove retry/fail-fast).
  robustness::Diagnostic diagnostic = robustness::Diagnostic::kConnReset;
  robustness::FailureKind outcome = robustness::FailureKind::kTransient;
  // Wire-level verdict of the last attempt's response read.
  WireStatus wire = WireStatus::kOk;
  // Valid when a response frame arrived and decoded (ok or classified).
  FrontendResponse response;
  std::size_t attempts = 0;
  // The backoff slept before each retry, in order — bit-reproducible from
  // retry.jitter_seed.
  std::vector<std::chrono::milliseconds> backoffs;
};

class Client {
 public:
  // Ignores SIGPIPE process-wide (a vanished server must surface as a
  // classified EPIPE, never kill the client), same disposition the serve
  // layer's pools install.
  explicit Client(ClientOptions options);

  // Submits one task through the retry loop. Blocking; never throws.
  ClientResult submit(const robustness::ReductionTask& task);

 private:
  struct Attempt {
    bool got_response = false;
    FrontendResponse response;
    WireStatus wire = WireStatus::kOk;
    FrontendStatus status = FrontendStatus::kConnReset;
    bool fault_injected = false;
  };

  int connect_once();
  Attempt run_attempt(const robustness::ReductionTask& task,
                      std::size_t attempt_no);

  ClientOptions options_;
};

}  // namespace pfact::serve
