#pragma once
// WorkerPool: forks rlimit-sandboxed worker subprocesses and pumps their
// pipes — the containment boundary of the serve/ layer.
//
// One run_task call is one worker lifetime: fork, ship the TaskRequest,
// collect checkpoint frames into the caller's CheckpointStore (each blob
// envelope-verified before it is filed — a crash can only hand back state
// that hashes), read the result frame, reap, classify. The classification
// is WorkerExit — the pool's own taxonomy of HOW the process ended, which
// the Supervisor then maps into the robustness Diagnostic taxonomy
// (diagnose_worker_exit in supervisor.h). Keeping the two taxonomies
// separate keeps waitpid plumbing out of the retry/escalation logic.
//
// Thread-safety: run_task is safe to call from multiple supervisor threads;
// the job table (live pids + lifetime stats) is guarded by an annotated
// mutex. The forked child itself never touches the table — between fork and
// _exit it runs only worker_main, which is single-threaded by contract.

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "parallel/annotations.h"
#include "robustness/checkpoint.h"
#include "robustness/diagnostics.h"
#include "serve/wire.h"

namespace pfact::serve {

// How a worker subprocess ended, from the supervisor's chair. Total: every
// waitpid outcome lands in exactly one class (pfact_lint rule PL009 checks
// that each class has a printable name, a Diagnostic mapping, and soak
// coverage).
enum class WorkerExit {
  kCompleted,      // exit(0) AND a decodable result frame arrived
  kNonzeroExit,    // exited by itself with a nonzero status
  kSignalled,      // killed by a signal (SIGSEGV, SIGKILL, SIGABRT, ...)
  kCpuLimit,       // terminated by SIGXCPU: the RLIMIT_CPU sandbox fired
  kWatchdog,       // SIGKILLed by this pool's own watchdog deadline
  kProtocolError,  // exited 0 but the result frame is missing or corrupt
  kForkFailure,    // fork()/pipe() failed: no worker ever existed
};

inline const char* worker_exit_name(WorkerExit e) {
  switch (e) {
    case WorkerExit::kCompleted: return "completed";
    case WorkerExit::kNonzeroExit: return "nonzero-exit";
    case WorkerExit::kSignalled: return "signalled";
    case WorkerExit::kCpuLimit: return "cpu-limit";
    case WorkerExit::kWatchdog: return "watchdog";
    case WorkerExit::kProtocolError: return "protocol-error";
    case WorkerExit::kForkFailure: return "fork-failure";
  }
  return "?";
}

// The sweepable taxonomy, for the soak harness's coverage assertion (every
// death class the pool can report must actually be produced and survived
// by a real-kill campaign). kCompleted is included: a sweep that never
// completes anything proves nothing.
inline const std::vector<WorkerExit>& all_worker_exits() {
  static const std::vector<WorkerExit> classes = {
      WorkerExit::kCompleted,  WorkerExit::kNonzeroExit,
      WorkerExit::kSignalled,  WorkerExit::kCpuLimit,
      WorkerExit::kWatchdog,   WorkerExit::kProtocolError,
      WorkerExit::kForkFailure};
  return classes;
}

// Classifies a reaped waitpid status into run.exit / exit_code /
// term_signal / detail. Shared by the cold pool below and the warm pool
// (warm_pool.h) so the two agree on what every death means. `watchdog` is
// the armed deadline (for the detail string); `watchdog_fired` wins over
// the raw status because the SIGKILL it delivered is the supervisor's own.
struct WorkerRun;
void classify_wait_status(int status, bool watchdog_fired,
                          std::chrono::milliseconds watchdog, WorkerRun& run);

// Everything one worker lifetime produced.
struct WorkerRun {
  WorkerExit exit = WorkerExit::kProtocolError;
  int exit_code = 0;    // WIFEXITED status (kCompleted / kNonzeroExit)
  int term_signal = 0;  // WTERMSIG (kSignalled / kCpuLimit / kWatchdog)
  bool has_result = false;
  robustness::RunReport result;  // valid iff has_result
  std::size_t checkpoints_received = 0;  // envelope-verified, filed
  std::size_t checkpoints_rejected = 0;  // failed the envelope check
  std::string detail;  // human-readable death/protocol description
};

// Anything that can execute one TaskRequest in a sandboxed worker and
// classify how it ended. The supervisor's retry/escalation loop is written
// against this seam, so the cold one-fork-per-attempt pool and the warm
// pre-forked pool (warm_pool.h) are interchangeable underneath it.
class JobRunner {
 public:
  virtual ~JobRunner() = default;

  // Runs `request` to a result frame or a classified death. Checkpoint
  // frames whose PFCK envelope verifies are filed into `store` (nullptr
  // discards them). `watchdog` > 0 arms a wall-clock deadline: a worker
  // still alive then is SIGKILLed and reported kWatchdog. Blocking;
  // thread-safe.
  virtual WorkerRun run_task(const TaskRequest& request,
                             robustness::CheckpointStore* store,
                             std::chrono::milliseconds watchdog =
                                 std::chrono::milliseconds{0}) = 0;
};

class WorkerPool : public JobRunner {
 public:
  WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Forks a worker, ships `request`, pumps its response pipe until the
  // result frame or death, reaps, classifies. A fork() that fails outright
  // is kForkFailure — a transient resource-exhaustion diagnostic for the
  // retry table, not a bare error string.
  WorkerRun run_task(const TaskRequest& request,
                     robustness::CheckpointStore* store,
                     std::chrono::milliseconds watchdog =
                         std::chrono::milliseconds{0}) override;

  // Lifetime totals of this pool (the job table's aggregate view).
  struct Stats {
    std::uint64_t spawned = 0;
    std::uint64_t completed = 0;
    std::uint64_t crashed = 0;  // any non-kCompleted ending
    std::uint64_t watchdog_kills = 0;
  };
  Stats stats() const;

  // Number of workers currently forked-but-unreaped (observable from other
  // threads; run_task itself always reaps before returning).
  std::size_t live_workers() const;

  // Test seam: replaces ::fork() so fork exhaustion (pid < 0) is producible
  // on demand — the real condition needs a pid-starved machine. Not for
  // production use.
  void set_fork_for_testing(std::function<pid_t()> fork_fn);

 private:
  void register_worker(pid_t pid);
  void finish_worker(pid_t pid, WorkerExit exit);

  mutable par::Mutex mu_;
  std::vector<pid_t> live_ PFACT_GUARDED_BY(mu_);
  Stats stats_ PFACT_GUARDED_BY(mu_);
  std::function<pid_t()> fork_fn_;  // set once, before any run_task call
};

}  // namespace pfact::serve
