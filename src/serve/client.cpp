#include "serve/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "obs/counters.h"
#include "obs/trace.h"
#include "robustness/checkpoint.h"

namespace pfact::serve {

namespace {

using robustness::detail::ByteWriter;

// The complete on-wire bytes of one frame — the client builds frames by
// hand (rather than through write_frame) so the fault injector can tear,
// dribble, and mangle them at byte granularity.
std::string frame_bytes(FrameType type, std::string_view payload) {
  ByteWriter w;
  w.reserve(kFrameHeaderBytes + payload.size());
  w.put_u32(kFrameMagic);
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_u64(payload.size());
  w.put_u32(robustness::crc32(payload.data(), payload.size()));
  w.put_bytes(payload.data(), payload.size());
  return w.take();
}

// Writes exactly [data, data+n), absorbing EINTR and partial writes.
// False = the peer is gone (EPIPE/ECONNRESET) or the fd broke.
bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

// Completes a connect() that a signal interrupted. POSIX leaves the attempt
// in flight after EINTR — the socket keeps connecting in the background —
// so the right move is to wait for writability and read the real verdict
// from SO_ERROR. Reporting the interruption itself as "refused" would turn
// every SIGCHLD burst from the shard router's reaper into a spurious
// kConnReset on an otherwise healthy connection.
bool finish_connect(int fd) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLOUT;
  for (;;) {
    const int pr = ::poll(&p, 1, 1000);
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) return false;
    break;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return false;
  return err == 0;
}

FrontendStatus status_for_wire(WireStatus s) {
  // Transport verdicts collapse into the two client-inferable statuses: a
  // deadline is a deadline; everything else that stopped a response from
  // arriving intact reads as "the conversation was reset" — including a
  // desynchronized or corrupt response stream, where reconnecting is the
  // only sound recovery.
  return s == WireStatus::kTimeout ? FrontendStatus::kDeadline
                                   : FrontendStatus::kConnReset;
}

}  // namespace

Client::Client(ClientOptions options) : options_(std::move(options)) {
  // A server that hangs up mid-write must surface as a classified EPIPE,
  // never a SIGPIPE death — the same disposition the serve pools install.
  ::signal(SIGPIPE, SIG_IGN);
}

int Client::connect_once() {
  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) return -1;
    std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0 &&
        !(errno == EINTR && finish_connect(fd))) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  if (options_.tcp) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0 &&
        !(errno == EINTR && finish_connect(fd))) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  return -1;
}

Client::Attempt Client::run_attempt(const robustness::ReductionTask& task,
                                    std::size_t attempt_no) {
  PFACT_SPAN("serve.client");
  Attempt a;
  const int fd = connect_once();
  if (fd < 0) {
    // Nobody listening (or refused): the transport-level transient.
    a.wire = WireStatus::kConnReset;
    a.status = FrontendStatus::kConnReset;
    return a;
  }

  TaskRequest req;
  req.task = task;
  const std::string frame = frame_bytes(FrameType::kRequest,
                                        encode_request(req));

  const NetFaultPlan& fault = options_.fault;
  const bool sabotage = fault.fault != NetFault::kNone &&
                        fault.on_attempt != 0 &&
                        attempt_no == fault.on_attempt;
  bool wrote_ok = true;
  if (!sabotage) {
    wrote_ok = write_all(fd, frame.data(), frame.size());
  } else {
    a.fault_injected = true;
    const std::uint64_t r = robustness::mix64(fault.seed, attempt_no);
    switch (fault.fault) {
      case NetFault::kNone: break;  // unreachable: sabotage implies a shape
      case NetFault::kTornFrame: {
        // A strict prefix, then vanish — the mid-request client death.
        const std::size_t cut = 1 + static_cast<std::size_t>(
                                        r % (frame.size() - 1));
        write_all(fd, frame.data(), cut);
        ::close(fd);
        a.wire = WireStatus::kConnReset;
        a.status = FrontendStatus::kConnReset;
        return a;
      }
      case NetFault::kMidFrameClose: {
        // Die INSIDE the 17-byte header: the server must not even have a
        // declared length to wait for.
        const std::size_t cut =
            1 + static_cast<std::size_t>(r % (kFrameHeaderBytes - 1));
        write_all(fd, frame.data(), cut);
        ::close(fd);
        a.wire = WireStatus::kConnReset;
        a.status = FrontendStatus::kConnReset;
        return a;
      }
      case NetFault::kDribble: {
        // The whole frame, one byte per write: a correct-but-slow client.
        // This shape must SUCCEED — it proves partial-read resumption.
        for (std::size_t i = 0; wrote_ok && i < frame.size(); ++i) {
          wrote_ok = write_all(fd, frame.data() + i, 1);
          if (i % 64 == 63) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        break;
      }
      case NetFault::kStalledReader: {
        // Half a frame, then silence with the connection held open: the
        // slowloris. The server's read deadline must evict us.
        const std::size_t cut = kFrameHeaderBytes + (frame.size() -
                                                     kFrameHeaderBytes) / 2;
        write_all(fd, frame.data(), cut);
        std::this_thread::sleep_for(fault.stall);
        break;  // fall through to the read: expect kDeadline (or a close)
      }
      case NetFault::kGarbagePreamble: {
        // Junk where a frame should start: the protocol-confused client.
        std::string junk(16 + static_cast<std::size_t>(r % 32), '\0');
        for (std::size_t i = 0; i < junk.size(); ++i) {
          junk[i] = static_cast<char>(robustness::mix64(r, i) & 0xFF);
        }
        // Junk must not start with a valid magic byte sequence.
        junk[0] = static_cast<char>(~(kFrameMagic & 0xFF));
        write_all(fd, junk.data(), junk.size());
        break;  // expect a kMalformedFrame refusal
      }
    }
  }
  if (!wrote_ok) {
    ::close(fd);
    a.wire = WireStatus::kConnReset;
    a.status = FrontendStatus::kConnReset;
    return a;
  }

  FrameType type = FrameType::kRequest;
  std::string payload;
  const auto deadline =
      std::chrono::steady_clock::now() + options_.response_deadline;
  a.wire = read_frame(fd, type, payload, deadline);
  ::close(fd);
  if (a.wire != WireStatus::kOk) {
    a.status = status_for_wire(a.wire);
    return a;
  }
  if (type != FrameType::kResponse ||
      !decode_response(payload, a.response)) {
    a.wire = WireStatus::kMalformed;
    a.status = FrontendStatus::kConnReset;  // desynced stream: reconnect
    return a;
  }
  a.got_response = true;
  a.status = a.response.status;
  return a;
}

ClientResult Client::submit(const robustness::ReductionTask& task) {
  ClientResult result;
  const std::size_t max_attempts =
      options_.retry.max_attempts == 0 ? 1 : options_.retry.max_attempts;
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    Attempt a = run_attempt(task, attempt);
    result.attempts = attempt;
    result.wire = a.wire;
    result.status = a.status;
    if (a.got_response) result.response = a.response;

    if (a.got_response && a.status == FrontendStatus::kAccepted) {
      result.ok = true;
      result.diagnostic = robustness::Diagnostic::kOk;
      result.outcome = robustness::FailureKind::kSuccess;
      return result;
    }

    result.diagnostic = diagnose_frontend_status(a.status);
    result.outcome = robustness::classify_diagnostic(result.diagnostic);
    // A self-sabotaged attempt is always worth a clean retry: the injector
    // corrupted the transport, not the request. Without injection the
    // classification governs — kMalformedFrame is kFatal and fails fast.
    const bool retryable =
        a.fault_injected ||
        result.outcome == robustness::FailureKind::kTransient;
    if (!retryable || attempt == max_attempts) return result;

    const auto delay = options_.retry.backoff(attempt);
    result.backoffs.push_back(delay);
    PFACT_COUNT(kClientRetries);
    if (options_.sleeper) {
      options_.sleeper(delay);
    } else if (delay.count() > 0) {
      std::this_thread::sleep_for(delay);
    }
  }
  return result;
}

}  // namespace pfact::serve
