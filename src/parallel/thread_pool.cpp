#include "parallel/thread_pool.h"

#include <algorithm>

namespace pfact::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

namespace {
// Set while executing inside a pool worker: nested parallel_for calls must
// run inline, or they would enqueue work on the pool they are blocking.
thread_local bool g_in_pool_worker = false;
}  // namespace

void ThreadPool::worker_loop() {
  g_in_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool) {
  if (begin >= end) return;
  if (g_in_pool_worker) {
    // Nested parallelism: run inline to avoid deadlocking the pool.
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  if (pool == nullptr) pool = &ThreadPool::global();
  std::size_t n = end - begin;
  std::size_t chunks = std::min(n, pool->size() * 4);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t lo = begin + c * per;
    std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futs.push_back(pool->submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();  // get() rethrows task exceptions
}

}  // namespace pfact::par
