#include "parallel/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/counters.h"
#include "obs/trace.h"

namespace pfact::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Post-join the queue is empty: workers drain it before exiting, so no
  // packaged_task is ever destroyed unrun (which would surface to waiters
  // as an unexplained broken_promise instead of the task's real outcome).
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    MutexLock lock(mu_);
    if (stop_) {
      throw std::runtime_error(
          "ThreadPool::submit: pool is shutting down; the task would never "
          "run and its future would never resolve");
    }
    queue_.push(std::move(pt));
  }
  PFACT_COUNT(kPoolTasksSubmitted);
  cv_.notify_one();
  return fut;
}

std::size_t ThreadPool::drain_pending() {
  std::size_t drained = 0;
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // inline on the caller; exceptions land in the task's future
    ++drained;
  }
  return drained;
}

namespace {
// Set while executing inside a pool worker: nested parallel_for calls must
// run inline, or they would enqueue work on the pool they are blocking.
thread_local bool g_in_pool_worker = false;
}  // namespace

void ThreadPool::worker_loop() {
  g_in_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      // Plain wait loop (no predicate lambda): the guarded reads of stop_
      // and queue_ stay in this function's body, where the thread-safety
      // analysis can see the held capability.
      while (!stop_ && queue_.empty()) lock.wait(cv_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured into the task's future
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ParallelOutcome parallel_for_report(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& fn, ThreadPool* pool,
    const CancellationToken* token) {
  ParallelOutcome out;
  if (begin >= end) return out;
  PFACT_COUNT(kParallelForCalls);
  PFACT_SPAN("parallel_for");

  // `failed` implements fail-fast: once any chunk throws, the others skip
  // their remaining iterations at the next boundary. The already-thrown
  // exceptions are still all collected.
  std::atomic<bool> failed{false};
  auto should_stop = [&] {
    return failed.load(std::memory_order_relaxed) ||
           (token != nullptr && token->cancelled());
  };

  auto run_range = [&](std::size_t lo, std::size_t hi) {
    PFACT_COUNT(kPoolChunksRun);
    PFACT_SPAN("pool.chunk");
    for (std::size_t i = lo; i < hi; ++i) {
      if (should_stop()) return;
      fn(i);
    }
  };

  if (g_in_pool_worker) {
    // Nested parallelism: run inline to avoid deadlocking the pool.
    try {
      run_range(begin, end);
    } catch (...) {
      out.errors.push_back(std::current_exception());
    }
    out.cancelled = token != nullptr && token->cancelled();
    return out;
  }
  if (pool == nullptr) pool = &ThreadPool::global();
  std::size_t n = end - begin;
  std::size_t chunks = std::min(n, pool->size() * 4);
  if (chunks <= 1) {
    try {
      run_range(begin, end);
    } catch (...) {
      out.errors.push_back(std::current_exception());
    }
    out.cancelled = token != nullptr && token->cancelled();
    return out;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t lo = begin + c * per;
    std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futs.push_back(pool->submit([lo, hi, &run_range, &failed] {
      try {
        run_range(lo, hi);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw;  // recaptured by the packaged_task's future
      }
    }));
  }
  // Wait for EVERY chunk before returning: the loop body (and anything it
  // captures by reference) must not be destroyed while a chunk still runs.
  // Fail-fast drain: the moment the sweep is cancelled (token fired) or a
  // chunk has thrown, any queued-but-unstarted chunks are pulled off the
  // pool queue and run inline here — they observe should_stop() at their
  // first iteration boundary and return immediately — so cancellation never
  // waits behind unrelated long-running work and never leaks a queued task.
  bool drained = false;
  for (auto& f : futs) {
    if (!drained && should_stop()) {
      pool->drain_pending();
      drained = true;
    }
    if (!drained && token != nullptr) {
      // A token may fire while we block; poll so the one-time drain above
      // still happens promptly. Without a token only chunk failure can
      // trigger fail-fast, which the check at the top of the loop covers.
      while (f.wait_for(std::chrono::milliseconds(1)) !=
             std::future_status::ready) {
        if (should_stop()) {
          pool->drain_pending();
          drained = true;
          break;
        }
      }
    }
    try {
      f.get();
    } catch (...) {
      out.errors.push_back(std::current_exception());
    }
  }
  out.cancelled = token != nullptr && token->cancelled();
  return out;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool, const CancellationToken* token) {
  ParallelOutcome out = parallel_for_report(begin, end, fn, pool, token);
  if (std::exception_ptr first = out.first_error()) {
    std::rethrow_exception(first);  // first one wins; none were dropped
  }
  if (out.cancelled) throw OperationCancelled();
}

}  // namespace pfact::par
