#pragma once
// Clang thread-safety (capability) annotations and an annotated mutex
// wrapper — the compile-time counterpart of the TSan lane.
//
// Clang's -Wthread-safety analysis proves, per translation unit, that every
// access to a PFACT_GUARDED_BY(mu) member happens while `mu` is held, that
// functions declared PFACT_REQUIRES(mu) are only called under the lock, and
// that scoped locks are released on every path. GCC and MSVC do not
// implement the attribute, so every macro below expands to nothing there:
// annotated code compiles identically on all toolchains, and only the CI
// thread-safety lane (Clang, -Werror=thread-safety) enforces the contracts.
//
// std::mutex itself carries no capability attribute in libstdc++/libc++, so
// the analysis cannot see through it. Mutex below wraps std::mutex with the
// capability attribute, and MutexLock is the annotated scoped lock (built on
// std::unique_lock so it can drive a condition_variable wait). All shared
// state in the library — the thread pool queue, the counter and span
// registries, the checkpoint store — is guarded by these wrappers.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PFACT_TSA(x) __attribute__((x))
#endif
#endif
#if !defined(PFACT_TSA)
#define PFACT_TSA(x)  // non-Clang: annotations vanish
#endif

// A type that acts as a lockable capability ("mutex" names the kind used in
// diagnostics).
#define PFACT_CAPABILITY(x) PFACT_TSA(capability(x))

// A scoped-lockable type: acquires in the constructor, releases in the
// destructor (std::lock_guard-like).
#define PFACT_SCOPED_CAPABILITY PFACT_TSA(scoped_lockable)

// Data member: may only be read/written while holding `x`.
#define PFACT_GUARDED_BY(x) PFACT_TSA(guarded_by(x))

// Pointer member: the pointed-to data is guarded by `x` (the pointer itself
// is not).
#define PFACT_PT_GUARDED_BY(x) PFACT_TSA(pt_guarded_by(x))

// Function: caller must hold the capability (exclusively) on entry and still
// holds it on exit.
#define PFACT_REQUIRES(...) \
  PFACT_TSA(requires_capability(__VA_ARGS__))

// Function: acquires / releases the capability.
#define PFACT_ACQUIRE(...) \
  PFACT_TSA(acquire_capability(__VA_ARGS__))
#define PFACT_RELEASE(...) \
  PFACT_TSA(release_capability(__VA_ARGS__))
#define PFACT_TRY_ACQUIRE(...) \
  PFACT_TSA(try_acquire_capability(__VA_ARGS__))

// Function: caller must NOT hold the capability (deadlock prevention for
// non-reentrant locks).
#define PFACT_EXCLUDES(...) PFACT_TSA(locks_excluded(__VA_ARGS__))

// Function: returns a reference to the named capability.
#define PFACT_RETURN_CAPABILITY(x) PFACT_TSA(lock_returned(x))

// Escape hatch, used only where the analysis cannot follow the code (e.g. a
// lock handed across a std::condition_variable wait); every use carries a
// comment saying why.
#define PFACT_NO_THREAD_SAFETY_ANALYSIS \
  PFACT_TSA(no_thread_safety_analysis)

namespace pfact::par {

// std::mutex with the capability attribute, so -Wthread-safety can reason
// about what it protects. Zero overhead: the wrapper is exactly a
// std::mutex.
class PFACT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PFACT_ACQUIRE() { mu_.lock(); }
  void unlock() PFACT_RELEASE() { mu_.unlock(); }
  bool try_lock() PFACT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // The raw std::mutex, for APIs that need it (condition_variable via
  // MutexLock). Callers must not lock through it directly.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// Annotated scoped lock over Mutex. Built on std::unique_lock so a
// condition_variable wait can release/reacquire the underlying mutex; the
// analysis treats the capability as held for the whole scope, which is the
// standard (conservative) model for cv waits — the guarded predicate is
// re-checked under the lock after every wakeup.
class PFACT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PFACT_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() PFACT_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Releases and reacquires the underlying mutex around the wait. No
  // predicate overload on purpose: a predicate lambda is a separate
  // function to the analysis, so guarded reads inside it would not see the
  // held capability — callers write the while-loop in their own body.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

  // Timed variant, for supervision loops that tick on a cadence but must
  // wake immediately on shutdown. A cv wait is the lawful replacement for a
  // blind sleep in such loops: it holds no capability the analysis cannot
  // see, and a notify cuts the latency to zero.
  template <class Rep, class Period>
  std::cv_status wait_for(std::condition_variable& cv,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv.wait_for(lock_, d);
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace pfact::par
