#pragma once
// A minimal work-sharing thread pool and parallel_for.
//
// The NC-algorithm implementations (Csanky, prefix ranks, LFMIS, parallel
// elimination sweeps) use this for real concurrency; their *complexity*
// claims, however, are demonstrated through the work/depth instrumentation
// in analysis/depth_model.h, since asymptotic depth — not wall-clock on a
// particular host — is what Table 1's "NC" entries assert.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pfact::par {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; the returned future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  // Shared process-wide pool, sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(i) for i in [begin, end), split into contiguous chunks across the
// pool. Blocks until all iterations complete. Exceptions from iterations are
// rethrown (first one wins).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr);

}  // namespace pfact::par
