#pragma once
// A minimal work-sharing thread pool and parallel_for.
//
// The NC-algorithm implementations (Csanky, prefix ranks, LFMIS, parallel
// elimination sweeps) use this for real concurrency; their *complexity*
// claims, however, are demonstrated through the work/depth instrumentation
// in analysis/depth_model.h, since asymptotic depth — not wall-clock on a
// particular host — is what Table 1's "NC" entries assert.
//
// Robustness contract (see DESIGN.md "Fault injection & guarded execution"):
//   * A worker exception never disappears: parallel_for waits for every
//     chunk before rethrowing, and parallel_for_report hands back ALL
//     captured exceptions so callers can aggregate them into a RunReport.
//   * A failing chunk cancels the remaining iterations cooperatively — the
//     other chunks stop at their next iteration boundary instead of burning
//     through a poisoned input.
//   * submit() on a pool that is shutting down throws instead of accepting
//     a task whose future would never resolve (a silent deadlock).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/annotations.h"

namespace pfact::par {

// Cooperative cancellation flag shared between a controller (e.g. a guarded
// run enforcing a deadline) and the loop bodies it schedules.
class CancellationToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

// Thrown by parallel_for when the caller's CancellationToken fires before
// the range completes.
class OperationCancelled : public std::runtime_error {
 public:
  OperationCancelled() : std::runtime_error("parallel_for: cancelled") {}
};

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; the returned future resolves when it has run.
  // Throws std::runtime_error if the pool is shutting down (a task accepted
  // then would never run and its future would never resolve).
  std::future<void> submit(std::function<void()> task);

  // Pops every queued-but-unstarted task and runs it inline on the calling
  // thread, so its future resolves now instead of whenever a worker frees
  // up. Used by the fail-fast path of parallel_for_report: once a sweep is
  // cancelled, its remaining chunks are no-ops, and draining them here means
  // cancellation returns without waiting behind unrelated long-running work
  // and can never leak a queued task. Returns the number of tasks drained.
  std::size_t drain_pending();

  // Shared process-wide pool, sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();

  Mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_ PFACT_GUARDED_BY(mu_);
  bool stop_ PFACT_GUARDED_BY(mu_) = false;
  // Only mutated in the constructor, before any worker can observe `this`;
  // size() reads it concurrently but the vector is immutable by then.
  std::vector<std::thread> workers_;
};

// Everything parallel_for_report knows about a completed (or aborted)
// sweep. `errors` preserves one exception per failing chunk, in chunk
// order, so no failure is ever silently dropped.
struct ParallelOutcome {
  std::vector<std::exception_ptr> errors;
  bool cancelled = false;  // the caller's token fired mid-sweep

  bool ok() const { return errors.empty() && !cancelled; }
  // First captured exception (chunk order), or nullptr.
  std::exception_ptr first_error() const {
    return errors.empty() ? nullptr : errors.front();
  }
};

// Runs fn(i) for i in [begin, end), split into contiguous chunks across the
// pool. Blocks until every chunk has finished (never abandons a running
// chunk). Never throws from worker failures: all captured exceptions are
// returned. After the first chunk failure — or once `token` (optional)
// fires — the remaining iterations are skipped cooperatively.
ParallelOutcome parallel_for_report(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& fn, ThreadPool* pool = nullptr,
    const CancellationToken* token = nullptr);

// Convenience wrapper: as above, but rethrows the first captured exception
// (only after ALL chunks have completed — the loop body and its captures
// are guaranteed dead before the exception propagates), or throws
// OperationCancelled if the token fired.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr,
                  const CancellationToken* token = nullptr);

}  // namespace pfact::par
