#include "obs/counters.h"

#include <deque>

#include "parallel/annotations.h"

namespace pfact::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kElimSteps: return "elim-steps";
    case Counter::kPivotScanRows: return "pivot-scan-rows";
    case Counter::kPivotKeeps: return "pivot-keeps";
    case Counter::kPivotSwaps: return "pivot-swaps";
    case Counter::kPivotShifts: return "pivot-shifts";
    case Counter::kPivotSkips: return "pivot-skips";
    case Counter::kRowUpdates: return "row-updates";
    case Counter::kRowUpdateElems: return "row-update-elems";
    case Counter::kGivensRotations: return "givens-rotations";
    case Counter::kGivensStages: return "givens-stages";
    case Counter::kHouseholderReflections: return "householder-reflections";
    case Counter::kTriangularSolves: return "triangular-solves";
    case Counter::kGuardTicks: return "guard-ticks";
    case Counter::kSoftFloatAdds: return "softfloat-adds";
    case Counter::kSoftFloatMuls: return "softfloat-muls";
    case Counter::kSoftFloatDivs: return "softfloat-divs";
    case Counter::kSoftFloatSqrts: return "softfloat-sqrts";
    case Counter::kSoftFloatRoundNearestEven:
      return "softfloat-round-nearest-even";
    case Counter::kSoftFloatRoundTowardZero:
      return "softfloat-round-toward-zero";
    case Counter::kSoftFloatRoundAwayFromZero:
      return "softfloat-round-away-from-zero";
    case Counter::kBigIntAllocs: return "bigint-allocs";
    case Counter::kBigIntLimbsAllocated: return "bigint-limbs-allocated";
    case Counter::kBigIntMuls: return "bigint-muls";
    case Counter::kBigIntDivs: return "bigint-divs";
    case Counter::kPoolTasksSubmitted: return "pool-tasks-submitted";
    case Counter::kPoolChunksRun: return "pool-chunks-run";
    case Counter::kParallelForCalls: return "parallel-for-calls";
    case Counter::kRankQueries: return "rank-queries";
    case Counter::kFaultsInjected: return "faults-injected";
    case Counter::kFaultsDetected: return "faults-detected";
    case Counter::kRetryAttempts: return "retry-attempts";
    case Counter::kEscalations: return "escalations";
    case Counter::kCheckpointSaves: return "checkpoint-saves";
    case Counter::kCheckpointBytes: return "checkpoint-bytes";
    case Counter::kCheckpointResumes: return "checkpoint-resumes";
    case Counter::kCheckpointRejects: return "checkpoint-rejects";
    case Counter::kWorkerSpawns: return "worker-spawns";
    case Counter::kWorkerCrashes: return "worker-crashes";
    case Counter::kWorkerWatchdogKills: return "worker-watchdog-kills";
    case Counter::kWorkerResumeHandoffs: return "worker-resume-handoffs";
    case Counter::kServeForkFailures: return "serve-fork-failures";
    case Counter::kServeWarmJobs: return "serve-warm-jobs";
    case Counter::kServeWorkerRecycles: return "serve-worker-recycles";
    case Counter::kServeJobsSubmitted: return "serve-jobs-submitted";
    case Counter::kServeJobsShed: return "serve-jobs-shed";
    case Counter::kServeCacheHits: return "serve-cache-hits";
    case Counter::kServeCacheMisses: return "serve-cache-misses";
    case Counter::kServeCacheFills: return "serve-cache-fills";
    case Counter::kServeCacheEvictions: return "serve-cache-evictions";
    case Counter::kServeCacheCorrupt: return "serve-cache-corrupt";
    case Counter::kSparseBuilds: return "sparse-builds";
    case Counter::kSparseTripletsCoalesced:
      return "sparse-triplets-coalesced";
    case Counter::kSparseFillIns: return "sparse-fill-ins";
    case Counter::kSparseZeroDrops: return "sparse-zero-drops";
    case Counter::kDenseStorageBytes: return "dense-storage-bytes";
    case Counter::kSparseStorageBytes: return "sparse-storage-bytes";
    case Counter::kFrontendConnsAccepted: return "frontend-conns-accepted";
    case Counter::kFrontendAccepted: return "frontend-accepted";
    case Counter::kFrontendMalformed: return "frontend-malformed";
    case Counter::kFrontendDeadlineEvictions:
      return "frontend-deadline-evictions";
    case Counter::kFrontendConnResets: return "frontend-conn-resets";
    case Counter::kFrontendOverloadSheds: return "frontend-overload-sheds";
    case Counter::kFrontendDrainRefusals: return "frontend-drain-refusals";
    case Counter::kFrontendBytesRead: return "frontend-bytes-read";
    case Counter::kFrontendBytesWritten: return "frontend-bytes-written";
    case Counter::kClientRetries: return "client-retries";
    case Counter::kFrontendProbes: return "frontend-probes";
    case Counter::kRouterRoutes: return "router-routes";
    case Counter::kRouterFailovers: return "router-failovers";
    case Counter::kRouterBrownoutSheds: return "router-brownout-sheds";
    case Counter::kRouterAllShardsDown: return "router-all-shards-down";
    case Counter::kRouterRestarts: return "router-restarts";
    case Counter::kRouterProbes: return "router-probes";
    case Counter::kShardServing: return "shard-serving";
    case Counter::kShardStarting: return "shard-starting";
    case Counter::kShardUnresponsive: return "shard-unresponsive";
    case Counter::kShardDead: return "shard-dead";
    case Counter::kShardRestarting: return "shard-restarting";
    case Counter::kCount_: break;
  }
  return "?";
}

const char* histogram_name(Histogram h) {
  switch (h) {
    case Histogram::kPivotMoveDistance: return "pivot-move-distance";
    case Histogram::kBigIntLimbs: return "bigint-limbs";
    case Histogram::kSpanDurationUs: return "span-duration-us";
    case Histogram::kQueueDepth: return "queue-depth";
    case Histogram::kSparseRowNnz: return "sparse-row-nnz";
    case Histogram::kCount_: break;
  }
  return "?";
}

std::uint64_t CounterSnapshot::histogram_total(Histogram h) const {
  std::uint64_t total = 0;
  for (std::uint64_t b : histograms[static_cast<std::size_t>(h)]) total += b;
  return total;
}

CounterDelta operator-(const CounterSnapshot& after,
                       const CounterSnapshot& before) {
  CounterDelta d;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    d.counts[i] = after.counts[i] - before.counts[i];
  }
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      d.histograms[h][b] = after.histograms[h][b] - before.histograms[h][b];
    }
  }
  return d;
}

#if PFACT_OBS_ENABLED

namespace detail {

namespace {

// Blocks are appended, never removed: a thread that exits leaves its totals
// behind (counters are cumulative), and snapshot() never touches freed
// memory. std::deque keeps existing blocks stable across registrations.
// `blocks` (the container) is guarded by `mu`; the atomics INSIDE a block
// are lock-free by design — registered blocks are read outside the lock by
// their owning thread, which is exactly the relaxed-atomic contract.
struct Registry {
  par::Mutex mu;
  std::deque<CounterBlock> blocks PFACT_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

}  // namespace

CounterBlock* this_thread_block() {
  Registry& r = registry();
  par::MutexLock lock(r.mu);
  r.blocks.emplace_back();
  // Escapes the lock on purpose: the block is never freed and its fields
  // are atomics, so the owning thread bumps them lock-free.
  return &r.blocks.back();
}

}  // namespace detail

CounterSnapshot snapshot() {
  CounterSnapshot s;
  detail::Registry& r = detail::registry();
  par::MutexLock lock(r.mu);
  for (const detail::CounterBlock& b : r.blocks) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      s.counts[i] += b.counts[i].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < kNumHistograms; ++h) {
      for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
        s.histograms[h][k] +=
            b.histograms[h][k].load(std::memory_order_relaxed);
      }
    }
  }
  return s;
}

#else  // !PFACT_OBS_ENABLED

CounterSnapshot snapshot() { return CounterSnapshot{}; }

#endif  // PFACT_OBS_ENABLED

}  // namespace pfact::obs
