#pragma once
// Operation counters — the quantitative backbone of the observability layer.
//
// The paper's claims are claims about *operation sequences*: GEM/GEP/GQR on a
// reduction matrix A_C must execute a pivot/rotation chain whose length and
// order encode the circuit evaluation, while the NC algorithms trade a much
// larger operation *count* for a short critical path. These counters make
// those quantities measurable on every run: elimination steps, pivot moves by
// kind, Givens rotations, SoftFloat operations by rounding mode, BigInt limb
// allocations, thread-pool chunks, detected fault injections, and so on.
//
// Design constraints (see DESIGN.md section 8):
//   * Near-zero cost when compiled out: every call site goes through the
//     PFACT_COUNT / PFACT_COUNT_N / PFACT_HISTO macros, which expand to
//     ((void)0) when PFACT_OBS_ENABLED is 0 (-DPFACT_OBS=OFF in CMake).
//   * Low overhead when compiled in: one thread-local block of relaxed
//     atomics per thread; an increment is a TLS load plus a relaxed
//     fetch_add. No locks on the hot path.
//   * TSan-clean aggregation: snapshots read every thread's block with
//     relaxed atomic loads; blocks live in a global registry that never
//     frees them, so a snapshot can never race with a dying thread's block.
//
// Counters are cumulative per process. Deltas over a region are taken with
// ScopedCounters (RAII) or by subtracting two CounterSnapshots.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

// Compile-time master switch. CMake defines PFACT_OBS_ENABLED=0 when
// configured with -DPFACT_OBS=OFF; default is on.
#if !defined(PFACT_OBS_ENABLED)
#define PFACT_OBS_ENABLED 1
#endif

namespace pfact::obs {

// The fixed counter taxonomy. Stable kebab-case names (counter_name) are the
// JSON keys of every emitted snapshot — append new counters at the end of
// their group and never reuse a name with a different meaning.
enum class Counter : std::size_t {
  // --- factor/: elimination engines ---------------------------------------
  kElimSteps,          // elimination steps entered (pivot decisions)
  kPivotScanRows,      // rows examined while selecting pivots
  kPivotKeeps,         // pivot already in place
  kPivotSwaps,         // row exchanges (GEP / GEM)
  kPivotShifts,        // circular shifts (GEMS)
  kPivotSkips,         // columns with no usable pivot
  kRowUpdates,         // rank-1 row updates applied
  kRowUpdateElems,     // scalar multiply-subtract element operations

  // --- factor/: orthogonal engines ----------------------------------------
  kGivensRotations,    // rotations actually applied
  kGivensStages,       // parallel stages containing >= 1 rotation
  kHouseholderReflections,
  kTriangularSolves,   // forward/back substitutions run

  // --- factor/: guards -----------------------------------------------------
  kGuardTicks,         // StepGuard budget checks

  // --- numeric/: SoftFloat ops by kind -------------------------------------
  kSoftFloatAdds,      // additions/subtractions
  kSoftFloatMuls,
  kSoftFloatDivs,
  kSoftFloatSqrts,

  // --- numeric/: SoftFloat rounded normalizations by mode ------------------
  kSoftFloatRoundNearestEven,
  kSoftFloatRoundTowardZero,
  kSoftFloatRoundAwayFromZero,

  // --- numeric/: BigInt -----------------------------------------------------
  kBigIntAllocs,       // magnitude vectors allocated
  kBigIntLimbsAllocated,  // total 32-bit limbs in those allocations
  kBigIntMuls,
  kBigIntDivs,

  // --- parallel/ ------------------------------------------------------------
  kPoolTasksSubmitted,
  kPoolChunksRun,      // parallel_for chunks executed
  kParallelForCalls,

  // --- nc/ -------------------------------------------------------------------
  kRankQueries,        // independent prefix-rank computations issued

  // --- robustness/ -----------------------------------------------------------
  kFaultsInjected,     // corruptions the FaultInjector actually performed
  kFaultsDetected,     // guarded runs that classified an injected fault
  kRetryAttempts,      // guarded attempts launched by the resilient driver
  kEscalations,        // substrate-ladder climbs (double -> SoftFloat -> ...)
  kCheckpointSaves,    // mid-factorization checkpoints serialized
  kCheckpointBytes,    // total serialized checkpoint bytes
  kCheckpointResumes,  // runs restarted from a validated checkpoint
  kCheckpointRejects,  // checkpoints refused (CRC / version / truncation)

  // --- serve/: process-isolation worker lifecycle ---------------------------
  kWorkerSpawns,          // worker subprocesses forked
  kWorkerCrashes,         // workers that died without delivering a result
  kWorkerWatchdogKills,   // workers SIGKILLed by the supervisor's watchdog
  kWorkerResumeHandoffs,  // respawns seeded with a verified checkpoint blob

  // --- serve/: warm pool, admission control, result cache -------------------
  kServeForkFailures,     // fork() itself failed (resource exhaustion)
  kServeWarmJobs,         // jobs executed on an already-warm worker
  kServeWorkerRecycles,   // warm workers retired on plan (job quota/rlimits)
  kServeJobsSubmitted,    // jobs offered to the service queue
  kServeJobsShed,         // jobs refused by admission control (classified)
  kServeCacheHits,        // result-cache probes answered from cache
  kServeCacheMisses,      // probes that fell through to the warm pool
  kServeCacheFills,       // verified answers written into the cache
  kServeCacheEvictions,   // entries displaced by capacity bounds
  kServeCacheCorrupt,     // entries rejected on read (CRC/envelope)

  // --- matrix/: sparse backend ----------------------------------------------
  kSparseBuilds,             // triplet builds finalized into a CSR
  kSparseTripletsCoalesced,  // duplicate triplets merged during build
  kSparseFillIns,            // entries created by elimination row updates
  kSparseZeroDrops,          // computed exact zeros dropped, not stored
  kDenseStorageBytes,        // bytes of dense matrix storage benchmarked
  kSparseStorageBytes,       // bytes of sparse CSR storage benchmarked

  // --- serve/: socket front end ---------------------------------------------
  kFrontendConnsAccepted,     // connections accept()ed by the listener
  kFrontendAccepted,          // requests admitted and answered (kAccepted)
  kFrontendMalformed,         // frames/payloads refused as kMalformedFrame
  kFrontendDeadlineEvictions, // slow clients evicted at a read/write deadline
  kFrontendConnResets,        // peers that vanished mid-frame (kConnReset)
  kFrontendOverloadSheds,     // conn-bound / queue-full refusals (kOverloaded)
  kFrontendDrainRefusals,     // requests refused while draining (kDraining)
  kFrontendBytesRead,         // request-side bytes read off client sockets
  kFrontendBytesWritten,      // response-side bytes written to client sockets
  kClientRetries,             // client library retry attempts (transient)

  // --- serve/: shard router -------------------------------------------------
  kFrontendProbes,            // health heartbeats echoed by the event loop
  kRouterRoutes,              // requests routed to their home shard
  kRouterFailovers,           // requests rerouted around a dead/evicted shard
  kRouterBrownoutSheds,       // fresh work shed while degraded (brownout)
  kRouterAllShardsDown,       // requests refused with no shard alive
  kRouterRestarts,            // shard processes respawned after a death
  kRouterProbes,              // health probes the router sent
  kShardServing,              // shard observed healthy (probe acked)
  kShardStarting,             // shard observed still booting
  kShardUnresponsive,         // shard evicted: probe deadline expired
  kShardDead,                 // shard reaped by waitpid (any death class)
  kShardRestarting,           // shard waiting out its seeded restart backoff

  kCount_,  // sentinel: number of counters
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount_);

// Stable external name, e.g. "elim-steps"; the JSON key of the counter.
const char* counter_name(Counter c);

// Power-of-two bucketed histograms for quantities whose *distribution*
// matters, not just the total.
enum class Histogram : std::size_t {
  kPivotMoveDistance,   // piv - k: how far the chosen pivot row travelled
  kBigIntLimbs,         // limb count of allocated magnitudes
  kSpanDurationUs,      // span wall time, microseconds
  kQueueDepth,          // service queue depth observed at each admission
  kSparseRowNnz,        // per-row nonzero counts of built CSR matrices
  kCount_,
};

inline constexpr std::size_t kNumHistograms =
    static_cast<std::size_t>(Histogram::kCount_);
inline constexpr std::size_t kHistogramBuckets = 32;  // bucket b: [2^b, 2^{b+1})

const char* histogram_name(Histogram h);

// A consistent view of every counter, summed over all threads that ever
// incremented one. Plain integers — safe to copy, diff and serialize.
struct CounterSnapshot {
  std::array<std::uint64_t, kNumCounters> counts{};
  std::array<std::array<std::uint64_t, kHistogramBuckets>, kNumHistograms>
      histograms{};

  std::uint64_t operator[](Counter c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  std::uint64_t histogram_total(Histogram h) const;
};

// The difference between two snapshots: what happened inside a region.
// (Structurally identical to a snapshot; the distinct name documents intent.)
using CounterDelta = CounterSnapshot;

CounterDelta operator-(const CounterSnapshot& after,
                       const CounterSnapshot& before);

// Sums every live thread block. O(threads * counters); relaxed loads only.
CounterSnapshot snapshot();

// RAII scoped collector: captures a snapshot at construction; delta() is the
// activity since then (across ALL threads — scope it around whole parallel
// regions, not inside their loop bodies).
class ScopedCounters {
 public:
  ScopedCounters() : begin_(snapshot()) {}
  CounterDelta delta() const { return snapshot() - begin_; }
  const CounterSnapshot& begin() const { return begin_; }

 private:
  CounterSnapshot begin_;
};

#if PFACT_OBS_ENABLED

namespace detail {

// One cache-line-friendly block of relaxed atomics per thread. Blocks are
// owned by the global registry and never destroyed, so snapshot() can read
// them without synchronizing with thread exit. Fully defined here so a bump
// inlines to a TLS load plus one relaxed fetch_add — no function call on
// the hot path (elimination inner loops bump these).
struct CounterBlock {
  std::atomic<std::uint64_t> counts[kNumCounters] = {};
  std::atomic<std::uint64_t> histograms[kNumHistograms][kHistogramBuckets] =
      {};
};

// Registers (once) and returns the calling thread's block.
CounterBlock* this_thread_block();

inline std::size_t histogram_bucket(std::uint64_t value) {
  std::size_t b = 0;
  while (value > 1 && b + 1 < kHistogramBuckets) {
    value >>= 1;
    ++b;
  }
  return b;
}

}  // namespace detail

inline void bump(Counter c, std::uint64_t n = 1) {
  thread_local detail::CounterBlock* block = detail::this_thread_block();
  block->counts[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

inline void record(Histogram h, std::uint64_t value) {
  thread_local detail::CounterBlock* block = detail::this_thread_block();
  block->histograms[static_cast<std::size_t>(h)]
                   [detail::histogram_bucket(value)]
                       .fetch_add(1, std::memory_order_relaxed);
}

#else  // !PFACT_OBS_ENABLED — keep the API callable, make it a no-op.

inline void bump(Counter, std::uint64_t = 1) {}
inline void record(Histogram, std::uint64_t) {}

#endif  // PFACT_OBS_ENABLED

}  // namespace pfact::obs

// Hot-path instrumentation macros. These — not obs::bump — are what the
// engines use, so an OBS=OFF build compiles the call sites away entirely.
#if PFACT_OBS_ENABLED
#define PFACT_COUNT(c) ::pfact::obs::bump(::pfact::obs::Counter::c)
#define PFACT_COUNT_N(c, n) \
  ::pfact::obs::bump(::pfact::obs::Counter::c, \
                     static_cast<std::uint64_t>(n))
#define PFACT_HISTO(h, v) \
  ::pfact::obs::record(::pfact::obs::Histogram::h, \
                       static_cast<std::uint64_t>(v))
#else
#define PFACT_COUNT(c) ((void)0)
#define PFACT_COUNT_N(c, n) ((void)0)
#define PFACT_HISTO(h, v) ((void)0)
#endif
