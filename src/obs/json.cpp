#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace pfact::obs {

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows its key
  }
  if (needs_comma_.back()) out_ += ",";
  needs_comma_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += "{";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += "}";
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += "[";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += "]";
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += "\"" + escape(k) + "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += "\"" + escape(v) + "\"";
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json) {
  comma();
  out_ += json;
  return *this;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace pfact::obs
