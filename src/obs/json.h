#pragma once
// A minimal streaming JSON writer — just enough for the observability
// exports (bench emitter, counter snapshots, trace metadata). No external
// dependency, no DOM: the writer appends tokens to a string and tracks
// whether a comma is due. Keys are emitted in call order, so the output is
// deterministic and diffable — a property the BENCH_*.json history relies
// on.

#include <cstdint>
#include <string>
#include <vector>

namespace pfact::obs {

class JsonWriter {
 public:
  // --- structure ------------------------------------------------------------
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  // Key of the next value inside an object.
  JsonWriter& key(const std::string& k);

  // --- values ---------------------------------------------------------------
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);  // emitted with enough digits to round-trip
  JsonWriter& value(bool v);
  JsonWriter& null();

  // Raw pre-serialized JSON (e.g. a chrome trace array) inserted verbatim.
  JsonWriter& raw(const std::string& json);

  const std::string& str() const { return out_; }

  static std::string escape(const std::string& s);

 private:
  void comma();
  std::string out_;
  // needs_comma_.back(): a value was already written at this nesting level.
  std::vector<bool> needs_comma_{false};
  bool after_key_ = false;
};

}  // namespace pfact::obs
