#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>

#include "parallel/annotations.h"

namespace pfact::obs {

namespace {

std::atomic<bool> g_tracing{false};

#if PFACT_OBS_ENABLED

// Per-thread span buffers, registered globally and never freed (same
// lifetime discipline as the counter blocks; see counters.cpp). Each buffer
// carries its own mutex: record_span holds it only to push one event, and
// dump/clear hold it per buffer, so tracing a pool worker never contends
// with another worker.
struct SpanBuffer {
  par::Mutex mu;
  std::vector<SpanEvent> events PFACT_GUARDED_BY(mu);
  std::uint32_t tid = 0;  // written once at registration, read-only after
};

struct SpanRegistry {
  par::Mutex mu;
  std::deque<SpanBuffer> buffers PFACT_GUARDED_BY(mu);
  std::uint32_t next_tid PFACT_GUARDED_BY(mu) = 0;
};

SpanRegistry& span_registry() {
  static SpanRegistry* r = new SpanRegistry();  // leaked: usable during exit
  return *r;
}

SpanBuffer* this_thread_buffer() {
  SpanRegistry& r = span_registry();
  par::MutexLock lock(r.mu);
  r.buffers.emplace_back();
  r.buffers.back().tid = r.next_tid++;
  // Escapes the lock on purpose: buffers are never freed, and all event
  // access goes through the buffer's own mu.
  return &r.buffers.back();
}

#endif  // PFACT_OBS_ENABLED

}  // namespace

bool tracing_enabled() {
  return g_tracing.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) {
  g_tracing.store(on, std::memory_order_relaxed);
}

#if PFACT_OBS_ENABLED

namespace detail {

std::uint64_t now_ns() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin)
          .count());
}

void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns) {
  thread_local SpanBuffer* buf = this_thread_buffer();
  {
    par::MutexLock lock(buf->mu);
    buf->events.push_back(SpanEvent{name, begin_ns, end_ns, buf->tid});
  }
  PFACT_HISTO(kSpanDurationUs, (end_ns - begin_ns) / 1000);
}

}  // namespace detail

void clear_spans() {
  SpanRegistry& r = span_registry();
  par::MutexLock lock(r.mu);
  for (SpanBuffer& b : r.buffers) {
    par::MutexLock bl(b.mu);
    b.events.clear();
  }
}

std::vector<SpanEvent> dump_spans() {
  std::vector<SpanEvent> out;
  SpanRegistry& r = span_registry();
  par::MutexLock lock(r.mu);
  for (SpanBuffer& b : r.buffers) {
    par::MutexLock bl(b.mu);
    out.insert(out.end(), b.events.begin(), b.events.end());
  }
  return out;
}

#else  // !PFACT_OBS_ENABLED

void clear_spans() {}
std::vector<SpanEvent> dump_spans() { return {}; }

#endif  // PFACT_OBS_ENABLED

namespace {

// ns -> microseconds with exact 3-decimal fraction ("12.005").
std::string us_string(std::uint64_t ns) {
  std::string frac = std::to_string(ns % 1000);
  frac.insert(0, 3 - frac.size(), '0');
  return std::to_string(ns / 1000) + "." + frac;
}

}  // namespace

std::string to_chrome_trace_json(const std::vector<SpanEvent>& spans) {
  // trace_event "X" events; ts/dur are microseconds (doubles allowed, we
  // emit integer ns scaled by 1e-3 with 3 decimals for exactness).
  std::string out = "[";
  bool first = true;
  for (const SpanEvent& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    out += s.name;  // span names are identifier-like literals; no escaping
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(s.tid);
    out += ",\"ts\":";
    out += us_string(s.begin_ns);
    out += ",\"dur\":";
    out += us_string(s.end_ns - s.begin_ns);
    out += "}";
  }
  out += "\n]\n";
  return out;
}

std::size_t critical_path_depth(std::vector<SpanEvent> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.end_ns < b.end_ns;
            });
  std::size_t depth = 0;
  std::uint64_t frontier = 0;
  bool have_frontier = false;
  for (const SpanEvent& s : spans) {
    if (!have_frontier || s.begin_ns >= frontier) {
      ++depth;
      frontier = s.end_ns;
      have_frontier = true;
    }
  }
  return depth;
}

}  // namespace pfact::obs
