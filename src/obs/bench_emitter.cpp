#include "obs/bench_emitter.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <ostream>
#include <thread>

#include "obs/json.h"
#include "obs/trace.h"

namespace pfact::obs {

void BenchSuite::add(std::string name, std::string experiment,
                     std::function<void()> fn) {
  specs_.push_back(BenchSpec{std::move(name), std::move(experiment),
                             std::move(fn)});
}

BenchMeasurement BenchSuite::measure(const BenchSpec& spec,
                                     std::size_t warmup,
                                     std::size_t repeats) const {
  BenchMeasurement m;
  m.name = spec.name;
  m.experiment = spec.experiment;
  m.warmup = warmup;
  m.repeats = repeats;

  for (std::size_t i = 0; i < warmup; ++i) spec.fn();

  std::vector<double> ns;
  ns.reserve(repeats);
  for (std::size_t i = 0; i < repeats; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    spec.fn();
    auto t1 = std::chrono::steady_clock::now();
    ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  std::sort(ns.begin(), ns.end());
  if (!ns.empty()) {
    m.ns_min = ns.front();
    m.ns_median = ns[ns.size() / 2];
    double sum = 0;
    for (double v : ns) sum += v;
    m.ns_mean = sum / static_cast<double>(ns.size());
  }

  // One instrumented run: counters + spans, excluded from the timings.
  {
    ScopedTracing tracing;
    ScopedCounters counters;
    spec.fn();
    m.counters = counters.delta();
    std::vector<SpanEvent> spans = dump_spans();
    m.span_count = spans.size();
    m.critical_path_depth = critical_path_depth(std::move(spans));
  }
  return m;
}

std::vector<BenchMeasurement> BenchSuite::run(std::size_t warmup,
                                              std::size_t repeats,
                                              const std::string& filter,
                                              std::ostream* log) const {
  std::vector<BenchMeasurement> out;
  for (const BenchSpec& spec : specs_) {
    if (!filter.empty() && spec.name.find(filter) == std::string::npos) {
      continue;
    }
    BenchMeasurement m = measure(spec, warmup, repeats);
    if (log != nullptr) {
      (*log) << m.name << ": median " << m.ns_median / 1e6 << " ms, depth "
             << m.critical_path_depth << " (" << m.span_count << " spans)\n";
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::string BenchSuite::to_json(const std::vector<BenchMeasurement>& results,
                                std::size_t warmup, std::size_t repeats) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kBenchSchema);
  w.key("generator").value("bench_main");
  w.key("unix_time").value(static_cast<std::int64_t>(std::time(nullptr)));
  w.key("host").begin_object();
  w.key("hardware_threads")
      .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("obs_enabled").value(PFACT_OBS_ENABLED != 0);
  w.end_object();
  w.key("config").begin_object();
  w.key("warmup").value(warmup);
  w.key("repeats").value(repeats);
  w.end_object();
  w.key("benchmarks").begin_array();
  for (const BenchMeasurement& m : results) {
    w.begin_object();
    w.key("name").value(m.name);
    w.key("experiment").value(m.experiment);
    w.key("ns").begin_object();
    w.key("min").value(m.ns_min);
    w.key("mean").value(m.ns_mean);
    w.key("median").value(m.ns_median);
    w.end_object();
    // Nonzero counters only: keeps the artifact readable and its diffs
    // focused on what the workload actually exercises.
    w.key("counters").begin_object();
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      if (m.counters.counts[i] == 0) continue;
      w.key(counter_name(static_cast<Counter>(i)))
          .value(m.counters.counts[i]);
    }
    w.end_object();
    w.key("histograms").begin_object();
    for (std::size_t h = 0; h < kNumHistograms; ++h) {
      const auto hist = static_cast<Histogram>(h);
      if (m.counters.histogram_total(hist) == 0) continue;
      // Trimmed bucket array: [count(2^0..), count(2^1..), ...] up to the
      // last nonzero bucket.
      std::size_t last = 0;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        if (m.counters.histograms[h][b] != 0) last = b;
      }
      w.key(histogram_name(hist)).begin_array();
      for (std::size_t b = 0; b <= last; ++b) {
        w.value(m.counters.histograms[h][b]);
      }
      w.end_array();
    }
    w.end_object();
    w.key("spans").value(m.span_count);
    w.key("critical_path_depth").value(m.critical_path_depth);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

}  // namespace pfact::obs
