#pragma once
// Shared bench harness: runs registered workloads with warmup + repeats,
// attaches an op-counter snapshot and a span-derived critical-path depth to
// each, and serializes everything as schema-versioned JSON
// (BENCH_pr2.json; schema string kBenchSchema below).
//
// Unlike the per-figure google-benchmark binaries (bench_*.cpp), which are
// interactive exploration tools, this harness exists to produce a *stable,
// diffable artifact*: the perf + op-count baseline the CI uploads and later
// PRs compare against. Timing and instrumentation are separated — wall
// times come from un-traced repeats, while counters and spans come from one
// additional instrumented run — so tracing overhead never pollutes the
// reported numbers.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/counters.h"

namespace pfact::obs {

inline constexpr const char* kBenchSchema = "pfact-bench/2";

struct BenchSpec {
  std::string name;        // e.g. "table1/gem-xor-suite"
  std::string experiment;  // EXPERIMENTS.md anchor, e.g. "table1"
  std::function<void()> fn;
};

struct BenchMeasurement {
  std::string name;
  std::string experiment;
  std::size_t warmup = 0;
  std::size_t repeats = 0;
  double ns_min = 0;
  double ns_mean = 0;
  double ns_median = 0;
  // One instrumented run of fn (deterministic given the workload):
  CounterDelta counters;
  std::size_t span_count = 0;
  std::size_t critical_path_depth = 0;  // longest chain of disjoint spans
};

class BenchSuite {
 public:
  void add(std::string name, std::string experiment,
           std::function<void()> fn);

  const std::vector<BenchSpec>& specs() const { return specs_; }

  // Runs one spec: `warmup` untimed runs, `repeats` timed runs, then one
  // instrumented run for counters + spans.
  BenchMeasurement measure(const BenchSpec& spec, std::size_t warmup,
                           std::size_t repeats) const;

  // Runs every spec whose name contains `filter` (empty = all), logging a
  // one-line summary per bench to `log` (may be null).
  std::vector<BenchMeasurement> run(std::size_t warmup, std::size_t repeats,
                                    const std::string& filter,
                                    std::ostream* log) const;

  // The schema-versioned JSON document (see DESIGN.md section 8 for the
  // field-by-field description).
  static std::string to_json(const std::vector<BenchMeasurement>& results,
                             std::size_t warmup, std::size_t repeats);

 private:
  std::vector<BenchSpec> specs_;
};

}  // namespace pfact::obs
