#pragma once
// Lightweight span tracing for the parallel execution paths.
//
// A span is a named begin/end interval on one thread. The thread pool, the
// parallel factorizations and the NC drivers open spans around their units
// of work (a pool chunk, a Sameh-Kuck stage, a prefix-rank query, an
// elimination step), which makes the paper's depth model *visible*: GEM's
// pivot chain shows up as a linear sequence of disjoint spans, while the NC
// algorithms show up as wide layers of overlapping ones.
//
// Collection is off by default; set_enabled(true) turns it on (tests, the
// bench harness and flame-graph hunts do). When PFACT_OBS_ENABLED is 0 the
// tracer compiles to stubs and PFACT_SPAN sites vanish.
//
// Export: to_chrome_trace_json() emits Chrome trace_event JSON ("X" complete
// events) loadable in chrome://tracing / Perfetto for flame-graph
// inspection; critical_path_depth() computes the length of the longest chain
// of sequentially-dependent (non-overlapping) spans — the measured analogue
// of analysis/depth_model's structural depth.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.h"  // for PFACT_OBS_ENABLED

namespace pfact::obs {

struct SpanEvent {
  const char* name = "";     // static string (macro call sites pass literals)
  std::uint64_t begin_ns = 0;  // steady-clock, process-relative
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;       // small sequential id assigned per thread
};

// Global runtime toggle (relaxed atomic; ~1 load per PFACT_SPAN site when
// disabled).
bool tracing_enabled();
void set_tracing_enabled(bool on);

// Drops all recorded spans (typically paired with set_tracing_enabled).
void clear_spans();

// Copies out every recorded span, all threads, in no particular order.
std::vector<SpanEvent> dump_spans();

// RAII tracing scope: enables collection on construction (clearing previous
// spans), restores the prior enabled state on destruction.
class ScopedTracing {
 public:
  ScopedTracing() : prev_(tracing_enabled()) {
    clear_spans();
    set_tracing_enabled(true);
  }
  ~ScopedTracing() { set_tracing_enabled(prev_); }
  ScopedTracing(const ScopedTracing&) = delete;
  ScopedTracing& operator=(const ScopedTracing&) = delete;

 private:
  bool prev_;
};

#if PFACT_OBS_ENABLED

namespace detail {
std::uint64_t now_ns();
void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns);
}  // namespace detail

// Records [construction, destruction) under `name` if tracing is enabled at
// construction time. `name` must outlive the span log (pass a literal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (tracing_enabled()) {
      name_ = name;
      begin_ns_ = detail::now_ns();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      detail::record_span(name_, begin_ns_, detail::now_ns());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
};

#else  // !PFACT_OBS_ENABLED

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
};

#endif  // PFACT_OBS_ENABLED

// Chrome trace_event JSON (https://docs.google.com/document/d/1CvAClvFfyA5R-
// PhYUmn5OOQtYMH4h6I0nSsKchNAySU): an array of "X" (complete) events with
// microsecond timestamps, one pid, tids as recorded. Loadable in
// chrome://tracing and Perfetto.
std::string to_chrome_trace_json(const std::vector<SpanEvent>& spans);

// Length of the longest chain s_1, ..., s_k with s_{i+1}.begin >= s_i.end —
// the number of sequential stages the trace exhibits. Overlapping (parallel)
// spans never extend a chain, so a width-w layer contributes 1, not w.
// Computed greedily on end-time order (classic interval scheduling).
std::size_t critical_path_depth(std::vector<SpanEvent> spans);

// PFACT_SPAN("name"): open a span for the rest of the enclosing scope.
#if PFACT_OBS_ENABLED
#define PFACT_SPAN_CONCAT2(a, b) a##b
#define PFACT_SPAN_CONCAT(a, b) PFACT_SPAN_CONCAT2(a, b)
#define PFACT_SPAN(name) \
  ::pfact::obs::ScopedSpan PFACT_SPAN_CONCAT(pfact_span_, __LINE__)(name)
#else
#define PFACT_SPAN(name) ((void)0)
#endif

}  // namespace pfact::obs
