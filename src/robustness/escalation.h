#pragma once
// The substrate ladder: WHERE a reduction re-runs after a deterministic
// numeric failure.
//
// The ladder orders the repo's arithmetic substrates by how much of the
// numeric failure surface they close off:
//
//   kDouble      — native machine floats (double; long double for GQR,
//                  whose gadget constants are mastered in long double).
//                  Fastest, but NaNs propagate silently and the FPU
//                  environment is taken on faith.
//   kSoftFloat53 — software IEEE double (numeric::Float53). Same nominal
//                  precision, but every operation traps non-finite results
//                  (std::domain_error), saturation throws, and the rounding
//                  mode is probeable — so an anomaly that double could only
//                  *decode* its way into detecting is caught at the very
//                  operation that produced it.
//   kRational    — exact arithmetic (numeric::Rational over BigInt). No
//                  rounding at all: if the decode is wrong here, the input
//                  (or this library) is wrong, not the arithmetic. The
//                  terminal rung.
//
// GQR is the exception: its rotations need field_sqrt, which no exact
// rational field has (sqrt(2) is irrational — the paper's Section 4 is
// explicit that GQR lives in the floating point model). Its ladder tops out
// at kSoftFloat53, mirroring Theorem 4.1's restriction.
//
// A checkpoint blob is field-tagged (checkpoint.h), so escalation
// invalidates saved state by construction: the driver clears the store
// when it climbs, and a stale blob from the old rung would be rejected as
// malformed anyway.

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "robustness/diagnostics.h"
#include "robustness/fault_injector.h"
#include "robustness/guarded_run.h"

namespace pfact::robustness {

enum class Substrate {
  kDouble,
  kSoftFloat53,
  kRational,
};

const char* substrate_name(Substrate s);

enum class Algorithm {
  kGem,             // Thm 3.1, minimal pivoting with swaps
  kGems,            // Thm 3.1, minimal pivoting with shifts
  kGemNonsingular,  // Cor 3.2, bordered nonsingular GEM
  kGep,             // Thm 3.4, partial pivoting NAND/PASS chain
  kGqr,             // Thm 4.1, Givens rotation NAND/PASS chain
};

const char* algorithm_name(Algorithm a);

// WHICH storage backend holds the reduction matrix while it runs
// (matrix/storage.h). The two backends are bit-equal by contract: same
// decoded boolean, event-for-event identical pivot trace, same diagnostics
// — the sparse backend just stores only the nonzeros, so block-banded A_C
// reductions 10-100x beyond the dense gate-count ceiling fit in the same
// memory. Orthogonal to the substrate ladder: every (Substrate, Backend)
// pair that the algorithm supports is runnable.
enum class Backend {
  kDense,
  kSparse,
};

const char* backend_name(Backend b);

// One unit of resilient work: everything needed to (re-)launch the same
// reduction on any rung of the ladder.
struct ReductionTask {
  Algorithm algorithm = Algorithm::kGem;
  // GEM / GEMS / GEM-nonsingular input (defaults to the empty circuit,
  // which those drivers refuse as kBadInput — chain tasks never read it).
  circuit::CvpInstance instance{circuit::Circuit(0, {}), {}};
  // GEP chain inputs (encoded in {1,2}) or GQR chain inputs ({-1,+1}).
  int u = 1;
  int w = 1;
  std::size_t depth = 0;  // chain length for GEP/GQR
  // Storage backend the run executes on (answers are backend-invariant).
  Backend backend = Backend::kDense;

  // Ground truth, for the soak harness's zero-wrong-answers assertion.
  bool expected() const;

  std::string describe() const;
};

// GQR has no exact rung (no rational square root); everything else supports
// the full ladder.
bool substrate_supported(Algorithm a, Substrate s);

// The rungs the resilient driver climbs for this algorithm, in order.
std::vector<Substrate> default_ladder(Algorithm a);

// Runs the task's guarded driver over the given substrate. The dispatch is
// total over (Algorithm, Substrate) pairs with substrate_supported == true;
// an unsupported pair reports kBadInput without running anything.
RunReport run_on_substrate(const ReductionTask& task, Substrate s,
                           const GuardLimits& limits = {},
                           const FaultPlan& fault = {},
                           const CheckpointConfig& ckpt = {});

}  // namespace pfact::robustness
