#pragma once
// Structured diagnostics for guarded reduction runs.
//
// The paper's reductions (Thm 3.1/3.4/4.1) only work if the factorization
// produces bit-exact encoded booleans; any perturbation of A_C, a rounding
// slip, or a pivot anomaly silently corrupts the decoded circuit value.
// RunReport replaces the seed's bare `ok=false` with a classified verdict:
// every failure mode the fault-injection suite can produce maps to a
// distinct Diagnostic, together with the offending position and a pivot
// trace excerpt, so a failed run is *explainable* — never just "not ok".
//
// Contract (see DESIGN.md): detection, not correction. A guarded run either
// returns kOk with a value certified against the direct circuit evaluation,
// or a non-kOk diagnostic. It never returns a plausible-but-wrong value.

#include <cstddef>
#include <string>

#include "factor/pivot_trace.h"
#include "obs/counters.h"

namespace pfact::robustness {

enum class Diagnostic {
  kOk,                    // decode clean AND certified by cross-check
  kBadInput,              // malformed instance (arity, encoding, size cap)
  kDecodeNotBoolean,      // output entry is not an exact encoded 0/1
  kDecodeAmbiguous,       // zero or multiple live rows at the decode column
  kDecodeOutOfTolerance,  // float decode outside the accepted band of +/-1
  kCrossCheckMismatch,    // decode clean but contradicts direct evaluation
  kPivotAnomaly,          // unexpected skip/fail event in the pivot trace
  kRoundingAnomaly,       // arithmetic substrate is not round-to-nearest-even
  kNumericOverflow,       // SoftFloat saturation / BigInt growth-limit hit
  kNumericNonFinite,      // NaN/inf or degenerate (zero-norm) rotation
  kInvariantViolation,    // an engine invariant tripped (non-unit pivot, ...)
  kStepBudgetExceeded,    // the run consumed more steps than its budget
  kDeadlineExceeded,      // the run overran its wall-clock deadline
  kCancelled,             // cooperative cancellation fired mid-run
  kResourceExhausted,     // allocation failure (std::bad_alloc) mid-run
  kCheckpointCorrupt,     // a resume checkpoint failed CRC/version/shape
  kWorkerFailure,         // a pool worker failed with an unclassified error
  kInternalError,         // anything else — a bug in this library
  kOverloaded,            // admission control shed the job (queue saturated)
  kConnReset,             // a network peer vanished mid-conversation
};

inline const char* diagnostic_name(Diagnostic d) {
  switch (d) {
    case Diagnostic::kOk: return "ok";
    case Diagnostic::kBadInput: return "bad-input";
    case Diagnostic::kDecodeNotBoolean: return "decode-not-boolean";
    case Diagnostic::kDecodeAmbiguous: return "decode-ambiguous";
    case Diagnostic::kDecodeOutOfTolerance: return "decode-out-of-tolerance";
    case Diagnostic::kCrossCheckMismatch: return "cross-check-mismatch";
    case Diagnostic::kPivotAnomaly: return "pivot-anomaly";
    case Diagnostic::kRoundingAnomaly: return "rounding-anomaly";
    case Diagnostic::kNumericOverflow: return "numeric-overflow";
    case Diagnostic::kNumericNonFinite: return "numeric-non-finite";
    case Diagnostic::kInvariantViolation: return "invariant-violation";
    case Diagnostic::kStepBudgetExceeded: return "step-budget-exceeded";
    case Diagnostic::kDeadlineExceeded: return "deadline-exceeded";
    case Diagnostic::kCancelled: return "cancelled";
    case Diagnostic::kResourceExhausted: return "resource-exhausted";
    case Diagnostic::kCheckpointCorrupt: return "checkpoint-corrupt";
    case Diagnostic::kWorkerFailure: return "worker-failure";
    case Diagnostic::kInternalError: return "internal-error";
    case Diagnostic::kOverloaded: return "overloaded";
    case Diagnostic::kConnReset: return "connection-reset";
  }
  return "?";
}

inline constexpr std::size_t kNoPosition = static_cast<std::size_t>(-1);

struct RunReport {
  Diagnostic diagnostic = Diagnostic::kInternalError;

  // Valid only when diagnostic == kOk.
  bool value = false;

  std::string algorithm;         // "GEM" / "GEMS" / "GEP" / "GQR"
  std::size_t order = 0;         // order of the matrix actually run
  double decoded_entry = 0.0;    // raw entry/encoding read at decode time
  std::size_t steps_used = 0;    // guard ticks consumed

  // Where the failure was observed (matrix position or step index);
  // kNoPosition when not applicable.
  std::size_t offending_row = kNoPosition;
  std::size_t offending_col = kNoPosition;

  std::string detail;         // human-readable cause
  std::string pivot_excerpt;  // tail of the pivot trace, when one exists
  std::string injection;      // what the fault injector did (replay aid)

  // The complete pivot trace of the run (empty for GQR, which pivots by
  // rotation). For a resumed run this is the checkpoint's stored prefix
  // concatenated with the freshly executed suffix, so crash/resume
  // equivalence can be asserted event-for-event against an uninterrupted
  // run, not just on the excerpt string.
  factor::PivotTrace trace;

  // Op-counter deltas covering exactly this run (all-zero when the
  // observability layer is compiled out with PFACT_OBS=OFF).
  obs::CounterDelta metrics;

  bool ok() const { return diagnostic == Diagnostic::kOk; }

  std::string to_string() const {
    std::string s = "[" + algorithm + "] " + diagnostic_name(diagnostic);
    if (ok()) s += value ? " value=true" : " value=false";
    s += " order=" + std::to_string(order);
    s += " steps=" + std::to_string(steps_used);
    if (offending_row != kNoPosition || offending_col != kNoPosition) {
      auto fmt = [](std::size_t v) {
        return v == kNoPosition ? std::string("-") : std::to_string(v);
      };
      s += " at=(" + fmt(offending_row) + "," + fmt(offending_col) + ")";
    }
    if (!detail.empty()) s += " — " + detail;
    if (!injection.empty()) s += " [injected: " + injection + "]";
    if (!pivot_excerpt.empty()) s += "\n  trace: " + pivot_excerpt;
    return s;
  }
};

}  // namespace pfact::robustness
