#include "robustness/retry.h"

namespace pfact::robustness {

const char* failure_kind_name(FailureKind k) {
  switch (k) {
    case FailureKind::kSuccess: return "success";
    case FailureKind::kTransient: return "transient";
    case FailureKind::kDeterministic: return "deterministic";
    case FailureKind::kFatal: return "fatal";
  }
  return "?";
}

FailureKind classify_diagnostic(Diagnostic d) {
  switch (d) {
    case Diagnostic::kOk:
      return FailureKind::kSuccess;

    // Environment / preemption / storage: the computation itself was never
    // refuted, only interrupted or run in a poisoned moment.
    case Diagnostic::kRoundingAnomaly:     // FPU state flipped under us
    case Diagnostic::kStepBudgetExceeded:  // preempted by its own budget
    case Diagnostic::kDeadlineExceeded:    // overran the wall clock
    case Diagnostic::kCancelled:           // cooperative cancellation
    case Diagnostic::kResourceExhausted:   // bad_alloc under memory pressure
    case Diagnostic::kCheckpointCorrupt:   // torn write; retry re-resumes
    case Diagnostic::kWorkerFailure:       // a pool worker died
    case Diagnostic::kOverloaded:          // shed by admission control; the
                                           // work was refused, never refuted
    case Diagnostic::kConnReset:           // the peer (or the wire) vanished;
                                           // the request may never have been
                                           // seen — reconnect and resubmit
      return FailureKind::kTransient;

    // The arithmetic on this substrate produced these bits and will again:
    // only more precision can change the outcome.
    case Diagnostic::kDecodeNotBoolean:
    case Diagnostic::kDecodeAmbiguous:
    case Diagnostic::kDecodeOutOfTolerance:
    case Diagnostic::kCrossCheckMismatch:
    case Diagnostic::kPivotAnomaly:
    case Diagnostic::kNumericOverflow:
    case Diagnostic::kNumericNonFinite:
    case Diagnostic::kInvariantViolation:
      return FailureKind::kDeterministic;

    // Malformed input or a library bug: unrecoverable by construction.
    case Diagnostic::kBadInput:
    case Diagnostic::kInternalError:
      return FailureKind::kFatal;
  }
  return FailureKind::kFatal;
}

std::uint64_t mix64(std::uint64_t seed, std::uint64_t attempt) {
  std::uint64_t z = seed + attempt * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::chrono::milliseconds RetryPolicy::backoff(std::size_t attempt) const {
  if (base_delay.count() <= 0 || attempt == 0) {
    return std::chrono::milliseconds{0};
  }
  // base * 2^(attempt-1), saturating at max_delay before jitter so the cap
  // is exact even when the shift would overflow.
  const std::uint64_t shift = attempt - 1;
  std::uint64_t raw = static_cast<std::uint64_t>(base_delay.count());
  const std::uint64_t cap = static_cast<std::uint64_t>(
      max_delay.count() > 0 ? max_delay.count() : base_delay.count());
  if (shift >= 63 || raw > (cap >> shift)) {
    raw = cap;
  } else {
    raw <<= shift;
    if (raw > cap) raw = cap;
  }
  // Jitter factor in [0.5, 1.0]: keep the top bit, randomize the rest.
  const std::uint64_t r = mix64(jitter_seed, attempt);
  const std::uint64_t jittered = raw / 2 + (r % (raw / 2 + 1));
  return std::chrono::milliseconds{static_cast<long long>(jittered)};
}

}  // namespace pfact::robustness
