#include "robustness/checkpoint.h"

#include <array>
#include <fstream>

namespace pfact::robustness {

namespace {

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[t][b] advances a byte that is t positions deeper in the 8-byte
// window. Checkpoint payloads are matrix-sized, so CRC throughput is on
// the save-every-k hot path.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::size_t s = 1; s < 8; ++s) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[s][i] = t[0][t[s - 1][i] & 0xFFu] ^ (t[s - 1][i] >> 8);
    }
  }
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  static const std::array<std::array<std::uint32_t, 256>, 8> t =
      make_crc_tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  while (len >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    if constexpr (std::endian::native == std::endian::big)
      chunk = __builtin_bswap64(chunk);
    const std::uint32_t lo = c ^ static_cast<std::uint32_t>(chunk);
    const auto hi = static_cast<std::uint32_t>(chunk >> 32);
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (std::size_t i = 0; i < len; ++i) {
    c = t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

CheckpointStatus validate_checkpoint_envelope(std::string_view blob) {
  if (blob.size() < kCheckpointHeaderBytes) return CheckpointStatus::kTruncated;
  detail::ByteReader header(blob.substr(0, kCheckpointHeaderBytes));
  const std::uint32_t magic = header.get_u32();
  const std::uint32_t version = header.get_u32();
  const std::uint64_t length = header.get_u64();
  const std::uint32_t crc = header.get_u32();
  if (magic != kCheckpointMagic) return CheckpointStatus::kBadMagic;
  if (version != kCheckpointVersion) return CheckpointStatus::kBadVersion;
  if (blob.size() < kCheckpointHeaderBytes + length)
    return CheckpointStatus::kTruncated;
  const std::string_view body = blob.substr(kCheckpointHeaderBytes, length);
  if (crc32(body.data(), body.size()) != crc)
    return CheckpointStatus::kCrcMismatch;
  if (blob.size() != kCheckpointHeaderBytes + length)
    return CheckpointStatus::kMalformed;  // trailing garbage after the payload
  return CheckpointStatus::kOk;
}

bool write_checkpoint_file(const std::string& path, std::string_view blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  return static_cast<bool>(out);
}

bool read_checkpoint_file(const std::string& path, std::string& blob) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  blob.assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

}  // namespace pfact::robustness
