#pragma once
// The resilient execution driver: guard -> checkpoint -> classify ->
// retry/escalate, composed into one supervised loop.
//
// One call runs a ReductionTask to a CERTIFIED answer or a classified
// terminal failure, never anything in between (the "zero plausible-but-
// wrong answers" contract — inherited from the guarded drivers' cross-check
// and preserved by construction here, because every rung's answer passes
// through the same certificate).
//
// The loop, per rung of the substrate ladder (escalation.h):
//
//   attempt -> classify (retry.h) -> | success       -> return certified
//                                    | fatal         -> return terminal
//                                    | transient     -> backoff, resume from
//                                    |                  last good checkpoint,
//                                    |                  retry this rung
//                                    | deterministic -> climb one rung
//
// Exhausting a rung's retry budget on transients also climbs (the rung is
// treated as unviable here-and-now); exhausting the ladder returns the last
// report as a terminal failure. Checkpoints are field-tagged, so the store
// is cleared on every climb.
//
// Determinism: with a fixed ResilientOptions (policy seed, fault schedule)
// the whole attempt log — diagnostics, backoff delays, escalations — is
// bit-reproducible. Backoff delays are RECORDED on every retry but only
// SLEPT when the caller installs a sleeper, so tests and soak campaigns
// replay at full speed.

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "robustness/checkpoint.h"
#include "robustness/diagnostics.h"
#include "robustness/escalation.h"
#include "robustness/fault_injector.h"
#include "robustness/guarded_run.h"
#include "robustness/retry.h"

namespace pfact::robustness {

// One guarded attempt, as the supervisor saw it.
struct AttemptRecord {
  Substrate substrate = Substrate::kDouble;
  std::size_t attempt = 0;  // 1-based index within the rung
  Diagnostic diagnostic = Diagnostic::kInternalError;
  FailureKind kind = FailureKind::kFatal;
  // Backoff recorded before THIS attempt (zero for a rung's first attempt).
  std::chrono::milliseconds backoff{0};
  bool resumed = false;     // started from a validated checkpoint
  std::string detail;

  std::string to_string() const;
};

struct ResilientOptions {
  RetryPolicy retry;
  GuardLimits limits;
  // Ladder override; empty means default_ladder(task.algorithm).
  std::vector<Substrate> ladder;
  // Checkpoint cadence (guard steps between snapshots); 0 disables
  // checkpointing entirely.
  std::size_t checkpoint_every = 0;
  // External checkpoint store (crash/resume harnesses pre-populate one);
  // nullptr uses a private store.
  CheckpointStore* store = nullptr;
  // Chaos schedule: the fault plan injected into global attempt k (1-based,
  // across rungs). Null means no injected faults.
  std::function<FaultPlan(std::size_t attempt)> fault_for_attempt;
  // Sleeps backoff delays when installed; null records them without
  // sleeping (the deterministic default).
  std::function<void(std::chrono::milliseconds)> sleeper;
};

struct ResilientReport {
  // True iff the run ended kOk — i.e. decoded AND certified by the direct-
  // evaluation cross-check on the rung named below.
  bool certified = false;
  bool value = false;
  Substrate certified_by = Substrate::kDouble;

  FailureKind outcome = FailureKind::kFatal;  // kSuccess when certified
  RunReport final_report;                     // the deciding attempt's report
  std::vector<AttemptRecord> attempts;        // the full supervised log
  std::size_t escalations = 0;                // rungs climbed

  std::string to_string() const;
};

ResilientReport resilient_run(const ReductionTask& task,
                              const ResilientOptions& options = {});

}  // namespace pfact::robustness
