#include "robustness/guarded_run.h"

#include <cmath>
#include <stdexcept>

#include "core/gep_gadgets.h"
#include "parallel/thread_pool.h"

namespace pfact::robustness {
namespace detail {

void apply_exception(RunReport& rep, std::exception_ptr ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const factor::GuardAbort& g) {
    switch (g.kind()) {
      case factor::GuardAbort::Kind::kStepBudget:
        rep.diagnostic = Diagnostic::kStepBudgetExceeded;
        break;
      case factor::GuardAbort::Kind::kDeadline:
        rep.diagnostic = Diagnostic::kDeadlineExceeded;
        break;
      case factor::GuardAbort::Kind::kInvariant:
        rep.diagnostic = Diagnostic::kInvariantViolation;
        break;
    }
    rep.offending_col = g.position();
    rep.detail = g.what();
  } catch (const par::OperationCancelled& c) {
    rep.diagnostic = Diagnostic::kCancelled;
    rep.detail = c.what();
  } catch (const std::bad_alloc&) {
    // Allocation pressure is a property of the moment, not of the input:
    // transient, retry-the-same-substrate territory.
    rep.diagnostic = Diagnostic::kResourceExhausted;
    rep.detail = "allocation failed mid-run (std::bad_alloc)";
  } catch (const std::overflow_error& e) {
    rep.diagnostic = Diagnostic::kNumericOverflow;
    rep.detail = e.what();
  } catch (const std::domain_error& e) {
    // SoftFloat NaN construction / division by a (flushed-to-)zero.
    rep.diagnostic = Diagnostic::kNumericNonFinite;
    rep.detail = e.what();
  } catch (const std::invalid_argument& e) {
    rep.diagnostic = Diagnostic::kBadInput;
    rep.detail = e.what();
  } catch (const std::exception& e) {
    rep.diagnostic = Diagnostic::kWorkerFailure;
    rep.detail = e.what();
  } catch (...) {
    rep.diagnostic = Diagnostic::kInternalError;
    rep.detail = "non-standard exception";
  }
}

std::string trace_excerpt(const factor::PivotTrace& trace,
                          std::size_t max_events) {
  const auto& ev = trace.events();
  std::string out =
      std::to_string(ev.size()) + " events";
  if (ev.empty()) return out;
  std::size_t first = ev.size() > max_events ? ev.size() - max_events : 0;
  out += first > 0 ? "; tail:" : ":";
  for (std::size_t i = first; i < ev.size(); ++i) {
    const auto& e = ev[i];
    const char* act = "?";
    switch (e.action) {
      case factor::PivotAction::kKeep: act = "keep"; break;
      case factor::PivotAction::kSwap: act = "swap"; break;
      case factor::PivotAction::kShift: act = "shift"; break;
      case factor::PivotAction::kSkip: act = "skip"; break;
      case factor::PivotAction::kFail: act = "fail"; break;
    }
    out += " c" + std::to_string(e.column) + ":" + act;
    if (e.action == factor::PivotAction::kSwap ||
        e.action == factor::PivotAction::kShift) {
      out += "@" + std::to_string(e.pivot_pos);
    }
  }
  return out;
}

}  // namespace detail

RunReport guarded_run_gep_chain(int u, int w, std::size_t depth,
                                const GuardLimits& limits,
                                const FaultPlan& fault,
                                const CheckpointConfig& ckpt) {
  return guarded_run_gep_chain_t<double>(u, w, depth, limits, fault, ckpt);
}

}  // namespace pfact::robustness
