#include "robustness/guarded_run.h"

#include <cmath>
#include <stdexcept>

#include "core/gep_gadgets.h"
#include "parallel/thread_pool.h"

namespace pfact::robustness {
namespace detail {

void apply_exception(RunReport& rep, std::exception_ptr ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const factor::GuardAbort& g) {
    switch (g.kind()) {
      case factor::GuardAbort::Kind::kStepBudget:
        rep.diagnostic = Diagnostic::kStepBudgetExceeded;
        break;
      case factor::GuardAbort::Kind::kDeadline:
        rep.diagnostic = Diagnostic::kDeadlineExceeded;
        break;
      case factor::GuardAbort::Kind::kInvariant:
        rep.diagnostic = Diagnostic::kInvariantViolation;
        break;
    }
    rep.offending_col = g.position();
    rep.detail = g.what();
  } catch (const par::OperationCancelled& c) {
    rep.diagnostic = Diagnostic::kCancelled;
    rep.detail = c.what();
  } catch (const std::overflow_error& e) {
    rep.diagnostic = Diagnostic::kNumericOverflow;
    rep.detail = e.what();
  } catch (const std::domain_error& e) {
    // SoftFloat NaN construction / division by a (flushed-to-)zero.
    rep.diagnostic = Diagnostic::kNumericNonFinite;
    rep.detail = e.what();
  } catch (const std::invalid_argument& e) {
    rep.diagnostic = Diagnostic::kBadInput;
    rep.detail = e.what();
  } catch (const std::exception& e) {
    rep.diagnostic = Diagnostic::kWorkerFailure;
    rep.detail = e.what();
  } catch (...) {
    rep.diagnostic = Diagnostic::kInternalError;
    rep.detail = "non-standard exception";
  }
}

std::string trace_excerpt(const factor::PivotTrace& trace,
                          std::size_t max_events) {
  const auto& ev = trace.events();
  std::string out =
      std::to_string(ev.size()) + " events";
  if (ev.empty()) return out;
  std::size_t first = ev.size() > max_events ? ev.size() - max_events : 0;
  out += first > 0 ? "; tail:" : ":";
  for (std::size_t i = first; i < ev.size(); ++i) {
    const auto& e = ev[i];
    const char* act = "?";
    switch (e.action) {
      case factor::PivotAction::kKeep: act = "keep"; break;
      case factor::PivotAction::kSwap: act = "swap"; break;
      case factor::PivotAction::kShift: act = "shift"; break;
      case factor::PivotAction::kSkip: act = "skip"; break;
      case factor::PivotAction::kFail: act = "fail"; break;
    }
    out += " c" + std::to_string(e.column) + ":" + act;
    if (e.action == factor::PivotAction::kSwap ||
        e.action == factor::PivotAction::kShift) {
      out += "@" + std::to_string(e.pivot_pos);
    }
  }
  return out;
}

}  // namespace detail

RunReport guarded_run_gep_chain(int u, int w, std::size_t depth,
                                const GuardLimits& limits,
                                const FaultPlan& fault) {
  RunReport rep;
  rep.algorithm = "GEP";
  detail::ReportMetrics metrics_guard(rep);
  FaultInjector inj(fault);
  std::optional<numeric::ScopedSoftFloatRounding> flipped;
  if (fault.fault == FaultClass::kRoundingFlip) flipped.emplace(fault.rounding);

  u = inj.corrupt_encoded_input(u);
  rep.injection = inj.injection_log();
  if ((u != 1 && u != 2) || (w != 1 && w != 2)) {
    rep.diagnostic = Diagnostic::kBadInput;
    rep.detail = "GEP inputs must be encoded in {1,2}, got u=" +
                 std::to_string(u) + " w=" + std::to_string(w);
    return rep;
  }
  factor::StepGuard guard = detail::make_guard(limits);
  try {
    core::GepChain chain = core::build_gep_nand_chain(u, w, depth);
    if (chain.matrix.rows() > limits.max_order) {
      rep.diagnostic = Diagnostic::kBadInput;
      rep.detail = "chain order exceeds the cap";
      return rep;
    }
    Matrix<double> m = chain.matrix;
    if (inj.corrupt_matrix(m)) rep.injection = inj.injection_log();
    rep.order = m.rows();
    Permutation perm(m.rows());
    factor::EliminationChecks checks;
    checks.guard = &guard;  // GEP gadget pivots are not +/-1: no
                            // reduction_mode here — the trace checks below
                            // carry the structural invariant instead.
    factor::PivotTrace trace = factor::eliminate_steps(
        m, factor::PivotStrategy::kPartial, chain.value_col, &perm, checks);
    rep.steps_used = guard.ticks_used();
    rep.pivot_excerpt = detail::trace_excerpt(trace);
    // The GEP reduction matrices are strongly nonsingular by construction
    // (diagonal fillers): every eliminated column must have found a pivot.
    for (const auto& e : trace.events()) {
      if (e.action == factor::PivotAction::kSkip ||
          e.action == factor::PivotAction::kFail) {
        rep.diagnostic = Diagnostic::kPivotAnomaly;
        rep.offending_col = e.column;
        rep.detail = "column " + std::to_string(e.column) +
                     " lost its pivot in a strongly nonsingular reduction";
        return rep;
      }
    }
    // Decode: exactly one live row at/below the value column.
    int found = -1;
    for (std::size_t i = chain.value_col; i < m.rows(); ++i) {
      if (std::fabs(m(i, chain.value_col)) > 0.2) {
        if (found >= 0) {
          rep.diagnostic = Diagnostic::kDecodeAmbiguous;
          rep.offending_row = i;
          rep.offending_col = chain.value_col;
          rep.detail = "multiple live rows at the value column";
          return rep;
        }
        found = static_cast<int>(i);
      }
    }
    if (found < 0) {
      rep.diagnostic = Diagnostic::kDecodeAmbiguous;
      rep.offending_col = chain.value_col;
      rep.detail = "no live row at the value column";
      return rep;
    }
    const double v = m(static_cast<std::size_t>(found), chain.value_col);
    rep.decoded_entry = v;
    int enc = 0;
    if (std::fabs(v - 1.0) <= limits.decode_tolerance) {
      enc = 1;
    } else if (std::fabs(v - 2.0) <= limits.decode_tolerance) {
      enc = 2;
    } else {
      rep.diagnostic = Diagnostic::kDecodeOutOfTolerance;
      rep.offending_row = static_cast<std::size_t>(found);
      rep.offending_col = chain.value_col;
      rep.detail = "decoded entry " + std::to_string(v) +
                   " is outside the {1,2} tolerance band";
      return rep;
    }
    const bool decoded = enc == 2;  // True = 2
    const bool reference = !(u == 2 && w == 2);
    if (decoded != reference) {
      rep.diagnostic = Diagnostic::kCrossCheckMismatch;
      rep.offending_row = static_cast<std::size_t>(found);
      rep.offending_col = chain.value_col;
      rep.detail = std::string("decode says ") +
                   (decoded ? "true" : "false") +
                   " but NAND(u,w) evaluates to " +
                   (reference ? "true" : "false");
      return rep;
    }
    rep.value = decoded;
    rep.diagnostic = Diagnostic::kOk;
  } catch (...) {
    detail::apply_exception(rep, std::current_exception());
    rep.steps_used = guard.ticks_used();
  }
  return rep;
}

}  // namespace pfact::robustness
