#pragma once
// Failure classification and retry policy for the resilient engine.
//
// The classifier maps every RunReport diagnostic into one of three failure
// kinds, which is the whole decision table of resilient_run.h:
//
//   kTransient     — a property of the MOMENT, not of the computation:
//                    environment glitches (rounding mode flipped under us),
//                    budget/deadline preemption, allocation pressure,
//                    cancellation, a worker dying, a torn checkpoint. The
//                    same substrate may well succeed on a clean re-run, so
//                    retry with backoff (resuming from the last good
//                    checkpoint where one exists).
//   kDeterministic — a property of the COMPUTATION on this substrate: the
//                    arithmetic itself produced a non-finite value, broke an
//                    engine invariant, or decoded to garbage. Re-running in
//                    the same precision replays the same bits, so retrying
//                    is waste — escalate one rung up the substrate ladder
//                    (escalation.h) instead.
//   kFatal         — a property of the INPUT (or a library bug): no amount
//                    of retrying or precision will fix a malformed instance.
//                    Fail immediately.
//
// Backoff is exponential with deterministic jitter: the delay for attempt k
// is base * 2^k, scaled by a jitter factor in [1/2, 1] drawn from
// splitmix64(seed, attempt). Same policy seed => bit-identical delay
// sequence, so soak campaigns replay exactly.

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "robustness/diagnostics.h"

namespace pfact::robustness {

enum class FailureKind {
  kSuccess,        // diagnostic == kOk: nothing to handle
  kTransient,      // retry on the same substrate
  kDeterministic,  // escalate to a higher-precision substrate
  kFatal,          // fail immediately, no retry, no escalation
};

const char* failure_kind_name(FailureKind k);

// The decision table. Total over Diagnostic: every enumerator maps to
// exactly one kind (enforced by a switch with no default in retry.cpp).
FailureKind classify_diagnostic(Diagnostic d);

// splitmix64 of (seed ^ mixed attempt) — the standard 64-bit finalizer, used
// here as a tiny deterministic PRNG for jitter. Exposed for tests.
std::uint64_t mix64(std::uint64_t seed, std::uint64_t attempt);

struct RetryPolicy {
  // Attempts allowed per substrate rung, including the first one. 0 behaves
  // as 1 (every rung gets at least one attempt).
  std::size_t max_attempts = 3;
  // Base backoff delay before attempt 1 (the retry after the first
  // failure); doubles each further attempt. Zero disables sleeping while
  // keeping the attempt accounting.
  std::chrono::milliseconds base_delay{10};
  // Cap on a single computed delay.
  std::chrono::milliseconds max_delay{1000};
  // Jitter seed: delays are scaled by a factor in [0.5, 1.0] drawn
  // deterministically from (jitter_seed, attempt).
  std::uint64_t jitter_seed = 0;

  // The delay to sleep before retry number `attempt` (1-based: attempt 1
  // follows the first failure). Deterministic in (policy, attempt).
  std::chrono::milliseconds backoff(std::size_t attempt) const;
};

}  // namespace pfact::robustness
