#include "robustness/resilient_run.h"

#include "obs/counters.h"

namespace pfact::robustness {

std::string AttemptRecord::to_string() const {
  std::string s = std::string(substrate_name(substrate)) + "#" +
                  std::to_string(attempt) + " " +
                  diagnostic_name(diagnostic) + " (" +
                  failure_kind_name(kind) + ")";
  if (backoff.count() > 0) {
    s += " after " + std::to_string(backoff.count()) + "ms backoff";
  }
  if (resumed) s += " [resumed]";
  if (!detail.empty()) s += " — " + detail;
  return s;
}

std::string ResilientReport::to_string() const {
  std::string s = certified
                      ? std::string("certified value=") +
                            (value ? "true" : "false") + " by " +
                            substrate_name(certified_by)
                      : std::string("terminal ") + failure_kind_name(outcome) +
                            ": " + diagnostic_name(final_report.diagnostic);
  s += " after " + std::to_string(attempts.size()) + " attempt(s), " +
       std::to_string(escalations) + " escalation(s)";
  for (const AttemptRecord& a : attempts) s += "\n  " + a.to_string();
  return s;
}

ResilientReport resilient_run(const ReductionTask& task,
                              const ResilientOptions& options) {
  ResilientReport out;
  CheckpointStore local_store;
  CheckpointStore* store =
      options.store != nullptr ? options.store : &local_store;
  const std::vector<Substrate> ladder = options.ladder.empty()
                                            ? default_ladder(task.algorithm)
                                            : options.ladder;
  const std::size_t attempts_per_rung =
      options.retry.max_attempts == 0 ? 1 : options.retry.max_attempts;

  std::size_t global_attempt = 0;
  bool first_rung = true;
  for (std::size_t rung = 0; rung < ladder.size(); ++rung) {
    const Substrate sub = ladder[rung];
    if (!substrate_supported(task.algorithm, sub)) continue;
    // Checkpoints are field-tagged: state saved on another rung is useless
    // here. The FIRST rung keeps whatever the caller pre-populated (the
    // crash/resume path hands work back through options.store).
    if (!first_rung) store->clear();
    first_rung = false;

    for (std::size_t attempt = 1; attempt <= attempts_per_rung; ++attempt) {
      ++global_attempt;
      PFACT_COUNT(kRetryAttempts);

      AttemptRecord rec;
      rec.substrate = sub;
      rec.attempt = attempt;
      if (attempt > 1) {
        rec.backoff = options.retry.backoff(attempt - 1);
        if (options.sleeper && rec.backoff.count() > 0) {
          options.sleeper(rec.backoff);
        }
      }

      const FaultPlan fault = options.fault_for_attempt
                                  ? options.fault_for_attempt(global_attempt)
                                  : FaultPlan{};
      CheckpointConfig ckpt;
      ckpt.every = options.checkpoint_every;
      ckpt.store = options.checkpoint_every != 0 ? store : nullptr;
      ckpt.resume = ckpt.store != nullptr;
      const bool had_checkpoint = ckpt.resume && !store->empty();

      RunReport rep = run_on_substrate(task, sub, options.limits, fault, ckpt);
      rec.diagnostic = rep.diagnostic;
      rec.kind = classify_diagnostic(rep.diagnostic);
      rec.resumed = had_checkpoint && rep.diagnostic !=
                        Diagnostic::kCheckpointCorrupt;
      rec.detail = rep.detail;
      out.attempts.push_back(rec);
      out.final_report = std::move(rep);

      if (rec.kind == FailureKind::kSuccess) {
        out.certified = true;
        out.value = out.final_report.value;
        out.certified_by = sub;
        out.outcome = FailureKind::kSuccess;
        return out;
      }
      if (rec.kind == FailureKind::kFatal) {
        out.outcome = FailureKind::kFatal;
        return out;
      }
      if (rec.kind == FailureKind::kDeterministic) {
        break;  // this substrate will reproduce these bits; climb
      }
      // Transient: a torn/corrupt latest checkpoint must not poison the
      // retry — drop it so the next attempt resumes from the previous
      // intact snapshot (or from scratch).
      if (out.final_report.diagnostic == Diagnostic::kCheckpointCorrupt) {
        store->drop_latest();
      }
    }

    bool has_next = false;
    for (std::size_t r = rung + 1; r < ladder.size(); ++r) {
      if (substrate_supported(task.algorithm, ladder[r])) has_next = true;
    }
    if (has_next) {
      PFACT_COUNT(kEscalations);
      ++out.escalations;
    }
  }

  out.outcome = classify_diagnostic(out.final_report.diagnostic);
  return out;
}

}  // namespace pfact::robustness
