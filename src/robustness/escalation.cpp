#include "robustness/escalation.h"

#include "numeric/rational.h"
#include "numeric/softfloat.h"

namespace pfact::robustness {

const char* substrate_name(Substrate s) {
  switch (s) {
    case Substrate::kDouble: return "double";
    case Substrate::kSoftFloat53: return "softfloat53";
    case Substrate::kRational: return "rational";
  }
  return "?";
}

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kGem: return "GEM";
    case Algorithm::kGems: return "GEMS";
    case Algorithm::kGemNonsingular: return "GEM/nonsingular";
    case Algorithm::kGep: return "GEP";
    case Algorithm::kGqr: return "GQR";
  }
  return "?";
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kDense: return "dense";
    case Backend::kSparse: return "sparse";
  }
  return "?";
}

bool ReductionTask::expected() const {
  switch (algorithm) {
    case Algorithm::kGem:
    case Algorithm::kGems:
    case Algorithm::kGemNonsingular:
      return instance.expected();
    case Algorithm::kGep:
      return !(u == 2 && w == 2);  // NAND on True=2
    case Algorithm::kGqr:
      return !(u == 1 && w == 1);  // NAND on True=+1
  }
  return false;
}

std::string ReductionTask::describe() const {
  std::string s = algorithm_name(algorithm);
  switch (algorithm) {
    case Algorithm::kGem:
    case Algorithm::kGems:
    case Algorithm::kGemNonsingular:
      s += " gates=" + std::to_string(instance.circuit.num_gates());
      break;
    case Algorithm::kGep:
    case Algorithm::kGqr:
      s += " u=" + std::to_string(u) + " w=" + std::to_string(w) +
           " depth=" + std::to_string(depth);
      break;
  }
  if (backend != Backend::kDense) {
    s += std::string(" backend=") + backend_name(backend);
  }
  return s;
}

bool substrate_supported(Algorithm a, Substrate s) {
  if (a == Algorithm::kGqr && s == Substrate::kRational) return false;
  return true;
}

std::vector<Substrate> default_ladder(Algorithm a) {
  std::vector<Substrate> ladder = {Substrate::kDouble,
                                   Substrate::kSoftFloat53};
  if (substrate_supported(a, Substrate::kRational)) {
    ladder.push_back(Substrate::kRational);
  }
  return ladder;
}

namespace {

// GEM/GEMS/GEP over a concrete field and storage backend. GQR is handled
// separately: its kDouble rung runs over long double (the gadget master
// precision) and the Rational instantiation must never be formed (no
// field_sqrt).
template <class T, class Storage>
RunReport run_field(const ReductionTask& task, const GuardLimits& limits,
                    const FaultPlan& fault, const CheckpointConfig& ckpt) {
  switch (task.algorithm) {
    case Algorithm::kGem:
      return guarded_simulate_gem<T, Storage>(
          task.instance, factor::PivotStrategy::kMinimalSwap, limits, fault,
          ckpt);
    case Algorithm::kGems:
      return guarded_simulate_gem<T, Storage>(
          task.instance, factor::PivotStrategy::kMinimalShift, limits, fault,
          ckpt);
    case Algorithm::kGemNonsingular:
      return guarded_simulate_gem_nonsingular<T, Storage>(task.instance,
                                                          limits, fault, ckpt);
    case Algorithm::kGep:
      return guarded_run_gep_chain_t<T, Storage>(task.u, task.w, task.depth,
                                                 limits, fault, ckpt);
    case Algorithm::kGqr:
      break;  // handled by the caller
  }
  RunReport rep;
  rep.algorithm = algorithm_name(task.algorithm);
  rep.diagnostic = Diagnostic::kInternalError;
  rep.detail = "unreachable dispatch";
  return rep;
}

// Resolves the task's Backend to a concrete storage type for the field T.
template <class T>
RunReport run_field_backend(const ReductionTask& task,
                            const GuardLimits& limits, const FaultPlan& fault,
                            const CheckpointConfig& ckpt) {
  switch (task.backend) {
    case Backend::kDense:
      return run_field<T, Matrix<T>>(task, limits, fault, ckpt);
    case Backend::kSparse:
      return run_field<T, sparse::SparseMatrix<T>>(task, limits, fault, ckpt);
  }
  RunReport rep;
  rep.algorithm = algorithm_name(task.algorithm);
  rep.diagnostic = Diagnostic::kInternalError;
  rep.detail = "unknown backend";
  return rep;
}

template <class T>
RunReport run_gqr_backend(const ReductionTask& task, const GuardLimits& limits,
                          const FaultPlan& fault,
                          const CheckpointConfig& ckpt) {
  switch (task.backend) {
    case Backend::kDense:
      return guarded_run_gqr_chain<T, Matrix<T>>(task.u, task.w, task.depth,
                                                 limits, fault, ckpt);
    case Backend::kSparse:
      return guarded_run_gqr_chain<T, sparse::SparseMatrix<T>>(
          task.u, task.w, task.depth, limits, fault, ckpt);
  }
  RunReport rep;
  rep.algorithm = algorithm_name(task.algorithm);
  rep.diagnostic = Diagnostic::kInternalError;
  rep.detail = "unknown backend";
  return rep;
}

}  // namespace

RunReport run_on_substrate(const ReductionTask& task, Substrate s,
                           const GuardLimits& limits, const FaultPlan& fault,
                           const CheckpointConfig& ckpt) {
  if (!substrate_supported(task.algorithm, s)) {
    RunReport rep;
    rep.algorithm = algorithm_name(task.algorithm);
    rep.diagnostic = Diagnostic::kBadInput;
    rep.detail = std::string(algorithm_name(task.algorithm)) +
                 " does not support the " + substrate_name(s) +
                 " substrate (no field sqrt)";
    return rep;
  }
  if (task.algorithm == Algorithm::kGqr) {
    switch (s) {
      case Substrate::kDouble:
        return run_gqr_backend<long double>(task, limits, fault, ckpt);
      case Substrate::kSoftFloat53:
        return run_gqr_backend<numeric::Float53>(task, limits, fault, ckpt);
      case Substrate::kRational:
        break;  // rejected above
    }
  }
  switch (s) {
    case Substrate::kDouble:
      return run_field_backend<double>(task, limits, fault, ckpt);
    case Substrate::kSoftFloat53:
      return run_field_backend<numeric::Float53>(task, limits, fault, ckpt);
    case Substrate::kRational:
      return run_field_backend<numeric::Rational>(task, limits, fault, ckpt);
  }
  RunReport rep;
  rep.algorithm = algorithm_name(task.algorithm);
  rep.diagnostic = Diagnostic::kInternalError;
  rep.detail = "unknown substrate";
  return rep;
}

}  // namespace pfact::robustness
