#pragma once
// Versioned, CRC32-protected checkpoints of mid-factorization state.
//
// The ROADMAP's heavy-traffic north star needs long factorizations to
// survive preemption: a run killed at step s must be resumable from its
// last saved state and still decode to exactly the boolean an
// uninterrupted run would have produced. That equivalence only holds if
// the snapshot is *bit-exact* in the run's own field — so every scalar is
// serialized losslessly (double/SoftFloat via their bit patterns, long
// double via sign/exponent/significand, Rational via exact decimal
// strings), never through a lossy decimal round-trip.
//
// Blob layout (all integers little-endian):
//
//   magic   u32   "PFCK" (0x4B434650)
//   version u32   kCheckpointVersion
//   length  u64   payload byte count
//   crc     u32   CRC32 (poly 0xEDB88320) of the payload bytes
//   payload ...   FactorCheckpoint fields (see encode_checkpoint)
//
// A torn write (truncated blob), a bit flip anywhere (header or payload),
// or a version skew is always *rejected* with a specific CheckpointStatus
// — a checkpoint that does not verify is never resumed. Detection of torn
// blobs is exercised by FaultClass::kTornWrite in the fault injector.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "factor/pivot_trace.h"
#include "matrix/matrix.h"
#include "matrix/sparse.h"
#include "matrix/storage.h"
#include "numeric/field.h"
#include "numeric/rational.h"
#include "numeric/softfloat.h"
#include "obs/counters.h"
#include "parallel/annotations.h"

namespace pfact::robustness {

// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `len` bytes.
std::uint32_t crc32(const void* data, std::size_t len);

inline constexpr std::uint32_t kCheckpointMagic = 0x4B434650;  // "PFCK"
// v2: sparse storage checkpoints (sparse-* field tags; CSR entry section).
inline constexpr std::uint32_t kCheckpointVersion = 2;
inline constexpr std::size_t kCheckpointHeaderBytes = 4 + 4 + 8 + 4;

enum class CheckpointStatus {
  kOk,
  kTruncated,    // blob shorter than header + declared payload length
  kBadMagic,     // not a checkpoint at all
  kBadVersion,   // produced by an incompatible format revision
  kCrcMismatch,  // payload bytes do not hash to the stored CRC
  kMalformed,    // CRC passed but the payload does not parse, or the
                 // field/algorithm/shape does not match the resuming task
};

inline const char* checkpoint_status_name(CheckpointStatus s) {
  switch (s) {
    case CheckpointStatus::kOk: return "ok";
    case CheckpointStatus::kTruncated: return "truncated";
    case CheckpointStatus::kBadMagic: return "bad-magic";
    case CheckpointStatus::kBadVersion: return "bad-version";
    case CheckpointStatus::kCrcMismatch: return "crc-mismatch";
    case CheckpointStatus::kMalformed: return "malformed";
  }
  return "?";
}

namespace detail {

class ByteWriter {
 public:
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
    buf_.append(b, 4);
  }
  void put_u64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
    buf_.append(b, 8);
  }
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_bytes(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  // Overwrites bytes previously written at `pos` (little-endian), for
  // headers whose length/CRC are only known once the payload is complete.
  void patch_u32(std::size_t pos, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_[pos + i] = static_cast<char>(v >> (8 * i));
  }
  void patch_u64(std::size_t pos, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_[pos + i] = static_cast<char>(v >> (8 * i));
  }
  void put_string(std::string_view s) {
    put_u64(s.size());
    buf_.append(s.data(), s.size());
  }
  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == data_.size(); }

  std::uint8_t get_u8() {
    if (pos_ + 1 > data_.size()) return fail<std::uint8_t>();
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t get_u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{get_u8()} << (8 * i);
    return v;
  }
  std::uint64_t get_u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{get_u8()} << (8 * i);
    return v;
  }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  bool get_bytes(void* dst, std::size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      fail<std::uint8_t>();
      return false;
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::string get_string() {
    std::uint64_t n = get_u64();
    if (!ok_ || pos_ + n > data_.size()) return fail<std::string>();
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

 private:
  template <class T>
  T fail() {
    ok_ = false;
    pos_ = data_.size();
    return T{};
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace detail

// Stable tag naming the scalar field a checkpoint was taken in; resume
// refuses a blob whose tag differs from the resuming instantiation.
template <class T>
const char* field_tag() = delete;
template <>
inline const char* field_tag<double>() { return "double"; }
template <>
inline const char* field_tag<long double>() { return "long-double"; }
template <>
inline const char* field_tag<numeric::Rational>() { return "rational"; }
template <>
inline const char* field_tag<numeric::Float53>() { return "softfloat53"; }
template <>
inline const char* field_tag<numeric::Float24>() { return "softfloat24"; }

// Tag for the sparse-CSR serialization of the same scalar field. Every
// sparse tag is its dense field's tag with the "sparse-" prefix — pfact_lint
// PL011 enforces both that naming law and the sweep below, and the tags are
// part of the schema ratchet (tools/pfact_lint_manifest.txt) like the dense
// ones. A sparse blob never decodes into a dense resume (or vice versa):
// the tag mismatch is kMalformed, same as a scalar-field mismatch.
template <class T>
const char* sparse_field_tag() = delete;
template <>
inline const char* sparse_field_tag<double>() { return "sparse-double"; }
template <>
inline const char* sparse_field_tag<long double>() {
  return "sparse-long-double";
}
template <>
inline const char* sparse_field_tag<numeric::Rational>() {
  return "sparse-rational";
}
template <>
inline const char* sparse_field_tag<numeric::Float53>() {
  return "sparse-softfloat53";
}
template <>
inline const char* sparse_field_tag<numeric::Float24>() {
  return "sparse-softfloat24";
}

// Every sparse_field_tag specialization, for sweep-style codec tests (the
// corruption matrix runs over each) — PL011 fails the build when a
// specialization is missing from this list.
inline std::vector<const char*> all_sparse_field_tags() {
  return {sparse_field_tag<double>(), sparse_field_tag<long double>(),
          sparse_field_tag<numeric::Rational>(),
          sparse_field_tag<numeric::Float53>(),
          sparse_field_tag<numeric::Float24>()};
}

namespace detail {

// Lossless scalar serialization per field. Encodings are chosen so that
// decode(encode(x)) == x bit-for-bit in the field's own equality.
template <class T>
struct ScalarCodec;

template <>
struct ScalarCodec<double> {
  static void encode(ByteWriter& w, const double& v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    w.put_u64(bits);
  }
  static void decode(ByteReader& r, double& v) {
    std::uint64_t bits = r.get_u64();
    std::memcpy(&v, &bits, sizeof(v));
  }
};

// long double: sign / binary exponent / top-64-bit significand, which is
// exact for both x87 80-bit (64-bit significand) and platforms where long
// double is IEEE double. Avoids memcpy of x87 padding bytes, whose
// indeterminate content would make blobs non-reproducible.
template <>
struct ScalarCodec<long double> {
  static void encode(ByteWriter& w, const long double& v) {
    std::uint8_t neg = v < 0.0L ? 1 : 0;
    int exp = 0;
    long double m = std::frexp(v < 0.0L ? -v : v, &exp);  // m in [0.5, 1)
    auto mant = static_cast<std::uint64_t>(std::ldexp(m, 64));
    w.put_u8(neg);
    w.put_i32(exp);
    w.put_u64(mant);
  }
  static void decode(ByteReader& r, long double& v) {
    std::uint8_t neg = r.get_u8();
    std::int32_t exp = r.get_i32();
    std::uint64_t mant = r.get_u64();
    v = std::ldexp(static_cast<long double>(mant), exp - 64);
    if (neg != 0) v = -v;
  }
};

template <int P, int Emin, int Emax>
struct ScalarCodec<numeric::SoftFloat<P, Emin, Emax>> {
  // to_double/from_double round-trip exactly for P <= 53 (every P-bit
  // value in range is a representable double).
  static_assert(P <= 53, "SoftFloat checkpoint codec requires P <= 53");
  static void encode(ByteWriter& w, const numeric::SoftFloat<P, Emin, Emax>& v) {
    ScalarCodec<double>::encode(w, v.to_double());
  }
  static void decode(ByteReader& r, numeric::SoftFloat<P, Emin, Emax>& v) {
    double d = 0.0;
    ScalarCodec<double>::decode(r, d);
    v = numeric::SoftFloat<P, Emin, Emax>::from_double(d);
  }
};

template <>
struct ScalarCodec<numeric::Rational> {
  static void encode(ByteWriter& w, const numeric::Rational& v) {
    w.put_string(v.num().to_string());
    w.put_string(v.den().to_string());
  }
  static void decode(ByteReader& r, numeric::Rational& v) {
    std::string num = r.get_string();
    std::string den = r.get_string();
    if (!r.ok()) return;
    v = numeric::Rational(numeric::BigInt::from_string(num),
                          numeric::BigInt::from_string(den));
  }
};

// Per-storage-backend serialization of the matrix entry section (and the
// tag naming the backend+field pair). The dense codec's byte stream is the
// historical v1 layout verbatim; the sparse codec serializes the CSR form
// (nnz, row pointers, then column/value pairs) and re-validates every CSR
// invariant on decode, so a blob that parses is canonical by construction.
template <class Storage>
struct StorageCodec;

template <class T>
struct StorageCodec<Matrix<T>> {
  static const char* tag() { return field_tag<T>(); }

  static std::size_t entry_size_hint(const Matrix<T>& m) {
    return m.rows() * m.cols() * (sizeof(T) + 2);
  }

  static void encode_entries(ByteWriter& w, const Matrix<T>& m) {
    const std::size_t entries = m.rows() * m.cols();
    if constexpr (std::is_same_v<T, double> &&
                  std::endian::native == std::endian::little) {
      // Raw little-endian doubles are byte-identical to the per-entry
      // u64-bit-pattern encoding; one append instead of n^2 codec calls
      // keeps snapshot cost from dominating the factorization loop.
      if (entries != 0) w.put_bytes(&m(0, 0), entries * sizeof(double));
    } else {
      for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
          ScalarCodec<T>::encode(w, m(i, j));
    }
  }

  static bool decode_entries(ByteReader& r, std::uint64_t rows,
                             std::uint64_t cols, std::size_t body_size,
                             Matrix<T>& m) {
    if (rows * cols > body_size) return false;  // cheap bound: >=1 byte/entry
    m = Matrix<T>(rows, cols);
    if constexpr (std::is_same_v<T, double> &&
                  std::endian::native == std::endian::little) {
      if (rows != 0 && cols != 0 &&
          !r.get_bytes(&m(0, 0), rows * cols * sizeof(double)))
        return false;
    } else {
      for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
          ScalarCodec<T>::decode(r, m(i, j));
    }
    return r.ok();
  }
};

template <class T>
struct StorageCodec<sparse::SparseMatrix<T>> {
  static const char* tag() { return sparse_field_tag<T>(); }

  static std::size_t entry_size_hint(const sparse::SparseMatrix<T>& m) {
    return (m.rows() + 1) * 8 + m.nnz() * (sizeof(T) + 10);
  }

  // Entry section: nnz u64, row_ptr (rows+1 u64), then nnz (col u64,
  // scalar) pairs in row-major order — the CSR arrays verbatim.
  static void encode_entries(ByteWriter& w,
                             const sparse::SparseMatrix<T>& m) {
    w.put_u64(m.nnz());
    std::uint64_t off = 0;
    w.put_u64(off);
    for (std::size_t i = 0; i < m.rows(); ++i) {
      off += m.row_nnz(i);
      w.put_u64(off);
    }
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (const auto& e : m.row(i)) {
        w.put_u64(e.col);
        ScalarCodec<T>::encode(w, e.value);
      }
    }
  }

  static bool decode_entries(ByteReader& r, std::uint64_t rows,
                             std::uint64_t cols, std::size_t body_size,
                             sparse::SparseMatrix<T>& m) {
    const std::uint64_t nnz = r.get_u64();
    // Bounds before any allocation: row_ptr needs 8(rows+1) bytes and each
    // entry at least 9 (col u64 + >=1 value byte).
    if (!r.ok() || nnz > body_size / 9 || rows > body_size / 8)
      return false;
    std::vector<std::size_t> row_ptr(rows + 1);
    for (std::uint64_t i = 0; i <= rows; ++i) row_ptr[i] = r.get_u64();
    if (!r.ok() || row_ptr.back() != nnz) return false;
    std::vector<std::size_t> col_idx(nnz);
    std::vector<T> values(nnz);
    for (std::uint64_t p = 0; p < nnz; ++p) {
      col_idx[p] = r.get_u64();
      ScalarCodec<T>::decode(r, values[p]);
    }
    if (!r.ok()) return false;
    // Full CSR invariant re-validation: monotone row pointers, per-row
    // strictly increasing in-range columns, no stored exact zeros. A
    // CRC-valid blob that violates any of these is malformed, not resumed.
    if (!sparse::csr_invariant_violation(rows, cols, row_ptr, col_idx)
             .empty())
      return false;
    for (const T& v : values)
      if (is_zero(v)) return false;
    m = sparse::SparseMatrix<T>(sparse::CsrMatrix<T>::from_parts(
        rows, cols, std::move(row_ptr), std::move(col_idx),
        std::move(values)));
    return true;
  }
};

}  // namespace detail

// A resumable snapshot: "steps [0, next_step) of `algorithm` have been
// executed on this matrix". The pivot trace is the FULL trace of those
// completed steps (for a resumed run, the saved prefix concatenated with
// the events since), so a checkpoint is self-contained: resuming from it
// reproduces both the decode and the complete trace of an uninterrupted
// run. Generic over the storage backend; FactorCheckpoint<T> is the dense
// spelling every pre-sparse call site uses.
template <class Storage>
struct StorageCheckpoint {
  std::string algorithm;       // "GEM" / "GEMS" / "GEM/nonsingular" / ...
  std::uint32_t strategy = 0;  // PivotStrategy ordinal (0 for GQR)
  std::uint64_t next_step = 0; // first guard step NOT yet executed
  Storage matrix;
  bool has_perm = false;
  Permutation perm;
  factor::PivotTrace trace;
};

template <class T>
using FactorCheckpoint = StorageCheckpoint<Matrix<T>>;

// Serializes a snapshot directly from the caller's live state — no copy of
// the matrix into a FactorCheckpoint first, and header + payload share one
// buffer (the length/CRC fields are patched in afterwards). This is the
// save-every-k hot path; encode_checkpoint(c) below is the convenience
// wrapper over an already-materialized struct.
template <class Storage>
std::string encode_checkpoint_parts(std::string_view algorithm,
                                    std::uint32_t strategy,
                                    std::uint64_t next_step,
                                    const Storage& matrix,
                                    const Permutation* perm,
                                    const factor::PivotTrace& trace) {
  using Codec = detail::StorageCodec<Storage>;
  detail::ByteWriter w;
  // Capacity hint only (Rational entries are variable-width): sized for the
  // fixed-width fields so snapshotting inside a factorization loop does not
  // reallocate per entry.
  w.reserve(kCheckpointHeaderBytes + 128 + algorithm.size() +
            Codec::entry_size_hint(matrix) +
            (perm != nullptr ? perm->size() * 8 : 0) + trace.size() * 28);
  w.put_u32(kCheckpointMagic);
  w.put_u32(kCheckpointVersion);
  w.put_u64(0);  // payload length, patched below
  w.put_u32(0);  // payload CRC, patched below
  w.put_string(algorithm);
  w.put_string(Codec::tag());
  w.put_u32(strategy);
  w.put_u64(next_step);
  w.put_u64(matrix.rows());
  w.put_u64(matrix.cols());
  Codec::encode_entries(w, matrix);
  w.put_u8(perm != nullptr ? 1 : 0);
  if (perm != nullptr) {
    w.put_u64(perm->size());
    for (std::size_t i = 0; i < perm->size(); ++i) w.put_u64((*perm)[i]);
  }
  w.put_u64(trace.size());
  for (const factor::PivotEvent& e : trace.events()) {
    w.put_u64(e.column);
    w.put_u64(e.pivot_pos);
    w.put_u64(e.pivot_row);
    w.put_u32(static_cast<std::uint32_t>(e.action));
  }
  const std::size_t length = w.bytes().size() - kCheckpointHeaderBytes;
  w.patch_u64(8, length);
  w.patch_u32(16,
              crc32(w.bytes().data() + kCheckpointHeaderBytes, length));
  return w.take();
}

template <class Storage>
std::string encode_checkpoint(const StorageCheckpoint<Storage>& c) {
  return encode_checkpoint_parts(c.algorithm, c.strategy, c.next_step,
                                 c.matrix, c.has_perm ? &c.perm : nullptr,
                                 c.trace);
}

// Field-agnostic envelope check: magic, version, declared length, and
// payload CRC — everything that can be verified without knowing the scalar
// field T. The process-isolation supervisor uses this to vet checkpoint
// frames arriving over a worker pipe before filing them for resume (full
// payload validation happens in decode_checkpoint<T> on the resuming side).
CheckpointStatus validate_checkpoint_envelope(std::string_view blob);

// Validates and parses `blob` into `out`. Any failure leaves `out`
// unspecified and names the rejection reason; kOk is returned only when
// the header verifies, the CRC matches, and the payload parses completely
// in the blob's storage backend and field.
template <class Storage>
CheckpointStatus decode_storage_checkpoint(std::string_view blob,
                                           StorageCheckpoint<Storage>& out) {
  if (blob.size() < kCheckpointHeaderBytes) return CheckpointStatus::kTruncated;
  detail::ByteReader header(blob.substr(0, kCheckpointHeaderBytes));
  const std::uint32_t magic = header.get_u32();
  const std::uint32_t version = header.get_u32();
  const std::uint64_t length = header.get_u64();
  const std::uint32_t crc = header.get_u32();
  if (magic != kCheckpointMagic) return CheckpointStatus::kBadMagic;
  if (version != kCheckpointVersion) return CheckpointStatus::kBadVersion;
  if (blob.size() < kCheckpointHeaderBytes + length)
    return CheckpointStatus::kTruncated;
  std::string_view body = blob.substr(kCheckpointHeaderBytes, length);
  if (crc32(body.data(), body.size()) != crc)
    return CheckpointStatus::kCrcMismatch;

  detail::ByteReader r(body);
  StorageCheckpoint<Storage> c;
  c.algorithm = r.get_string();
  const std::string tag = r.get_string();
  if (!r.ok() || tag != detail::StorageCodec<Storage>::tag())
    return CheckpointStatus::kMalformed;
  c.strategy = r.get_u32();
  c.next_step = r.get_u64();
  const std::uint64_t rows = r.get_u64();
  const std::uint64_t cols = r.get_u64();
  if (!r.ok()) return CheckpointStatus::kMalformed;
  try {
    if (!detail::StorageCodec<Storage>::decode_entries(r, rows, cols,
                                                       body.size(), c.matrix))
      return CheckpointStatus::kMalformed;
    c.has_perm = r.get_u8() != 0;
    if (c.has_perm) {
      const std::uint64_t n = r.get_u64();
      if (!r.ok() || n > body.size()) return CheckpointStatus::kMalformed;
      std::vector<std::size_t> map(n);
      for (std::uint64_t i = 0; i < n; ++i) map[i] = r.get_u64();
      c.perm = Permutation(std::move(map));
    }
    const std::uint64_t events = r.get_u64();
    if (!r.ok() || events > body.size()) return CheckpointStatus::kMalformed;
    for (std::uint64_t i = 0; i < events; ++i) {
      factor::PivotEvent e;
      e.column = r.get_u64();
      e.pivot_pos = r.get_u64();
      e.pivot_row = r.get_u64();
      const std::uint32_t action = r.get_u32();
      if (action > static_cast<std::uint32_t>(factor::PivotAction::kFail))
        return CheckpointStatus::kMalformed;
      e.action = static_cast<factor::PivotAction>(action);
      c.trace.record(e);
    }
  } catch (const std::exception&) {
    // Scalar decode may throw on garbage that slipped past the bounds
    // checks (e.g. a non-numeric Rational string) — same verdict.
    return CheckpointStatus::kMalformed;
  }
  if (!r.ok() || !r.exhausted()) return CheckpointStatus::kMalformed;
  out = std::move(c);
  return CheckpointStatus::kOk;
}

// Dense spelling (the historical API): decode into a FactorCheckpoint<T>.
template <class T>
CheckpointStatus decode_checkpoint(std::string_view blob,
                                   FactorCheckpoint<T>& out) {
  return decode_storage_checkpoint<Matrix<T>>(blob, out);
}

// In-memory checkpoint sequence of one run attempt, keyed by next_step.
// Resume uses latest(); a blob that fails validation is dropped with
// drop_latest() so the next retry falls back to the previous snapshot (or
// a from-scratch start).
//
// Internally synchronized: a store outlives individual attempts (the
// crash/resume harness hands one across engine calls, and a supervisor may
// observe progress while a factorization thread is saving), so every method
// takes the store's own mutex and nothing hands out references into the
// guarded map — latest() copies the blob out and blobs() snapshots the
// whole sequence. Blobs are small relative to the factorizations that
// produce them, and resume/dump are cold paths.
class CheckpointStore {
 public:
  void put(std::uint64_t step, std::string blob) {
    par::MutexLock lock(mu_);
    blobs_[step] = std::move(blob);
  }
  bool empty() const {
    par::MutexLock lock(mu_);
    return blobs_.empty();
  }
  std::size_t size() const {
    par::MutexLock lock(mu_);
    return blobs_.size();
  }
  void clear() {
    par::MutexLock lock(mu_);
    blobs_.clear();
  }

  // The newest blob, copied out (std::nullopt when the store is empty).
  std::optional<std::string> latest() const {
    par::MutexLock lock(mu_);
    if (blobs_.empty()) return std::nullopt;
    return blobs_.rbegin()->second;
  }
  std::uint64_t latest_step() const {
    par::MutexLock lock(mu_);
    return blobs_.empty() ? 0 : blobs_.rbegin()->first;
  }
  // Discards the newest blob. On an empty store this is a classified no-op:
  // it returns false and touches nothing (resilient retry loops call this
  // unconditionally after a kCheckpointCorrupt attempt, and the corrupt blob
  // may already have been dropped — or never stored at all).
  bool drop_latest() {
    par::MutexLock lock(mu_);
    if (blobs_.empty()) return false;
    blobs_.erase(std::prev(blobs_.end()));
    return true;
  }

  std::uint64_t total_bytes() const {
    par::MutexLock lock(mu_);
    std::uint64_t n = 0;
    for (const auto& [step, blob] : blobs_) n += blob.size();
    return n;
  }

  // A consistent copy of the whole sequence (artifact dumps, assertions).
  std::map<std::uint64_t, std::string> blobs() const {
    par::MutexLock lock(mu_);
    return blobs_;
  }

 private:
  mutable par::Mutex mu_;
  std::map<std::uint64_t, std::string> blobs_ PFACT_GUARDED_BY(mu_);
};

// File helpers for the soak harness / CI artifacts: a failing blob is
// dumped verbatim so the rejecting run can be replayed offline.
bool write_checkpoint_file(const std::string& path, std::string_view blob);
bool read_checkpoint_file(const std::string& path, std::string& blob);

}  // namespace pfact::robustness
