#pragma once
// Guarded execution of the paper's reduction runs.
//
// Each guarded_* driver wraps one end-to-end reduction (GEM/GEMS via
// core/simulator.h's construction, GEP and GQR via their gadget chains) in:
//
//   * input validation (arity, encoding domain, order cap) — kBadInput;
//   * an execution budget (factor::StepGuard: steps + wall-clock deadline);
//   * a substrate probe: the SoftFloat rounding mode is verified to be
//     round-to-nearest-even BEFORE any arithmetic is trusted (the same idea
//     as LAPACK's environment probes) — kRoundingAnomaly;
//   * engine invariants (exact +/-1 pivots in reduction mode, finite
//     multipliers, non-degenerate rotations) — kInvariantViolation /
//     kNumericNonFinite / kNumericOverflow;
//   * a strict decode (exact 0/1, unambiguous live row, tolerance band);
//   * a cross-check certificate: the decoded boolean is compared against
//     the direct circuit evaluation, which costs O(gates) — negligible next
//     to the O(n^3) factorization — and guarantees by construction that no
//     corrupted run can return a plausible-but-wrong value.
//
// Every failure is caught, classified, and returned as a RunReport; guarded
// drivers do not throw.

#include <chrono>
#include <cmath>
#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

#include "circuit/circuit.h"
#include "core/assembler.h"
#include "core/bordering.h"
#include "core/gep_gadgets.h"
#include "core/gqr_gadgets.h"
#include "factor/gaussian.h"
#include "factor/givens.h"
#include "factor/guard.h"
#include "factor/pivot_trace.h"
#include "matrix/matrix.h"
#include "matrix/sparse.h"
#include "matrix/storage.h"
#include "numeric/field.h"
#include "numeric/rational.h"
#include "numeric/softfloat.h"
#include "obs/counters.h"
#include "robustness/checkpoint.h"
#include "robustness/diagnostics.h"
#include "robustness/fault_injector.h"

namespace pfact::robustness {

struct GuardLimits {
  // Maximum guard ticks (elimination steps / rotation positions); 0 means
  // "no explicit budget" — the engines are bounded by the matrix order.
  std::size_t max_steps = 0;
  // Wall-clock deadline for the factorization; zero disables it.
  std::chrono::milliseconds timeout{0};
  // Instances whose reduction matrix exceeds this order are refused
  // (kBadInput) instead of launching an unbounded amount of work.
  std::size_t max_order = std::size_t{1} << 16;
  // Accepted decode band around the encoded values for the float chains
  // (GEP: {1,2}, GQR: {-1,+1}).
  double decode_tolerance = 1e-6;
  // Injectable time source for the deadline (nullptr = steady_clock), so
  // deadline-path tests are deterministic without wall-clock sleeps.
  factor::StepGuard::ClockFn clock = nullptr;
};

// Checkpoint/resume wiring for one guarded attempt. With `every` > 0 and a
// store, the driver serializes its factorization state every `every` guard
// steps into the store (FaultClass::kTornWrite corrupts these blobs at
// save time). With `resume` set, the driver validates store->latest() and
// continues from it — a blob that fails CRC/version/shape validation makes
// the attempt return kCheckpointCorrupt; it is never silently resumed.
struct CheckpointConfig {
  std::size_t every = 0;
  CheckpointStore* store = nullptr;
  bool resume = false;
  // Observer invoked with every saved (step, blob) pair AFTER fault
  // injection but BEFORE the store->put, i.e. it sees exactly the bytes the
  // store files. The serve/ worker uses it to stream checkpoint frames over
  // its pipe so a hard kill still leaves the supervisor a resume point.
  std::function<void(std::uint64_t, std::string_view)> on_save;

  bool saving() const { return every != 0 && store != nullptr; }
};

namespace detail {

template <class T>
struct is_softfloat : std::false_type {};
template <int P, int Emin, int Emax>
struct is_softfloat<numeric::SoftFloat<P, Emin, Emax>> : std::true_type {};

// Classifies the in-flight exception into `rep` (diagnostic + detail +
// offending position). Defined in guarded_run.cpp.
void apply_exception(RunReport& rep, std::exception_ptr ep);

// Formats the last few pivot events. Defined in guarded_run.cpp.
std::string trace_excerpt(const factor::PivotTrace& trace,
                          std::size_t max_events = 6);

// Fills rep.metrics with the op-counter delta of the whole guarded run,
// whichever exit path the driver takes. Declared FIRST in each driver so its
// destructor runs last and sees the final diagnostic/injection state; a
// detected injected fault (non-kOk verdict with a non-empty injection log)
// bumps kFaultsDetected before the delta is taken, so the detection marker
// itself is part of the run's metrics.
class ReportMetrics {
 public:
  explicit ReportMetrics(RunReport& rep) : rep_(rep) {}
  ReportMetrics(const ReportMetrics&) = delete;
  ReportMetrics& operator=(const ReportMetrics&) = delete;
  ~ReportMetrics() {
    if (rep_.diagnostic != Diagnostic::kOk && !rep_.injection.empty()) {
      PFACT_COUNT(kFaultsDetected);
    }
    rep_.metrics = counters_.delta();
  }

 private:
  RunReport& rep_;
  obs::ScopedCounters counters_;
};

// Builds a StepGuard from the limits. A negative timeout installs an
// already-expired deadline (useful for deterministic deadline tests).
inline factor::StepGuard make_guard(const GuardLimits& limits) {
  factor::StepGuard g;
  g.max_steps = limits.max_steps;
  g.clock = limits.clock;
  if (limits.timeout.count() != 0) g.set_timeout(limits.timeout);
  return g;
}

// Appends b's events after a's — the full trace of a resumed run is the
// checkpoint's stored prefix plus the freshly executed suffix.
inline factor::PivotTrace concat_traces(const factor::PivotTrace& a,
                                        const factor::PivotTrace& b) {
  factor::PivotTrace out = a;
  for (const factor::PivotEvent& e : b.events()) out.record(e);
  return out;
}

// Validates store->latest() against the resuming task and applies it.
// Returns false (with rep set to kCheckpointCorrupt) when a blob exists
// but does not verify; an absent blob is not an error — the run simply
// starts from scratch.
template <class Storage>
bool restore_checkpoint(const CheckpointConfig& ckpt,
                        const std::string& algorithm, bool expect_perm,
                        RunReport& rep, Storage& a, Permutation* perm,
                        factor::PivotTrace& base_trace,
                        std::size_t& start_step) {
  start_step = 0;
  if (!ckpt.resume || ckpt.store == nullptr) return true;
  const std::optional<std::string> blob = ckpt.store->latest();
  if (!blob.has_value()) return true;
  StorageCheckpoint<Storage> c;
  const CheckpointStatus status = decode_storage_checkpoint<Storage>(*blob, c);
  if (status != CheckpointStatus::kOk) {
    PFACT_COUNT(kCheckpointRejects);
    rep.diagnostic = Diagnostic::kCheckpointCorrupt;
    rep.detail = std::string("checkpoint rejected: ") +
                 checkpoint_status_name(status) + " (" +
                 std::to_string(blob->size()) + " bytes)";
    return false;
  }
  if (c.algorithm != algorithm || c.matrix.rows() != a.rows() ||
      c.matrix.cols() != a.cols() || c.has_perm != expect_perm ||
      (expect_perm && c.perm.size() != a.rows())) {
    PFACT_COUNT(kCheckpointRejects);
    rep.diagnostic = Diagnostic::kCheckpointCorrupt;
    rep.detail = "checkpoint rejected: snapshot of '" + c.algorithm +
                 "' order " + std::to_string(c.matrix.rows()) +
                 " does not match this task";
    return false;
  }
  a = std::move(c.matrix);
  if (expect_perm && perm != nullptr) *perm = c.perm;
  base_trace = std::move(c.trace);
  start_step = static_cast<std::size_t>(c.next_step);
  PFACT_COUNT(kCheckpointResumes);
  rep.detail = "resumed from checkpoint at step " +
               std::to_string(start_step);
  return true;
}

// Builds the engine-side save hook: serializes {matrix, perm, prefix+local
// trace}, lets the injector tear the blob (kTornWrite), and files it in
// the store.
template <class Storage>
factor::CheckpointHook<Storage> make_elimination_hook(
    const CheckpointConfig& ckpt, FaultInjector& inj, RunReport& rep,
    const std::string& algorithm, factor::PivotStrategy strategy,
    const factor::PivotTrace* base_trace) {
  factor::CheckpointHook<Storage> hook;
  if (!ckpt.saving()) return hook;
  hook.every = ckpt.every;
  hook.save = [&ckpt, &inj, &rep, algorithm, strategy, base_trace](
                  std::size_t next_step, const Storage& a,
                  const Permutation* perm, const factor::PivotTrace& local) {
    std::string blob = encode_checkpoint_parts(
        algorithm, static_cast<std::uint32_t>(strategy), next_step, a, perm,
        concat_traces(*base_trace, local));
    if (inj.corrupt_blob(blob)) rep.injection = inj.injection_log();
    PFACT_COUNT(kCheckpointSaves);
    PFACT_COUNT_N(kCheckpointBytes, blob.size());
    if (ckpt.on_save) ckpt.on_save(next_step, blob);
    ckpt.store->put(next_step, std::move(blob));
  };
  return hook;
}

// Builds the (optionally bordered) GEM reduction in the requested storage
// backend, refusing instances over the order cap (kBadInput) before the
// scalar cast. The sparse path plants straight into CSR and never
// materializes a dense matrix — that is what lets circuits 10-100x beyond
// the dense gate-count ceiling run at equal memory.
template <class T, class Storage>
bool build_reduction(const circuit::CvpInstance& run, bool bordered,
                     const GuardLimits& limits, RunReport& rep, Storage& a,
                     std::size_t& output_pos, std::size_t& nu) {
  const auto refuse = [&](std::size_t order) {
    if (order <= limits.max_order) return false;
    rep.diagnostic = Diagnostic::kBadInput;
    rep.detail = bordered ? "bordered order exceeds the cap"
                          : "reduction order " + std::to_string(order) +
                                " exceeds the cap " +
                                std::to_string(limits.max_order);
    return true;
  };
  if constexpr (is_sparse_storage_v<Storage>) {
    core::SparseGemReduction red = core::build_gem_reduction_sparse(run);
    if (refuse(bordered ? 2 * red.matrix.rows() : red.matrix.rows()))
      return false;
    output_pos = red.output_pos;
    nu = red.matrix.rows();
    const sparse::CsrMatrix<T> cast = red.matrix.template cast<T>();
    a = bordered ? Storage(core::border_nonsingular(cast)) : Storage(cast);
  } else {
    core::GemReduction red = core::build_gem_reduction(run);
    if (refuse(bordered ? 2 * red.matrix.rows() : red.matrix.rows()))
      return false;
    output_pos = red.output_pos;
    nu = red.matrix.rows();
    a = bordered ? core::border_nonsingular(red.matrix.template cast<T>())
                 : red.matrix.template cast<T>();
  }
  return true;
}

// Probes that the arithmetic substrate rounds to nearest-even — for
// SoftFloat fields this detects an injected (or real) rounding-mode flip
// deterministically, before any result is trusted. Native IEEE fields are
// taken at their word: the process never touches the FPU control word.
template <class T>
bool rounding_environment_ok() {
  if constexpr (is_softfloat<T>::value) {
    const int p = T::precision();
    const T one(1.0);
    // 1 + 0.5 ulp: a tie — nearest-even keeps 1 (even significand);
    // away-from-zero rounds up.
    const T tie = one + T(std::ldexp(1.0, -p));
    // 1 + 0.75 ulp: nearest-even rounds up; toward-zero truncates to 1.
    const T above = one + T(std::ldexp(3.0, -(p + 1)));
    return tie == one && !(above == one);
  } else {
    return true;
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Theorem 3.1 (GEM / GEMS): guarded form of core::simulate_gem.
// ---------------------------------------------------------------------------
template <class T, class Storage = Matrix<T>>
RunReport guarded_simulate_gem(const circuit::CvpInstance& inst,
                               factor::PivotStrategy strategy,
                               const GuardLimits& limits = {},
                               const FaultPlan& fault = {},
                               const CheckpointConfig& ckpt = {}) {
  RunReport rep;
  rep.algorithm = factor::pivot_strategy_name(strategy);
  detail::ReportMetrics metrics_guard(rep);
  FaultInjector inj(fault);
  std::optional<numeric::ScopedSoftFloatRounding> flipped;
  if (fault.fault == FaultClass::kRoundingFlip) flipped.emplace(fault.rounding);

  circuit::CvpInstance run = inj.corrupt_instance(inst);
  rep.injection = inj.injection_log();
  if (run.inputs.size() != run.circuit.num_inputs()) {
    rep.diagnostic = Diagnostic::kBadInput;
    rep.detail = "input arity " + std::to_string(run.inputs.size()) +
                 " does not match circuit arity " +
                 std::to_string(run.circuit.num_inputs());
    return rep;
  }
  if (!detail::rounding_environment_ok<T>()) {
    rep.diagnostic = Diagnostic::kRoundingAnomaly;
    rep.detail = "substrate probe: rounding is not round-to-nearest-even";
    return rep;
  }
  factor::StepGuard guard = detail::make_guard(limits);
  try {
    Storage a;
    std::size_t output_pos = 0;
    std::size_t nu = 0;
    if (!detail::build_reduction<T>(run, /*bordered=*/false, limits, rep, a,
                                    output_pos, nu)) {
      return rep;
    }
    if (inj.corrupt_matrix(a)) rep.injection = inj.injection_log();
    rep.order = a.rows();
    factor::PivotTrace base_trace;
    factor::EliminationChecks checks;
    checks.guard = &guard;
    checks.reduction_mode = true;
    if (!detail::restore_checkpoint(ckpt, rep.algorithm, false, rep, a,
                                    nullptr, base_trace, checks.start_step)) {
      return rep;
    }
    factor::CheckpointHook<Storage> hook = detail::make_elimination_hook<Storage>(
        ckpt, inj, rep, rep.algorithm, strategy, &base_trace);
    factor::PivotTrace trace = factor::eliminate_steps(
        a, strategy, a.rows(), nullptr, checks, hook.every ? &hook : nullptr);
    trace = detail::concat_traces(base_trace, trace);
    rep.trace = trace;
    rep.steps_used = guard.ticks_used();
    rep.pivot_excerpt = detail::trace_excerpt(trace);
    const T& out = a.get(output_pos, output_pos);
    rep.decoded_entry = to_double(out);
    bool decoded;
    if (out == T(1)) {
      decoded = true;
    } else if (is_zero(out)) {
      decoded = false;
    } else {
      rep.diagnostic = Diagnostic::kDecodeNotBoolean;
      rep.offending_row = rep.offending_col = output_pos;
      rep.detail = "output entry decodes to " + scalar_to_string(out) +
                   ", not an exact encoded boolean";
      return rep;
    }
    const bool reference = run.expected();  // O(gates) certificate
    if (decoded != reference) {
      rep.diagnostic = Diagnostic::kCrossCheckMismatch;
      rep.offending_row = rep.offending_col = output_pos;
      rep.detail = std::string("decode says ") +
                   (decoded ? "true" : "false") +
                   " but direct evaluation says " +
                   (reference ? "true" : "false");
      return rep;
    }
    rep.value = decoded;
    rep.diagnostic = Diagnostic::kOk;
  } catch (...) {
    detail::apply_exception(rep, std::current_exception());
    rep.steps_used = guard.ticks_used();
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Corollary 3.2 (GEM on nonsingular inputs): guarded form of
// core::simulate_gem_nonsingular.
// ---------------------------------------------------------------------------
template <class T, class Storage = Matrix<T>>
RunReport guarded_simulate_gem_nonsingular(const circuit::CvpInstance& inst,
                                           const GuardLimits& limits = {},
                                           const FaultPlan& fault = {},
                                           const CheckpointConfig& ckpt = {}) {
  RunReport rep;
  rep.algorithm = "GEM/nonsingular";
  detail::ReportMetrics metrics_guard(rep);
  FaultInjector inj(fault);
  std::optional<numeric::ScopedSoftFloatRounding> flipped;
  if (fault.fault == FaultClass::kRoundingFlip) flipped.emplace(fault.rounding);

  circuit::CvpInstance run = inj.corrupt_instance(inst);
  rep.injection = inj.injection_log();
  if (run.inputs.size() != run.circuit.num_inputs()) {
    rep.diagnostic = Diagnostic::kBadInput;
    rep.detail = "input arity mismatch";
    return rep;
  }
  if (!detail::rounding_environment_ok<T>()) {
    rep.diagnostic = Diagnostic::kRoundingAnomaly;
    rep.detail = "substrate probe: rounding is not round-to-nearest-even";
    return rep;
  }
  factor::StepGuard guard = detail::make_guard(limits);
  try {
    Storage a;
    std::size_t output_pos = 0;
    std::size_t nu = 0;
    if (!detail::build_reduction<T>(run, /*bordered=*/true, limits, rep, a,
                                    output_pos, nu)) {
      return rep;
    }
    if (inj.corrupt_matrix(a)) rep.injection = inj.injection_log();
    rep.order = a.rows();
    Permutation perm(a.rows());
    factor::PivotTrace base_trace;
    factor::EliminationChecks checks;
    checks.guard = &guard;
    checks.reduction_mode = true;
    if (!detail::restore_checkpoint(ckpt, rep.algorithm, true, rep, a, &perm,
                                    base_trace, checks.start_step)) {
      return rep;
    }
    factor::CheckpointHook<Storage> hook = detail::make_elimination_hook<Storage>(
        ckpt, inj, rep, rep.algorithm, factor::PivotStrategy::kMinimalSwap,
        &base_trace);
    factor::PivotTrace trace = factor::eliminate_steps(
        a, factor::PivotStrategy::kMinimalSwap, a.rows(), &perm, checks,
        hook.every ? &hook : nullptr);
    trace = detail::concat_traces(base_trace, trace);
    rep.trace = trace;
    rep.steps_used = guard.ticks_used();
    rep.pivot_excerpt = detail::trace_excerpt(trace);
    const T& out = a.get(output_pos, output_pos);
    rep.decoded_entry = to_double(out);
    // A nonsingular run must pivot every column: any skip is an anomaly.
    const factor::PivotEvent* output_event = nullptr;
    for (const auto& e : trace.events()) {
      if (e.action == factor::PivotAction::kSkip ||
          e.action == factor::PivotAction::kFail) {
        rep.diagnostic = Diagnostic::kPivotAnomaly;
        rep.offending_col = e.column;
        rep.detail = "column " + std::to_string(e.column) +
                     " had no pivot in a nonsingular run";
        return rep;
      }
      if (e.column == output_pos) output_event = &e;
    }
    if (output_event == nullptr) {
      rep.diagnostic = Diagnostic::kPivotAnomaly;
      rep.offending_col = output_pos;
      rep.detail = "no pivot event recorded for the output column";
      return rep;
    }
    bool decoded;
    if (output_event->pivot_row >= nu) {
      decoded = false;  // borrowed pivot <=> the A_C column was zero
    } else if (out == T(1)) {
      decoded = true;
    } else {
      rep.diagnostic = Diagnostic::kDecodeNotBoolean;
      rep.offending_row = rep.offending_col = output_pos;
      rep.detail = "own-side pivot but output entry decodes to " +
                   scalar_to_string(out) + ", not 1";
      return rep;
    }
    const bool reference = run.expected();
    if (decoded != reference) {
      rep.diagnostic = Diagnostic::kCrossCheckMismatch;
      rep.offending_row = rep.offending_col = output_pos;
      rep.detail = std::string("decode says ") +
                   (decoded ? "true" : "false") +
                   " but direct evaluation says " +
                   (reference ? "true" : "false");
      return rep;
    }
    rep.value = decoded;
    rep.diagnostic = Diagnostic::kOk;
  } catch (...) {
    detail::apply_exception(rep, std::current_exception());
    rep.steps_used = guard.ticks_used();
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Theorem 3.4 (GEP): guarded form of core::run_gep_chain — computes
// NAND(u, w) through `depth` PASS blocks; u, w are encoded in {1, 2}.
// Field-generic so the escalation ladder can re-run the same chain over
// SoftFloat or exact rationals: the gadget constants are lifted losslessly
// (dyadic doubles, Rational via from_double) exactly as run_gep_chain_t.
// ---------------------------------------------------------------------------
template <class T, class Storage = Matrix<T>>
RunReport guarded_run_gep_chain_t(int u, int w, std::size_t depth,
                                  const GuardLimits& limits = {},
                                  const FaultPlan& fault = {},
                                  const CheckpointConfig& ckpt = {}) {
  RunReport rep;
  rep.algorithm = "GEP";
  detail::ReportMetrics metrics_guard(rep);
  FaultInjector inj(fault);
  std::optional<numeric::ScopedSoftFloatRounding> flipped;
  if (fault.fault == FaultClass::kRoundingFlip) flipped.emplace(fault.rounding);

  u = inj.corrupt_encoded_input(u);
  rep.injection = inj.injection_log();
  if ((u != 1 && u != 2) || (w != 1 && w != 2)) {
    rep.diagnostic = Diagnostic::kBadInput;
    rep.detail = "GEP inputs must be encoded in {1,2}, got u=" +
                 std::to_string(u) + " w=" + std::to_string(w);
    return rep;
  }
  if (!detail::rounding_environment_ok<T>()) {
    rep.diagnostic = Diagnostic::kRoundingAnomaly;
    rep.detail = "substrate probe: rounding is not round-to-nearest-even";
    return rep;
  }
  factor::StepGuard guard = detail::make_guard(limits);
  try {
    core::GepChain chain = core::build_gep_nand_chain(u, w, depth);
    if (chain.matrix.rows() > limits.max_order) {
      rep.diagnostic = Diagnostic::kBadInput;
      rep.detail = "chain order exceeds the cap";
      return rep;
    }
    Storage m(chain.matrix.rows(), chain.matrix.cols());
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        if (is_zero(chain.matrix(i, j))) continue;  // both backends start
                                                    // all-zero
        if constexpr (std::is_same_v<T, numeric::Rational>) {
          m.set(i, j, numeric::Rational::from_double(chain.matrix(i, j)));
        } else {
          m.set(i, j, T(chain.matrix(i, j)));
        }
      }
    }
    if (inj.corrupt_matrix(m)) rep.injection = inj.injection_log();
    rep.order = m.rows();
    Permutation perm(m.rows());
    factor::PivotTrace base_trace;
    factor::EliminationChecks checks;
    checks.guard = &guard;  // GEP gadget pivots are not +/-1: no
                            // reduction_mode here — the trace checks below
                            // carry the structural invariant instead.
    if (!detail::restore_checkpoint(ckpt, rep.algorithm, true, rep, m, &perm,
                                    base_trace, checks.start_step)) {
      return rep;
    }
    factor::CheckpointHook<Storage> hook = detail::make_elimination_hook<Storage>(
        ckpt, inj, rep, rep.algorithm, factor::PivotStrategy::kPartial,
        &base_trace);
    factor::PivotTrace trace = factor::eliminate_steps(
        m, factor::PivotStrategy::kPartial, chain.value_col, &perm, checks,
        hook.every ? &hook : nullptr);
    trace = detail::concat_traces(base_trace, trace);
    rep.trace = trace;
    rep.steps_used = guard.ticks_used();
    rep.pivot_excerpt = detail::trace_excerpt(trace);
    // The GEP reduction matrices are strongly nonsingular by construction
    // (diagonal fillers): every eliminated column must have found a pivot.
    for (const auto& e : trace.events()) {
      if (e.action == factor::PivotAction::kSkip ||
          e.action == factor::PivotAction::kFail) {
        rep.diagnostic = Diagnostic::kPivotAnomaly;
        rep.offending_col = e.column;
        rep.detail = "column " + std::to_string(e.column) +
                     " lost its pivot in a strongly nonsingular reduction";
        return rep;
      }
    }
    // Decode: exactly one live row at/below the value column.
    int found = -1;
    for (std::size_t i = chain.value_col; i < m.rows(); ++i) {
      if (std::fabs(to_double(m.get(i, chain.value_col))) > 0.2) {
        if (found >= 0) {
          rep.diagnostic = Diagnostic::kDecodeAmbiguous;
          rep.offending_row = i;
          rep.offending_col = chain.value_col;
          rep.detail = "multiple live rows at the value column";
          return rep;
        }
        found = static_cast<int>(i);
      }
    }
    if (found < 0) {
      rep.diagnostic = Diagnostic::kDecodeAmbiguous;
      rep.offending_col = chain.value_col;
      rep.detail = "no live row at the value column";
      return rep;
    }
    const double v =
        to_double(m.get(static_cast<std::size_t>(found), chain.value_col));
    rep.decoded_entry = v;
    int enc = 0;
    if (std::fabs(v - 1.0) <= limits.decode_tolerance) {
      enc = 1;
    } else if (std::fabs(v - 2.0) <= limits.decode_tolerance) {
      enc = 2;
    } else {
      rep.diagnostic = Diagnostic::kDecodeOutOfTolerance;
      rep.offending_row = static_cast<std::size_t>(found);
      rep.offending_col = chain.value_col;
      rep.detail = "decoded entry " + std::to_string(v) +
                   " is outside the {1,2} tolerance band";
      return rep;
    }
    const bool decoded = enc == 2;  // True = 2
    const bool reference = !(u == 2 && w == 2);
    if (decoded != reference) {
      rep.diagnostic = Diagnostic::kCrossCheckMismatch;
      rep.offending_row = static_cast<std::size_t>(found);
      rep.offending_col = chain.value_col;
      rep.detail = std::string("decode says ") +
                   (decoded ? "true" : "false") +
                   " but NAND(u,w) evaluates to " +
                   (reference ? "true" : "false");
      return rep;
    }
    rep.value = decoded;
    rep.diagnostic = Diagnostic::kOk;
  } catch (...) {
    detail::apply_exception(rep, std::current_exception());
    rep.steps_used = guard.ticks_used();
  }
  return rep;
}

// Double-field form (the gadget constants' native field); defined in
// guarded_run.cpp.
RunReport guarded_run_gep_chain(int u, int w, std::size_t depth,
                                const GuardLimits& limits = {},
                                const FaultPlan& fault = {},
                                const CheckpointConfig& ckpt = {});

// ---------------------------------------------------------------------------
// Theorem 4.1 (GQR): guarded run of the GQR NAND-through-PASS chain over a
// float-like field T; a, b are encoded in {-1, +1}.
// ---------------------------------------------------------------------------
template <class T, class Storage = Matrix<T>>
RunReport guarded_run_gqr_chain(int a, int b, std::size_t depth,
                                const GuardLimits& limits = {},
                                const FaultPlan& fault = {},
                                const CheckpointConfig& ckpt = {}) {
  RunReport rep;
  rep.algorithm = "GQR";
  detail::ReportMetrics metrics_guard(rep);
  FaultInjector inj(fault);
  std::optional<numeric::ScopedSoftFloatRounding> flipped;
  if (fault.fault == FaultClass::kRoundingFlip) flipped.emplace(fault.rounding);

  a = inj.corrupt_encoded_input(a);
  rep.injection = inj.injection_log();
  if ((a != 1 && a != -1) || (b != 1 && b != -1)) {
    rep.diagnostic = Diagnostic::kBadInput;
    rep.detail = "GQR inputs must be encoded in {-1,+1}, got a=" +
                 std::to_string(a) + " b=" + std::to_string(b);
    return rep;
  }
  if (!detail::rounding_environment_ok<T>()) {
    rep.diagnostic = Diagnostic::kRoundingAnomaly;
    rep.detail = "substrate probe: rounding is not round-to-nearest-even";
    return rep;
  }
  factor::StepGuard guard = detail::make_guard(limits);
  try {
    core::GqrChain chain = core::build_gqr_nand_chain(a, b, depth);
    if (chain.matrix.rows() > limits.max_order) {
      rep.diagnostic = Diagnostic::kBadInput;
      rep.detail = "chain order exceeds the cap";
      return rep;
    }
    Storage m;
    if constexpr (is_sparse_storage_v<Storage>) {
      m = Storage(
          sparse::CsrMatrix<T>::from_dense(chain.matrix.template cast<T>()));
    } else {
      m = chain.matrix.template cast<T>();
    }
    if (inj.corrupt_matrix(m)) rep.injection = inj.injection_log();
    rep.order = m.rows();
    factor::PivotTrace base_trace;  // GQR records no pivot events
    std::size_t start_pos = 0;
    if (!detail::restore_checkpoint(ckpt, rep.algorithm, false, rep, m,
                                    nullptr, base_trace, start_pos)) {
      return rep;
    }
    factor::GivensCheckpointHook<Storage> hook;
    if (ckpt.saving()) {
      hook.every = ckpt.every;
      hook.save = [&ckpt, &inj, &rep](std::size_t next_pos,
                                      const Storage& snap) {
        std::string blob = encode_checkpoint_parts(
            "GQR", 0, next_pos, snap, nullptr, factor::PivotTrace{});
        if (inj.corrupt_blob(blob)) rep.injection = inj.injection_log();
        PFACT_COUNT(kCheckpointSaves);
        PFACT_COUNT_N(kCheckpointBytes, blob.size());
        if (ckpt.on_save) ckpt.on_save(next_pos, blob);
        ckpt.store->put(next_pos, std::move(blob));
      };
    }
    factor::givens_steps(m, m.rows() * m.rows(), &guard, start_pos,
                         hook.every ? &hook : nullptr);
    rep.steps_used = guard.ticks_used();
    const double v = to_double(m.get(chain.value_pos, chain.value_pos));
    rep.decoded_entry = v;
    bool decoded;
    if (v > 1.0 - limits.decode_tolerance &&
        v < 1.0 + limits.decode_tolerance) {
      decoded = true;
    } else if (v > -1.0 - limits.decode_tolerance &&
               v < -1.0 + limits.decode_tolerance) {
      decoded = false;
    } else {
      rep.diagnostic = Diagnostic::kDecodeOutOfTolerance;
      rep.offending_row = rep.offending_col = chain.value_pos;
      rep.detail = "decoded entry " + std::to_string(v) +
                   " is outside the +/-1 tolerance band";
      return rep;
    }
    const bool reference = !(a == 1 && b == 1);  // NAND on True=+1
    if (decoded != reference) {
      rep.diagnostic = Diagnostic::kCrossCheckMismatch;
      rep.offending_row = rep.offending_col = chain.value_pos;
      rep.detail = std::string("decode says ") +
                   (decoded ? "true" : "false") +
                   " but NAND(a,b) evaluates to " +
                   (reference ? "true" : "false");
      return rep;
    }
    rep.value = decoded;
    rep.diagnostic = Diagnostic::kOk;
  } catch (...) {
    detail::apply_exception(rep, std::current_exception());
    rep.steps_used = guard.ticks_used();
  }
  return rep;
}

}  // namespace pfact::robustness
