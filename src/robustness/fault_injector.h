#pragma once
// Deterministic fault injection for reduction runs.
//
// Each FaultPlan names ONE fault from a small taxonomy and a seed that
// deterministically selects the injection site, so every run in the
// robustness suite is replayable bit-for-bit: the same (fault, seed,
// instance) triple always corrupts the same entry in the same way. The
// taxonomy mirrors the ways real numerical stacks get silently corrupted:
//
//   kBitFlip        — a structural entry of the matrix is zeroed (memory
//                     fault / bad transfer on the encoded booleans)
//   kEpsilonNudge   — a nonzero entry is perturbed by 2^-10 (lost update,
//                     mixed-precision contamination)
//   kPivotTie       — a competing nonzero is planted in a pivot column
//                     (forces a tie / extra candidate in the pivot contest)
//   kRoundingFlip   — the SoftFloat substrate's rounding mode is flipped
//                     for the whole run (FPU control-word corruption)
//   kTruncatedInput — the instance loses its last input bit / an encoded
//                     chain input is replaced by the invalid value 0
//   kTornWrite      — a checkpoint blob is corrupted AT SAVE TIME (byte
//                     flip or truncation, seed-selected), the mid-run
//                     analogue of a torn/partial write to stable storage;
//                     exercises the CRC and torn-checkpoint rejection paths
//
// The injector only *creates* faults; detection lives in guarded_run.h and
// in the engine invariants (factor/guard.h). The robustness suite asserts
// that every injected fault is either harmless-by-construction (the decoded
// value is still certified-correct) or detected with a non-kOk diagnostic —
// never returned as a plausible answer.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "matrix/matrix.h"
#include "numeric/field.h"
#include "numeric/softfloat.h"
#include "obs/counters.h"

namespace pfact::robustness {

enum class FaultClass {
  kNone,
  kBitFlip,
  kEpsilonNudge,
  kPivotTie,
  kRoundingFlip,
  kTruncatedInput,
  kTornWrite,
};

inline const char* fault_class_name(FaultClass f) {
  switch (f) {
    case FaultClass::kNone: return "none";
    case FaultClass::kBitFlip: return "bit-flip";
    case FaultClass::kEpsilonNudge: return "epsilon-nudge";
    case FaultClass::kPivotTie: return "pivot-tie";
    case FaultClass::kRoundingFlip: return "rounding-flip";
    case FaultClass::kTruncatedInput: return "truncated-input";
    case FaultClass::kTornWrite: return "torn-write";
  }
  return "?";
}

struct FaultPlan {
  FaultClass fault = FaultClass::kNone;
  // Selects the injection site among the candidates, deterministically.
  std::uint64_t seed = 0;
  // Mode installed by kRoundingFlip.
  numeric::SoftFloatRounding rounding = numeric::SoftFloatRounding::kTowardZero;

  std::string describe() const {
    return std::string(fault_class_name(fault)) +
           "(seed=" + std::to_string(seed) + ")";
  }
};

// The perturbation added by kEpsilonNudge: 2^-10, exactly representable in
// every float-like field in the repo (double, long double, SoftFloat<P>=11+)
// so the injected fault itself is not blurred by conversion rounding.
inline constexpr double kNudgeMagnitude = 0.0009765625;

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  // What the injector actually did, for the RunReport (empty if nothing).
  const std::string& injection_log() const { return log_; }

  // Matrix-level faults (kBitFlip / kEpsilonNudge / kPivotTie). Generic
  // over the storage backend (matrix/storage.h): the candidate scan
  // enumerates nonzeros in row-major order through get(), so the same
  // (fault, seed, instance) triple corrupts the same logical entry on the
  // dense and sparse backends. Returns true iff an entry was changed.
  template <class Storage>
  bool corrupt_matrix(Storage& a) {
    using T = typename Storage::value_type;
    switch (plan_.fault) {
      case FaultClass::kBitFlip: {
        std::vector<std::pair<std::size_t, std::size_t>> nz = nonzeros(a);
        if (nz.empty()) return false;
        auto [i, j] = nz[plan_.seed % nz.size()];
        log_ = "bit-flip: zeroed (" + std::to_string(i) + "," +
               std::to_string(j) + ") which held " +
               scalar_to_string(a.get(i, j));
        a.set(i, j, T(0));
        PFACT_COUNT(kFaultsInjected);
        return true;
      }
      case FaultClass::kEpsilonNudge: {
        std::vector<std::pair<std::size_t, std::size_t>> nz = nonzeros(a);
        if (nz.empty()) return false;
        auto [i, j] = nz[plan_.seed % nz.size()];
        a.set(i, j, a.get(i, j) + T(kNudgeMagnitude));
        log_ = "epsilon-nudge: added 2^-10 at (" + std::to_string(i) + "," +
               std::to_string(j) + ")";
        PFACT_COUNT(kFaultsInjected);
        return true;
      }
      case FaultClass::kPivotTie: {
        // Force a tie in a LATER pivot contest: pick a column k that has a
        // competitor strictly below the diagonal at row c, and plant the
        // column's strongest magnitude into the pivot row at (k, c). Step
        // k's elimination of a(c, k) then carries the planted value onto
        // a(c, c), so by the time column c holds its pivot contest it has
        // acquired a same-magnitude rival. A naive plant directly below the
        // diagonal would be inert for the triangular GEM/GEMS reductions
        // (their pivot rows are unit vectors at elimination time); routing
        // the tie through the elimination itself perturbs every algorithm.
        const std::size_t n = a.rows();
        if (n < 2) return false;
        std::vector<std::pair<std::size_t, std::size_t>> sites;  // (k, c)
        const std::size_t kmax = std::min(n, a.cols());
        for (std::size_t k = 0; k + 1 < kmax; ++k) {
          for (std::size_t i = k + 1; i < n; ++i) {
            if (!is_zero(a.get(i, k)) && i < a.cols()) sites.emplace_back(k, i);
          }
        }
        if (sites.empty()) return false;
        auto [k, c] = sites[plan_.seed % sites.size()];
        std::size_t best = n;
        for (std::size_t i = k; i < n; ++i) {
          if (is_zero(a.get(i, k))) continue;
          if (best == n || field_abs(a.get(i, k)) > field_abs(a.get(best, k)))
            best = i;
        }
        a.set(k, c, a.get(best, k));
        log_ = "pivot-tie: planted magnitude of (" + std::to_string(best) +
               "," + std::to_string(k) + ") at (" + std::to_string(k) + "," +
               std::to_string(c) + ") to contest column " + std::to_string(c);
        PFACT_COUNT(kFaultsInjected);
        return true;
      }
      // Not matrix-level faults: injected by corrupt_instance /
      // corrupt_encoded_input / corrupt_blob instead. Enumerated so that
      // -Wswitch-enum forces a new FaultClass to choose its site here.
      case FaultClass::kNone:
      case FaultClass::kRoundingFlip:
      case FaultClass::kTruncatedInput:
      case FaultClass::kTornWrite:
        return false;
    }
    return false;
  }

  // Instance-level fault (kTruncatedInput): drops the last input bit, so
  // the instance arrives with an arity mismatch — the way a truncated
  // request would reach a service boundary.
  circuit::CvpInstance corrupt_instance(const circuit::CvpInstance& inst) {
    if (plan_.fault != FaultClass::kTruncatedInput || inst.inputs.empty()) {
      return inst;
    }
    circuit::CvpInstance out = inst;
    out.inputs.pop_back();
    log_ = "truncated-input: dropped input bit " +
           std::to_string(out.inputs.size());
    PFACT_COUNT(kFaultsInjected);
    return out;
  }

  // Encoded-scalar fault for the chain drivers (GEP inputs live in {1,2},
  // GQR inputs in {-1,+1}): kTruncatedInput degrades the value to 0, the
  // encoding of a missing wire.
  int corrupt_encoded_input(int v) {
    if (plan_.fault != FaultClass::kTruncatedInput) return v;
    log_ = "truncated-input: encoded input " + std::to_string(v) +
           " replaced by 0";
    PFACT_COUNT(kFaultsInjected);
    return 0;
  }

  // Mid-run fault (kTornWrite): corrupts a just-serialized checkpoint blob
  // the way a torn write to stable storage would — even seeds flip one
  // byte, odd seeds truncate the tail. Only the FIRST saved blob of a run
  // is torn (the seed selects where), so the same attempt also exercises
  // fallback to intact earlier/later snapshots. Returns true iff the blob
  // was changed.
  bool corrupt_blob(std::string& blob) {
    if (plan_.fault != FaultClass::kTornWrite || torn_done_ || blob.empty()) {
      return false;
    }
    torn_done_ = true;
    if (plan_.seed % 2 == 0) {
      const std::size_t at = (plan_.seed / 2) % blob.size();
      blob[at] = static_cast<char>(blob[at] ^ 0x20);
      append_log("torn-write: flipped bit 5 of byte " + std::to_string(at) +
                 " of a " + std::to_string(blob.size()) + "-byte checkpoint");
    } else {
      const std::size_t keep = (plan_.seed / 2) % blob.size();
      append_log("torn-write: truncated a " + std::to_string(blob.size()) +
                 "-byte checkpoint to " + std::to_string(keep) + " bytes");
      blob.resize(keep);
    }
    PFACT_COUNT(kFaultsInjected);
    return true;
  }

 private:
  template <class Storage>
  static std::vector<std::pair<std::size_t, std::size_t>> nonzeros(
      const Storage& a) {
    std::vector<std::pair<std::size_t, std::size_t>> nz;
    for (std::size_t i = 0; i < a.rows(); ++i)
      for (std::size_t j = 0; j < a.cols(); ++j)
        if (!is_zero(a.get(i, j))) nz.emplace_back(i, j);
    return nz;
  }

  void append_log(const std::string& entry) {
    if (!log_.empty()) log_ += "; ";
    log_ += entry;
  }

  FaultPlan plan_;
  std::string log_;
  bool torn_done_ = false;
};

// The full sweepable taxonomy (kNone excluded). kTornWrite is only
// observable on runs that actually save checkpoints; on an uncheckpointed
// run it is a no-op (harmless by construction).
inline const std::vector<FaultClass>& all_fault_classes() {
  static const std::vector<FaultClass> classes = {
      FaultClass::kBitFlip,       FaultClass::kEpsilonNudge,
      FaultClass::kPivotTie,      FaultClass::kRoundingFlip,
      FaultClass::kTruncatedInput, FaultClass::kTornWrite};
  return classes;
}

}  // namespace pfact::robustness
