#pragma once
// Execution guards for the factorization engines.
//
// The reduction runs (core/simulator.h and the robustness layer) need two
// properties the bare engines do not provide:
//
//   1. Bounded execution — a corrupted input must not turn an O(n^3)
//      elimination into an unbounded or practically-hung run.  StepGuard
//      carries a step budget and a wall-clock deadline; the engines call
//      tick() once per elimination step / rotation position.
//   2. Classified failure — when a run is aborted, the caller must be able
//      to tell *why* (budget vs. deadline vs. violated invariant), because
//      robustness::RunReport maps each cause to a distinct diagnostic.
//
// Guards are optional (nullptr = unguarded) so the hot paths and the
// existing call sites are untouched.

#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "obs/counters.h"

namespace pfact::factor {

// Thrown by StepGuard::tick() and by engine invariant checks; carries a
// machine-readable kind plus the position at which the abort happened.
class GuardAbort : public std::runtime_error {
 public:
  enum class Kind {
    kStepBudget,  // more steps than the guard allows
    kDeadline,    // wall-clock deadline exceeded
    kInvariant,   // an engine invariant was violated (see message)
  };

  GuardAbort(Kind kind, std::size_t position, const std::string& what)
      : std::runtime_error(what), kind_(kind), position_(position) {}

  Kind kind() const { return kind_; }
  // Step index / rotation position / matrix position at which the run
  // aborted (meaning depends on the throwing engine; see the message).
  std::size_t position() const { return position_; }

 private:
  Kind kind_;
  std::size_t position_;
};

// A per-run execution budget. Engines call tick(step) at the top of each
// step; tick throws GuardAbort when a limit is exceeded. Deadline checks
// are throttled (every 64 ticks) to keep the guard off the critical path.
struct StepGuard {
  // Time source for deadline checks. Injectable (a plain function pointer,
  // so the default path stays branch-plus-call cheap) so the deadline ->
  // transient-retry route can be driven deterministically under ctest with
  // a fake clock instead of wall-clock sleeps.
  using ClockFn = std::chrono::steady_clock::time_point (*)();

  // Maximum number of ticks before aborting; 0 means unlimited.
  std::size_t max_steps = 0;
  // Absolute deadline; only enforced when has_deadline is true.
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  // nullptr = steady_clock::now.
  ClockFn clock = nullptr;

  std::chrono::steady_clock::time_point now() const {
    return clock != nullptr ? clock() : std::chrono::steady_clock::now();
  }

  void set_timeout(std::chrono::steady_clock::duration d) {
    deadline = now() + d;
    has_deadline = true;
  }

  void tick(std::size_t step) const {
    ++ticks_;
    PFACT_COUNT(kGuardTicks);
    if (max_steps != 0 && ticks_ > max_steps) {
      throw GuardAbort(GuardAbort::Kind::kStepBudget, step,
                       "step budget of " + std::to_string(max_steps) +
                           " exhausted at step " + std::to_string(step));
    }
    if (has_deadline && (ticks_ % 64 == 1 || max_steps != 0)) {
      if (now() > deadline) {
        throw GuardAbort(GuardAbort::Kind::kDeadline, step,
                         "deadline exceeded at step " + std::to_string(step));
      }
    }
  }

  std::size_t ticks_used() const { return ticks_; }

 private:
  mutable std::size_t ticks_ = 0;
};

}  // namespace pfact::factor
