#pragma once
// Thread-pool execution of the parallel algorithms' independent work:
//
//  * Sameh-Kuck GQR: rotations within a stage touch pairwise disjoint row
//    pairs, so a stage is a parallel_for (the paper's [16]); the stage
//    sequence (2n-3 of them) is the critical path.
//  * Within-stage parallel GE: the rank-1 update of each elimination step
//    parallelizes over rows; the *steps* remain sequential — this is the
//    best the P-completeness results allow for GEP/GEM/GEMS, and the
//    contrast between "parallelize the step" and "parallelize the chain"
//    is exactly the paper's point.
//
// Results are bit-identical to the sequential versions (same operations,
// same order within each row), which the tests assert.

#include <vector>

#include "factor/gaussian.h"
#include "factor/givens.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace pfact::factor {

// Sameh-Kuck GQR with each stage's rotations applied concurrently.
template <class T>
QrResult<T> givens_qr_sameh_kuck_parallel(Matrix<T> a,
                                          par::ThreadPool* pool = nullptr) {
  QrResult<T> res;
  const std::size_t n = a.rows();
  const std::size_t kmax = std::min(a.rows(), a.cols());
  if (n < 2) {
    res.r = std::move(a);
    return res;
  }
  const std::size_t max_stage = (n - 2) + 2 * (kmax - 1);
  std::size_t rotations = 0;
  for (std::size_t stage = 0; stage <= max_stage; ++stage) {
    // Collect this stage's (row j, column i) rotation sites.
    std::vector<std::pair<std::size_t, std::size_t>> sites;
    for (std::size_t i = 0; i < kmax; ++i) {
      std::size_t base = n - 1 + 2 * i;
      if (base < stage) continue;
      std::size_t j = base - stage;
      if (j <= i || j >= n) continue;
      sites.emplace_back(j, i);
    }
    if (sites.empty()) continue;
    PFACT_SPAN("gqr.stage");
    std::vector<char> applied(sites.size(), 0);
    par::parallel_for(
        0, sites.size(),
        [&](std::size_t s) {
          auto [j, i] = sites[s];
          // Rows (j-1, j): disjoint across the stage by construction.
          applied[s] = detail::apply_givens<T>(a, nullptr, j - 1, j, i);
        },
        pool);
    bool any = false;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (applied[s]) {
        ++rotations;
        any = true;
      }
    }
    if (any) ++res.stages;
  }
  res.rotations = rotations;
  res.r = std::move(a);
  return res;
}

// GE with the given pivoting strategy, parallelizing each step's rank-1
// update over rows. The pivot DECISIONS stay sequential: Theorems 3.1-3.4
// say that chain cannot be compressed.
template <class T>
LuResult<T> ge_factor_parallel_rows(Matrix<T> a, PivotStrategy strategy,
                                    par::ThreadPool* pool = nullptr) {
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();
  const std::size_t kmax = std::min(n, m);
  LuResult<T> res;
  res.row_perm = Permutation(n);
  for (std::size_t k = 0; k < kmax; ++k) {
    PFACT_SPAN("ge.step");
    PFACT_COUNT(kElimSteps);
    std::size_t piv = detail::select_pivot(a, k, strategy);
    PivotEvent e;
    e.column = k;
    if (piv == n) {
      if (strategy == PivotStrategy::kNone) {
        e.action = PivotAction::kFail;
        res.trace.record(e);
        res.ok = false;
        break;
      }
      e.action = PivotAction::kSkip;
      detail::count_pivot_event(e);
      res.trace.record(e);
      continue;
    }
    e.pivot_pos = piv;
    e.pivot_row = res.row_perm[piv];
    if (piv == k) {
      e.action = PivotAction::kKeep;
    } else if (strategy == PivotStrategy::kMinimalShift) {
      e.action = PivotAction::kShift;
      a.cycle_row_up(k, piv);
      res.row_perm.cycle_up(k, piv);
    } else {
      e.action = PivotAction::kSwap;
      a.swap_rows(k, piv);
      res.row_perm.swap(k, piv);
    }
    detail::count_pivot_event(e);
    res.trace.record(e);
    par::parallel_for(
        k + 1, n,
        [&](std::size_t i) {
          if (is_zero(a(i, k))) return;
          PFACT_COUNT(kRowUpdates);
          PFACT_COUNT_N(kRowUpdateElems, m - k - 1);
          T f = a(i, k) / a(k, k);
          a(i, k) = f;
          for (std::size_t j = k + 1; j < m; ++j) a(i, j) -= f * a(k, j);
        },
        pool);
  }
  res.l = Matrix<T>(n, n);
  res.u = Matrix<T>(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    res.l(i, i) = T(1);
    for (std::size_t j = 0; j < m; ++j) {
      if (j < i && j < kmax) {
        res.l(i, j) = a(i, j);
      } else {
        res.u(i, j) = a(i, j);
      }
    }
  }
  return res;
}

}  // namespace pfact::factor
