#pragma once
// Triangular solves and end-to-end linear system drivers.
//
// "Factoring a matrix is almost always the first step" (paper, Section 1):
// these drivers are that second step, and power the accuracy experiments —
// residuals of solves are how stability differences between pivoting
// strategies become measurable.

#include <stdexcept>
#include <vector>

#include "factor/gaussian.h"
#include "factor/givens.h"
#include "matrix/matrix.h"
#include "obs/counters.h"

namespace pfact::factor {

// Solves L y = b for unit or general lower triangular L.
template <class T>
std::vector<T> forward_solve(const Matrix<T>& l, const std::vector<T>& b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("forward_solve: size");
  PFACT_COUNT(kTriangularSolves);
  std::vector<T> y(n, T(0));
  for (std::size_t i = 0; i < n; ++i) {
    T acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l(i, j) * y[j];
    if (is_zero(l(i, i))) throw std::domain_error("forward_solve: singular");
    y[i] = acc / l(i, i);
  }
  return y;
}

// Solves U x = y for upper triangular U.
template <class T>
std::vector<T> back_solve(const Matrix<T>& u, const std::vector<T>& y) {
  const std::size_t n = u.rows();
  if (y.size() != n) throw std::invalid_argument("back_solve: size");
  PFACT_COUNT(kTriangularSolves);
  std::vector<T> x(n, T(0));
  for (std::size_t i = n; i-- > 0;) {
    T acc = y[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= u(i, j) * x[j];
    if (is_zero(u(i, i))) throw std::domain_error("back_solve: singular");
    x[i] = acc / u(i, i);
  }
  return x;
}

// Solves A x = b through the PLU factorization of the given strategy.
template <class T>
std::vector<T> solve_plu(const Matrix<T>& a, const std::vector<T>& b,
                         PivotStrategy strategy = PivotStrategy::kPartial) {
  LuResult<T> f = ge_factor(a, strategy);
  if (!f.ok) throw std::domain_error("solve_plu: elimination failed");
  // Permute b into pivot order: (PA) x = P b with PA = LU.
  std::vector<T> pb(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) pb[i] = b[f.row_perm[i]];
  std::vector<T> y = forward_solve(f.l, pb);
  return back_solve(f.u, y);
}

// Solves A x = b via Givens QR: x = R^{-1} Q^T b.
template <class T>
std::vector<T> solve_qr(const Matrix<T>& a, const std::vector<T>& b,
                        bool sameh_kuck = false) {
  QrResult<T> f = sameh_kuck ? givens_qr_sameh_kuck(a, /*accumulate_q=*/true)
                             : givens_qr(a, /*accumulate_q=*/true);
  const std::size_t n = a.rows();
  std::vector<T> qtb(n, T(0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) qtb[i] += f.q(j, i) * b[j];
  }
  return back_solve(f.r, qtb);
}

// Solves with an already-computed factorization (P^T A = LU).
template <class T>
std::vector<T> solve_factored(const LuResult<T>& f, const std::vector<T>& b) {
  std::vector<T> pb(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) pb[i] = b[f.row_perm[i]];
  return back_solve(f.u, forward_solve(f.l, pb));
}

// Iterative refinement on a PLU solve: each sweep computes the residual
// r = b - A x and corrects x by the factored solve of r. For weakly stable
// eliminations (plain GE, minimal pivoting) a couple of sweeps restore
// backward stability at the cost of extra *sequential* passes — the "price
// for accuracy" paid in time rather than pivot quality.
template <class T>
std::vector<T> solve_plu_refined(const Matrix<T>& a, const std::vector<T>& b,
                                 PivotStrategy strategy, int sweeps = 2) {
  LuResult<T> f = ge_factor(a, strategy);
  if (!f.ok) throw std::domain_error("solve_plu_refined: factorization");
  std::vector<T> x = solve_factored(f, b);
  for (int s = 0; s < sweeps; ++s) {
    std::vector<T> r(b.size(), T(0));
    for (std::size_t i = 0; i < a.rows(); ++i) {
      T acc = b[i];
      for (std::size_t j = 0; j < a.cols(); ++j) acc -= a(i, j) * x[j];
      r[i] = acc;
    }
    std::vector<T> dx = solve_factored(f, r);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += dx[i];
  }
  return x;
}

// Matrix-vector product helper for residual checks.
template <class T>
std::vector<T> matvec(const Matrix<T>& a, const std::vector<T>& x) {
  std::vector<T> y(a.rows(), T(0));
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) y[i] += a(i, j) * x[j];
  return y;
}

}  // namespace pfact::factor
