#pragma once
// QR factorization via Householder reflections (HQR).
//
// The companion result [11] (Leoncini–Manzini–Margara, ESA'96) proved HQR
// inherently sequential on general matrices; here HQR serves as the second
// stable QR baseline in the accuracy/parallelism experiments, and as a
// cross-check for the Givens factorizations (same R up to column signs).

#include <cstddef>
#include <vector>

#include "matrix/matrix.h"
#include "numeric/field.h"
#include "obs/counters.h"

namespace pfact::factor {

template <class T>
struct HouseholderResult {
  Matrix<T> r;
  Matrix<T> q;
  bool has_q = false;
  std::size_t reflections = 0;
};

// Classic column-by-column Householder triangularization.
template <class T>
HouseholderResult<T> householder_qr(Matrix<T> a, bool accumulate_q = false) {
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();
  const std::size_t kmax = std::min(n, m);
  HouseholderResult<T> res;
  Matrix<T> q;
  if (accumulate_q) q = Matrix<T>::identity(n);
  std::vector<T> v(n, T(0));
  for (std::size_t k = 0; k < kmax; ++k) {
    // Build the reflector v for column k below (and including) the diagonal.
    T sigma = T(0);
    for (std::size_t i = k; i < n; ++i) sigma += a(i, k) * a(i, k);
    if (is_zero(sigma)) continue;  // column already zero: nothing to do
    bool trivial = true;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (!is_zero(a(i, k))) trivial = false;
    }
    if (trivial) continue;  // subdiagonal already zero: nothing to do
    T norm = field_sqrt(sigma);
    // Sign choice avoiding cancellation: alpha = -sign(a_kk) * ||x||.
    T akk = a(k, k);
    T alpha = (to_double(akk) >= 0.0) ? -norm : norm;
    T vk = akk - alpha;
    v[k] = vk;
    for (std::size_t i = k + 1; i < n; ++i) v[i] = a(i, k);
    T vtv = vk * vk;
    for (std::size_t i = k + 1; i < n; ++i) vtv += v[i] * v[i];
    if (is_zero(vtv)) continue;
    ++res.reflections;
    PFACT_COUNT(kHouseholderReflections);
    // Apply H = I - 2 v v^T / (v^T v) to the trailing columns of A.
    for (std::size_t j = k; j < m; ++j) {
      T dot = T(0);
      for (std::size_t i = k; i < n; ++i) dot += v[i] * a(i, j);
      T f = T(2) * dot / vtv;
      for (std::size_t i = k; i < n; ++i) a(i, j) -= f * v[i];
    }
    a(k, k) = alpha;
    for (std::size_t i = k + 1; i < n; ++i) a(i, k) = T(0);
    if (accumulate_q) {
      // Q <- Q H (accumulating A = Q R).
      for (std::size_t t = 0; t < n; ++t) {
        T dot = T(0);
        for (std::size_t i = k; i < n; ++i) dot += q(t, i) * v[i];
        T f = T(2) * dot / vtv;
        for (std::size_t i = k; i < n; ++i) q(t, i) -= f * v[i];
      }
    }
  }
  res.r = std::move(a);
  if (accumulate_q) {
    res.q = std::move(q);
    res.has_q = true;
  }
  return res;
}

}  // namespace pfact::factor
