#pragma once
// Gaussian elimination with the paper's four pivoting strategies.
//
//   GE    — no pivoting (Appendix A): fails on a zero pivot; in NC for
//           strongly nonsingular inputs, but unstable.
//   GEP   — partial pivoting: pivot row maximizes |a_ik|; P-complete even on
//           strongly nonsingular matrices (Theorem 3.4).
//   GEM   — minimal pivoting, swap: pivot row is the LOWEST-indexed row with
//           a nonzero entry in column k, exchanged with row k; P-complete on
//           nonsingular matrices (Theorem 3.1, Corollary 3.2).
//   GEMS  — minimal pivoting, circular shift: the pivot row is brought to
//           position k WITHOUT altering the order of the other rows;
//           P-complete on general matrices, NC^2 on nonsingular ones
//           (Theorem 3.1, Theorem 3.3).
//
// The engine is field-generic and works on rectangular inputs (the gadget
// matrices carry extra "link" columns beyond the square core, cf. Section 2
// of the paper), and supports partial runs ("after s steps of the
// algorithm"), which is the form the block contracts are stated in.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>

#include "factor/guard.h"
#include "factor/pivot_trace.h"
#include "matrix/matrix.h"
#include "matrix/storage.h"
#include "numeric/field.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace pfact::factor {

enum class PivotStrategy {
  kNone,          // plain GE
  kPartial,       // GEP
  kMinimalSwap,   // GEM
  kMinimalShift,  // GEMS
};

inline const char* pivot_strategy_name(PivotStrategy s) {
  switch (s) {
    case PivotStrategy::kNone: return "GE";
    case PivotStrategy::kPartial: return "GEP";
    case PivotStrategy::kMinimalSwap: return "GEM";
    case PivotStrategy::kMinimalShift: return "GEMS";
  }
  return "?";
}

template <class T>
struct LuResult {
  Matrix<T> l;           // unit lower triangular
  Matrix<T> u;           // upper triangular (or trapezoidal)
  Permutation row_perm;  // row_perm[i] = original index of the row that ends
                         // up at position i; P^T A = LU with
                         // P = row_perm.to_matrix() (i.e. PA stacks original
                         // rows in pivot order).
  PivotTrace trace;
  bool ok = true;        // false iff plain GE failed on a zero pivot
};

namespace detail {

// Selects the pivot position in column k among rows k..rows-1 of `a`.
// Returns rows() when the column is (machine) zero at and below the
// diagonal. Storage-generic: the scan reads through get(), so dense and
// sparse backends run the identical contest over the identical values.
template <MatrixStorage Storage>
std::size_t select_pivot(const Storage& a, std::size_t k,
                         PivotStrategy strategy) {
  const std::size_t n = a.rows();
  // Column-bounded backends prove rows >= scan_end hold exact zeros in
  // column k, so clipping the contest there skips only rows the dense scan
  // would `continue` past: the winner (and every comparison that decides
  // it) is unchanged. Only the pivot-scan-rows counter sees the saving.
  std::size_t scan_end = n;
  if constexpr (ColBoundedStorage<Storage>) {
    scan_end = std::min(n, a.col_scan_bound(k));
  }
  switch (strategy) {
    case PivotStrategy::kNone:
      PFACT_COUNT(kPivotScanRows);
      return is_zero(a.get(k, k)) ? n : k;
    case PivotStrategy::kPartial: {
      if (scan_end > k) {  // the contest scans the column
        PFACT_COUNT_N(kPivotScanRows, scan_end - k);
      }
      std::size_t best = n;
      for (std::size_t i = k; i < scan_end; ++i) {
        if (is_zero(a.get(i, k))) continue;
        if (best == n ||
            field_abs(a.get(i, k)) > field_abs(a.get(best, k)))
          best = i;
      }
      return best;
    }
    case PivotStrategy::kMinimalSwap:
    case PivotStrategy::kMinimalShift: {
      for (std::size_t i = k; i < scan_end; ++i) {
        if (!is_zero(a.get(i, k))) {
          PFACT_COUNT_N(kPivotScanRows, i - k + 1);
          return i;
        }
      }
      if (scan_end > k) PFACT_COUNT_N(kPivotScanRows, scan_end - k);
      return n;
    }
  }
  return n;
}

// Shared accounting for a completed pivot decision.
inline void count_pivot_event(const PivotEvent& e) {
  switch (e.action) {
    case PivotAction::kKeep:
      PFACT_COUNT(kPivotKeeps);
      break;
    case PivotAction::kSwap:
      PFACT_COUNT(kPivotSwaps);
      PFACT_HISTO(kPivotMoveDistance, e.pivot_pos - e.column);
      break;
    case PivotAction::kShift:
      PFACT_COUNT(kPivotShifts);
      PFACT_HISTO(kPivotMoveDistance, e.pivot_pos - e.column);
      break;
    case PivotAction::kSkip:
      PFACT_COUNT(kPivotSkips);
      break;
    case PivotAction::kFail:
      break;
  }
}

}  // namespace detail

// Per-run checks layered on top of the elimination engine (all off by
// default). `reduction_mode` encodes the structural invariant of the
// paper's A_C runs: every pivot actually used is exactly +/-1, so each
// elimination step is division-free in effect and the decoded booleans stay
// bit-exact. A pivot of any other value means the input was not a
// well-formed reduction matrix (or was corrupted in flight) and the run
// aborts with GuardAbort{kInvariant} instead of producing a plausible,
// silently-wrong decode.
struct EliminationChecks {
  const StepGuard* guard = nullptr;  // step/deadline budget (not owned)
  bool reduction_mode = false;       // enforce exact unit-magnitude pivots
  // Resume support: the matrix is assumed to already hold the state after
  // steps [0, start_step), and elimination begins at column start_step.
  // The returned trace covers only the freshly executed steps.
  std::size_t start_step = 0;
};

// Periodic snapshot hook for checkpoint/resume (robustness/checkpoint.h).
// When `every` > 0, `save` is invoked at the top of each step k with
// k % every == 0 (k > start_step) — BEFORE the step's guard tick, so a run
// killed exactly at a boundary has already persisted that boundary's
// state. The matrix/perm arguments reflect steps [0, k) completed; the
// trace argument holds only the events since start_step (a resuming
// caller prepends its restored prefix). Templated on the storage backend
// (Matrix<T> or sparse::SparseMatrix<T>) like the engine itself.
template <class Storage>
struct CheckpointHook {
  std::size_t every = 0;
  std::function<void(std::size_t next_step, const Storage& a,
                     const Permutation* perm, const PivotTrace& trace)>
      save;
};

// Runs `steps` elimination steps of the given strategy in place on `a`
// (which may have more columns than rows — link columns are transformed by
// the same row operations). `perm` (if non-null) tracks row movement; it
// must have size a.rows(). Multipliers are NOT stored (the subdiagonal is
// zeroed), matching the paper's description of "the algorithm applied to the
// block". Returns the pivot trace.
template <MatrixStorage Storage>
PivotTrace eliminate_steps(Storage& a, PivotStrategy strategy,
                           std::size_t steps, Permutation* perm = nullptr,
                           const EliminationChecks& checks = {},
                           const CheckpointHook<Storage>* ckpt = nullptr) {
  using T = typename Storage::value_type;
  PivotTrace trace;
  const std::size_t n = a.rows();
  const std::size_t limit = std::min({steps, n, a.cols()});
  for (std::size_t k = checks.start_step; k < limit; ++k) {
    // One span per elimination step: the pivot decision chain IS the
    // sequential critical path the P-completeness theorems are about, so
    // traces of GEM/GEMS/GEP runs show a linear chain of "ge.step" spans.
    PFACT_SPAN("ge.step");
    PFACT_COUNT(kElimSteps);
    if (ckpt != nullptr && ckpt->every != 0 && k != checks.start_step &&
        k % ckpt->every == 0) {
      ckpt->save(k, a, perm, trace);
    }
    if (checks.guard != nullptr) checks.guard->tick(k);
    std::size_t piv = detail::select_pivot(a, k, strategy);
    PivotEvent e;
    e.column = k;
    if (piv == n) {
      if (strategy == PivotStrategy::kNone) {
        e.action = PivotAction::kFail;
        trace.record(e);
        return trace;
      }
      e.action = PivotAction::kSkip;
      detail::count_pivot_event(e);
      trace.record(e);
      continue;  // A^{(k+1)} = A^{(k)}
    }
    e.pivot_pos = piv;
    e.pivot_row = perm ? (*perm)[piv] : piv;
    if (piv == k) {
      e.action = PivotAction::kKeep;
    } else if (strategy == PivotStrategy::kMinimalShift) {
      e.action = PivotAction::kShift;
      a.cycle_row_up(k, piv);
      if (perm) perm->cycle_up(k, piv);
    } else {
      e.action = PivotAction::kSwap;
      a.swap_rows(k, piv);
      if (perm) perm->swap(k, piv);
    }
    detail::count_pivot_event(e);
    trace.record(e);
    if (checks.reduction_mode && a.get(k, k) != T(1) &&
        a.get(k, k) != T(-1)) {
      throw GuardAbort(GuardAbort::Kind::kInvariant, k,
                       "reduction-mode pivot at column " + std::to_string(k) +
                           " is not an exact +/-1 (got " +
                           scalar_to_string(a.get(k, k)) + ")");
    }
    std::size_t updated = 0;
    std::size_t elems = 0;
    // Same clipping as select_pivot: rows past the column bound are
    // structurally zero in column k, and the dense loop would skip them
    // via the is_zero continue below. On block-banded A_C this turns the
    // below-pivot sweep from O(n) per step into O(band).
    std::size_t update_end = n;
    if constexpr (ColBoundedStorage<Storage>) {
      update_end = std::min(n, a.col_scan_bound(k));
    }
    for (std::size_t i = k + 1; i < update_end; ++i) {
      if (is_zero(a.get(i, k))) continue;
      T f = a.get(i, k) / a.get(k, k);
      if (!field_finite(f)) {
        throw GuardAbort(GuardAbort::Kind::kInvariant, k,
                         "non-finite multiplier at row " + std::to_string(i) +
                             ", column " + std::to_string(k));
      }
      elems += a.row_axpy(i, k, f);
      ++updated;
    }
    PFACT_COUNT_N(kRowUpdates, updated);
    PFACT_COUNT_N(kRowUpdateElems, elems);
  }
  return trace;
}

// Full factorization with stored multipliers: P^T A = L U.
// On square input runs min(n,m) steps; `a` is consumed by value.
template <class T>
LuResult<T> ge_factor(Matrix<T> a, PivotStrategy strategy) {
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();
  const std::size_t kmax = std::min(n, m);
  LuResult<T> res;
  res.row_perm = Permutation(n);
  for (std::size_t k = 0; k < kmax; ++k) {
    PFACT_SPAN("ge.step");
    PFACT_COUNT(kElimSteps);
    std::size_t piv = detail::select_pivot(a, k, strategy);
    PivotEvent e;
    e.column = k;
    if (piv == n) {
      if (strategy == PivotStrategy::kNone) {
        e.action = PivotAction::kFail;
        res.trace.record(e);
        res.ok = false;
        break;
      }
      e.action = PivotAction::kSkip;
      detail::count_pivot_event(e);
      res.trace.record(e);
      continue;
    }
    e.pivot_pos = piv;
    e.pivot_row = res.row_perm[piv];
    if (piv == k) {
      e.action = PivotAction::kKeep;
    } else if (strategy == PivotStrategy::kMinimalShift) {
      e.action = PivotAction::kShift;
      a.cycle_row_up(k, piv);  // multipliers travel with their rows
      res.row_perm.cycle_up(k, piv);
    } else {
      e.action = PivotAction::kSwap;
      a.swap_rows(k, piv);
      res.row_perm.swap(k, piv);
    }
    detail::count_pivot_event(e);
    res.trace.record(e);
    std::size_t updated = 0;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (is_zero(a(i, k))) continue;
      T f = a(i, k) / a(k, k);
      a(i, k) = f;  // packed storage: multiplier kept in the zeroed slot
      ++updated;
      for (std::size_t j = k + 1; j < m; ++j) {
        a(i, j) -= f * a(k, j);
      }
    }
    PFACT_COUNT_N(kRowUpdates, updated);
    PFACT_COUNT_N(kRowUpdateElems, updated * (m - k - 1));
  }
  // Unpack L and U.
  res.l = Matrix<T>(n, n);
  res.u = Matrix<T>(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    res.l(i, i) = T(1);
    for (std::size_t j = 0; j < m; ++j) {
      if (j < i && j < kmax) {
        res.l(i, j) = a(i, j);
      } else {
        res.u(i, j) = a(i, j);
      }
    }
  }
  return res;
}

// Convenience wrappers matching the paper's algorithm names.
template <class T>
LuResult<T> ge(const Matrix<T>& a) {
  return ge_factor(a, PivotStrategy::kNone);
}
template <class T>
LuResult<T> gep(const Matrix<T>& a) {
  return ge_factor(a, PivotStrategy::kPartial);
}
template <class T>
LuResult<T> gem(const Matrix<T>& a) {
  return ge_factor(a, PivotStrategy::kMinimalSwap);
}
template <class T>
LuResult<T> gems(const Matrix<T>& a) {
  return ge_factor(a, PivotStrategy::kMinimalShift);
}

// Determinant via GEP (sign-corrected by the permutation parity).
template <class T>
T det(const Matrix<T>& a) {
  if (!a.square()) throw std::invalid_argument("det: non-square");
  LuResult<T> f = ge_factor(a, PivotStrategy::kPartial);
  T d = T(1);
  for (std::size_t i = 0; i < a.rows(); ++i) d *= f.u(i, i);
  if (f.row_perm.sign() < 0) d = -d;
  return d;
}

}  // namespace pfact::factor
