#pragma once
// QR factorization via Givens rotations (GQR) — the subject of Theorem 4.1.
//
// GQR annihilates the subdiagonal "in the natural order (left to right and
// top to bottom)"; each rotation G zeroes one entry (j,i) using rows i and j:
//
//     r = sqrt(a_ii^2 + a_ji^2),  c = a_ii / r,  s = a_ji / r,
//     row_i <-  c*row_i + s*row_j
//     row_j <- -s*row_i + c*row_j        (computed from the OLD rows)
//
// Note: the rotation printed in the paper's Appendix A has its signs
// garbled (as printed it does not annihilate the (j,i) entry); the formulas
// above are the standard ones and do satisfy "the entry j,i of G.A is zero".
//
// Also provided: the Sameh–Kuck parallel annihilation ordering [16], which
// retires the same n(n-1)/2 rotations in O(n) stages of pairwise-disjoint
// row pairs — the classic "stable parallel linear system solver" the paper's
// introduction credits as the best practical parallel option.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "factor/guard.h"
#include "matrix/matrix.h"
#include "matrix/storage.h"
#include "numeric/field.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace pfact::factor {

template <class T>
struct QrResult {
  Matrix<T> r;            // upper triangular, same shape as input
  Matrix<T> q;            // orthogonal accumulate with A = Q R (optional)
  bool has_q = false;
  std::size_t rotations = 0;  // rotations actually applied
  std::size_t stages = 0;     // parallel stages (1 per rotation if natural)
};

namespace detail {

// Applies the rotation eliminating a(j,i) against pivot row i. Returns true
// if a rotation was applied (a(j,i) != 0). Each arithmetic operation is one
// machine operation in the field T — this sequencing is what the Section 4
// floating point analysis is about, so keep it explicit.
template <class T>
bool apply_givens(Matrix<T>& a, Matrix<T>* q, std::size_t i, std::size_t j) {
  if (is_zero(a(j, i))) return false;
  T r = field_sqrt(a(i, i) * a(i, i) + a(j, i) * a(j, i));
  if (!field_finite(r) || is_zero(r)) {
    throw GuardAbort(GuardAbort::Kind::kInvariant, i,
                     "degenerate Givens rotation at (" + std::to_string(j) +
                         ", " + std::to_string(i) + "): |r| is " +
                         (is_zero(r) ? "zero" : "non-finite"));
  }
  PFACT_COUNT(kGivensRotations);
  T c = a(i, i) / r;
  T s = a(j, i) / r;
  for (std::size_t t = 0; t < a.cols(); ++t) {
    T top = a(i, t);
    T bot = a(j, t);
    a(i, t) = c * top + s * bot;
    a(j, t) = c * bot - s * top;
  }
  a(j, i) = T(0);  // exact by construction; avoids residual roundoff dust
  if (q != nullptr) {
    // Accumulate Q = G_1^T G_2^T ... : apply the inverse rotation to columns.
    for (std::size_t t = 0; t < q->rows(); ++t) {
      T qi = (*q)(t, i);
      T qj = (*q)(t, j);
      (*q)(t, i) = c * qi + s * qj;
      (*q)(t, j) = c * qj - s * qi;
    }
  }
  return true;
}

// Neighbour-row variant: rotate rows (p, j) to annihilate a(j, col), where
// p is typically the upper neighbour j-1 (Sameh–Kuck) rather than the
// diagonal row.
template <class T>
bool apply_givens(Matrix<T>& a, Matrix<T>* q, std::size_t p, std::size_t j,
                  std::size_t col) {
  if (is_zero(a(j, col))) return false;
  T r = field_sqrt(a(p, col) * a(p, col) + a(j, col) * a(j, col));
  if (!field_finite(r) || is_zero(r)) {
    throw GuardAbort(GuardAbort::Kind::kInvariant, p,
                     "degenerate Givens rotation at (" + std::to_string(j) +
                         ", " + std::to_string(col) + "): |r| is " +
                         (is_zero(r) ? "zero" : "non-finite"));
  }
  PFACT_COUNT(kGivensRotations);
  T c = a(p, col) / r;
  T s = a(j, col) / r;
  for (std::size_t t = 0; t < a.cols(); ++t) {
    T top = a(p, t);
    T bot = a(j, t);
    a(p, t) = c * top + s * bot;
    a(j, t) = c * bot - s * top;
  }
  a(j, col) = T(0);
  if (q != nullptr) {
    for (std::size_t t = 0; t < q->rows(); ++t) {
      T qi = (*q)(t, p);
      T qj = (*q)(t, j);
      (*q)(t, p) = c * qi + s * qj;
      (*q)(t, j) = c * qj - s * qi;
    }
  }
  return true;
}

// Storage-generic natural-order rotation: computes c/s from the diagonal
// and target entries, then rotates the row pair through the backend's
// rotate_rows — the identical expression sequence as the dense
// apply_givens loop, so dense and sparse runs agree bit for bit.
template <RotatableStorage Storage>
bool apply_givens_rows(Storage& a, std::size_t i, std::size_t j) {
  using T = typename Storage::value_type;
  if (is_zero(a.get(j, i))) return false;
  T r = field_sqrt(a.get(i, i) * a.get(i, i) + a.get(j, i) * a.get(j, i));
  if (!field_finite(r) || is_zero(r)) {
    throw GuardAbort(GuardAbort::Kind::kInvariant, i,
                     "degenerate Givens rotation at (" + std::to_string(j) +
                         ", " + std::to_string(i) + "): |r| is " +
                         (is_zero(r) ? "zero" : "non-finite"));
  }
  PFACT_COUNT(kGivensRotations);
  T c = a.get(i, i) / r;
  T s = a.get(j, i) / r;
  a.rotate_rows(i, j, c, s);
  a.set(j, i, T(0));  // exact by construction; avoids residual roundoff dust
  return true;
}

}  // namespace detail

// Periodic snapshot hook for checkpoint/resume, the rotation-position
// analogue of factor::CheckpointHook: `save` fires at each position p with
// p % every == 0 (p > start_pos), before the position's guard tick, with
// the matrix reflecting rotations [0, p) applied. Templated on the storage
// backend like the engine.
template <class Storage>
struct GivensCheckpointHook {
  std::size_t every = 0;
  std::function<void(std::size_t next_pos, const Storage& a)> save;
};

// Runs the first `steps` rotation positions of natural-order GQR in place
// (skipped zero entries still count as a step position, matching "after k
// steps of GQR" in the block contracts, where blocks are dense below the
// diagonal wherever it matters). `start_pos` resumes mid-run: the matrix
// is assumed to already hold the state after positions [0, start_pos).
template <RotatableStorage Storage>
std::size_t givens_steps(Storage& a, std::size_t steps,
                         const StepGuard* guard = nullptr,
                         std::size_t start_pos = 0,
                         const GivensCheckpointHook<Storage>* ckpt = nullptr) {
  std::size_t pos = 0;
  std::size_t applied = 0;
  const std::size_t kmax = std::min(a.rows(), a.cols());
  for (std::size_t i = 0; i < kmax; ++i) {
    for (std::size_t j = i + 1; j < a.rows(); ++j) {
      if (pos == steps) return applied;
      if (pos < start_pos) {  // already retired before the checkpoint
        ++pos;
        continue;
      }
      if (ckpt != nullptr && ckpt->every != 0 && pos != start_pos &&
          pos % ckpt->every == 0) {
        ckpt->save(pos, a);
      }
      if (guard != nullptr) guard->tick(pos);
      if (detail::apply_givens_rows(a, i, j)) ++applied;
      ++pos;
    }
  }
  return applied;
}

// Full natural-order GQR.
template <class T>
QrResult<T> givens_qr(Matrix<T> a, bool accumulate_q = false) {
  QrResult<T> res;
  Matrix<T> q;
  if (accumulate_q) q = Matrix<T>::identity(a.rows());
  const std::size_t kmax = std::min(a.rows(), a.cols());
  for (std::size_t i = 0; i < kmax; ++i) {
    for (std::size_t j = i + 1; j < a.rows(); ++j) {
      if (detail::apply_givens<T>(a, accumulate_q ? &q : nullptr, i, j)) {
        ++res.rotations;
      }
    }
  }
  res.stages = res.rotations;
  res.r = std::move(a);
  if (accumulate_q) {
    res.q = std::move(q);
    res.has_q = true;
  }
  return res;
}

// Sameh–Kuck ordering: entry (j,i) (0-based, j > i) is annihilated at stage
// rows()-1-j + 2i (0-based stages), always rotating adjacent rows (j-1, j).
// All rotations within a stage touch pairwise disjoint row pairs, so a PRAM
// (or a thread pool) can apply them simultaneously; the stage count is
// rows() + ... = O(n) instead of the Theta(n^2) sequential rotation count.
template <class T>
QrResult<T> givens_qr_sameh_kuck(Matrix<T> a, bool accumulate_q = false) {
  QrResult<T> res;
  Matrix<T> q;
  if (accumulate_q) q = Matrix<T>::identity(a.rows());
  const std::size_t n = a.rows();
  const std::size_t kmax = std::min(a.rows(), a.cols());
  if (n < 2) {
    res.r = std::move(a);
    if (accumulate_q) {
      res.q = std::move(q);
      res.has_q = true;
    }
    return res;
  }
  const std::size_t max_stage = (n - 2) + 2 * (kmax - 1);
  for (std::size_t stage = 0; stage <= max_stage; ++stage) {
    PFACT_SPAN("givens.stage");
    bool any = false;
    // Members of this stage: i such that j = n-1-stage+2i is a valid row.
    for (std::size_t i = 0; i < kmax; ++i) {
      std::size_t base = n - 1 + 2 * i;
      if (base < stage) continue;
      std::size_t j = base - stage;
      if (j <= i || j >= n) continue;
      // Annihilate (j,i) against its upper neighbour row j-1 (whose own
      // column-i entry is still live unless j-1 == i, where it is the
      // diagonal): pairwise scheme.
      if (detail::apply_givens<T>(a, accumulate_q ? &q : nullptr, j - 1, j,
                                  i)) {
        ++res.rotations;
        any = true;
      }
    }
    if (any) {
      ++res.stages;
      PFACT_COUNT(kGivensStages);
    }
  }
  res.r = std::move(a);
  if (accumulate_q) {
    res.q = std::move(q);
    res.has_q = true;
  }
  return res;
}

}  // namespace pfact::factor
