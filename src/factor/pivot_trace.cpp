#include "factor/pivot_trace.h"

#include <sstream>

namespace pfact::factor {

bool PivotTrace::used_row_for_column(std::size_t row, std::size_t col) const {
  for (const auto& e : events_) {
    if (e.column == col) {
      return e.action != PivotAction::kSkip &&
             e.action != PivotAction::kFail && e.pivot_row == row;
    }
  }
  return false;
}

std::size_t PivotTrace::swap_count() const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.action == PivotAction::kSwap || e.action == PivotAction::kShift)
      ++n;
  }
  return n;
}

std::size_t PivotTrace::skip_count() const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.action == PivotAction::kSkip) ++n;
  }
  return n;
}

bool PivotTrace::failed() const {
  for (const auto& e : events_) {
    if (e.action == PivotAction::kFail) return true;
  }
  return false;
}

std::string PivotTrace::to_string() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << "col " << e.column << ": ";
    switch (e.action) {
      case PivotAction::kKeep:
        os << "pivot in place (orig row " << e.pivot_row << ")";
        break;
      case PivotAction::kSwap:
        os << "swap with pos " << e.pivot_pos << " (orig row " << e.pivot_row
           << ")";
        break;
      case PivotAction::kShift:
        os << "shift from pos " << e.pivot_pos << " (orig row "
           << e.pivot_row << ")";
        break;
      case PivotAction::kSkip:
        os << "skip (zero column)";
        break;
      case PivotAction::kFail:
        os << "FAIL (zero pivot, no pivoting)";
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace pfact::factor
