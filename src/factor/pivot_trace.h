#pragma once
// Pivot traces: the sequence of pivoting decisions an elimination makes.
//
// The paper's GEP result (Theorem 3.4) is literally a statement about this
// object: L = {(i,j,A) : on input A, GEP uses row i to eliminate column j}
// is P-complete.  The GEP reduction decodes the simulated circuit's output
// from the trace; the GEM/GEMS reductions decode it from a matrix entry but
// their proofs hinge on which swaps/shifts occur, so tests assert on traces.

#include <cstddef>
#include <string>
#include <vector>

#include "matrix/matrix.h"

namespace pfact::factor {

enum class PivotAction {
  kKeep,   // pivot already in place (row k eliminates column k)
  kSwap,   // rows k and pivot_pos exchanged (GEP / GEM)
  kShift,  // rows k..pivot_pos circularly shifted (GEMS)
  kSkip,   // column k had no nonzero at or below the diagonal
  kFail,   // plain GE met a zero pivot and stopped
};

struct PivotEvent {
  std::size_t column = 0;      // column being eliminated (0-based)
  std::size_t pivot_pos = 0;   // position of the chosen pivot row pre-move
  std::size_t pivot_row = 0;   // ORIGINAL index of the chosen pivot row
  PivotAction action = PivotAction::kKeep;
};

class PivotTrace {
 public:
  void record(PivotEvent e) { events_.push_back(e); }

  const std::vector<PivotEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  const PivotEvent& operator[](std::size_t i) const { return events_[i]; }

  // True iff GEP/GEM/GEMS used original row i to eliminate column j —
  // membership in the language of Theorem 3.4.
  bool used_row_for_column(std::size_t row, std::size_t col) const;

  std::size_t swap_count() const;
  std::size_t skip_count() const;
  bool failed() const;

  std::string to_string() const;

 private:
  std::vector<PivotEvent> events_;
};

}  // namespace pfact::factor
