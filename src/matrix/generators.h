#pragma once
// Test-matrix ensembles used by the experiments: the paper's complexity
// classes are defined per matrix class (general / nonsingular / strongly
// nonsingular), so the generators produce certified members of each class.

#include <cstdint>
#include <random>

#include "matrix/matrix.h"
#include "numeric/rational.h"

namespace pfact::gen {

// Uniform entries in [-1, 1].
Matrix<double> random_general(std::size_t n, std::uint64_t seed);

// Random matrix conditioned (by construction) to be nonsingular:
// P * L * U with unit |diagonal| factors bounded away from zero.
Matrix<double> random_nonsingular(std::size_t n, std::uint64_t seed);

// Strictly row diagonally dominant => strongly nonsingular (all leading
// principal minors of a strictly diagonally dominant matrix are themselves
// strictly diagonally dominant, hence nonsingular).
Matrix<double> random_diagonally_dominant(std::size_t n, std::uint64_t seed);

// Symmetric positive definite: A = B^T B + n I.
Matrix<double> random_spd(std::size_t n, std::uint64_t seed);

// Hilbert matrix H(i,j) = 1/(i+j+1): notoriously ill-conditioned, strongly
// nonsingular; the classic accuracy stress test.
Matrix<double> hilbert(std::size_t n);
Matrix<numeric::Rational> hilbert_exact(std::size_t n);

// Integer entries in [-range, range], as exact rationals.
Matrix<numeric::Rational> random_integer_exact(std::size_t n, int range,
                                               std::uint64_t seed);

// Integer-entry nonsingular rational matrix (rejection-sampled on det != 0).
Matrix<numeric::Rational> random_nonsingular_exact(std::size_t n, int range,
                                                   std::uint64_t seed);

// A matrix with a singular leading principal minor but nonsingular overall:
// exercises the GE-fails / GEP-succeeds boundary.
Matrix<double> nonsingular_with_singular_minor(std::size_t n);

// "Graded" matrix with exponentially decreasing diagonal: stresses growth
// factors and pivoting differences.
Matrix<double> graded(std::size_t n, double ratio);

// Kahan-style growth-factor worst case for partial pivoting: the classic
// Wilkinson matrix with 2^{n-1} element growth under GEP.
Matrix<double> wilkinson_growth(std::size_t n);

}  // namespace pfact::gen
