#pragma once
// Dense row-major matrix over an arbitrary field, plus permutations.
//
// This is the shared substrate of every factorization and reduction in the
// repository.  It is deliberately simple: the paper's constructions need
// exactness and structural transparency, not BLAS-level tuning.

#include <cstddef>
#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "numeric/field.h"

namespace pfact {

template <class T>
class Matrix {
 public:
  using value_type = T;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T(0)) {}
  Matrix(std::size_t rows, std::size_t cols, const T& fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Row-by-row brace initialization; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
      if (r.size() != cols_)
        throw std::invalid_argument("Matrix: ragged initializer");
      for (const auto& v : r) data_.push_back(v);
    }
  }

  static Matrix identity(std::size_t n) {
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i) out(i, i) = T(1);
    return out;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool square() const { return rows_ == cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  T& at(std::size_t i, std::size_t j) {
    check(i, j);
    return (*this)(i, j);
  }
  const T& at(std::size_t i, std::size_t j) const {
    check(i, j);
    return (*this)(i, j);
  }

  // Storage-concept accessors (matrix/storage.h): the elimination engines
  // are generic over dense and sparse backends and read/write exclusively
  // through these.
  const T& get(std::size_t i, std::size_t j) const { return (*this)(i, j); }
  void set(std::size_t i, std::size_t j, const T& v) { (*this)(i, j) = v; }

  // Elimination row update: a(i, k) = 0; a(i, j) -= f * a(k, j) for j > k.
  // The loop is the former eliminate_steps inner loop verbatim — sparse
  // backends must reproduce this field-operation order bit for bit. Returns
  // the scalar multiply-subtract count for the row-update-elems counter.
  std::size_t row_axpy(std::size_t i, std::size_t k, const T& f) {
    (*this)(i, k) = T(0);
    for (std::size_t j = k + 1; j < cols_; ++j) {
      (*this)(i, j) -= f * (*this)(k, j);
    }
    return cols_ - k - 1;
  }

  // Givens rotation of rows i and j across every column (the former
  // apply_givens update loop verbatim).
  void rotate_rows(std::size_t i, std::size_t j, const T& c, const T& s) {
    for (std::size_t t = 0; t < cols_; ++t) {
      const T top = (*this)(i, t);
      const T bot = (*this)(j, t);
      (*this)(i, t) = c * top + s * bot;
      (*this)(j, t) = c * bot - s * top;
    }
  }

  void swap_rows(std::size_t a, std::size_t b) {
    if (a == b) return;
    for (std::size_t j = 0; j < cols_; ++j)
      std::swap((*this)(a, j), (*this)(b, j));
  }

  // Moves row `from` to position `to` (to <= from), shifting the rows in
  // between down by one — the GEMS "circular shift" primitive.
  void cycle_row_up(std::size_t to, std::size_t from) {
    for (std::size_t r = from; r > to; --r) swap_rows(r, r - 1);
  }

  Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
  }

  Matrix submatrix(std::size_t r0, std::size_t c0, std::size_t nr,
                   std::size_t nc) const {
    Matrix out(nr, nc);
    for (std::size_t i = 0; i < nr; ++i)
      for (std::size_t j = 0; j < nc; ++j)
        out(i, j) = (*this)(r0 + i, c0 + j);
    return out;
  }

  // Leading principal submatrix of order k.
  Matrix leading_minor(std::size_t k) const { return submatrix(0, 0, k, k); }

  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    if (a.cols_ != b.rows_)
      throw std::invalid_argument("Matrix: dimension mismatch in product");
    Matrix out(a.rows_, b.cols_);
    for (std::size_t i = 0; i < a.rows_; ++i) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const T& aik = a(i, k);
        if (is_zero(aik)) continue;
        for (std::size_t j = 0; j < b.cols_; ++j) {
          out(i, j) += aik * b(k, j);
        }
      }
    }
    return out;
  }

  friend Matrix operator+(const Matrix& a, const Matrix& b) {
    require_same_shape(a, b);
    Matrix out = a;
    for (std::size_t i = 0; i < out.data_.size(); ++i)
      out.data_[i] += b.data_[i];
    return out;
  }

  friend Matrix operator-(const Matrix& a, const Matrix& b) {
    require_same_shape(a, b);
    Matrix out = a;
    for (std::size_t i = 0; i < out.data_.size(); ++i)
      out.data_[i] -= b.data_[i];
    return out;
  }

  friend Matrix operator*(const T& s, const Matrix& a) {
    Matrix out = a;
    for (auto& v : out.data_) v = s * v;
    return out;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

  // Frobenius-style max |a_ij - b_ij| as double, for tolerance checks.
  friend double max_abs_diff(const Matrix& a, const Matrix& b) {
    require_same_shape(a, b);
    double m = 0.0;
    for (std::size_t i = 0; i < a.data_.size(); ++i) {
      double d = to_double(field_abs(a.data_[i] - b.data_[i]));
      if (d > m) m = d;
    }
    return m;
  }

  double max_abs() const {
    double m = 0.0;
    for (const auto& v : data_) {
      double d = to_double(field_abs(v));
      if (d > m) m = d;
    }
    return m;
  }

  bool is_upper_triangular() const {
    for (std::size_t i = 1; i < rows_; ++i)
      for (std::size_t j = 0; j < i && j < cols_; ++j)
        if (!is_zero((*this)(i, j))) return false;
    return true;
  }

  bool is_lower_triangular() const {
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = i + 1; j < cols_; ++j)
        if (!is_zero((*this)(i, j))) return false;
    return true;
  }

  bool is_unit_lower_triangular() const {
    if (!is_lower_triangular()) return false;
    for (std::size_t i = 0; i < rows_ && i < cols_; ++i)
      if (!((*this)(i, i) == T(1))) return false;
    return true;
  }

  // Strict (row) diagonal dominance: |a_ii| > sum_{j != i} |a_ij|.
  bool is_strictly_diagonally_dominant() const
    requires(!is_exact_field_v<T>)
  {
    for (std::size_t i = 0; i < rows_; ++i) {
      double off = 0.0;
      for (std::size_t j = 0; j < cols_; ++j)
        if (j != i) off += to_double(field_abs((*this)(i, j)));
      if (to_double(field_abs((*this)(i, i))) <= off) return false;
    }
    return true;
  }

  template <class U>
  Matrix<U> cast() const {
    Matrix<U> out(rows_, cols_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j)
        out(i, j) = U((*this)(i, j));
    return out;
  }

  std::string to_string(int width = 9) const {
    std::ostringstream os;
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) {
        std::string s = scalar_to_string((*this)(i, j));
        if (static_cast<int>(s.size()) < width)
          s.insert(0, width - s.size(), ' ');
        os << s << (j + 1 == cols_ ? "" : " ");
      }
      os << '\n';
    }
    return os.str();
  }

 private:
  static void require_same_shape(const Matrix& a, const Matrix& b) {
    if (a.rows_ != b.rows_ || a.cols_ != b.cols_)
      throw std::invalid_argument("Matrix: shape mismatch");
  }
  void check(std::size_t i, std::size_t j) const {
    if (i >= rows_ || j >= cols_)
      throw std::out_of_range("Matrix: index out of range");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

// Exact double->Rational lift for verifying a floating construction exactly.
inline Matrix<numeric::Rational> to_rational(const Matrix<double>& a) {
  Matrix<numeric::Rational> out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      out(i, j) = numeric::Rational::from_double(a(i, j));
  return out;
}

// A permutation of {0, .., n-1}; perm()[i] is the image of i.
class Permutation {
 public:
  Permutation() = default;
  explicit Permutation(std::size_t n) : map_(n) {
    for (std::size_t i = 0; i < n; ++i) map_[i] = i;
  }
  explicit Permutation(std::vector<std::size_t> map) : map_(std::move(map)) {}

  std::size_t size() const { return map_.size(); }
  std::size_t operator[](std::size_t i) const { return map_[i]; }
  const std::vector<std::size_t>& map() const { return map_; }

  void swap(std::size_t a, std::size_t b) { std::swap(map_[a], map_[b]); }
  void cycle_up(std::size_t to, std::size_t from) {
    for (std::size_t r = from; r > to; --r) swap(r, r - 1);
  }

  Permutation inverse() const {
    Permutation out(map_.size());
    for (std::size_t i = 0; i < map_.size(); ++i) out.map_[map_[i]] = i;
    return out;
  }

  bool is_identity() const {
    for (std::size_t i = 0; i < map_.size(); ++i)
      if (map_[i] != i) return false;
    return true;
  }

  int sign() const {
    std::vector<bool> seen(map_.size(), false);
    int s = 1;
    for (std::size_t i = 0; i < map_.size(); ++i) {
      if (seen[i]) continue;
      std::size_t len = 0;
      for (std::size_t j = i; !seen[j]; j = map_[j]) {
        seen[j] = true;
        ++len;
      }
      if (len % 2 == 0) s = -s;
    }
    return s;
  }

  // Permutation matrix P with P(i, map[i]) = 1, so that (P A) row i equals
  // A row map[i].
  template <class T>
  Matrix<T> to_matrix() const {
    Matrix<T> out(map_.size(), map_.size());
    for (std::size_t i = 0; i < map_.size(); ++i) out(i, map_[i]) = T(1);
    return out;
  }

  // Rows of the result: out row i = a row map[i].
  template <class T>
  Matrix<T> apply_rows(const Matrix<T>& a) const {
    Matrix<T> out(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
      for (std::size_t j = 0; j < a.cols(); ++j)
        out(i, j) = a(map_[i], j);
    return out;
  }

  friend bool operator==(const Permutation& a, const Permutation& b) {
    return a.map_ == b.map_;
  }

 private:
  std::vector<std::size_t> map_;
};

}  // namespace pfact
