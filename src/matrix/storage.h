#pragma once
// The storage-backend concept shared by the elimination engines.
//
// The paper's reduction matrices A_C are block-banded and overwhelmingly
// zero, so the factorization drivers are generic over *how* a matrix is
// stored: dense row-major (`Matrix<T>`) or compressed sparse rows
// (`sparse::SparseMatrix<T>`). A storage backend exposes the exact row
// operations Gaussian elimination and Givens QR are built from — nothing
// else — so an engine instantiated over either backend executes the same
// field-operation sequence and produces bit-equal pivot decisions
// (tests/diff/test_differential_sparse.cpp is the proof harness).
//
// Contract notes beyond the syntactic requirements:
//   * get(i, j) returns the stored value, or an exact field zero for an
//     absent sparse entry. References returned by get() may be invalidated
//     by any mutating call.
//   * row_axpy(i, k, f) performs the elimination row update
//       a(i, k) = 0;  a(i, j) -= f * a(k, j)  for all j > k
//     with the same field-operation order as the dense loop, so results
//     agree bit for bit across backends. It returns the number of scalar
//     multiply-subtract operations actually executed (dense: cols-k-1;
//     sparse: source-row entries right of k), which feeds the
//     row-update-elems counter.
//   * set(i, j, 0) erases a sparse entry; backends never surface a stored
//     explicit zero through get() that is_zero() would not accept.

#include <concepts>
#include <cstddef>

namespace pfact {

template <class S>
concept MatrixStorage = requires(S& m, const S& c, std::size_t i,
                                 const typename S::value_type& v) {
  typename S::value_type;
  { c.rows() } -> std::convertible_to<std::size_t>;
  { c.cols() } -> std::convertible_to<std::size_t>;
  {
    c.get(i, i)
  } -> std::convertible_to<const typename S::value_type&>;
  m.set(i, i, v);
  m.swap_rows(i, i);
  m.cycle_row_up(i, i);
  { m.row_axpy(i, i, v) } -> std::convertible_to<std::size_t>;
};

// Givens QR additionally rotates row pairs in place.
template <class S>
concept RotatableStorage =
    MatrixStorage<S> && requires(S& m, std::size_t i,
                                 const typename S::value_type& v) {
      m.rotate_rows(i, i, v, v);
    };

// Optional capability: the backend can name, per column, an exclusive upper
// bound on the rows that may hold a stored entry there (rows at or beyond
// the bound are structurally zero). The elimination engines clip their
// column scans to the bound — the visited nonzero rows, and therefore every
// field operation, are unchanged; only guaranteed-zero tail rows are
// skipped. Dense storage has no useful bound and does not model this.
template <class S>
concept ColBoundedStorage = requires(const S& c, std::size_t i) {
  { c.col_scan_bound(i) } -> std::convertible_to<std::size_t>;
};

// Identifies the serialization family (and the checkpoint field-tag
// namespace) a storage type belongs to; specialized alongside each backend.
template <class S>
struct is_sparse_storage : std::false_type {};

template <class S>
inline constexpr bool is_sparse_storage_v = is_sparse_storage<S>::value;

}  // namespace pfact
