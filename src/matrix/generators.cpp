#include "matrix/generators.h"

#include <algorithm>
#include <cmath>

namespace pfact::gen {

namespace {

std::mt19937_64 make_rng(std::uint64_t seed) { return std::mt19937_64{seed}; }

}  // namespace

Matrix<double> random_general(std::size_t n, std::uint64_t seed) {
  auto rng = make_rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
  return a;
}

Matrix<double> random_nonsingular(std::size_t n, std::uint64_t seed) {
  auto rng = make_rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_real_distribution<double> diag(0.5, 1.5);
  std::bernoulli_distribution coin(0.5);
  Matrix<double> l = Matrix<double>::identity(n);
  Matrix<double> u(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    u(i, i) = (coin(rng) ? 1.0 : -1.0) * diag(rng);
    for (std::size_t j = 0; j < i; ++j) l(i, j) = dist(rng);
    for (std::size_t j = i + 1; j < n; ++j) u(i, j) = dist(rng);
  }
  Matrix<double> a = l * u;
  // Random row shuffle keeps nonsingularity, destroys triangular structure.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  std::shuffle(perm.begin(), perm.end(), rng);
  return Permutation(perm).apply_rows(a);
}

Matrix<double> random_diagonally_dominant(std::size_t n, std::uint64_t seed) {
  auto rng = make_rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      a(i, j) = dist(rng);
      off += std::fabs(a(i, j));
    }
    a(i, i) = (dist(rng) < 0 ? -1.0 : 1.0) * (off + 1.0);
  }
  return a;
}

Matrix<double> random_spd(std::size_t n, std::uint64_t seed) {
  Matrix<double> b = random_general(n, seed);
  Matrix<double> a = b.transposed() * b;
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

Matrix<double> hilbert(std::size_t n) {
  Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = 1.0 / static_cast<double>(i + j + 1);
  return a;
}

Matrix<numeric::Rational> hilbert_exact(std::size_t n) {
  Matrix<numeric::Rational> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = numeric::Rational(1, static_cast<long long>(i + j + 1));
  return a;
}

Matrix<numeric::Rational> random_integer_exact(std::size_t n, int range,
                                               std::uint64_t seed) {
  auto rng = make_rng(seed);
  std::uniform_int_distribution<int> dist(-range, range);
  Matrix<numeric::Rational> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
  return a;
}

Matrix<numeric::Rational> random_nonsingular_exact(std::size_t n, int range,
                                                   std::uint64_t seed) {
  // Rejection sampling on exact determinant; random integer matrices are
  // singular with vanishing probability, so this terminates fast.
  for (std::uint64_t attempt = 0;; ++attempt) {
    Matrix<numeric::Rational> a =
        random_integer_exact(n, range, seed + attempt * 7919);
    // Exact determinant via fraction-free elimination on a copy.
    Matrix<numeric::Rational> m = a;
    numeric::Rational det(1);
    bool singular = false;
    for (std::size_t k = 0; k < n && !singular; ++k) {
      std::size_t piv = k;
      while (piv < n && m(piv, k).is_zero()) ++piv;
      if (piv == n) {
        singular = true;
        break;
      }
      if (piv != k) {
        m.swap_rows(piv, k);
        det = -det;
      }
      det *= m(k, k);
      for (std::size_t i = k + 1; i < n; ++i) {
        numeric::Rational f = m(i, k) / m(k, k);
        for (std::size_t j = k; j < n; ++j) m(i, j) -= f * m(k, j);
      }
    }
    if (!singular && !det.is_zero()) return a;
  }
}

Matrix<double> nonsingular_with_singular_minor(std::size_t n) {
  // [0 1; 1 0] block in the top corner, identity elsewhere: leading 1x1
  // minor is zero, so plain GE fails but any pivoting variant succeeds.
  Matrix<double> a = Matrix<double>::identity(n);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  return a;
}

Matrix<double> graded(std::size_t n, double ratio) {
  Matrix<double> a(n, n);
  double scale = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = scale / static_cast<double>(1 + ((i * 31 + j * 17) % 7));
    a(i, i) = 2.0 * scale;
    scale *= ratio;
  }
  return a;
}

Matrix<double> wilkinson_growth(std::size_t n) {
  Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) a(i, j) = -1.0;
    a(i, i) = 1.0;
    a(i, n - 1) = 1.0;
  }
  return a;
}

}  // namespace pfact::gen
