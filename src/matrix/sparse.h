#pragma once
// Sparse matrix backend: triplet builder -> immutable CSR -> mutable
// elimination workspace.
//
// The NANDCVP reduction matrices A_C are block-banded with O(1) entries per
// row, yet the dense backend stores and eliminates n^2 scalars — capping
// circuit size and dominating checkpoint bytes. This backend stores only
// the nonzeros:
//
//   TripletBuilder<T>  — unordered (row, col, value) accumulation with
//                        duplicate coalescing, the form gadget planting
//                        naturally produces (entries sum per position).
//   CsrMatrix<T>       — immutable compressed sparse rows with the full
//                        invariant set (monotone row pointers, per-row
//                        strictly increasing in-range columns, no stored
//                        zeros); the interchange/checkpoint format.
//   SparseMatrix<T>    — per-row sorted entry lists, the mutable workspace
//                        implementing the MatrixStorage concept
//                        (matrix/storage.h) the elimination engines are
//                        generic over.
//
// Bit-equality contract: every arithmetic expression here mirrors the dense
// engine's operation order exactly (absent entries participate as explicit
// field zeros where the dense loop would touch a stored zero), so a sparse
// run decodes the same booleans and emits event-for-event identical pivot
// traces. Entries whose computed value is an exact field zero are dropped
// rather than stored — is_zero() semantics make that invisible to pivot
// scans, and the differential harness (tests/diff/, tests/matrix/) holds
// the two backends to it across the whole substrate ladder.

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "matrix/matrix.h"
#include "matrix/storage.h"
#include "numeric/field.h"
#include "obs/counters.h"

namespace pfact::sparse {

// Structural CSR validation shared by CsrMatrix::from_parts and the
// checkpoint codec; returns an empty string when the invariants hold, else
// a description of the first violation. Values are checked separately
// (stored zeros are a *value* invariant and need the field's is_zero).
std::string csr_invariant_violation(std::size_t rows, std::size_t cols,
                                    const std::vector<std::size_t>& row_ptr,
                                    const std::vector<std::size_t>& col_idx);

template <class T>
class SparseMatrix;

// Immutable CSR: row_ptr_ has rows()+1 monotone offsets into col_idx_/
// values_, each row's columns strictly increasing and in range, no entry
// holding an exact field zero.
template <class T>
class CsrMatrix {
 public:
  using value_type = T;

  CsrMatrix() : row_ptr_(1, 0) {}
  CsrMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  // Adopts pre-built CSR arrays after validating every invariant; throws
  // std::invalid_argument naming the violated one. This is the only door
  // into a CsrMatrix that does not construct the arrays itself, so a
  // CsrMatrix that exists is canonical by construction.
  static CsrMatrix from_parts(std::size_t rows, std::size_t cols,
                              std::vector<std::size_t> row_ptr,
                              std::vector<std::size_t> col_idx,
                              std::vector<T> values) {
    const std::string why = csr_invariant_violation(rows, cols, row_ptr,
                                                    col_idx);
    if (!why.empty()) throw std::invalid_argument("CsrMatrix: " + why);
    if (values.size() != col_idx.size())
      throw std::invalid_argument("CsrMatrix: values/col_idx size mismatch");
    for (const T& v : values)
      if (is_zero(v))
        throw std::invalid_argument("CsrMatrix: stored exact zero");
    CsrMatrix out;
    out.rows_ = rows;
    out.cols_ = cols;
    out.row_ptr_ = std::move(row_ptr);
    out.col_idx_ = std::move(col_idx);
    out.values_ = std::move(values);
    return out;
  }

  static CsrMatrix from_dense(const Matrix<T>& a) {
    CsrMatrix out(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        if (is_zero(a(i, j))) continue;
        out.col_idx_.push_back(j);
        out.values_.push_back(a(i, j));
      }
      out.row_ptr_[i + 1] = out.col_idx_.size();
    }
    return out;
  }

  Matrix<T> to_dense() const {
    Matrix<T> out(rows_, cols_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p)
        out(i, col_idx_[p]) = values_[p];
    return out;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  // Stored value at (i, j), or an exact field zero (binary search in row i).
  const T& at(std::size_t i, std::size_t j) const {
    if (i >= rows_ || j >= cols_)
      throw std::out_of_range("CsrMatrix: index out of range");
    const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(
                                              row_ptr_[i]);
    const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(
                                            row_ptr_[i + 1]);
    const auto it = std::lower_bound(begin, end, j);
    if (it != end && *it == j)
      return values_[static_cast<std::size_t>(it - col_idx_.begin())];
    static const T kZero(0);
    return kZero;
  }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<T>& values() const { return values_; }

  template <class U>
  CsrMatrix<U> cast() const {
    CsrMatrix<U> out(rows_, cols_);
    out.row_ptr_ = row_ptr_;
    out.col_idx_ = col_idx_;
    out.values_.reserve(values_.size());
    for (const T& v : values_) out.values_.push_back(U(v));
    return out;
  }

  friend bool operator==(const CsrMatrix& a, const CsrMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.row_ptr_ == b.row_ptr_ && a.col_idx_ == b.col_idx_ &&
           a.values_ == b.values_;
  }

 private:
  template <class U>
  friend class CsrMatrix;
  template <class U>
  friend class TripletBuilder;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<T> values_;
};

// Accumulates (row, col, value) triplets in any order, with duplicates; the
// gadget planting in core/assembler.cpp emits exactly this shape (block
// overlaps sum at shared positions). build() sorts, coalesces duplicates by
// field addition in emission order, drops exact-zero results, and returns
// the canonical CSR.
template <class T>
class TripletBuilder {
 public:
  TripletBuilder(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t pending() const { return triplets_.size(); }

  void add(std::size_t row, std::size_t col, const T& value) {
    if (row >= rows_ || col >= cols_)
      throw std::out_of_range("TripletBuilder: index out of range");
    triplets_.push_back(Triplet{row, col, value});
  }

  CsrMatrix<T> build() const {
    std::vector<Triplet> sorted = triplets_;
    // Stable: duplicates coalesce in emission order, so the sums reproduce
    // the dense `a(i, j) += v` accumulation bit for bit.
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Triplet& a, const Triplet& b) {
                       return a.row != b.row ? a.row < b.row : a.col < b.col;
                     });
    CsrMatrix<T> out(rows_, cols_);
    std::size_t coalesced = 0;
    std::size_t i = 0;
    std::size_t row = 0;
    while (i < sorted.size()) {
      T sum = sorted[i].value;
      std::size_t j = i + 1;
      while (j < sorted.size() && sorted[j].row == sorted[i].row &&
             sorted[j].col == sorted[i].col) {
        sum += sorted[j].value;
        ++coalesced;
        ++j;
      }
      while (row < sorted[i].row) out.row_ptr_[++row] = out.col_idx_.size();
      if (!is_zero(sum)) {
        out.col_idx_.push_back(sorted[i].col);
        out.values_.push_back(sum);
      } else {
        PFACT_COUNT(kSparseZeroDrops);
      }
      i = j;
    }
    while (row < rows_) out.row_ptr_[++row] = out.col_idx_.size();
    PFACT_COUNT(kSparseBuilds);
    PFACT_COUNT_N(kSparseTripletsCoalesced, coalesced);
    for (std::size_t r = 0; r < rows_; ++r)
      PFACT_HISTO(kSparseRowNnz, out.row_ptr_[r + 1] - out.row_ptr_[r]);
    return out;
  }

 private:
  struct Triplet {
    std::size_t row;
    std::size_t col;
    T value;
  };

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Triplet> triplets_;
};

// Mutable sparse workspace: one sorted (col, value) list per row. Row
// interchanges and GEMS circular shifts move whole row lists (O(rows moved)
// pointer swaps, never O(cols)); the elimination row update merges two
// sorted lists. Implements MatrixStorage + RotatableStorage.
template <class T>
class SparseMatrix {
 public:
  using value_type = T;

  struct Entry {
    std::size_t col;
    T value;

    friend bool operator==(const Entry& a, const Entry& b) {
      return a.col == b.col && a.value == b.value;
    }
  };

  SparseMatrix() = default;
  SparseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows), col_bound_(cols, 0) {}

  explicit SparseMatrix(const CsrMatrix<T>& csr)
      : rows_(csr.rows()),
        cols_(csr.cols()),
        data_(csr.rows()),
        col_bound_(csr.cols(), 0) {
    for (std::size_t i = 0; i < rows_; ++i) {
      const std::size_t b = csr.row_ptr()[i];
      const std::size_t e = csr.row_ptr()[i + 1];
      data_[i].reserve(e - b);
      for (std::size_t p = b; p < e; ++p) {
        data_[i].push_back(Entry{csr.col_idx()[p], csr.values()[p]});
        bump_bound(csr.col_idx()[p], i);
      }
    }
  }

  static SparseMatrix from_dense(const Matrix<T>& a) {
    return SparseMatrix(CsrMatrix<T>::from_dense(a));
  }

  CsrMatrix<T> to_csr() const {
    CsrMatrix<T> out(rows_, cols_);
    std::vector<std::size_t> row_ptr(rows_ + 1, 0);
    std::vector<std::size_t> col_idx;
    std::vector<T> values;
    col_idx.reserve(nnz());
    values.reserve(nnz());
    for (std::size_t i = 0; i < rows_; ++i) {
      for (const Entry& e : data_[i]) {
        col_idx.push_back(e.col);
        values.push_back(e.value);
      }
      row_ptr[i + 1] = col_idx.size();
    }
    return CsrMatrix<T>::from_parts(rows_, cols_, std::move(row_ptr),
                                    std::move(col_idx), std::move(values));
  }

  Matrix<T> to_dense() const {
    Matrix<T> out(rows_, cols_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (const Entry& e : data_[i]) out(i, e.col) = e.value;
    return out;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const {
    std::size_t n = 0;
    for (const auto& row : data_) n += row.size();
    return n;
  }
  std::size_t row_nnz(std::size_t i) const { return data_[i].size(); }

  const T& get(std::size_t i, std::size_t j) const {
    const auto& row = data_[i];
    const auto it = find_col(row, j);
    if (it != row.end() && it->col == j) return it->value;
    static const T kZero(0);
    return kZero;
  }

  void set(std::size_t i, std::size_t j, const T& v) {
    auto& row = data_[i];
    const auto it = find_col_mut(row, j);
    if (it != row.end() && it->col == j) {
      if (is_zero(v)) {
        row.erase(it);
      } else {
        it->value = v;
      }
    } else if (!is_zero(v)) {
      row.insert(it, Entry{j, v});
      bump_bound(j, i);
    }
  }

  void swap_rows(std::size_t a, std::size_t b) {
    if (a == b) return;
    data_[a].swap(data_[b]);
    const std::size_t down = std::max(a, b);
    for (const Entry& e : data_[down]) bump_bound(e.col, down);
  }

  // Moves row `from` to position `to` (to <= from), shifting the rows in
  // between down by one — the GEMS circular-shift primitive, as a rotation
  // of the row lists.
  void cycle_row_up(std::size_t to, std::size_t from) {
    if (from <= to) return;
    std::rotate(data_.begin() + static_cast<std::ptrdiff_t>(to),
                data_.begin() + static_cast<std::ptrdiff_t>(from),
                data_.begin() + static_cast<std::ptrdiff_t>(from) + 1);
    // Rows to..from-1 moved down one position; re-ratchet their columns.
    for (std::size_t r = to + 1; r <= from; ++r)
      for (const Entry& e : data_[r]) bump_bound(e.col, r);
  }

  // Elimination row update: a(i, k) = 0; a(i, j) -= f * a(k, j) for j > k.
  // Merged walk over the two sorted rows; where row i has no entry the
  // dense loop computes `0 - f * a(k, j)` on a stored zero, so the merge
  // uses the identical expression for fill-ins. Exact-zero results are
  // dropped (counted), created entries are counted as fill-in. Returns the
  // scalar multiply-subtract count (one per source entry right of k).
  std::size_t row_axpy(std::size_t i, std::size_t k, const T& f) {
    const std::vector<Entry>& src = data_[k];
    const std::vector<Entry>& dst = data_[i];
    std::vector<Entry> out;
    out.reserve(dst.size() + src.size());

    auto di = dst.begin();
    // Columns <= k of row i pass through, except column k itself which the
    // update zeroes.
    while (di != dst.end() && di->col <= k) {
      if (di->col != k) out.push_back(*di);
      ++di;
    }
    auto si = find_col(src, k);
    while (si != src.end() && si->col <= k) ++si;

    std::size_t fill = 0;
    std::size_t ops = 0;
    while (di != dst.end() || si != src.end()) {
      if (si == src.end() || (di != dst.end() && di->col < si->col)) {
        out.push_back(*di);
        ++di;
      } else if (di == dst.end() || si->col < di->col) {
        const T v = T(0) - f * si->value;
        ++ops;
        if (is_zero(v)) {
          PFACT_COUNT(kSparseZeroDrops);
        } else {
          out.push_back(Entry{si->col, v});
          ++fill;
        }
        ++si;
      } else {
        const T v = di->value - f * si->value;
        ++ops;
        if (is_zero(v)) {
          PFACT_COUNT(kSparseZeroDrops);
        } else {
          out.push_back(Entry{di->col, v});
        }
        ++di;
        ++si;
      }
    }
    PFACT_COUNT_N(kSparseFillIns, fill);
    data_[i] = std::move(out);
    for (const Entry& e : data_[i]) bump_bound(e.col, i);
    return ops;
  }

  // Givens rotation of rows i and j: at every column in either row,
  //   top' = c*top + s*bot,  bot' = c*bot - s*top
  // with absent entries participating as explicit field zeros — the same
  // expressions the dense rotation evaluates on stored zeros.
  void rotate_rows(std::size_t i, std::size_t j, const T& c, const T& s) {
    const std::vector<Entry>& ri = data_[i];
    const std::vector<Entry>& rj = data_[j];
    std::vector<Entry> out_i;
    std::vector<Entry> out_j;
    out_i.reserve(ri.size() + rj.size());
    out_j.reserve(ri.size() + rj.size());
    auto ii = ri.begin();
    auto ji = rj.begin();
    while (ii != ri.end() || ji != rj.end()) {
      std::size_t col;
      T top(0);
      T bot(0);
      if (ji == rj.end() || (ii != ri.end() && ii->col < ji->col)) {
        col = ii->col;
        top = ii->value;
        ++ii;
      } else if (ii == ri.end() || ji->col < ii->col) {
        col = ji->col;
        bot = ji->value;
        ++ji;
      } else {
        col = ii->col;
        top = ii->value;
        bot = ji->value;
        ++ii;
        ++ji;
      }
      const T nt = c * top + s * bot;
      const T nb = c * bot - s * top;
      if (!is_zero(nt)) {
        out_i.push_back(Entry{col, nt});
      } else {
        PFACT_COUNT(kSparseZeroDrops);
      }
      if (!is_zero(nb)) {
        out_j.push_back(Entry{col, nb});
      } else {
        PFACT_COUNT(kSparseZeroDrops);
      }
    }
    data_[i] = std::move(out_i);
    data_[j] = std::move(out_j);
    for (const Entry& e : data_[i]) bump_bound(e.col, i);
    for (const Entry& e : data_[j]) bump_bound(e.col, j);
  }

  // Exclusive upper bound on the rows that may hold a stored entry in
  // column c (rows at or beyond the bound are structurally zero there). A
  // conservative high-water mark: structural growth and downward row moves
  // ratchet it up, erasures never shrink it — so clipping a column scan to
  // the bound skips only rows both backends would treat as exact-zero
  // no-ops. This is what makes below-pivot scans O(band) instead of O(n)
  // on the paper's block-banded reductions (ColBoundedStorage in
  // matrix/storage.h).
  std::size_t col_scan_bound(std::size_t c) const { return col_bound_[c]; }

  template <class U>
  SparseMatrix<U> cast() const {
    SparseMatrix<U> out(rows_, cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      out.data_[i].reserve(data_[i].size());
      for (const Entry& e : data_[i])
        out.data_[i].push_back(
            typename SparseMatrix<U>::Entry{e.col, U(e.value)});
    }
    out.col_bound_ = col_bound_;
    return out;
  }

  const std::vector<Entry>& row(std::size_t i) const { return data_[i]; }

  friend bool operator==(const SparseMatrix& a, const SparseMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  template <class U>
  friend class SparseMatrix;

  static typename std::vector<Entry>::const_iterator find_col(
      const std::vector<Entry>& row, std::size_t j) {
    return std::lower_bound(row.begin(), row.end(), j,
                            [](const Entry& e, std::size_t col) {
                              return e.col < col;
                            });
  }
  static typename std::vector<Entry>::iterator find_col_mut(
      std::vector<Entry>& row, std::size_t j) {
    return std::lower_bound(row.begin(), row.end(), j,
                            [](const Entry& e, std::size_t col) {
                              return e.col < col;
                            });
  }

  void bump_bound(std::size_t c, std::size_t r) {
    if (col_bound_[c] < r + 1) col_bound_[c] = r + 1;
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::vector<Entry>> data_;
  // Per-column exclusive row bound (see col_scan_bound). A cache over
  // data_: deliberately excluded from operator== and never serialized.
  std::vector<std::size_t> col_bound_;
};

}  // namespace pfact::sparse

namespace pfact {

template <class T>
struct is_sparse_storage<sparse::SparseMatrix<T>> : std::true_type {};

}  // namespace pfact
