#include "matrix/sparse.h"

#include <cstddef>
#include <string>
#include <vector>

namespace pfact::sparse {

std::string csr_invariant_violation(std::size_t rows, std::size_t cols,
                                    const std::vector<std::size_t>& row_ptr,
                                    const std::vector<std::size_t>& col_idx) {
  if (row_ptr.size() != rows + 1)
    return "row_ptr size " + std::to_string(row_ptr.size()) +
           " != rows + 1 = " + std::to_string(rows + 1);
  if (row_ptr.front() != 0)
    return "row_ptr[0] = " + std::to_string(row_ptr.front()) + " != 0";
  for (std::size_t i = 0; i < rows; ++i) {
    if (row_ptr[i] > row_ptr[i + 1])
      return "row_ptr decreases at row " + std::to_string(i);
  }
  if (row_ptr.back() != col_idx.size())
    return "row_ptr[rows] = " + std::to_string(row_ptr.back()) +
           " != nnz = " + std::to_string(col_idx.size());
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      if (col_idx[p] >= cols)
        return "column " + std::to_string(col_idx[p]) + " out of range in row " +
               std::to_string(i);
      if (p > row_ptr[i] && col_idx[p - 1] >= col_idx[p])
        return "columns not strictly increasing in row " + std::to_string(i);
    }
  }
  return "";
}

}  // namespace pfact::sparse
