#pragma once
// A minimal text format for NANDCVP instances, so reductions can be driven
// from files (see examples/compile_circuit.cpp):
//
//     # comment
//     inputs 2
//     nand 0 1        # creates node 2
//     nand 2 2        # creates node 3; the last gate is the output
//
// An instance file may end with an assignment line:
//
//     assign 1 0
//
// Whitespace-separated; node indices follow the library convention
// (0..k-1 inputs, then gates in order).

#include <iosfwd>
#include <optional>
#include <string>

#include "circuit/circuit.h"

namespace pfact::circuit {

struct ParsedInstance {
  Circuit circuit;
  // Present iff the file contained an `assign` line.
  std::optional<std::vector<bool>> inputs;
};

// Throws std::invalid_argument with a line-numbered message on bad input.
ParsedInstance parse_circuit_text(const std::string& text);

// Inverse of the parser (assignment included when provided).
std::string circuit_to_text(const Circuit& c,
                            const std::vector<bool>* inputs = nullptr);

}  // namespace pfact::circuit
