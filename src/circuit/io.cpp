#include "circuit/io.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pfact::circuit {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw std::invalid_argument("circuit text, line " + std::to_string(line) +
                              ": " + msg);
}

}  // namespace

ParsedInstance parse_circuit_text(const std::string& text) {
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  bool have_inputs = false;
  std::size_t num_inputs = 0;
  std::vector<Gate> gates;
  std::optional<std::vector<bool>> assign;
  while (std::getline(in, raw)) {
    ++lineno;
    // Tolerate CRLF line endings: getline leaves the '\r' attached to the
    // last token, which would otherwise break keyword matching.
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    // Strip comments.
    auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    std::string word;
    if (!(ls >> word)) continue;  // blank line
    if (word == "inputs") {
      if (have_inputs) fail(lineno, "duplicate 'inputs'");
      if (!(ls >> num_inputs) || num_inputs == 0)
        fail(lineno, "expected positive input count");
      have_inputs = true;
    } else if (word == "nand") {
      if (!have_inputs) fail(lineno, "'nand' before 'inputs'");
      std::size_t a = 0, b = 0;
      if (!(ls >> a >> b)) fail(lineno, "expected two node indices");
      std::size_t node = num_inputs + gates.size();
      if (a >= node || b >= node)
        fail(lineno, "gate reads a node that does not exist yet");
      gates.push_back({a, b});
    } else if (word == "assign") {
      if (!have_inputs) fail(lineno, "'assign' before 'inputs'");
      if (assign.has_value()) fail(lineno, "duplicate 'assign'");
      std::vector<bool> bits;
      int v = 0;
      while (ls >> v) {
        if (v != 0 && v != 1) fail(lineno, "assignment bits must be 0/1");
        bits.push_back(v == 1);
      }
      if (bits.size() != num_inputs)
        fail(lineno, "assignment arity mismatch");
      assign = std::move(bits);
    } else {
      fail(lineno, "unknown directive '" + word + "'");
    }
    // The assign branch reads until extraction fails, which leaves the
    // stream in a failed state; clear it so trailing garbage (e.g.
    // "assign 1 0 junk") is still caught.
    ls.clear();
    std::string extra;
    if (ls >> extra) fail(lineno, "trailing token '" + extra + "'");
  }
  // An empty file has lineno == 0; report line 1 so the message always
  // names a real line.
  if (!have_inputs) fail(std::max<std::size_t>(lineno, 1), "missing 'inputs'");
  if (gates.empty()) fail(std::max<std::size_t>(lineno, 1),
                          "circuit has no gates");
  ParsedInstance out{Circuit(num_inputs, std::move(gates)), std::move(assign)};
  return out;
}

std::string circuit_to_text(const Circuit& c,
                            const std::vector<bool>* inputs) {
  std::ostringstream os;
  os << "inputs " << c.num_inputs() << "\n";
  for (std::size_t g = 0; g < c.num_gates(); ++g) {
    os << "nand " << c.gate(g).in0 << " " << c.gate(g).in1 << "  # node "
       << c.gate_node(g) << "\n";
  }
  if (inputs != nullptr) {
    os << "assign";
    for (bool b : *inputs) os << " " << (b ? 1 : 0);
    os << "\n";
  }
  return os.str();
}

}  // namespace pfact::circuit
