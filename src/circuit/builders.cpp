#include "circuit/builders.h"

#include <random>
#include <stdexcept>

namespace pfact::circuit {

std::size_t Builder::input(std::size_t i) const {
  if (i >= num_inputs_) throw std::out_of_range("Builder: input index");
  return i;
}

std::size_t Builder::nand(std::size_t a, std::size_t b) {
  std::size_t node = num_inputs_ + gates_.size();
  if (a >= node || b >= node)
    throw std::invalid_argument("Builder: forward reference");
  gates_.push_back({a, b});
  return node;
}

Circuit Builder::build(std::size_t out) {
  if (gates_.empty()) throw std::logic_error("Builder: empty circuit");
  if (out != num_inputs_ + gates_.size() - 1) {
    // Bring `out` to the last position by double negation (identity).
    out = not_gate(not_gate(out));
  }
  return Circuit(num_inputs_, gates_);
}

Circuit xor_circuit() {
  Builder b(2);
  return b.build(b.xor_gate(b.input(0), b.input(1)));
}

Circuit parity_circuit(std::size_t k) {
  if (k < 2) throw std::invalid_argument("parity: need >= 2 inputs");
  Builder b(k);
  std::size_t acc = b.xor_gate(b.input(0), b.input(1));
  for (std::size_t i = 2; i < k; ++i) acc = b.xor_gate(acc, b.input(i));
  return b.build(acc);
}

Circuit majority3_circuit() {
  Builder b(3);
  std::size_t ab = b.and_gate(b.input(0), b.input(1));
  std::size_t ac = b.and_gate(b.input(0), b.input(2));
  std::size_t bc = b.and_gate(b.input(1), b.input(2));
  return b.build(b.or_gate(b.or_gate(ab, ac), bc));
}

Circuit adder_carry_circuit(std::size_t bits) {
  if (bits == 0) throw std::invalid_argument("adder: zero width");
  Builder b(2 * bits);
  std::size_t carry = 0;
  bool have_carry = false;
  for (std::size_t i = 0; i < bits; ++i) {
    std::size_t ai = b.input(i);
    std::size_t bi = b.input(bits + i);
    std::size_t g = b.and_gate(ai, bi);           // generate
    std::size_t p = b.xor_gate(ai, bi);           // propagate
    if (!have_carry) {
      carry = g;
      have_carry = true;
    } else {
      carry = b.or_gate(g, b.and_gate(p, carry));
    }
  }
  return b.build(carry);
}

Circuit comparator_circuit(std::size_t bits) {
  if (bits == 0) throw std::invalid_argument("comparator: zero width");
  Builder b(2 * bits);
  // gt_i = a_i > b_i at bit i; eq_i = a_i == b_i; scan from LSB up:
  // gt = gt_i OR (eq_i AND gt_below).
  std::size_t gt = 0;
  bool have = false;
  for (std::size_t i = 0; i < bits; ++i) {
    std::size_t ai = b.input(i);
    std::size_t bi = b.input(bits + i);
    std::size_t gti = b.and_gate(ai, b.not_gate(bi));
    std::size_t eqi = b.not_gate(b.xor_gate(ai, bi));
    if (!have) {
      gt = gti;
      have = true;
    } else {
      gt = b.or_gate(gti, b.and_gate(eqi, gt));
    }
  }
  return b.build(gt);
}

Circuit deep_chain_circuit(std::size_t depth) {
  if (depth == 0) throw std::invalid_argument("deep_chain: zero depth");
  Builder b(2);
  std::size_t acc = b.nand(b.input(0), b.input(1));
  for (std::size_t i = 1; i < depth; ++i) {
    acc = b.nand(acc, i % 2 == 0 ? b.input(0) : b.input(1));
  }
  return b.build(acc);
}

Circuit random_circuit(std::size_t num_inputs, std::size_t num_gates,
                       std::uint64_t seed) {
  if (num_inputs == 0 || num_gates == 0)
    throw std::invalid_argument("random_circuit: empty");
  std::mt19937_64 rng(seed);
  std::vector<Gate> gates;
  gates.reserve(num_gates);
  for (std::size_t g = 0; g < num_gates; ++g) {
    std::uniform_int_distribution<std::size_t> pick(0, num_inputs + g - 1);
    gates.push_back({pick(rng), pick(rng)});
  }
  return Circuit(num_inputs, std::move(gates));
}

}  // namespace pfact::circuit
