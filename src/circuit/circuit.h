#pragma once
// Boolean circuits over fan-in-2 NAND gates — the source problem of every
// reduction in the paper (NANDCVP, log-space complete for P, with the
// standard fan-out <= 2 restriction of Section 2).
//
// Node numbering: nodes 0..k-1 are the circuit inputs; node k+i is gate i.
// Gates are listed in topological order (each gate reads strictly earlier
// nodes). The circuit output is the value of the last gate.

#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace pfact::circuit {

struct Gate {
  std::size_t in0 = 0;  // node index
  std::size_t in1 = 0;  // node index
};

class Circuit {
 public:
  Circuit(std::size_t num_inputs, std::vector<Gate> gates);

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t num_gates() const { return gates_.size(); }
  std::size_t num_nodes() const { return num_inputs_ + gates_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(std::size_t g) const { return gates_[g]; }

  // Node index of gate g / of input i.
  std::size_t gate_node(std::size_t g) const { return num_inputs_ + g; }
  bool is_input_node(std::size_t node) const { return node < num_inputs_; }

  // Evaluates every node; result[v] is the value of node v.
  std::vector<bool> evaluate_all(const std::vector<bool>& inputs) const;
  // The circuit output: value of the last gate.
  bool evaluate(const std::vector<bool>& inputs) const;

  // fanout(v) = number of gate inputs fed by node v.
  std::vector<std::size_t> fanouts() const;
  std::size_t max_fanout() const;
  bool has_fanout_at_most(std::size_t f) const;

  std::string to_string() const;

 private:
  std::size_t num_inputs_;
  std::vector<Gate> gates_;
};

// A NANDCVP instance: a circuit together with its input assignment.
struct CvpInstance {
  Circuit circuit;
  std::vector<bool> inputs;

  bool expected() const { return circuit.evaluate(inputs); }
};

// Result of the fan-out reduction: the rewritten circuit plus, for each new
// input, the original input it replicates (inputs are duplicated freely by
// the log-space reduction; gates are duplicated bodily, cf. the O(S^2) size
// remark in Section 2 of the paper).
struct FanoutTwoResult {
  Circuit circuit;
  std::vector<std::size_t> input_origin;

  std::vector<bool> map_inputs(const std::vector<bool>& orig) const {
    std::vector<bool> out(input_origin.size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = orig[input_origin[i]];
    return out;
  }
};

// Rewrites `c` so that every node feeds at most two gate input wires.
// High-fanout gates are replaced by enough verbatim copies (each physical
// node supplies two wires); demand propagates toward the inputs, which are
// replicated as fresh input nodes. The computed function is preserved:
// for any x, result.circuit.evaluate(result.map_inputs(x)) == c.evaluate(x).
FanoutTwoResult with_fanout_two(const Circuit& c);

// Converts an instance wholesale.
CvpInstance with_fanout_two(const CvpInstance& inst);

}  // namespace pfact::circuit
