#include "circuit/circuit.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pfact::circuit {

Circuit::Circuit(std::size_t num_inputs, std::vector<Gate> gates)
    : num_inputs_(num_inputs), gates_(std::move(gates)) {
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    std::size_t node = num_inputs_ + g;
    if (gates_[g].in0 >= node || gates_[g].in1 >= node) {
      throw std::invalid_argument(
          "Circuit: gate inputs must reference earlier nodes");
    }
  }
}

std::vector<bool> Circuit::evaluate_all(
    const std::vector<bool>& inputs) const {
  if (inputs.size() != num_inputs_)
    throw std::invalid_argument("Circuit: wrong input arity");
  std::vector<bool> val(num_nodes());
  for (std::size_t i = 0; i < num_inputs_; ++i) val[i] = inputs[i];
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    val[num_inputs_ + g] = !(val[gates_[g].in0] && val[gates_[g].in1]);
  }
  return val;
}

bool Circuit::evaluate(const std::vector<bool>& inputs) const {
  if (gates_.empty()) throw std::logic_error("Circuit: no gates");
  return evaluate_all(inputs).back();
}

std::vector<std::size_t> Circuit::fanouts() const {
  std::vector<std::size_t> f(num_nodes(), 0);
  for (const auto& g : gates_) {
    ++f[g.in0];
    ++f[g.in1];
  }
  return f;
}

std::size_t Circuit::max_fanout() const {
  auto f = fanouts();
  return f.empty() ? 0 : *std::max_element(f.begin(), f.end());
}

bool Circuit::has_fanout_at_most(std::size_t fmax) const {
  return max_fanout() <= fmax;
}

FanoutTwoResult with_fanout_two(const Circuit& c) {
  // Pass 1 (reverse topological): how many physical copies of each node are
  // needed.  Each physical node supplies two output wires; a gate needing
  // `need` wires is materialized ceil(need/2) times, and every copy adds one
  // wire of demand per input occurrence.  Inputs are replicated as fresh
  // input nodes carrying the same value — free for the log-space reduction.
  const std::size_t n_in = c.num_inputs();
  const std::size_t n_nodes = c.num_nodes();
  std::vector<std::size_t> need(n_nodes, 0);
  std::vector<std::size_t> copies(n_nodes, 0);
  need[n_nodes - 1] = 1;  // the external output consumes one wire
  for (std::size_t g = c.num_gates(); g-- > 0;) {
    std::size_t node = n_in + g;
    copies[node] = std::max<std::size_t>(1, (need[node] + 1) / 2);
    need[c.gate(g).in0] += copies[node];
    need[c.gate(g).in1] += copies[node];
  }
  for (std::size_t i = 0; i < n_in; ++i) {
    copies[i] = std::max<std::size_t>(1, (need[i] + 1) / 2);
  }

  // Pass 2 (forward): materialize copies and route wires. For each logical
  // node we keep its physical ids and a wire cursor dispensing each id at
  // most twice.
  FanoutTwoResult out{Circuit(0, {}), {}};
  std::vector<std::vector<std::size_t>> phys(n_nodes);
  std::size_t next = 0;
  for (std::size_t i = 0; i < n_in; ++i) {
    for (std::size_t cpy = 0; cpy < copies[i]; ++cpy) {
      phys[i].push_back(next++);
      out.input_origin.push_back(i);
    }
  }
  const std::size_t new_inputs = next;
  std::vector<std::size_t> dispensed(n_nodes, 0);
  auto draw = [&](std::size_t logical) {
    std::size_t idx = dispensed[logical]++ / 2;
    return phys[logical][idx];
  };
  std::vector<Gate> new_gates;
  for (std::size_t g = 0; g < c.num_gates(); ++g) {
    std::size_t node = n_in + g;
    for (std::size_t cpy = 0; cpy < copies[node]; ++cpy) {
      Gate ng;
      ng.in0 = draw(c.gate(g).in0);
      ng.in1 = draw(c.gate(g).in1);
      new_gates.push_back(ng);
      phys[node].push_back(next++);
    }
  }
  out.circuit = Circuit(new_inputs, std::move(new_gates));
  return out;
}

CvpInstance with_fanout_two(const CvpInstance& inst) {
  FanoutTwoResult r = with_fanout_two(inst.circuit);
  return CvpInstance{r.circuit, r.map_inputs(inst.inputs)};
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << num_inputs_ << " inputs, " << gates_.size() << " gates\n";
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    os << "  n" << num_inputs_ + g << " = NAND(n" << gates_[g].in0 << ", n"
       << gates_[g].in1 << ")\n";
  }
  return os.str();
}

}  // namespace pfact::circuit
