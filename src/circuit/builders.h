#pragma once
// NAND-circuit builders: the workloads fed to the reductions.
//
// XOR is the paper's own running example (Figure 4); adders, comparators,
// parity chains and random circuits give the experiment suites breadth and
// depth (deep chains maximize the rounding-error amplification Section 4
// worries about).

#include <cstdint>

#include "circuit/circuit.h"

namespace pfact::circuit {

// Incremental NAND-circuit builder. Node handles returned by the methods
// can be combined freely; build() makes `out` the final gate (appending a
// double negation when needed so the output is the last gate, as Section 2
// assumes).
class Builder {
 public:
  explicit Builder(std::size_t num_inputs) : num_inputs_(num_inputs) {}

  std::size_t input(std::size_t i) const;
  std::size_t nand(std::size_t a, std::size_t b);
  std::size_t not_gate(std::size_t a) { return nand(a, a); }
  std::size_t and_gate(std::size_t a, std::size_t b) {
    return not_gate(nand(a, b));
  }
  std::size_t or_gate(std::size_t a, std::size_t b) {
    return nand(not_gate(a), not_gate(b));
  }
  std::size_t xor_gate(std::size_t a, std::size_t b) {
    std::size_t t = nand(a, b);
    return nand(nand(a, t), nand(b, t));
  }

  Circuit build(std::size_t out);

 private:
  std::size_t num_inputs_;
  std::vector<Gate> gates_;
};

// XOR(a, b) — the paper's Figure 4 workload. 2 inputs.
Circuit xor_circuit();

// Parity of k inputs (XOR chain). Depth Theta(k).
Circuit parity_circuit(std::size_t k);

// Majority of 3 inputs.
Circuit majority3_circuit();

// Carry-out of an n-bit ripple-carry adder; inputs are a_0..a_{n-1} then
// b_0..b_{n-1} (LSB first). 2n inputs, depth Theta(n).
Circuit adder_carry_circuit(std::size_t bits);

// "a > b" comparator on n-bit unsigned inputs, same input layout as adder.
Circuit comparator_circuit(std::size_t bits);

// A long alternating NAND chain: x -> NAND(x, x1) -> ... depth == `depth`.
// The adversarial workload for rounding-error accumulation.
Circuit deep_chain_circuit(std::size_t depth);

// Random DAG circuit: each gate reads two uniformly random earlier nodes.
Circuit random_circuit(std::size_t num_inputs, std::size_t num_gates,
                       std::uint64_t seed);

}  // namespace pfact::circuit
