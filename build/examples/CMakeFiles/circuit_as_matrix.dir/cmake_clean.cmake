file(REMOVE_RECURSE
  "CMakeFiles/circuit_as_matrix.dir/circuit_as_matrix.cpp.o"
  "CMakeFiles/circuit_as_matrix.dir/circuit_as_matrix.cpp.o.d"
  "circuit_as_matrix"
  "circuit_as_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_as_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
