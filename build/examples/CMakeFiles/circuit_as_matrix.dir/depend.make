# Empty dependencies file for circuit_as_matrix.
# This may be replaced when dependencies are built.
