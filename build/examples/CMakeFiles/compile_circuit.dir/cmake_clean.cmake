file(REMOVE_RECURSE
  "CMakeFiles/compile_circuit.dir/compile_circuit.cpp.o"
  "CMakeFiles/compile_circuit.dir/compile_circuit.cpp.o.d"
  "compile_circuit"
  "compile_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
