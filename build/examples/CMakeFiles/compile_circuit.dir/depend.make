# Empty dependencies file for compile_circuit.
# This may be replaced when dependencies are built.
