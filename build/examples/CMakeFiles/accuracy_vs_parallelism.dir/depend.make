# Empty dependencies file for accuracy_vs_parallelism.
# This may be replaced when dependencies are built.
