file(REMOVE_RECURSE
  "CMakeFiles/accuracy_vs_parallelism.dir/accuracy_vs_parallelism.cpp.o"
  "CMakeFiles/accuracy_vs_parallelism.dir/accuracy_vs_parallelism.cpp.o.d"
  "accuracy_vs_parallelism"
  "accuracy_vs_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_vs_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
