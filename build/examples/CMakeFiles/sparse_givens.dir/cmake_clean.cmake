file(REMOVE_RECURSE
  "CMakeFiles/sparse_givens.dir/sparse_givens.cpp.o"
  "CMakeFiles/sparse_givens.dir/sparse_givens.cpp.o.d"
  "sparse_givens"
  "sparse_givens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_givens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
