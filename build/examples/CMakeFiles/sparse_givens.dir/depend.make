# Empty dependencies file for sparse_givens.
# This may be replaced when dependencies are built.
