file(REMOVE_RECURSE
  "CMakeFiles/test_gqr_gadgets.dir/core/test_gqr_gadgets.cpp.o"
  "CMakeFiles/test_gqr_gadgets.dir/core/test_gqr_gadgets.cpp.o.d"
  "test_gqr_gadgets"
  "test_gqr_gadgets.pdb"
  "test_gqr_gadgets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gqr_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
