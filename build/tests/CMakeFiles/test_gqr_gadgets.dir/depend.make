# Empty dependencies file for test_gqr_gadgets.
# This may be replaced when dependencies are built.
