# Empty compiler generated dependencies file for test_nc_qr.
# This may be replaced when dependencies are built.
