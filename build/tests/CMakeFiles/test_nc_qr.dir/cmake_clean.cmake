file(REMOVE_RECURSE
  "CMakeFiles/test_nc_qr.dir/nc/test_nc_qr.cpp.o"
  "CMakeFiles/test_nc_qr.dir/nc/test_nc_qr.cpp.o.d"
  "test_nc_qr"
  "test_nc_qr.pdb"
  "test_nc_qr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nc_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
