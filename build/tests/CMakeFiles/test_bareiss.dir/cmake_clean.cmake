file(REMOVE_RECURSE
  "CMakeFiles/test_bareiss.dir/nc/test_bareiss.cpp.o"
  "CMakeFiles/test_bareiss.dir/nc/test_bareiss.cpp.o.d"
  "test_bareiss"
  "test_bareiss.pdb"
  "test_bareiss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bareiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
