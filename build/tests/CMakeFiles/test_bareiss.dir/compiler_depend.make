# Empty compiler generated dependencies file for test_bareiss.
# This may be replaced when dependencies are built.
