file(REMOVE_RECURSE
  "CMakeFiles/test_gems_nc.dir/nc/test_gems_nc.cpp.o"
  "CMakeFiles/test_gems_nc.dir/nc/test_gems_nc.cpp.o.d"
  "test_gems_nc"
  "test_gems_nc.pdb"
  "test_gems_nc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gems_nc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
