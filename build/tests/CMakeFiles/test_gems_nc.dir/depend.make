# Empty dependencies file for test_gems_nc.
# This may be replaced when dependencies are built.
