# Empty compiler generated dependencies file for test_gem_reduction.
# This may be replaced when dependencies are built.
