file(REMOVE_RECURSE
  "CMakeFiles/test_gem_reduction.dir/core/test_gem_reduction.cpp.o"
  "CMakeFiles/test_gem_reduction.dir/core/test_gem_reduction.cpp.o.d"
  "test_gem_reduction"
  "test_gem_reduction.pdb"
  "test_gem_reduction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gem_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
