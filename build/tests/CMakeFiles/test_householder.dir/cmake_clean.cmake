file(REMOVE_RECURSE
  "CMakeFiles/test_householder.dir/factor/test_householder.cpp.o"
  "CMakeFiles/test_householder.dir/factor/test_householder.cpp.o.d"
  "test_householder"
  "test_householder.pdb"
  "test_householder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_householder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
