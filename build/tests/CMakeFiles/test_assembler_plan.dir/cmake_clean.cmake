file(REMOVE_RECURSE
  "CMakeFiles/test_assembler_plan.dir/core/test_assembler_plan.cpp.o"
  "CMakeFiles/test_assembler_plan.dir/core/test_assembler_plan.cpp.o.d"
  "test_assembler_plan"
  "test_assembler_plan.pdb"
  "test_assembler_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assembler_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
