# Empty compiler generated dependencies file for test_assembler_plan.
# This may be replaced when dependencies are built.
