file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_factor.dir/factor/test_parallel_factor.cpp.o"
  "CMakeFiles/test_parallel_factor.dir/factor/test_parallel_factor.cpp.o.d"
  "test_parallel_factor"
  "test_parallel_factor.pdb"
  "test_parallel_factor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
