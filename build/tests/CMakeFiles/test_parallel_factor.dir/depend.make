# Empty dependencies file for test_parallel_factor.
# This may be replaced when dependencies are built.
