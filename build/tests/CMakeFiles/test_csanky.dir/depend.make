# Empty dependencies file for test_csanky.
# This may be replaced when dependencies are built.
