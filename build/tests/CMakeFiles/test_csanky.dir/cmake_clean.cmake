file(REMOVE_RECURSE
  "CMakeFiles/test_csanky.dir/nc/test_csanky.cpp.o"
  "CMakeFiles/test_csanky.dir/nc/test_csanky.cpp.o.d"
  "test_csanky"
  "test_csanky.pdb"
  "test_csanky[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csanky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
