# Empty compiler generated dependencies file for test_givens.
# This may be replaced when dependencies are built.
