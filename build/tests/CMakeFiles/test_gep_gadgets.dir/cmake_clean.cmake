file(REMOVE_RECURSE
  "CMakeFiles/test_gep_gadgets.dir/core/test_gep_gadgets.cpp.o"
  "CMakeFiles/test_gep_gadgets.dir/core/test_gep_gadgets.cpp.o.d"
  "test_gep_gadgets"
  "test_gep_gadgets.pdb"
  "test_gep_gadgets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gep_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
