# Empty compiler generated dependencies file for test_gep_gadgets.
# This may be replaced when dependencies are built.
