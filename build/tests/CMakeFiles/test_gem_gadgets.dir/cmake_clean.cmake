file(REMOVE_RECURSE
  "CMakeFiles/test_gem_gadgets.dir/core/test_gem_gadgets.cpp.o"
  "CMakeFiles/test_gem_gadgets.dir/core/test_gem_gadgets.cpp.o.d"
  "test_gem_gadgets"
  "test_gem_gadgets.pdb"
  "test_gem_gadgets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gem_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
