# Empty compiler generated dependencies file for test_gem_gadgets.
# This may be replaced when dependencies are built.
