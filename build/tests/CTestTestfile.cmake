# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bigint[1]_include.cmake")
include("/root/repo/build/tests/test_rational[1]_include.cmake")
include("/root/repo/build/tests/test_softfloat[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_gaussian[1]_include.cmake")
include("/root/repo/build/tests/test_givens[1]_include.cmake")
include("/root/repo/build/tests/test_householder[1]_include.cmake")
include("/root/repo/build/tests/test_triangular[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_factor[1]_include.cmake")
include("/root/repo/build/tests/test_gem_gadgets[1]_include.cmake")
include("/root/repo/build/tests/test_gem_reduction[1]_include.cmake")
include("/root/repo/build/tests/test_assembler_plan[1]_include.cmake")
include("/root/repo/build/tests/test_gqr_gadgets[1]_include.cmake")
include("/root/repo/build/tests/test_cross_model[1]_include.cmake")
include("/root/repo/build/tests/test_gep_gadgets[1]_include.cmake")
include("/root/repo/build/tests/test_bareiss[1]_include.cmake")
include("/root/repo/build/tests/test_gems_nc[1]_include.cmake")
include("/root/repo/build/tests/test_csanky[1]_include.cmake")
include("/root/repo/build/tests/test_nc_qr[1]_include.cmake")
