
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/depth_model.cpp" "src/CMakeFiles/pfact.dir/analysis/depth_model.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/analysis/depth_model.cpp.o.d"
  "/root/repo/src/analysis/error_analysis.cpp" "src/CMakeFiles/pfact.dir/analysis/error_analysis.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/analysis/error_analysis.cpp.o.d"
  "/root/repo/src/circuit/builders.cpp" "src/CMakeFiles/pfact.dir/circuit/builders.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/circuit/builders.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "src/CMakeFiles/pfact.dir/circuit/circuit.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/io.cpp" "src/CMakeFiles/pfact.dir/circuit/io.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/circuit/io.cpp.o.d"
  "/root/repo/src/core/assembler.cpp" "src/CMakeFiles/pfact.dir/core/assembler.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/core/assembler.cpp.o.d"
  "/root/repo/src/core/gem_gadgets.cpp" "src/CMakeFiles/pfact.dir/core/gem_gadgets.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/core/gem_gadgets.cpp.o.d"
  "/root/repo/src/core/gep_gadgets.cpp" "src/CMakeFiles/pfact.dir/core/gep_gadgets.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/core/gep_gadgets.cpp.o.d"
  "/root/repo/src/core/gqr_gadgets.cpp" "src/CMakeFiles/pfact.dir/core/gqr_gadgets.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/core/gqr_gadgets.cpp.o.d"
  "/root/repo/src/factor/pivot_trace.cpp" "src/CMakeFiles/pfact.dir/factor/pivot_trace.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/factor/pivot_trace.cpp.o.d"
  "/root/repo/src/matrix/generators.cpp" "src/CMakeFiles/pfact.dir/matrix/generators.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/matrix/generators.cpp.o.d"
  "/root/repo/src/nc/gems_nc.cpp" "src/CMakeFiles/pfact.dir/nc/gems_nc.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/nc/gems_nc.cpp.o.d"
  "/root/repo/src/nc/lfmis.cpp" "src/CMakeFiles/pfact.dir/nc/lfmis.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/nc/lfmis.cpp.o.d"
  "/root/repo/src/nc/nc_qr.cpp" "src/CMakeFiles/pfact.dir/nc/nc_qr.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/nc/nc_qr.cpp.o.d"
  "/root/repo/src/numeric/bigint.cpp" "src/CMakeFiles/pfact.dir/numeric/bigint.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/numeric/bigint.cpp.o.d"
  "/root/repo/src/numeric/rational.cpp" "src/CMakeFiles/pfact.dir/numeric/rational.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/numeric/rational.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/pfact.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/pfact.dir/parallel/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
