# Empty dependencies file for pfact.
# This may be replaced when dependencies are built.
