file(REMOVE_RECURSE
  "libpfact.a"
)
