# Empty compiler generated dependencies file for pfact.
# This may be replaced when dependencies are built.
