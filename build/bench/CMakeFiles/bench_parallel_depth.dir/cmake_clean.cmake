file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_depth.dir/bench_parallel_depth.cpp.o"
  "CMakeFiles/bench_parallel_depth.dir/bench_parallel_depth.cpp.o.d"
  "bench_parallel_depth"
  "bench_parallel_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
