# Empty dependencies file for bench_parallel_depth.
# This may be replaced when dependencies are built.
