file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_assembly.dir/bench_fig1_assembly.cpp.o"
  "CMakeFiles/bench_fig1_assembly.dir/bench_fig1_assembly.cpp.o.d"
  "bench_fig1_assembly"
  "bench_fig1_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
