# Empty compiler generated dependencies file for bench_fig23_gem_blocks.
# This may be replaced when dependencies are built.
