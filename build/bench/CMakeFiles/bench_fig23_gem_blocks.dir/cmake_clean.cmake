file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_gem_blocks.dir/bench_fig23_gem_blocks.cpp.o"
  "CMakeFiles/bench_fig23_gem_blocks.dir/bench_fig23_gem_blocks.cpp.o.d"
  "bench_fig23_gem_blocks"
  "bench_fig23_gem_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_gem_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
