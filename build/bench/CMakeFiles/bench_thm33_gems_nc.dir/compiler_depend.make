# Empty compiler generated dependencies file for bench_thm33_gems_nc.
# This may be replaced when dependencies are built.
