file(REMOVE_RECURSE
  "CMakeFiles/bench_thm33_gems_nc.dir/bench_thm33_gems_nc.cpp.o"
  "CMakeFiles/bench_thm33_gems_nc.dir/bench_thm33_gems_nc.cpp.o.d"
  "bench_thm33_gems_nc"
  "bench_thm33_gems_nc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm33_gems_nc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
