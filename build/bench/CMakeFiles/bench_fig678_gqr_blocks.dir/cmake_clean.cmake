file(REMOVE_RECURSE
  "CMakeFiles/bench_fig678_gqr_blocks.dir/bench_fig678_gqr_blocks.cpp.o"
  "CMakeFiles/bench_fig678_gqr_blocks.dir/bench_fig678_gqr_blocks.cpp.o.d"
  "bench_fig678_gqr_blocks"
  "bench_fig678_gqr_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig678_gqr_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
