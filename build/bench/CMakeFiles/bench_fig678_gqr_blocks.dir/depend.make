# Empty dependencies file for bench_fig678_gqr_blocks.
# This may be replaced when dependencies are built.
