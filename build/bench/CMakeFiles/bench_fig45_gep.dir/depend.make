# Empty dependencies file for bench_fig45_gep.
# This may be replaced when dependencies are built.
