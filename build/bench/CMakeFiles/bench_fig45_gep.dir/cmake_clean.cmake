file(REMOVE_RECURSE
  "CMakeFiles/bench_fig45_gep.dir/bench_fig45_gep.cpp.o"
  "CMakeFiles/bench_fig45_gep.dir/bench_fig45_gep.cpp.o.d"
  "bench_fig45_gep"
  "bench_fig45_gep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig45_gep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
