# Empty compiler generated dependencies file for bench_thm41_fp.
# This may be replaced when dependencies are built.
