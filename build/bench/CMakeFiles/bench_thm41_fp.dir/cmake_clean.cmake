file(REMOVE_RECURSE
  "CMakeFiles/bench_thm41_fp.dir/bench_thm41_fp.cpp.o"
  "CMakeFiles/bench_thm41_fp.dir/bench_thm41_fp.cpp.o.d"
  "bench_thm41_fp"
  "bench_thm41_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm41_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
