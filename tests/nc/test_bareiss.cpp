#include "nc/bareiss.h"

#include <gtest/gtest.h>

#include "factor/gaussian.h"
#include "matrix/generators.h"

namespace pfact::nc {
namespace {

using numeric::BigInt;
using numeric::Rational;

TEST(Bareiss, KnownDeterminants) {
  Matrix<BigInt> a{{1, 2}, {3, 4}};
  EXPECT_EQ(bareiss_det(a), BigInt(-2));
  Matrix<BigInt> b{{2, 0, 0}, {0, 3, 0}, {0, 0, 5}};
  EXPECT_EQ(bareiss_det(b), BigInt(30));
  Matrix<BigInt> anti{{0, 1}, {1, 0}};
  EXPECT_EQ(bareiss_det(anti), BigInt(-1));
}

TEST(Bareiss, SingularGivesZeroDetAndReducedRank) {
  Matrix<BigInt> a{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}};
  auto r = bareiss_eliminate(a);
  EXPECT_TRUE(r.det.is_zero());
  EXPECT_EQ(r.rank, 2u);
}

TEST(Bareiss, MatchesRationalGeDetRandomized) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto ra = gen::random_integer_exact(6, 9, seed);
    Matrix<BigInt> ia(6, 6);
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < 6; ++j) ia(i, j) = ra(i, j).num();
    Rational ge_det = factor::det(ra);
    EXPECT_EQ(Rational(bareiss_det(ia), BigInt(1)), ge_det) << seed;
  }
}

TEST(Bareiss, ZeroPivotNeedsRowSwap) {
  Matrix<BigInt> a{{0, 1, 2}, {1, 0, 3}, {4, 5, 0}};
  // det = 0*(0-15) - 1*(0-12) + 2*(5-0) = 12 + 10 = 22
  EXPECT_EQ(bareiss_det(a), BigInt(22));
}

TEST(Bareiss, RectangularRank) {
  Matrix<BigInt> a{{1, 2, 3, 4}, {2, 4, 6, 8}};
  EXPECT_EQ(bareiss_eliminate(a).rank, 1u);
  Matrix<BigInt> b{{1, 0}, {0, 1}, {1, 1}};
  EXPECT_EQ(bareiss_eliminate(b).rank, 2u);
}

TEST(Bareiss, EntryGrowthStaysExact) {
  // 10x10 with entries up to 99: determinant magnitude ~ Hadamard bound;
  // cross-check against rational GE.
  auto ra = gen::random_integer_exact(10, 99, 7);
  Matrix<BigInt> ia(10, 10);
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < 10; ++j) ia(i, j) = ra(i, j).num();
  EXPECT_EQ(Rational(bareiss_det(ia), BigInt(1)), factor::det(ra));
}

TEST(RankExact, RationalEntriesAndScaling) {
  Matrix<Rational> a{{Rational(1, 2), Rational(1, 3)},
                     {Rational(3, 2), Rational(2, 1)}};
  EXPECT_EQ(rank_exact(a), 2u);
  Matrix<Rational> s{{Rational(1, 2), Rational(1, 4)},
                     {Rational(2, 3), Rational(1, 3)}};  // rows parallel
  EXPECT_EQ(rank_exact(s), 1u);
  Matrix<Rational> z(3, 3);
  EXPECT_EQ(rank_exact(z), 0u);
}

TEST(RankExact, HilbertFullRank) {
  EXPECT_EQ(rank_exact(gen::hilbert_exact(7)), 7u);
}

}  // namespace
}  // namespace pfact::nc
