// Tests for the NC QR upper bounds of the paper's introduction: QR via
// reduction to (strongly nonsingular) LU, and the QRPi column selection via
// LFMIS. Includes the numerical counterpart: the Gram route squares the
// condition number, i.e. it is exactly the kind of fast-parallel-but-
// fragile algorithm the paper contrasts with GQR/HQR.
#include "nc/nc_qr.h"

#include <gtest/gtest.h>

#include "analysis/error_analysis.h"
#include "factor/givens.h"
#include "matrix/generators.h"
#include "nc/bareiss.h"

namespace pfact::nc {
namespace {

using numeric::Rational;

TEST(QrViaGram, ReconstructsAndOrthogonal) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto a = gen::random_nonsingular(8, seed);
    auto res = qr_via_gram(a);
    ASSERT_TRUE(res.ok);
    EXPECT_TRUE(res.r.is_upper_triangular());
    for (std::size_t i = 0; i < 8; ++i) EXPECT_GT(res.r(i, i), 0.0);
    EXPECT_LE(max_abs_diff(res.q * res.r, a), 1e-8);
    EXPECT_LE(analysis::orthogonality_loss(res.q), 1e-6);
  }
}

TEST(QrViaGram, TallMatrix) {
  auto src = gen::random_general(9, 3);
  Matrix<double> a(9, 4);
  for (std::size_t i = 0; i < 9; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = src(i, j);
  auto res = qr_via_gram(a);
  ASSERT_TRUE(res.ok);
  EXPECT_LE(max_abs_diff(res.q * res.r, a), 1e-9);
}

TEST(QrViaGram, AgreesWithGivensUpToSigns) {
  auto a = gen::random_nonsingular(7, 9);
  auto gram = qr_via_gram(a);
  auto giv = factor::givens_qr(a, false);
  ASSERT_TRUE(gram.ok);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = i; j < 7; ++j)
      EXPECT_NEAR(std::abs(gram.r(i, j)), std::abs(giv.r(i, j)), 1e-7);
}

TEST(QrViaGram, RankDeficientDetected) {
  Matrix<double> a{{1, 2}, {2, 4}, {3, 6}};  // rank 1
  EXPECT_FALSE(qr_via_gram(a).ok);
}

TEST(QrViaGram, LosesAccuracyOnIllConditionedInput) {
  // The tradeoff in miniature: squaring the condition number makes the
  // NC route visibly less orthogonal than Givens on a Hilbert matrix.
  auto h = gen::hilbert(6);
  auto gram = qr_via_gram(h);
  ASSERT_TRUE(gram.ok);
  auto giv = factor::givens_qr(h, true);
  double loss_gram = analysis::orthogonality_loss(gram.q);
  double loss_giv = analysis::orthogonality_loss(giv.q);
  EXPECT_GT(loss_gram, loss_giv * 1e2);
  // At n=8 the squared condition number exceeds 1/eps entirely: the Gram
  // route cannot even complete, while Givens remains perfectly happy.
  auto h8 = gen::hilbert(8);
  EXPECT_FALSE(qr_via_gram(h8).ok);
  EXPECT_LE(analysis::orthogonality_loss(factor::givens_qr(h8, true).q),
            1e-12);
}

TEST(QrPi, FullRankKeepsNaturalOrder) {
  auto a = gen::random_nonsingular_exact(5, 3, 4);
  auto res = qr_pi_permutation(a);
  EXPECT_EQ(res.rank, 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(res.column_order[i], i);
}

TEST(QrPi, SelectsLexicographicallyFirstColumns) {
  // col1 = 2*col0; col2 independent: LFMIS picks {0, 2}.
  Matrix<Rational> a{{1, 2, 0}, {1, 2, 1}, {0, 0, 1}};
  auto res = qr_pi_permutation(a);
  EXPECT_EQ(res.rank, 2u);
  EXPECT_EQ(res.column_order,
            (std::vector<std::size_t>{0, 2, 1}));
}

TEST(QrPi, ZeroLeadingColumnSkipped) {
  Matrix<Rational> a{{0, 1, 0}, {0, 0, 1}, {0, 0, 0}};
  auto res = qr_pi_permutation(a);
  EXPECT_EQ(res.rank, 2u);
  EXPECT_EQ(res.column_order[0], 1u);
  EXPECT_EQ(res.column_order[1], 2u);
}

TEST(QrPi, PermutedPrefixHasFullColumnRankRandomized) {
  // The QRPi contract: the leftmost r columns of A Pi are independent, so
  // GQR on them yields the QR part of a QRPi factorization.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto a = gen::random_integer_exact(5, 1, seed);  // range 1: low rank
                                                     // happens often
    auto res = qr_pi_permutation(a);
    Matrix<Rational> prefix(5, res.rank);
    for (std::size_t i = 0; i < 5; ++i)
      for (std::size_t j = 0; j < res.rank; ++j)
        prefix(i, j) = a(i, res.column_order[j]);
    EXPECT_EQ(rank_exact(prefix), res.rank) << seed;
    EXPECT_EQ(rank_exact(a), res.rank) << seed;
  }
}

}  // namespace
}  // namespace pfact::nc
