// Theorem 3.3 tests: the LFMIS-derived permutation equals the permutation
// GEMS actually selects, and the NC factorization reconstructs P^T A = LU.
#include "nc/gems_nc.h"

#include <gtest/gtest.h>

#include "matrix/generators.h"
#include "nc/bareiss.h"
#include "nc/lfmis.h"

namespace pfact::nc {
namespace {

using numeric::Rational;

TEST(Lfmis, KnownSmallCases) {
  // Rows: r0 and r1 dependent, r2 independent.
  Matrix<Rational> a{{1, 2}, {2, 4}, {0, 1}};
  auto s = lfmis_rows(a);
  EXPECT_EQ(s, (std::vector<std::size_t>{0, 2}));
  // Zero first row is skipped.
  Matrix<Rational> b{{0, 0}, {1, 0}, {0, 1}};
  EXPECT_EQ(lfmis_rows(b), (std::vector<std::size_t>{1, 2}));
}

TEST(Lfmis, PrefixRanksAreMonotone) {
  auto a = gen::random_integer_exact(6, 4, 5);
  auto ranks = prefix_row_ranks(a);
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    EXPECT_GE(ranks[i], ranks[i - 1]);
    EXPECT_LE(ranks[i], ranks[i - 1] + 1);
  }
}

TEST(Lfmis, GreedyPropertyRandomized) {
  // The LFMIS must be exactly what sequential greedy (add row if it
  // increases the rank) produces.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto a = gen::random_integer_exact(6, 2, seed);  // small range: some
                                                     // dependencies likely
    auto s = lfmis_rows(a);
    std::vector<std::size_t> greedy;
    Matrix<Rational> acc(0, 0);
    std::size_t rank_so_far = 0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      Matrix<Rational> pref = a.submatrix(0, 0, i + 1, a.cols());
      std::size_t r = rank_exact(pref);
      if (r > rank_so_far) {
        greedy.push_back(i);
        rank_so_far = r;
      }
    }
    EXPECT_EQ(s, greedy) << seed;
    (void)acc;
  }
}

class GemsNcVsGems : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GemsNcVsGems, PermutationMatchesGems) {
  // The heart of Theorem 3.3: P(NC) == P(GEMS) on nonsingular input.
  auto a = gen::random_nonsingular_exact(7, 3, GetParam());
  auto nc_perm = gems_nc_permutation(a);
  auto gems = factor::gems(a);
  ASSERT_TRUE(gems.ok);
  EXPECT_EQ(nc_perm, gems.row_perm.map());
}

TEST_P(GemsNcVsGems, FactorizationReconstructs) {
  auto a = gen::random_nonsingular_exact(6, 3, GetParam() + 100);
  auto r = gems_nc_factor(a);
  ASSERT_TRUE(r.ok);
  Matrix<Rational> pa = r.row_perm.apply_rows(a);
  EXPECT_EQ(pa, r.l * r.u);
  EXPECT_TRUE(r.l.is_unit_lower_triangular());
  EXPECT_TRUE(r.u.is_upper_triangular());
  // And the factors agree with sequential GEMS exactly (unique LU of PA).
  auto gems = factor::gems(a);
  EXPECT_EQ(r.l, gems.l);
  EXPECT_EQ(r.u, gems.u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemsNcVsGems,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(GemsNc, PermutationNontrivialWhenLeadingMinorSingular) {
  // First two rows dependent in column 1 => GEMS must pivot past row 1.
  Matrix<Rational> a{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}};
  auto perm = gems_nc_permutation(a);
  EXPECT_EQ(perm, (std::vector<std::size_t>{1, 0, 2}));
}

TEST(GemsNc, SingularInputReportsNotOk) {
  Matrix<Rational> a{{1, 2}, {2, 4}};
  auto r = gems_nc_factor(a);
  EXPECT_FALSE(r.ok);
}

TEST(GemsNc, StronglyNonsingularGivesIdentityPermutation) {
  // On strongly nonsingular input GEMS does no row exchange (Section 3.1),
  // so the NC permutation must be the identity.
  auto a = gen::hilbert_exact(6);
  auto perm = gems_nc_permutation(a);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(perm[i], i);
}

}  // namespace
}  // namespace pfact::nc
