#include "nc/csanky.h"

#include <gtest/gtest.h>

#include "factor/gaussian.h"
#include "factor/triangular.h"
#include "matrix/generators.h"

namespace pfact::nc {
namespace {

using numeric::Rational;

TEST(Csanky, ExactDeterminantMatchesGe) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto a = gen::random_integer_exact(6, 4, seed);
    EXPECT_EQ(csanky(a).det, factor::det(a)) << seed;
  }
}

TEST(Csanky, ExactInverse) {
  auto a = gen::random_nonsingular_exact(5, 3, 9);
  auto r = csanky(a);
  ASSERT_TRUE(r.invertible);
  EXPECT_EQ(a * r.inverse, Matrix<Rational>::identity(5));
  EXPECT_EQ(r.inverse * a, Matrix<Rational>::identity(5));
}

TEST(Csanky, SingularDetected) {
  Matrix<Rational> a{{1, 2}, {2, 4}};
  auto r = csanky(a);
  EXPECT_TRUE(r.det.is_zero());
  EXPECT_FALSE(r.invertible);
}

TEST(Csanky, OneByOne) {
  Matrix<Rational> a{{7}};
  auto r = csanky(a);
  EXPECT_EQ(r.det, Rational(7));
  ASSERT_TRUE(r.invertible);
  EXPECT_EQ(r.inverse(0, 0), Rational(1, 7));
}

TEST(Csanky, CharpolyCayleyHamilton) {
  // p(A) = A^n + c_1 A^{n-1} + ... + c_n I must vanish.
  auto a = gen::random_integer_exact(4, 3, 11);
  auto r = csanky(a);
  Matrix<Rational> acc = Matrix<Rational>::identity(4);  // A^0
  Matrix<Rational> p(4, 4);
  // Compute A^n + sum c_k A^{n-k}: iterate Horner-style.
  Matrix<Rational> h = a;  // will become p(A) via Horner
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t i = 0; i < 4; ++i) h(i, i) += r.charpoly[k];
    if (k + 1 < 4) h = a * h;
  }
  EXPECT_EQ(h, p);  // p initialized to zero matrix
  (void)acc;
}

TEST(Csanky, SolveExact) {
  auto a = gen::random_nonsingular_exact(5, 3, 21);
  std::vector<Rational> b(5);
  for (int i = 0; i < 5; ++i) b[i] = Rational(i + 1, 2);
  auto x = csanky_solve(a, b);
  auto ax = factor::matvec(a, x);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ax[i], b[i]);
}

TEST(Csanky, DoubleIsUnstableOnModestMatrices) {
  // The accuracy/parallelism tradeoff in one assertion: on a 24x24 random
  // matrix Csanky-in-double already loses most digits relative to GEP.
  auto a = gen::random_general(24, 3);
  std::vector<double> b(24, 1.0);
  auto x_csanky = csanky_solve(a, b);
  auto x_gep = factor::solve_plu(a, b);
  double r_csanky = 0.0, r_gep = 0.0;
  auto ax1 = factor::matvec(a, x_csanky);
  auto ax2 = factor::matvec(a, x_gep);
  for (int i = 0; i < 24; ++i) {
    r_csanky = std::max(r_csanky, std::abs(ax1[i] - b[i]));
    r_gep = std::max(r_gep, std::abs(ax2[i] - b[i]));
  }
  EXPECT_LT(r_gep, 1e-10);
  EXPECT_GT(r_csanky, r_gep * 1e3);  // at least 3 digits worse
}

}  // namespace
}  // namespace pfact::nc
