// Tests for the Section-4 floating point model. The two "crucial
// properties" the GQR reduction relies on are tested explicitly:
//   1. fl(a + b) = a when |b| < eps |a|
//   2. |x| < omega  =>  x is machine zero
#include "numeric/softfloat.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace pfact::numeric {
namespace {

using F8 = SoftFloat<8, -60, 60>;

TEST(SoftFloat, ZeroAndSigns) {
  Float53 z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.to_double(), 0.0);
  EXPECT_EQ(z.signum(), 0);
  Float53 a(3.5);
  EXPECT_EQ(a.signum(), 1);
  EXPECT_EQ((-a).signum(), -1);
  EXPECT_EQ((-a).to_double(), -3.5);
  EXPECT_EQ(a.abs().to_double(), 3.5);
  EXPECT_EQ((-a).abs().to_double(), 3.5);
}

TEST(SoftFloat, Float53MatchesHardwareDoubleOnRandomOps) {
  // With 53 mantissa bits and RNE, SoftFloat must agree bit-for-bit with
  // IEEE double on every individual operation (no denormals involved).
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  for (int trial = 0; trial < 2000; ++trial) {
    double x = dist(rng);
    double y = dist(rng);
    Float53 fx(x), fy(y);
    EXPECT_EQ((fx + fy).to_double(), x + y);
    EXPECT_EQ((fx - fy).to_double(), x - y);
    EXPECT_EQ((fx * fy).to_double(), x * y);
    if (y != 0.0) {
      EXPECT_EQ((fx / fy).to_double(), x / y);
    }
    if (x > 0.0) {
      EXPECT_EQ(sqrt(fx).to_double(), std::sqrt(x));
    }
  }
}

TEST(SoftFloat, RoundToNearestEvenTies) {
  // 8-bit significand: representable integers step by 2 above 256.
  F8 a(256.0);
  EXPECT_EQ((a + F8(1.0)).to_double(), 256.0);  // tie -> even (256)
  F8 b(258.0);
  EXPECT_EQ((b + F8(1.0)).to_double(), 260.0);  // tie -> even (260)
  EXPECT_EQ((a + F8(1.5)).to_double(), 258.0);  // above tie -> up
}

TEST(SoftFloat, Property1SmallAddendAbsorbed) {
  // fl(a + b) = a whenever |b| < eps * |a| — the paper's property 1.
  Float53 one(1.0);
  Float53 tiny(Float53::eps() / 4.0);
  EXPECT_EQ((one + tiny).to_double(), 1.0);
  EXPECT_EQ((one - tiny).to_double(), 1.0);
  F8 a(1000.0);
  F8 small(1.0);  // eps(F8) = 2^-8, 1 < 1000 * 2^-8 ~ 3.9
  EXPECT_EQ((a + small).to_double(), 1000.0);
}

TEST(SoftFloat, Property2UnderflowFlushesToMachineZero) {
  // |x| < omega => machine zero — the paper's property 2.
  F8 w(F8::omega());
  EXPECT_FALSE(w.is_zero());
  F8 half(0.5);
  EXPECT_TRUE((w * half).is_zero());
  Float53 om(Float53::omega());
  EXPECT_TRUE((om * Float53(0.25)).is_zero());
  EXPECT_FALSE((om * Float53(1.0)).is_zero());
}

TEST(SoftFloat, OverflowThrows) {
  F8 big(std::ldexp(1.0, 59));
  EXPECT_THROW(big * big, std::overflow_error);
}

TEST(SoftFloat, DivisionByZeroThrows) {
  EXPECT_THROW(Float53(1.0) / Float53(0.0), std::domain_error);
}

TEST(SoftFloat, SqrtOfNegativeThrows) {
  EXPECT_THROW(sqrt(Float53(-1.0)), std::domain_error);
}

TEST(SoftFloat, SqrtExactOnPerfectSquares) {
  for (double v : {1.0, 4.0, 9.0, 1024.0, 0.25}) {
    EXPECT_EQ(sqrt(Float53(v)).to_double(), std::sqrt(v)) << v;
    EXPECT_EQ(sqrt(F8(v)).to_double(), std::sqrt(v)) << v;
  }
}

TEST(SoftFloat, LowPrecisionRoundsMantissa) {
  // 8-bit model: 1 + 2^-9 rounds to 1; 1 + 2^-7 is representable-ish.
  F8 one(1.0);
  F8 eps2(std::ldexp(1.0, -9));
  EXPECT_EQ((one + eps2).to_double(), 1.0);
  F8 repr(std::ldexp(1.0, -7));
  EXPECT_EQ((one + repr).to_double(), 1.0 + std::ldexp(1.0, -7));
}

TEST(SoftFloat, FromDoubleRoundsToModelPrecision) {
  // 0.1 in 8 bits: mantissa 0x1.99999Ap-4 rounds to 8 significant bits.
  F8 tenth(0.1);
  double expect = std::ldexp(std::round(std::ldexp(0.1, 3 + 8)), -11);
  EXPECT_EQ(tenth.to_double(), expect);
}

TEST(SoftFloat, ComparisonsTotalOrder) {
  EXPECT_LT(Float53(-2.0), Float53(1.0));
  EXPECT_LT(Float53(1.0), Float53(2.0));
  EXPECT_LT(Float53(-2.0), Float53(-1.0));
  EXPECT_EQ(Float53(0.0), -Float53(0.0));
  EXPECT_LT(Float53(0.0), Float53(0.5));
  EXPECT_LT(Float53(-0.5), Float53(0.0));
}

TEST(SoftFloat, AdditionIsCommutativeRandomized) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  for (int trial = 0; trial < 500; ++trial) {
    F8 x(dist(rng)), y(dist(rng));
    EXPECT_EQ((x + y).to_double(), (y + x).to_double());
    EXPECT_EQ((x * y).to_double(), (y * x).to_double());
  }
}

TEST(SoftFloat, KnownNonAssociativity) {
  // (1 + eps) + eps == 1 (each addend ties and rounds to even) but
  // 1 + (eps + eps) = 1 + ulp > 1: the fixed-size model is genuinely a
  // floating point model, not the reals.
  Float53 one(1.0), eps(Float53::eps());
  Float53 left = (one + eps) + eps;
  Float53 right = one + (eps + eps);
  EXPECT_EQ(left.to_double(), 1.0);
  EXPECT_GT(right.to_double(), 1.0);
}

TEST(SoftFloat, EpsAndOmegaAccessors) {
  EXPECT_EQ(Float53::eps(), std::ldexp(1.0, -53));
  EXPECT_EQ(Float24::eps(), std::ldexp(1.0, -24));
  EXPECT_EQ(F8::omega(), std::ldexp(1.0, -60));
}

TEST(SoftFloat, PowerOfTwoScalingIsExact) {
  // Multiplying by 2^m must be exact — load-bearing for the 2^m gap trick.
  F8 x(0.7109375);  // representable in 8 bits
  F8 p(std::ldexp(1.0, 20));
  EXPECT_EQ((x * p).to_double(), std::ldexp(x.to_double(), 20));
  EXPECT_EQ(((x * p) / p).to_double(), x.to_double());
}

}  // namespace
}  // namespace pfact::numeric
