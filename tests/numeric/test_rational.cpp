#include "numeric/rational.h"

#include <gtest/gtest.h>

#include <random>

namespace pfact::numeric {
namespace {

TEST(Rational, NormalizationInvariants) {
  Rational r(BigInt(6), BigInt(-9));
  EXPECT_EQ(r.num().to_int64(), -2);
  EXPECT_EQ(r.den().to_int64(), 3);
  Rational z(BigInt(0), BigInt(17));
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.den().to_int64(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(BigInt(1), BigInt(0)), std::domain_error);
}

TEST(Rational, FieldAxiomsSpotChecks) {
  Rational a(1, 3), b(1, 6), c(-2, 5);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, Rational(0));
  EXPECT_EQ(a * a.reciprocal(), Rational(1));
  EXPECT_EQ(a / b, Rational(2));
}

TEST(Rational, ReciprocalOfZeroThrows) {
  EXPECT_THROW(Rational(0).reciprocal(), std::domain_error);
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GT(Rational(7, 2), Rational(10, 3));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, FromDoubleIsExact) {
  // Every finite double is dyadic; the conversion must be lossless.
  const double cases[] = {0.5, 0.1, 1.0 / 3.0, -2.25, 1e-300, 123456.789};
  for (double d : cases) {
    Rational r = Rational::from_double(d);
    EXPECT_DOUBLE_EQ(r.to_double(), d) << d;
  }
  EXPECT_EQ(Rational::from_double(0.25), Rational(1, 4));
  EXPECT_EQ(Rational::from_double(-1.5), Rational(-3, 2));
  EXPECT_EQ(Rational::from_double(0.0), Rational(0));
}

TEST(Rational, FromDoubleRejectsNonFinite) {
  EXPECT_THROW(Rational::from_double(
                   std::numeric_limits<double>::infinity()),
               std::domain_error);
  EXPECT_THROW(Rational::from_double(
                   std::numeric_limits<double>::quiet_NaN()),
               std::domain_error);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3, 7).to_string(), "3/7");
  EXPECT_EQ(Rational(-3, 7).to_string(), "-3/7");
  EXPECT_EQ(Rational(14, 7).to_string(), "2");
  EXPECT_EQ(Rational(0).to_string(), "0");
}

TEST(Rational, RandomizedFieldConsistencyVsDouble) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int> num(-50, 50);
  std::uniform_int_distribution<int> den(1, 50);
  for (int trial = 0; trial < 300; ++trial) {
    Rational a(num(rng), den(rng));
    Rational b(num(rng), den(rng));
    double da = a.to_double();
    double db = b.to_double();
    EXPECT_NEAR((a + b).to_double(), da + db, 1e-12);
    EXPECT_NEAR((a * b).to_double(), da * db, 1e-12);
    if (!b.is_zero()) EXPECT_NEAR((a / b).to_double(), da / db, 1e-9);
  }
}

TEST(Rational, LargeValueToDouble) {
  // Huge numerators/denominators must not overflow on the way to double.
  Rational big(BigInt::pow(BigInt(10), 100), BigInt::pow(BigInt(10), 98));
  EXPECT_NEAR(big.to_double(), 100.0, 1e-9);
  Rational tiny(BigInt(1), BigInt::pow(BigInt(2), 100));
  EXPECT_NEAR(tiny.to_double(), std::ldexp(1.0, -100),
              std::ldexp(1.0, -150));
}

TEST(Rational, AbsAndNegate) {
  EXPECT_EQ(Rational(-3, 4).abs(), Rational(3, 4));
  EXPECT_EQ(-Rational(-3, 4), Rational(3, 4));
  EXPECT_EQ(Rational(-3, 4).signum(), -1);
  EXPECT_EQ(Rational(0).signum(), 0);
}

}  // namespace
}  // namespace pfact::numeric
