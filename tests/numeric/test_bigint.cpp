#include "numeric/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

namespace pfact::numeric {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.signum(), 0);
}

TEST(BigInt, SmallConstruction) {
  EXPECT_EQ(BigInt(42).to_string(), "42");
  EXPECT_EQ(BigInt(-42).to_string(), "-42");
  EXPECT_EQ(BigInt(0).to_string(), "0");
}

TEST(BigInt, Int64Extremes) {
  long long mn = std::numeric_limits<long long>::min();
  long long mx = std::numeric_limits<long long>::max();
  EXPECT_EQ(BigInt(mn).to_string(), std::to_string(mn));
  EXPECT_EQ(BigInt(mx).to_string(), std::to_string(mx));
  EXPECT_EQ(BigInt(mn).to_int64(), mn);
  EXPECT_EQ(BigInt(mx).to_int64(), mx);
}

TEST(BigInt, StringRoundTrip) {
  const char* cases[] = {"0",
                         "1",
                         "-1",
                         "123456789012345678901234567890",
                         "-999999999999999999999999999999999999"};
  for (const char* s : cases) {
    EXPECT_EQ(BigInt::from_string(s).to_string(), s) << s;
  }
}

TEST(BigInt, FromStringRejectsGarbage) {
  EXPECT_THROW(BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("12x3"), std::invalid_argument);
}

TEST(BigInt, AddSubSignCases) {
  EXPECT_EQ((BigInt(7) + BigInt(-3)).to_int64(), 4);
  EXPECT_EQ((BigInt(-7) + BigInt(3)).to_int64(), -4);
  EXPECT_EQ((BigInt(-7) + BigInt(-3)).to_int64(), -10);
  EXPECT_EQ((BigInt(3) - BigInt(7)).to_int64(), -4);
  EXPECT_TRUE((BigInt(5) - BigInt(5)).is_zero());
}

TEST(BigInt, CarryPropagation) {
  BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, MultiplyLarge) {
  BigInt a = BigInt::from_string("123456789123456789");
  BigInt b = BigInt::from_string("987654321987654321");
  EXPECT_EQ((a * b).to_string(), "121932631356500531347203169112635269");
}

TEST(BigInt, DivModTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_int64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_int64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).to_int64(), 3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_int64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).to_int64(), 1);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), std::domain_error);
}

TEST(BigInt, DivModIdentityRandomized) {
  std::mt19937_64 rng(12345);
  std::uniform_int_distribution<std::int64_t> dist(-1000000000000LL,
                                                   1000000000000LL);
  for (int trial = 0; trial < 500; ++trial) {
    std::int64_t x = dist(rng);
    std::int64_t y = dist(rng);
    if (y == 0) continue;
    BigInt bx(x), by(y);
    BigInt q, r;
    BigInt::divmod(bx, by, q, r);
    EXPECT_EQ(q.to_int64(), x / y);
    EXPECT_EQ(r.to_int64(), x % y);
    EXPECT_EQ((q * by + r), bx);
  }
}

TEST(BigInt, ArithmeticMatchesInt128Randomized) {
  std::mt19937_64 rng(777);
  std::uniform_int_distribution<std::int64_t> dist(-2000000000LL,
                                                   2000000000LL);
  for (int trial = 0; trial < 500; ++trial) {
    std::int64_t x = dist(rng);
    std::int64_t y = dist(rng);
    __int128 prod = static_cast<__int128>(x) * y;
    BigInt bp = BigInt(x) * BigInt(y);
    // Compare through strings of the low/high decomposition.
    long long lo = static_cast<long long>(prod % 1000000000000000000LL);
    long long hi = static_cast<long long>(prod / 1000000000000000000LL);
    BigInt recon =
        BigInt(hi) * BigInt(1000000000000000000LL) + BigInt(lo);
    EXPECT_EQ(bp, recon);
  }
}

TEST(BigInt, Shifts) {
  EXPECT_EQ((BigInt(1) << 100).to_string(),
            "1267650600228229401496703205376");
  EXPECT_EQ(((BigInt(1) << 100) >> 100).to_int64(), 1);
  EXPECT_EQ((BigInt(-5) << 2).to_int64(), -20);
  EXPECT_TRUE((BigInt(1) >> 1).is_zero());
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ((BigInt(1) << 1000).bit_length(), 1001u);
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_int64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt(7), BigInt(0)).to_int64(), 7);
  BigInt big = BigInt::from_string("123456789012345678901234567890");
  EXPECT_EQ(BigInt::gcd(big * BigInt(77), big * BigInt(21)),
            big * BigInt(7));
}

TEST(BigInt, Pow) {
  EXPECT_EQ(BigInt::pow(BigInt(2), 64).to_string(),
            "18446744073709551616");
  EXPECT_EQ(BigInt::pow(BigInt(10), 0).to_int64(), 1);
  EXPECT_EQ(BigInt::pow(BigInt(-3), 3).to_int64(), -27);
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt::from_string("10000000000000000000000"),
            BigInt::from_string("9999999999999999999999"));
  EXPECT_EQ(BigInt(0), BigInt(0));
}

TEST(BigInt, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(12345).to_double(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt(-12345).to_double(), -12345.0);
  double big = (BigInt(1) << 200).to_double();
  EXPECT_NEAR(big, std::ldexp(1.0, 200), std::ldexp(1.0, 150));
}

TEST(BigInt, FitsInt64Boundary) {
  BigInt mx(std::numeric_limits<long long>::max());
  BigInt mn(std::numeric_limits<long long>::min());
  EXPECT_TRUE(mx.fits_int64());
  EXPECT_TRUE(mn.fits_int64());
  EXPECT_FALSE((mx + BigInt(1)).fits_int64());
  EXPECT_FALSE((mn - BigInt(1)).fits_int64());
  EXPECT_THROW((mx + BigInt(1)).to_int64(), std::overflow_error);
}

}  // namespace
}  // namespace pfact::numeric
