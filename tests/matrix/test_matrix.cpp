#include "matrix/matrix.h"

#include <gtest/gtest.h>

#include "numeric/rational.h"

namespace pfact {
namespace {

using numeric::Rational;

TEST(Matrix, ConstructionAndAccess) {
  Matrix<double> a(2, 3);
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_EQ(a(1, 2), 0.0);
  a(1, 2) = 5.0;
  EXPECT_EQ(a(1, 2), 5.0);
  EXPECT_THROW(a.at(2, 0), std::out_of_range);
  EXPECT_THROW(a.at(0, 3), std::out_of_range);
}

TEST(Matrix, InitializerList) {
  Matrix<int> a{{1, 2}, {3, 4}};
  EXPECT_EQ(a(0, 1), 2);
  EXPECT_EQ(a(1, 0), 3);
  EXPECT_THROW((Matrix<int>{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndMultiply) {
  Matrix<double> a{{1, 2}, {3, 4}};
  Matrix<double> i = Matrix<double>::identity(2);
  EXPECT_EQ(a * i, a);
  EXPECT_EQ(i * a, a);
  Matrix<double> b{{5, 6}, {7, 8}};
  Matrix<double> ab = a * b;
  EXPECT_EQ(ab(0, 0), 19.0);
  EXPECT_EQ(ab(0, 1), 22.0);
  EXPECT_EQ(ab(1, 0), 43.0);
  EXPECT_EQ(ab(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix<double> a(2, 3), b(2, 2);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, AddSubScale) {
  Matrix<double> a{{1, 2}, {3, 4}};
  Matrix<double> b{{4, 3}, {2, 1}};
  EXPECT_EQ((a + b)(0, 0), 5.0);
  EXPECT_EQ((a - b)(1, 1), 3.0);
  EXPECT_EQ((2.0 * a)(1, 0), 6.0);
}

TEST(Matrix, Transpose) {
  Matrix<double> a{{1, 2, 3}, {4, 5, 6}};
  Matrix<double> t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(Matrix, SwapAndCycleRows) {
  Matrix<int> a{{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  a.swap_rows(0, 3);
  EXPECT_EQ(a(0, 0), 4);
  EXPECT_EQ(a(3, 0), 1);
  Matrix<int> b{{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  b.cycle_row_up(0, 2);  // row 2 -> position 0, rows 0,1 slide down
  EXPECT_EQ(b(0, 0), 3);
  EXPECT_EQ(b(1, 0), 1);
  EXPECT_EQ(b(2, 0), 2);
  EXPECT_EQ(b(3, 0), 4);
}

TEST(Matrix, TriangularPredicates) {
  Matrix<double> u{{1, 2}, {0, 3}};
  Matrix<double> l{{1, 0}, {2, 1}};
  EXPECT_TRUE(u.is_upper_triangular());
  EXPECT_FALSE(u.is_lower_triangular());
  EXPECT_TRUE(l.is_lower_triangular());
  EXPECT_TRUE(l.is_unit_lower_triangular());
  Matrix<double> l2{{2, 0}, {2, 1}};
  EXPECT_FALSE(l2.is_unit_lower_triangular());
}

TEST(Matrix, DiagonalDominance) {
  Matrix<double> d{{3, 1, 1}, {0, 2, 1}, {1, 1, -4}};
  EXPECT_TRUE(d.is_strictly_diagonally_dominant());
  Matrix<double> nd{{2, 1, 1}, {0, 2, 1}, {1, 1, -4}};
  EXPECT_FALSE(nd.is_strictly_diagonally_dominant());
}

TEST(Matrix, SubmatrixAndMinor) {
  Matrix<int> a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix<int> s = a.submatrix(1, 1, 2, 2);
  EXPECT_EQ(s(0, 0), 5);
  EXPECT_EQ(s(1, 1), 9);
  Matrix<int> m = a.leading_minor(2);
  EXPECT_EQ(m(1, 1), 5);
}

TEST(Matrix, RationalLiftIsExact) {
  Matrix<double> a{{0.5, 0.1}, {-2.25, 3.0}};
  Matrix<Rational> r = to_rational(a);
  EXPECT_DOUBLE_EQ(r(0, 1).to_double(), 0.1);
  EXPECT_EQ(r(1, 0), Rational(-9, 4));
}

TEST(Matrix, MaxAbsDiff) {
  Matrix<double> a{{1, 2}, {3, 4}};
  Matrix<double> b{{1, 2.5}, {3, 4}};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(Permutation, IdentityAndSwap) {
  Permutation p(4);
  EXPECT_TRUE(p.is_identity());
  EXPECT_EQ(p.sign(), 1);
  p.swap(0, 2);
  EXPECT_FALSE(p.is_identity());
  EXPECT_EQ(p.sign(), -1);
  EXPECT_EQ(p[0], 2u);
}

TEST(Permutation, CycleUp) {
  Permutation p(4);
  p.cycle_up(0, 2);  // 3-cycle: sign +1
  EXPECT_EQ(p[0], 2u);
  EXPECT_EQ(p[1], 0u);
  EXPECT_EQ(p[2], 1u);
  EXPECT_EQ(p.sign(), 1);
}

TEST(Permutation, InverseComposesToIdentity) {
  Permutation p(std::vector<std::size_t>{2, 0, 3, 1});
  Permutation q = p.inverse();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(q[p[i]], i);
}

TEST(Permutation, ApplyRowsMatchesMatrixProduct) {
  Permutation p(std::vector<std::size_t>{1, 2, 0});
  Matrix<double> a{{1, 0}, {2, 0}, {3, 0}};
  Matrix<double> permuted = p.apply_rows(a);
  EXPECT_EQ(permuted(0, 0), 2.0);
  EXPECT_EQ(permuted(1, 0), 3.0);
  EXPECT_EQ(permuted(2, 0), 1.0);
  EXPECT_EQ(p.to_matrix<double>() * a, permuted);
}

}  // namespace
}  // namespace pfact
