// Sparse backend unit + property suite (ctest label `matrix`).
//
// Three layers under test, each against its dense oracle:
//
//   TripletBuilder  — randomized duplicate/unsorted triplet streams must
//                     coalesce to the canonical CSR a naive dense `+=`
//                     accumulation produces, bit for bit;
//   CsrMatrix       — from_parts is the only gate past the invariants
//                     (monotone row pointers, strictly increasing in-range
//                     columns, no stored zeros), and dense round-trips are
//                     the identity;
//   SparseMatrix    — every MatrixStorage/RotatableStorage operation the
//                     elimination engines call (get/set/swap_rows/
//                     cycle_row_up/row_axpy/rotate_rows) must produce the
//                     bit-identical matrix the dense Matrix<T> op produces.
//
// All randomness is a deterministic xorshift: every platform draws the same
// cases, so a failure names a reproducible seed.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/matrix.h"
#include "matrix/sparse.h"
#include "matrix/storage.h"
#include "numeric/rational.h"
#include "numeric/softfloat.h"

namespace pfact::sparse {
namespace {

using numeric::Float53;
using numeric::Rational;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  return x * 0x2545F4914F6CDD1DULL;
}

// Small signed integer values (including 0): the reduction matrices' entry
// distribution, and exactly representable in every field under test.
double draw_value(std::uint64_t seed) {
  return static_cast<double>(static_cast<std::int64_t>(mix(seed) % 9) - 4);
}

Matrix<double> random_dense(std::size_t rows, std::size_t cols,
                            std::uint64_t seed, std::uint64_t density_pct) {
  Matrix<double> a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) {
      const std::uint64_t s = seed * 1000003 + i * 131 + j;
      if (mix(s) % 100 < density_pct) a(i, j) = draw_value(s + 7);
    }
  return a;
}

void expect_same_dense(const Matrix<double>& got, const Matrix<double>& want,
                       const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < want.rows(); ++i)
    for (std::size_t j = 0; j < want.cols(); ++j)
      ASSERT_EQ(got(i, j), want(i, j))
          << what << " at (" << i << "," << j << ")";
}

// --------------------------------------------------------------------------
// TripletBuilder: randomized streams vs the dense += oracle.
// --------------------------------------------------------------------------

TEST(TripletBuilder, RandomDuplicateStreamsMatchDenseAccumulation) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const std::size_t rows = 1 + mix(seed) % 8;
    const std::size_t cols = 1 + mix(seed + 1) % 8;
    const std::size_t n = mix(seed + 2) % 40;  // duplicates all but certain
    TripletBuilder<double> b(rows, cols);
    Matrix<double> dense(rows, cols);
    for (std::size_t t = 0; t < n; ++t) {
      const std::uint64_t s = seed * 7919 + t;
      const std::size_t i = mix(s) % rows;
      const std::size_t j = mix(s + 1) % cols;
      const double v = draw_value(s + 2);
      b.add(i, j, v);
      dense(i, j) += v;
    }
    EXPECT_EQ(b.pending(), n);
    const CsrMatrix<double> csr = b.build();
    expect_same_dense(csr.to_dense(), dense, "seed=" + std::to_string(seed));
    // Canonical by construction: rebuilding from the emitted dense form
    // gives the identical CSR arrays (no stored zeros survived, columns
    // sorted, row pointers tight).
    EXPECT_TRUE(csr == CsrMatrix<double>::from_dense(dense))
        << "seed=" << seed;
  }
}

TEST(TripletBuilder, DuplicatesCoalesceInEmissionOrder) {
  // Floating-point addition is not associative: (a + b) + c can differ from
  // a + (b + c). The builder must sum duplicates in emission order — the
  // dense `+=` order — not in any reshuffled order.
  const double a = 0.1;
  const double b = 0.2;
  const double c = 0.3;
  TripletBuilder<double> builder(1, 1);
  builder.add(0, 0, a);
  builder.add(0, 0, b);
  builder.add(0, 0, c);
  const double emission_order = (a + b) + c;
  ASSERT_NE(emission_order, a + (b + c));  // the case actually discriminates
  const CsrMatrix<double> csr = builder.build();
  ASSERT_EQ(csr.nnz(), 1u);
  EXPECT_EQ(csr.at(0, 0), emission_order);
}

TEST(TripletBuilder, ZeroSumsAreDroppedNotStored) {
  TripletBuilder<double> b(3, 3);
  b.add(1, 1, 2.5);
  b.add(1, 1, -2.5);  // exact cancellation
  b.add(2, 0, 0.0);   // explicit zero triplet
  b.add(0, 2, 1.0);
  const CsrMatrix<double> csr = b.build();
  EXPECT_EQ(csr.nnz(), 1u);
  EXPECT_EQ(csr.at(0, 2), 1.0);
  EXPECT_EQ(csr.at(1, 1), 0.0);
  // And the result still passes the no-stored-zero gate on re-adoption.
  EXPECT_NO_THROW(CsrMatrix<double>::from_parts(
      3, 3, csr.row_ptr(), csr.col_idx(), csr.values()));
}

TEST(TripletBuilder, OutOfRangeAddThrows) {
  TripletBuilder<double> b(2, 3);
  EXPECT_THROW(b.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(b.add(0, 3, 1.0), std::out_of_range);
  EXPECT_EQ(b.pending(), 0u);
}

TEST(TripletBuilder, EmptyBuilderYieldsAllZeroMatrix) {
  const CsrMatrix<double> csr = TripletBuilder<double>(4, 5).build();
  EXPECT_EQ(csr.rows(), 4u);
  EXPECT_EQ(csr.cols(), 5u);
  EXPECT_EQ(csr.nnz(), 0u);
  ASSERT_EQ(csr.row_ptr().size(), 5u);
  for (const std::size_t p : csr.row_ptr()) EXPECT_EQ(p, 0u);
}

// --------------------------------------------------------------------------
// CsrMatrix: round-trips, edge shapes, invariant rejections.
// --------------------------------------------------------------------------

TEST(CsrMatrix, DenseRoundTripIsIdentity) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const std::size_t rows = mix(seed) % 7;       // includes 0x? shapes
    const std::size_t cols = mix(seed + 1) % 7;
    const std::uint64_t density = mix(seed + 2) % 101;  // 0..100%
    const Matrix<double> dense = random_dense(rows, cols, seed, density);
    const CsrMatrix<double> csr = CsrMatrix<double>::from_dense(dense);
    expect_same_dense(csr.to_dense(), dense, "seed=" + std::to_string(seed));
    ASSERT_TRUE(csr_invariant_violation(rows, cols, csr.row_ptr(),
                                        csr.col_idx())
                    .empty())
        << "seed=" << seed;
  }
}

TEST(CsrMatrix, EmptyRowsAndAllZeroMatricesAreWellFormed) {
  Matrix<double> dense(4, 3);
  dense(1, 0) = 2.0;  // rows 0, 2, 3 stay empty
  const CsrMatrix<double> csr = CsrMatrix<double>::from_dense(dense);
  EXPECT_EQ(csr.nnz(), 1u);
  EXPECT_EQ(csr.row_ptr(), (std::vector<std::size_t>{0, 0, 1, 1, 1}));
  expect_same_dense(csr.to_dense(), dense, "empty rows");

  const CsrMatrix<double> zero =
      CsrMatrix<double>::from_dense(Matrix<double>(3, 3));
  EXPECT_EQ(zero.nnz(), 0u);
  expect_same_dense(zero.to_dense(), Matrix<double>(3, 3), "all zero");

  const CsrMatrix<double> degenerate;  // 0x0
  EXPECT_EQ(degenerate.rows(), 0u);
  EXPECT_EQ(degenerate.nnz(), 0u);
}

TEST(CsrMatrix, AtReadsStoredAndAbsentEntries) {
  Matrix<double> dense(2, 4);
  dense(0, 1) = 3.0;
  dense(0, 3) = -1.0;
  const CsrMatrix<double> csr = CsrMatrix<double>::from_dense(dense);
  EXPECT_EQ(csr.at(0, 1), 3.0);
  EXPECT_EQ(csr.at(0, 3), -1.0);
  EXPECT_EQ(csr.at(0, 0), 0.0);
  EXPECT_EQ(csr.at(1, 2), 0.0);
  EXPECT_THROW(csr.at(2, 0), std::out_of_range);
  EXPECT_THROW(csr.at(0, 4), std::out_of_range);
}

TEST(CsrMatrix, FromPartsNamesEveryViolatedInvariant) {
  const auto expect_rejected = [](std::size_t rows, std::size_t cols,
                                  std::vector<std::size_t> row_ptr,
                                  std::vector<std::size_t> col_idx,
                                  std::vector<double> values,
                                  const std::string& what) {
    EXPECT_THROW(CsrMatrix<double>::from_parts(rows, cols, std::move(row_ptr),
                                               std::move(col_idx),
                                               std::move(values)),
                 std::invalid_argument)
        << what;
  };
  // A valid 2x3 with entries (0,0)=1, (0,2)=2, (1,1)=3 as the base case.
  EXPECT_NO_THROW(
      CsrMatrix<double>::from_parts(2, 3, {0, 2, 3}, {0, 2, 1}, {1, 2, 3}));
  expect_rejected(2, 3, {0, 2}, {0, 2, 1}, {1, 2, 3}, "row_ptr wrong length");
  expect_rejected(2, 3, {1, 2, 3}, {0, 2, 1}, {1, 2, 3},
                  "row_ptr must start at 0");
  expect_rejected(2, 3, {0, 3, 2}, {0, 2, 1}, {1, 2, 3},
                  "row_ptr not monotone");
  expect_rejected(2, 3, {0, 2, 4}, {0, 2, 1}, {1, 2, 3},
                  "row_ptr overruns col_idx");
  expect_rejected(2, 3, {0, 2, 3}, {2, 0, 1}, {1, 2, 3},
                  "columns not increasing within a row");
  expect_rejected(2, 3, {0, 2, 3}, {0, 0, 1}, {1, 2, 3},
                  "duplicate column within a row");
  expect_rejected(2, 3, {0, 2, 3}, {0, 3, 1}, {1, 2, 3},
                  "column out of range");
  expect_rejected(2, 3, {0, 2, 3}, {0, 2, 1}, {1, 2}, "values size mismatch");
  expect_rejected(2, 3, {0, 2, 3}, {0, 2, 1}, {1, 0, 3}, "stored exact zero");
}

TEST(CsrMatrix, CastPreservesStructureAcrossFields) {
  Matrix<double> dense(3, 3);
  dense(0, 0) = 1.0;
  dense(1, 2) = -2.0;
  dense(2, 1) = 3.0;
  const CsrMatrix<double> csr = CsrMatrix<double>::from_dense(dense);
  const CsrMatrix<Rational> q = csr.cast<Rational>();
  ASSERT_EQ(q.row_ptr(), csr.row_ptr());
  ASSERT_EQ(q.col_idx(), csr.col_idx());
  EXPECT_TRUE(q.at(1, 2) == Rational(-2));
  const CsrMatrix<Float53> f = csr.cast<Float53>();
  EXPECT_TRUE(f.at(2, 1) == Float53(3.0));
}

// --------------------------------------------------------------------------
// SparseMatrix: storage-concept conformance and dense-op equivalence.
// --------------------------------------------------------------------------

static_assert(is_sparse_storage_v<sparse::SparseMatrix<double>>);
static_assert(!is_sparse_storage_v<Matrix<double>>);

TEST(SparseMatrix, RoundTripsThroughCsrAndDense) {
  for (std::uint64_t seed = 100; seed < 116; ++seed) {
    const Matrix<double> dense = random_dense(5, 6, seed, 40);
    const SparseMatrix<double> s = SparseMatrix<double>::from_dense(dense);
    expect_same_dense(s.to_dense(), dense, "seed=" + std::to_string(seed));
    EXPECT_TRUE(s.to_csr() == CsrMatrix<double>::from_dense(dense))
        << "seed=" << seed;
    EXPECT_TRUE(SparseMatrix<double>(s.to_csr()) == s) << "seed=" << seed;
    EXPECT_EQ(s.nnz(), s.to_csr().nnz());
  }
}

TEST(SparseMatrix, GetAndSetMirrorDenseIncludingZeroErasure) {
  SparseMatrix<double> s(3, 3);
  EXPECT_EQ(s.get(1, 1), 0.0);
  s.set(1, 1, 2.0);
  s.set(1, 0, -1.0);
  EXPECT_EQ(s.get(1, 1), 2.0);
  EXPECT_EQ(s.row_nnz(1), 2u);
  s.set(1, 1, 0.0);  // writing zero erases the entry, not stores it
  EXPECT_EQ(s.get(1, 1), 0.0);
  EXPECT_EQ(s.row_nnz(1), 1u);
  s.set(2, 2, 0.0);  // writing zero over an absent entry stays absent
  EXPECT_EQ(s.nnz(), 1u);
  EXPECT_NO_THROW(s.to_csr());  // still canonical
}

// One randomized op-for-op replay: apply the same operation sequence to a
// dense Matrix and a SparseMatrix and require bit-identical states after
// every step. This is the exact call surface eliminate_steps/givens_steps
// use through the storage concept.
TEST(SparseMatrix, OperationSequencesMatchDenseBitForBit) {
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    const std::size_t n = 2 + mix(seed) % 6;
    Matrix<double> dense = random_dense(n, n, seed, 55);
    SparseMatrix<double> s = SparseMatrix<double>::from_dense(dense);
    for (std::size_t step = 0; step < 12; ++step) {
      const std::uint64_t r = seed * 104729 + step * 31;
      const std::size_t i = mix(r) % n;
      const std::size_t j = mix(r + 1) % n;
      switch (mix(r + 2) % 5) {
        case 0: {
          dense.swap_rows(i, j);
          s.swap_rows(i, j);
          break;
        }
        case 1: {
          const std::size_t to = i <= j ? i : j;
          const std::size_t from = i <= j ? j : i;
          dense.cycle_row_up(to, from);
          s.cycle_row_up(to, from);
          break;
        }
        case 2: {
          if (i == j) break;  // row_axpy(i, k) with i != k, as the engines do
          const double f = draw_value(r + 3);
          dense.row_axpy(i, j, f);
          s.row_axpy(i, j, f);
          break;
        }
        case 3: {
          if (i == j) break;
          // Plausible rotation coefficients; bit-equality must hold for ANY
          // c, s — the engines compute them identically on both backends.
          const double c = 0.6;
          const double sn = 0.8;
          dense.rotate_rows(i, j, c, sn);
          s.rotate_rows(i, j, c, sn);
          break;
        }
        default: {
          const double v = draw_value(r + 4);
          dense.set(i, j, v);
          s.set(i, j, v);
          break;
        }
      }
      expect_same_dense(s.to_dense(), dense,
                        "seed=" + std::to_string(seed) + " step=" +
                            std::to_string(step));
      // get() must agree entry-for-entry too (absent == stored dense zero).
      for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = 0; b < n; ++b)
          ASSERT_EQ(s.get(a, b), dense.get(a, b))
              << "seed=" << seed << " step=" << step;
    }
    EXPECT_NO_THROW(s.to_csr());  // canonical after arbitrary op sequences
  }
}

TEST(SparseMatrix, RowAxpyReportsTheRealMultiplyCount) {
  // The counter contract differs by design: the dense op reports its full
  // inner-loop trip count (cols - k - 1) while the sparse op reports one
  // multiply-subtract per SOURCE entry right of column k — the work it
  // actually did. The gap between the two is the backend's measured win,
  // and on a fully dense source row the two counts coincide.
  const std::size_t n = 6;
  for (std::uint64_t seed = 200; seed < 208; ++seed) {
    Matrix<double> dense = random_dense(n, n, seed, 30);
    SparseMatrix<double> s = SparseMatrix<double>::from_dense(dense);
    for (std::size_t k = 0; k + 1 < n; ++k) {
      const std::size_t i = (k + 1) % n;
      std::size_t src_right_of_k = 0;
      for (const auto& e : s.row(k))
        if (e.col > k) ++src_right_of_k;
      const double f = 2.0;
      const std::size_t dense_ops = dense.row_axpy(i, k, f);
      EXPECT_EQ(s.row_axpy(i, k, f), src_right_of_k)
          << "seed=" << seed << " k=" << k;
      EXPECT_LE(src_right_of_k, dense_ops);
    }
  }

  // Fully dense row: the sparse count equals the dense trip count.
  Matrix<double> full(2, 5);
  for (std::size_t j = 0; j < 5; ++j) {
    full(0, j) = 1.0 + static_cast<double>(j);
    full(1, j) = 2.0 + static_cast<double>(j);
  }
  SparseMatrix<double> sf = SparseMatrix<double>::from_dense(full);
  EXPECT_EQ(sf.row_axpy(1, 0, 3.0), full.row_axpy(1, 0, 3.0));
}

TEST(SparseMatrix, RowAxpyCancellationDropsTheEntry) {
  // dst and f*src cancel exactly at a shared column: the dense result holds
  // a stored 0.0, the sparse result must hold NO entry — invisible to both
  // get() and the canonical CSR gate.
  Matrix<double> dense(2, 3);
  dense(0, 0) = 1.0;
  dense(0, 1) = 2.0;
  dense(1, 0) = 3.0;
  dense(1, 1) = 4.0;
  SparseMatrix<double> s = SparseMatrix<double>::from_dense(dense);
  dense.row_axpy(1, 0, 2.0);  // row1 col1: 4 - 2*2 = 0
  s.row_axpy(1, 0, 2.0);
  EXPECT_EQ(dense(1, 1), 0.0);
  EXPECT_EQ(s.get(1, 1), 0.0);
  EXPECT_EQ(s.row_nnz(1), 0u);
  expect_same_dense(s.to_dense(), dense, "cancellation");
}

TEST(SparseMatrix, ExactFieldOpsMatchDenseOverRationals) {
  // Same replay over the exact field: no rounding anywhere, so equality is
  // a statement about operation ORDER only.
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    const std::size_t n = 4;
    Matrix<double> dd = random_dense(n, n, seed, 60);
    Matrix<Rational> dense = dd.cast<Rational>();
    SparseMatrix<Rational> s =
        SparseMatrix<double>::from_dense(dd).cast<Rational>();
    for (std::size_t k = 0; k + 1 < n; ++k) {
      const Rational f(static_cast<std::int64_t>(mix(seed + k) % 5) - 2);
      dense.row_axpy(k + 1, k, f);
      s.row_axpy(k + 1, k, f);
    }
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_TRUE(s.get(i, j) == dense(i, j))
            << "seed=" << seed << " at (" << i << "," << j << ")";
  }
}

}  // namespace
}  // namespace pfact::sparse
