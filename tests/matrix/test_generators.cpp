#include "matrix/generators.h"

#include <gtest/gtest.h>

#include "factor/gaussian.h"

namespace pfact::gen {
namespace {

TEST(Generators, RandomGeneralShapeAndRange) {
  auto a = random_general(8, 1);
  EXPECT_EQ(a.rows(), 8u);
  EXPECT_LE(a.max_abs(), 1.0);
  // Determinism: same seed, same matrix.
  EXPECT_EQ(max_abs_diff(a, random_general(8, 1)), 0.0);
  EXPECT_GT(max_abs_diff(a, random_general(8, 2)), 0.0);
}

TEST(Generators, RandomNonsingularHasNonzeroDet) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto a = random_nonsingular(10, seed);
    EXPECT_GT(std::abs(factor::det(a)), 1e-8) << "seed " << seed;
  }
}

TEST(Generators, DiagonallyDominantIsDominantAndStronglyNonsingular) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto a = random_diagonally_dominant(12, seed);
    EXPECT_TRUE(a.is_strictly_diagonally_dominant());
    // Strong nonsingularity: every leading principal minor nonsingular,
    // equivalently plain GE runs to completion.
    auto f = factor::ge(a);
    EXPECT_TRUE(f.ok) << "seed " << seed;
  }
}

TEST(Generators, SpdIsSymmetricAndGeSucceeds) {
  auto a = random_spd(10, 3);
  EXPECT_LT(max_abs_diff(a, a.transposed()), 1e-12);
  EXPECT_TRUE(factor::ge(a).ok);  // SPD => strongly nonsingular
}

TEST(Generators, HilbertExactMatchesDouble) {
  auto hd = hilbert(6);
  auto hr = hilbert_exact(6);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_NEAR(hr(i, j).to_double(), hd(i, j), 1e-15);
}

TEST(Generators, HilbertIsStronglyNonsingularExactly) {
  auto f = factor::ge(hilbert_exact(8));
  EXPECT_TRUE(f.ok);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FALSE(f.u(i, i).is_zero());
}

TEST(Generators, RandomNonsingularExactHasNonzeroDet) {
  auto a = random_nonsingular_exact(6, 5, 42);
  auto d = factor::det(a);
  EXPECT_FALSE(d.is_zero());
}

TEST(Generators, SingularMinorMatrixBehavesAsAdvertised) {
  auto a = nonsingular_with_singular_minor(5);
  EXPECT_FALSE(factor::ge(a).ok);              // plain GE fails
  EXPECT_TRUE(factor::gep(a).ok);              // GEP succeeds
  EXPECT_GT(std::abs(factor::det(a)), 0.5);    // |det| = 1
}

TEST(Generators, WilkinsonGrowthShape) {
  auto a = wilkinson_growth(6);
  EXPECT_EQ(a(5, 0), -1.0);
  EXPECT_EQ(a(3, 3), 1.0);
  EXPECT_EQ(a(0, 5), 1.0);
  EXPECT_TRUE(factor::gep(a).ok);
}

TEST(Generators, GradedSpansScales) {
  auto a = graded(10, 0.125);
  EXPECT_GT(a(0, 0) / a(9, 9), 1e6);
}

}  // namespace
}  // namespace pfact::gen
