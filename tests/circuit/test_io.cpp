#include "circuit/io.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "circuit/builders.h"

namespace pfact::circuit {
namespace {

TEST(CircuitIo, ParsesSimpleFile) {
  auto p = parse_circuit_text(
      "# xor-ish\n"
      "inputs 2\n"
      "nand 0 1\n"
      "nand 0 2\n"
      "nand 1 2\n"
      "nand 3 4\n"
      "assign 1 0\n");
  EXPECT_EQ(p.circuit.num_inputs(), 2u);
  EXPECT_EQ(p.circuit.num_gates(), 4u);
  ASSERT_TRUE(p.inputs.has_value());
  EXPECT_TRUE((*p.inputs)[0]);
  EXPECT_FALSE((*p.inputs)[1]);
  // This is XOR: 1 ^ 0 = 1.
  EXPECT_TRUE(p.circuit.evaluate(*p.inputs));
}

TEST(CircuitIo, RoundTripsBuilders) {
  for (const Circuit& c :
       {xor_circuit(), majority3_circuit(), adder_carry_circuit(2)}) {
    std::vector<bool> in(c.num_inputs(), true);
    std::string text = circuit_to_text(c, &in);
    auto p = parse_circuit_text(text);
    EXPECT_EQ(p.circuit.num_gates(), c.num_gates());
    ASSERT_TRUE(p.inputs.has_value());
    for (unsigned m = 0; m < (1u << c.num_inputs()); ++m) {
      std::vector<bool> bits(c.num_inputs());
      for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (m >> i) & 1;
      EXPECT_EQ(p.circuit.evaluate(bits), c.evaluate(bits)) << m;
    }
  }
}

TEST(CircuitIo, CommentsAndBlankLines) {
  auto p = parse_circuit_text(
      "\n# leading comment\n\ninputs 1\n\nnand 0 0 # not\n");
  EXPECT_EQ(p.circuit.num_gates(), 1u);
  EXPECT_FALSE(p.inputs.has_value());
}

TEST(CircuitIo, Errors) {
  EXPECT_THROW(parse_circuit_text(""), std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("nand 0 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand 0 5\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand 0 1\nassign 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand 0 1\nassign 1 2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nfrob 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand 0 1 9\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\ninputs 2\nnand 0 1\n"),
               std::invalid_argument);
}

TEST(CircuitIo, ErrorMessagesCarryLineNumbers) {
  try {
    parse_circuit_text("inputs 2\nnand 0 7\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(CircuitIo, AcceptsCrlfLineEndings) {
  // Files written on Windows carry \r\n; getline leaves the \r attached to
  // the last token of every line, which used to break keyword matching and
  // numeric extraction.
  auto p = parse_circuit_text(
      "inputs 2\r\n"
      "nand 0 1\r\n"
      "nand 2 2\r\n"
      "assign 1 0\r\n");
  EXPECT_EQ(p.circuit.num_inputs(), 2u);
  EXPECT_EQ(p.circuit.num_gates(), 2u);
  ASSERT_TRUE(p.inputs.has_value());
  EXPECT_TRUE((*p.inputs)[0]);
  EXPECT_FALSE((*p.inputs)[1]);
  // Mixed endings and a comment ending in \r parse identically.
  auto q = parse_circuit_text("inputs 2\r\nnand 0 1  # note\r\nnand 2 2\n");
  EXPECT_EQ(q.circuit.num_gates(), 2u);
}

TEST(CircuitIo, EmptyFileErrorNamesARealLine) {
  // An empty file never increments the line counter; the message used to
  // say "line 0", which names no line a user can look at.
  for (const std::string text : {std::string(""), std::string("\n\n# c\n")}) {
    try {
      parse_circuit_text(text);
      FAIL() << "expected throw";
    } catch (const std::invalid_argument& e) {
      std::string what = e.what();
      EXPECT_EQ(what.find("line 0"), std::string::npos) << what;
      EXPECT_NE(what.find("line "), std::string::npos) << what;
    }
  }
}

TEST(CircuitIo, DuplicateAssignIsRejected) {
  EXPECT_THROW(
      parse_circuit_text("inputs 2\nnand 0 1\nassign 1 0\nassign 0 1\n"),
      std::invalid_argument);
}

TEST(CircuitIo, TrailingGarbageAfterAssignIsRejected) {
  // A failed extraction at end-of-line used to leave the stream failed, so
  // the trailing-token check never fired and the junk was silently eaten.
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand 0 1\nassign 1 0 junk\n"),
               std::invalid_argument);
}

TEST(CircuitIo, AdversarialInputsAreRejectedNotCrashing) {
  // Indices far beyond any node that could exist.
  EXPECT_THROW(
      parse_circuit_text("inputs 2\nnand 0 999999999999999999\n"),
      std::invalid_argument);
  // 21-digit index overflows size_t extraction -> failed read, not UB.
  EXPECT_THROW(
      parse_circuit_text("inputs 2\nnand 0 123456789012345678901\n"),
      std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 123456789012345678901\nnand 0 1\n"),
               std::invalid_argument);
  // Negative and non-numeric operands.
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand -1 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand zero 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand 0 1\nassign 1 -1\n"),
               std::invalid_argument);
}

TEST(CircuitIo, FuzzRoundTripRandomCircuits) {
  // Fixed-seed fuzz: serialize a random circuit (with a random assignment),
  // reparse, and demand the reparsed instance is semantically identical.
  std::mt19937_64 rng(0xC1DC1D5EEDULL);
  for (int round = 0; round < 40; ++round) {
    const std::size_t num_inputs = 1 + rng() % 6;
    const std::size_t num_gates = 1 + rng() % 24;
    Circuit c = random_circuit(num_inputs, num_gates, rng());
    std::vector<bool> in(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) in[i] = rng() & 1;

    std::string text = circuit_to_text(c, &in);
    ParsedInstance p = parse_circuit_text(text);

    ASSERT_EQ(p.circuit.num_inputs(), c.num_inputs()) << text;
    ASSERT_EQ(p.circuit.num_gates(), c.num_gates()) << text;
    ASSERT_TRUE(p.inputs.has_value());
    ASSERT_EQ(*p.inputs, in);
    for (std::size_t g = 0; g < c.num_gates(); ++g) {
      EXPECT_EQ(p.circuit.gate(g).in0, c.gate(g).in0);
      EXPECT_EQ(p.circuit.gate(g).in1, c.gate(g).in1);
    }
    // Semantic agreement on a handful of random assignments too.
    for (int probe = 0; probe < 8; ++probe) {
      std::vector<bool> bits(num_inputs);
      for (std::size_t i = 0; i < num_inputs; ++i) bits[i] = rng() & 1;
      EXPECT_EQ(p.circuit.evaluate(bits), c.evaluate(bits)) << text;
    }
    // And a second serialize -> parse loop is a fixed point.
    EXPECT_EQ(circuit_to_text(p.circuit, &*p.inputs), text);
  }
}

}  // namespace
}  // namespace pfact::circuit
