#include "circuit/io.h"

#include <gtest/gtest.h>

#include "circuit/builders.h"

namespace pfact::circuit {
namespace {

TEST(CircuitIo, ParsesSimpleFile) {
  auto p = parse_circuit_text(
      "# xor-ish\n"
      "inputs 2\n"
      "nand 0 1\n"
      "nand 0 2\n"
      "nand 1 2\n"
      "nand 3 4\n"
      "assign 1 0\n");
  EXPECT_EQ(p.circuit.num_inputs(), 2u);
  EXPECT_EQ(p.circuit.num_gates(), 4u);
  ASSERT_TRUE(p.inputs.has_value());
  EXPECT_TRUE((*p.inputs)[0]);
  EXPECT_FALSE((*p.inputs)[1]);
  // This is XOR: 1 ^ 0 = 1.
  EXPECT_TRUE(p.circuit.evaluate(*p.inputs));
}

TEST(CircuitIo, RoundTripsBuilders) {
  for (const Circuit& c :
       {xor_circuit(), majority3_circuit(), adder_carry_circuit(2)}) {
    std::vector<bool> in(c.num_inputs(), true);
    std::string text = circuit_to_text(c, &in);
    auto p = parse_circuit_text(text);
    EXPECT_EQ(p.circuit.num_gates(), c.num_gates());
    ASSERT_TRUE(p.inputs.has_value());
    for (unsigned m = 0; m < (1u << c.num_inputs()); ++m) {
      std::vector<bool> bits(c.num_inputs());
      for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (m >> i) & 1;
      EXPECT_EQ(p.circuit.evaluate(bits), c.evaluate(bits)) << m;
    }
  }
}

TEST(CircuitIo, CommentsAndBlankLines) {
  auto p = parse_circuit_text(
      "\n# leading comment\n\ninputs 1\n\nnand 0 0 # not\n");
  EXPECT_EQ(p.circuit.num_gates(), 1u);
  EXPECT_FALSE(p.inputs.has_value());
}

TEST(CircuitIo, Errors) {
  EXPECT_THROW(parse_circuit_text(""), std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("nand 0 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand 0 5\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand 0 1\nassign 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand 0 1\nassign 1 2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nfrob 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\nnand 0 1 9\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit_text("inputs 2\ninputs 2\nnand 0 1\n"),
               std::invalid_argument);
}

TEST(CircuitIo, ErrorMessagesCarryLineNumbers) {
  try {
    parse_circuit_text("inputs 2\nnand 0 7\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace pfact::circuit
