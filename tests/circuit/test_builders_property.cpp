// Property/fuzz sweep over circuit/builders and circuit/io.
//
// Every reduction in the repo assumes its NANDCVP input is well-formed:
// fan-in-2 NAND gates in topological order, and — after the Section 2
// fan-out reduction — no node feeding more than two gate inputs. These
// properties are asserted here across every builder and a fuzz sweep of
// random circuits, together with the io.cpp round-trip: write -> parse ->
// write must be byte-identical, so instance files are a stable interchange
// format.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "circuit/io.h"

namespace pfact::circuit {
namespace {

// The menagerie: every named builder plus a seeded fuzz family.
std::vector<Circuit> all_builder_circuits() {
  std::vector<Circuit> out;
  out.push_back(xor_circuit());
  out.push_back(majority3_circuit());
  for (std::size_t k = 2; k <= 6; ++k) out.push_back(parity_circuit(k));
  for (std::size_t b = 1; b <= 4; ++b) out.push_back(adder_carry_circuit(b));
  for (std::size_t b = 1; b <= 4; ++b) out.push_back(comparator_circuit(b));
  for (std::size_t d = 1; d <= 6; ++d) out.push_back(deep_chain_circuit(d));
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    out.push_back(random_circuit(2 + seed % 3, 3 + seed % 12,
                                 static_cast<unsigned>(seed)));
  }
  return out;
}

// Structural well-formedness: every gate reads strictly earlier nodes
// (topological order — fan-in 2 is already forced by the Gate struct).
void expect_well_formed(const Circuit& c) {
  for (std::size_t g = 0; g < c.num_gates(); ++g) {
    const std::size_t node = c.gate_node(g);
    EXPECT_LT(c.gate(g).in0, node) << "gate " << g << " reads forward";
    EXPECT_LT(c.gate(g).in1, node) << "gate " << g << " reads forward";
  }
  EXPECT_GE(c.num_gates(), 1u);
}

TEST(BuilderProperties, AllBuildersProduceWellFormedCircuits) {
  for (const Circuit& c : all_builder_circuits()) {
    SCOPED_TRACE(c.to_string());
    expect_well_formed(c);
  }
}

TEST(BuilderProperties, FanoutReductionEnforcesTwoAndPreservesTheFunction) {
  for (const Circuit& c : all_builder_circuits()) {
    FanoutTwoResult r = with_fanout_two(c);
    expect_well_formed(r.circuit);
    EXPECT_TRUE(r.circuit.has_fanout_at_most(2))
        << "max fanout " << r.circuit.max_fanout();
    // Exhaustive functional equivalence for <= 8 inputs, sampled otherwise.
    const std::size_t ni = c.num_inputs();
    const unsigned masks = ni <= 8 ? (1u << ni) : 256u;
    for (unsigned m = 0; m < masks; ++m) {
      const unsigned bits = ni <= 8 ? m : m * 2654435761u;
      std::vector<bool> in(ni);
      for (std::size_t i = 0; i < ni; ++i) in[i] = (bits >> i) & 1;
      EXPECT_EQ(r.circuit.evaluate(r.map_inputs(in)), c.evaluate(in))
          << "mask " << m;
    }
  }
}

TEST(BuilderProperties, FanoutCountsAreConsistent) {
  for (const Circuit& c : all_builder_circuits()) {
    std::vector<std::size_t> fo = c.fanouts();
    ASSERT_EQ(fo.size(), c.num_nodes());
    std::size_t wires = 0;
    for (std::size_t f : fo) wires += f;
    // Every gate contributes exactly two input wires.
    EXPECT_EQ(wires, 2 * c.num_gates());
  }
}

TEST(IoRoundTrip, WriteParseWriteIsByteIdentical) {
  for (const Circuit& c : all_builder_circuits()) {
    const std::string once = circuit_to_text(c);
    ParsedInstance p = parse_circuit_text(once);
    EXPECT_FALSE(p.inputs.has_value());
    const std::string twice = circuit_to_text(p.circuit);
    EXPECT_EQ(once, twice);
    // And the parsed circuit is the same machine, not just the same text.
    ASSERT_EQ(p.circuit.num_inputs(), c.num_inputs());
    ASSERT_EQ(p.circuit.num_gates(), c.num_gates());
    for (std::size_t g = 0; g < c.num_gates(); ++g) {
      EXPECT_EQ(p.circuit.gate(g).in0, c.gate(g).in0);
      EXPECT_EQ(p.circuit.gate(g).in1, c.gate(g).in1);
    }
  }
}

TEST(IoRoundTrip, AssignmentsSurviveTheRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Circuit c = random_circuit(3, 6, static_cast<unsigned>(seed));
    std::vector<bool> in = {(seed & 1) != 0, (seed & 2) != 0, (seed & 4) != 0};
    const std::string once = circuit_to_text(c, &in);
    ParsedInstance p = parse_circuit_text(once);
    ASSERT_TRUE(p.inputs.has_value());
    EXPECT_EQ(*p.inputs, in);
    const std::string twice = circuit_to_text(p.circuit, &*p.inputs);
    EXPECT_EQ(once, twice);
  }
}

}  // namespace
}  // namespace pfact::circuit
