#include "circuit/circuit.h"

#include <gtest/gtest.h>

#include "circuit/builders.h"

namespace pfact::circuit {
namespace {

std::vector<bool> bits(std::initializer_list<int> v) {
  std::vector<bool> out;
  for (int b : v) out.push_back(b != 0);
  return out;
}

TEST(Circuit, SingleNandTruthTable) {
  Circuit c(2, {{0, 1}});
  EXPECT_TRUE(c.evaluate(bits({0, 0})));
  EXPECT_TRUE(c.evaluate(bits({0, 1})));
  EXPECT_TRUE(c.evaluate(bits({1, 0})));
  EXPECT_FALSE(c.evaluate(bits({1, 1})));
}

TEST(Circuit, RejectsForwardReferences) {
  EXPECT_THROW(Circuit(1, {{0, 1}}), std::invalid_argument);
  EXPECT_THROW(Circuit(1, {{2, 0}}), std::invalid_argument);
}

TEST(Circuit, RejectsWrongArity) {
  Circuit c(2, {{0, 1}});
  EXPECT_THROW(c.evaluate(bits({1})), std::invalid_argument);
}

TEST(Circuit, FanoutComputation) {
  // Gate 0 reads input 0 twice: fanout(input0) = 2.
  Circuit c(1, {{0, 0}, {1, 1}});
  auto f = c.fanouts();
  EXPECT_EQ(f[0], 2u);
  EXPECT_EQ(f[1], 2u);
  EXPECT_EQ(f[2], 0u);
  EXPECT_EQ(c.max_fanout(), 2u);
  EXPECT_TRUE(c.has_fanout_at_most(2));
}

TEST(Builders, XorTruthTable) {
  Circuit c = xor_circuit();
  EXPECT_FALSE(c.evaluate(bits({0, 0})));
  EXPECT_TRUE(c.evaluate(bits({0, 1})));
  EXPECT_TRUE(c.evaluate(bits({1, 0})));
  EXPECT_FALSE(c.evaluate(bits({1, 1})));
}

TEST(Builders, Majority3TruthTable) {
  Circuit c = majority3_circuit();
  for (int m = 0; m < 8; ++m) {
    std::vector<bool> in = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    int count = in[0] + in[1] + in[2];
    EXPECT_EQ(c.evaluate(in), count >= 2) << m;
  }
}

TEST(Builders, ParityMatchesXorFold) {
  Circuit c = parity_circuit(5);
  for (int m = 0; m < 32; ++m) {
    std::vector<bool> in(5);
    bool expect = false;
    for (int i = 0; i < 5; ++i) {
      in[i] = (m >> i) & 1;
      expect ^= in[i];
    }
    EXPECT_EQ(c.evaluate(in), expect) << m;
  }
}

TEST(Builders, AdderCarryExhaustive) {
  const std::size_t bits_n = 3;
  Circuit c = adder_carry_circuit(bits_n);
  for (unsigned a = 0; a < 8; ++a) {
    for (unsigned b = 0; b < 8; ++b) {
      std::vector<bool> in(2 * bits_n);
      for (std::size_t i = 0; i < bits_n; ++i) {
        in[i] = (a >> i) & 1;
        in[bits_n + i] = (b >> i) & 1;
      }
      EXPECT_EQ(c.evaluate(in), a + b >= 8) << a << "+" << b;
    }
  }
}

TEST(Builders, ComparatorExhaustive) {
  const std::size_t bits_n = 3;
  Circuit c = comparator_circuit(bits_n);
  for (unsigned a = 0; a < 8; ++a) {
    for (unsigned b = 0; b < 8; ++b) {
      std::vector<bool> in(2 * bits_n);
      for (std::size_t i = 0; i < bits_n; ++i) {
        in[i] = (a >> i) & 1;
        in[bits_n + i] = (b >> i) & 1;
      }
      EXPECT_EQ(c.evaluate(in), a > b) << a << ">" << b;
    }
  }
}

TEST(Builders, DeepChainDepth) {
  Circuit c = deep_chain_circuit(50);
  EXPECT_EQ(c.num_gates(), 50u);
  // Sanity: evaluates without error on all 4 inputs.
  for (int m = 0; m < 4; ++m) {
    (void)c.evaluate(bits({m & 1, (m >> 1) & 1}));
  }
}

TEST(Builders, OutputIsAlwaysLastGate) {
  // build() must normalize the output to the final gate (Section 2 assumes
  // the circuit output is read from the last NAND gate).
  Builder b(2);
  std::size_t x = b.nand(0, 1);
  b.nand(0, 0);  // a dangling later gate
  Circuit c = b.build(x);
  // Output equals NAND(a, b) even though another gate was appended after x.
  EXPECT_TRUE(c.evaluate(bits({0, 1})));
  EXPECT_FALSE(c.evaluate(bits({1, 1})));
}

class FanoutTwoTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FanoutTwoTest, PreservesFunctionAndBoundsFanout) {
  Circuit c = random_circuit(4, 30, GetParam());
  FanoutTwoResult r = with_fanout_two(c);
  EXPECT_TRUE(r.circuit.has_fanout_at_most(2));
  for (int m = 0; m < 16; ++m) {
    std::vector<bool> in(4);
    for (int i = 0; i < 4; ++i) in[i] = (m >> i) & 1;
    EXPECT_EQ(r.circuit.evaluate(r.map_inputs(in)), c.evaluate(in))
        << "assignment " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FanoutTwoTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99));

TEST(FanoutTwo, SizeStaysPolynomial) {
  // The paper remarks the fanout-2 transformation costs O(S^2).
  Circuit c = random_circuit(5, 100, 7);
  FanoutTwoResult r = with_fanout_two(c);
  EXPECT_LE(r.circuit.num_gates(), 100u * 100u);
}

TEST(FanoutTwo, HighFanoutNodeGetsSplit) {
  // One input feeding 6 gates must be replicated.
  std::vector<Gate> gates;
  for (int g = 0; g < 6; ++g)
    gates.push_back({0, 1});
  // Tie them together so everything is live: pairwise NANDs.
  gates.push_back({2, 3});
  gates.push_back({4, 5});
  gates.push_back({6, 7});
  gates.push_back({8, 9});
  gates.push_back({10, 11});
  Circuit c(2, gates);
  auto r = with_fanout_two(c);
  EXPECT_TRUE(r.circuit.has_fanout_at_most(2));
  EXPECT_GT(r.circuit.num_inputs(), 2u);
  for (int m = 0; m < 4; ++m) {
    std::vector<bool> in = {(m & 1) != 0, (m & 2) != 0};
    EXPECT_EQ(r.circuit.evaluate(r.map_inputs(in)), c.evaluate(in));
  }
}

TEST(FanoutTwo, InstanceConversion) {
  CvpInstance inst{xor_circuit(), {true, false}};
  CvpInstance conv = with_fanout_two(inst);
  EXPECT_EQ(conv.expected(), inst.expected());
  EXPECT_TRUE(conv.circuit.has_fanout_at_most(2));
}

TEST(Circuit, ToStringSmoke) {
  Circuit c = xor_circuit();
  std::string s = c.to_string();
  EXPECT_NE(s.find("NAND"), std::string::npos);
}

}  // namespace
}  // namespace pfact::circuit
