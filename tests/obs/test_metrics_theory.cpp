// Metrics-vs-theory tests: the observability layer measures what Table 1
// predicts. Three claims are checked against live counter/span data:
//
//  1. GEM on the A_C family has a pivot-decision chain that grows LINEARLY
//     with the matrix order (the incompressible chain of Theorem 3.1), while
//     the GEMS-NC^2 route's structural depth model is polylog — the measured
//     per-order depth ratio collapses as n grows.
//  2. The NC route's parallel work is real: prefix_row_ranks issues exactly
//     n independent rank queries and, given >= 2 workers, their spans
//     overlap instead of forming a chain.
//  3. GQR on the NAND/PASS gadget chain performs exactly the rotation count
//     the gadget algebra predicts: kGqrNandRotations + depth *
//     kGqrPassRotations, for every input pair and chain depth.
//
// Counter-value assertions are gated on PFACT_OBS_ENABLED so the suite
// still passes (structural-model parts only) under -DPFACT_OBS=OFF.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/depth_model.h"
#include "circuit/builders.h"
#include "core/assembler.h"
#include "core/bordering.h"
#include "core/gqr_gadgets.h"
#include "core/simulator.h"
#include "factor/givens.h"
#include "matrix/generators.h"
#include "matrix/matrix.h"
#include "nc/lfmis.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace pfact {
namespace {

constexpr bool kObsOn = PFACT_OBS_ENABLED != 0;

circuit::CvpInstance chain_instance(std::size_t depth) {
  circuit::Circuit c = circuit::deep_chain_circuit(depth);
  return {c, std::vector<bool>(c.num_inputs(), true)};
}

// Claim 1a, measured half: GEM's pivot chain is exactly the matrix order.
TEST(MetricsTheory, GemPivotChainGrowsLinearlyWithTheOrder) {
  if (!kObsOn) GTEST_SKIP() << "observability compiled out";
  std::vector<std::size_t> orders;
  std::vector<std::uint64_t> depths;
  for (std::size_t d = 1; d <= 4; ++d) {
    obs::ScopedCounters sc;
    core::SimulationResult r = core::simulate_gem<double>(
        chain_instance(d), factor::PivotStrategy::kMinimalSwap);
    ASSERT_TRUE(r.ok);
    obs::CounterDelta delta = sc.delta();
    // Every column of A_C is one dependent elimination step: the measured
    // decision chain IS the order, with no parallel slack.
    EXPECT_EQ(delta[obs::Counter::kElimSteps], r.order);
    analysis::WorkDepth measured = analysis::elimination_from_counters(delta);
    EXPECT_EQ(measured.depth, r.order);
    EXPECT_GE(measured.work, r.order);  // rank-1 updates did real work
    orders.push_back(r.order);
    depths.push_back(delta[obs::Counter::kElimSteps]);
  }
  // Linear growth: depth deltas track order deltas exactly.
  for (std::size_t i = 1; i < orders.size(); ++i) {
    EXPECT_EQ(depths[i] - depths[i - 1], orders[i] - orders[i - 1]);
  }
}

// Claim 1b, structural half: on the same orders the GEM runs produced, the
// NC^2 model's depth is polylog — the depth/order ratio strictly collapses
// while GEM's stays pinned at 1.
TEST(MetricsTheory, GemsNcModelDepthCollapsesWhereGemStaysLinear) {
  std::vector<std::size_t> orders;
  for (std::size_t d = 1; d <= 4; ++d) {
    core::GemReduction red = core::build_gem_reduction(chain_instance(d));
    orders.push_back(red.matrix.rows());
  }
  double prev_ratio = 2.0;
  for (std::size_t n : orders) {
    analysis::WorkDepth gem = analysis::ge_sequential(n);
    analysis::WorkDepth nc = analysis::gems_nc(n);
    EXPECT_EQ(gem.depth, n - 1);  // linear, always
    const double ratio = static_cast<double>(nc.depth) / static_cast<double>(n);
    EXPECT_LT(ratio, prev_ratio) << "order " << n;
    prev_ratio = ratio;
  }
  // By the largest family member the NC depth is strictly below the chain.
  EXPECT_LT(analysis::gems_nc(orders.back()).depth, orders.back() - 1);
}

// Claim 2: the permutation phase of the NC route really is parallel work.
TEST(MetricsTheory, PrefixRankQueriesAreIndependentAndOverlap) {
  if (!kObsOn) GTEST_SKIP() << "observability compiled out";
  core::GemReduction red = core::build_gem_reduction(chain_instance(1));
  Matrix<numeric::Rational> a =
      to_rational(core::border_nonsingular(red.matrix));
  obs::ScopedCounters sc;
  obs::ScopedTracing tracing;
  std::vector<std::size_t> ranks = nc::prefix_row_ranks(a);
  ASSERT_EQ(ranks.size(), a.rows());
  EXPECT_EQ(ranks.back(), a.rows());  // bordered matrix is nonsingular
  // One rank query per prefix, issued all at once.
  EXPECT_EQ(sc.delta()[obs::Counter::kRankQueries], a.rows());
  std::vector<obs::SpanEvent> rank_spans;
  for (const obs::SpanEvent& s : obs::dump_spans()) {
    if (std::string(s.name) == "lfmis.rank") rank_spans.push_back(s);
  }
  ASSERT_EQ(rank_spans.size(), a.rows());
  if (par::ThreadPool::global().size() >= 2) {
    // The queries coexist in time: measured critical path < query count.
    EXPECT_LT(obs::critical_path_depth(rank_spans), rank_spans.size());
  }
}

// Claim 3: GQR rotation counts match the gadget algebra exactly. A NAND
// block retires kGqrNandRotations rotations and each PASS block
// kGqrPassRotations more, independent of the boolean values flowing through.
TEST(MetricsTheory, GqrRotationCountMatchesTheGadgetPrediction) {
  if (!kObsOn) GTEST_SKIP() << "observability compiled out";
  for (std::size_t depth = 0; depth <= 6; ++depth) {
    for (int a : {-1, 1}) {
      for (int b : {-1, 1}) {
        core::GqrChain chain = core::build_gqr_nand_chain(a, b, depth);
        Matrix<long double> m = chain.matrix;
        obs::ScopedCounters sc;
        factor::givens_steps(m, m.rows() * m.rows());
        EXPECT_EQ(sc.delta()[obs::Counter::kGivensRotations],
                  core::kGqrNandRotations + depth * core::kGqrPassRotations)
            << "a=" << a << " b=" << b << " depth=" << depth;
      }
    }
  }
}

// Bonus cross-check: the staged (Sameh-Kuck) runner reports its stage count
// through the counters, and the counter-derived depth model sees the stage
// compression relative to the rotation count.
TEST(MetricsTheory, SamehKuckStagesCompressTheRotationChain) {
  if (!kObsOn) GTEST_SKIP() << "observability compiled out";
  Matrix<double> a = gen::random_general(16, 20260807);
  obs::ScopedCounters sc;
  factor::QrResult<double> res = factor::givens_qr_sameh_kuck(a);
  obs::CounterDelta d = sc.delta();
  EXPECT_EQ(d[obs::Counter::kGivensRotations], res.rotations);
  EXPECT_EQ(d[obs::Counter::kGivensStages], res.stages);
  analysis::WorkDepth measured = analysis::givens_from_counters(d);
  EXPECT_EQ(measured.depth, res.stages);
  EXPECT_LT(measured.depth, res.rotations);  // 2n-3 stages vs n(n-1)/2
  // And the structural model agrees on the stage count's order: the staged
  // depth is within the 2n-3 bound.
  EXPECT_LE(res.stages, analysis::givens_sameh_kuck(16).depth);
}

}  // namespace
}  // namespace pfact
