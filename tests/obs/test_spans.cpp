// Tests for obs/trace: span collection semantics, Chrome trace_event
// export, and the critical-path (longest disjoint chain) computation that
// the metrics-theory tests and the bench emitter rely on.

#include <gtest/gtest.h>

#include <string>

#include "circuit/builders.h"
#include "core/simulator.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace pfact::obs {
namespace {

constexpr bool kObsOn = PFACT_OBS_ENABLED != 0;

SpanEvent make_span(std::uint64_t begin, std::uint64_t end,
                    std::uint32_t tid = 0) {
  SpanEvent s;
  s.name = "synthetic";
  s.begin_ns = begin;
  s.end_ns = end;
  s.tid = tid;
  return s;
}

// critical_path_depth works on plain vectors: these hold in every build.
TEST(CriticalPath, EmptyIsZero) {
  EXPECT_EQ(critical_path_depth({}), 0u);
}

TEST(CriticalPath, DisjointChainCountsEverySpan) {
  EXPECT_EQ(critical_path_depth(
                {make_span(0, 10), make_span(10, 20), make_span(25, 30)}),
            3u);
}

TEST(CriticalPath, FullyOverlappingLayerCountsOnce) {
  EXPECT_EQ(critical_path_depth({make_span(0, 10, 0), make_span(1, 9, 1),
                                 make_span(2, 11, 2)}),
            1u);
}

TEST(CriticalPath, MixedLayersCountLayersNotWidth) {
  // Two sequential layers, each three spans wide -> depth 2.
  std::vector<SpanEvent> spans;
  for (std::uint32_t t = 0; t < 3; ++t) {
    spans.push_back(make_span(0, 10, t));
    spans.push_back(make_span(12, 20, t));
  }
  EXPECT_EQ(critical_path_depth(spans), 2u);
}

TEST(ChromeTrace, EmitsCompleteEventsWithMicrosecondTimes) {
  std::vector<SpanEvent> spans = {make_span(1500, 4500, 7)};
  const std::string json = to_chrome_trace_json(spans);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.find_last_not_of(" \n"), json.rfind(']'));
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"synthetic\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  // 1500 ns -> 1.5 us, duration 3000 ns -> 3 us; fractions zero-padded.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3.000"), std::string::npos);
}

TEST(Spans, DisabledByDefaultAndScopedTracingCollects) {
  clear_spans();
  { ScopedSpan untraced("test.untraced"); }
  EXPECT_TRUE(dump_spans().empty());
  {
    ScopedTracing tracing;
    { ScopedSpan traced("test.traced"); }
    std::vector<SpanEvent> spans = dump_spans();
    if (kObsOn) {
      ASSERT_EQ(spans.size(), 1u);
      EXPECT_STREQ(spans[0].name, "test.traced");
      EXPECT_GE(spans[0].end_ns, spans[0].begin_ns);
    } else {
      EXPECT_TRUE(spans.empty());
    }
  }
  EXPECT_FALSE(tracing_enabled());  // restored by ScopedTracing
}

TEST(Spans, SpanOpenAtDisableTimeIsStillRecorded) {
  if (!kObsOn) GTEST_SKIP() << "observability compiled out";
  clear_spans();
  set_tracing_enabled(true);
  {
    ScopedSpan s("test.straddle");
    set_tracing_enabled(false);  // capture decision was made at construction
  }
  EXPECT_EQ(dump_spans().size(), 1u);
  clear_spans();
}

// The paper's depth claims, measured: a sequential GEM elimination emits one
// ge.step span per column, and they form a pure chain (depth == count).
TEST(Spans, GemEliminationSpansFormAPureChain) {
  if (!kObsOn) GTEST_SKIP() << "observability compiled out";
  circuit::CvpInstance inst{circuit::xor_circuit(), {true, false}};
  ScopedTracing tracing;
  core::SimulationResult r = core::simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalSwap);
  ASSERT_TRUE(r.ok);
  std::vector<SpanEvent> spans = dump_spans();
  std::size_t steps = 0;
  for (const SpanEvent& s : spans) {
    if (std::string(s.name) == "ge.step") ++steps;
  }
  EXPECT_EQ(steps, r.order);
  EXPECT_EQ(critical_path_depth(spans), spans.size());
}

// Pool chunks overlap: with >= 2 workers the chunk spans of one
// parallel_for must NOT form a pure chain.
TEST(Spans, PoolChunksOverlapWhenWorkersAreAvailable) {
  if (!kObsOn) GTEST_SKIP() << "observability compiled out";
  if (par::ThreadPool::global().size() < 2) {
    GTEST_SKIP() << "single hardware thread";
  }
  ScopedTracing tracing;
  // Enough per-index work that chunks genuinely coexist.
  std::atomic<std::uint64_t> sink{0};
  par::parallel_for(0, 64, [&](std::size_t i) {
    std::uint64_t acc = i;
    for (int k = 0; k < 20000; ++k) acc = acc * 2862933555777941757ULL + 3037;
    sink += acc;
  });
  std::vector<SpanEvent> spans = dump_spans();
  std::vector<SpanEvent> chunks;
  for (const SpanEvent& s : spans) {
    if (std::string(s.name) == "pool.chunk") chunks.push_back(s);
  }
  ASSERT_GE(chunks.size(), 2u);
  EXPECT_LT(critical_path_depth(chunks), chunks.size());
}

}  // namespace
}  // namespace pfact::obs
