// Liveness coverage for the in-process counter taxonomy: every registered
// Counter/Histogram that a library operation can bump without forking
// workers is exercised here and asserted through ScopedCounters deltas.
// This is the observed leg of the PL017 counter-dead lint rule — a counter
// no test asserts can silently rot when the instrumentation it summarizes
// breaks. The serve-layer counters (fork/socket paths) get the same
// treatment in tests/serve/test_serve_counters.cpp.
//
// Value assertions are gated on PFACT_OBS_ENABLED like the rest of the obs
// suite: in a -DPFACT_OBS=OFF build the operations must still run and the
// deltas must read all-zero.

#include <gtest/gtest.h>

#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "factor/gaussian.h"
#include "factor/householder.h"
#include "factor/triangular.h"
#include "matrix/matrix.h"
#include "matrix/sparse.h"
#include "numeric/bigint.h"
#include "numeric/softfloat.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robustness/guarded_run.h"
#include "robustness/resilient_run.h"

namespace pfact::obs {
namespace {

constexpr bool kObsOn = PFACT_OBS_ENABLED != 0;

TEST(CounterCoverage, GaussianPivotingCountsScansKeepsSkipsAndRowElems) {
  ScopedCounters sc;
  // Column 0: keep + a real row update; column 2 is structurally zero
  // below the diagonal, so partial pivoting must record a skip there.
  Matrix<double> a{{2.0, 1.0, 1.0, 1.0},
                   {1.0, 1.0, 0.0, 0.0},
                   {0.0, 0.0, 0.0, 1.0},
                   {0.0, 0.0, 0.0, 2.0}};
  const factor::LuResult<double> f =
      factor::ge_factor(a, factor::PivotStrategy::kPartial);
  EXPECT_TRUE(f.ok);
  const CounterDelta d = sc.delta();
  if (!kObsOn) {
    EXPECT_EQ(d[Counter::kPivotScanRows], 0u);
    return;
  }
  EXPECT_GT(d[Counter::kPivotScanRows], 0u);
  EXPECT_GE(d[Counter::kPivotKeeps], 2u);   // columns 0 and 1
  EXPECT_GE(d[Counter::kPivotSkips], 1u);   // the dead column 2
  EXPECT_GE(d[Counter::kRowUpdateElems], 3u);  // row 1's axpy under col 0
}

TEST(CounterCoverage, TriangularSolvesAndReflectionsAreCounted) {
  ScopedCounters sc;
  const Matrix<double> a{{4.0, 1.0}, {2.0, 3.0}};
  const std::vector<double> x =
      factor::solve_plu(a, {5.0, 5.0}, factor::PivotStrategy::kPartial);
  ASSERT_EQ(x.size(), 2u);
  const factor::HouseholderResult<double> qr = factor::householder_qr(a);
  EXPECT_GT(qr.reflections, 0u);
  const CounterDelta d = sc.delta();
  if (!kObsOn) return;
  EXPECT_GE(d[Counter::kTriangularSolves], 2u);  // forward + back
  EXPECT_GE(d[Counter::kHouseholderReflections], qr.reflections);
}

TEST(CounterCoverage, SoftFloatOpsAndEveryRoundingModeAreCounted) {
  using numeric::Float53;
  using numeric::ScopedSoftFloatRounding;
  using numeric::SoftFloatRounding;
  ScopedCounters sc;
  // 1/3 has a full 53-bit significand, so the product needs rounding —
  // which is what routes through the per-mode rounding counters.
  const Float53 third = Float53(1.0) / Float53(3.0);
  volatile double sink = 0;
  {
    ScopedSoftFloatRounding mode(SoftFloatRounding::kNearestEven);
    sink = (third * third + third).to_double();
  }
  {
    ScopedSoftFloatRounding mode(SoftFloatRounding::kTowardZero);
    sink = (third * third).to_double();
  }
  {
    ScopedSoftFloatRounding mode(SoftFloatRounding::kAwayFromZero);
    sink = (third * third).to_double();
  }
  sink = sqrt(Float53(2.0)).to_double();
  (void)sink;
  const CounterDelta d = sc.delta();
  if (!kObsOn) {
    EXPECT_EQ(d[Counter::kSoftFloatAdds], 0u);
    return;
  }
  EXPECT_GE(d[Counter::kSoftFloatAdds], 1u);
  EXPECT_GE(d[Counter::kSoftFloatMuls], 3u);
  EXPECT_GE(d[Counter::kSoftFloatDivs], 1u);
  EXPECT_GE(d[Counter::kSoftFloatSqrts], 1u);
  EXPECT_GE(d[Counter::kSoftFloatRoundNearestEven], 1u);
  EXPECT_GE(d[Counter::kSoftFloatRoundTowardZero], 1u);
  EXPECT_GE(d[Counter::kSoftFloatRoundAwayFromZero], 1u);
}

TEST(CounterCoverage, BigIntAllocsMulsDivsAndLimbHistogramAreCounted) {
  using numeric::BigInt;
  ScopedCounters sc;
  // ~40 decimal digits: multi-limb magnitudes, so the allocation counters
  // and the limb-size histogram all see real traffic.
  const BigInt a = BigInt::from_string("123456789012345678901234567890123456789");
  const BigInt b = a * a;
  const BigInt q = b / a;
  EXPECT_EQ(q.to_string(), a.to_string());
  const CounterDelta d = sc.delta();
  if (!kObsOn) return;
  EXPECT_GE(d[Counter::kBigIntAllocs], 2u);
  EXPECT_GE(d[Counter::kBigIntLimbsAllocated], 4u);
  EXPECT_GE(d[Counter::kBigIntMuls], 1u);
  EXPECT_GE(d[Counter::kBigIntDivs], 1u);
  EXPECT_GT(d.histogram_total(Histogram::kBigIntLimbs), 0u);
}

TEST(CounterCoverage, PoolSubmitsAndSpanDurationsAreRecorded) {
  ScopedCounters sc;
  {
    par::ThreadPool pool(2);
    pool.submit([] {}).get();
  }
  {
    ScopedTracing tracing;
    { ScopedSpan span("test.counter-coverage"); }
    EXPECT_EQ(dump_spans().size(), 1u);
  }
  const CounterDelta d = sc.delta();
  if (!kObsOn) return;
  EXPECT_GE(d[Counter::kPoolTasksSubmitted], 1u);
  EXPECT_GT(d.histogram_total(Histogram::kSpanDurationUs), 0u);
}

TEST(CounterCoverage, SparseBuildCoalesceDropFillAndRowNnzAreCounted) {
  ScopedCounters sc;
  sparse::TripletBuilder<double> tb(3, 3);
  tb.add(0, 0, 1.0);
  tb.add(0, 0, 1.0);   // coalesces with the previous triplet
  tb.add(1, 1, 2.0);
  tb.add(1, 1, -2.0);  // coalesces to an exact zero: dropped, not stored
  tb.add(0, 2, 5.0);
  tb.add(2, 2, 1.0);
  const sparse::CsrMatrix<double> csr = tb.build();
  EXPECT_EQ(csr.nnz(), 3u);

  // row_axpy(1, 0, f): row 0 holds a column-2 entry row 1 lacks — fill-in.
  sparse::SparseMatrix<double> s(csr);
  s.row_axpy(1, 0, 3.0);
  EXPECT_FALSE(is_zero(s.get(1, 2)));

  const CounterDelta d = sc.delta();
  if (!kObsOn) {
    EXPECT_EQ(d[Counter::kSparseBuilds], 0u);
    return;
  }
  EXPECT_GE(d[Counter::kSparseBuilds], 1u);
  EXPECT_GE(d[Counter::kSparseTripletsCoalesced], 2u);
  EXPECT_GE(d[Counter::kSparseZeroDrops], 1u);
  EXPECT_GE(d[Counter::kSparseFillIns], 1u);
  EXPECT_GT(d.histogram_total(Histogram::kSparseRowNnz), 0u);
}

TEST(CounterCoverage, EscalationsAreCounted) {
  using namespace pfact::robustness;
  ReductionTask task;
  task.algorithm = Algorithm::kGep;
  task.u = 2;
  task.w = 2;
  task.depth = 1;
  ResilientOptions opt;
  opt.ladder = {Substrate::kSoftFloat53, Substrate::kRational};
  opt.retry.max_attempts = 2;
  FaultPlan flip;
  flip.fault = FaultClass::kRoundingFlip;
  opt.fault_for_attempt = [flip](std::size_t) { return flip; };

  ScopedCounters sc;
  const ResilientReport rep = resilient_run(task, opt);
  ASSERT_TRUE(rep.certified) << rep.to_string();
  EXPECT_EQ(rep.escalations, 1u);
  const CounterDelta d = sc.delta();
  if (!kObsOn) return;
  EXPECT_GE(d[Counter::kEscalations], 1u);
}

TEST(CounterCoverage, CheckpointRejectsAreCounted) {
  using namespace pfact::robustness;
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, true}};

  CheckpointStore pristine;
  CheckpointConfig save;
  save.every = 2;
  save.store = &pristine;
  run_on_substrate(task, Substrate::kDouble, {}, {}, save);
  ASSERT_FALSE(pristine.empty());
  std::string blob = *pristine.latest();
  blob[blob.size() / 2] ^= 0x10;  // CRC-breaking body flip

  CheckpointStore store;
  store.put(pristine.latest_step(), blob);
  CheckpointConfig resume;
  resume.every = 2;
  resume.store = &store;
  resume.resume = true;
  ScopedCounters sc;
  const RunReport rep = run_on_substrate(task, Substrate::kDouble, {}, {},
                                         resume);
  EXPECT_EQ(rep.diagnostic, Diagnostic::kCheckpointCorrupt);
  const CounterDelta d = sc.delta();
  if (!kObsOn) return;
  EXPECT_GE(d[Counter::kCheckpointRejects], 1u);
}

}  // namespace
}  // namespace pfact::obs
