// Tests for obs/counters: registry semantics, snapshot/delta algebra,
// histogram bucketing, cross-thread aggregation, and the RunReport metrics
// wiring. Every assertion about counter VALUES is gated on
// PFACT_OBS_ENABLED so the whole suite also passes in a -DPFACT_OBS=OFF
// build, where the API must still be callable and return all-zero data.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "circuit/builders.h"
#include "obs/counters.h"
#include "parallel/thread_pool.h"
#include "robustness/guarded_run.h"

namespace pfact::obs {
namespace {

constexpr bool kObsOn = PFACT_OBS_ENABLED != 0;

TEST(CounterNames, AreUniqueStableKebabCase) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const std::string name = counter_name(static_cast<Counter>(i));
    ASSERT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    for (char ch : name) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
                  ch == '-')
          << name;
    }
  }
  seen.clear();
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    const std::string name = histogram_name(static_cast<Histogram>(i));
    ASSERT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second);
  }
}

TEST(Counters, ScopedDeltaSeesExactlyTheScopedBumps) {
  ScopedCounters outer;
  bump(Counter::kElimSteps, 3);
  {
    ScopedCounters inner;
    bump(Counter::kElimSteps, 2);
    bump(Counter::kGivensRotations);
    CounterDelta d = inner.delta();
    if (kObsOn) {
      EXPECT_EQ(d[Counter::kElimSteps], 2u);
      EXPECT_EQ(d[Counter::kGivensRotations], 1u);
    } else {
      EXPECT_EQ(d[Counter::kElimSteps], 0u);
    }
  }
  if (kObsOn) {
    EXPECT_EQ(outer.delta()[Counter::kElimSteps], 5u);
    EXPECT_EQ(outer.delta()[Counter::kPivotSwaps], 0u);
  }
}

TEST(Counters, HistogramUsesPowerOfTwoBuckets) {
  if (!kObsOn) GTEST_SKIP() << "observability compiled out";
  ScopedCounters sc;
  record(Histogram::kPivotMoveDistance, 1);     // bucket 0: [1,2)
  record(Histogram::kPivotMoveDistance, 2);     // bucket 1: [2,4)
  record(Histogram::kPivotMoveDistance, 3);     // bucket 1
  record(Histogram::kPivotMoveDistance, 1024);  // bucket 10
  CounterDelta d = sc.delta();
  const auto& h =
      d.histograms[static_cast<std::size_t>(Histogram::kPivotMoveDistance)];
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[10], 1u);
  EXPECT_EQ(d.histogram_total(Histogram::kPivotMoveDistance), 4u);
}

// The snapshot must sum thread-local blocks across every pool worker: a
// parallel_for whose body bumps once per index accounts for all of them.
TEST(Counters, AggregatesAcrossPoolThreads) {
  ScopedCounters sc;
  constexpr std::size_t kIters = 500;
  par::parallel_for(0, kIters, [](std::size_t) {
    bump(Counter::kRankQueries);
  });
  CounterDelta d = sc.delta();
  if (kObsOn) {
    EXPECT_EQ(d[Counter::kRankQueries], kIters);
    EXPECT_GE(d[Counter::kParallelForCalls], 1u);
    EXPECT_GE(d[Counter::kPoolChunksRun], 1u);
  } else {
    EXPECT_EQ(d[Counter::kRankQueries], 0u);
  }
}

TEST(Counters, SnapshotsAreMonotone) {
  CounterSnapshot a = snapshot();
  bump(Counter::kElimSteps);
  CounterSnapshot b = snapshot();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    EXPECT_GE(b.counts[i], a.counts[i]);
  }
}

// RunReport.metrics: a guarded run's delta covers exactly that run.
TEST(RunReportMetrics, CleanRunCarriesItsOwnCounters) {
  circuit::CvpInstance inst{circuit::xor_circuit(), {true, false}};
  robustness::RunReport rep = robustness::guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalSwap);
  ASSERT_TRUE(rep.ok());
  if (!kObsOn) {
    EXPECT_EQ(rep.metrics[Counter::kElimSteps], 0u);
    return;
  }
  // The reduction eliminates every column of the order-nu matrix: the
  // pivot-decision chain in the metrics equals the matrix order, and the
  // guard saw exactly those steps.
  EXPECT_EQ(rep.metrics[Counter::kElimSteps], rep.order);
  EXPECT_EQ(rep.metrics[Counter::kGuardTicks], rep.steps_used);
  EXPECT_EQ(rep.metrics[Counter::kFaultsInjected], 0u);
  EXPECT_EQ(rep.metrics[Counter::kFaultsDetected], 0u);
  // GEM moves pivots by swaps, never by GEMS shifts.
  EXPECT_GT(rep.metrics[Counter::kPivotSwaps], 0u);
  EXPECT_EQ(rep.metrics[Counter::kPivotShifts], 0u);
}

TEST(RunReportMetrics, InjectedFaultShowsUpInTheMetrics) {
  if (!kObsOn) GTEST_SKIP() << "observability compiled out";
  circuit::CvpInstance inst{circuit::xor_circuit(), {true, true}};
  robustness::FaultPlan plan;
  plan.fault = robustness::FaultClass::kTruncatedInput;
  robustness::RunReport rep = robustness::guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalSwap, {}, plan);
  // Truncation produces an arity mismatch: always detected, never kOk.
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.metrics[Counter::kFaultsInjected], 1u);
  EXPECT_EQ(rep.metrics[Counter::kFaultsDetected], 1u);
}

TEST(RunReportMetrics, GemsRunShiftsInsteadOfSwapping) {
  if (!kObsOn) GTEST_SKIP() << "observability compiled out";
  circuit::CvpInstance inst{circuit::xor_circuit(), {false, true}};
  robustness::RunReport rep = robustness::guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalShift);
  ASSERT_TRUE(rep.ok());
  EXPECT_GT(rep.metrics[Counter::kPivotShifts], 0u);
  EXPECT_EQ(rep.metrics[Counter::kPivotSwaps], 0u);
}

}  // namespace
}  // namespace pfact::obs
