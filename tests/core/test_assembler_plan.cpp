// Structural invariants of the block-assembly plan (the log-space reduction
// skeleton of Section 2): every slot has exactly one producer and at most
// one consumer, layers are well-formed, positions are consistent, and the
// planted matrix has the expected support discipline.
#include <gtest/gtest.h>

#include <map>

#include "circuit/builders.h"
#include "core/assembler.h"

namespace pfact::core {
namespace {

using circuit::CvpInstance;

class PlanTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanTest, SlotsHaveUniqueProducersAndConsumers) {
  circuit::Circuit c = circuit::random_circuit(3, 18, GetParam());
  CvpInstance inst{c, {true, false, true}};
  GemReduction red = build_gem_reduction(inst);
  std::map<std::size_t, int> produced, consumed;
  for (const auto& b : red.plan.blocks) {
    for (std::size_t s : b.out_slots) ++produced[s];
    for (std::size_t s : b.in_slots) ++consumed[s];
  }
  for (std::size_t s = 0; s < red.plan.num_slots; ++s) {
    EXPECT_EQ(produced[s], 1) << "slot " << s;
    EXPECT_LE(consumed[s], 1) << "slot " << s;
  }
  // Output slot is never consumed; dead slots likewise.
  EXPECT_EQ(consumed[red.plan.output_slot], 0);
  for (std::size_t s : red.plan.dead_slots) EXPECT_EQ(consumed[s], 0);
}

TEST_P(PlanTest, ConsumersComeAfterProducers) {
  circuit::Circuit c = circuit::random_circuit(3, 18, GetParam());
  CvpInstance inst{c, {false, false, true}};
  GemReduction red = build_gem_reduction(inst);
  std::map<std::size_t, std::size_t> producer_layer;
  for (const auto& b : red.plan.blocks) {
    for (std::size_t s : b.out_slots) producer_layer[s] = b.layer;
  }
  for (const auto& b : red.plan.blocks) {
    for (std::size_t s : b.in_slots) {
      EXPECT_LT(producer_layer[s], b.layer);
    }
  }
}

TEST_P(PlanTest, PositionsAreAPermutationWithOutputLast) {
  circuit::Circuit c = circuit::random_circuit(3, 18, GetParam());
  CvpInstance inst{c, {true, true, false}};
  GemReduction red = build_gem_reduction(inst);
  // slot positions are distinct and in range.
  std::vector<char> seen(red.matrix.rows(), 0);
  for (std::size_t s = 0; s < red.plan.num_slots; ++s) {
    std::size_t p = red.slot_pos[s];
    ASSERT_LT(p, red.matrix.rows());
    EXPECT_FALSE(seen[p]) << "duplicate position " << p;
    seen[p] = 1;
  }
  EXPECT_EQ(red.slot_pos[red.plan.output_slot], red.matrix.rows() - 1);
}

TEST_P(PlanTest, MatrixEntriesAreSmallIntegers) {
  // The double-exactness argument requires |entries| <= 1 and integrality.
  circuit::Circuit c = circuit::random_circuit(3, 18, GetParam());
  CvpInstance inst{c, {false, true, false}};
  GemReduction red = build_gem_reduction(inst);
  for (std::size_t i = 0; i < red.matrix.rows(); ++i) {
    for (std::size_t j = 0; j < red.matrix.cols(); ++j) {
      double v = red.matrix(i, j);
      EXPECT_EQ(v, std::round(v));
      EXPECT_LE(std::abs(v), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanTest, ::testing::Values(3, 14, 159));

TEST(Plan, LayerCountMatchesGatePlusDupCount) {
  // One layer per gate plus one per DUP plus the input layer.
  CvpInstance inst{circuit::xor_circuit(), {true, true}};
  GemReduction red = build_gem_reduction(inst);
  std::size_t dups = 0, nands = 0;
  for (const auto& b : red.plan.blocks) {
    if (b.type == BlockType::kDup) ++dups;
    if (b.type == BlockType::kNand) ++nands;
  }
  EXPECT_EQ(red.plan.num_layers, 1 + dups + nands);
}

TEST(Plan, RejectsUnnormalizedHighFanout) {
  // plan_assembly itself requires fanout <= 2 (build_gem_reduction
  // normalizes first; calling the planner raw must throw).
  std::vector<circuit::Gate> gates;
  for (int i = 0; i < 3; ++i) gates.push_back({0, 1});
  gates.push_back({2, 3});
  gates.push_back({4, 5});
  circuit::Circuit c(2, gates);
  EXPECT_THROW(plan_assembly(c), std::invalid_argument);
}

}  // namespace
}  // namespace pfact::core
