// Contract tests for the GEM/GEMS functional blocks (paper Figures 2-3,
// re-derived — see DESIGN.md). Every block is checked in EXACT rational
// arithmetic, for every boolean input combination, under both GEM and GEMS:
//   * the carrier rows end as (0,...,0, value, 0,...,0) on their diagonals,
//   * carrier rows are never displaced by pivoting,
//   * no leftover row carries junk below the diagonal in foreign columns.
#include "core/gem_gadgets.h"

#include <gtest/gtest.h>

#include "factor/gaussian.h"
#include "numeric/rational.h"

namespace pfact::core {
namespace {

using numeric::Rational;
using factor::eliminate_steps;
using factor::PivotStrategy;

struct StrategyCase {
  PivotStrategy strategy;
  const char* name;
};

class GadgetTest : public ::testing::TestWithParam<StrategyCase> {
 protected:
  // Eliminates all columns, asserting carriers stay in place.
  Matrix<Rational> run(Matrix<Rational> m,
                       const std::vector<std::size_t>& carriers) {
    Permutation perm(m.rows());
    eliminate_steps(m, GetParam().strategy, m.rows(), &perm);
    for (std::size_t c : carriers) {
      EXPECT_EQ(perm[c], c) << "carrier row displaced";
    }
    return m;
  }

  // Row `r` of the final state must be exactly value * e_r.
  static void expect_clean_value_row(const Matrix<Rational>& m,
                                     std::size_t r, int value) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      Rational expect = (j == r) ? Rational(value) : Rational(0);
      EXPECT_EQ(m(r, j), expect) << "row " << r << " col " << j;
    }
  }

  // No row may hold a nonzero strictly below the diagonal.
  static void expect_no_subdiagonal_junk(const Matrix<Rational>& m) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        EXPECT_TRUE(m(i, j).is_zero()) << "junk at (" << i << "," << j << ")";
      }
    }
  }
};

TEST_P(GadgetTest, PassCopiesValue) {
  for (int a : {0, 1}) {
    Matrix<Rational> m = pass_block_template();
    m(0, 0) = a;
    Matrix<Rational> r = run(m, {3});
    expect_clean_value_row(r, 3, a);
    expect_no_subdiagonal_junk(r);
  }
}

TEST_P(GadgetTest, DupDuplicatesValue) {
  for (int a : {0, 1}) {
    Matrix<Rational> m = dup_block_template();
    m(0, 0) = a;
    Matrix<Rational> r = run(m, {5, 6});
    expect_clean_value_row(r, 5, a);
    expect_clean_value_row(r, 6, a);
    expect_no_subdiagonal_junk(r);
  }
}

TEST_P(GadgetTest, NandComputesNand) {
  for (int a : {0, 1}) {
    for (int b : {0, 1}) {
      Matrix<Rational> m = nand_block_template();
      m(0, 0) = a;
      m(1, 1) = b;
      Matrix<Rational> r = run(m, {4});
      expect_clean_value_row(r, 4, 1 - a * b);
      expect_no_subdiagonal_junk(r);
    }
  }
}

// Spacer immunity: rows belonging to other blocks (support only in their own
// columns) must be untouched and untouching. We splice a foreign diagonal
// row between the aux region and the carrier.
TEST_P(GadgetTest, NandIgnoresForeignRows) {
  for (int a : {0, 1}) {
    for (int b : {0, 1}) {
      // Local layout: 0,1 in; 2,3 aux; 4 spacer; 5 carrier.
      Matrix<Rational> m(6, 6);
      m(0, 0) = a;
      m(1, 1) = b;
      for (const auto& e : kNandEntries) {
        std::size_t r = e.row >= 4 ? e.row + 1 : e.row;
        std::size_t c = e.col >= 4 ? e.col + 1 : e.col;
        m(r, c) += e.value;
      }
      m(4, 4) = 7;  // the foreign row
      Permutation perm(6);
      eliminate_steps(m, GetParam().strategy, 6, &perm);
      EXPECT_EQ(perm[4], 4u);
      EXPECT_EQ(m(4, 4), Rational(7));
      expect_clean_value_row(m, 5, 1 - a * b);
    }
  }
}

// The PASS aux-column pivot mechanism: when the value is 1 the compute row
// is consumed by the in-column pivot; when 0 it becomes that pivot itself.
TEST_P(GadgetTest, PassPivotSelectionMatchesDesign) {
  Matrix<Rational> m1 = pass_block_template();
  m1(0, 0) = 1;
  Permutation p1(4);
  auto t1 = eliminate_steps(m1, GetParam().strategy, 4, &p1);
  EXPECT_EQ(t1.events()[0].action, factor::PivotAction::kKeep);

  Matrix<Rational> m0 = pass_block_template();
  m0(0, 0) = 0;
  Permutation p0(4);
  auto t0 = eliminate_steps(m0, GetParam().strategy, 4, &p0);
  EXPECT_NE(t0.events()[0].action, factor::PivotAction::kKeep);
  EXPECT_EQ(t0.events()[0].pivot_row, 1u);  // the compute row takes over
}

INSTANTIATE_TEST_SUITE_P(
    Both, GadgetTest,
    ::testing::Values(
        StrategyCase{PivotStrategy::kMinimalSwap, "GEM"},
        StrategyCase{PivotStrategy::kMinimalShift, "GEMS"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace pfact::core
