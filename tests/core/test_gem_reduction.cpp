// End-to-end tests of Theorem 3.1 and Corollary 3.2: for whole circuits,
// the factorization of A_C computes what the circuit computes.
#include <gtest/gtest.h>

#include "circuit/builders.h"
#include "core/simulator.h"
#include "matrix/generators.h"
#include "numeric/rational.h"

namespace pfact::core {
namespace {

using circuit::CvpInstance;
using factor::PivotStrategy;
using numeric::Rational;

std::vector<bool> bits_of(unsigned m, std::size_t k) {
  std::vector<bool> out(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = (m >> i) & 1;
  return out;
}

void expect_simulates(const circuit::Circuit& c, PivotStrategy strategy) {
  const std::size_t k = c.num_inputs();
  ASSERT_LE(k, 10u);
  for (unsigned m = 0; m < (1u << k); ++m) {
    CvpInstance inst{c, bits_of(m, k)};
    SimulationResult res = simulate_gem<double>(inst, strategy);
    ASSERT_TRUE(res.ok) << "undecodable entry " << res.decoded_entry
                        << " assignment " << m;
    EXPECT_EQ(res.value, inst.expected()) << "assignment " << m;
  }
}

TEST(GemReduction, SingleNandAllStrategies) {
  circuit::Circuit c(2, {{0, 1}});
  expect_simulates(c, PivotStrategy::kMinimalSwap);
  expect_simulates(c, PivotStrategy::kMinimalShift);
}

TEST(GemReduction, XorExhaustive) {
  // The paper's own running example (Figure 4 computes XOR).
  expect_simulates(circuit::xor_circuit(), PivotStrategy::kMinimalSwap);
  expect_simulates(circuit::xor_circuit(), PivotStrategy::kMinimalShift);
}

TEST(GemReduction, Majority3Exhaustive) {
  expect_simulates(circuit::majority3_circuit(),
                   PivotStrategy::kMinimalSwap);
  expect_simulates(circuit::majority3_circuit(),
                   PivotStrategy::kMinimalShift);
}

TEST(GemReduction, Parity5Exhaustive) {
  expect_simulates(circuit::parity_circuit(5), PivotStrategy::kMinimalSwap);
  expect_simulates(circuit::parity_circuit(5), PivotStrategy::kMinimalShift);
}

TEST(GemReduction, AdderCarryExhaustive) {
  expect_simulates(circuit::adder_carry_circuit(3),
                   PivotStrategy::kMinimalSwap);
  expect_simulates(circuit::adder_carry_circuit(3),
                   PivotStrategy::kMinimalShift);
}

TEST(GemReduction, ComparatorExhaustive) {
  expect_simulates(circuit::comparator_circuit(2),
                   PivotStrategy::kMinimalSwap);
  expect_simulates(circuit::comparator_circuit(2),
                   PivotStrategy::kMinimalShift);
}

class RandomCircuitSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuitSim, MatchesDirectEvaluation) {
  circuit::Circuit c = circuit::random_circuit(4, 25, GetParam());
  expect_simulates(c, PivotStrategy::kMinimalSwap);
  expect_simulates(c, PivotStrategy::kMinimalShift);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitSim,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(GemReduction, DeepChainBothStrategies) {
  circuit::Circuit c = circuit::deep_chain_circuit(30);
  expect_simulates(c, PivotStrategy::kMinimalSwap);
  expect_simulates(c, PivotStrategy::kMinimalShift);
}

TEST(GemReduction, ExactRationalAgreesWithDouble) {
  // The planted entries are tiny integers; double elimination must be exact.
  // Cross-validate on the XOR circuit over the exact field.
  circuit::Circuit c = circuit::xor_circuit();
  for (unsigned m = 0; m < 4; ++m) {
    CvpInstance inst{c, bits_of(m, 2)};
    auto rd = simulate_gem<double>(inst, PivotStrategy::kMinimalShift);
    auto rr = simulate_gem<Rational>(inst, PivotStrategy::kMinimalShift);
    ASSERT_TRUE(rd.ok);
    ASSERT_TRUE(rr.ok);
    EXPECT_EQ(rd.value, rr.value);
    EXPECT_EQ(rr.value, inst.expected());
  }
}

TEST(GemReduction, MatrixIsSingularAsInTheorem31) {
  // A_C contains identically zero columns (shield columns): singular.
  CvpInstance inst{circuit::xor_circuit(), {true, false}};
  GemReduction red = build_gem_reduction(inst);
  auto d = factor::det(to_rational(red.matrix));
  EXPECT_TRUE(d.is_zero());
}

TEST(GemReduction, OrderGrowsPolynomially) {
  // order = O(n * w): sanity-bound it for a chain (w stays tiny).
  auto c20 = circuit::deep_chain_circuit(20);
  auto c40 = circuit::deep_chain_circuit(40);
  CvpInstance i20{c20, {true, true}};
  CvpInstance i40{c40, {true, true}};
  std::size_t nu20 = build_gem_reduction(i20).matrix.rows();
  std::size_t nu40 = build_gem_reduction(i40).matrix.rows();
  EXPECT_LT(nu40, 4 * nu20);  // roughly linear for constant width
}

TEST(GemReduction, OutputPositionIsBottomRight) {
  CvpInstance inst{circuit::xor_circuit(), {true, true}};
  GemReduction red = build_gem_reduction(inst);
  EXPECT_EQ(red.output_pos, red.matrix.rows() - 1);
}

// --- Corollary 3.2: the nonsingular GEM reduction ---------------------------

TEST(BorderedReduction, DeterminantIsPlusMinusOne) {
  CvpInstance inst{circuit::xor_circuit(), {true, false}};
  GemReduction red = build_gem_reduction(inst);
  auto bordered = border_nonsingular(to_rational(red.matrix));
  Rational d = factor::det(bordered);
  EXPECT_EQ(d.abs(), Rational(1));
}

TEST(BorderedReduction, DeterminantFormulaHoldsForArbitraryBlocks) {
  // det [[A, E],[E, 0]] = +/-1 regardless of A.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto a = gen::random_integer_exact(4, 3, seed);
    auto b = border_nonsingular(a);
    EXPECT_EQ(factor::det(b).abs(), Rational(1)) << seed;
  }
}

TEST(BorderedReduction, GemSimulatesOnNonsingularInput) {
  for (auto c : {circuit::xor_circuit(), circuit::majority3_circuit()}) {
    const std::size_t k = c.num_inputs();
    for (unsigned m = 0; m < (1u << k); ++m) {
      CvpInstance inst{c, bits_of(m, k)};
      SimulationResult res = simulate_gem_nonsingular<double>(inst);
      ASSERT_TRUE(res.ok) << "assignment " << m;
      EXPECT_EQ(res.value, inst.expected()) << "assignment " << m;
    }
  }
}

TEST(BorderedReduction, RandomCircuitsNonsingular) {
  for (std::uint64_t seed : {7u, 8u}) {
    circuit::Circuit c = circuit::random_circuit(3, 15, seed);
    for (unsigned m = 0; m < 8; ++m) {
      CvpInstance inst{c, bits_of(m, 3)};
      SimulationResult res = simulate_gem_nonsingular<double>(inst);
      ASSERT_TRUE(res.ok) << "seed " << seed << " assignment " << m;
      EXPECT_EQ(res.value, inst.expected());
    }
  }
}

}  // namespace
}  // namespace pfact::core
