// Contract tests for the GEP (Theorem 3.4) blocks: the pivot-trace logic
// (which row wins each magnitude contest) computes NAND; values chain
// through PASS blocks; and the pivot trace itself — the object of the
// theorem's P-complete language L — differs between inputs.
#include "core/gep_gadgets.h"

#include <gtest/gtest.h>

#include <cmath>

#include "factor/gaussian.h"
#include "matrix/matrix.h"

namespace pfact::core {
namespace {

double enc(bool v) { return v ? 2.0 : 1.0; }

TEST(GepNand, ContractAllFourCases) {
  for (bool u : {true, false}) {
    for (bool w : {true, false}) {
      GepChain c = build_gep_nand_chain(u ? 2 : 1, w ? 2 : 1, 0);
      double out = run_gep_chain(c);
      EXPECT_NEAR(out, enc(!(u && w)), 1e-9) << "u=" << u << " w=" << w;
    }
  }
}

TEST(GepPass, ContractBothValues) {
  for (bool v : {true, false}) {
    GepChain c = build_gep_pass_chain(v ? 2 : 1, 1);
    EXPECT_NEAR(run_gep_chain(c), enc(v), 1e-9) << v;
  }
}

TEST(GepPass, ChainsCarryValues) {
  for (std::size_t depth : {2u, 3u, 5u, 10u}) {
    for (bool v : {true, false}) {
      GepChain c = build_gep_pass_chain(v ? 2 : 1, depth);
      EXPECT_NEAR(run_gep_chain(c), enc(v), 1e-8)
          << "depth=" << depth << " v=" << v;
    }
  }
}

TEST(GepNand, ChainsThroughPasses) {
  for (std::size_t depth : {1u, 2u, 4u}) {
    for (bool u : {true, false}) {
      for (bool w : {true, false}) {
        GepChain c = build_gep_nand_chain(u ? 2 : 1, w ? 2 : 1, depth);
        EXPECT_NEAR(run_gep_chain(c), enc(!(u && w)), 1e-8)
            << "depth=" << depth << " u=" << u << " w=" << w;
      }
    }
  }
}

TEST(GepNand, PivotTraceEncodesInputs) {
  // Theorem 3.4's language is about the trace: "GEP uses row i to eliminate
  // column j". The pivot row chosen for column 0 is the in-row (original
  // row 2) exactly when u is True (|2| > 3/2), and the aux row (original
  // row 3) when u is False.
  for (bool u : {true, false}) {
    GepChain c = build_gep_nand_chain(u ? 2 : 1, 2, 0);
    factor::PivotTrace trace;
    run_gep_chain(c, &trace);
    ASSERT_GE(trace.size(), 1u);
    EXPECT_EQ(trace[0].column, 0u);
    EXPECT_EQ(trace[0].pivot_row, u ? 2u : 3u) << u;
    EXPECT_TRUE(trace.used_row_for_column(u ? 2 : 3, 0));
  }
}

TEST(GepNand, TraceDiffersAcrossAllInputs) {
  // Distinct input vectors must produce distinct traces somewhere in the
  // first two columns (the value contests).
  std::vector<std::pair<std::size_t, std::size_t>> pivots;
  for (bool u : {true, false}) {
    for (bool w : {true, false}) {
      GepChain c = build_gep_nand_chain(u ? 2 : 1, w ? 2 : 1, 0);
      factor::PivotTrace trace;
      run_gep_chain(c, &trace);
      ASSERT_GE(trace.size(), 2u);
      pivots.emplace_back(trace[0].pivot_row, trace[1].pivot_row);
    }
  }
  for (std::size_t i = 0; i < pivots.size(); ++i)
    for (std::size_t j = i + 1; j < pivots.size(); ++j)
      EXPECT_NE(pivots[i], pivots[j]) << i << "," << j;
}

TEST(GepNand, CompanionIsCleanOne) {
  // The surviving row's companion entry must be exactly ~1 so blocks chain.
  for (bool u : {true, false}) {
    for (bool w : {true, false}) {
      GepChain c = build_gep_nand_chain(u ? 2 : 1, w ? 2 : 1, 0);
      Matrix<double> m = c.matrix;
      factor::eliminate_steps(m, factor::PivotStrategy::kPartial,
                              c.value_col);
      for (std::size_t i = c.value_col; i < m.rows(); ++i) {
        if (std::fabs(m(i, c.value_col)) > 0.2) {
          EXPECT_NEAR(m(i, c.companion_col), 1.0, 1e-9);
        }
      }
    }
  }
}

TEST(GepChain, LeadingMinorsMostlyNonsingular) {
  // The tiny diagonal fillers keep (almost) every leading principal minor
  // nonsingular — the direction of Theorem 3.4's strengthening of [17].
  // Spare columns behind the decoy's origin may stay singular; count and
  // bound them.
  GepChain c = build_gep_nand_chain(2, 1, 2);
  Matrix<numeric::Rational> a = to_rational(c.matrix);
  std::size_t singular = 0;
  for (std::size_t k = 1; k <= a.rows(); ++k) {
    if (factor::det(a.leading_minor(k)).is_zero()) ++singular;
  }
  EXPECT_LE(singular, 2u);
}

TEST(GepNand, GemOnSameMatrixGivesDifferentTrace) {
  // Sanity contrast: the GEP gadget logic is specific to magnitude
  // pivoting. Minimal pivoting picks the first NONZERO, which here is
  // always the same row independent of u — so GEM's trace can't read u.
  std::vector<std::size_t> first_pivots;
  for (int u : {2, 1}) {
    GepChain c = build_gep_nand_chain(u, 2, 0);
    Matrix<double> m = c.matrix;
    auto trace =
        factor::eliminate_steps(m, factor::PivotStrategy::kMinimalSwap, 1);
    first_pivots.push_back(trace[0].pivot_row);
  }
  EXPECT_EQ(first_pivots[0], first_pivots[1]);
}

}  // namespace
}  // namespace pfact::core
