// Cross-arithmetic-model checks: the reductions behave identically over
// IEEE double, exact rationals, and the Section-4 SoftFloat models — the
// GEM/GEMS constructions use only small integers (exact in every model),
// while GQR's +/-1 decode survives reduced precision at block scale.
#include <gtest/gtest.h>

#include "circuit/builders.h"
#include "core/gqr_gadgets.h"
#include "core/simulator.h"
#include "factor/givens.h"
#include "numeric/softfloat.h"

namespace pfact::core {
namespace {

using circuit::CvpInstance;
using numeric::Float24;
using numeric::SoftFloat;

TEST(CrossModel, GemReductionExactInEveryModel) {
  // Small-integer entries, multipliers always +/-1: the simulation is an
  // exact integer computation whatever the float width (>= ~11 bits).
  CvpInstance inst{circuit::majority3_circuit(), {true, false, true}};
  auto d = simulate_gem<double>(inst, factor::PivotStrategy::kMinimalShift);
  auto f24 =
      simulate_gem<Float24>(inst, factor::PivotStrategy::kMinimalShift);
  auto f12 = simulate_gem<SoftFloat<12, -60, 60>>(
      inst, factor::PivotStrategy::kMinimalShift);
  ASSERT_TRUE(d.ok);
  ASSERT_TRUE(f24.ok);
  ASSERT_TRUE(f12.ok);
  EXPECT_EQ(d.value, inst.expected());
  EXPECT_EQ(f24.value, d.value);
  EXPECT_EQ(f12.value, d.value);
}

TEST(CrossModel, GemReductionAllAssignmentsAt24Bits) {
  circuit::Circuit c = circuit::xor_circuit();
  for (unsigned m = 0; m < 4; ++m) {
    CvpInstance inst{c, {(m & 1) != 0, (m & 2) != 0}};
    auto r = simulate_gem<Float24>(inst, factor::PivotStrategy::kMinimalSwap);
    ASSERT_TRUE(r.ok) << m;
    EXPECT_EQ(r.value, inst.expected()) << m;
  }
}

TEST(CrossModel, GqrNandDecodesAt24Bits) {
  // Sign decode of the GQR N block under single precision: the conditional
  // cancellation (a-1) is exact in every binary float model, so the block
  // still computes NAND to within ~eps24.
  for (int a : {1, -1}) {
    for (int b : {1, -1}) {
      Matrix<long double> master = gqr_nand_template();
      master(0, 0) = a;
      master(2, 2) = b;
      Matrix<Float24> m(6, 6);
      for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j)
          m(i, j) = Float24(static_cast<double>(master(i, j)));
      factor::givens_steps(m, 100);
      double nand = (a == 1 && b == 1) ? -1.0 : 1.0;
      EXPECT_NEAR(m(4, 4).to_double(), nand, 1e-4)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(CrossModel, GqrPassChainAt24Bits) {
  GqrChain c = build_gqr_pass_chain(-1, 12);
  Matrix<Float24> m(c.matrix.rows(), c.matrix.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      m(i, j) = Float24(static_cast<double>(c.matrix(i, j)));
  factor::givens_steps(m, 1u << 20);
  EXPECT_NEAR(m(c.value_pos, c.value_pos).to_double(), -1.0, 1e-3);
}

TEST(CrossModel, ConditionalCancellationExactAtAnyPrecision) {
  // The (a*1 - 1) cancellation driving GQR's logic is EXACT in floating
  // point (subtraction of equals), even at 8 bits — the reason the blocks'
  // conditional structure is robust under the Section-4 model.
  using F8 = SoftFloat<8, -60, 60>;
  F8 a(1.0), one(1.0);
  EXPECT_TRUE((a * one - one).is_zero());
}

}  // namespace
}  // namespace pfact::core
