// Contract tests for the GQR (Theorem 4.1) blocks in the exact (real) model
// — realized in long double / double — plus the floating point behaviour
// the paper analyzes in Section 4: per-block O(eps) relative error on the
// +/-1 encodings, growing with circuit depth.
#include "core/gqr_gadgets.h"

#include <gtest/gtest.h>

#include <cmath>

#include "factor/givens.h"

namespace pfact::core {
namespace {

TEST(GqrPass, ContractBothValues) {
  for (int a : {1, -1}) {
    Matrix<long double> m = gqr_pass_template();
    m(0, 0) = a;
    std::size_t applied = factor::givens_steps(m, 100);
    EXPECT_EQ(applied, kGqrPassRotations);
    // Carrier (row 2): (0, 0, a, 1).
    EXPECT_NEAR(static_cast<double>(m(2, 0)), 0.0, 1e-15);
    EXPECT_NEAR(static_cast<double>(m(2, 1)), 0.0, 1e-15);
    EXPECT_NEAR(static_cast<double>(m(2, 2)), a, 1e-15);
    EXPECT_NEAR(static_cast<double>(m(2, 3)), 1.0, 1e-15);
  }
}

TEST(GqrNand, ContractAllFourCases) {
  for (int a : {1, -1}) {
    for (int b : {1, -1}) {
      Matrix<long double> m = gqr_nand_template();
      m(0, 0) = a;
      m(2, 2) = b;
      factor::givens_steps(m, 100);
      double nand = (a == 1 && b == 1) ? -1.0 : 1.0;
      EXPECT_NEAR(static_cast<double>(m(4, 4)), nand, 1e-12)
          << "a=" << a << " b=" << b;
      EXPECT_NEAR(static_cast<double>(m(4, 5)), 1.0, 1e-12);
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(static_cast<double>(m(4, j)), 0.0, 1e-12) << j;
      }
    }
  }
}

TEST(GqrNand, ConditionalZeroMechanism) {
  // The aux row's post-rotation diagonal is (a-1)/sqrt(2): exactly zero for
  // a == 1 — the conditional that drives the logic (and note it is an EXACT
  // zero even in floating point, from exact cancellation).
  Matrix<long double> m = gqr_nand_template();
  m(0, 0) = 1;
  factor::givens_steps(m, 1);  // only the (0,1) rotation
  EXPECT_EQ(static_cast<double>(m(1, 1)), 0.0);
  Matrix<long double> m2 = gqr_nand_template();
  m2(0, 0) = -1;
  factor::givens_steps(m2, 1);
  EXPECT_GT(std::fabs(static_cast<double>(m2(1, 1))), 1.0);
}

TEST(GqrChain, NandThroughPassesAllDepths) {
  for (std::size_t depth : {0u, 1u, 2u, 5u, 10u}) {
    for (int a : {1, -1}) {
      for (int b : {1, -1}) {
        GqrChain c = build_gqr_nand_chain(a, b, depth);
        factor::givens_steps(c.matrix, 100000);
        double nand = (a == 1 && b == 1) ? -1.0 : 1.0;
        EXPECT_NEAR(static_cast<double>(c.matrix(c.value_pos, c.value_pos)),
                    nand, 1e-9)
            << "depth=" << depth << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(GqrChain, PassChainCarriesValue) {
  for (int a : {1, -1}) {
    GqrChain c = build_gqr_pass_chain(a, 20);
    factor::givens_steps(c.matrix, 100000);
    EXPECT_NEAR(static_cast<double>(c.matrix(c.value_pos, c.value_pos)), a,
                1e-9);
  }
}

TEST(GqrFloat, PerBlockErrorIsEpsilonScale) {
  // Section 4: "the relative error affecting the sign of the result of an N
  // block ranges from a minimum of eps to a maximum of 13 eps" (in their
  // MATLAB double runs). Our N block shows the same eps-scale behaviour in
  // double precision.
  double max_rel = 0.0;
  for (int a : {1, -1}) {
    for (int b : {1, -1}) {
      Matrix<double> m = gqr_nand_template().cast<double>();
      m(0, 0) = a;
      m(2, 2) = b;
      factor::givens_steps(m, 100);
      double nand = (a == 1 && b == 1) ? -1.0 : 1.0;
      max_rel = std::max(max_rel, std::fabs(m(4, 4) - nand));
    }
  }
  EXPECT_GT(max_rel, 0.0);          // floating point is not exact...
  EXPECT_LT(max_rel, 100 * 2.3e-16);  // ...but stays at eps scale per block
}

TEST(GqrFloat, ErrorGrowsWithDepthButSignSurvivesPolynomially) {
  // Error amplification along a PASS chain: grows with depth (the paper's
  // "for matrices simulating circuits with many gates, the error will in
  // general amplify"), while the SIGN decode survives polynomial depth.
  double prev = 0.0;
  for (std::size_t depth : {5u, 50u, 500u}) {
    GqrChain c = build_gqr_pass_chain(1, depth);
    Matrix<double> m = c.matrix.cast<double>();
    factor::givens_steps(m, 10 * m.rows() * m.rows());
    double err = std::fabs(m(c.value_pos, c.value_pos) - 1.0);
    EXPECT_LT(err, 1e-10) << depth;  // sign decode is safe at these depths
    EXPECT_GE(err, prev * 0.5) << depth;  // no magic cancellation claimed
    prev = err;
  }
}

TEST(GqrBlocks, RotationCountsAreInputIndependent) {
  // Every block performs the same number of rotations whatever the inputs —
  // needed for the "after k steps" form of the contracts.
  for (int a : {1, -1}) {
    Matrix<long double> p = gqr_pass_template();
    p(0, 0) = a;
    EXPECT_EQ(factor::givens_steps(p, 100), kGqrPassRotations);
    for (int b : {1, -1}) {
      Matrix<long double> n = gqr_nand_template();
      n(0, 0) = a;
      n(2, 2) = b;
      EXPECT_EQ(factor::givens_steps(n, 100), kGqrNandRotations);
    }
  }
}

}  // namespace
}  // namespace pfact::core
